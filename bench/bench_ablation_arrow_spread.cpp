// Ablation A1 (Section III-C): the "Equal Drawables" problem and the
// arrow-spread fix. With a coarse MPI_Wtime (emulated via -pisim-clockres),
// collective fan-out stamps many drawables inside one clock quantum; the
// converter then warns about superimposed objects. Inserting a small delay
// per arrow (-pispread, the paper's 1 ms usleep) eliminates the warnings at
// negligible run-time cost.
#include <chrono>
#include <set>
#include <tuple>

#include "bench_common.hpp"
#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "slog2/slog2.hpp"

namespace {

constexpr int kWorkers = 8;
constexpr int kRounds = 10;

PI_CHANNEL* g_down[kWorkers];
PI_CHANNEL* g_ack[kWorkers];

int fan_worker(int index, void*) {
  for (int k = 0; k < kRounds; ++k) {
    int v = 0;
    PI_Read(g_down[index], "%d", &v);
  }
  PI_Write(g_ack[index], "%d", index);
  return 0;
}

int fan_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  for (int i = 0; i < kWorkers; ++i) {
    PI_PROCESS* w = PI_CreateProcess(fan_worker, i, nullptr);
    g_down[i] = PI_CreateChannel(PI_MAIN, w);
    g_ack[i] = PI_CreateChannel(w, PI_MAIN);
  }
  PI_BUNDLE* bundle = PI_CreateBundle(PI_BROADCAST, g_down, kWorkers);
  PI_StartAll();
  for (int k = 0; k < kRounds; ++k) PI_Broadcast(bundle, "%d", k);
  for (int i = 0; i < kWorkers; ++i) {
    int v = 0;
    PI_Read(g_ack[i], "%d", &v);
  }
  PI_StopMain(0);
  return 0;
}

}  // namespace

int main(int, char**) {
  bench::heading("Ablation: arrow-spread delay vs Equal Drawables",
                 "Section III-C (coarse clock + collective fan-out => "
                 "superimposed drawables; 1 ms usleep per arrow fixes it)");

  std::printf("%-14s %-14s %18s %15s %14s\n", "clock res", "spread delay",
              "Equal Drawables", "equal arrows", "run wall");
  struct Case {
    double clockres;
    double spread;
  };
  const Case cases[] = {
      {1e-3, 0.0},     {1e-3, 0.0002}, {1e-3, 0.002},
      {0.0, 0.0},  // fine clock: no quantization, no problem even unspread
  };
  // Superimposed arrows specifically — what the paper's usleep fix targets.
  const auto count_equal_arrows = [](const slog2::File& slog) {
    std::set<std::tuple<int, int, double, double>> seen;
    std::uint64_t dupes = 0;
    slog.visit_window(slog.t_min, slog.t_max, nullptr, nullptr,
                      [&](const slog2::ArrowDrawable& a) {
                        if (!seen.insert({a.src_rank, a.dst_rank, a.start_time,
                                          a.end_time})
                                 .second)
                          ++dupes;
                      });
    return dupes;
  };
  bench::JsonReport json("ablation_arrow_spread");
  std::uint64_t warn_nospread = 0, warn_spread = 0;
  for (const auto& c : cases) {
    const std::string name = util::strprintf("spread_%g_%g", c.clockres, c.spread);
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = pilot::run(
        {"fanout", "-pisvc=j", "-piname=" + name,
         "-piout=" + bench::out_dir().string(),
         util::strprintf("-pisim-clockres=%g", c.clockres),
         util::strprintf("-pispread=%g", c.spread), "-piwatchdog=60"},
        fan_main);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (res.aborted) {
      std::fprintf(stderr, "run aborted!\n");
      return 1;
    }
    const auto slog = slog2::convert(
        clog2::read_file(bench::out_dir() / (name + ".clog2")));
    const std::uint64_t equal_arrows = count_equal_arrows(slog);
    std::printf("%-14s %-14s %18llu %15llu %12.3f s\n",
                c.clockres > 0 ? util::strprintf("%.0f ms", c.clockres * 1e3).c_str()
                               : "native",
                c.spread > 0 ? util::strprintf("%.1f ms", c.spread * 1e3).c_str()
                             : "none",
                static_cast<unsigned long long>(slog.stats.equal_drawables),
                static_cast<unsigned long long>(equal_arrows), wall);
    if (c.clockres == 1e-3 && c.spread == 0.0) warn_nospread = equal_arrows;
    if (c.clockres == 1e-3 && c.spread == 0.002) warn_spread = equal_arrows;
    const std::string key = util::strprintf("clockres_%gms_spread_%gms",
                                            c.clockres * 1e3, c.spread * 1e3);
    json.set("equal_drawables_" + key,
             static_cast<unsigned long long>(slog.stats.equal_drawables));
    json.set("equal_arrows_" + key,
             static_cast<unsigned long long>(equal_arrows));
    json.set("wall_s_" + key, wall);
  }

  std::printf("\nShape checks:\n");
  auto check = [](bool ok, const std::string& text) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", text.c_str());
  };
  check(warn_nospread > 0,
        util::strprintf("coarse clock without spread superimposes arrows "
                        "(%llu duplicates)",
                        static_cast<unsigned long long>(warn_nospread)));
  check(warn_spread == 0,
        "a spread delay >= the clock quantum eliminates superimposed arrows");
  return warn_nospread > 0 && warn_spread == 0 ? 0 : 1;
}

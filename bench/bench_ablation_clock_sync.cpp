// Ablation A3: MPE_Log_sync_clocks quality under injected clock drift.
// Every rank logs an event at the same true instant (right after a
// barrier); the merged timestamps' spread measures residual clock error,
// with and without sync, across drift magnitudes and sync-round counts.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "mpe/mpe.hpp"
#include "util/fs.hpp"

namespace {

struct Sample {
  double spread = 0.0;  // max - min corrected timestamp at one true instant
};

double measure_spread(double max_offset, double max_skew, bool sync, int rounds,
                      std::uint64_t seed) {
  mpisim::World::Config cfg;
  cfg.nprocs = 6;
  cfg.time_scale = 0.0;
  cfg.clock_max_offset = max_offset;
  cfg.clock_max_skew = max_skew;
  cfg.seed = seed;
  cfg.watchdog_seconds = 30.0;
  mpisim::World world(cfg);

  mpe::Logger::Options opts;
  opts.sync_rounds = rounds;
  opts.merge_base_cost = 0;
  opts.merge_cost_per_record = 0;
  mpe::Logger logger(world, opts);
  const int mark = logger.get_event_number();
  logger.define_event(mark, "mark", "yellow");

  util::TempDir dir;
  const auto path = dir.file("sync.clog2");
  world.run([&](mpisim::Comm& c) {
    if (sync) logger.log_sync_clocks(c);
    c.barrier();
    logger.log_event(c, mark);
    c.barrier();
    if (sync) logger.log_sync_clocks(c);
    logger.finish_log(c, path);
    return 0;
  });

  const auto file = clog2::read_file(path);
  std::vector<double> stamps;
  for (const auto& rec : file.records)
    if (const auto* e = std::get_if<clog2::EventRec>(&rec))
      stamps.push_back(e->timestamp);
  return *std::max_element(stamps.begin(), stamps.end()) -
         *std::min_element(stamps.begin(), stamps.end());
}

}  // namespace

int main(int, char**) {
  bench::heading("Ablation: clock synchronization quality",
                 "MPE_Log_sync_clocks (Section III): correcting per-rank "
                 "clock offset/skew before the merge");

  std::printf("%-16s %-12s %16s %16s %10s\n", "injected offset", "skew",
              "no sync spread", "synced spread", "gain");
  struct Case {
    double offset, skew;
  };
  bench::JsonReport json("ablation_clock_sync");
  bool all_good = true;
  for (const Case c : {Case{0.001, 0.0}, Case{0.01, 0.0}, Case{0.1, 0.0},
                       Case{0.5, 0.0}, Case{0.05, 1e-3}}) {
    std::vector<double> raw, synced;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      raw.push_back(measure_spread(c.offset, c.skew, false, 5, seed));
      synced.push_back(measure_spread(c.offset, c.skew, true, 5, seed));
    }
    const double r = util::median(raw);
    const double s = util::median(synced);
    std::printf("%-16s %-12s %16s %16s %9.0fx\n",
                util::strprintf("%.0f ms", c.offset * 1e3).c_str(),
                util::strprintf("%g", c.skew).c_str(),
                util::human_seconds(r).c_str(), util::human_seconds(s).c_str(),
                s > 0 ? r / s : 0.0);
    // Injected offsets must dominate the raw spread and be mostly removed.
    if (c.offset >= 0.01 && !(s < r / 5)) all_good = false;
    const std::string key =
        util::strprintf("offset_%gms_skew_%g", c.offset * 1e3, c.skew);
    json.set("raw_spread_s_" + key, r);
    json.set("synced_spread_s_" + key, s);
  }

  std::printf("\nSync-round sensitivity (offset 100 ms): min-RTT sampling\n");
  std::printf("%-8s %16s\n", "rounds", "synced spread");
  for (const int rounds : {1, 2, 5, 10}) {
    std::vector<double> xs;
    for (std::uint64_t seed = 10; seed < 13; ++seed)
      xs.push_back(measure_spread(0.1, 0.0, true, rounds, seed));
    std::printf("%-8d %16s\n", rounds, util::human_seconds(util::median(xs)).c_str());
    json.set(util::strprintf("synced_spread_s_rounds_%d", rounds),
             util::median(xs));
  }

  std::printf("\nShape checks:\n");
  std::printf("  [%s] sync reduces timestamp spread by >5x for offsets >= 10 ms\n",
              all_good ? "ok" : "MISMATCH");
  return all_good ? 0 : 1;
}

// Ablation A2 (Section II-A): the "frame size" conversion parameter — the
// amount of data a viewer loads at once. Smaller frames mean a deeper tree
// and more (smaller) leaves: cheaper windowed queries on a zoomed-in view,
// at the cost of more frames and a slightly larger file.
#include <chrono>

#include "bench_common.hpp"
#include "slog2/slog2.hpp"
#include "util/prng.hpp"

namespace {

clog2::File synthetic_trace(int states_per_rank, int nranks) {
  util::SplitMix64 rng(99);
  clog2::File f;
  f.nranks = nranks;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "Work", "gray", ""});
  f.records.emplace_back(clog2::EventDef{30, "Mark", "yellow", ""});

  struct Timed {
    double t;
    clog2::Record rec;
  };
  std::vector<Timed> timed;
  for (int r = 0; r < nranks; ++r) {
    double t = rng.uniform(0, 0.01);
    for (int i = 0; i < states_per_rank; ++i) {
      const double dur = rng.uniform(1e-5, 3e-3);
      timed.push_back({t, clog2::EventRec{t, r, 10, "popup text here"}});
      timed.push_back({t + dur, clog2::EventRec{t + dur, r, 11, ""}});
      if (i % 3 == 0)
        timed.push_back({t + dur / 2, clog2::EventRec{t + dur / 2, r, 30, "m"}});
      t += dur + rng.uniform(1e-5, 1e-3);
    }
  }
  std::sort(timed.begin(), timed.end(),
            [](const Timed& a, const Timed& b) { return a.t < b.t; });
  for (auto& x : timed) f.records.emplace_back(std::move(x.rec));
  return f;
}

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int per_rank =
      static_cast<int>(bench::arg_int(argc, argv, "states-per-rank", 8000));
  bench::heading("Ablation: SLOG-2 frame-size parameter",
                 "Section II-A (conversion parameter affecting how much data "
                 "the viewer loads at once)");

  const auto trace = synthetic_trace(per_rank, 8);
  bench::JsonReport json("ablation_frame_size");
  json.set("states_per_rank", per_rank);
  std::printf("synthetic trace: 8 ranks x %d states\n\n", per_rank);
  std::printf("%-12s %8s %8s %7s %12s %12s %14s\n", "frame size", "frames",
              "leaves", "depth", "file bytes", "convert ms", "zoom query ms");

  for (const std::uint64_t fs : {std::uint64_t{1} << 10, std::uint64_t{1} << 12,
                                 std::uint64_t{1} << 14, std::uint64_t{1} << 16,
                                 std::uint64_t{1} << 18, std::uint64_t{1} << 20}) {
    slog2::ConvertOptions opts;
    opts.frame_size = fs;
    auto t0 = std::chrono::steady_clock::now();
    const auto slog = slog2::convert(trace, opts);
    const double convert_ms = ms_since(t0);
    const auto bytes = slog2::serialize(slog);

    // A zoomed-in query touching 1% of the span, repeated.
    const double span = slog.t_max - slog.t_min;
    t0 = std::chrono::steady_clock::now();
    std::size_t hits = 0;
    for (int i = 0; i < 50; ++i) {
      const double a = slog.t_min + span * 0.01 * (i % 90);
      slog.visit_window(
          a, a + span * 0.01,
          [&](const slog2::StateDrawable&) { ++hits; },
          [&](const slog2::EventDrawable&) { ++hits; },
          [&](const slog2::ArrowDrawable&) { ++hits; });
    }
    const double query_ms = ms_since(t0) / 50.0;

    std::printf("%-12s %8llu %8llu %7d %12zu %12.1f %14.4f\n",
                util::strprintf("%llu KiB", static_cast<unsigned long long>(fs / 1024))
                    .c_str(),
                static_cast<unsigned long long>(slog.stats.frames),
                static_cast<unsigned long long>(slog.stats.leaf_frames),
                slog.stats.tree_depth, bytes.size(), convert_ms, query_ms);
    const std::string key =
        util::strprintf("%llukib", static_cast<unsigned long long>(fs / 1024));
    json.set("frames_" + key, static_cast<unsigned long long>(slog.stats.frames));
    json.set("depth_" + key, slog.stats.tree_depth);
    json.set("file_bytes_" + key, bytes.size());
    json.set("convert_ms_" + key, convert_ms);
    json.set("zoom_query_ms_" + key, query_ms);
    (void)hits;
  }

  std::printf("\nTakeaway: smaller frames -> deeper tree, more frames, faster "
              "zoomed queries; drawable counts are identical throughout.\n");
  return 0;
}

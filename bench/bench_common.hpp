// Shared helpers for the benchmark harness. Every bench regenerates one of
// the paper's tables or figures (see DESIGN.md's per-experiment index) and
// writes its artifacts (SVGs, traces) under ./bench_out/.
#pragma once

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hpp"
#include "util/strings.hpp"

namespace bench {

/// Output directory for rendered figures and traces.
inline std::filesystem::path out_dir() {
  const std::filesystem::path dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

/// "median [variance]" in the paper's reporting style.
inline std::string median_var(const std::vector<double>& xs) {
  return util::strprintf("%7.2f s [%0.2f]", util::median(xs), util::variance(xs));
}

/// Machine-readable companion to every bench's human table. Each bench
/// accumulates its headline numbers here and the destructor writes them to
/// bench_out/BENCH_<name>.json, so successive runs (and successive PRs)
/// leave a comparable perf trajectory on disk.
///
/// The schema is deliberately flat — one scalar per key — so shell tooling
/// (tools/ci_bench.sh) can pull a metric out with grep/sed instead of a
/// JSON parser.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() {
    try {
      if (!written_) write();
    } catch (...) {  // a failed report must not mask the bench's own exit
    }
  }

  void set(const std::string& key, double v) {
    // %.17g round-trips doubles; non-finite values are not valid JSON.
    fields_.emplace_back(key, std::isfinite(v) ? util::strprintf("%.17g", v)
                                               : std::string("null"));
  }
  void set(const std::string& key, long long v) {
    fields_.emplace_back(key, util::strprintf("%lld", v));
  }
  void set(const std::string& key, unsigned long long v) {
    fields_.emplace_back(key, util::strprintf("%llu", v));
  }
  void set(const std::string& key, int v) { set(key, static_cast<long long>(v)); }
  void set(const std::string& key, std::size_t v) {
    set(key, static_cast<unsigned long long>(v));
  }
  void set(const std::string& key, bool v) {
    fields_.emplace_back(key, v ? "true" : "false");
  }
  void set(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, quote(v));
  }
  void set(const std::string& key, const char* v) { set(key, std::string(v)); }

  /// Writes bench_out/BENCH_<name>.json (one "key": value per line).
  void write() {
    const auto path = out_dir() / ("BENCH_" + name_ + ".json");
    std::FILE* f = std::fopen(path.string().c_str(), "w");
    if (!f) throw std::runtime_error("cannot write " + path.string());
    std::fprintf(f, "{\n  \"bench\": %s", quote(name_).c_str());
    for (const auto& [k, v] : fields_)
      std::fprintf(f, ",\n  %s: %s", quote(k).c_str(), v.c_str());
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    written_ = true;
    std::printf("\nwrote %s\n", path.string().c_str());
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') (out += '\\') += c;
      else if (c == '\n') out += "\\n";
      else if (static_cast<unsigned char>(c) < 0x20)
        out += util::strprintf("\\u%04x", c);
      else out += c;
    }
    return out += '"';
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
  bool written_ = false;
};

/// Simple argv scan for "--key=value" benches (reps overrides etc.).
inline long long arg_int(int argc, char** argv, const std::string& key,
                         long long fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return std::stoll(a.substr(prefix.size()));
  }
  return fallback;
}

}  // namespace bench

// Shared helpers for the benchmark harness. Every bench regenerates one of
// the paper's tables or figures (see DESIGN.md's per-experiment index) and
// writes its artifacts (SVGs, traces) under ./bench_out/.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/strings.hpp"

namespace bench {

/// Output directory for rendered figures and traces.
inline std::filesystem::path out_dir() {
  const std::filesystem::path dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

/// "median [variance]" in the paper's reporting style.
inline std::string median_var(const std::vector<double>& xs) {
  return util::strprintf("%7.2f s [%0.2f]", util::median(xs), util::variance(xs));
}

/// Simple argv scan for "--key=value" benches (reps overrides etc.).
inline long long arg_int(int argc, char** argv, const std::string& key,
                         long long fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return std::stoll(a.substr(prefix.size()));
  }
  return fallback;
}

}  // namespace bench

// SLOG-2 v2 frame-payload compression bench: the perf acceptance criteria
// for the columnar delta-varint encoding (docs/FORMATS.md appendix). Emits
// BENCH_compress.json with the headline numbers tools/ci_bench.sh gates on:
//   - frame-payload bytes v1 vs v2 and their ratio (the >= 3x claim on the
//     million-event trace; CI gates a floor at the small size),
//   - encode and decode throughput for both encodings (serialize / parse
//     MB/s over the on-disk file),
//   - windowed-query latency through a Navigator over each encoding (the
//     sliding-zoom pattern; v2 must not make interactive reads slower in
//     any way a user would feel),
//   - a correctness canary: the v2 file must decode to the same legend
//     rollup as the v1 file, or the bench exits nonzero.
//
// `--small=EVENTS` (CI), `--large=EVENTS` (the paper-scale 10^6 point) and
// `--huge=EVENTS` (10^7, off by default) size the sweep; 0 skips a leg.
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "clog2/clog2.hpp"
#include "query/slog2_rollup.hpp"
#include "slog2/frame_codec.hpp"
#include "slog2/slog2.hpp"
#include "tracegen/tracegen.hpp"
#include "util/bytebuf.hpp"

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::size_t v1_payload_bytes(const slog2::File& f) {
  std::size_t total = 0;
  f.visit_frames([&](const slog2::Frame& fr) { total += fr.payload_bytes(); });
  return total;
}

std::size_t v2_payload_bytes(const slog2::File& f) {
  std::size_t total = 0;
  f.visit_frames([&](const slog2::Frame& fr) {
    util::ByteWriter w;
    slog2::detail::encode_drawables_v2(w, fr.states, fr.events, fr.arrows);
    total += w.bytes().size();
  });
  return total;
}

std::map<int, query::LegendTotals> legend_of(
    const std::vector<std::uint8_t>& bytes) {
  slog2::Navigator nav(bytes);
  query::LegendSweep sweep;
  nav.visit_window(-std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity(),
                   [&](const slog2::StateDrawable& s) { sweep.add_state(s); },
                   [&](const slog2::EventDrawable& e) { sweep.add_event(e); },
                   [&](const slog2::ArrowDrawable& a) { sweep.add_arrow(a); });
  return sweep.totals();
}

/// Median latency of 32 sliding tenth-of-the-trace legend queries.
double window_query_ms(const std::vector<std::uint8_t>& bytes) {
  slog2::Navigator nav(bytes);
  const double lo = nav.t_min();
  const double span = nav.t_max() - lo;
  std::vector<double> ms;
  ms.reserve(32);
  for (int i = 0; i < 32; ++i) {
    const double a = lo + span * static_cast<double>(i) / 32.0;
    const double b = a + span / 10.0;
    const auto q0 = std::chrono::steady_clock::now();
    query::LegendSweep sweep;
    nav.visit_window(a, b,
                     [&](const slog2::StateDrawable& s) { sweep.add_state(s); },
                     [&](const slog2::EventDrawable& e) { sweep.add_event(e); },
                     [&](const slog2::ArrowDrawable& a2) { sweep.add_arrow(a2); });
    (void)sweep.totals();
    ms.push_back(ms_since(q0));
  }
  return util::median(ms);
}

struct EncodingNumbers {
  std::size_t file_bytes = 0;
  double encode_mb_per_sec = 0.0;
  double decode_mb_per_sec = 0.0;
  double query_ms = 0.0;
};

EncodingNumbers measure(const slog2::File& f,
                        const std::vector<std::uint8_t>& bytes) {
  EncodingNumbers out;
  out.file_bytes = bytes.size();
  const double mb = static_cast<double>(bytes.size()) / (1024.0 * 1024.0);
  // Best of 3 for the throughput legs; the first parse also warms the page
  // cache equivalent (the byte vector) for both encodings equally.
  double enc_ms = 0.0, dec_ms = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto e0 = std::chrono::steady_clock::now();
    const std::vector<std::uint8_t> again = slog2::serialize(f);
    const double e = ms_since(e0);
    if (rep == 0 || e < enc_ms) enc_ms = e;
    const auto d0 = std::chrono::steady_clock::now();
    const slog2::File parsed = slog2::parse(again);
    const double d = ms_since(d0);
    if (rep == 0 || d < dec_ms) dec_ms = d;
  }
  out.encode_mb_per_sec = mb / (enc_ms / 1000.0);
  out.decode_mb_per_sec = mb / (dec_ms / 1000.0);
  out.query_ms = window_query_ms(bytes);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::heading("SLOG-2 v2 columnar frame compression",
                 "frame-payload ratio + codec throughput (docs/FORMATS.md)");
  bench::JsonReport report("compress");

  const std::vector<std::pair<std::string, std::uint64_t>> sizes = {
      {"small", static_cast<std::uint64_t>(
                    bench::arg_int(argc, argv, "small", 100000))},
      {"large", static_cast<std::uint64_t>(
                    bench::arg_int(argc, argv, "large", 1000000))},
      {"huge", static_cast<std::uint64_t>(bench::arg_int(argc, argv, "huge", 0))},
  };

  bool all_match = true;
  for (const auto& [label, events] : sizes) {
    if (events == 0) continue;
    tracegen::Options gopt;
    gopt.seed = 9;
    gopt.nranks = 16;
    gopt.events = events;
    const clog2::File ref = tracegen::generate(gopt);

    slog2::ConvertOptions co1;
    co1.encoding = slog2::FrameEncoding::kV1;
    slog2::ConvertOptions co2 = co1;
    co2.encoding = slog2::FrameEncoding::kV2;
    const slog2::File f1 = slog2::convert(ref, co1);
    const slog2::File f2 = slog2::convert(ref, co2);
    const std::vector<std::uint8_t> b1 = slog2::serialize(f1);
    const std::vector<std::uint8_t> b2 = slog2::serialize(f2);

    const std::size_t p1 = v1_payload_bytes(f1);
    const std::size_t p2 = v2_payload_bytes(f2);
    const double ratio =
        p2 == 0 ? 0.0 : static_cast<double>(p1) / static_cast<double>(p2);
    const EncodingNumbers n1 = measure(f1, b1);
    const EncodingNumbers n2 = measure(f2, b2);

    std::printf("%-5s (%llu events): payload %zu -> %zu bytes (%.2fx)\n",
                label.c_str(), static_cast<unsigned long long>(events), p1, p2,
                ratio);
    std::printf("  v1: file %8zu B  enc %7.1f MB/s  dec %7.1f MB/s  query %.2f ms\n",
                n1.file_bytes, n1.encode_mb_per_sec, n1.decode_mb_per_sec,
                n1.query_ms);
    std::printf("  v2: file %8zu B  enc %7.1f MB/s  dec %7.1f MB/s  query %.2f ms\n",
                n2.file_bytes, n2.encode_mb_per_sec, n2.decode_mb_per_sec,
                n2.query_ms);

    report.set("events_" + label, events);
    report.set("payload_bytes_v1_" + label, p1);
    report.set("payload_bytes_v2_" + label, p2);
    report.set("payload_ratio_" + label, ratio);
    report.set("file_bytes_v1_" + label, n1.file_bytes);
    report.set("file_bytes_v2_" + label, n2.file_bytes);
    report.set("encode_mb_per_sec_v1_" + label, n1.encode_mb_per_sec);
    report.set("encode_mb_per_sec_v2_" + label, n2.encode_mb_per_sec);
    report.set("decode_mb_per_sec_v1_" + label, n1.decode_mb_per_sec);
    report.set("decode_mb_per_sec_v2_" + label, n2.decode_mb_per_sec);
    report.set("window_query_ms_v1_" + label, n1.query_ms);
    report.set("window_query_ms_v2_" + label, n2.query_ms);

    // Correctness canary: both encodings must roll up identically.
    const auto l1 = legend_of(b1);
    const auto l2 = legend_of(b2);
    bool same = l1.size() == l2.size();
    if (same) {
      for (const auto& [cat, tot] : l1) {
        const auto it = l2.find(cat);
        if (it == l2.end() || it->second.count != tot.count ||
            it->second.inclusive != tot.inclusive ||
            it->second.exclusive != tot.exclusive) {
          same = false;
          break;
        }
      }
    }
    if (!same) {
      std::fprintf(stderr, "FAIL: v1/v2 legend rollups differ at %s\n",
                   label.c_str());
      all_match = false;
    }
  }
  report.set("rollups_match", all_match);
  report.write();
  return all_match ? 0 : 1;
}

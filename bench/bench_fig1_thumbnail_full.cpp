// Figure 1: the full-run Jumpshot view of the thumbnail application with
// PI_MAIN + compressor + 9 decompressors (11 ranks), and the robustness
// claim behind it: after thousands of Pilot calls the CLOG-2 trace converts
// to SLOG-2 with zero errors.
#include "bench_common.hpp"
#include "jumpshot/render.hpp"
#include "slog2/slog2.hpp"
#include "workloads/thumbnail_app.hpp"

int main(int argc, char** argv) {
  const int files = static_cast<int>(bench::arg_int(argc, argv, "files", 1058));
  bench::heading("Figure 1: thumbnail application, full timeline",
                 "Fig. 1 (10 work processes + PI_MAIN, 1058 files, -pisvc=j)");

  workloads::thumbnail::Config cfg;
  cfg.files = files;
  cfg.workers = 9;  // paper: compressor (rank 1) + 9 decompressors (2-10)
  cfg.image_size = 16;
  cfg.costs.decode_per_pixel = 0.1464 / 256.0;
  cfg.costs.encode_per_pixel = 0.009 / 90.0;
  cfg.pilot_args = {"-pisvc=j", "-pisim-scale=0.002", "-piname=fig1",
                    "-piout=" + bench::out_dir().string(), "-piwatchdog=300"};

  const auto stats = workloads::thumbnail::run_app(cfg);
  std::printf("run: %zu files, wall %.2f s, aborted=%d\n", stats.files_out,
              stats.wall_seconds, stats.run.aborted ? 1 : 0);

  const auto clog = clog2::read_file(bench::out_dir() / "fig1.clog2");
  std::printf("CLOG-2: %d ranks, %zu records\n", clog.nranks, clog.records.size());

  std::vector<std::string> warnings;
  const auto slog = slog2::convert(clog, {}, &warnings);
  std::printf("conversion: states=%llu events=%llu arrows=%llu, warnings=%zu\n",
              static_cast<unsigned long long>(slog.stats.total_states),
              static_cast<unsigned long long>(slog.stats.total_events),
              static_cast<unsigned long long>(slog.stats.total_arrows),
              warnings.size());
  slog2::write_file(bench::out_dir() / "fig1.slog2", slog);

  jumpshot::RenderOptions opts;
  opts.title = "Fig. 1 - thumbnail application (full run)";
  opts.width = 1400;
  opts.preview_threshold = 200;  // force Jumpshot's zoomed-out striping
  jumpshot::render_to_file(bench::out_dir() / "fig1.svg", slog, opts);
  std::printf("wrote %s\n", (bench::out_dir() / "fig1.svg").string().c_str());

  bench::JsonReport json("fig1_thumbnail_full");
  json.set("files", files);
  json.set("nranks", clog.nranks);
  json.set("clog2_records", clog.records.size());
  json.set("states", static_cast<unsigned long long>(slog.stats.total_states));
  json.set("events", static_cast<unsigned long long>(slog.stats.total_events));
  json.set("arrows", static_cast<unsigned long long>(slog.stats.total_arrows));
  json.set("warnings", warnings.size());
  json.set("clean", slog.stats.clean());

  std::printf("\nShape checks:\n");
  auto check = [](bool ok, const std::string& text) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", text.c_str());
  };
  check(clog.nranks == 11, "11 ranks: PI_MAIN + C + 9 decompressors");
  check(slog.stats.clean() && warnings.empty(),
        "SLOG-2 loads with zero conversion errors (paper's robustness claim)");
  check(slog.stats.total_arrows >= static_cast<std::uint64_t>(files) * 3,
        util::strprintf("at least 3 message arrows per file (%llu total)",
                        static_cast<unsigned long long>(slog.stats.total_arrows)));
  check(slog.stats.total_states > static_cast<std::uint64_t>(files) * 6,
        "thousands of state rectangles from thousands of Pilot calls");
  return slog.stats.clean() ? 0 : 1;
}

// Figure 2: zooming into the thumbnail run shows tiny red/green I/O slivers
// against large gray compute — the paper's "well-designed HPC program"
// reading. Quantified here via legend statistics: the I/O categories'
// inclusive time is a small fraction of Compute's exclusive time.
#include "bench_common.hpp"
#include "jumpshot/render.hpp"
#include "jumpshot/stats.hpp"
#include "slog2/slog2.hpp"
#include "workloads/thumbnail_app.hpp"

int main(int argc, char** argv) {
  const int files = static_cast<int>(bench::arg_int(argc, argv, "files", 400));
  bench::heading("Figure 2: thumbnail application, zoomed view",
                 "Fig. 2 (zoom; I/O small vs gray compute => well parallelized)");

  workloads::thumbnail::Config cfg;
  cfg.files = files;
  cfg.workers = 9;
  cfg.image_size = 16;
  cfg.costs.decode_per_pixel = 0.1464 / 256.0;
  cfg.costs.encode_per_pixel = 0.009 / 90.0;
  // Coarse enough that wall-time artifacts (message handling, select
  // polling) stay small next to the simulated compute.
  cfg.pilot_args = {"-pisvc=j", "-pisim-scale=0.02", "-piname=fig2",
                    "-piout=" + bench::out_dir().string(), "-piwatchdog=300"};

  const auto stats = workloads::thumbnail::run_app(cfg);
  std::printf("run: %zu files, wall %.2f s\n", stats.files_out, stats.wall_seconds);

  const auto slog = slog2::convert(clog2::read_file(bench::out_dir() / "fig2.clog2"));
  slog2::write_file(bench::out_dir() / "fig2.slog2", slog);

  // Zoom into the steady-state middle 10% of the run.
  const double span = slog.t_max - slog.t_min;
  jumpshot::RenderOptions opts;
  opts.t0 = slog.t_min + span * 0.45;
  opts.t1 = slog.t_min + span * 0.55;
  opts.title = "Fig. 2 - thumbnail application (zoomed)";
  opts.width = 1400;
  jumpshot::render_to_file(bench::out_dir() / "fig2.svg", slog, opts);
  std::printf("wrote %s (window %.3f .. %.3f s)\n",
              (bench::out_dir() / "fig2.svg").string().c_str(), opts.t0, opts.t1);

  // Legend statistics over the full run.
  const auto entries = jumpshot::legend(slog, jumpshot::LegendSort::kByInclusive);
  double compute_excl = 0, io_incl = 0;
  std::printf("\nlegend (top):\n%s\n",
              jumpshot::legend_to_text(entries).c_str());
  for (const auto& e : entries) {
    if (e.category.name == "Compute") compute_excl = e.exclusive;
    if (e.category.name == "PI_Read" || e.category.name == "PI_Write" ||
        e.category.name == "PI_Select")
      io_incl += e.inclusive;
  }
  // PI_MAIN and C spend much of their rectangles *blocked* in reads/selects
  // waiting for work; the paper's claim is about the decompressors, so
  // restrict the ratio to the D ranks (2..10).
  const auto ws = jumpshot::window_stats(slog, slog.t_min, slog.t_max);
  double d_read = 0, d_compute = 0;
  std::int32_t read_cat = -1, compute_cat = -1, select_cat = -1, write_cat = -1;
  for (const auto& c : slog.categories) {
    if (c.name == "PI_Read") read_cat = c.id;
    if (c.name == "Compute") compute_cat = c.id;
    if (c.name == "PI_Select") select_cat = c.id;
    if (c.name == "PI_Write") write_cat = c.id;
  }
  for (std::size_t r = 2; r < ws.ranks.size(); ++r) {
    const auto& rank = ws.ranks[r];
    auto get = [&](std::int32_t cat) {
      auto it = rank.state_time.find(cat);
      return it == rank.state_time.end() ? 0.0 : it->second;
    };
    const double blocked = get(read_cat) + get(select_cat) + get(write_cat);
    d_read += blocked;
    d_compute += get(compute_cat) - blocked;  // Compute covers the whole fn
  }
  const double io_fraction = d_read / (d_read + d_compute);
  std::printf("decompressor ranks: blocked-I/O fraction = %.1f%% "
              "(paper: red/green tiny vs gray)\n",
              100 * io_fraction);

  bench::JsonReport json("fig2_thumbnail_zoom");
  json.set("files", files);
  json.set("wall_s", stats.wall_seconds);
  json.set("io_fraction", io_fraction);
  json.set("compute_exclusive_s", compute_excl);
  json.set("io_inclusive_s", io_incl);

  std::printf("\nShape checks:\n");
  auto check = [](bool ok, const std::string& text) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", text.c_str());
  };
  check(io_fraction < 0.20, "decompressors compute >= 80% of the time");
  check(compute_excl > io_incl,
        "gray compute dominates the coloured I/O in the legend");
  return 0;
}

// Figure 3: the "lab 2" hands-on exercise and its visual log — 6 processes,
// total execution under 3 ms, and per worker the signature pattern: two red
// PI_Read bars (share size, then data), gray computing, one short green
// PI_Write reporting the subtotal; white arrows between PI_MAIN and workers.
#include <algorithm>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "jumpshot/render.hpp"
#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "slog2/slog2.hpp"
#include "util/prng.hpp"

#define W 5
#define NUM 10000

namespace {

PI_PROCESS* Worker[W];
PI_CHANNEL* toWorker[W];
PI_CHANNEL* result[W];

int workerFunc(int index, void*) {
  int myshare, sum = 0, *buff;
  PI_Read(toWorker[index], "%d", &myshare);
  buff = static_cast<int*>(std::malloc(static_cast<std::size_t>(myshare) * sizeof(int)));
  PI_Read(toWorker[index], "%*d", myshare, buff);
  for (int i = 0; i < myshare; i++) sum += buff[i];
  std::free(buff);
  PI_Write(result[index], "%d", sum);
  return 0;
}

int lab2_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  for (int i = 0; i < W; i++) {
    Worker[i] = PI_CreateProcess(workerFunc, i, nullptr);
    toWorker[i] = PI_CreateChannel(PI_MAIN, Worker[i]);
    result[i] = PI_CreateChannel(Worker[i], PI_MAIN);
  }
  PI_StartAll();

  std::vector<int> numbers(NUM);
  util::SplitMix64 rng(2016);
  for (int i = 0; i < NUM; i++)
    numbers[static_cast<std::size_t>(i)] = static_cast<int>(rng.below(100));

  for (int i = 0; i < W; i++) {
    int portion = NUM / W;
    if (i == W - 1) portion += NUM % W;
    PI_Write(toWorker[i], "%d", portion);
    PI_Write(toWorker[i], "%*d", portion,
             &numbers[static_cast<std::size_t>(i) * (NUM / W)]);
  }
  int sum, total = 0;
  for (int i = 0; i < W; i++) {
    PI_Read(result[i], "%d", &sum);
    total += sum;
  }
  std::printf("lab2 grand total = %d\n", total);
  PI_StopMain(0);
  return 0;
}

}  // namespace

int main(int, char**) {
  bench::heading("Figure 3: lab2 source + visual log",
                 "Fig. 3 (6 processes, < 3 ms total, read-read-compute-write "
                 "pattern per worker)");

  const auto res = pilot::run(
      {"lab2", "-pisvc=j", "-piname=fig3", "-piout=" + bench::out_dir().string(),
       "-piwatchdog=60"},
      lab2_main);
  std::printf("aborted=%d, MPE wrap-up %.4f s\n", res.aborted ? 1 : 0,
              res.mpe_wrapup_seconds);

  const auto slog =
      slog2::convert(clog2::read_file(bench::out_dir() / "fig3.clog2"));
  slog2::write_file(bench::out_dir() / "fig3.slog2", slog);
  jumpshot::RenderOptions opts;
  opts.title = "Fig. 3 - lab2 visual log";
  opts.rank_names = {"PI_MAIN", "P1", "P2", "P3", "P4", "P5"};
  jumpshot::render_to_file(bench::out_dir() / "fig3.svg", slog, opts);
  std::printf("wrote %s\n", (bench::out_dir() / "fig3.svg").string().c_str());

  // Execution-phase duration: the span of the Compute states (excludes the
  // configuration phase, as in the paper's screenshot).
  double exec_begin = 1e300, exec_end = 0;
  struct Call {
    double t;
    std::string name;
  };
  std::vector<std::vector<Call>> calls(7);
  std::int32_t config_cat = -1;
  for (const auto& c : slog.categories)
    if (c.name == "PI_Configure") config_cat = c.id;
  slog.visit_window(
      slog.t_min, slog.t_max,
      [&](const slog2::StateDrawable& s) {
        const auto* cat = slog.category(s.category_id);
        if (!cat) return;
        if (cat->name == "Compute") {
          exec_begin = std::min(exec_begin, s.start_time);
          exec_end = std::max(exec_end, s.end_time);
        }
        if ((cat->name == "PI_Read" || cat->name == "PI_Write") && s.rank >= 1 &&
            s.rank <= W)
          calls[static_cast<std::size_t>(s.rank)].push_back({s.start_time, cat->name});
        (void)config_cat;
      },
      nullptr, nullptr);
  const double exec_ms = (exec_end - exec_begin) * 1e3;
  std::printf("execution phase: %.3f ms (paper: under 3 ms)\n", exec_ms);
  std::printf("arrows: %llu (expected %d: 3 messages per worker)\n",
              static_cast<unsigned long long>(slog.stats.total_arrows), 3 * W);

  bench::JsonReport json("fig3_lab2");
  json.set("nranks", slog.nranks);
  json.set("exec_ms", exec_ms);
  json.set("arrows", static_cast<unsigned long long>(slog.stats.total_arrows));
  json.set("mpe_wrapup_s", res.mpe_wrapup_seconds);
  json.set("clean", slog.stats.clean());

  std::printf("\nShape checks:\n");
  auto check = [](bool ok, const std::string& text) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", text.c_str());
  };
  check(slog.nranks == 6, "6 processes on the timeline (PI_MAIN + 5 workers)");
  check(slog.stats.clean(), "clean conversion");
  check(slog.stats.total_arrows == 3 * W, "3 white arrows per worker");
  check(exec_ms < 3.0, "total execution under 3 ms");
  bool pattern_ok = true;
  for (int wkr = 1; wkr <= W; ++wkr) {
    auto& seq = calls[static_cast<std::size_t>(wkr)];
    std::sort(seq.begin(), seq.end(),
              [](const Call& a, const Call& b) { return a.t < b.t; });
    if (seq.size() != 3 || seq[0].name != "PI_Read" || seq[1].name != "PI_Read" ||
        seq[2].name != "PI_Write")
      pattern_ok = false;
  }
  check(pattern_ok, "every worker shows read, read, (compute), write");
  return slog.stats.clean() && pattern_ok ? 0 : 1;
}

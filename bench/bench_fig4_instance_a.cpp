// Figure 4: student instance A — pairs of PI_Write/PI_Read per worker in a
// loop inadvertently serialize the query phase; the workers never compute
// in parallel. The log shows an unfavourable ratio of gray compute to red
// blocking-read; here we quantify the query-phase overlap factor (effective
// parallelism) for instance A vs the fixed program.
#include "bench_common.hpp"
#include "jumpshot/render.hpp"
#include "jumpshot/stats.hpp"
#include "slog2/slog2.hpp"
#include "workloads/collision_app.hpp"

namespace {

namespace wc = workloads::collisions;

constexpr double kScale = 0.02;  // wall seconds per simulated second

struct Measured {
  wc::AppStats stats;
  double overlap = 0.0;  ///< effective parallel workers in the query phase
  // Phase durations in simulated seconds (trace clock / kScale).
  double read_s = 0.0;
  double query_s = 0.0;
};

Measured run_variant(wc::Variant variant, int workers, const std::string& name) {
  wc::AppConfig cfg;
  cfg.variant = variant;
  cfg.workers = workers;
  cfg.records = 120000;
  cfg.query_rounds = 4;
  // Queries meaty enough to see on the timeline: ~0.15 s per worker/round.
  cfg.costs.query_per_record = 5e-6;
  cfg.pilot_args = {"-pisvc=j", util::strprintf("-pisim-scale=%g", kScale),
                    "-piname=" + name,
                    "-piout=" + bench::out_dir().string(), "-piwatchdog=300"};

  Measured m;
  m.stats = wc::run_app(cfg);
  m.read_s = m.stats.read_phase_seconds / kScale;
  m.query_s = m.stats.query_phase_seconds / kScale;

  const auto slog =
      slog2::convert(clog2::read_file(bench::out_dir() / (name + ".clog2")));
  slog2::write_file(bench::out_dir() / (name + ".slog2"), slog);
  jumpshot::RenderOptions opts;
  opts.title = "collision query (" + wc::variant_name(variant) + ")";
  jumpshot::render_to_file(bench::out_dir() / (name + ".svg"), slog, opts);

  // Overlap factor: per-worker busy time within the query phase divided by
  // the phase duration, summed over workers. 1.0 = fully serialized,
  // ~workers = fully parallel.
  std::int32_t read_cat = -1, compute_cat = -1;
  for (const auto& c : slog.categories) {
    if (c.name == "PI_Read") read_cat = c.id;
    if (c.name == "Compute") compute_cat = c.id;
  }
  const auto ws = jumpshot::window_stats(slog, m.stats.t_read_end,
                                         m.stats.t_query_end);
  const double phase = m.stats.t_query_end - m.stats.t_read_end;
  double busy_sum = 0;
  for (std::size_t r = 1; r < ws.ranks.size(); ++r) {  // workers only
    auto get = [&](std::int32_t cat) {
      auto it = ws.ranks[r].state_time.find(cat);
      return it == ws.ranks[r].state_time.end() ? 0.0 : it->second;
    };
    busy_sum += get(compute_cat) - get(read_cat);  // Compute covers blocking
  }
  m.overlap = phase > 0 ? busy_sum / phase : 0.0;
  return m;
}

}  // namespace

int main(int, char**) {
  constexpr int kWorkers = 4;
  bench::heading("Figure 4: student instance A (serialized query loop)",
                 "Fig. 4 (paired PI_Write/PI_Read per worker serializes the "
                 "calculations)");

  const auto a = run_variant(wc::Variant::kInstanceA, kWorkers, "fig4_instance_a");
  const auto fixed = run_variant(wc::Variant::kFixed, kWorkers, "fig4_fixed");

  std::printf("(simulated seconds)\n");
  std::printf("%-12s %14s %14s %18s\n", "variant", "read phase", "query phase",
              "overlap factor");
  std::printf("%-12s %12.2f s %12.2f s %18.2f\n", "instance A", a.read_s,
              a.query_s, a.overlap);
  std::printf("%-12s %12.2f s %12.2f s %18.2f\n", "fixed", fixed.read_s,
              fixed.query_s, fixed.overlap);
  std::printf("\nwrote %s and %s\n",
              (bench::out_dir() / "fig4_instance_a.svg").string().c_str(),
              (bench::out_dir() / "fig4_fixed.svg").string().c_str());

  bench::JsonReport json("fig4_instance_a");
  json.set("workers", kWorkers);
  json.set("instance_a_read_s", a.read_s);
  json.set("instance_a_query_s", a.query_s);
  json.set("instance_a_overlap", a.overlap);
  json.set("fixed_read_s", fixed.read_s);
  json.set("fixed_query_s", fixed.query_s);
  json.set("fixed_overlap", fixed.overlap);

  std::printf("\nShape checks:\n");
  auto check = [](bool ok, const std::string& text) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", text.c_str());
  };
  check(a.stats.correct() && fixed.stats.correct(),
        "both variants compute correct results (the bug is timing, not output)");
  check(a.overlap < 1.5,
        util::strprintf("instance A queries are serialized (overlap %.2f ~ 1)",
                        a.overlap));
  check(fixed.overlap > kWorkers * 0.6,
        util::strprintf("fixed version runs queries in parallel (overlap %.2f ~ %d)",
                        fixed.overlap, kWorkers));
  check(a.query_s > fixed.query_s * 2.0,
        util::strprintf("query phase: %.2f s serialized vs %.2f s parallel",
                        a.query_s, fixed.query_s));
  return 0;
}

// Figure 5: student instance B — PI_MAIN reads the whole file alone (the
// paper's 11 seconds) while every worker sits blocked; the total run time
// never improves with more workers because the file read was never
// parallelized.
#include "bench_common.hpp"
#include "jumpshot/render.hpp"
#include "jumpshot/stats.hpp"
#include "slog2/slog2.hpp"
#include "workloads/collision_app.hpp"

namespace {

namespace wc = workloads::collisions;

constexpr double kScale = 0.02;  // wall seconds per simulated second

struct Phases {
  double read_s = 0.0;   // simulated seconds
  double query_s = 0.0;
};

Phases run_variant(wc::Variant variant, int workers, const std::string& name) {
  wc::AppConfig cfg;
  cfg.variant = variant;
  cfg.workers = workers;
  // Scaled-down stand-in for the 316 MB CSV: ~2.2 MB with the same
  // 28 MB/s parse-rate model.
  cfg.records = 100000;
  cfg.query_rounds = 4;
  cfg.costs.parse_per_byte = 140.0 / (28.0 * 1024 * 1024);  // x140: ~11 s total
  cfg.costs.query_per_record = 2e-6;
  cfg.pilot_args = {"-pisvc=j", util::strprintf("-pisim-scale=%g", kScale),
                    "-piname=" + name,
                    "-piout=" + bench::out_dir().string(), "-piwatchdog=300"};
  auto stats = wc::run_app(cfg);

  const auto slog =
      slog2::convert(clog2::read_file(bench::out_dir() / (name + ".clog2")));
  slog2::write_file(bench::out_dir() / (name + ".slog2"), slog);
  jumpshot::RenderOptions opts;
  opts.title = "collision query (" + wc::variant_name(variant) + ")";
  jumpshot::render_to_file(bench::out_dir() / (name + ".svg"), slog, opts);
  return Phases{stats.read_phase_seconds / kScale,
                stats.query_phase_seconds / kScale};
}

}  // namespace

int main(int, char**) {
  bench::heading("Figure 5: student instance B (file read not parallelized)",
                 "Fig. 5 (workers wait ~11 s while PI_MAIN does the I/O; run "
                 "time stays flat as workers scale)");

  std::printf("(simulated seconds)\n");
  std::printf("%-12s %-9s %14s %14s %12s\n", "variant", "workers", "read phase",
              "query phase", "total");
  double b4_total = 0, b8_total = 0, fixed4_read = 0, b4_read = 0;
  for (const int workers : {4, 8}) {
    const auto b = run_variant(wc::Variant::kInstanceB, workers,
                               "fig5_instance_b_w" + std::to_string(workers));
    const auto total = b.read_s + b.query_s;
    std::printf("%-12s %-9d %12.2f s %12.2f s %10.2f s\n", "instance B", workers,
                b.read_s, b.query_s, total);
    if (workers == 4) {
      b4_total = total;
      b4_read = b.read_s;
    }
    if (workers == 8) b8_total = total;
  }
  for (const int workers : {4, 8}) {
    const auto f = run_variant(wc::Variant::kFixed, workers,
                               "fig5_fixed_w" + std::to_string(workers));
    std::printf("%-12s %-9d %12.2f s %12.2f s %10.2f s\n", "fixed", workers,
                f.read_s, f.query_s, f.read_s + f.query_s);
    if (workers == 4) fixed4_read = f.read_s;
  }

  bench::JsonReport json("fig5_instance_b");
  json.set("instance_b_4w_total_s", b4_total);
  json.set("instance_b_8w_total_s", b8_total);
  json.set("instance_b_4w_read_s", b4_read);
  json.set("fixed_4w_read_s", fixed4_read);
  json.write();

  std::printf("\nShape checks:\n");
  auto check = [](bool ok, const std::string& text) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", text.c_str());
  };
  check(b4_read > 8.0,
        util::strprintf("instance B: workers kept waiting ~11 s while PI_MAIN "
                        "reads (measured %.1f s; paper: 11 s)",
                        b4_read));
  check(std::abs(b8_total - b4_total) / b4_total < 0.15,
        util::strprintf("instance B total stays flat as workers double "
                        "(%.2f s vs %.2f s)",
                        b4_total, b8_total));
  check(fixed4_read < b4_read / 2.5,
        util::strprintf("fixed version parallelizes the read (%.2f s vs %.2f s)",
                        fixed4_read, b4_read));
  return 0;
}

// Micro-benchmarks (google-benchmark) of the logging pipeline's hot paths:
// per-event record cost (why MPE logging is "extremely slight" overhead in
// Section III-E), trace serialization, conversion, window queries, and SVG
// rendering.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "jumpshot/render.hpp"
#include "mpe/mpe.hpp"
#include "pilot/format.hpp"
#include "slog2/slog2.hpp"
#include "util/fs.hpp"
#include "util/prng.hpp"

namespace {

clog2::File synthetic_trace(int events) {
  util::SplitMix64 rng(5);
  clog2::File f;
  f.nranks = 8;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "Work", "gray", ""});
  double t = 0;
  for (int i = 0; i < events / 2; ++i) {
    const int rank = static_cast<int>(rng.below(8));
    const double dur = rng.uniform(1e-6, 1e-4);
    f.records.emplace_back(clog2::EventRec{t, rank, 10, "Line: 42"});
    f.records.emplace_back(clog2::EventRec{t + dur, rank, 11, ""});
    t += rng.uniform(1e-6, 5e-5);
  }
  return f;
}

void BM_FormatParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(pilot::parse_format("%d %100f %*lf %^d %c"));
  }
}
BENCHMARK(BM_FormatParse);

void BM_MpeLogEvent(benchmark::State& state) {
  // Cost of one buffered MPE record — the per-call price a Pilot program
  // pays under -pisvc=j. Measured inside a 1-rank world via manual timing.
  const int batch = 100000;
  for (auto _ : state) {
    mpisim::World::Config cfg;
    cfg.nprocs = 1;
    cfg.time_scale = 0;
    mpisim::World world(cfg);
    mpe::Logger logger(world, {});
    const int id = logger.get_event_number();
    logger.define_event(id, "e", "yellow");
    double elapsed = 0;
    world.run([&](mpisim::Comm& c) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < batch; ++i) logger.log_event(c, id, "Line: 42");
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
      return 0;
    });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MpeLogEvent)->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_Clog2Serialize(benchmark::State& state) {
  const auto f = synthetic_trace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clog2::serialize(f));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Clog2Serialize)->Arg(10000)->Arg(100000);

void BM_Clog2Parse(benchmark::State& state) {
  const auto bytes = clog2::serialize(synthetic_trace(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clog2::parse(bytes));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Clog2Parse)->Arg(10000)->Arg(100000);

void BM_Slog2Convert(benchmark::State& state) {
  const auto f = synthetic_trace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(slog2::convert(f));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Slog2Convert)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_Slog2WindowQuery(benchmark::State& state) {
  const auto slog = slog2::convert(synthetic_trace(200000));
  const double span = slog.t_max - slog.t_min;
  int i = 0;
  for (auto _ : state) {
    const double a = slog.t_min + span * 0.01 * (i++ % 90);
    std::size_t hits = 0;
    slog.visit_window(
        a, a + span * 0.01, [&](const slog2::StateDrawable&) { ++hits; },
        [&](const slog2::EventDrawable&) { ++hits; },
        [&](const slog2::ArrowDrawable&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_Slog2WindowQuery);

void BM_RenderSvg(benchmark::State& state) {
  const auto slog = slog2::convert(synthetic_trace(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(jumpshot::render_svg(slog));
  }
}
BENCHMARK(BM_RenderSvg)->Arg(2000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_PilotMessageRoundtrip(benchmark::State& state) {
  // Raw substrate ping-pong latency (the floor under every PI_Read).
  const int batch = 2000;
  for (auto _ : state) {
    mpisim::World::Config cfg;
    cfg.nprocs = 2;
    cfg.time_scale = 0;
    cfg.watchdog_seconds = 60;
    mpisim::World world(cfg);
    double elapsed = 0;
    world.run([&](mpisim::Comm& c) {
      int v = 0;
      if (c.rank() == 0) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < batch; ++i) {
          c.send(1, 0, &v, sizeof v);
          c.recv(1, 1, &v, sizeof v);
        }
        elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                      .count();
      } else {
        for (int i = 0; i < batch; ++i) {
          c.recv(0, 0, &v, sizeof v);
          c.send(0, 1, &v, sizeof v);
        }
      }
      return 0;
    });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PilotMessageRoundtrip)->UseManualTime()->Unit(benchmark::kMillisecond);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// bench_out/BENCH_micro_logging.json so this bench leaves the same
// machine-readable artifact as the others (google-benchmark's native JSON
// schema rather than bench::JsonReport's flat one).
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  bool has_out = false;
  for (const auto& a : args)
    if (a.rfind("--benchmark_out=", 0) == 0) has_out = true;
  if (!has_out) {
    args.push_back("--benchmark_out=" +
                   (bench::out_dir() / "BENCH_micro_logging.json").string());
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argp;
  for (auto& a : args) argp.push_back(a.data());
  int ac = static_cast<int>(argp.size());
  benchmark::Initialize(&ac, argp.data());
  if (benchmark::ReportUnrecognizedArguments(ac, argp.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

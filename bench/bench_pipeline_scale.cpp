// Pipeline scaling sweep: trace size x thread count through the offline
// toolchain — tracegen -> k-way merge -> parallel clog2->slog2 conversion ->
// Navigator-windowed render. Emits BENCH_pipeline.json with the headline
// numbers the perf acceptance criteria read:
//   - convert speedup at 4 threads vs 1 on the large trace,
//   - k-way merge vs the seed's concat+stable_sort path,
//   - zoomed window render wall time flat across trace sizes.
//
// `--large=0` skips the big trace (the ci_bench.sh smoke leg does this);
// `--threads-max=N` caps the thread sweep.
#include <algorithm>
#include <chrono>
#include <thread>
#include <variant>

#include "bench_common.hpp"
#include "jumpshot/render.hpp"
#include "mpe/mpe.hpp"
#include "slog2/slog2.hpp"
#include "tracegen/tracegen.hpp"

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int rank_of(const clog2::Record& rec) {
  if (const auto* e = std::get_if<clog2::EventRec>(&rec)) return e->rank;
  if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) return m->rank;
  return -1;  // definition records carry no rank
}

struct SizeResult {
  std::size_t records = 0;
  double gen_ms = 0;
  double merge_sort_ms = 0;
  double merge_kway_ms = 0;
  bool merge_identical = false;
  std::vector<std::pair<int, double>> convert_ms;  // (threads, ms)
  bool deterministic = false;
  double render_ms = 0;
  std::size_t frames_decoded = 0;
  std::size_t total_frames = 0;
};

SizeResult run_size(std::uint64_t events, int nranks, int threads_max,
                    const std::string& label) {
  SizeResult out;

  tracegen::Options gopt;
  gopt.seed = 42;
  gopt.nranks = nranks;
  gopt.events = events;
  auto t0 = std::chrono::steady_clock::now();
  const auto trace = tracegen::generate(gopt);
  out.gen_ms = ms_since(t0);
  out.records = trace.records.size();
  std::printf("[%s] generated %zu records (%d ranks) in %.0f ms\n",
              label.c_str(), out.records, nranks, out.gen_ms);

  // Merge stage: split the timed records back into per-rank streams (each is
  // time-ordered because the whole trace is), then race the seed's
  // concat+stable_sort against mpe::merge_timed's k-way heap.
  {
    std::vector<std::vector<clog2::Record>> streams(
        static_cast<std::size_t>(nranks));
    for (const auto& rec : trace.records)
      if (const int r = rank_of(rec); r >= 0)
        streams[static_cast<std::size_t>(r)].push_back(rec);

    auto sorted = streams;
    t0 = std::chrono::steady_clock::now();
    std::vector<clog2::Record> concat;
    for (auto& s : sorted) {
      concat.insert(concat.end(), std::make_move_iterator(s.begin()),
                    std::make_move_iterator(s.end()));
    }
    std::stable_sort(concat.begin(), concat.end(),
                     [](const clog2::Record& a, const clog2::Record& b) {
                       return mpe::record_time(a) < mpe::record_time(b);
                     });
    out.merge_sort_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const auto merged = mpe::merge_timed(std::move(streams));
    out.merge_kway_ms = ms_since(t0);

    clog2::File a, b;
    a.nranks = b.nranks = nranks;
    a.records = std::move(concat);
    b.records = merged;
    out.merge_identical = clog2::serialize(a) == clog2::serialize(b);
    std::printf("[%s] merge: stable_sort %.0f ms, k-way %.0f ms (%.2fx), "
                "identical=%d\n",
                label.c_str(), out.merge_sort_ms, out.merge_kway_ms,
                out.merge_kway_ms > 0 ? out.merge_sort_ms / out.merge_kway_ms
                                      : 0.0,
                out.merge_identical ? 1 : 0);
  }

  // Convert stage: thread sweep, byte-identity checked across the sweep.
  std::vector<std::uint8_t> first_bytes;
  slog2::File slog;
  out.deterministic = true;
  for (int t = 1; t <= threads_max; t *= 2) {
    slog2::ConvertOptions copt;
    copt.threads = t;
    t0 = std::chrono::steady_clock::now();
    slog = slog2::convert(trace, copt);
    const double ms = ms_since(t0);
    out.convert_ms.emplace_back(t, ms);
    const auto bytes = slog2::serialize(slog);
    if (first_bytes.empty()) first_bytes = bytes;
    else if (bytes != first_bytes) out.deterministic = false;
    std::printf("[%s] convert --threads=%d: %.0f ms (%.0f events/s)\n",
                label.c_str(), t, ms,
                static_cast<double>(events) / (ms / 1e3));
  }

  // Render stage: a fixed-duration zoomed window through the Navigator. The
  // window's absolute width is constant, so its drawable count depends on
  // event density, not total trace length — wall time must not scale with
  // trace size.
  {
    const auto path = bench::out_dir() / ("pipeline_" + label + ".slog2");
    slog2::write_file(path, slog);
    slog2::Navigator nav(path);
    const double mid = (nav.t_min() + nav.t_max()) / 2;
    jumpshot::RenderOptions ropt;
    ropt.t0 = mid;
    ropt.t1 = mid + 1e-3;  // ~100 events/rank at the default 10 us mean step
    t0 = std::chrono::steady_clock::now();
    const auto svg = jumpshot::render_svg(nav, ropt);
    out.render_ms = ms_since(t0);
    out.frames_decoded = nav.frames_decoded();
    out.total_frames = nav.total_frames();
    std::printf("[%s] windowed render: %.2f ms, %zu bytes of SVG, decoded "
                "%zu of %zu frames\n",
                label.c_str(), out.render_ms, svg.size(), out.frames_decoded,
                out.total_frames);
  }
  return out;
}

void report(bench::JsonReport& json, const std::string& label,
            std::uint64_t events, const SizeResult& r) {
  json.set("events_" + label, static_cast<unsigned long long>(events));
  json.set("records_" + label, r.records);
  json.set("gen_ms_" + label, r.gen_ms);
  json.set("merge_sort_ms_" + label, r.merge_sort_ms);
  json.set("merge_kway_ms_" + label, r.merge_kway_ms);
  json.set("merge_speedup_" + label,
           r.merge_kway_ms > 0 ? r.merge_sort_ms / r.merge_kway_ms : 0.0);
  json.set("merge_identical_" + label, r.merge_identical);
  double t1_ms = 0;
  for (const auto& [t, ms] : r.convert_ms) {
    json.set(util::strprintf("convert_ms_t%d_%s", t, label.c_str()), ms);
    json.set(util::strprintf("convert_events_per_sec_t%d_%s", t, label.c_str()),
             static_cast<double>(events) / (ms / 1e3));
    if (t == 1) t1_ms = ms;
    else if (ms > 0)
      json.set(util::strprintf("convert_speedup_t%d_%s", t, label.c_str()),
               t1_ms / ms);
  }
  json.set("deterministic_" + label, r.deterministic);
  json.set("window_render_ms_" + label, r.render_ms);
  json.set("frames_decoded_" + label, r.frames_decoded);
  json.set("total_frames_" + label, r.total_frames);
}

}  // namespace

int main(int argc, char** argv) {
  const auto small = static_cast<std::uint64_t>(
      bench::arg_int(argc, argv, "small", 100000));
  const auto large = static_cast<std::uint64_t>(
      bench::arg_int(argc, argv, "large", 1000000));
  const int nranks = static_cast<int>(bench::arg_int(argc, argv, "ranks", 8));
  int threads_max =
      static_cast<int>(bench::arg_int(argc, argv, "threads-max", 8));
  threads_max = std::max(1, threads_max);

  bench::heading("Pipeline scaling: trace size x threads",
                 "offline toolchain at and beyond classroom scale (10^5..10^6 "
                 "events; see docs/PERF.md)");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u (sweep capped at %d)\n\n", hw, threads_max);

  bench::JsonReport json("pipeline");
  json.set("hardware_threads", static_cast<unsigned long long>(hw));
  json.set("ranks", nranks);

  const auto s = run_size(small, nranks, threads_max, "small");
  report(json, "small", small, s);
  bool ok = s.merge_identical && s.deterministic;

  if (large > 0) {
    std::printf("\n");
    const auto l = run_size(large, nranks, threads_max, "large");
    report(json, "large", large, l);
    ok = ok && l.merge_identical && l.deterministic;
    json.set("render_ms_ratio_large_vs_small",
             s.render_ms > 0 ? l.render_ms / s.render_ms : 0.0);

    std::printf("\nShape checks:\n");
    auto check = [&](bool cond, const std::string& text) {
      std::printf("  [%s] %s\n", cond ? "ok" : "MISMATCH", text.c_str());
    };
    check(s.merge_identical && l.merge_identical,
          "k-way merge output byte-identical to the sort path");
    check(s.deterministic && l.deterministic,
          "conversion byte-identical across the thread sweep");
    check(l.render_ms < s.render_ms * 2 + 5.0,
          util::strprintf("fixed-window render does not scale with trace size "
                          "(%.2f ms small, %.2f ms large)",
                          s.render_ms, l.render_ms));
    check(l.merge_sort_ms / std::max(l.merge_kway_ms, 1e-9) > 1.0,
          util::strprintf("k-way merge beats concat+stable_sort (%.2fx)",
                          l.merge_sort_ms / std::max(l.merge_kway_ms, 1e-9)));
  }
  json.write();
  return ok ? 0 : 1;
}

// Parallel query-engine scaling bench: the perf acceptance criteria for the
// sharded src/query core (docs/PERF.md). Emits BENCH_query_scale.json with
// the numbers tools/ci_bench.sh gates on:
//   - state-duration rollup wall time at 1 and 8 workers and the speedup
//     (the >= 3x claim at the million-event size, gated only on machines
//     with >= 8 hardware threads),
//   - windowed LegendSweep wall time through a Navigator at 1 and 8 workers
//     and the speedup,
//   - tracecheck end-to-end wall time at 1 and 8 workers,
//   - a byte-identity canary: every parallel result must equal its serial
//     twin exactly, or the bench exits nonzero,
//   - a shared-cache canary: re-sweeping the same window must be served
//     from the process-wide FrameCache (zero new misses), or the bench
//     exits nonzero.
//
// `--small=EVENTS` (CI smoke) and `--large=EVENTS` (the paper-scale 10^6
// point) size the sweep; 0 skips a leg.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "analyze/tracecheck.hpp"
#include "bench_common.hpp"
#include "clog2/clog2.hpp"
#include "query/parallel_sweep.hpp"
#include "query/rollup.hpp"
#include "query/slog2_rollup.hpp"
#include "query/trace.hpp"
#include "slog2/frame_cache.hpp"
#include "slog2/slog2.hpp"
#include "tracegen/tracegen.hpp"

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best-of-3 wall time of `fn` in milliseconds.
template <typename Fn>
double best_ms(const Fn& fn) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double ms = ms_since(t0);
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

bool durations_equal(const query::StateDurations& a,
                     const query::StateDurations& b) {
  if (a.by_rank_state.size() != b.by_rank_state.size()) return false;
  auto ia = a.by_rank_state.begin();
  auto ib = b.by_rank_state.begin();
  for (; ia != a.by_rank_state.end(); ++ia, ++ib) {
    if (ia->first != ib->first || ia->second.count != ib->second.count ||
        ia->second.total_seconds != ib->second.total_seconds ||
        ia->second.histogram != ib->second.histogram)
      return false;
  }
  return true;
}

bool totals_equal(const std::map<std::int32_t, query::LegendTotals>& a,
                  const std::map<std::int32_t, query::LegendTotals>& b) {
  if (a.size() != b.size()) return false;
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first || ia->second.count != ib->second.count ||
        ia->second.inclusive != ib->second.inclusive ||
        ia->second.exclusive != ib->second.exclusive)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::heading("parallel query-engine scaling",
                 "sharded rollups/sweeps vs serial (docs/PERF.md)");
  bench::JsonReport report("query_scale");

  const unsigned hw = std::thread::hardware_concurrency();
  report.set("hardware_threads", static_cast<unsigned long long>(hw));
  std::printf("hardware threads: %u\n", hw);

  const std::vector<std::pair<std::string, std::uint64_t>> sizes = {
      {"small", static_cast<std::uint64_t>(
                    bench::arg_int(argc, argv, "small", 200000))},
      {"large", static_cast<std::uint64_t>(
                    bench::arg_int(argc, argv, "large", 1000000))},
  };

  bool all_identical = true;
  bool cache_canary = true;
  for (const auto& [label, events] : sizes) {
    if (events == 0) continue;
    tracegen::Options gopt;
    gopt.seed = 17;
    gopt.nranks = 16;
    gopt.events = events;
    gopt.arrow_fraction = 0.3;
    const clog2::File ref = tracegen::generate(gopt);

    // --- rollup leg: Trace build + state_durations ------------------------
    const query::Trace trace(ref);
    query::StateDurations sd1, sd8;
    const double rollup_t1 =
        best_ms([&] { sd1 = query::state_durations(trace, 1); });
    const double rollup_t8 =
        best_ms([&] { sd8 = query::state_durations(trace, 8); });
    if (!durations_equal(sd1, sd8)) {
      std::fprintf(stderr, "FAIL: parallel state_durations diverged at %s\n",
                   label.c_str());
      all_identical = false;
    }
    const query::Trace trace8(ref, 8);
    if (trace8.steps().size() != trace.steps().size() ||
        trace8.by_rank() != trace.by_rank()) {
      std::fprintf(stderr, "FAIL: parallel Trace build diverged at %s\n",
                   label.c_str());
      all_identical = false;
    }

    // --- sweep leg: windowed LegendSweep through a Navigator --------------
    slog2::ConvertOptions co;
    co.encoding = slog2::FrameEncoding::kV2;
    const std::vector<std::uint8_t> bytes =
        slog2::serialize(slog2::convert(ref, co));
    slog2::Navigator nav(bytes);
    const double a = nav.t_min(), b = nav.t_max();
    std::map<std::int32_t, query::LegendTotals> lt1, lt8;
    const double sweep_t1 = best_ms([&] {
      query::LegendSweep s = query::legend_window(nav, a, b, 1);
      lt1 = s.totals(1);
    });
    const double sweep_t8 = best_ms([&] {
      query::LegendSweep s = query::legend_window(nav, a, b, 8);
      lt8 = s.totals(8);
    });
    if (!totals_equal(lt1, lt8)) {
      std::fprintf(stderr, "FAIL: parallel legend sweep diverged at %s\n",
                   label.c_str());
      all_identical = false;
    }

    // Shared-cache canary: every frame is warm after the sweeps above, so
    // one more pass must add hits and zero misses.
    const auto before = slog2::FrameCache::global().stats();
    (void)query::legend_window(nav, a, b, 8);
    const auto after = slog2::FrameCache::global().stats();
    if (after.misses != before.misses || after.hits <= before.hits) {
      std::fprintf(stderr,
                   "FAIL: warm re-sweep missed the shared cache at %s "
                   "(hits %llu -> %llu, misses %llu -> %llu)\n",
                   label.c_str(), static_cast<unsigned long long>(before.hits),
                   static_cast<unsigned long long>(after.hits),
                   static_cast<unsigned long long>(before.misses),
                   static_cast<unsigned long long>(after.misses));
      cache_canary = false;
    }

    // --- tracecheck leg: the whole checker end to end ---------------------
    analyze::TraceCheckOptions c1, c8;
    c1.threads = 1;
    c8.threads = 8;
    std::size_t findings1 = 0, findings8 = 0;
    const double check_t1 =
        best_ms([&] { findings1 = analyze::check_trace(ref, c1).finding_count(); });
    const double check_t8 =
        best_ms([&] { findings8 = analyze::check_trace(ref, c8).finding_count(); });
    if (findings1 != findings8) {
      std::fprintf(stderr, "FAIL: tracecheck verdict changed with threads at %s\n",
                   label.c_str());
      all_identical = false;
    }

    const double rollup_speedup = rollup_t8 > 0.0 ? rollup_t1 / rollup_t8 : 0.0;
    const double sweep_speedup = sweep_t8 > 0.0 ? sweep_t1 / sweep_t8 : 0.0;
    const double check_speedup = check_t8 > 0.0 ? check_t1 / check_t8 : 0.0;
    const double evs = static_cast<double>(trace.steps().size());

    std::printf("%-5s (%llu events):\n", label.c_str(),
                static_cast<unsigned long long>(events));
    std::printf("  rollup      t1 %8.2f ms  t8 %8.2f ms  speedup %.2fx\n",
                rollup_t1, rollup_t8, rollup_speedup);
    std::printf("  sweep       t1 %8.2f ms  t8 %8.2f ms  speedup %.2fx\n",
                sweep_t1, sweep_t8, sweep_speedup);
    std::printf("  tracecheck  t1 %8.2f ms  t8 %8.2f ms  speedup %.2fx\n",
                check_t1, check_t8, check_speedup);

    report.set("events_" + label, events);
    report.set("rollup_ms_t1_" + label, rollup_t1);
    report.set("rollup_ms_t8_" + label, rollup_t8);
    report.set("rollup_speedup_t8_" + label, rollup_speedup);
    report.set("rollup_events_per_sec_t1_" + label,
               evs / (rollup_t1 / 1000.0));
    report.set("sweep_ms_t1_" + label, sweep_t1);
    report.set("sweep_ms_t8_" + label, sweep_t8);
    report.set("sweep_speedup_t8_" + label, sweep_speedup);
    report.set("check_ms_t1_" + label, check_t1);
    report.set("check_ms_t8_" + label, check_t8);
    report.set("check_speedup_t8_" + label, check_speedup);
  }

  const auto st = slog2::FrameCache::global().stats();
  report.set("cache_hits", static_cast<unsigned long long>(st.hits));
  report.set("cache_misses", static_cast<unsigned long long>(st.misses));
  report.set("cache_hit_canary", cache_canary);
  report.set("parallel_matches_serial", all_identical);
  report.write();
  return (all_identical && cache_canary) ? 0 : 1;
}

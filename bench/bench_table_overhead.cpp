// Table (Section III-E): logging overhead on the thumbnail application.
//
// Paper's measurement: 1058 input files, 5 or 10 work processes (plus one
// for PI_MAIN), median of 10 runs [variance]:
//
//              5 workers        10 workers
//   no log     30.97 s [0.24]   14.42 s [1.40]
//   MPE log    30.03 s [0.23]   14.42 s [0.87]    (+ wrap-up 0.74 / 0.84 s)
//   native     40.64 s [...]    16.2  s [...]     (extra rank displaces work)
//   (error-check level was essentially inconsequential)
//
// Shape to reproduce: near-2x speedup 5 -> 10 workers; MPE logging within
// noise of no-log; native logging visibly slower (its service rank competes
// for a core on the fully subscribed machine); check level ~free; MPE
// wrap-up under a second.
//
// Methodology: virtual compute costs scaled by -pisim-scale (0.02 wall s
// per virtual s), simulated machine sized to exactly the compute ranks.
// Reported seconds are wall / scale, i.e. simulated seconds; real codec /
// messaging work adds a few percent uniformly across configurations.
#include "bench_common.hpp"
#include "workloads/thumbnail_app.hpp"

namespace {

constexpr double kScale = 0.02;
constexpr int kFiles = 1058;

struct ConfigResult {
  std::vector<double> seconds;  // simulated
  std::vector<double> wrapup;
};

ConfigResult run_config(int workers, const std::string& svc, int check, int reps,
                        bool record = false) {
  workloads::thumbnail::Config cfg;
  cfg.files = kFiles;
  // The paper runs a fixed "mpirun -np": with native logging enabled the
  // service claims the last rank, leaving one fewer decompressor — that is
  // the "displaced worker" behind 40.64 s = 30.97 * 5/4 and
  // 16.2 s ~ 14.42 * 10/9 in the paper's table.
  cfg.workers = svc == "c" ? workers - 1 : workers;
  cfg.image_size = 16;
  // Calibrated so 5 workers ~ 31 simulated seconds on 1058 files.
  cfg.costs.decode_per_pixel = 0.1464 / 256.0;  // ~0.146 s per 16x16 file
  cfg.costs.encode_per_pixel = 0.009 / 90.0;    // ~9 ms per thumbnail
  cfg.costs.io_per_byte = 4.0e-9;
  cfg.pilot_args = {
      util::strprintf("-pisim-scale=%g", kScale),
      // The simulated machine exactly fits the compute ranks (main + C +
      // workers); a native-log service rank must then displace them.
      util::strprintf("-pisim-cores=%d", workers + 2),
      util::strprintf("-picheck=%d", check),
      // The paper's native-log numbers are explained by worker displacement
      // alone (40.64 ~ 30.97 * 5/4, 16.2 ~ 14.42 * 10/9); at this time
      // scale a per-event virtual cost would add a sleep-granularity
      // artifact instead of signal, so disable it here.
      "-pinativecost=0",
      "-piout=" + bench::out_dir().string(),
      "-piwatchdog=300",
  };
  if (!svc.empty()) cfg.pilot_args.push_back("-pisvc=" + svc);
  if (record)
    cfg.pilot_args.push_back(
        "-pirecord=" + (bench::out_dir() /
                        util::strprintf("overhead_%dw.prl", workers)).string());

  ConfigResult out;
  for (int r = 0; r < reps; ++r) {
    const auto stats = workloads::thumbnail::run_app(cfg);
    if (stats.run.aborted || stats.files_out != static_cast<std::size_t>(kFiles)) {
      std::fprintf(stderr, "run failed: aborted=%d files=%zu\n",
                   stats.run.aborted ? 1 : 0, stats.files_out);
      continue;
    }
    // The paper reports MPE run time excluding wrap-up ("note, however,
    // that this disregards log wrap-up time") and lists wrap-up separately.
    const double wall = stats.wall_seconds - stats.run.mpe_wrapup_seconds;
    out.seconds.push_back(wall / kScale);
    out.wrapup.push_back(stats.run.mpe_wrapup_seconds / kScale);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::arg_int(argc, argv, "reps", 10));
  bench::heading("Table: logging overhead on the thumbnail application",
                 "Section III-E overhead table (1058 files, 5/10 workers, "
                 "median of N runs [variance])");

  struct Row {
    const char* label;
    const char* svc;
    int check;
    bool record;
    const char* paper5;
    const char* paper10;
  };
  const Row rows[] = {
      {"no logging, check 0", "", 0, false, "-", "-"},
      {"no logging, check 3", "", 3, false, "30.97 s [0.24]", "14.42 s [1.40]"},
      {"MPE log (j), check 3", "j", 3, false, "30.03 s [0.23]", "14.42 s [0.87]"},
      {"native log (c), check 3", "c", 3, false, "40.64 s", "16.2 s"},
      // Not in the paper: the replay recorder (-pirecord) on top of the
      // native log, to quantify the .prl capture cost.
      {"native log + record", "c", 3, true, "-", "-"},
  };

  std::printf("%-26s %-22s %-22s %-18s %-12s\n", "configuration", "5 workers",
              "10 workers", "paper (5w)", "paper (10w)");
  double base5 = 0, base10 = 0, mpe5 = 0, mpe10 = 0, nat5 = 0, nat10 = 0;
  double rec5 = 0, rec10 = 0;
  std::vector<double> wrap5, wrap10;
  for (const Row& row : rows) {
    const auto r5 = run_config(5, row.svc, row.check, reps, row.record);
    const auto r10 = run_config(10, row.svc, row.check, reps, row.record);
    std::printf("%-26s %-22s %-22s %-18s %-12s\n", row.label,
                bench::median_var(r5.seconds).c_str(),
                bench::median_var(r10.seconds).c_str(), row.paper5, row.paper10);
    if (std::string(row.label).rfind("no logging, check 3", 0) == 0) {
      base5 = util::median(r5.seconds);
      base10 = util::median(r10.seconds);
    }
    if (row.svc == std::string("j")) {
      mpe5 = util::median(r5.seconds);
      mpe10 = util::median(r10.seconds);
      wrap5 = r5.wrapup;
      wrap10 = r10.wrapup;
    }
    if (row.svc == std::string("c") && !row.record) {
      nat5 = util::median(r5.seconds);
      nat10 = util::median(r10.seconds);
    }
    if (row.record) {
      rec5 = util::median(r5.seconds);
      rec10 = util::median(r10.seconds);
    }
  }

  std::printf("\nMPE wrap-up time: %5.2f s (5w)  %5.2f s (10w)   paper: 0.74 / 0.84 s\n",
              util::median(wrap5), util::median(wrap10));

  bench::JsonReport json("table_overhead");
  json.set("reps", reps);
  json.set("nolog_5w_s", base5);
  json.set("nolog_10w_s", base10);
  json.set("mpe_5w_s", mpe5);
  json.set("mpe_10w_s", mpe10);
  json.set("native_5w_s", nat5);
  json.set("native_10w_s", nat10);
  json.set("record_5w_s", rec5);
  json.set("record_10w_s", rec10);
  json.set("mpe_wrapup_5w_s", util::median(wrap5));
  json.set("mpe_wrapup_10w_s", util::median(wrap10));

  std::printf("\nShape checks (paper's qualitative claims):\n");
  auto check = [](bool ok, const std::string& text) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", text.c_str());
  };
  check(base5 / base10 > 1.6,
        util::strprintf("near-2x speedup 5 -> 10 workers (ratio %.2f)",
                        base5 / base10));
  check(std::abs(mpe5 - base5) / base5 < 0.10 &&
            std::abs(mpe10 - base10) / base10 < 0.12,
        util::strprintf("MPE logging within noise of no-log (%+.1f%% / %+.1f%%)",
                        100 * (mpe5 - base5) / base5,
                        100 * (mpe10 - base10) / base10));
  check(nat5 > base5 * 1.08 && nat10 > base10 * 1.04,
        util::strprintf("native log visibly slower (%+.1f%% / %+.1f%%; paper "
                        "+31%% / +12%%)",
                        100 * (nat5 - base5) / base5,
                        100 * (nat10 - base10) / base10));
  check(nat5 / base5 > nat10 / base10,
        "displacing one of 5 workers hurts more than one of 10 (paper's shape)");
  check(util::median(wrap5) < 5.0 && util::median(wrap10) < 5.0,
        "MPE wrap-up stays bearable (a few simulated seconds at most)");
  check(rec5 < nat5 * 1.10 && rec10 < nat10 * 1.10,
        util::strprintf("replay recording (-pirecord) nearly free on top of "
                        "the native log (%+.1f%% / %+.1f%%)",
                        100 * (rec5 - nat5) / nat5,
                        100 * (rec10 - nat10) / nat10));
  return 0;
}

// Streaming-ingest bench for pilot-traced's online converter: the perf
// acceptance criteria for the live pipeline. Emits BENCH_traced.json with
// the headline numbers tools/ci_bench.sh gates on:
//   - single-session ingest throughput (records/s and MB/s) through
//     StreamReader + OnlineConverter in socket-sized chunks,
//   - 8-session aggregate throughput through the IngestPool (the
//     concurrency the daemon must sustain),
//   - live windowed-query latency on a mid-stream converter,
//   - peak live bytes for the single session (the bounded-memory claim —
//     the bench fails the run when it exceeds a quarter of the stream),
//   - a correctness canary: finalize() must match the offline converter
//     byte for byte, or the bench exits nonzero.
//
// `--small=EVENTS` overrides the trace size; `--sessions=0` skips the
// multi-session leg (not used by CI, handy when profiling the converter).
#include <chrono>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "clog2/clog2.hpp"
#include "query/slog2_rollup.hpp"
#include "slog2/slog2.hpp"
#include "traced/online_convert.hpp"
#include "traced/session.hpp"
#include "tracegen/tracegen.hpp"
#include "util/fs.hpp"

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

traced::OnlineOptions online_options(const std::filesystem::path& spill) {
  traced::OnlineOptions oo;
  oo.max_disorder = 1e-6;  // tracegen streams are sorted by construction
  oo.spill_dir = spill;
  return oo;
}

struct IngestResult {
  double ms = 0.0;
  traced::OnlineUsage usage;
  std::vector<std::uint8_t> slog2_bytes;
};

/// One full session: chunked feed, finalize, serialize.
IngestResult ingest_once(const std::vector<std::uint8_t>& bytes,
                         const traced::OnlineOptions& oo, std::size_t chunk) {
  IngestResult out;
  const auto t0 = std::chrono::steady_clock::now();
  clog2::StreamReader reader;
  traced::OnlineConverter conv(oo);
  bool begun = false;
  clog2::Record rec;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    reader.feed(bytes.data() + off, std::min(chunk, bytes.size() - off));
    for (;;) {
      const auto st = reader.next(&rec);
      if (reader.header_done() && !begun) {
        conv.begin(reader.nranks());
        begun = true;
      }
      if (st != clog2::StreamReader::Status::kRecord) break;
      conv.push(rec);
    }
  }
  out.usage = conv.usage();
  slog2::File f = conv.finalize();
  out.slog2_bytes = slog2::serialize(f);
  out.ms = ms_since(t0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto events =
      static_cast<std::uint64_t>(bench::arg_int(argc, argv, "small", 100000));
  const auto nsessions =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "sessions", 8));
  constexpr std::size_t kChunk = 64 * 1024;  // socket read size

  bench::heading("pilot-traced streaming ingest",
                 "live pipeline perf acceptance (docs/TRACED.md)");
  bench::JsonReport report("traced");
  util::TempDir spill("bench_traced");

  tracegen::Options gopt;
  gopt.seed = 42;
  gopt.nranks = 8;
  gopt.events = events;
  const clog2::File ref = tracegen::generate(gopt);
  const std::vector<std::uint8_t> bytes = clog2::serialize(ref);
  const auto nrecords = ref.records.size();
  const double mb = static_cast<double>(bytes.size()) / (1024.0 * 1024.0);
  std::printf("trace: %zu records, %.1f MB\n", nrecords, mb);
  report.set("records", nrecords);
  report.set("stream_bytes", bytes.size());

  // --- Single-session ingest (best of 3) + byte-identity canary. --------
  const traced::OnlineOptions oo = online_options(spill.path());
  IngestResult best;
  for (int rep = 0; rep < 3; ++rep) {
    IngestResult r = ingest_once(bytes, oo, kChunk);
    if (rep == 0 || r.ms < best.ms) best = std::move(r);
  }
  const double rec_per_sec = static_cast<double>(nrecords) / (best.ms / 1000.0);
  const double mb_per_sec = mb / (best.ms / 1000.0);
  std::printf("single session : %8.0f records/s  %6.1f MB/s  (%.0f ms)\n",
              rec_per_sec, mb_per_sec, best.ms);
  std::printf("  live bytes   : peak %llu, sealed %llu in %llu chunks\n",
              static_cast<unsigned long long>(best.usage.peak_live_bytes),
              static_cast<unsigned long long>(best.usage.sealed_bytes),
              static_cast<unsigned long long>(best.usage.sealed_chunks));
  report.set("ingest_records_per_sec_single", rec_per_sec);
  report.set("ingest_mb_per_sec_single", mb_per_sec);
  report.set("peak_live_bytes_single", best.usage.peak_live_bytes);

  const std::vector<std::uint8_t> offline_bytes =
      slog2::serialize(slog2::convert(ref, oo.convert));
  const bool identical = best.slog2_bytes == offline_bytes;
  report.set("online_matches_offline", identical);
  if (!identical) {
    std::fprintf(stderr, "FAIL: online conversion diverged from offline\n");
    return 1;
  }
  const bool bounded = best.usage.peak_live_bytes < bytes.size() / 4;
  report.set("live_bytes_bounded", bounded);
  if (!bounded) {
    std::fprintf(stderr,
                 "FAIL: peak live bytes %llu not bounded (stream %zu bytes)\n",
                 static_cast<unsigned long long>(best.usage.peak_live_bytes),
                 bytes.size());
    return 1;
  }

  // --- N concurrent sessions through the IngestPool. --------------------
  if (nsessions > 0) {
    traced::SessionManager mgr(nsessions);
    traced::IngestPool pool(4);
    std::vector<std::shared_ptr<traced::Session>> sessions;
    sessions.reserve(nsessions);
    for (std::size_t i = 0; i < nsessions; ++i)
      sessions.push_back(mgr.open("s" + std::to_string(i), oo));
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t off = 0; off < bytes.size(); off += kChunk) {
      const std::size_t n = std::min(kChunk, bytes.size() - off);
      for (auto& s : sessions)
        pool.submit(s, {bytes.begin() + static_cast<std::ptrdiff_t>(off),
                        bytes.begin() + static_cast<std::ptrdiff_t>(off + n)});
    }
    pool.drain();
    const double pool_ms = ms_since(t0);
    const double agg_mb_per_sec =
        mb * static_cast<double>(nsessions) / (pool_ms / 1000.0);
    std::printf("%zu sessions     : %6.1f MB/s aggregate  (%.0f ms)\n",
                nsessions, agg_mb_per_sec, pool_ms);
    report.set("sessions", nsessions);
    report.set("ingest_mb_per_sec_aggregate", agg_mb_per_sec);
    std::uint64_t peak_live_total = 0;
    for (auto& s : sessions)
      peak_live_total += s->status().usage.peak_live_bytes;
    report.set("peak_live_bytes_all_sessions", peak_live_total);
  }

  // --- Live windowed-query latency on a mid-stream converter. -----------
  {
    clog2::StreamReader reader;
    traced::OnlineConverter conv(oo);
    bool begun = false;
    clog2::Record rec;
    // Feed ~90% of the stream, leaving the session live.
    const std::size_t cut = bytes.size() * 9 / 10;
    for (std::size_t off = 0; off < cut; off += kChunk) {
      reader.feed(bytes.data() + off, std::min(kChunk, cut - off));
      for (;;) {
        const auto st = reader.next(&rec);
        if (reader.header_done() && !begun) {
          conv.begin(reader.nranks());
          begun = true;
        }
        if (st != clog2::StreamReader::Status::kRecord) break;
        conv.push(rec);
      }
    }
    const double hi = conv.admitted_frontier();
    std::vector<double> query_ms;
    for (int i = 0; i < 32; ++i) {
      // Sliding tenth-of-the-trace windows, the interactive zoom pattern.
      const double a = hi * static_cast<double>(i) / 32.0;
      const double b = a + hi / 10.0;
      const auto q0 = std::chrono::steady_clock::now();
      query::LegendSweep sweep;
      conv.visit_window(
          a, b, [&](const slog2::StateDrawable& s) { sweep.add_state(s); },
          [&](const slog2::EventDrawable& e) { sweep.add_event(e); },
          [&](const slog2::ArrowDrawable& ar) { sweep.add_arrow(ar); });
      const auto totals = sweep.totals();
      (void)totals;
      query_ms.push_back(ms_since(q0));
    }
    const double med = util::median(query_ms);
    std::printf("live query     : %.2f ms median (window = trace/10)\n", med);
    report.set("query_ms_median", med);
  }

  report.write();
  return 0;
}

// Trace-diff scaling sweep: tracegen a reference trace, derive a faulted
// twin (one rank's tail truncated, crash-style), and push both through
// analyze::diff_traces at increasing sizes. Emits BENCH_tracediff.json with
// the headline numbers the perf acceptance criteria read:
//   - diff throughput (records/s) on the small trace,
//   - self-diff throughput (the all-match fast path stays linear),
//   - a correctness canary: the truncated rank must top the suspect list.
//
// `--large=0` skips the big trace (the ci_bench.sh smoke leg does this);
// `--small=EVENTS` overrides the small size.
#include <chrono>
#include <cstdlib>
#include <variant>

#include "analyze/tracediff.hpp"
#include "bench_common.hpp"
#include "tracegen/tracegen.hpp"

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int rank_of(const clog2::Record& rec) {
  if (const auto* e = std::get_if<clog2::EventRec>(&rec)) return e->rank;
  if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) return m->rank;
  return -1;
}

/// Crash-style mutant: drop the second half of one rank's instance records.
clog2::File truncate_rank_tail(const clog2::File& ref, int victim) {
  std::size_t victim_records = 0;
  for (const auto& rec : ref.records)
    if (rank_of(rec) == victim) ++victim_records;
  const std::size_t keep = victim_records / 2;

  clog2::File out;
  out.version = ref.version;
  out.nranks = ref.nranks;
  out.comment = ref.comment;
  out.records.reserve(ref.records.size());
  std::size_t seen = 0;
  for (const auto& rec : ref.records) {
    if (rank_of(rec) == victim && ++seen > keep) continue;
    out.records.push_back(rec);
  }
  return out;
}

struct SizeResult {
  std::size_t records = 0;
  double diff_ms = 0;
  double selfdiff_ms = 0;
  bool localized = false;
};

SizeResult run_size(std::uint64_t events, int nranks, const std::string& label) {
  SizeResult out;

  tracegen::Options gopt;
  gopt.seed = 42;
  gopt.nranks = nranks;
  gopt.events = events;
  const clog2::File ref = tracegen::generate(gopt);
  out.records = ref.records.size();

  const int victim = nranks / 2;
  const clog2::File mutant = truncate_rank_tail(ref, victim);

  // Best-of-3 so one scheduler hiccup does not set the number.
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    const analyze::TraceDiffResult res = analyze::diff_traces(ref, mutant);
    const double ms = ms_since(t0);
    if (rep == 0 || ms < out.diff_ms) out.diff_ms = ms;
    out.localized = res.structural_diverged && !res.suspects.empty() &&
                    res.suspects.front().rank == victim;
  }
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    const analyze::TraceDiffResult res = analyze::diff_traces(ref, ref);
    const double ms = ms_since(t0);
    if (rep == 0 || ms < out.selfdiff_ms) out.selfdiff_ms = ms;
    if (res.diverged()) out.localized = false;  // self-diff must be clean
  }

  std::printf("[%s] %zu records: diff %.1f ms (%.0f records/s), self-diff "
              "%.1f ms, victim rank %d %s\n",
              label.c_str(), out.records, out.diff_ms,
              1000.0 * static_cast<double>(out.records) / out.diff_ms,
              out.selfdiff_ms, victim,
              out.localized ? "localized" : "NOT LOCALIZED");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::heading("trace-diff scaling sweep",
                 "cross-run diff acceptance: linear-time localization");
  const auto small = static_cast<std::uint64_t>(
      bench::arg_int(argc, argv, "small", 100000));
  const auto large = static_cast<std::uint64_t>(
      bench::arg_int(argc, argv, "large", 1000000));

  bench::JsonReport report("tracediff");
  bool ok = true;

  const SizeResult s = run_size(small, 8, "small");
  ok = ok && s.localized;
  report.set("small_records", s.records);
  report.set("diff_records_per_sec_small",
             1000.0 * static_cast<double>(s.records) / s.diff_ms);
  report.set("selfdiff_records_per_sec_small",
             1000.0 * static_cast<double>(s.records) / s.selfdiff_ms);
  report.set("small_localized", s.localized);

  if (large > 0) {
    const SizeResult l = run_size(large, 16, "large");
    ok = ok && l.localized;
    report.set("large_records", l.records);
    report.set("diff_records_per_sec_large",
               1000.0 * static_cast<double>(l.records) / l.diff_ms);
    report.set("large_localized", l.localized);
  }

  report.write();
  if (!ok) {
    std::fprintf(stderr, "FAIL: truncated rank did not top the suspect list\n");
    return 1;
  }
  return 0;
}

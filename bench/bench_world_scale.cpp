// World-scale sweep: thread-per-rank vs task-scheduled ranks on the same
// compute-and-ring workload, 64 to 10000 ranks. Emits BENCH_world_scale.json
// with wall time and peak RSS per (mode, ranks) cell plus the headline
// speedups the perf acceptance criteria read: under tasks the charged
// compute retires in *virtual* time, so wall time is scheduling overhead
// only, while the threads substrate pays the modeled time for real (and
// eventually cannot spawn the world at all).
//
// `--quick=1` trims both sweeps for the ci_bench.sh smoke leg.
#include <sys/resource.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mpisim/types.hpp"
#include "mpisim/world.hpp"

namespace {

constexpr int kRounds = 10;
constexpr double kComputePerRound = 1e-3;  // 1 ms of modeled CPU per round

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Process peak RSS in MB. A high-water mark: it only ever grows, so the
/// sweep runs tasks (small footprint) before threads (rank stacks) and each
/// snapshot bounds every configuration up to that point.
double peak_rss_mb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

struct Cell {
  bool feasible = false;
  double wall_ms = 0;
  double rss_mb = 0;
  std::string note;
};

/// Every rank: kRounds x { charge 1 ms of compute, pass a token around the
/// ring }. Self-checking — a wrong token fails the whole cell.
Cell run_ring(int nranks, mpisim::ExecMode mode) {
  Cell cell;
  mpisim::World::Config cfg;
  cfg.nprocs = nranks;
  cfg.exec = mode;
  cfg.cpu_cores = 8;
  cfg.time_scale = 1.0;
  cfg.seed = 7;
  cfg.watchdog_seconds = 300.0;

  const auto t0 = std::chrono::steady_clock::now();
  try {
    mpisim::World world(cfg);
    const auto res = world.run([nranks](mpisim::Comm& c) {
      const int next = (c.rank() + 1) % nranks;
      const int prev = (c.rank() + nranks - 1) % nranks;
      for (int round = 0; round < kRounds; ++round) {
        c.compute(kComputePerRound);
        int token = c.rank() * 31 + round;
        c.send(next, 1, &token, sizeof token);
        int got = 0;
        c.recv(prev, 1, &got, sizeof got);
        if (got != prev * 31 + round) return 1;
      }
      return 0;
    });
    cell.wall_ms = ms_since(t0);
    cell.feasible = !res.aborted;
    if (res.aborted) cell.note = util::strprintf("aborted (%d)", res.abort_code);
    for (const int code : res.exit_codes)
      if (code != 0) {
        cell.feasible = false;
        cell.note = "ring token mismatch";
      }
  } catch (const mpisim::SpawnError& e) {
    cell.wall_ms = ms_since(t0);
    cell.note = e.what();
  } catch (const mpisim::TimeoutError&) {
    cell.wall_ms = ms_since(t0);
    cell.note = "watchdog timeout";
  }
  cell.rss_mb = peak_rss_mb();
  return cell;
}

const char* mode_key(mpisim::ExecMode m) {
  return m == mpisim::ExecMode::kTasks ? "tasks" : "threads";
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::arg_int(argc, argv, "quick", 0) != 0;
  bench::heading("world scale: thread-per-rank vs task-scheduled ranks",
                 "scaling the simulator beyond the paper's 8-25 process runs");

  std::vector<int> task_sizes = quick ? std::vector<int>{64, 256, 1024}
                                      : std::vector<int>{64, 256, 1024, 4096, 10000};
  std::vector<int> thread_sizes =
      quick ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024};

  bench::JsonReport json("world_scale");
  json.set("quick", quick);
  json.set("rounds", kRounds);
  json.set("compute_per_round_s", kComputePerRound);

  std::printf("%-8s %7s %12s %10s  %s\n", "mode", "ranks", "wall(ms)",
              "rss(MB)", "note");

  // Tasks first so its RSS snapshots are not inflated by thread stacks.
  std::vector<std::pair<int, double>> tasks_ms, threads_ms;
  for (const mpisim::ExecMode mode :
       {mpisim::ExecMode::kTasks, mpisim::ExecMode::kThreads}) {
    const auto& sizes =
        mode == mpisim::ExecMode::kTasks ? task_sizes : thread_sizes;
    for (const int n : sizes) {
      const Cell cell = run_ring(n, mode);
      std::printf("%-8s %7d %12.1f %10.1f  %s\n", mode_key(mode), n,
                  cell.wall_ms, cell.rss_mb, cell.note.c_str());
      const std::string key = util::strprintf("%s_r%d", mode_key(mode), n);
      json.set(key + "_feasible", cell.feasible);
      json.set(key + "_ms", cell.wall_ms);
      json.set("rss_mb_after_" + key, cell.rss_mb);
      if (cell.feasible) {
        (mode == mpisim::ExecMode::kTasks ? tasks_ms : threads_ms)
            .emplace_back(n, cell.wall_ms);
      }
    }
  }

  // Headline: at every rank count both substrates completed, how much wall
  // time does virtual-time task scheduling save?
  for (const auto& [n, t_ms] : tasks_ms)
    for (const auto& [m, th_ms] : threads_ms)
      if (n == m && t_ms > 0) {
        const double speedup = th_ms / t_ms;
        std::printf("speedup at %d ranks: %.1fx\n", n, speedup);
        json.set(util::strprintf("speedup_r%d", n), speedup);
      }
  json.set("tasks_max_feasible_ranks",
           tasks_ms.empty() ? 0 : tasks_ms.back().first);
  json.set("threads_max_feasible_ranks",
           threads_ms.empty() ? 0 : threads_ms.back().first);

  json.write();
  return 0;
}

# One binary per paper table/figure plus ablations; see DESIGN.md's
# per-experiment index. All are runnable with no arguments.
#
# Included from the top-level CMakeLists (not add_subdirectory) so that
# ${CMAKE_BINARY_DIR}/bench holds ONLY the bench executables — the canonical
# harness loop is `for b in build/bench/*; do $b; done`.
function(pilot_add_bench name src)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${src})
  target_link_libraries(${name} PRIVATE ${ARGN} pilot_warnings)
  target_include_directories(${name} PRIVATE
    ${CMAKE_SOURCE_DIR}/src ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

pilot_add_bench(bench_table_overhead bench_table_overhead.cpp pilot_workloads)
pilot_add_bench(bench_fig1_thumbnail_full bench_fig1_thumbnail_full.cpp
  pilot_workloads pilot_slog2 pilot_jumpshot)
pilot_add_bench(bench_fig2_thumbnail_zoom bench_fig2_thumbnail_zoom.cpp
  pilot_workloads pilot_slog2 pilot_jumpshot)
pilot_add_bench(bench_fig3_lab2 bench_fig3_lab2.cpp
  pilot_core pilot_slog2 pilot_jumpshot)
pilot_add_bench(bench_fig4_instance_a bench_fig4_instance_a.cpp
  pilot_workloads pilot_slog2 pilot_jumpshot)
pilot_add_bench(bench_fig5_instance_b bench_fig5_instance_b.cpp
  pilot_workloads pilot_slog2 pilot_jumpshot)
pilot_add_bench(bench_ablation_arrow_spread bench_ablation_arrow_spread.cpp
  pilot_core pilot_slog2)
pilot_add_bench(bench_ablation_frame_size bench_ablation_frame_size.cpp
  pilot_slog2)
pilot_add_bench(bench_ablation_clock_sync bench_ablation_clock_sync.cpp
  pilot_mpe)
pilot_add_bench(bench_micro_logging bench_micro_logging.cpp
  pilot_mpe pilot_slog2 pilot_jumpshot pilot_core benchmark::benchmark)
pilot_add_bench(bench_pipeline_scale bench_pipeline_scale.cpp
  pilot_mpe pilot_slog2 pilot_jumpshot pilot_tracegen)
pilot_add_bench(bench_world_scale bench_world_scale.cpp
  pilot_mpisim)
pilot_add_bench(bench_tracediff bench_tracediff.cpp
  pilot_analyze pilot_tracegen)
pilot_add_bench(bench_traced bench_traced.cpp
  pilot_traced pilot_tracegen)
pilot_add_bench(bench_compress bench_compress.cpp
  pilot_slog2 pilot_query pilot_tracegen)
pilot_add_bench(bench_query_scale bench_query_scale.cpp
  pilot_analyze pilot_query pilot_slog2 pilot_tracegen)

// The paper's Section IV-B debugging assignment: parallel queries over a
// large collision CSV. --variant selects the intended program ("fixed") or
// one of the two student submissions whose logs are shown in Fig. 4
// (instance A: serialized query loop) and Fig. 5 (instance B: single-
// threaded file read).
//
// Reproduce Fig. 4 / Fig. 5:
//
//   ./collision_query --variant=a -pisvc=j -pisim-scale=0.01 -piname=figA
//   ./pilot-clog2toslog2 figA.clog2 && ./pilot-jumpshot figA.slog2 --out=fig4.svg
#include <cstdio>
#include <exception>

#include "util/cli.hpp"
#include "workloads/collision_app.hpp"

int main(int argc, char* argv[]) {
  try {
    std::vector<std::string> pilot_args;
    std::vector<std::string> own = {argv[0]};
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      (a.rfind("-pi", 0) == 0 ? pilot_args : own).push_back(a);
    }
    std::vector<char*> own_ptrs;
    for (auto& s : own) own_ptrs.push_back(s.data());
    util::ArgParser args(static_cast<int>(own_ptrs.size()), own_ptrs.data());

    namespace wc = workloads::collisions;
    wc::AppConfig cfg;
    const std::string variant = args.get_or("variant", "fixed");
    if (variant == "fixed") {
      cfg.variant = wc::Variant::kFixed;
    } else if (variant == "a") {
      cfg.variant = wc::Variant::kInstanceA;
    } else if (variant == "b") {
      cfg.variant = wc::Variant::kInstanceB;
    } else {
      std::fprintf(stderr, "--variant must be fixed, a, or b\n");
      return 2;
    }
    cfg.workers = static_cast<int>(args.get_int_or("workers", 4));
    cfg.records = static_cast<std::size_t>(args.get_int_or("records", 100000));
    cfg.query_rounds = static_cast<int>(args.get_int_or("rounds", 4));
    cfg.pilot_args = pilot_args;

    const auto stats = wc::run_app(cfg);
    std::printf("collision query (%s, %d workers, %zu records)\n",
                wc::variant_name(cfg.variant).c_str(), cfg.workers, cfg.records);
    std::printf("  read phase : %.3f s (virtual clock)\n", stats.read_phase_seconds);
    std::printf("  query phase: %.3f s (virtual clock)\n", stats.query_phase_seconds);
    std::printf("  wall time  : %.3f s\n", stats.wall_seconds);
    std::printf("  results %s the sequential oracle\n",
                stats.correct() ? "MATCH" : "DO NOT MATCH");
    std::printf("  total records: %llu, fatal: %llu, max vehicles: %d\n",
                static_cast<unsigned long long>(stats.totals.total),
                static_cast<unsigned long long>(
                    stats.totals.by_severity.count(1)
                        ? stats.totals.by_severity.at(1)
                        : 0),
                stats.totals.max_vehicles);
    return stats.correct() && !stats.run.aborted ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// deadlock_demo: the classic circular-wait mistake, for teaching Pilot's
// integrated deadlock detector (the facility the paper's visual log
// complements rather than replaces).
//
//   ./deadlock_demo                 # hangs until the watchdog (60 s)
//   ./deadlock_demo -pisvc=d        # detector names the culprits instantly
//
// Alice reads from Bob before writing; Bob reads from Alice before writing.
// With -pisvc=d Pilot prints something like:
//
//   Pilot deadlock detected:
//     Alice blocked reading {BobToAlice} at deadlock_demo.cpp:NN
//     Bob blocked reading {AliceToBob} at deadlock_demo.cpp:NN
#include <cstdio>

#include "pilot/pi.hpp"

namespace {

PI_CHANNEL* alice_to_bob;
PI_CHANNEL* bob_to_alice;

int alice(int, void*) {
  int v = 0;
  PI_Read(bob_to_alice, "%d", &v);  // waits for Bob...
  PI_Write(alice_to_bob, "%d", v + 1);
  return 0;
}

int bob(int, void*) {
  int v = 0;
  PI_Read(alice_to_bob, "%d", &v);  // ...while Bob waits for Alice
  PI_Write(bob_to_alice, "%d", v + 1);
  return 0;
}

}  // namespace

int main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);
  std::printf("hint: run with -pisvc=d to enable the deadlock detector\n");

  PI_PROCESS* a = PI_CreateProcess(alice, 0, nullptr);
  PI_PROCESS* b = PI_CreateProcess(bob, 1, nullptr);
  PI_SetName(a, "Alice");
  PI_SetName(b, "Bob");
  alice_to_bob = PI_CreateChannel(a, b);
  bob_to_alice = PI_CreateChannel(b, a);
  PI_SetName(alice_to_bob, "AliceToBob");
  PI_SetName(bob_to_alice, "BobToAlice");

  PI_StartAll();
  PI_StopMain(0);  // joins the (deadlocked) workers
  std::printf("done (if you see this, the detector aborted the deadlock)\n");
  return 0;
}

// heat_ring: 1-D heat diffusion with halo exchange — the classic stencil
// pattern taught right after master/worker. Each worker owns a slab of the
// rod and swaps boundary cells with its neighbours every step; PI_MAIN
// scatters the initial condition and gathers the result.
//
// Demonstrates: neighbour channels built with PI_CopyChannels(PI_REVERSE),
// PI_Scatter / PI_Gather, custom user states (PI_DefineState) marking the
// exchange vs compute phases in the visual log:
//
//   ./heat_ring --workers=4 --cells=4000 --steps=50 -pisvc=j
//   ./pilot-clog2toslog2 pilot.clog2 && ./pilot-jumpshot pilot.slog2 --out=heat.svg
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pilot/pi.hpp"
#include "util/cli.hpp"

namespace {

constexpr int kMaxWorkers = 16;

int g_workers = 4;
int g_cells_per = 100;
int g_steps = 20;
int g_state_exchange = -1;
int g_state_compute = -1;

PI_CHANNEL* g_scatter_ch[kMaxWorkers];
PI_CHANNEL* g_gather_ch[kMaxWorkers];
PI_CHANNEL* g_right[kMaxWorkers];  // worker i -> worker i+1 (boundary cell)
PI_CHANNEL* g_left[kMaxWorkers];   // worker i+1 -> worker i

int slab_worker(int index, void*) {
  const int n = g_cells_per;
  std::vector<double> u(static_cast<std::size_t>(n) + 2, 0.0);  // + halos
  PI_Read(g_scatter_ch[index], "%*lf", n, u.data() + 1);

  for (int step = 0; step < g_steps; ++step) {
    PI_StateBegin(g_state_exchange);
    // Send my boundary cells outward, receive neighbours' into halos.
    // Interior workers talk both ways; the ends have fixed (0) boundaries.
    if (index + 1 < g_workers) PI_Write(g_right[index], "%lf", u[static_cast<std::size_t>(n)]);
    if (index > 0) PI_Write(g_left[index - 1], "%lf", u[1]);
    if (index > 0) PI_Read(g_right[index - 1], "%lf", &u[0]);
    if (index + 1 < g_workers) PI_Read(g_left[index], "%lf", &u[static_cast<std::size_t>(n) + 1]);
    PI_StateEnd(g_state_exchange);

    PI_StateBegin(g_state_compute);
    std::vector<double> next(u.size());
    for (int i = 1; i <= n; ++i) {
      const auto k = static_cast<std::size_t>(i);
      next[k] = u[k] + 0.25 * (u[k - 1] - 2 * u[k] + u[k + 1]);
    }
    next[0] = u[0];
    next[u.size() - 1] = u[u.size() - 1];
    u.swap(next);
    PI_Compute(1e-7 * n);  // simulated cost per sweep
    PI_StateEnd(g_state_compute);
  }

  PI_Write(g_gather_ch[index], "%*lf", n, u.data() + 1);
  return 0;
}

}  // namespace

int main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);
  util::ArgParser args(argc, argv);
  g_workers = static_cast<int>(
      std::min<long long>(args.get_int_or("workers", 4), kMaxWorkers));
  const int cells = static_cast<int>(args.get_int_or("cells", 400));
  g_steps = static_cast<int>(args.get_int_or("steps", 20));
  g_cells_per = cells / g_workers;

  g_state_exchange = PI_DefineState("HaloExchange", "orange");
  g_state_compute = PI_DefineState("Sweep", "SteelBlue");

  std::vector<PI_PROCESS*> workers;
  for (int i = 0; i < g_workers; ++i) {
    PI_PROCESS* w = PI_CreateProcess(slab_worker, i, nullptr);
    PI_SetName(w, ("Slab" + std::to_string(i)).c_str());
    workers.push_back(w);
    g_scatter_ch[i] = PI_CreateChannel(PI_MAIN, w);
    g_gather_ch[i] = PI_CreateChannel(w, PI_MAIN);
  }
  // Neighbour links: right[i] goes i -> i+1; left[i] is its PI_REVERSE twin.
  for (int i = 0; i + 1 < g_workers; ++i) {
    g_right[i] = PI_CreateChannel(workers[static_cast<std::size_t>(i)],
                                  workers[static_cast<std::size_t>(i) + 1]);
  }
  if (g_workers > 1) {
    PI_CHANNEL** reversed = PI_CopyChannels(PI_REVERSE, g_right, g_workers - 1);
    for (int i = 0; i + 1 < g_workers; ++i) g_left[i] = reversed[i];
    std::free(reversed);
  }
  PI_BUNDLE* scatter = PI_CreateBundle(PI_SCATTER, g_scatter_ch, g_workers);
  PI_BUNDLE* gather = PI_CreateBundle(PI_GATHER, g_gather_ch, g_workers);

  PI_StartAll();

  // Initial condition: a hot spike in the middle of the rod.
  const int total = g_cells_per * g_workers;
  std::vector<double> rod(static_cast<std::size_t>(total), 0.0);
  rod[static_cast<std::size_t>(total) / 2] = 1000.0;
  const double heat_before = 1000.0;

  PI_Scatter(scatter, "%*lf", g_cells_per, rod.data());
  PI_Gather(gather, "%*lf", g_cells_per, rod.data());

  double heat_after = 0.0, peak = 0.0;
  for (double v : rod) {
    heat_after += v;
    peak = std::max(peak, v);
  }
  std::printf("heat_ring: %d cells x %d steps on %d workers\n", total, g_steps,
              g_workers);
  std::printf("  total heat: %.3f -> %.3f (diffusion conserves it away from "
              "the cold ends)\n",
              heat_before, heat_after);
  std::printf("  peak      : 1000.000 -> %.3f (the spike spreads out)\n", peak);

  PI_StopMain(0);
  return peak < 1000.0 && heat_after > 0.0 ? 0 : 1;
}

// "lab2" — the hands-on exercise of the paper's Fig. 3, reproduced
// line-for-line in structure: PI_MAIN splits an array of random numbers
// across W workers; each worker reads its share size, then its data, sums
// it, and reports the subtotal back.
//
// Regenerate the Fig. 3 visual log with:
//
//   ./lab2 -pisvc=j -piname=lab2
//   ./pilot-clog2toslog2 lab2.clog2
//   ./pilot-jumpshot lab2.slog2 --out=lab2.svg --title="lab2 (Fig. 3)"
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pilot/pi.hpp"
#include "util/prng.hpp"

#define W 5        // fixed no. of workers
#define NUM 10000  // size of data array

namespace {

PI_PROCESS* Worker[W];
PI_CHANNEL* toWorker[W];
PI_CHANNEL* result[W];

int workerFunc(int index, void*) {
  int myshare, sum = 0, *buff;
  PI_Read(toWorker[index], "%d", &myshare);
  buff = static_cast<int*>(std::malloc(static_cast<std::size_t>(myshare) * sizeof(int)));
  PI_Read(toWorker[index], "%*d", myshare, buff);
  for (int i = 0; i < myshare; i++) sum += buff[i];
  std::free(buff);
  PI_Write(result[index], "%d", sum);
  return 0;  // exit process function
}

}  // namespace

int main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);

  for (int i = 0; i < W; i++) {
    Worker[i] = PI_CreateProcess(workerFunc, i, nullptr);
    toWorker[i] = PI_CreateChannel(PI_MAIN, Worker[i]);
    result[i] = PI_CreateChannel(Worker[i], PI_MAIN);
  }

  PI_StartAll();  // workers launch, PI_MAIN continues

  // Fill numbers array with random nos.
  std::vector<int> numbers(NUM);
  util::SplitMix64 rng(2016);
  for (int i = 0; i < NUM; i++)
    numbers[static_cast<std::size_t>(i)] = static_cast<int>(rng.below(100));

  for (int i = 0; i < W; i++) {
    int portion = NUM / W;
    if (i == W - 1) portion += NUM % W;
    PI_Write(toWorker[i], "%d", portion);
    PI_Write(toWorker[i], "%*d", portion, &numbers[static_cast<std::size_t>(i) * (NUM / W)]);
  }

  int sum, total = 0;
  for (int i = 0; i < W; i++) {
    PI_Read(result[i], "%d", &sum);
    std::printf("Worker #%d reports sum = %d\n", i, sum);
    total += sum;
  }
  std::printf("Grand total = %d\n", total);

  PI_StopMain(0);  // workers also cease
  return 0;
}

// lint_demo: a deliberately smelly topology for the pre-run linter.
//
//   ./lint_demo -pilint -picheck=0
//
// prints the PLxx findings (self-loop channel, isolated process) and exits
// with status 1 before any process runs. -picheck=0 is needed because the
// runtime itself rejects self-loop channels at the default check level.
// Running it normally with -pisvc=a instead finishes the (tiny) execution
// and then reports the usage findings: the spare channel is never used.
#include <cstdio>

#include "pilot/pi.hpp"

namespace {

PI_CHANNEL* to_worker;
PI_CHANNEL* from_worker;

int worker(int, void*) {
  int v = 0;
  PI_Read(to_worker, "%d", &v);
  PI_Write(from_worker, "%d", v + 1);
  return 0;
}

int loner(int, void*) {
  return 0;  // no channels at all: the linter flags it as isolated
}

}  // namespace

int main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);

  PI_PROCESS* w = PI_CreateProcess(worker, 0, nullptr);
  PI_SetName(w, "Worker");
  to_worker = PI_CreateChannel(PI_MAIN, w);
  from_worker = PI_CreateChannel(w, PI_MAIN);

  PI_PROCESS* idle = PI_CreateProcess(loner, 0, nullptr);
  PI_SetName(idle, "Loner");

  PI_CHANNEL* self = PI_CreateChannel(w, w);  // PL01: reader == writer
  PI_SetName(self, "SelfLoop");
  (void)self;

  PI_CHANNEL* spare = PI_CreateChannel(PI_MAIN, w);  // PU01 when run fully
  PI_SetName(spare, "Spare");
  (void)spare;

  PI_StartAll();

  PI_Write(to_worker, "%d", 1);
  int v = 0;
  PI_Read(from_worker, "%d", &v);
  std::printf("[main] worker replied %d\n", v);

  PI_StopMain(0);
  return 0;
}

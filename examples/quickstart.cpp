// Quickstart: the smallest useful Pilot program — one worker, two channels,
// a message each way. Run it, then look at the visual log:
//
//   ./quickstart -pisvc=j
//   ./pilot-clog2toslog2 pilot.clog2
//   ./pilot-jumpshot pilot.slog2 --out=quickstart.svg
//
// Try -picheck=3 for maximum error checking, or -pisvc=cdj for everything.
#include <cstdio>

#include "pilot/pi.hpp"

namespace {

PI_CHANNEL* to_worker;
PI_CHANNEL* from_worker;

int greeter(int index, void*) {
  int year = 0;
  PI_Read(to_worker, "%d", &year);
  std::printf("[worker %d] got year %d, replying\n", index, year);
  PI_Write(from_worker, "%d", year - 1978);  // Pilot's CSP roots: CSP is 1978
  return 0;
}

}  // namespace

int main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);

  PI_PROCESS* worker = PI_CreateProcess(greeter, 0, nullptr);
  PI_SetName(worker, "Greeter");
  to_worker = PI_CreateChannel(PI_MAIN, worker);
  from_worker = PI_CreateChannel(worker, PI_MAIN);

  PI_StartAll();  // worker launches; we continue as PI_MAIN

  PI_Write(to_worker, "%d", 2017);
  int age = 0;
  PI_Read(from_worker, "%d", &age);
  std::printf("[main] CSP was %d years old when this paper appeared\n", age);

  PI_StopMain(0);
  return 0;
}

// select_farm: a dynamic task farm exercising the select family —
// PI_Select, PI_TrySelect, PI_ChannelHasData — plus PI_Broadcast and
// PI_Reduce. The master deals out chunks of a numeric integration (area
// under sin-like curve via series) to whichever worker asks first, so fast
// workers naturally take more tasks (dynamic load balancing, the fix the
// paper suggests for load imbalance spotted in the visual log).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pilot/pi.hpp"
#include "util/cli.hpp"

namespace {

constexpr int kMaxWorkers = 16;

PI_CHANNEL* g_request[kMaxWorkers];  // worker -> main: "give me work"
PI_CHANNEL* g_task[kMaxWorkers];     // main -> worker: [lo, hi) chunk
PI_CHANNEL* g_answer[kMaxWorkers];   // worker -> main: partial result
PI_BUNDLE* g_requests_bundle;
PI_BUNDLE* g_stop_bundle;
PI_BUNDLE* g_reduce_bundle;

// An intentionally uneven integrand: cost grows with x, so static
// partitioning would be imbalanced — the farm smooths it out.
double slow_term(double x) {
  double acc = 0.0;
  const int spins = 50 + static_cast<int>(x) % 400;
  for (int i = 1; i <= spins; ++i) acc += 1.0 / (x + i) - 1.0 / (x + i + 1);
  return acc;
}

int farm_worker(int index, void*) {
  double my_total = 0.0;
  long tasks_taken = 0;
  for (;;) {
    PI_Write(g_request[index], "%d", index);
    long lo = 0, hi = 0;
    PI_Read(g_task[index], "%ld %ld", &lo, &hi);
    if (lo >= hi) break;  // stop signal
    for (long x = lo; x < hi; ++x) my_total += slow_term(static_cast<double>(x));
    PI_Compute(1e-6 * static_cast<double>(hi - lo));  // simulated cost
    ++tasks_taken;
  }
  PI_Write(g_answer[index], "%lf %ld", my_total, tasks_taken);
  return 0;
}

}  // namespace

int main(int argc, char* argv[]) {
  // Pilot strips its own -pi... options inside PI_Configure.
  PI_Configure(&argc, &argv);
  util::ArgParser args(argc, argv);
  const int workers =
      static_cast<int>(std::min<long long>(args.get_int_or("workers", 4), kMaxWorkers));
  const long range = args.get_int_or("range", 100000);
  const long chunk = args.get_int_or("chunk", 2500);

  for (int i = 0; i < workers; ++i) {
    PI_PROCESS* w = PI_CreateProcess(farm_worker, i, nullptr);
    PI_SetName(w, ("Farmhand" + std::to_string(i)).c_str());
    g_request[i] = PI_CreateChannel(w, PI_MAIN);
    g_task[i] = PI_CreateChannel(PI_MAIN, w);
    g_answer[i] = PI_CreateChannel(w, PI_MAIN);
  }
  g_requests_bundle = PI_CreateBundle(PI_SELECT_B, g_request, workers);
  g_reduce_bundle = PI_CreateBundle(PI_REDUCE, g_answer, workers);

  PI_StartAll();

  // Deal chunks to whichever worker asks first.
  long next = 0;
  int stopped = 0;
  while (stopped < workers) {
    const int who = PI_Select(g_requests_bundle);
    int token = 0;
    PI_Read(g_request[who], "%d", &token);
    if (next < range) {
      const long hi = std::min(next + chunk, range);
      PI_Write(g_task[who], "%ld %ld", next, hi);
      next = hi;
    } else {
      PI_Write(g_task[who], "%ld %ld", 0L, 0L);  // stop
      ++stopped;
    }
  }

  // Workers send (partial total, tasks taken); PI_Reduce folds both — the
  // messages are read pairwise per channel, so formats must match.
  double grand_total = 0.0;
  long total_tasks = 0;
  PI_Reduce(g_reduce_bundle, PI_SUM, "%lf %ld", &grand_total, &total_tasks);

  std::printf("farm: %ld tasks over %d workers, total = %.6f\n", total_tasks,
              workers, grand_total);
  std::printf("expected tasks = %ld\n", (range + chunk - 1) / chunk);

  PI_StopMain(0);
  return 0;
}

// The paper's Section III-D demonstration application: a JPEG thumbnail
// pipeline with PI_MAIN + one compressor C + N decompressors D_i. Inputs
// are synthetic tinyjpeg files (see DESIGN.md's substitution table).
//
// Reproduce Fig. 1 / Fig. 2:
//
//   ./thumbnail --files=1058 --workers=10 -pisvc=j -pisim-scale=0.01
//   ./pilot-clog2toslog2 pilot.clog2
//   ./pilot-jumpshot pilot.slog2 --out=fig1.svg
//   ./pilot-jumpshot pilot.slog2 --out=fig2.svg --t0=... --t1=...   (zoom)
#include <cstdio>
#include <exception>

#include "util/cli.hpp"
#include "workloads/thumbnail_app.hpp"

int main(int argc, char* argv[]) {
  try {
    // Split the command line: Pilot options (-pi...) pass through to the
    // app's embedded PI_Configure; --key=value options configure the run.
    std::vector<std::string> pilot_args;
    std::vector<std::string> own = {argv[0]};
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      (a.rfind("-pi", 0) == 0 ? pilot_args : own).push_back(a);
    }
    std::vector<char*> own_ptrs;
    for (auto& s : own) own_ptrs.push_back(s.data());
    util::ArgParser args(static_cast<int>(own_ptrs.size()), own_ptrs.data());

    workloads::thumbnail::Config cfg;
    cfg.files = static_cast<int>(args.get_int_or("files", 100));
    cfg.workers = static_cast<int>(args.get_int_or("workers", 5));
    cfg.image_size = static_cast<int>(args.get_int_or("size", 64));
    cfg.quality = static_cast<int>(args.get_int_or("quality", 75));
    cfg.pilot_args = pilot_args;

    const auto stats = workloads::thumbnail::run_app(cfg);
    std::printf("thumbnail: %zu files in -> %zu thumbnails out\n",
                static_cast<std::size_t>(cfg.files), stats.files_out);
    std::printf("  bytes in  : %zu\n", stats.bytes_in);
    std::printf("  bytes out : %zu (%.1f%%)\n", stats.bytes_out,
                100.0 * static_cast<double>(stats.bytes_out) /
                    static_cast<double>(stats.bytes_in));
    std::printf("  wall time : %.3f s\n", stats.wall_seconds);
    std::printf("  mean thumbnail codec error: %.2f grey levels\n",
                stats.thumb_mean_error);
    if (stats.run.mpe_wrapup_seconds > 0)
      std::printf("  MPE log wrap-up: %.3f s\n", stats.run.mpe_wrapup_seconds);
    return stats.run.aborted ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

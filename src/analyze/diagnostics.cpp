#include "analyze/diagnostics.hpp"

#include <cstdio>
#include <filesystem>
#include <set>

#include "util/strings.hpp"

namespace analyze {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

void Report::add(std::string id, Severity sev, std::string message,
                 std::string subject, std::string file, int line) {
  Diagnostic d;
  d.id = std::move(id);
  d.severity = sev;
  d.message = std::move(message);
  d.subject = std::move(subject);
  d.file = std::move(file);
  d.line = line;
  diagnostics_.push_back(std::move(d));
}

void Report::merge(const Report& other) {
  for (const auto& d : other.diagnostics_) diagnostics_.push_back(d);
}

std::size_t Report::count(Severity s) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics_)
    if (d.severity == s) ++n;
  return n;
}

std::size_t Report::finding_count() const {
  return count(Severity::kWarning) + count(Severity::kError);
}

bool Report::has(const std::string& id) const {
  for (const auto& d : diagnostics_)
    if (d.id == id) return true;
  return false;
}

std::vector<Diagnostic> Report::with_id(const std::string& id) const {
  std::vector<Diagnostic> out;
  for (const auto& d : diagnostics_)
    if (d.id == id) out.push_back(d);
  return out;
}

std::string Report::to_text() const {
  std::string out;
  for (const auto& d : diagnostics_) {
    out += severity_name(d.severity);
    out += " ";
    out += d.id;
    if (!d.subject.empty() || !d.file.empty()) {
      out += " [";
      out += d.subject;
      if (!d.file.empty()) {
        if (!d.subject.empty()) out += " at ";
        out += util::strprintf(
            "%s:%d", std::filesystem::path(d.file).filename().string().c_str(),
            d.line);
      }
      out += "]";
    }
    out += ": " + d.message + "\n";
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += util::strprintf("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

}  // namespace

std::string Report::to_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const auto& d = diagnostics_[i];
    if (i > 0) out += ",";
    out += util::strprintf(
        "\n  {\"id\": \"%s\", \"severity\": \"%s\", \"message\": \"%s\", "
        "\"subject\": \"%s\", \"file\": \"%s\", \"line\": %d}",
        json_escape(d.id).c_str(), severity_name(d.severity),
        json_escape(d.message).c_str(), json_escape(d.subject).c_str(),
        json_escape(d.file).c_str(), d.line);
  }
  out += diagnostics_.empty() ? "]" : "\n]";
  return out;
}

std::string to_json_report(const Report& rep, const std::string& tool,
                           const std::string& trace,
                           const std::string& verdict) {
  std::set<int> ranks;
  for (const auto& d : rep.diagnostics()) {
    int r = 0;
    if (std::sscanf(d.subject.c_str(), "rank %d", &r) == 1) ranks.insert(r);
  }
  std::string rank_list;
  for (int r : ranks) {
    if (!rank_list.empty()) rank_list += ", ";
    rank_list += util::strprintf("%d", r);
  }
  std::string out = "{\n";
  out += util::strprintf("  \"tool\": \"%s\",\n", json_escape(tool).c_str());
  out += util::strprintf("  \"trace\": \"%s\",\n", json_escape(trace).c_str());
  out += util::strprintf("  \"verdict\": \"%s\",\n", json_escape(verdict).c_str());
  out += util::strprintf("  \"errors\": %zu,\n", rep.count(Severity::kError));
  out += util::strprintf("  \"warnings\": %zu,\n", rep.count(Severity::kWarning));
  out += util::strprintf("  \"notes\": %zu,\n", rep.count(Severity::kNote));
  out += util::strprintf("  \"ranks\": [%s],\n", rank_list.c_str());
  out += "  \"findings\": " + rep.to_json() + "\n";
  out += "}";
  return out;
}

}  // namespace analyze

#include "analyze/diagnostics.hpp"

#include <filesystem>

#include "util/strings.hpp"

namespace analyze {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

void Report::add(std::string id, Severity sev, std::string message,
                 std::string subject, std::string file, int line) {
  Diagnostic d;
  d.id = std::move(id);
  d.severity = sev;
  d.message = std::move(message);
  d.subject = std::move(subject);
  d.file = std::move(file);
  d.line = line;
  diagnostics_.push_back(std::move(d));
}

void Report::merge(const Report& other) {
  for (const auto& d : other.diagnostics_) diagnostics_.push_back(d);
}

std::size_t Report::count(Severity s) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics_)
    if (d.severity == s) ++n;
  return n;
}

std::size_t Report::finding_count() const {
  return count(Severity::kWarning) + count(Severity::kError);
}

bool Report::has(const std::string& id) const {
  for (const auto& d : diagnostics_)
    if (d.id == id) return true;
  return false;
}

std::vector<Diagnostic> Report::with_id(const std::string& id) const {
  std::vector<Diagnostic> out;
  for (const auto& d : diagnostics_)
    if (d.id == id) out.push_back(d);
  return out;
}

std::string Report::to_text() const {
  std::string out;
  for (const auto& d : diagnostics_) {
    out += severity_name(d.severity);
    out += " ";
    out += d.id;
    if (!d.subject.empty() || !d.file.empty()) {
      out += " [";
      out += d.subject;
      if (!d.file.empty()) {
        if (!d.subject.empty()) out += " at ";
        out += util::strprintf(
            "%s:%d", std::filesystem::path(d.file).filename().string().c_str(),
            d.line);
      }
      out += "]";
    }
    out += ": " + d.message + "\n";
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += util::strprintf("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

}  // namespace

std::string Report::to_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const auto& d = diagnostics_[i];
    if (i > 0) out += ",";
    out += util::strprintf(
        "\n  {\"id\": \"%s\", \"severity\": \"%s\", \"message\": \"%s\", "
        "\"subject\": \"%s\", \"file\": \"%s\", \"line\": %d}",
        json_escape(d.id).c_str(), severity_name(d.severity),
        json_escape(d.message).c_str(), json_escape(d.subject).c_str(),
        json_escape(d.file).c_str(), d.line);
  }
  out += diagnostics_.empty() ? "]" : "\n]";
  return out;
}

}  // namespace analyze

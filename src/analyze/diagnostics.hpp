// pilot-analyze: the shared diagnostics engine behind the topology linter
// and the offline trace checker. A Diagnostic carries a stable ID (PLxx /
// PUxx / TCxxx, see docs/ANALYZE.md), a severity, a one-line message, and —
// when the finding maps to a source construct — the file:line captured by
// the PI_* macro layer. Reports render as pretty text (for stderr) or as a
// machine-readable JSON array (for tooling).
#pragma once

#include <string>
#include <vector>

namespace analyze {

enum class Severity { kNote, kWarning, kError };

const char* severity_name(Severity s);

struct Diagnostic {
  std::string id;       ///< stable code, e.g. "PL01", "TC203"
  Severity severity = Severity::kWarning;
  std::string message;  ///< human-readable, single line
  std::string subject;  ///< entity concerned ("C3", "W2", "B1", "rank 4")
  std::string file;     ///< source file of the construct ("" = not known)
  int line = 0;
};

class Report {
public:
  void add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void add(std::string id, Severity sev, std::string message,
           std::string subject = {}, std::string file = {}, int line = 0);
  /// Append every diagnostic of `other`.
  void merge(const Report& other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t size() const { return diagnostics_.size(); }
  [[nodiscard]] std::size_t count(Severity s) const;
  /// Number of diagnostics at kWarning or above (the "findings" that make
  /// lint/tracecheck exit non-zero; notes are informational).
  [[nodiscard]] std::size_t finding_count() const;
  [[nodiscard]] bool has(const std::string& id) const;
  /// All diagnostics with the given ID (tests assert on these).
  [[nodiscard]] std::vector<Diagnostic> with_id(const std::string& id) const;

  /// Pretty multi-line rendering: "error PL01 [C3 at demo.c:12]: ...".
  [[nodiscard]] std::string to_text() const;
  /// JSON array of objects with keys id/severity/message/subject/file/line.
  [[nodiscard]] std::string to_json() const;

private:
  std::vector<Diagnostic> diagnostics_;
};

/// Machine-readable report wrapper for CI: one JSON object with the tool
/// name, the input trace, a verdict string, severity counts, the sorted set
/// of ranks named by the findings, and the findings array itself. Each
/// finding stays on its own line (line-oriented consumers grep for
/// `"id": "TCxxx"`).
std::string to_json_report(const Report& rep, const std::string& tool,
                           const std::string& trace,
                           const std::string& verdict);

}  // namespace analyze

#include "analyze/topology.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/strings.hpp"

namespace analyze {

const char* bundle_usage_name(BundleUsage u) {
  switch (u) {
    case BundleUsage::kBroadcast: return "PI_BROADCAST";
    case BundleUsage::kScatter: return "PI_SCATTER";
    case BundleUsage::kGather: return "PI_GATHER";
    case BundleUsage::kReduce: return "PI_REDUCE";
    case BundleUsage::kSelect: return "PI_SELECT_B";
  }
  return "?";
}

bool signatures_compatible(const std::string& writer, const std::string& reader) {
  auto split = [](const std::string& sig) {
    std::size_t i = 0;
    bool array = false;
    while (i < sig.size() &&
           (sig[i] == '*' || sig[i] == '^' || (sig[i] >= '0' && sig[i] <= '9'))) {
      array = true;
      ++i;
    }
    return std::pair<bool, std::string>(array, sig.substr(i));
  };
  const auto [w_array, w_type] = split(writer);
  const auto [r_array, r_type] = split(reader);
  return w_array == r_array && w_type == r_type;
}

namespace {

const ProcessInfo* find_process(const Topology& topo, int rank) {
  for (const auto& p : topo.processes)
    if (p.rank == rank) return &p;
  return nullptr;
}

std::string proc_label(const Topology& topo, int rank) {
  const ProcessInfo* p = find_process(topo, rank);
  return p != nullptr ? p->name : util::strprintf("rank %d", rank);
}

}  // namespace

Report lint_topology(const Topology& topo) {
  Report rep;

  // PL01: reader == writer (a write would block forever on itself — or the
  // matching read can never be reached; either way the channel is a
  // self-deadlock waiting to happen).
  for (const auto& c : topo.channels) {
    if (c.writer == c.reader)
      rep.add("PL01", Severity::kError,
              util::strprintf("channel %s connects process %s to itself; a "
                              "process cannot be both writer and reader of "
                              "one channel",
                              c.name.c_str(), proc_label(topo, c.writer).c_str()),
              c.name, c.site.file, c.site.line);
  }

  // PL07: the process-side view of a self-loop — a process that is both the
  // sole writer and the sole reader of a channel can only deadlock on it:
  // its write blocks until its own read, which it can never reach. PL01
  // flags the channel declaration; PL07 points at the process so the fix
  // site (the PI_CreateProcess wiring) is one click away.
  for (const auto& c : topo.channels) {
    if (c.writer != c.reader) continue;
    const ProcessInfo* p = find_process(topo, c.writer);
    rep.add("PL07", Severity::kError,
            util::strprintf("process %s is both the sole writer and the sole "
                            "reader of channel %s; any write on it "
                            "self-deadlocks",
                            proc_label(topo, c.writer).c_str(), c.name.c_str()),
            proc_label(topo, c.writer), p != nullptr ? p->site.file : "",
            p != nullptr ? p->site.line : 0);
  }

  // PL02: process with no channel attached — it can never communicate, so
  // with more than one process declared it is dead weight (or a missing
  // PI_CreateChannel). PI_MAIN (rank 0) is exempt: a coordinator that only
  // wires up the others and waits in PI_StopMain is a legitimate pattern.
  if (topo.processes.size() > 1) {
    std::set<int> connected;
    for (const auto& c : topo.channels) {
      connected.insert(c.writer);
      connected.insert(c.reader);
    }
    for (const auto& p : topo.processes) {
      if (p.rank == 0) continue;
      if (!connected.contains(p.rank))
        rep.add("PL02", Severity::kWarning,
                util::strprintf("process %s has no channels; it cannot "
                                "communicate with the rest of the program",
                                p.name.c_str()),
                p.name, p.site.file, p.site.line);
    }
  }

  for (const auto& b : topo.bundles) {
    // PL05: empty bundle.
    if (b.channel_ids.empty()) {
      rep.add("PL05", Severity::kError,
              util::strprintf("bundle %s has no channels", b.name.c_str()),
              b.name, b.site.file, b.site.line);
      continue;
    }

    // Resolve member channels; PL06 for dangling references.
    std::vector<const ChannelInfo*> members;
    bool dangling = false;
    for (int id : b.channel_ids) {
      const ChannelInfo* found = nullptr;
      for (const auto& c : topo.channels)
        if (c.id == id) found = &c;
      if (found == nullptr) {
        rep.add("PL06", Severity::kError,
                util::strprintf("bundle %s references unknown channel id %d",
                                b.name.c_str(), id),
                b.name, b.site.file, b.site.line);
        dangling = true;
      } else {
        members.push_back(found);
      }
    }
    if (dangling || members.empty()) continue;

    // PL04: all channels of a bundle must share the collective's common
    // endpoint — the writer for broadcast/scatter, the reader for
    // gather/reduce/select. Mixed directions make the collective undefined.
    const bool common_is_writer =
        b.usage == BundleUsage::kBroadcast || b.usage == BundleUsage::kScatter;
    const int common =
        common_is_writer ? members.front()->writer : members.front()->reader;
    for (const ChannelInfo* c : members) {
      const int endpoint = common_is_writer ? c->writer : c->reader;
      if (endpoint != common) {
        rep.add("PL04", Severity::kError,
                util::strprintf(
                    "bundle %s (%s) mixes directions: channel %s has %s %s "
                    "but the bundle's common endpoint is %s",
                    b.name.c_str(), bundle_usage_name(b.usage), c->name.c_str(),
                    common_is_writer ? "writer" : "reader",
                    proc_label(topo, endpoint).c_str(),
                    proc_label(topo, common).c_str()),
                b.name, b.site.file, b.site.line);
        break;
      }
    }

    // PL03: duplicate far endpoints in a selector bundle. Two channels from
    // the same writer are legal but make PI_Select's answer ambiguous to
    // act on — usually a copy-paste error in the channel array.
    if (b.usage == BundleUsage::kSelect) {
      std::map<int, const ChannelInfo*> far_seen;
      for (const ChannelInfo* c : members) {
        auto [it, inserted] = far_seen.try_emplace(c->writer, c);
        if (!inserted)
          rep.add("PL03", Severity::kWarning,
                  util::strprintf(
                      "selector bundle %s has two channels from writer %s "
                      "(%s and %s); selection between them is arbitrary",
                      b.name.c_str(), proc_label(topo, c->writer).c_str(),
                      it->second->name.c_str(), c->name.c_str()),
                  b.name, b.site.file, b.site.line);
      }
    }
  }

  return rep;
}

Report lint_usage(const Topology& topo) {
  Report rep;
  for (const auto& c : topo.channels) {
    if (c.writes == 0 && c.reads == 0) {
      rep.add("PU01", Severity::kWarning,
              util::strprintf("channel %s was never used (no writes, no reads)",
                              c.name.c_str()),
              c.name, c.site.file, c.site.line);
      continue;
    }
    if (c.reads == 0) {
      rep.add("PU02", Severity::kWarning,
              util::strprintf("channel %s was written %llu time(s) but never "
                              "read; the messages were lost",
                              c.name.c_str(),
                              static_cast<unsigned long long>(c.writes)),
              c.name, c.site.file, c.site.line);
    } else if (c.writes == 0) {
      rep.add("PU03", Severity::kWarning,
              util::strprintf("channel %s was read but never written; the "
                              "reader can only have blocked",
                              c.name.c_str()),
              c.name, c.site.file, c.site.line);
    } else if (c.writes > c.reads) {
      rep.add("PU04", Severity::kWarning,
              util::strprintf("channel %s has %llu unconsumed message(s) "
                              "(%llu written, %llu read)",
                              c.name.c_str(),
                              static_cast<unsigned long long>(c.writes - c.reads),
                              static_cast<unsigned long long>(c.writes),
                              static_cast<unsigned long long>(c.reads)),
              c.name, c.site.file, c.site.line);
    }

    // PU05: every observed writer signature must be deliverable into every
    // observed reader signature. This mirrors -picheck=2 but works at any
    // check level, because the signatures were recorded, not enforced.
    for (const auto& w : c.write_sigs)
      for (const auto& r : c.read_sigs)
        if (!signatures_compatible(w, r))
          rep.add("PU05", Severity::kWarning,
                  util::strprintf("channel %s: writer used \"%%%s\" but reader "
                                  "asked for \"%%%s\"",
                                  c.name.c_str(), w.c_str(), r.c_str()),
                  c.name, c.site.file, c.site.line);
  }
  return rep;
}

}  // namespace analyze

// Topology linter: diagnostics over the declared process/channel/bundle
// graph. Two passes share the Topology snapshot:
//
//   lint_topology — pre-run structural lint, everything knowable the moment
//                   PI_StartAll has the full graph (PLxx diagnostics);
//   lint_usage    — post-run lint over the recorded per-channel traffic
//                   counters and format signatures (PUxx diagnostics).
//
// The structs here are deliberately plain (no pilot types): the pilot
// runtime fills them in, and tests hand-build them to exercise corner cases
// the runtime's own API checks would reject (see docs/ANALYZE.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/diagnostics.hpp"

namespace analyze {

struct SiteInfo {
  std::string file;
  int line = 0;
};

struct ProcessInfo {
  int rank = 0;
  std::string name;
  SiteInfo site;  ///< PI_CreateProcess call site ("" for PI_MAIN)
};

struct ChannelInfo {
  int id = 0;
  int writer = 0;  ///< rank of the writing process
  int reader = 0;  ///< rank of the reading process
  std::string name;
  SiteInfo site;  ///< PI_CreateChannel call site

  // Filled in after the run (lint_usage inputs).
  std::uint64_t writes = 0;  ///< messages sent on this channel
  std::uint64_t reads = 0;   ///< messages consumed from this channel
  std::vector<std::string> write_sigs;  ///< distinct writer format signatures
  std::vector<std::string> read_sigs;   ///< distinct reader format signatures
};

/// Mirrors PI_BUNUSE without depending on the pilot headers.
enum class BundleUsage { kBroadcast, kScatter, kGather, kReduce, kSelect };

const char* bundle_usage_name(BundleUsage u);

struct BundleInfo {
  int id = 0;
  BundleUsage usage = BundleUsage::kBroadcast;
  std::string name;
  std::vector<int> channel_ids;
  SiteInfo site;  ///< PI_CreateBundle call site
};

struct Topology {
  std::vector<ProcessInfo> processes;  ///< [0] = PI_MAIN
  std::vector<ChannelInfo> channels;
  std::vector<BundleInfo> bundles;
};

/// Pre-run structural lint (PL01..PL06). Safe on arbitrary hand-built
/// topologies, including shapes the runtime API itself rejects.
Report lint_topology(const Topology& topo);

/// Post-run usage lint (PU01..PU05) over the traffic counters.
Report lint_usage(const Topology& topo);

/// True when a writer-side format signature (e.g. "lu", "*b") can satisfy a
/// reader-side one — same base type, array-ness matching, mirroring the
/// runtime's level-2 check but applicable offline at any check level.
bool signatures_compatible(const std::string& writer, const std::string& reader);

}  // namespace analyze

#include "analyze/tracecheck.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "util/strings.hpp"

namespace analyze {

namespace {

constexpr double kEps = 1e-9;

using Clock = std::vector<std::uint64_t>;

/// Component-wise a <= b (a happened-before-or-equals b).
bool clock_leq(const Clock& a, const Clock& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] > b[i]) return false;
  return true;
}

bool concurrent(const Clock& a, const Clock& b) {
  return !clock_leq(a, b) && !clock_leq(b, a);
}

struct Msg {
  double send_time = 0.0;
  double recv_time = 0.0;
  int sender = 0;
  int receiver = 0;
  int tag = 0;
  bool matched = false;
  bool stamped = false;
  Clock send_stamp;
  Clock recv_stamp;  ///< receiver's clock just after consuming the message
};

struct Op {
  enum class Kind { kSend, kRecv } kind = Kind::kSend;
  std::size_t msg = 0;  ///< index into msgs
};

struct StateKind {
  std::int32_t state_id = 0;
  std::string name;
  bool is_start = false;  ///< meaning of the event id mapped to this entry
};

struct Interval {
  double begin = 0.0;
  double end = 0.0;
};

/// Merge per-rank intervals into a disjoint, sorted union.
std::vector<Interval> merge_intervals(std::vector<Interval> v) {
  std::sort(v.begin(), v.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  std::vector<Interval> out;
  for (const Interval& iv : v) {
    if (!out.empty() && iv.begin <= out.back().end)
      out.back().end = std::max(out.back().end, iv.end);
    else
      out.push_back(iv);
  }
  return out;
}

std::string rank_label(int rank) { return util::strprintf("rank %d", rank); }

}  // namespace

Report check_trace(const clog2::File& file, const TraceCheckOptions& opts) {
  Report rep;

  // --- index the definitions -----------------------------------------------
  std::map<std::int32_t, StateKind> state_events;  // event id -> state info
  std::map<std::int32_t, std::string> state_names;
  std::int32_t wait_event_id = 0;
  bool have_wait_event = false;
  int max_rank = file.nranks - 1;

  for (const auto& rec : file.records) {
    if (const auto* sd = std::get_if<clog2::StateDef>(&rec)) {
      state_events[sd->start_event_id] = {sd->state_id, sd->name, true};
      state_events[sd->end_event_id] = {sd->state_id, sd->name, false};
      state_names[sd->state_id] = sd->name;
    } else if (const auto* ed = std::get_if<clog2::EventDef>(&rec)) {
      if (ed->name == "Wait") {
        wait_event_id = ed->event_id;
        have_wait_event = true;
      }
    } else if (const auto* ev = std::get_if<clog2::EventRec>(&rec)) {
      max_rank = std::max(max_rank, ev->rank);
    } else if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) {
      max_rank = std::max(max_rank, m->rank);
    }
  }
  const int nranks = max_rank + 1;
  if (nranks <= 0) return rep;

  const std::set<std::string> read_family = {"PI_Read", "PI_Select", "PI_Gather",
                                             "PI_Reduce"};

  // --- pass 1: match sends with receives (FIFO per sender/receiver/tag) ----
  std::vector<Msg> msgs;
  std::vector<std::vector<Op>> ops(static_cast<std::size_t>(nranks));
  using TagKey = std::tuple<int, int, int>;  // sender, receiver, tag
  std::map<TagKey, std::vector<std::size_t>> in_flight;  // FIFO of msg indices
  std::map<TagKey, std::size_t> unmatched_recvs;

  for (const auto& rec : file.records) {
    const auto* m = std::get_if<clog2::MsgRec>(&rec);
    if (m == nullptr) continue;
    if (m->kind == clog2::MsgRec::Kind::kSend) {
      Msg msg;
      msg.send_time = m->timestamp;
      msg.sender = m->rank;
      msg.receiver = m->partner;
      msg.tag = m->tag;
      msgs.push_back(msg);
      in_flight[{m->rank, m->partner, m->tag}].push_back(msgs.size() - 1);
      ops[static_cast<std::size_t>(m->rank)].push_back(
          {Op::Kind::kSend, msgs.size() - 1});
    } else {
      const TagKey key{m->partner, m->rank, m->tag};
      auto it = in_flight.find(key);
      if (it == in_flight.end() || it->second.empty()) {
        ++unmatched_recvs[key];
        continue;
      }
      const std::size_t idx = it->second.front();
      it->second.erase(it->second.begin());
      msgs[idx].matched = true;
      msgs[idx].recv_time = m->timestamp;
      ops[static_cast<std::size_t>(m->rank)].push_back({Op::Kind::kRecv, idx});
    }
  }

  for (const auto& [key, fifo] : in_flight) {
    if (fifo.empty()) continue;
    const auto [s, r, tag] = key;
    rep.add("TC101", Severity::kWarning,
            util::strprintf("%zu send(s) from rank %d to rank %d on tag %d were "
                            "never received",
                            fifo.size(), s, r, tag),
            rank_label(s));
  }
  for (const auto& [key, n] : unmatched_recvs) {
    const auto [s, r, tag] = key;
    rep.add("TC102", Severity::kError,
            util::strprintf("%zu receive(s) on rank %d from rank %d on tag %d "
                            "have no matching send",
                            n, r, s, tag),
            rank_label(r));
  }

  // --- pass 2: vector clocks over the matched order ------------------------
  std::vector<std::size_t> idx(static_cast<std::size_t>(nranks), 0);
  std::vector<Clock> vc(static_cast<std::size_t>(nranks),
                        Clock(static_cast<std::size_t>(nranks), 0));
  std::size_t remaining = 0;
  for (const auto& v : ops) remaining += v.size();
  bool causal_cycle = false;
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t r = 0; r < ops.size(); ++r) {
      while (idx[r] < ops[r].size()) {
        const Op& op = ops[r][idx[r]];
        Msg& m = msgs[op.msg];
        if (op.kind == Op::Kind::kSend) {
          ++vc[r][r];
          m.send_stamp = vc[r];
          m.stamped = true;
        } else {
          if (!m.stamped && !causal_cycle) break;
          ++vc[r][r];
          if (m.stamped)
            for (std::size_t k = 0; k < vc[r].size(); ++k)
              vc[r][k] = std::max(vc[r][k], m.send_stamp[k]);
          m.recv_stamp = vc[r];
        }
        ++idx[r];
        --remaining;
        progressed = true;
      }
    }
    if (!progressed && !causal_cycle) {
      // Only possible when matched messages form a cycle (corrupt trace):
      // report once, then force the recvs through without joining.
      causal_cycle = true;
      rep.add("TC104", Severity::kError,
              "matched messages form a causal cycle; vector clocks are "
              "approximate from here on");
    }
  }

  // TC103: a matched receive that (on the corrected trace clock) precedes
  // its own send — clock sync failed or the logger mis-stamped.
  std::map<TagKey, std::size_t> clock_anomalies;
  for (const Msg& m : msgs)
    if (m.matched && m.recv_time < m.send_time - kEps)
      ++clock_anomalies[{m.sender, m.receiver, m.tag}];
  for (const auto& [key, n] : clock_anomalies) {
    const auto [s, r, tag] = key;
    rep.add("TC103", Severity::kWarning,
            util::strprintf("%zu message(s) from rank %d to rank %d on tag %d "
                            "were received before they were sent (clock "
                            "anomaly)",
                            n, s, r, tag),
            rank_label(r));
  }

  // --- TC201: wildcard-receive races ---------------------------------------
  // Two sends headed for the same (receiver, tag) from different ranks that
  // are concurrent under the clock ordering: a wildcard receive could match
  // either, so the run is order-dependent.
  {
    std::map<std::pair<int, int>, std::vector<std::size_t>> by_dest;
    for (std::size_t i = 0; i < msgs.size(); ++i)
      if (msgs[i].matched) by_dest[{msgs[i].receiver, msgs[i].tag}].push_back(i);
    std::size_t budget = 20000;  // pairwise-comparison cap
    for (const auto& [dest, group] : by_dest) {
      bool raced = false;
      for (std::size_t a = 0; a < group.size() && !raced && budget > 0; ++a) {
        for (std::size_t b = a + 1; b < group.size() && budget > 0; ++b) {
          const Msg& ma = msgs[group[a]];
          const Msg& mb = msgs[group[b]];
          if (ma.sender == mb.sender) continue;
          --budget;
          if (concurrent(ma.send_stamp, mb.send_stamp)) {
            rep.add("TC201", Severity::kWarning,
                    util::strprintf(
                        "sends from ranks %d and %d to rank %d on tag %d are "
                        "concurrent; a wildcard receive may match either",
                        ma.sender, mb.sender, dest.first, dest.second),
                    rank_label(dest.first));
            raced = true;
            break;
          }
        }
      }
    }
  }

  // --- TC202: serialized fan-in rounds (the Instance A shape) --------------
  // Group each receiver's matched receives into "rounds" — maximal runs of
  // distinct partners. A round whose sends are totally ordered means the
  // partners answered strictly one after another: the fan-in that should
  // have been parallel was serialized by the communication structure.
  for (std::size_t r = 0; r < ops.size(); ++r) {
    std::vector<std::vector<std::size_t>> rounds;
    std::set<int> seen;
    for (const Op& op : ops[r]) {
      if (op.kind != Op::Kind::kRecv || !msgs[op.msg].matched) continue;
      const int partner = msgs[op.msg].sender;
      if (seen.contains(partner)) {
        rounds.emplace_back();
        seen.clear();
      }
      if (rounds.empty()) rounds.emplace_back();
      rounds.back().push_back(op.msg);
      seen.insert(partner);
    }
    int multi = 0;
    int serialized = 0;
    for (const auto& round : rounds) {
      std::set<int> partners;
      for (std::size_t i : round) partners.insert(msgs[i].sender);
      if (partners.size() < 2) continue;
      ++multi;
      bool any_concurrent = false;
      for (std::size_t a = 0; a < round.size() && !any_concurrent; ++a)
        for (std::size_t b = a + 1; b < round.size(); ++b) {
          if (msgs[round[a]].sender == msgs[round[b]].sender) continue;
          if (concurrent(msgs[round[a]].send_stamp, msgs[round[b]].send_stamp)) {
            any_concurrent = true;
            break;
          }
        }
      // The order must also be *receiver-gated*: each next partner's send
      // causally after this receiver consumed the previous one. That is the
      // write/read-paired loop of Instance A. A demand-driven farm also
      // totally orders its sends, but through the dispatcher, not through
      // the collecting rank — and must not be flagged.
      bool gated = true;
      for (std::size_t a = 0; a + 1 < round.size() && gated; ++a) {
        if (msgs[round[a]].sender == msgs[round[a + 1]].sender) continue;
        if (!clock_leq(msgs[round[a]].recv_stamp, msgs[round[a + 1]].send_stamp))
          gated = false;
      }
      if (!any_concurrent && gated) ++serialized;
    }
    if (serialized >= opts.min_serialized_rounds && 2 * serialized >= multi)
      rep.add("TC202", Severity::kWarning,
              util::strprintf(
                  "rank %d collected %d of %d multi-partner rounds in a fully "
                  "serialized order; the fan-in that should run in parallel is "
                  "sequential (Instance A shape)",
                  static_cast<int>(r), serialized, multi),
              rank_label(static_cast<int>(r)));
  }

  // --- state intervals: TC401..TC404 + blocked intervals for TC203 ---------
  double span_begin = 0.0, span_end = 0.0;
  bool have_span = false;
  auto widen_span = [&](double t) {
    if (!have_span) {
      span_begin = span_end = t;
      have_span = true;
    } else {
      span_begin = std::min(span_begin, t);
      span_end = std::max(span_end, t);
    }
  };
  for (const auto& rec : file.records) {
    if (const auto* ev = std::get_if<clog2::EventRec>(&rec)) widen_span(ev->timestamp);
    else if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) widen_span(m->timestamp);
  }

  std::map<std::pair<int, std::int32_t>, std::vector<double>> open;  // start stack
  std::map<int, std::vector<Interval>> blocked;  // rank -> read-family intervals
  std::set<int> participants;
  std::set<std::pair<int, std::int32_t>> flagged_overlap, flagged_orphan,
      flagged_negative;

  // Terminal-wait tracking for TC301: the Wait events a rank logged with no
  // later activity are what it was blocked on when the trace ended.
  std::map<int, std::vector<std::pair<int, int>>> terminal_waits;  // chan, writer

  for (const auto& rec : file.records) {
    if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) {
      terminal_waits[m->rank].clear();
      continue;
    }
    const auto* ev = std::get_if<clog2::EventRec>(&rec);
    if (ev == nullptr) continue;
    participants.insert(ev->rank);

    if (have_wait_event && ev->event_id == wait_event_id) {
      int chan = 0, writer = 0;
      if (std::sscanf(ev->text.c_str(), "C%d<-R%d", &chan, &writer) == 2)
        terminal_waits[ev->rank].emplace_back(chan, writer);
      continue;
    }
    terminal_waits[ev->rank].clear();

    const auto it = state_events.find(ev->event_id);
    if (it == state_events.end()) continue;  // solo bubble
    const StateKind& sk = it->second;
    const std::pair<int, std::int32_t> key{ev->rank, sk.state_id};
    auto& stack = open[key];
    if (sk.is_start) {
      if (!stack.empty() && flagged_overlap.insert(key).second)
        rep.add("TC404", Severity::kWarning,
                util::strprintf("state %s re-entered on rank %d while already "
                                "open (overlapping instances)",
                                sk.name.c_str(), ev->rank),
                rank_label(ev->rank));
      stack.push_back(ev->timestamp);
    } else {
      if (stack.empty()) {
        if (flagged_orphan.insert(key).second)
          rep.add("TC401", Severity::kError,
                  util::strprintf("state %s ended on rank %d without a start",
                                  sk.name.c_str(), ev->rank),
                  rank_label(ev->rank));
        continue;
      }
      const double t0 = stack.back();
      stack.pop_back();
      if (ev->timestamp < t0 - kEps && flagged_negative.insert(key).second)
        rep.add("TC402", Severity::kError,
                util::strprintf("state %s on rank %d has a negative duration "
                                "(%.9f s)",
                                sk.name.c_str(), ev->rank, ev->timestamp - t0),
                rank_label(ev->rank));
      if (read_family.contains(sk.name))
        blocked[ev->rank].push_back({t0, std::max(t0, ev->timestamp)});
    }
  }
  for (const auto& [key, stack] : open) {
    if (stack.empty()) continue;
    rep.add("TC403", Severity::kNote,
            util::strprintf("state %s on rank %d never ended (open at end of "
                            "trace)",
                            state_names[key.second].c_str(), key.first),
            rank_label(key.first));
    // A rank that died blocked inside a read-family state stays blocked to
    // the end of the trace for stall accounting.
    if (read_family.contains(state_names[key.second]))
      blocked[key.first].push_back({stack.front(), span_end});
  }

  // --- TC203: majority-idle stall (the Instance B shape) -------------------
  if (participants.size() >= 2 && have_span && span_end > span_begin) {
    struct Edge {
      double t;
      int delta;
    };
    std::vector<Edge> edges;
    for (auto& [rank, ivs] : blocked) {
      (void)rank;
      for (const Interval& iv : merge_intervals(std::move(ivs))) {
        edges.push_back({iv.begin, +1});
        edges.push_back({iv.end, -1});
      }
    }
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      return a.t < b.t || (a.t == b.t && a.delta > b.delta);
    });
    const int threshold = static_cast<int>(participants.size()) / 2 + 1;
    int depth = 0;
    double total = 0.0, longest = 0.0, stall_begin = 0.0;
    bool in_stall = false;
    for (const Edge& e : edges) {
      if (!in_stall && depth + e.delta >= threshold && e.delta > 0) {
        in_stall = true;
        stall_begin = e.t;
      } else if (in_stall && depth + e.delta < threshold) {
        in_stall = false;
        total += e.t - stall_begin;
        longest = std::max(longest, e.t - stall_begin);
      }
      depth += e.delta;
    }
    if (in_stall) {
      total += span_end - stall_begin;
      longest = std::max(longest, span_end - stall_begin);
    }
    const double span = span_end - span_begin;
    if (longest >= opts.min_stall_seconds && total >= opts.stall_fraction * span)
      rep.add("TC203", Severity::kWarning,
              util::strprintf(
                  "a majority of ranks (>=%d of %d) sat blocked in read-family "
                  "states for %.3f s of the %.3f s trace (longest stall %.3f "
                  "s); the program is starved by a serial stage (Instance B "
                  "shape)",
                  threshold, static_cast<int>(participants.size()), total, span,
                  longest));
  }

  // --- TC301: wait-for-graph cycle (-pisvc=a traces) -----------------------
  {
    std::set<int> stuck;
    for (const auto& [rank, waits] : terminal_waits)
      if (!waits.empty()) stuck.insert(rank);
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto it = stuck.begin(); it != stuck.end();) {
        bool escapable = false;
        for (const auto& [chan, writer] : terminal_waits[*it])
          if (!stuck.contains(writer)) escapable = true;
        if (escapable) {
          it = stuck.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    if (!stuck.empty()) {
      std::string detail;
      for (int r : stuck) {
        if (!detail.empty()) detail += "; ";
        detail += util::strprintf("rank %d waits on", r);
        for (const auto& [chan, writer] : terminal_waits[r])
          detail += util::strprintf(" C%d(writer rank %d)", chan, writer);
      }
      rep.add("TC301", Severity::kError,
              "wait-for cycle (deadlock): " + detail);
    }
  }

  return rep;
}

}  // namespace analyze

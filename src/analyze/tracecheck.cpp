#include "analyze/tracecheck.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "query/clocks.hpp"
#include "query/rollup.hpp"
#include "query/trace.hpp"
#include "util/strings.hpp"

namespace analyze {

namespace {

constexpr double kEps = 1e-9;

using query::Clock;
using query::clock_concurrent;
using query::clock_leq;
using query::Interval;

std::string rank_label(int rank) { return util::strprintf("rank %d", rank); }

}  // namespace

Report check_trace(const clog2::File& file, const TraceCheckOptions& opts) {
  Report rep;

  // One pass builds the typed view (definition tables, step stream, span);
  // the causal engine shared with pilot-tracediff does the matching and the
  // vector clocks. The verdict is pinned byte-for-byte by golden tests.
  const query::Trace trace(file, opts.threads);
  const int nranks = trace.nranks();
  if (nranks <= 0) return rep;

  std::int32_t wait_event_id = 0;
  bool have_wait_event = false;
  if (const auto id = trace.event_id_of("Wait")) {
    wait_event_id = *id;
    have_wait_event = true;
  }

  const std::set<std::string> read_family = {"PI_Read", "PI_Select", "PI_Gather",
                                             "PI_Reduce"};

  // --- pass 1: match sends with receives (FIFO per sender/receiver/tag) ----
  query::MsgGraph graph = query::match_messages(file);
  auto& msgs = graph.msgs;
  auto& ops = graph.ops;

  for (const auto& [key, fifo] : graph.unreceived) {
    if (fifo.empty()) continue;
    const auto [s, r, tag] = key;
    rep.add("TC101", Severity::kWarning,
            util::strprintf("%zu send(s) from rank %d to rank %d on tag %d were "
                            "never received",
                            fifo.size(), s, r, tag),
            rank_label(s));
  }
  for (const auto& [key, n] : graph.unmatched_recvs) {
    const auto [s, r, tag] = key;
    rep.add("TC102", Severity::kError,
            util::strprintf("%zu receive(s) on rank %d from rank %d on tag %d "
                            "have no matching send",
                            n, r, s, tag),
            rank_label(r));
  }

  // --- pass 2: vector clocks over the matched order ------------------------
  if (query::stamp_clocks(graph, opts.threads))
    rep.add("TC104", Severity::kError,
            "matched messages form a causal cycle; vector clocks are "
            "approximate from here on");

  // TC103: a matched receive that (on the corrected trace clock) precedes
  // its own send — clock sync failed or the logger mis-stamped.
  std::map<query::TagKey, std::size_t> clock_anomalies;
  for (const auto& m : msgs)
    if (m.matched && m.recv_time < m.send_time - kEps)
      ++clock_anomalies[{m.sender, m.receiver, m.tag}];
  for (const auto& [key, n] : clock_anomalies) {
    const auto [s, r, tag] = key;
    rep.add("TC103", Severity::kWarning,
            util::strprintf("%zu message(s) from rank %d to rank %d on tag %d "
                            "were received before they were sent (clock "
                            "anomaly)",
                            n, s, r, tag),
            rank_label(r));
  }

  // --- TC201: wildcard-receive races ---------------------------------------
  // Two sends headed for the same (receiver, tag) from different ranks that
  // are concurrent under the clock ordering: a wildcard receive could match
  // either, so the run is order-dependent.
  {
    std::map<std::pair<int, int>, std::vector<std::size_t>> by_dest;
    for (std::size_t i = 0; i < msgs.size(); ++i)
      if (msgs[i].matched) by_dest[{msgs[i].receiver, msgs[i].tag}].push_back(i);
    std::size_t budget = 20000;  // pairwise-comparison cap
    for (const auto& [dest, group] : by_dest) {
      bool raced = false;
      for (std::size_t a = 0; a < group.size() && !raced && budget > 0; ++a) {
        for (std::size_t b = a + 1; b < group.size() && budget > 0; ++b) {
          const auto& ma = msgs[group[a]];
          const auto& mb = msgs[group[b]];
          if (ma.sender == mb.sender) continue;
          --budget;
          if (clock_concurrent(ma.send_stamp, mb.send_stamp)) {
            rep.add("TC201", Severity::kWarning,
                    util::strprintf(
                        "sends from ranks %d and %d to rank %d on tag %d are "
                        "concurrent; a wildcard receive may match either",
                        ma.sender, mb.sender, dest.first, dest.second),
                    rank_label(dest.first));
            raced = true;
            break;
          }
        }
      }
    }
  }

  // --- TC202: serialized fan-in rounds (the Instance A shape) --------------
  // Group each receiver's matched receives into "rounds" — maximal runs of
  // distinct partners. A round whose sends are totally ordered means the
  // partners answered strictly one after another: the fan-in that should
  // have been parallel was serialized by the communication structure.
  for (std::size_t r = 0; r < ops.size(); ++r) {
    std::vector<std::vector<std::size_t>> rounds;
    std::set<int> seen;
    for (const auto& op : ops[r]) {
      if (op.kind != query::MsgOp::Kind::kRecv || !msgs[op.msg].matched) continue;
      const int partner = msgs[op.msg].sender;
      if (seen.contains(partner)) {
        rounds.emplace_back();
        seen.clear();
      }
      if (rounds.empty()) rounds.emplace_back();
      rounds.back().push_back(op.msg);
      seen.insert(partner);
    }
    int multi = 0;
    int serialized = 0;
    for (const auto& round : rounds) {
      std::set<int> partners;
      for (std::size_t i : round) partners.insert(msgs[i].sender);
      if (partners.size() < 2) continue;
      ++multi;
      bool any_concurrent = false;
      for (std::size_t a = 0; a < round.size() && !any_concurrent; ++a)
        for (std::size_t b = a + 1; b < round.size(); ++b) {
          if (msgs[round[a]].sender == msgs[round[b]].sender) continue;
          if (clock_concurrent(msgs[round[a]].send_stamp,
                               msgs[round[b]].send_stamp)) {
            any_concurrent = true;
            break;
          }
        }
      // The order must also be *receiver-gated*: each next partner's send
      // causally after this receiver consumed the previous one. That is the
      // write/read-paired loop of Instance A. A demand-driven farm also
      // totally orders its sends, but through the dispatcher, not through
      // the collecting rank — and must not be flagged.
      bool gated = true;
      for (std::size_t a = 0; a + 1 < round.size() && gated; ++a) {
        if (msgs[round[a]].sender == msgs[round[a + 1]].sender) continue;
        if (!clock_leq(msgs[round[a]].recv_stamp, msgs[round[a + 1]].send_stamp))
          gated = false;
      }
      if (!any_concurrent && gated) ++serialized;
    }
    if (serialized >= opts.min_serialized_rounds && 2 * serialized >= multi)
      rep.add("TC202", Severity::kWarning,
              util::strprintf(
                  "rank %d collected %d of %d multi-partner rounds in a fully "
                  "serialized order; the fan-in that should run in parallel is "
                  "sequential (Instance A shape)",
                  static_cast<int>(r), serialized, multi),
              rank_label(static_cast<int>(r)));
  }

  // --- state intervals: TC401..TC404 + blocked intervals for TC203 ---------
  const bool have_span = trace.has_span();
  const double span_begin = trace.t_min();
  const double span_end = trace.t_max();

  std::map<std::pair<int, std::int32_t>, std::vector<double>> open;  // start stack
  std::map<int, std::vector<Interval>> blocked;  // rank -> read-family intervals
  std::set<int> participants;
  std::set<std::pair<int, std::int32_t>> flagged_overlap, flagged_orphan,
      flagged_negative;

  // Terminal-wait tracking for TC301: the Wait events a rank logged with no
  // later activity are what it was blocked on when the trace ended.
  std::map<int, std::vector<std::pair<int, int>>> terminal_waits;  // chan, writer

  for (const query::Step& st : trace.steps()) {
    if (st.is_msg()) {
      terminal_waits[st.rank].clear();
      continue;
    }
    if (st.kind != query::StepKind::kEvent) continue;
    participants.insert(st.rank);

    if (have_wait_event && st.event_id == wait_event_id) {
      int chan = 0, writer = 0;
      if (std::sscanf(st.text->c_str(), "C%d<-R%d", &chan, &writer) == 2)
        terminal_waits[st.rank].emplace_back(chan, writer);
      continue;
    }
    terminal_waits[st.rank].clear();

    const query::StateEvent* sk = trace.state_event(st.event_id);
    if (sk == nullptr) continue;  // solo bubble
    const std::pair<int, std::int32_t> key{st.rank, sk->state_id};
    auto& stack = open[key];
    if (sk->is_start) {
      if (!stack.empty() && flagged_overlap.insert(key).second)
        rep.add("TC404", Severity::kWarning,
                util::strprintf("state %s re-entered on rank %d while already "
                                "open (overlapping instances)",
                                sk->name.c_str(), st.rank),
                rank_label(st.rank));
      stack.push_back(st.time);
    } else {
      if (stack.empty()) {
        if (flagged_orphan.insert(key).second)
          rep.add("TC401", Severity::kError,
                  util::strprintf("state %s ended on rank %d without a start",
                                  sk->name.c_str(), st.rank),
                  rank_label(st.rank));
        continue;
      }
      const double t0 = stack.back();
      stack.pop_back();
      if (st.time < t0 - kEps && flagged_negative.insert(key).second)
        rep.add("TC402", Severity::kError,
                util::strprintf("state %s on rank %d has a negative duration "
                                "(%.9f s)",
                                sk->name.c_str(), st.rank, st.time - t0),
                rank_label(st.rank));
      if (read_family.contains(sk->name))
        blocked[st.rank].push_back({t0, std::max(t0, st.time)});
    }
  }
  for (const auto& [key, stack] : open) {
    if (stack.empty()) continue;
    const std::string& name = *trace.state_name(key.second);
    rep.add("TC403", Severity::kNote,
            util::strprintf("state %s on rank %d never ended (open at end of "
                            "trace)",
                            name.c_str(), key.first),
            rank_label(key.first));
    // A rank that died blocked inside a read-family state stays blocked to
    // the end of the trace for stall accounting.
    if (read_family.contains(name))
      blocked[key.first].push_back({stack.front(), span_end});
  }

  // --- TC203: majority-idle stall (the Instance B shape) -------------------
  if (participants.size() >= 2 && have_span && span_end > span_begin) {
    struct Edge {
      double t;
      int delta;
    };
    std::vector<Edge> edges;
    for (auto& [rank, ivs] : blocked) {
      (void)rank;
      for (const Interval& iv : query::merge_intervals(std::move(ivs))) {
        edges.push_back({iv.begin, +1});
        edges.push_back({iv.end, -1});
      }
    }
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      return a.t < b.t || (a.t == b.t && a.delta > b.delta);
    });
    const int threshold = static_cast<int>(participants.size()) / 2 + 1;
    int depth = 0;
    double total = 0.0, longest = 0.0, stall_begin = 0.0;
    bool in_stall = false;
    for (const Edge& e : edges) {
      if (!in_stall && depth + e.delta >= threshold && e.delta > 0) {
        in_stall = true;
        stall_begin = e.t;
      } else if (in_stall && depth + e.delta < threshold) {
        in_stall = false;
        total += e.t - stall_begin;
        longest = std::max(longest, e.t - stall_begin);
      }
      depth += e.delta;
    }
    if (in_stall) {
      total += span_end - stall_begin;
      longest = std::max(longest, span_end - stall_begin);
    }
    const double span = span_end - span_begin;
    if (longest >= opts.min_stall_seconds && total >= opts.stall_fraction * span)
      rep.add("TC203", Severity::kWarning,
              util::strprintf(
                  "a majority of ranks (>=%d of %d) sat blocked in read-family "
                  "states for %.3f s of the %.3f s trace (longest stall %.3f "
                  "s); the program is starved by a serial stage (Instance B "
                  "shape)",
                  threshold, static_cast<int>(participants.size()), total, span,
                  longest));
  }

  // --- TC301: wait-for-graph cycle (-pisvc=a traces) -----------------------
  {
    std::set<int> stuck;
    for (const auto& [rank, waits] : terminal_waits)
      if (!waits.empty()) stuck.insert(rank);
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto it = stuck.begin(); it != stuck.end();) {
        bool escapable = false;
        for (const auto& [chan, writer] : terminal_waits[*it])
          if (!stuck.contains(writer)) escapable = true;
        if (escapable) {
          it = stuck.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    if (!stuck.empty()) {
      std::string detail;
      for (int r : stuck) {
        if (!detail.empty()) detail += "; ";
        detail += util::strprintf("rank %d waits on", r);
        for (const auto& [chan, writer] : terminal_waits[r])
          detail += util::strprintf(" C%d(writer rank %d)", chan, writer);
      }
      rep.add("TC301", Severity::kError,
              "wait-for cycle (deadlock): " + detail);
    }
  }

  return rep;
}

}  // namespace analyze

// Offline CLOG-2 happens-before checker (the pilot-tracecheck tool's
// engine). Reconstructs the partial order of a finished (or salvaged) trace
// with per-rank vector clocks built from the send/recv arrow records, then
// reports (see docs/ANALYZE.md for the full catalogue):
//
//   TC101/TC102  unmatched sends / receives,
//   TC103/TC104  clock or causality anomalies between matched halves,
//   TC201        wildcard-receive race: two sends concurrent under the
//                clock ordering that could satisfy one receive,
//   TC202        serialized fan-in: a receiver's multi-partner rounds whose
//                sends are totally ordered *through the receiver itself*
//                (each next send causally after the receiver consumed the
//                previous one) — the paper's Instance A shape,
//   TC203        majority-idle stall: most ranks simultaneously blocked in
//                read-family states for a long stretch — the paper's
//                Instance B shape,
//   TC301        wait-for-graph cycle from "Wait" events (-pisvc=a traces):
//                post-mortem deadlock explanation,
//   TC401..404   per-state interval anomalies (logger/user-state bugs).
//
// TC202/TC203 are structural and timing views of the same disease — workers
// starved by an over-serialized main — and between them they flag both
// buggy collision-query instances while staying silent on the fixed
// variant and the clean thumbnail/lab2 traces.
#pragma once

#include "analyze/diagnostics.hpp"
#include "clog2/clog2.hpp"

namespace analyze {

struct TraceCheckOptions {
  /// TC203 fires only when majority-blocked time covers at least this
  /// fraction of the trace span...
  double stall_fraction = 0.25;
  /// ...and some single contiguous majority-blocked stretch lasts at least
  /// this many (trace-clock) seconds. The absolute guard keeps wall-noise
  /// from dominating tiny traces.
  double min_stall_seconds = 0.02;
  /// TC202 fires only with at least this many serialized fan-in rounds
  /// (and only when they are at least half of all multi-partner rounds).
  int min_serialized_rounds = 2;
  /// Worker threads for the trace build and the vector-clock replay
  /// (0 = one per hardware thread). The verdict is byte-identical at any
  /// value — parallelism never changes the report.
  int threads = 1;
};

Report check_trace(const clog2::File& file, const TraceCheckOptions& opts = {});

}  // namespace analyze

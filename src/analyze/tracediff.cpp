#include "analyze/tracediff.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>

#include "query/clocks.hpp"
#include "query/rollup.hpp"
#include "query/trace.hpp"
#include "util/strings.hpp"

namespace analyze {

namespace {

constexpr double kEps = 1e-9;

std::string rank_label(int rank) { return util::strprintf("rank %d", rank); }

/// One record of a rank's timestamp-free projection.
struct ProjEntry {
  std::string key;   ///< comparison key (no timestamps, floats masked)
  double time = 0.0;
  query::StepKind kind = query::StepKind::kEvent;
  std::int32_t event_id = 0;
  const std::string* text = nullptr;
  std::int32_t partner = 0;
  std::int32_t tag = 0;
  std::uint32_t size = 0;
};

std::vector<std::vector<ProjEntry>> project(const query::Trace& trace,
                                            int nranks) {
  std::vector<std::vector<ProjEntry>> out(
      static_cast<std::size_t>(std::max(nranks, 0)));
  for (const query::Step& st : trace.steps()) {
    if (st.kind == query::StepKind::kSync) continue;
    if (st.rank < 0 || static_cast<std::size_t>(st.rank) >= out.size()) continue;
    ProjEntry e;
    e.time = st.time;
    e.kind = st.kind;
    switch (st.kind) {
      case query::StepKind::kEvent:
        e.event_id = st.event_id;
        e.text = st.text;
        e.key = util::strprintf("E %d %s", st.event_id,
                                util::mask_floats(*st.text).c_str());
        break;
      case query::StepKind::kSend:
        e.partner = st.partner;
        e.tag = st.tag;
        e.size = st.size;
        e.key = util::strprintf("S %d %d %u", st.partner, st.tag, st.size);
        break;
      case query::StepKind::kRecv:
        e.partner = st.partner;
        e.tag = st.tag;
        e.size = st.size;
        e.key = util::strprintf("R %d %d %u", st.partner, st.tag, st.size);
        break;
      case query::StepKind::kSync:
        continue;
    }
    out[static_cast<std::size_t>(st.rank)].push_back(std::move(e));
  }
  return out;
}

std::string describe(const ProjEntry& e, const query::Trace& trace,
                     const std::map<std::int32_t, std::string>& event_names) {
  switch (e.kind) {
    case query::StepKind::kEvent: {
      if (const query::StateEvent* sk = trace.state_event(e.event_id))
        return util::strprintf("%s of state \"%s\"",
                               sk->is_start ? "start" : "end",
                               sk->name.c_str());
      const auto it = event_names.find(e.event_id);
      const std::string name =
          it != event_names.end() ? it->second : util::strprintf("#%d", e.event_id);
      if (e.text != nullptr && !e.text->empty())
        return util::strprintf("event \"%s\" (\"%s\")", name.c_str(),
                               e.text->c_str());
      return util::strprintf("event \"%s\"", name.c_str());
    }
    case query::StepKind::kSend:
      return util::strprintf("send to rank %d tag %d (%u bytes)", e.partner,
                             e.tag, e.size);
    case query::StepKind::kRecv:
      return util::strprintf("recv from rank %d tag %d (%u bytes)", e.partner,
                             e.tag, e.size);
    case query::StepKind::kSync:
      break;
  }
  return "sync record";
}

/// Most recent "L%d"-prefixed popup line at or before `pos` — Pilot's
/// tracegen stamps the call-site line into the event text, so this is the
/// closest source context the trace carries.
int line_context(const std::vector<ProjEntry>& proj, std::size_t pos) {
  if (proj.empty()) return 0;
  std::size_t i = std::min(pos, proj.size() - 1);
  for (;; --i) {
    const ProjEntry& e = proj[i];
    if (e.kind == query::StepKind::kEvent && e.text != nullptr) {
      int line = 0;
      if (std::sscanf(e.text->c_str(), "L%d", &line) == 1 && line > 0)
        return line;
    }
    if (i == 0) break;
  }
  return 0;
}

/// Vector stamp of the last message op rank `r` completed strictly before
/// `t` in the reference run, or the zero clock.
query::Clock stamp_before(const query::MsgGraph& graph, int r, double t) {
  query::Clock best(static_cast<std::size_t>(graph.nranks), 0);
  if (r < 0 || static_cast<std::size_t>(r) >= graph.ops.size()) return best;
  for (const query::MsgOp& op : graph.ops[static_cast<std::size_t>(r)]) {
    const query::MatchedMsg& m = graph.msgs[op.msg];
    const bool is_send = op.kind == query::MsgOp::Kind::kSend;
    const double op_time = is_send ? m.send_time : m.recv_time;
    if (op_time >= t - kEps) break;
    if (!m.stamped) continue;
    best = is_send ? m.send_stamp : m.recv_stamp;
  }
  return best;
}

}  // namespace

TraceDiffResult diff_traces(const clog2::File& reference,
                            const clog2::File& suspect,
                            const TraceDiffOptions& opts) {
  TraceDiffResult res;
  Report& rep = res.report;

  const query::Trace ref(reference, opts.threads);
  const query::Trace sus(suspect, opts.threads);

  // --- TD101 / TD110: are the runs comparable at all? ----------------------
  if (ref.nranks() != sus.nranks()) {
    res.comparable = false;
    rep.add("TD101", Severity::kError,
            util::strprintf("rank counts differ: reference has %d, suspect "
                            "has %d",
                            ref.nranks(), sus.nranks()));
  }

  std::map<std::int32_t, std::string> ref_events, sus_events;
  std::set<std::tuple<std::int32_t, std::int32_t, std::int32_t, std::string>>
      ref_states, sus_states;
  for (const clog2::Record& r : reference.records) {
    if (const auto* ed = std::get_if<clog2::EventDef>(&r))
      ref_events[ed->event_id] = ed->name;
    else if (const auto* sd = std::get_if<clog2::StateDef>(&r))
      ref_states.insert({sd->state_id, sd->start_event_id, sd->end_event_id,
                         sd->name});
  }
  for (const clog2::Record& r : suspect.records) {
    if (const auto* ed = std::get_if<clog2::EventDef>(&r))
      sus_events[ed->event_id] = ed->name;
    else if (const auto* sd = std::get_if<clog2::StateDef>(&r))
      sus_states.insert({sd->state_id, sd->start_event_id, sd->end_event_id,
                         sd->name});
  }
  if (ref_events != sus_events || ref_states != sus_states)
    rep.add("TD110", Severity::kWarning,
            "definition tables differ between the runs; the traces may come "
            "from different programs and the structural diff may be "
            "unreliable");

  const int nranks = std::max(ref.nranks(), sus.nranks());
  if (nranks <= 0) return res;

  // --- structural pass: per-rank timestamp-free projections ----------------
  const auto ref_proj = project(ref, nranks);
  const auto sus_proj = project(sus, nranks);

  res.deltas.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    RankDelta& d = res.deltas[static_cast<std::size_t>(r)];
    d.rank = r;
    const auto& a = ref_proj[static_cast<std::size_t>(r)];
    const auto& b = sus_proj[static_cast<std::size_t>(r)];
    std::size_t i = 0;
    while (i < a.size() && i < b.size() && a[i].key == b[i].key) ++i;
    if (i == a.size() && i == b.size()) continue;  // kMatch

    d.structural = true;
    d.ref_pos = i;
    if (i < a.size() && i < b.size()) {
      d.shape = RankDelta::Shape::kMismatch;
      d.ref_time = a[i].time;
      d.detail = util::strprintf(
          "reference has %s, suspect has %s",
          describe(a[i], ref, ref_events).c_str(),
          describe(b[i], sus, sus_events).c_str());
    } else if (i == b.size()) {
      d.shape = RankDelta::Shape::kSuspectShort;
      d.ref_time = a[i].time;
      d.detail = util::strprintf(
          "suspect ends after %zu of %zu records; next reference record: %s",
          b.size(), a.size(), describe(a[i], ref, ref_events).c_str());
    } else {
      d.shape = RankDelta::Shape::kSuspectLong;
      d.ref_time = b[i].time;  // no reference record to anchor on
      d.detail = util::strprintf(
          "suspect has %zu extra record(s); first extra: %s",
          b.size() - a.size(), describe(b[i], sus, sus_events).c_str());
    }
    d.line = line_context(a.empty() ? b : a, i);
    res.structural_diverged = true;
  }

  // TD102: the globally earliest divergence, by reference timestamp.
  const RankDelta* first_div = nullptr;
  for (const RankDelta& d : res.deltas)
    if (d.structural &&
        (first_div == nullptr || d.ref_time < first_div->ref_time - kEps))
      first_div = &d;
  if (first_div != nullptr) {
    std::string msg = util::strprintf(
        "first divergence: rank %d at t=%.6f — %s", first_div->rank,
        first_div->ref_time, first_div->detail.c_str());
    if (first_div->line > 0)
      msg += util::strprintf(" (near source line %d)", first_div->line);
    rep.add("TD102", Severity::kError, std::move(msg),
            rank_label(first_div->rank), {}, first_div->line);
  }

  // TD103 / TD104: prefix-shaped ranks, in rank order.
  for (const RankDelta& d : res.deltas) {
    if (d.shape == RankDelta::Shape::kSuspectShort)
      rep.add("TD103", Severity::kWarning,
              util::strprintf(
                  "rank %d: suspect trace is a strict prefix of the reference "
                  "(%zu of %zu records) — the process stopped early (crash or "
                  "truncation)",
                  d.rank, d.ref_pos,
                  ref_proj[static_cast<std::size_t>(d.rank)].size()),
              rank_label(d.rank));
    else if (d.shape == RankDelta::Shape::kSuspectLong)
      rep.add("TD104", Severity::kWarning,
              util::strprintf(
                  "rank %d: suspect trace extends the reference by %zu "
                  "record(s)",
                  d.rank,
                  sus_proj[static_cast<std::size_t>(d.rank)].size() - d.ref_pos),
              rank_label(d.rank));
  }

  // --- timing pass: edge latency + state durations -------------------------
  query::MsgGraph ref_graph = query::match_messages(reference);
  query::MsgGraph sus_graph = query::match_messages(suspect);

  // Pair the i-th matched message of each (sender, receiver, tag) edge
  // across the runs and attribute latency inflation to the *sender*. A
  // delayed delivery also inflates every message queued behind it at the
  // same receiver (the cascade): once the receiver unblocks, the queued
  // messages complete back-to-back at (virtually) the same instant as the
  // delayed one. Within such a completion burst only the read the receiver
  // was blocked in — the first to complete in its own record order — was
  // delivery-bound; the later ones had long arrived and merely sat in
  // queue. So anomalies are collected first, grouped by (receiver,
  // completion time), and only each burst's first-completed read is
  // attributed.
  std::map<query::TagKey, std::vector<std::size_t>> ref_by_key, sus_by_key;
  for (std::size_t i = 0; i < ref_graph.msgs.size(); ++i)
    if (ref_graph.msgs[i].matched) {
      const auto& m = ref_graph.msgs[i];
      ref_by_key[{m.sender, m.receiver, m.tag}].push_back(i);
    }
  for (std::size_t i = 0; i < sus_graph.msgs.size(); ++i)
    if (sus_graph.msgs[i].matched) {
      const auto& m = sus_graph.msgs[i];
      sus_by_key[{m.sender, m.receiver, m.tag}].push_back(i);
    }

  struct Anomaly {
    int sender = -1;
    int receiver = -1;
    double send_time = 0.0;
    double recv_time = 0.0;
    double delta = 0.0;
    std::size_t recv_order = 0;  ///< position in the receiver's op stream
  };
  // Completion order of receives per rank in the suspect run: within a
  // burst of reads draining at (virtually) the same instant, the receiver's
  // own record order says which read it was actually blocked in. Indexed by
  // message, since each message has at most one receive.
  std::vector<std::size_t> sus_recv_order(sus_graph.msgs.size(), 0);
  for (const auto& rank_ops : sus_graph.ops)
    for (std::size_t k = 0; k < rank_ops.size(); ++k)
      if (rank_ops[k].kind == query::MsgOp::Kind::kRecv)
        sus_recv_order[rank_ops[k].msg] = k;

  std::vector<Anomaly> paired;
  for (const auto& [key, ref_list] : ref_by_key) {
    const auto it = sus_by_key.find(key);
    if (it == sus_by_key.end()) continue;
    const auto& sus_list = it->second;
    const std::size_t n = std::min(ref_list.size(), sus_list.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto& mr = ref_graph.msgs[ref_list[i]];
      const auto& ms = sus_graph.msgs[sus_list[i]];
      const double lat_ref = mr.recv_time - mr.send_time;
      const double lat_sus = ms.recv_time - ms.send_time;
      const int sender = mr.sender;
      if (sender < 0 || sender >= nranks) continue;
      if (mr.receiver < 0 || mr.receiver >= nranks) continue;
      paired.push_back({sender, mr.receiver, ms.send_time, ms.recv_time,
                        lat_sus - lat_ref, sus_recv_order[sus_list[i]]});
    }
  }
  // Per-rank clock-skew correction. The suspect run's per-rank clock sync
  // can absorb part of an injected delay into the victim's clock offset:
  // its stamps shift late, deflating the apparent latency of everything it
  // sent (even below zero — physically impossible, since a delay only adds)
  // and inflating everything it received. The most negative paired delta a
  // rank's sends exhibit is therefore a conservative proof of its skew;
  // un-skew every delta by +skew(sender) - skew(receiver) before gating.
  std::vector<double> skew(static_cast<std::size_t>(nranks), 0.0);
  for (const Anomaly& p : paired) {
    auto& s = skew[static_cast<std::size_t>(p.sender)];
    s = std::max(s, -p.delta);
  }
  // Burst grouping: same receiver, completion times within kBurstEps of the
  // group's first completion. On the virtual-time substrate a cascade ties
  // exactly; on threads the queued reads drain within microseconds and land
  // in their own groups. Each burst's first-completed read (the blocking
  // one) is the only candidate — the rest sat in queue, whatever their
  // apparent latency — and only the candidate is held to the anomaly gates.
  constexpr double kBurstEps = 1e-9;
  std::sort(paired.begin(), paired.end(),
            [](const Anomaly& a, const Anomaly& b) {
              if (a.receiver != b.receiver) return a.receiver < b.receiver;
              return a.recv_time < b.recv_time;
            });
  for (std::size_t i = 0; i < paired.size();) {
    std::size_t j = i;
    std::size_t first = i;
    while (j < paired.size() && paired[j].receiver == paired[i].receiver &&
           paired[j].recv_time - paired[i].recv_time <= kBurstEps) {
      if (paired[j].recv_order < paired[first].recv_order) first = j;
      ++j;
    }
    const Anomaly& a = paired[first];
    i = j;
    const double corrected = a.delta +
                             skew[static_cast<std::size_t>(a.sender)] -
                             skew[static_cast<std::size_t>(a.receiver)];
    if (corrected < opts.min_latency_delta) continue;
    // Re-derive the latency-ratio gate against the same corrected latency.
    const double lat_ref = (a.recv_time - a.send_time) - a.delta;
    const double lat_cor = lat_ref + corrected;
    if (lat_cor < opts.latency_ratio * lat_ref) continue;
    RankDelta& d = res.deltas[static_cast<std::size_t>(a.sender)];
    d.latency_inflation += corrected;
    if (!d.has_anomaly_time || a.recv_time < d.first_anomaly_time) {
      d.first_anomaly_time = a.recv_time;
      d.has_anomaly_time = true;
    }
    res.timing_diverged = true;
  }

  // TD201: edges whose message counts changed.
  const query::MessageEdges ref_edges =
      query::message_edges(ref_graph, opts.threads);
  const query::MessageEdges sus_edges =
      query::message_edges(sus_graph, opts.threads);
  {
    std::set<query::TagKey> keys;
    for (const auto& [k, s] : ref_edges.edges) keys.insert(k);
    for (const auto& [k, s] : sus_edges.edges) keys.insert(k);
    int emitted = 0, skipped = 0;
    for (const query::TagKey& k : keys) {
      const auto ri = ref_edges.edges.find(k);
      const auto si = sus_edges.edges.find(k);
      const std::uint64_t rs = ri != ref_edges.edges.end() ? ri->second.sent : 0;
      const std::uint64_t ss = si != sus_edges.edges.end() ? si->second.sent : 0;
      if (rs == ss) continue;
      const auto [snd, rcv, tag] = k;
      if (emitted < 8) {
        rep.add("TD201", Severity::kWarning,
                util::strprintf("edge %d->%d tag %d: %llu message(s) in the "
                                "reference, %llu in the suspect",
                                snd, rcv, tag,
                                static_cast<unsigned long long>(rs),
                                static_cast<unsigned long long>(ss)),
                rank_label(snd));
        ++emitted;
      } else {
        ++skipped;
      }
    }
    if (skipped > 0)
      rep.add("TD201", Severity::kWarning,
              util::strprintf("%d more edge(s) with changed message counts "
                              "not listed",
                              skipped));
  }

  // TD202: state-duration skew per (rank, state).
  {
    const query::StateDurations ref_dur =
        query::state_durations(ref, opts.threads);
    const query::StateDurations sus_dur =
        query::state_durations(sus, opts.threads);
    int emitted = 0, skipped = 0;
    for (const auto& [key, ss] : sus_dur.by_rank_state) {
      const auto& [r, state_id] = key;
      if (r < 0 || r >= nranks) continue;
      const query::StateStats* rs = ref_dur.find(r, state_id);
      const double ref_total = rs != nullptr ? rs->total_seconds : 0.0;
      const double delta = ss.total_seconds - ref_total;
      if (delta < opts.min_duration_delta ||
          ss.total_seconds < opts.duration_ratio * ref_total)
        continue;
      res.deltas[static_cast<std::size_t>(r)].duration_inflation += delta;
      res.timing_diverged = true;
      const std::string* name = sus.state_name(state_id);
      if (emitted < 8) {
        rep.add("TD202", Severity::kWarning,
                util::strprintf("rank %d spent %.3f s in state %s vs %.3f s "
                                "in the reference (+%.3f s)",
                                r, ss.total_seconds,
                                name != nullptr ? name->c_str() : "?",
                                ref_total, delta),
                rank_label(r));
        ++emitted;
      } else {
        ++skipped;
      }
    }
    if (skipped > 0)
      rep.add("TD202", Severity::kWarning,
              util::strprintf("%d more rank/state pair(s) with inflated "
                              "durations not listed",
                              skipped));
  }

  // TD203: per-edge mean-latency skew (summary view of the pairing above).
  {
    int emitted = 0, skipped = 0;
    for (const auto& [k, rstats] : ref_edges.edges) {
      const auto si = sus_edges.edges.find(k);
      if (si == sus_edges.edges.end()) continue;
      if (rstats.matched == 0 || si->second.matched == 0) continue;
      const double mr = rstats.mean_latency();
      const double ms = si->second.mean_latency();
      if (ms - mr < opts.min_latency_delta || ms < opts.latency_ratio * mr)
        continue;
      const auto [snd, rcv, tag] = k;
      if (emitted < 8) {
        rep.add("TD203", Severity::kWarning,
                util::strprintf("edge %d->%d tag %d: mean latency %.6f s vs "
                                "%.6f s in the reference",
                                snd, rcv, tag, ms, mr),
                rank_label(snd));
        ++emitted;
      } else {
        ++skipped;
      }
    }
    if (skipped > 0)
      rep.add("TD203", Severity::kWarning,
              util::strprintf("%d more edge(s) with inflated latency not "
                              "listed",
                              skipped));
  }

  // --- ranking: who broke first? -------------------------------------------
  // Structural divergence outranks timing-only skew; within each class the
  // earliest signal (reference time) wins, then total inflation, then rank.
  std::vector<RankDelta> ranked;
  for (const RankDelta& d : res.deltas)
    if (d.structural || d.latency_inflation > 0.0 || d.duration_inflation > 0.0)
      ranked.push_back(d);
  std::sort(ranked.begin(), ranked.end(),
            [](const RankDelta& a, const RankDelta& b) {
              if (a.structural != b.structural) return a.structural;
              if (a.structural) {
                if (a.ref_time != b.ref_time) return a.ref_time < b.ref_time;
                return a.rank < b.rank;
              }
              if (a.has_anomaly_time != b.has_anomaly_time)
                return a.has_anomaly_time;
              if (a.has_anomaly_time && a.first_anomaly_time != b.first_anomaly_time)
                return a.first_anomaly_time < b.first_anomaly_time;
              const double ia = a.latency_inflation + a.duration_inflation;
              const double ib = b.latency_inflation + b.duration_inflation;
              if (ia != ib) return ia > ib;
              return a.rank < b.rank;
            });
  for (std::size_t i = 0; i < ranked.size(); ++i)
    ranked[i].score = ranked[i].structural
                          ? 1000.0 + 1.0 / (1.0 + ranked[i].ref_time)
                          : ranked[i].latency_inflation +
                                ranked[i].duration_inflation;
  if (static_cast<int>(ranked.size()) > opts.top_suspects)
    ranked.resize(static_cast<std::size_t>(opts.top_suspects));
  res.suspects = ranked;

  if (!ranked.empty()) {
    const RankDelta& top = ranked.front();
    std::string why;
    if (top.structural) {
      why = util::strprintf("diverged first at t=%.6f (%s)", top.ref_time,
                            top.detail.c_str());
      // Corroborate with the causal order: was this rank's divergence point
      // happens-before-minimal among all diverged ranks?
      query::stamp_clocks(ref_graph, opts.threads);
      const query::Clock mine =
          stamp_before(ref_graph, top.rank, top.ref_time);
      bool minimal = true;
      for (const RankDelta& d : res.deltas) {
        if (!d.structural || d.rank == top.rank) continue;
        const query::Clock other =
            stamp_before(ref_graph, d.rank, d.ref_time);
        if (query::clock_leq(other, mine) && !query::clock_leq(mine, other)) {
          minimal = false;
          break;
        }
      }
      if (minimal && res.structural_diverged)
        why += "; causally earliest divergence (vector clocks)";
    } else if (top.has_anomaly_time) {
      why = util::strprintf(
          "earliest latency anomaly at t=%.6f, +%.3f s total send-latency "
          "inflation",
          top.first_anomaly_time, top.latency_inflation);
    } else {
      why = util::strprintf("+%.3f s state-duration inflation",
                            top.duration_inflation);
    }
    rep.add("TD301", Severity::kWarning,
            util::strprintf("suspect #1: rank %d — %s", top.rank, why.c_str()),
            rank_label(top.rank), {}, top.line);

    if (ranked.size() > 1) {
      std::string rest;
      for (std::size_t i = 1; i < ranked.size(); ++i) {
        if (!rest.empty()) rest += ", ";
        rest += util::strprintf(
            "#%zu rank %d (%s)", i + 1, ranked[i].rank,
            ranked[i].structural
                ? util::strprintf("diverged at t=%.6f", ranked[i].ref_time)
                      .c_str()
                : util::strprintf("+%.3f s inflation",
                                  ranked[i].latency_inflation +
                                      ranked[i].duration_inflation)
                      .c_str());
      }
      rep.add("TD302", Severity::kNote, "runner-up suspects: " + rest);
    }
  }

  return res;
}

}  // namespace analyze

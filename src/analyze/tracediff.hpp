// Cross-run trace diffing: align a reference CLOG-2 trace with a suspect
// run of the same program (same .prl, same seed) and localize where — and
// on which rank — the two executions part ways.
//
// Two families of signal feed the verdict:
//
//  * structural — per-rank timestamp-free projections (event ids + masked
//    popup text, message endpoints/tags/sizes) compared record by record.
//    The first position where a rank's projections differ is that rank's
//    divergence point; the globally earliest one (by reference timestamp)
//    is the prime suspect, corroborated by vector clocks from the shared
//    causal engine in src/query/.
//  * timing — per-edge message-latency inflation and per-rank state-
//    duration skew between the runs, for faults (e.g. injected delays)
//    that leave the event sequence intact but stretch it.
//
// Diagnostics are TD1xx (comparability), TD2xx (behavioral deltas), and
// TD3xx (suspect ranking); `diff_traces(A, A)` returns an empty report.
#pragma once

#include <string>
#include <vector>

#include "analyze/diagnostics.hpp"
#include "clog2/clog2.hpp"

namespace analyze {

struct TraceDiffOptions {
  /// Floors below which a timing delta is noise, in seconds.
  double min_latency_delta = 1e-3;
  double min_duration_delta = 1e-3;
  /// A suspect latency/duration must also exceed ratio * reference.
  double latency_ratio = 1.5;
  double duration_ratio = 1.5;
  /// How many ranked suspects to report (TD301 + TD302).
  int top_suspects = 3;
  /// Worker threads for the trace builds, rollups, and clock replay
  /// (0 = one per hardware thread). The verdict is byte-identical at any
  /// value — parallelism never changes the report.
  int threads = 1;
};

/// Per-rank comparison outcome.
struct RankDelta {
  enum class Shape {
    kMatch,         ///< projections identical
    kMismatch,      ///< records differ at ref_pos
    kSuspectShort,  ///< suspect is a strict prefix of the reference
    kSuspectLong,   ///< reference is a strict prefix of the suspect
  };

  int rank = 0;
  Shape shape = Shape::kMatch;
  bool structural = false;       ///< shape != kMatch
  std::size_t ref_pos = 0;       ///< divergence index into the rank's steps
  double ref_time = 0.0;         ///< reference timestamp at the divergence
  std::string detail;            ///< human description of the divergence
  int line = 0;                  ///< source line parsed from "L%d" text, 0 if none
  double latency_inflation = 0.0;   ///< sum of matched-message latency deltas
                                    ///< attributed to this rank as sender
  double duration_inflation = 0.0;  ///< sum of state-duration deltas
  double first_anomaly_time = 0.0;  ///< reference time of earliest signal
  bool has_anomaly_time = false;
  double score = 0.0;            ///< display score; ranking uses the full key
};

struct TraceDiffResult {
  bool comparable = true;         ///< false when rank counts differ
  bool structural_diverged = false;
  bool timing_diverged = false;
  std::vector<RankDelta> deltas;    ///< one per rank, rank order
  std::vector<RankDelta> suspects;  ///< ranked, most suspicious first
  Report report;

  [[nodiscard]] bool diverged() const {
    return structural_diverged || timing_diverged || !comparable;
  }
};

/// Diff `suspect` against `reference`. Both files must outlive the call only.
TraceDiffResult diff_traces(const clog2::File& reference,
                            const clog2::File& suspect,
                            const TraceDiffOptions& opts = {});

}  // namespace analyze

#include "clog2/clog2.hpp"

#include <array>

#include "util/fs.hpp"
#include "util/streamio.hpp"
#include "util/strings.hpp"

namespace clog2 {

namespace {

constexpr std::array<char, 8> kMagic = {'P', 'C', 'L', 'O', 'G', '2', '\0', '\0'};

enum class RecordKind : std::uint8_t {
  kEventDef = 1,
  kStateDef = 2,
  kConstDef = 3,
  kEvent = 4,
  kMsg = 5,
  kSync = 6,
  kEndLog = 255,
};

}  // namespace

void append_record(util::ByteWriter& w, const Record& rec) {
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, EventDef>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kEventDef));
          w.i32(r.event_id);
          w.str(r.name);
          w.str(r.color);
          w.str(r.format);
        } else if constexpr (std::is_same_v<T, StateDef>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kStateDef));
          w.i32(r.state_id);
          w.i32(r.start_event_id);
          w.i32(r.end_event_id);
          w.str(r.name);
          w.str(r.color);
          w.str(r.format);
        } else if constexpr (std::is_same_v<T, ConstDef>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kConstDef));
          w.str(r.name);
          w.i64(r.value);
        } else if constexpr (std::is_same_v<T, EventRec>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kEvent));
          w.f64(r.timestamp);
          w.i32(r.rank);
          w.i32(r.event_id);
          w.str(r.text);
        } else if constexpr (std::is_same_v<T, MsgRec>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kMsg));
          w.f64(r.timestamp);
          w.i32(r.rank);
          w.u8(static_cast<std::uint8_t>(r.kind));
          w.i32(r.partner);
          w.i32(r.tag);
          w.u32(r.size);
        } else if constexpr (std::is_same_v<T, SyncRec>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kSync));
          w.i32(r.rank);
          w.f64(r.local_time);
          w.f64(r.ref_time);
        }
      },
      rec);
}

namespace {

// Shared by the in-memory ByteReader and the windowed FileByteReader —
// identical decode logic guarantees identical accept/reject verdicts.
template <typename Reader>
Record read_record_any(Reader& r) {
  const auto kind = static_cast<RecordKind>(r.u8());
  switch (kind) {
    case RecordKind::kEventDef: {
      EventDef d;
      d.event_id = r.i32();
      d.name = r.str();
      d.color = r.str();
      d.format = r.str();
      return d;
    }
    case RecordKind::kStateDef: {
      StateDef d;
      d.state_id = r.i32();
      d.start_event_id = r.i32();
      d.end_event_id = r.i32();
      d.name = r.str();
      d.color = r.str();
      d.format = r.str();
      return d;
    }
    case RecordKind::kConstDef: {
      ConstDef d;
      d.name = r.str();
      d.value = r.i64();
      return d;
    }
    case RecordKind::kEvent: {
      EventRec e;
      e.timestamp = r.f64();
      e.rank = r.i32();
      e.event_id = r.i32();
      e.text = r.str();
      return e;
    }
    case RecordKind::kMsg: {
      MsgRec m;
      m.timestamp = r.f64();
      m.rank = r.i32();
      m.kind = static_cast<MsgRec::Kind>(r.u8());
      if (m.kind != MsgRec::Kind::kSend && m.kind != MsgRec::Kind::kRecv)
        throw util::IoError("clog2: bad msg record kind");
      m.partner = r.i32();
      m.tag = r.i32();
      m.size = r.u32();
      return m;
    }
    case RecordKind::kSync: {
      SyncRec s;
      s.rank = r.i32();
      s.local_time = r.f64();
      s.ref_time = r.f64();
      return s;
    }
    default:
      throw util::IoError(util::strprintf("clog2: unknown record kind %u at offset %zu",
                                          static_cast<unsigned>(kind), r.pos() - 1));
  }
}

// Header fields up to (and including) the validated record count.
struct StreamHeader {
  std::uint32_t version = 0;
  std::int32_t nranks = 0;
  std::string comment;
  std::size_t nrecords = 0;
};

template <typename Reader>
StreamHeader read_stream_header(Reader& r) {
  const std::uint8_t* magic = r.take(kMagic.size());
  for (std::size_t i = 0; i < kMagic.size(); ++i)
    if (magic[i] != static_cast<std::uint8_t>(kMagic[i]))
      throw util::IoError("clog2: bad magic (not a CLOG-2 file)");
  StreamHeader h;
  h.version = r.u32();
  if (h.version != kFormatVersion)
    throw util::IoError(util::strprintf("clog2: unsupported version %u (expected %u)",
                                        h.version, kFormatVersion));
  h.nranks = r.i32();
  if (h.nranks < 0) throw util::IoError("clog2: negative rank count");
  h.comment = r.str();
  // Smallest record on disk is a kind byte plus payload; validating the
  // count against the remaining bytes turns a corrupted count field into a
  // parse error instead of a giant reserve().
  h.nrecords = r.checked_count(r.u64(), 2);
  return h;
}

void append_record_text(std::string& out, const Record& rec) {
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, EventDef>) {
          out += util::strprintf("  eventdef id=%d name=\"%s\" color=%s fmt=\"%s\"\n",
                                 r.event_id, r.name.c_str(), r.color.c_str(),
                                 r.format.c_str());
        } else if constexpr (std::is_same_v<T, StateDef>) {
          out += util::strprintf(
              "  statedef id=%d start=%d end=%d name=\"%s\" color=%s fmt=\"%s\"\n",
              r.state_id, r.start_event_id, r.end_event_id, r.name.c_str(),
              r.color.c_str(), r.format.c_str());
        } else if constexpr (std::is_same_v<T, ConstDef>) {
          out += util::strprintf("  constdef %s=%lld\n", r.name.c_str(),
                                 static_cast<long long>(r.value));
        } else if constexpr (std::is_same_v<T, EventRec>) {
          out += util::strprintf("  event t=%.9f rank=%d id=%d text=\"%s\"\n",
                                 r.timestamp, r.rank, r.event_id, r.text.c_str());
        } else if constexpr (std::is_same_v<T, MsgRec>) {
          out += util::strprintf("  msg t=%.9f rank=%d %s partner=%d tag=%d size=%u\n",
                                 r.timestamp, r.rank,
                                 r.kind == MsgRec::Kind::kSend ? "send" : "recv",
                                 r.partner, r.tag, r.size);
        } else if constexpr (std::is_same_v<T, SyncRec>) {
          out += util::strprintf("  sync rank=%d local=%.9f ref=%.9f\n", r.rank,
                                 r.local_time, r.ref_time);
        }
      },
      rec);
}

// Thrown (privately) by ProbeReader when a decode runs off the end of the
// buffered stream bytes: unlike a whole-file parse, running out of bytes on
// a live stream is retryable, not corruption.
struct NeedMoreData {};

// ByteReader-shaped decoder over the StreamReader's buffered bytes. Overrun
// throws NeedMoreData instead of IoError; element counts cannot be bounded
// by "remaining input" on a stream, so checked_count passes them through —
// the end-of-log marker (or EOF) validates the declared count instead, and
// nothing in the stream path allocates proportionally to a declared count.
class ProbeReader {
public:
  ProbeReader(const std::uint8_t* data, std::size_t n) : p_(data), n_(n) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    const std::uint32_t len = u32();
    if (len > StreamReader::kMaxRecordBytes)
      throw util::IoError(util::strprintf(
          "clog2: string length %u exceeds the %zu-byte record bound", len,
          StreamReader::kMaxRecordBytes));
    const std::uint8_t* p = take(len);
    return std::string(reinterpret_cast<const char*>(p), len);
  }

  const std::uint8_t* take(std::size_t n) {
    if (n > n_ - pos_) throw NeedMoreData{};
    const std::uint8_t* p = p_ + pos_;
    pos_ += n;
    return p;
  }

  [[nodiscard]] std::size_t checked_count(std::uint64_t n,
                                          std::size_t /*min_bytes*/) const {
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

private:
  template <typename T>
  T get_le() {
    const std::uint8_t* p = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(p[i]) << (8 * i)));
    return v;
  }

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

}  // namespace

Record read_record(util::ByteReader& r) { return read_record_any(r); }

void StreamReader::feed(const void* data, std::size_t n) {
  if (n == 0) return;
  if (finished_)
    throw util::IoError("clog2: stream bytes after the end-of-log marker");
  // Compact the consumed prefix before growing so the buffer stays at
  // O(unconsumed), not O(stream).
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

StreamReader::Status StreamReader::next(Record* out) {
  if (finished_) {
    if (buffered_bytes() > 0)
      throw util::IoError("clog2: stream bytes after the end-of-log marker");
    return Status::kEnd;
  }
  const auto need_more = [this]() -> Status {
    if (buffered_bytes() >= kMaxRecordBytes)
      throw util::IoError(util::strprintf(
          "clog2: record exceeds the %zu-byte stream bound", kMaxRecordBytes));
    return Status::kNeedMoreData;
  };
  if (!header_done_) {
    ProbeReader r(buf_.data() + pos_, buffered_bytes());
    try {
      const StreamHeader h = read_stream_header(r);
      version_ = h.version;
      nranks_ = h.nranks;
      comment_ = h.comment;
      nrecords_ = h.nrecords;
    } catch (const NeedMoreData&) {
      return need_more();
    }
    pos_ += r.pos();
    consumed_ += r.pos();
    header_done_ = true;
  }
  if (records_read_ == nrecords_) {
    if (buffered_bytes() == 0) return Status::kNeedMoreData;
    if (buf_[pos_] != static_cast<std::uint8_t>(RecordKind::kEndLog))
      throw util::IoError("clog2: missing end-of-log marker");
    ++pos_;
    ++consumed_;
    finished_ = true;
    if (buffered_bytes() > 0)
      throw util::IoError("clog2: stream bytes after the end-of-log marker");
    return Status::kEnd;
  }
  ProbeReader r(buf_.data() + pos_, buffered_bytes());
  Record rec;
  try {
    rec = read_record_any(r);
  } catch (const NeedMoreData&) {
    return need_more();
  }
  pos_ += r.pos();
  consumed_ += r.pos();
  ++records_read_;
  if (out) *out = std::move(rec);
  return Status::kRecord;
}

std::vector<std::uint8_t> serialize(const File& file) {
  util::ByteWriter w;
  w.raw(kMagic.data(), kMagic.size());
  w.u32(file.version);
  w.i32(file.nranks);
  w.str(file.comment);
  w.u64(file.records.size());
  for (const auto& rec : file.records) append_record(w, rec);
  w.u8(static_cast<std::uint8_t>(RecordKind::kEndLog));
  return w.take();
}

File parse(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  const StreamHeader h = read_stream_header(r);
  File file;
  file.version = h.version;
  file.nranks = h.nranks;
  file.comment = h.comment;
  file.records.reserve(h.nrecords);
  for (std::uint64_t i = 0; i < h.nrecords; ++i)
    file.records.push_back(read_record_any(r));
  if (r.u8() != static_cast<std::uint8_t>(RecordKind::kEndLog))
    throw util::IoError("clog2: missing end-of-log marker");
  return file;
}

void write_file(const std::filesystem::path& path, const File& file) {
  util::write_file(path, serialize(file));
}

File read_file(const std::filesystem::path& path) {
  return parse(util::read_file(path));
}

std::string to_text(const File& file) {
  std::string out;
  out += util::strprintf("CLOG-2 v%u  ranks=%d  records=%zu  comment=\"%s\"\n",
                         file.version, file.nranks, file.records.size(),
                         file.comment.c_str());
  for (const auto& rec : file.records) append_record_text(out, rec);
  return out;
}

void stream_text(const std::filesystem::path& path,
                 const std::function<void(const std::string&)>& sink) {
  // Validation pass: decode everything and discard, so a bad file rejects
  // (with parse()'s verdict) before a single byte of text is emitted.
  {
    util::FileByteReader r(path);
    const StreamHeader h = read_stream_header(r);
    for (std::uint64_t i = 0; i < h.nrecords; ++i) (void)read_record_any(r);
    if (r.u8() != static_cast<std::uint8_t>(RecordKind::kEndLog))
      throw util::IoError("clog2: missing end-of-log marker");
  }
  // Printing pass: re-decode through the window, one record in memory at a
  // time.
  util::FileByteReader r(path);
  const StreamHeader h = read_stream_header(r);
  sink(util::strprintf("CLOG-2 v%u  ranks=%d  records=%zu  comment=\"%s\"\n",
                       h.version, h.nranks, h.nrecords, h.comment.c_str()));
  std::string line;
  for (std::uint64_t i = 0; i < h.nrecords; ++i) {
    line.clear();
    append_record_text(line, read_record_any(r));
    sink(line);
  }
}

}  // namespace clog2

#include "clog2/clog2.hpp"

#include <array>

#include "util/fs.hpp"
#include "util/streamio.hpp"
#include "util/strings.hpp"

namespace clog2 {

namespace {

constexpr std::array<char, 8> kMagic = {'P', 'C', 'L', 'O', 'G', '2', '\0', '\0'};

enum class RecordKind : std::uint8_t {
  kEventDef = 1,
  kStateDef = 2,
  kConstDef = 3,
  kEvent = 4,
  kMsg = 5,
  kSync = 6,
  kEndLog = 255,
};

}  // namespace

void append_record(util::ByteWriter& w, const Record& rec) {
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, EventDef>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kEventDef));
          w.i32(r.event_id);
          w.str(r.name);
          w.str(r.color);
          w.str(r.format);
        } else if constexpr (std::is_same_v<T, StateDef>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kStateDef));
          w.i32(r.state_id);
          w.i32(r.start_event_id);
          w.i32(r.end_event_id);
          w.str(r.name);
          w.str(r.color);
          w.str(r.format);
        } else if constexpr (std::is_same_v<T, ConstDef>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kConstDef));
          w.str(r.name);
          w.i64(r.value);
        } else if constexpr (std::is_same_v<T, EventRec>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kEvent));
          w.f64(r.timestamp);
          w.i32(r.rank);
          w.i32(r.event_id);
          w.str(r.text);
        } else if constexpr (std::is_same_v<T, MsgRec>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kMsg));
          w.f64(r.timestamp);
          w.i32(r.rank);
          w.u8(static_cast<std::uint8_t>(r.kind));
          w.i32(r.partner);
          w.i32(r.tag);
          w.u32(r.size);
        } else if constexpr (std::is_same_v<T, SyncRec>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kSync));
          w.i32(r.rank);
          w.f64(r.local_time);
          w.f64(r.ref_time);
        }
      },
      rec);
}

namespace {

// Shared by the in-memory ByteReader and the windowed FileByteReader —
// identical decode logic guarantees identical accept/reject verdicts.
template <typename Reader>
Record read_record_any(Reader& r) {
  const auto kind = static_cast<RecordKind>(r.u8());
  switch (kind) {
    case RecordKind::kEventDef: {
      EventDef d;
      d.event_id = r.i32();
      d.name = r.str();
      d.color = r.str();
      d.format = r.str();
      return d;
    }
    case RecordKind::kStateDef: {
      StateDef d;
      d.state_id = r.i32();
      d.start_event_id = r.i32();
      d.end_event_id = r.i32();
      d.name = r.str();
      d.color = r.str();
      d.format = r.str();
      return d;
    }
    case RecordKind::kConstDef: {
      ConstDef d;
      d.name = r.str();
      d.value = r.i64();
      return d;
    }
    case RecordKind::kEvent: {
      EventRec e;
      e.timestamp = r.f64();
      e.rank = r.i32();
      e.event_id = r.i32();
      e.text = r.str();
      return e;
    }
    case RecordKind::kMsg: {
      MsgRec m;
      m.timestamp = r.f64();
      m.rank = r.i32();
      m.kind = static_cast<MsgRec::Kind>(r.u8());
      if (m.kind != MsgRec::Kind::kSend && m.kind != MsgRec::Kind::kRecv)
        throw util::IoError("clog2: bad msg record kind");
      m.partner = r.i32();
      m.tag = r.i32();
      m.size = r.u32();
      return m;
    }
    case RecordKind::kSync: {
      SyncRec s;
      s.rank = r.i32();
      s.local_time = r.f64();
      s.ref_time = r.f64();
      return s;
    }
    default:
      throw util::IoError(util::strprintf("clog2: unknown record kind %u at offset %zu",
                                          static_cast<unsigned>(kind), r.pos() - 1));
  }
}

// Header fields up to (and including) the validated record count.
struct StreamHeader {
  std::uint32_t version = 0;
  std::int32_t nranks = 0;
  std::string comment;
  std::size_t nrecords = 0;
};

template <typename Reader>
StreamHeader read_stream_header(Reader& r) {
  const std::uint8_t* magic = r.take(kMagic.size());
  for (std::size_t i = 0; i < kMagic.size(); ++i)
    if (magic[i] != static_cast<std::uint8_t>(kMagic[i]))
      throw util::IoError("clog2: bad magic (not a CLOG-2 file)");
  StreamHeader h;
  h.version = r.u32();
  if (h.version != kFormatVersion)
    throw util::IoError(util::strprintf("clog2: unsupported version %u (expected %u)",
                                        h.version, kFormatVersion));
  h.nranks = r.i32();
  if (h.nranks < 0) throw util::IoError("clog2: negative rank count");
  h.comment = r.str();
  // Smallest record on disk is a kind byte plus payload; validating the
  // count against the remaining bytes turns a corrupted count field into a
  // parse error instead of a giant reserve().
  h.nrecords = r.checked_count(r.u64(), 2);
  return h;
}

void append_record_text(std::string& out, const Record& rec) {
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, EventDef>) {
          out += util::strprintf("  eventdef id=%d name=\"%s\" color=%s fmt=\"%s\"\n",
                                 r.event_id, r.name.c_str(), r.color.c_str(),
                                 r.format.c_str());
        } else if constexpr (std::is_same_v<T, StateDef>) {
          out += util::strprintf(
              "  statedef id=%d start=%d end=%d name=\"%s\" color=%s fmt=\"%s\"\n",
              r.state_id, r.start_event_id, r.end_event_id, r.name.c_str(),
              r.color.c_str(), r.format.c_str());
        } else if constexpr (std::is_same_v<T, ConstDef>) {
          out += util::strprintf("  constdef %s=%lld\n", r.name.c_str(),
                                 static_cast<long long>(r.value));
        } else if constexpr (std::is_same_v<T, EventRec>) {
          out += util::strprintf("  event t=%.9f rank=%d id=%d text=\"%s\"\n",
                                 r.timestamp, r.rank, r.event_id, r.text.c_str());
        } else if constexpr (std::is_same_v<T, MsgRec>) {
          out += util::strprintf("  msg t=%.9f rank=%d %s partner=%d tag=%d size=%u\n",
                                 r.timestamp, r.rank,
                                 r.kind == MsgRec::Kind::kSend ? "send" : "recv",
                                 r.partner, r.tag, r.size);
        } else if constexpr (std::is_same_v<T, SyncRec>) {
          out += util::strprintf("  sync rank=%d local=%.9f ref=%.9f\n", r.rank,
                                 r.local_time, r.ref_time);
        }
      },
      rec);
}

}  // namespace

Record read_record(util::ByteReader& r) { return read_record_any(r); }

std::vector<std::uint8_t> serialize(const File& file) {
  util::ByteWriter w;
  w.raw(kMagic.data(), kMagic.size());
  w.u32(file.version);
  w.i32(file.nranks);
  w.str(file.comment);
  w.u64(file.records.size());
  for (const auto& rec : file.records) append_record(w, rec);
  w.u8(static_cast<std::uint8_t>(RecordKind::kEndLog));
  return w.take();
}

File parse(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  const StreamHeader h = read_stream_header(r);
  File file;
  file.version = h.version;
  file.nranks = h.nranks;
  file.comment = h.comment;
  file.records.reserve(h.nrecords);
  for (std::uint64_t i = 0; i < h.nrecords; ++i)
    file.records.push_back(read_record_any(r));
  if (r.u8() != static_cast<std::uint8_t>(RecordKind::kEndLog))
    throw util::IoError("clog2: missing end-of-log marker");
  return file;
}

void write_file(const std::filesystem::path& path, const File& file) {
  util::write_file(path, serialize(file));
}

File read_file(const std::filesystem::path& path) {
  return parse(util::read_file(path));
}

std::string to_text(const File& file) {
  std::string out;
  out += util::strprintf("CLOG-2 v%u  ranks=%d  records=%zu  comment=\"%s\"\n",
                         file.version, file.nranks, file.records.size(),
                         file.comment.c_str());
  for (const auto& rec : file.records) append_record_text(out, rec);
  return out;
}

void stream_text(const std::filesystem::path& path,
                 const std::function<void(const std::string&)>& sink) {
  // Validation pass: decode everything and discard, so a bad file rejects
  // (with parse()'s verdict) before a single byte of text is emitted.
  {
    util::FileByteReader r(path);
    const StreamHeader h = read_stream_header(r);
    for (std::uint64_t i = 0; i < h.nrecords; ++i) (void)read_record_any(r);
    if (r.u8() != static_cast<std::uint8_t>(RecordKind::kEndLog))
      throw util::IoError("clog2: missing end-of-log marker");
  }
  // Printing pass: re-decode through the window, one record in memory at a
  // time.
  util::FileByteReader r(path);
  const StreamHeader h = read_stream_header(r);
  sink(util::strprintf("CLOG-2 v%u  ranks=%d  records=%zu  comment=\"%s\"\n",
                       h.version, h.nranks, h.nrecords, h.comment.c_str()));
  std::string line;
  for (std::uint64_t i = 0; i < h.nrecords; ++i) {
    line.clear();
    append_record_text(line, read_record_any(r));
    sink(line);
  }
}

}  // namespace clog2

// CLOG-2: the "raw" trace format produced by the MPE layer at Finish_log.
//
// Clean-room format with the same architecture as Argonne's CLOG-2: a flat,
// time-merged stream of fixed-vocabulary records —
//   * definition records (solo events, states, integer constants),
//   * timestamped event instances (with optional popup text),
//   * message events (send/recv halves matched later by the converter),
//   * clock-sync sample points.
// CLOG-2 deliberately knows nothing about pairing or nesting; that analysis
// happens in the CLOG-2 → SLOG-2 converter, which is exactly why the paper
// calls the two-step pipeline "preferred": a defective program still yields
// a parseable CLOG-2 file that can be inspected with clog2print.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "util/bytebuf.hpp"

namespace clog2 {

/// Current on-disk format version.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Definition of a solo event kind (one timestamp, drawn as a bubble).
struct EventDef {
  std::int32_t event_id = 0;
  std::string name;
  std::string color;   ///< X11-style colour name (validated at MPE layer)
  std::string format;  ///< popup text template, e.g. "Line: %d"
};

/// Definition of a state kind (start/end event pair, drawn as a rectangle).
struct StateDef {
  std::int32_t state_id = 0;
  std::int32_t start_event_id = 0;
  std::int32_t end_event_id = 0;
  std::string name;
  std::string color;
  std::string format;
};

/// Miscellaneous named integer constant (world size, options in force, ...).
struct ConstDef {
  std::string name;
  std::int64_t value = 0;
};

/// One timestamped event instance. Instances of a StateDef's start/end
/// events delimit a state; instances of an EventDef are solo bubbles.
struct EventRec {
  double timestamp = 0.0;  ///< seconds, already clock-sync corrected
  std::int32_t rank = 0;
  std::int32_t event_id = 0;
  std::string text;  ///< popup payload (MPE caps it at 40 bytes)
};

/// One half of a message (the converter pairs sends with receives).
struct MsgRec {
  enum class Kind : std::uint8_t { kSend = 0, kRecv = 1 };
  double timestamp = 0.0;
  std::int32_t rank = 0;  ///< the rank that logged this half
  Kind kind = Kind::kSend;
  std::int32_t partner = 0;  ///< peer rank
  std::int32_t tag = 0;
  std::uint32_t size = 0;  ///< payload bytes
};

/// Clock-sync sample: rank-local clock vs the rank-0 reference clock at the
/// same instant. Used by tools to judge sync quality after the fact.
struct SyncRec {
  std::int32_t rank = 0;
  double local_time = 0.0;
  double ref_time = 0.0;
};

using Record = std::variant<EventDef, StateDef, ConstDef, EventRec, MsgRec, SyncRec>;

/// A parsed / to-be-written CLOG-2 file.
struct File {
  std::uint32_t version = kFormatVersion;
  std::int32_t nranks = 0;
  std::string comment;
  std::vector<Record> records;

  /// Number of records of type T.
  template <typename T>
  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (const auto& r : records)
      if (std::holds_alternative<T>(r)) ++n;
    return n;
  }
};

/// Append one record in the on-disk layout (used by the robust-log spill
/// files, which are bare record streams without the file header).
void append_record(util::ByteWriter& w, const Record& rec);

/// Read one record; throws util::IoError on a malformed or truncated
/// record. Callers streaming a possibly-truncated spill catch the error at
/// the tail and keep what parsed.
Record read_record(util::ByteReader& r);

/// Serialize to the on-disk byte layout.
std::vector<std::uint8_t> serialize(const File& file);

/// Parse; throws util::IoError on malformed/truncated input.
File parse(const std::vector<std::uint8_t>& bytes);

void write_file(const std::filesystem::path& path, const File& file);
File read_file(const std::filesystem::path& path);

/// Human-readable dump (the clog2print tool).
std::string to_text(const File& file);

/// Stream the to_text() dump of an on-disk trace through `sink` using a
/// fixed-size read window: RSS peaks at the window (plus one record), not at
/// the full record vector. Runs a validation pass first — with exactly the
/// accept/reject verdict of parse() — and only then a printing pass, so a
/// corrupt or truncated file throws util::IoError before any output is
/// emitted (no partial dump). Output is byte-identical to
/// to_text(read_file(path)).
void stream_text(const std::filesystem::path& path,
                 const std::function<void(const std::string&)>& sink);

}  // namespace clog2

// CLOG-2: the "raw" trace format produced by the MPE layer at Finish_log.
//
// Clean-room format with the same architecture as Argonne's CLOG-2: a flat,
// time-merged stream of fixed-vocabulary records —
//   * definition records (solo events, states, integer constants),
//   * timestamped event instances (with optional popup text),
//   * message events (send/recv halves matched later by the converter),
//   * clock-sync sample points.
// CLOG-2 deliberately knows nothing about pairing or nesting; that analysis
// happens in the CLOG-2 → SLOG-2 converter, which is exactly why the paper
// calls the two-step pipeline "preferred": a defective program still yields
// a parseable CLOG-2 file that can be inspected with clog2print.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "util/bytebuf.hpp"

namespace clog2 {

/// Current on-disk format version.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Definition of a solo event kind (one timestamp, drawn as a bubble).
struct EventDef {
  std::int32_t event_id = 0;
  std::string name;
  std::string color;   ///< X11-style colour name (validated at MPE layer)
  std::string format;  ///< popup text template, e.g. "Line: %d"
};

/// Definition of a state kind (start/end event pair, drawn as a rectangle).
struct StateDef {
  std::int32_t state_id = 0;
  std::int32_t start_event_id = 0;
  std::int32_t end_event_id = 0;
  std::string name;
  std::string color;
  std::string format;
};

/// Miscellaneous named integer constant (world size, options in force, ...).
struct ConstDef {
  std::string name;
  std::int64_t value = 0;
};

/// One timestamped event instance. Instances of a StateDef's start/end
/// events delimit a state; instances of an EventDef are solo bubbles.
struct EventRec {
  double timestamp = 0.0;  ///< seconds, already clock-sync corrected
  std::int32_t rank = 0;
  std::int32_t event_id = 0;
  std::string text;  ///< popup payload (MPE caps it at 40 bytes)
};

/// One half of a message (the converter pairs sends with receives).
struct MsgRec {
  enum class Kind : std::uint8_t { kSend = 0, kRecv = 1 };
  double timestamp = 0.0;
  std::int32_t rank = 0;  ///< the rank that logged this half
  Kind kind = Kind::kSend;
  std::int32_t partner = 0;  ///< peer rank
  std::int32_t tag = 0;
  std::uint32_t size = 0;  ///< payload bytes
};

/// Clock-sync sample: rank-local clock vs the rank-0 reference clock at the
/// same instant. Used by tools to judge sync quality after the fact.
struct SyncRec {
  std::int32_t rank = 0;
  double local_time = 0.0;
  double ref_time = 0.0;
};

using Record = std::variant<EventDef, StateDef, ConstDef, EventRec, MsgRec, SyncRec>;

/// A parsed / to-be-written CLOG-2 file.
struct File {
  std::uint32_t version = kFormatVersion;
  std::int32_t nranks = 0;
  std::string comment;
  std::vector<Record> records;

  /// Number of records of type T.
  template <typename T>
  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (const auto& r : records)
      if (std::holds_alternative<T>(r)) ++n;
    return n;
  }
};

/// Append one record in the on-disk layout (used by the robust-log spill
/// files, which are bare record streams without the file header).
void append_record(util::ByteWriter& w, const Record& rec);

/// Read one record; throws util::IoError on a malformed or truncated
/// record. Callers streaming a possibly-truncated spill catch the error at
/// the tail and keep what parsed.
Record read_record(util::ByteReader& r);

/// Serialize to the on-disk byte layout.
std::vector<std::uint8_t> serialize(const File& file);

/// Parse; throws util::IoError on malformed/truncated input.
File parse(const std::vector<std::uint8_t>& bytes);

void write_file(const std::filesystem::path& path, const File& file);
File read_file(const std::filesystem::path& path);

/// Human-readable dump (the clog2print tool).
std::string to_text(const File& file);

/// Stream the to_text() dump of an on-disk trace through `sink` using a
/// fixed-size read window: RSS peaks at the window (plus one record), not at
/// the full record vector. Runs a validation pass first — with exactly the
/// accept/reject verdict of parse() — and only then a printing pass, so a
/// corrupt or truncated file throws util::IoError before any output is
/// emitted (no partial dump). Output is byte-identical to
/// to_text(read_file(path)).
void stream_text(const std::filesystem::path& path,
                 const std::function<void(const std::string&)>& sink);

/// Incremental, resumable CLOG-2 decoder for live ingest (pilot-traced).
///
/// feed() appends raw bytes as they arrive from a socket or FIFO; next()
/// decodes the header and then one record per call. A partial trailing
/// block — the normal state of a stream that is still being written — is
/// reported as Status::kNeedMoreData (retryable after more feed()) instead
/// of the hard util::IoError a whole-file parse() gives truncation.
/// Structural corruption (bad magic, unsupported version, unknown record
/// kind, bad message kind, an impossibly large record) still throws
/// util::IoError, so a corrupt stream fails loudly at the first bad byte.
///
/// The accepted record language is exactly parse()'s: feeding a complete
/// file through in any chunking yields the same record sequence parse()
/// yields, and a file parse() rejects makes next() throw (possibly only
/// once the whole file has been fed — a count/end-marker mismatch is not
/// detectable earlier on a stream).
class StreamReader {
public:
  enum class Status : std::uint8_t {
    kNeedMoreData = 0,  ///< partial trailing block; retry after feed()
    kRecord = 1,        ///< *out holds the next record
    kEnd = 2,           ///< end-of-log marker consumed; stream complete
  };

  /// A single record larger than this is treated as corruption instead of
  /// "need more data", so a hostile length field cannot make an ingest
  /// buffer grow without bound while the reader waits forever.
  static constexpr std::size_t kMaxRecordBytes = 16 * 1024 * 1024;

  /// Append raw stream bytes. Throws util::IoError if bytes arrive after
  /// the end-of-log marker (trailing garbage).
  void feed(const void* data, std::size_t n);

  /// Decode the next item out of the buffered bytes.
  Status next(Record* out);

  [[nodiscard]] bool header_done() const { return header_done_; }
  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] std::int32_t nranks() const { return nranks_; }
  [[nodiscard]] const std::string& comment() const { return comment_; }
  /// Declared record count (valid once header_done()). Untrusted until the
  /// end-of-log marker confirms it.
  [[nodiscard]] std::uint64_t nrecords() const { return nrecords_; }
  [[nodiscard]] std::uint64_t records_read() const { return records_read_; }
  /// True once the end-of-log marker has been consumed.
  [[nodiscard]] bool finished() const { return finished_; }
  /// Bytes fed but not yet consumed by a completed decode.
  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - pos_; }
  /// Total bytes consumed by completed decodes.
  [[nodiscard]] std::uint64_t bytes_consumed() const { return consumed_; }

private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::uint64_t consumed_ = 0;
  bool header_done_ = false;
  bool finished_ = false;
  std::uint32_t version_ = 0;
  std::int32_t nranks_ = 0;
  std::string comment_;
  std::uint64_t nrecords_ = 0;
  std::uint64_t records_read_ = 0;
};

}  // namespace clog2

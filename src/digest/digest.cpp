#include "digest/digest.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "query/slog2_rollup.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace digest {

namespace {

// --- deterministic sampling -------------------------------------------------

/// SplitMix64: the exemplar sampler's only randomness. Seeded from
/// Options::seed so the whole digest is a pure function of (trace, options).
struct SplitMix64 {
  std::uint64_t x;
  explicit SplitMix64(std::uint64_t seed) : x(seed) {}
  std::uint64_t next() {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
};

/// Reservoir of size one: the k-th candidate replaces the held one with
/// probability 1/k, so every candidate is equally likely regardless of how
/// many there are — without buffering them.
struct ExemplarSampler {
  SplitMix64 rng;
  std::uint64_t seen = 0;
  std::string held;
  explicit ExemplarSampler(std::uint64_t seed) : rng(seed) {}
  void offer(const std::string& text) {
    if (text.empty()) return;
    ++seen;
    if (rng.next() % seen == 0) held = text;
  }
};

// --- motif detection --------------------------------------------------------

/// Cap on the per-rank outermost-state sequence fed to the period scan;
/// beyond it the motif gets a "+N more" suffix instead of more symbols.
constexpr std::size_t kMaxMotifSequence = 4096;
constexpr std::size_t kMaxPeriod = 8;   ///< longest repeating block detected
constexpr std::size_t kMinRepeats = 3;  ///< shorter runs stay verbatim

std::string category_name(const slog2::Navigator& nav, std::int32_t id) {
  const slog2::Category* c = nav.category(id);
  if (c && !c->name.empty()) return c->name;
  return util::strprintf("cat%d", id);
}

/// Collapse a symbol sequence with greedy run/period detection: at each
/// position, the (period, repeats) pair covering the most symbols (repeats
/// >= kMinRepeats) is emitted as "(A B)xN"; otherwise one symbol passes
/// through. Greedy is not optimal compression, but it is deterministic,
/// linear-ish, and collapses the SPMD loops this exists for.
std::string collapse_motif(const std::vector<std::int32_t>& seq,
                           const std::map<std::int32_t, std::string>& names,
                           bool truncated_input) {
  const auto name_of = [&](std::int32_t id) -> const std::string& {
    return names.at(id);
  };
  std::string out;
  const auto emit = [&](const std::string& s) {
    if (!out.empty()) out.push_back(' ');
    out += s;
  };
  std::size_t i = 0;
  while (i < seq.size()) {
    std::size_t best_p = 0, best_k = 0;
    for (std::size_t p = 1; p <= kMaxPeriod && i + p <= seq.size(); ++p) {
      std::size_t k = 1;
      while (i + (k + 1) * p <= seq.size() &&
             std::equal(seq.begin() + static_cast<std::ptrdiff_t>(i),
                        seq.begin() + static_cast<std::ptrdiff_t>(i + p),
                        seq.begin() + static_cast<std::ptrdiff_t>(i + k * p)))
        ++k;
      if (k >= kMinRepeats && p * k > best_p * best_k) {
        best_p = p;
        best_k = k;
      }
    }
    if (best_k >= kMinRepeats) {
      std::string block;
      for (std::size_t j = 0; j < best_p; ++j) {
        if (j) block.push_back(' ');
        block += name_of(seq[i + j]);
      }
      emit(best_p == 1 ? util::strprintf("%s x%zu", block.c_str(), best_k)
                       : util::strprintf("(%s) x%zu", block.c_str(), best_k));
      i += best_p * best_k;
    } else {
      emit(name_of(seq[i]));
      ++i;
    }
  }
  if (truncated_input) emit("...");
  if (out.empty()) out = "(no states)";
  return out;
}

/// "0-3,7,9-10" for {0,1,2,3,7,9,10}.
std::string rank_ranges(const std::vector<std::int32_t>& ranks) {
  std::string out;
  std::size_t i = 0;
  while (i < ranks.size()) {
    std::size_t j = i;
    while (j + 1 < ranks.size() && ranks[j + 1] == ranks[j] + 1) ++j;
    if (!out.empty()) out.push_back(',');
    out += j > i ? util::strprintf("%d-%d", ranks[i], ranks[j])
                 : util::strprintf("%d", ranks[i]);
    i = j + 1;
  }
  return out;
}

// --- rendering --------------------------------------------------------------

/// Accepts whole lines until the next one (plus the truncation marker)
/// would overflow the budget; everything after the first rejection is
/// dropped. take() appends the marker iff anything was dropped, so the
/// result is always <= budget bytes.
class BudgetWriter {
 public:
  explicit BudgetWriter(std::size_t budget) : budget_(budget) {}

  void line(const std::string& s) {
    if (truncated_) return;
    static const std::size_t kMarker = sizeof("[truncated]\n") - 1;
    if (out_.size() + s.size() + 1 + kMarker > budget_) {
      truncated_ = true;
      return;
    }
    out_ += s;
    out_.push_back('\n');
  }

  [[nodiscard]] std::string take() {
    if (truncated_ && out_.size() + sizeof("[truncated]\n") - 1 <= budget_)
      out_ += "[truncated]\n";
    return std::move(out_);
  }

 private:
  std::size_t budget_;
  std::string out_;
  bool truncated_ = false;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += util::strprintf("\\u%04x", c);
        else
          out.push_back(c);
    }
  }
  return out;
}

std::string fnum(double v) { return util::strprintf("%.9g", v); }

/// One JSON rendering with every list capped at `limit` items. render()
/// walks `limit` down until the document fits the budget.
std::string render_json(const Digest& d, std::size_t limit, bool truncated) {
  std::string j = "{";
  j += util::strprintf(
      "\"nranks\":%d,\"t_min\":%s,\"t_max\":%s,\"encoding\":\"%s\","
      "\"states\":%llu,\"events\":%llu,\"arrows\":%llu,\"clean\":%s",
      d.nranks, fnum(d.t_min).c_str(), fnum(d.t_max).c_str(),
      slog2::to_string(d.encoding),
      static_cast<unsigned long long>(d.states),
      static_cast<unsigned long long>(d.events),
      static_cast<unsigned long long>(d.arrows), d.clean ? "true" : "false");

  const auto cap = [&](std::size_t n) { return std::min(n, limit); };

  j += ",\"anomalies\":[";
  for (std::size_t i = 0; i < cap(d.anomalies.size()); ++i) {
    const Anomaly& a = d.anomalies[i];
    if (i) j.push_back(',');
    j += util::strprintf("{\"kind\":\"%s\",\"score\":%s,\"detail\":\"%s\"}",
                         a.kind.c_str(), fnum(a.score).c_str(),
                         json_escape(a.detail).c_str());
  }
  j += "],\"ranks\":[";
  for (std::size_t i = 0; i < cap(d.ranks.size()); ++i) {
    const RankRow& r = d.ranks[i];
    if (i) j.push_back(',');
    j += util::strprintf(
        "{\"rank\":%d,\"busy\":%s,\"states\":%llu,\"events\":%llu,"
        "\"out\":%llu,\"in\":%llu}",
        r.rank, fnum(r.busy).c_str(),
        static_cast<unsigned long long>(r.states),
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.arrows_out),
        static_cast<unsigned long long>(r.arrows_in));
  }
  j += "],\"top_states\":[";
  for (std::size_t i = 0; i < cap(d.top_states.size()); ++i) {
    const StateRow& s = d.top_states[i];
    if (i) j.push_back(',');
    j += util::strprintf(
        "{\"name\":\"%s\",\"count\":%llu,\"inclusive\":%s,\"exclusive\":%s",
        json_escape(s.name).c_str(), static_cast<unsigned long long>(s.count),
        fnum(s.inclusive).c_str(), fnum(s.exclusive).c_str());
    if (!s.exemplar.empty())
      j += util::strprintf(",\"exemplar\":\"%s\"",
                           json_escape(s.exemplar).c_str());
    j.push_back('}');
  }
  j += "],\"edges\":[";
  for (std::size_t i = 0; i < cap(d.edges.size()); ++i) {
    const EdgeRow& e = d.edges[i];
    if (i) j.push_back(',');
    j += util::strprintf(
        "{\"src\":%d,\"dst\":%d,\"count\":%llu,\"bytes\":%llu,"
        "\"mean_latency\":%s}",
        e.src, e.dst, static_cast<unsigned long long>(e.count),
        static_cast<unsigned long long>(e.bytes),
        fnum(e.mean_latency).c_str());
  }
  j += "],\"motifs\":[";
  for (std::size_t i = 0; i < cap(d.motifs.size()); ++i) {
    const MotifRow& m = d.motifs[i];
    if (i) j.push_back(',');
    j += util::strprintf("{\"ranks\":\"%s\",\"states\":%llu,\"motif\":\"%s\"}",
                         rank_ranges(m.ranks).c_str(),
                         static_cast<unsigned long long>(m.states),
                         json_escape(m.motif).c_str());
  }
  j += util::strprintf("],\"truncated\":%s}", truncated ? "true" : "false");
  return j;
}

}  // namespace

Digest analyze(slog2::Navigator& nav, const Options& opts) {
  Digest d;
  d.nranks = nav.nranks();
  d.t_min = nav.t_min();
  d.t_max = nav.t_max();
  d.encoding = nav.encoding();
  d.clean = nav.stats().clean();

  const double a = std::max(opts.t0, -std::numeric_limits<double>::max());
  const double b = std::min(opts.t1, std::numeric_limits<double>::max());

  query::LegendSweep sweep;
  query::WindowOccupancy occ(d.nranks, a, b);
  std::map<std::int32_t, ExemplarSampler> exemplars;
  // (rank) -> outermost states ordered (start_time, category) for motifs.
  // A frame's states are time-ordered, but different frames interleave, so
  // the (time, cat) key is collected and sorted per rank afterwards.
  std::map<std::int32_t, std::vector<std::pair<double, std::int32_t>>> seqs;
  std::map<std::int32_t, std::uint64_t> seq_total;  // incl. beyond the cap
  std::map<std::pair<std::int32_t, std::int32_t>, EdgeRow> edges;
  std::vector<double> latencies_scratch;

  // Frame decode runs on opts.threads workers; the callbacks below fire
  // serially in traversal order, so every accumulator sees the serial feed.
  nav.visit_window(
      a, b,
      [&](const slog2::StateDrawable& s) {
        sweep.add_state(s);
        occ.add_state(s);
        ++d.states;
        auto it = exemplars.find(s.category_id);
        if (it == exemplars.end())
          it = exemplars
                   .emplace(s.category_id,
                            ExemplarSampler(opts.seed ^
                                            static_cast<std::uint64_t>(
                                                s.category_id)))
                   .first;
        it->second.offer(s.start_text);
        it->second.offer(s.end_text);
        if (s.depth == 0 && s.rank >= 0) {
          ++seq_total[s.rank];
          auto& seq = seqs[s.rank];
          if (seq.size() < kMaxMotifSequence)
            seq.emplace_back(s.start_time, s.category_id);
        }
      },
      [&](const slog2::EventDrawable& e) {
        sweep.add_event(e);
        occ.add_event(e);
        ++d.events;
      },
      [&](const slog2::ArrowDrawable& ar) {
        sweep.add_arrow(ar);
        occ.add_arrow(ar);
        ++d.arrows;
        EdgeRow& e = edges[{ar.src_rank, ar.dst_rank}];
        e.src = ar.src_rank;
        e.dst = ar.dst_rank;
        ++e.count;
        e.bytes += ar.size;
        e.mean_latency += ar.end_time - ar.start_time;  // sum; divided below
      },
      opts.threads);

  // Rank table.
  std::int32_t rank = 0;
  for (const auto& r : occ.ranks()) {
    RankRow row;
    row.rank = rank++;
    for (const auto& kv : r.state_time) row.busy += kv.second;
    for (const auto& kv : r.state_count) row.states += kv.second;
    for (const auto& kv : r.event_count) row.events += kv.second;
    row.arrows_out = r.arrows_out;
    row.arrows_in = r.arrows_in;
    d.ranks.push_back(row);
  }

  // Top states by inclusive time (stable tie-break on category id).
  for (const auto& [cat, tot] : sweep.totals(opts.threads)) {
    const slog2::Category* c = nav.category(cat);
    if (!c || c->kind != slog2::CategoryKind::kState) continue;
    StateRow row;
    row.category_id = cat;
    row.name = category_name(nav, cat);
    row.count = tot.count;
    row.inclusive = tot.inclusive;
    row.exclusive = tot.exclusive;
    const auto ex = exemplars.find(cat);
    if (ex != exemplars.end()) row.exemplar = ex->second.held;
    d.top_states.push_back(std::move(row));
  }
  std::sort(d.top_states.begin(), d.top_states.end(),
            [](const StateRow& x, const StateRow& y) {
              if (x.inclusive != y.inclusive) return x.inclusive > y.inclusive;
              return x.category_id < y.category_id;
            });

  // Edges by count (tie-break (src, dst)); the latency sum becomes a mean.
  for (auto& [key, e] : edges) {
    e.mean_latency = e.count ? e.mean_latency / static_cast<double>(e.count) : 0.0;
    d.edges.push_back(e);
  }
  std::sort(d.edges.begin(), d.edges.end(),
            [](const EdgeRow& x, const EdgeRow& y) {
              if (x.count != y.count) return x.count > y.count;
              if (x.src != y.src) return x.src < y.src;
              return x.dst < y.dst;
            });

  // Motifs: collapse each rank's sequence, then dedup identical strings
  // into rank groups (SPMD ranks collapse to one line). The per-rank sort +
  // period scans shard across workers (the digest's hot loop on wide
  // traces); names are resolved up front and the grouping walks ranks in
  // ascending order, so the result is exactly the serial one.
  {
    std::map<std::int32_t, std::string> names;
    for (const auto& [r, seq] : seqs)
      for (const auto& [t, c] : seq)
        if (!names.count(c)) names[c] = category_name(nav, c);

    std::vector<std::int32_t> motif_ranks;
    std::vector<std::vector<std::pair<double, std::int32_t>>*> rank_seqs;
    motif_ranks.reserve(seqs.size());
    rank_seqs.reserve(seqs.size());
    for (auto& [r, seq] : seqs) {
      motif_ranks.push_back(r);
      rank_seqs.push_back(&seq);
    }
    std::vector<std::string> motifs(rank_seqs.size());
    util::parallel_for(
        rank_seqs.size(), util::resolve_threads(opts.threads),
        [&](std::size_t k) {
          auto& seq = *rank_seqs[k];
          std::sort(seq.begin(), seq.end());
          std::vector<std::int32_t> cats;
          cats.reserve(seq.size());
          for (const auto& [t, c] : seq) cats.push_back(c);
          const std::uint64_t total = seq_total.find(motif_ranks[k])->second;
          motifs[k] = collapse_motif(cats, names, total > kMaxMotifSequence);
        });

    std::map<std::string, MotifRow> groups;
    for (std::size_t k = 0; k < rank_seqs.size(); ++k) {
      MotifRow& g = groups[motifs[k]];
      if (g.ranks.empty()) {
        g.motif = std::move(motifs[k]);
        g.states = seq_total.find(motif_ranks[k])->second;
      }
      g.ranks.push_back(motif_ranks[k]);
    }
    for (auto& [m, g] : groups) d.motifs.push_back(std::move(g));
    std::sort(d.motifs.begin(), d.motifs.end(),
              [](const MotifRow& x, const MotifRow& y) {
                return x.ranks.front() < y.ranks.front();
              });
  }

  // Anomalies: rank busy skew against the mean...
  if (d.nranks >= 2) {
    double mean = 0.0;
    for (const RankRow& r : d.ranks) mean += r.busy;
    mean /= static_cast<double>(d.nranks);
    if (mean > 0.0) {
      for (const RankRow& r : d.ranks) {
        if (r.busy >= opts.skew_threshold * mean) {
          d.anomalies.push_back(
              {"rank_busy_high", r.busy / mean,
               util::strprintf("rank %d busy %ss vs mean %ss (%.2fx)", r.rank,
                               fnum(r.busy).c_str(), fnum(mean).c_str(),
                               r.busy / mean)});
        } else if (r.busy * opts.skew_threshold <= mean) {
          const double score = mean / std::max(r.busy, 1e-12);
          d.anomalies.push_back(
              {"rank_busy_low", score,
               util::strprintf("rank %d busy %ss vs mean %ss", r.rank,
                               fnum(r.busy).c_str(), fnum(mean).c_str())});
        }
      }
    }
  }
  // ...and edge mean latency against the median edge.
  if (d.edges.size() >= 2) {
    latencies_scratch.clear();
    for (const EdgeRow& e : d.edges) latencies_scratch.push_back(e.mean_latency);
    std::sort(latencies_scratch.begin(), latencies_scratch.end());
    const double median = latencies_scratch[latencies_scratch.size() / 2];
    if (median > 0.0) {
      for (const EdgeRow& e : d.edges) {
        if (e.mean_latency >= opts.latency_threshold * median) {
          d.anomalies.push_back(
              {"edge_latency", e.mean_latency / median,
               util::strprintf(
                   "edge %d->%d mean latency %ss vs median %ss (%.2fx)",
                   e.src, e.dst, fnum(e.mean_latency).c_str(),
                   fnum(median).c_str(), e.mean_latency / median)});
        }
      }
    }
  }
  std::sort(d.anomalies.begin(), d.anomalies.end(),
            [](const Anomaly& x, const Anomaly& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.kind != y.kind) return x.kind < y.kind;
              return x.detail < y.detail;
            });

  return d;
}

std::string render(const Digest& d, const Options& opts) {
  if (opts.json) {
    // Walk the per-list cap down until the document fits. limit==lists'
    // max size first, so an ample budget gets the full digest.
    std::size_t max_list = std::max(
        {d.anomalies.size(), d.ranks.size(), d.top_states.size(),
         d.edges.size(), d.motifs.size()});
    for (;;) {
      const std::string j = render_json(d, max_list, false);
      if (j.size() <= opts.budget) return j;
      break;  // needs truncation
    }
    for (std::size_t limit : {std::size_t{64}, std::size_t{32}, std::size_t{16},
                              std::size_t{8}, std::size_t{4}, std::size_t{2},
                              std::size_t{1}, std::size_t{0}}) {
      if (limit >= max_list && limit != 0) continue;
      const std::string j = render_json(d, limit, true);
      if (j.size() <= opts.budget) return j;
    }
    if (opts.budget >= 2) return "{}";
    return "";
  }

  BudgetWriter w(opts.budget);
  w.line(util::strprintf(
      "digest: %d ranks, window [%s, %s]s, %llu states / %llu events / "
      "%llu arrows (%s payloads, %s)",
      d.nranks, fnum(d.t_min).c_str(), fnum(d.t_max).c_str(),
      static_cast<unsigned long long>(d.states),
      static_cast<unsigned long long>(d.events),
      static_cast<unsigned long long>(d.arrows), slog2::to_string(d.encoding),
      d.clean ? "clean" : "NOT CLEAN"));

  if (d.anomalies.empty()) {
    w.line("anomalies: none");
  } else {
    w.line(util::strprintf("anomalies (%zu):", d.anomalies.size()));
    for (const Anomaly& a : d.anomalies)
      w.line(util::strprintf("  [%s] %s", a.kind.c_str(), a.detail.c_str()));
  }

  w.line("ranks:");
  for (const RankRow& r : d.ranks)
    w.line(util::strprintf(
        "  %6d busy %ss, %llu states, %llu events, %llu out / %llu in",
        r.rank, fnum(r.busy).c_str(), static_cast<unsigned long long>(r.states),
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.arrows_out),
        static_cast<unsigned long long>(r.arrows_in)));

  w.line("states by inclusive time:");
  for (const StateRow& s : d.top_states) {
    std::string line = util::strprintf(
        "  %s: %llu, incl %ss, excl %ss", s.name.c_str(),
        static_cast<unsigned long long>(s.count), fnum(s.inclusive).c_str(),
        fnum(s.exclusive).c_str());
    if (!s.exemplar.empty())
      line += util::strprintf(", e.g. \"%s\"", s.exemplar.c_str());
    w.line(line);
  }

  w.line("edges by message count:");
  for (const EdgeRow& e : d.edges)
    w.line(util::strprintf(
        "  %d->%d: %llu msgs, %llu bytes, mean latency %ss", e.src, e.dst,
        static_cast<unsigned long long>(e.count),
        static_cast<unsigned long long>(e.bytes),
        fnum(e.mean_latency).c_str()));

  w.line("motifs (outermost states per rank):");
  for (const MotifRow& m : d.motifs)
    w.line(util::strprintf("  ranks %s: %s",
                           rank_ranges(m.ranks).c_str(), m.motif.c_str()));

  return w.take();
}

std::string summarize(slog2::Navigator& nav, const Options& opts) {
  return render(analyze(nav, opts), opts);
}

}  // namespace digest

// Budgeted trace summaries: pilot-tracedigest's library half.
//
// A digest answers "what happened in this run?" in a bounded number of
// bytes — small enough to paste into a bug report or feed to a log
// aggregator — instead of the full slog2print dump. Three ideas:
//
//  * pattern dedup: the per-rank sequence of outermost states is collapsed
//    with run/period detection ("(Compute Send)x512"), and ranks whose
//    collapsed sequence is identical are reported once as a rank range —
//    the common SPMD case where 4096 ranks did the same thing costs one
//    line, not 4096;
//  * anomaly scoring: ranks whose busy time deviates from the fleet mean
//    and edges whose mean message latency dwarfs the median edge are
//    surfaced first, so an injected `delay=` fault (or a real straggler)
//    is on the first screen;
//  * a hard byte budget: sections are rendered in priority order
//    (header > anomalies > ranks > states > edges > motifs) and the output
//    NEVER exceeds Options::budget, in either text or JSON mode.
//
// Determinism contract: same trace bytes + same Options (seed included)
// produce byte-identical output. Iteration is over ordered containers,
// floats are printed with fixed formats, and the only randomness — the
// exemplar-text sampler — is a seeded SplitMix64 over the deterministic
// visit order.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "slog2/slog2.hpp"

namespace digest {

struct Options {
  /// Hard cap on the rendered output, in bytes. Never exceeded.
  std::size_t budget = 4096;
  /// Seeds the exemplar-text sampler (which representative popup text is
  /// quoted per state category). Same seed -> byte-identical digest.
  std::uint64_t seed = 0;
  bool json = false;
  /// Time window; defaults cover the whole trace.
  double t0 = -std::numeric_limits<double>::infinity();
  double t1 = std::numeric_limits<double>::infinity();
  /// A rank is anomalous when its busy time is >= skew_threshold times the
  /// mean (or <= mean / skew_threshold).
  double skew_threshold = 2.0;
  /// An edge is anomalous when its mean arrow latency is >=
  /// latency_threshold times the median edge's mean latency.
  double latency_threshold = 4.0;
  /// Worker threads for frame decode, the legend sweep, and the per-rank
  /// motif collapse (0 = one per hardware thread). The digest stays a pure
  /// function of (trace, options): output is byte-identical at any value.
  int threads = 1;
};

/// One scored anomaly, most severe first after analysis.
struct Anomaly {
  std::string kind;    ///< "rank_busy_high" | "rank_busy_low" | "edge_latency"
  double score = 0.0;  ///< ratio to the fleet baseline; larger = worse
  std::string detail;  ///< one human-readable line
};

struct RankRow {
  std::int32_t rank = 0;
  double busy = 0.0;
  std::uint64_t states = 0;
  std::uint64_t events = 0;
  std::uint64_t arrows_out = 0;
  std::uint64_t arrows_in = 0;
};

struct StateRow {
  std::int32_t category_id = 0;
  std::string name;
  std::uint64_t count = 0;
  double inclusive = 0.0;
  double exclusive = 0.0;
  std::string exemplar;  ///< sampled popup text ("" when none was logged)
};

struct EdgeRow {
  std::int32_t src = 0;
  std::int32_t dst = 0;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  double mean_latency = 0.0;
};

struct MotifRow {
  std::vector<std::int32_t> ranks;  ///< ascending; identical collapsed motif
  std::string motif;                ///< e.g. "Init (Compute Send)x512"
  std::uint64_t states = 0;         ///< outermost states per rank in the motif
};

/// The structured digest; render() turns it into bounded text/JSON.
struct Digest {
  std::int32_t nranks = 0;
  double t_min = 0.0;
  double t_max = 0.0;
  slog2::FrameEncoding encoding = slog2::FrameEncoding::kV1;
  std::uint64_t states = 0;
  std::uint64_t events = 0;
  std::uint64_t arrows = 0;
  bool clean = true;                 ///< ConvertStats::clean()
  std::vector<Anomaly> anomalies;    ///< sorted by score, descending
  std::vector<RankRow> ranks;        ///< by rank
  std::vector<StateRow> top_states;  ///< by inclusive time, descending
  std::vector<EdgeRow> edges;        ///< by count, descending
  std::vector<MotifRow> motifs;      ///< by first rank
};

/// One pass over the navigator's [t0, t1] window (decoding only the frames
/// it intersects) feeding the query rollups + the motif/anomaly analysis.
Digest analyze(slog2::Navigator& nav, const Options& opts = {});

/// Render to text or JSON. The result's size is <= opts.budget, always:
/// text drops whole lines from the back (lowest priority first) and marks
/// the cut; JSON shrinks its lists until the document fits.
std::string render(const Digest& d, const Options& opts = {});

/// analyze() + render().
std::string summarize(slog2::Navigator& nav, const Options& opts = {});

}  // namespace digest

#include "fault/injector.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/prng.hpp"
#include "util/strings.hpp"

namespace fault {

namespace {

const char* kind_name(Injector::Fired::Kind k) {
  switch (k) {
    case Injector::Fired::Kind::kCrashCall: return "crash-call";
    case Injector::Fired::Kind::kCrashEvent: return "crash-event";
    case Injector::Fired::Kind::kTrunc: return "trunc-write";
  }
  return "?";
}

}  // namespace

Injector::Injector(Plan plan, int nranks)
    : plan_(std::move(plan)), nranks_(nranks) {
  for (const auto& c : plan_.crashes)
    if (c.rank >= nranks_)
      throw util::UsageError(util::strprintf(
          "FJ02: fault plan: crash rank %d out of range (job has %d ranks)",
          c.rank, nranks_));
  for (const auto& t : plan_.truncs)
    if (t.rank >= nranks_)
      throw util::UsageError(util::strprintf(
          "FJ02: fault plan: trunc rank %d out of range (job has %d ranks)",
          t.rank, nranks_));
  if (plan_.delay.prob > 0.0 && plan_.delay.rank >= nranks_)
    throw util::UsageError(util::strprintf(
        "FJ02: fault plan: delay rank %d out of range (job has %d ranks)",
        plan_.delay.rank, nranks_));
  calls_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) calls_[static_cast<std::size_t>(r)].store(0);
}

void Injector::at_call(int rank, const char* what) {
  const std::uint64_t n =
      calls_[static_cast<std::size_t>(rank)].fetch_add(1, std::memory_order_relaxed) +
      1;
  for (const auto& c : plan_.crashes) {
    if (c.rank != rank || c.at != CrashPoint::At::kCall || c.n != n) continue;
    {
      std::lock_guard lk(mu_);
      fired_.push_back({Fired::Kind::kCrashCall, rank, n, what});
    }
    throw mpisim::RankKilledError(
        rank, util::strprintf(
                  "FJ10: fault injection killed rank %d at substrate call #%llu (%s)",
                  rank, static_cast<unsigned long long>(n), what));
  }
}

double Injector::message_delay(int src, int dst, std::uint64_t pair_seq,
                               std::size_t bytes) {
  (void)bytes;
  if (plan_.delay.prob <= 0.0 || plan_.delay.max_ms <= 0.0) return 0.0;
  if (plan_.delay.rank >= 0 && src != plan_.delay.rank) return 0.0;
  // Seed a private PRNG from the message's run-stable identity so the
  // decision is independent of when (and on which thread) the send happens.
  util::SplitMix64 rng(plan_.seed ^
                       0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(src) + 1) ^
                       0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(dst) + 1) ^
                       0x94d049bb133111ebULL * (pair_seq + 1));
  if (!rng.chance(plan_.delay.prob)) return 0.0;
  const double d = rng.uniform(0.0, plan_.delay.max_ms / 1000.0);
  {
    std::lock_guard lk(mu_);
    delays_[{src, dst, pair_seq}] = d;
  }
  return d;
}

void Injector::on_logged_record(int rank, std::uint64_t nth) {
  for (const auto& c : plan_.crashes) {
    if (c.rank != rank || c.at != CrashPoint::At::kEvent || c.n != nth) continue;
    {
      std::lock_guard lk(mu_);
      fired_.push_back({Fired::Kind::kCrashEvent, rank, nth, "logged-event"});
    }
    throw mpisim::RankKilledError(
        rank, util::strprintf(
                  "FJ10: fault injection killed rank %d after logged event #%llu",
                  rank, static_cast<unsigned long long>(nth)));
  }
}

std::size_t Injector::spill_write_bytes(int rank, std::uint64_t nth,
                                        std::size_t nbytes) {
  for (const auto& t : plan_.truncs) {
    if (t.rank != rank || t.nth_write != nth) continue;
    const std::size_t keep = std::min(t.keep_bytes, nbytes);
    std::lock_guard lk(mu_);
    fired_.push_back({Fired::Kind::kTrunc, rank, nth,
                      util::strprintf("kept %zu of %zu bytes", keep, nbytes)});
    return keep;
  }
  return nbytes;
}

std::vector<Injector::Fired> Injector::fired() const {
  std::lock_guard lk(mu_);
  auto out = fired_;
  std::sort(out.begin(), out.end(), [](const Fired& a, const Fired& b) {
    return std::tie(a.rank, a.kind, a.n) < std::tie(b.rank, b.kind, b.n);
  });
  return out;
}

std::string Injector::schedule_text() const {
  std::string out = "# fault schedule\n";
  out += plan_.to_text();
  std::lock_guard lk(mu_);
  for (const auto& [key, d] : delays_)
    out += util::strprintf("delayed %d->%d #%llu by %.9fs\n", std::get<0>(key),
                           std::get<1>(key),
                           static_cast<unsigned long long>(std::get<2>(key)), d);
  auto fired = fired_;
  std::sort(fired.begin(), fired.end(), [](const Fired& a, const Fired& b) {
    return std::tie(a.rank, a.kind, a.n) < std::tie(b.rank, b.kind, b.n);
  });
  for (const auto& f : fired)
    out += util::strprintf("fired %s rank %d #%llu (%s)\n", kind_name(f.kind),
                           f.rank, static_cast<unsigned long long>(f.n),
                           f.detail.c_str());
  return out;
}

}  // namespace fault

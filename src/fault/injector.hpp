// Injector: the seeded, fully deterministic realization of a fault::Plan.
//
// It implements mpisim::FaultHook (message jitter + crash-at-Nth-call) and
// adds the two MPE-logger-level injection points the Pilot runtime wires up
// (crash-at-Nth-logged-event, spill-write truncation). Every decision is a
// pure function of (plan, message identity) or a per-rank ordinal counted on
// that rank's own thread, so the same seed + plan yields a byte-identical
// fault schedule regardless of thread interleaving — schedule_text() is the
// artifact chaos tests compare across runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "fault/plan.hpp"
#include "mpisim/fault_hook.hpp"

namespace fault {

class Injector : public mpisim::FaultHook {
public:
  Injector(Plan plan, int nranks);

  // --- mpisim::FaultHook --------------------------------------------------
  void at_call(int rank, const char* what) override;
  double message_delay(int src, int dst, std::uint64_t pair_seq,
                       std::size_t bytes) override;
  [[nodiscard]] double grace_seconds() const override {
    return plan_.grace_seconds;
  }

  // --- MPE-logger injection points (wired by the Pilot runtime) -----------
  /// Called after `rank` buffered+spilled its `nth` (1-based) instance
  /// record; throws RankKilledError at a crash=RANK@event:N point, so the
  /// first N records survive in the spill.
  void on_logged_record(int rank, std::uint64_t nth);

  /// Spill-write fault: how many of `nbytes` the logger should actually
  /// write for `rank`'s `nth` (1-based) spill write. Returning less than
  /// `nbytes` makes the logger truncate the write and permanently break
  /// that rank's spill stream.
  std::size_t spill_write_bytes(int rank, std::uint64_t nth, std::size_t nbytes);

  // --- introspection ------------------------------------------------------
  /// A fault point that actually fired during the run.
  struct Fired {
    enum class Kind { kCrashCall, kCrashEvent, kTrunc };
    Kind kind;
    int rank = -1;
    std::uint64_t n = 0;      // the 1-based ordinal it fired at
    std::string detail;       // e.g. the substrate call name
  };
  [[nodiscard]] std::vector<Fired> fired() const;

  /// Deterministic dump of the full fault schedule: the canonical plan text
  /// followed by every delay decision made, sorted by message identity, and
  /// every fired crash/truncation point. Two runs with the same seed + plan
  /// over the same message set produce byte-identical text.
  [[nodiscard]] std::string schedule_text() const;

  [[nodiscard]] const Plan& plan() const { return plan_; }

private:
  Plan plan_;
  int nranks_;
  // Per-rank ordinals, touched only from that rank's own thread (atomics
  // guard the cross-thread reads in schedule_text()).
  std::unique_ptr<std::atomic<std::uint64_t>[]> calls_;
  // (src, dst, pair_seq) -> delay seconds, for decisions that delayed.
  mutable std::mutex mu_;
  std::map<std::tuple<int, int, std::uint64_t>, double> delays_;
  std::vector<Fired> fired_;
};

}  // namespace fault

#include "fault/plan.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace fault {

namespace {

[[noreturn]] void bad(const std::string& clause, const std::string& why) {
  throw util::UsageError(
      util::strprintf("FJ01: fault plan: bad clause '%s': %s (see docs/FAULTS.md)",
                      clause.c_str(), why.c_str()));
}

std::uint64_t parse_u64(const std::string& clause, std::string_view text) {
  const std::string s(util::trim(text));
  if (s.empty() || s[0] == '-') bad(clause, "expected an unsigned integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0')
    bad(clause, "expected an unsigned integer");
  return static_cast<std::uint64_t>(v);
}

double parse_num(const std::string& clause, std::string_view text) {
  const std::string s(util::trim(text));
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0' || s.empty())
    bad(clause, "expected a number");
  return v;
}

int parse_rank(const std::string& clause, std::string_view text) {
  const std::uint64_t r = parse_u64(clause, text);
  if (r > 4096) bad(clause, "rank out of range");
  return static_cast<int>(r);
}

void parse_clause(Plan& plan, const std::string& clause) {
  const auto eq = clause.find('=');
  if (eq == std::string::npos) bad(clause, "expected KEY=VALUE");
  const std::string key(util::trim(clause.substr(0, eq)));
  const std::string val(util::trim(clause.substr(eq + 1)));
  if (val.empty()) bad(clause, "empty value");

  if (key == "seed") {
    plan.seed = parse_u64(clause, val);
  } else if (key == "grace") {
    plan.grace_seconds = parse_num(clause, val);
    if (plan.grace_seconds < 0.0) bad(clause, "grace must be >= 0");
  } else if (key == "delay") {
    const auto parts = util::split(val, ':');
    if (parts.size() != 2) bad(clause, "expected delay=PROB:MAX_MS[@RANK]");
    plan.delay.prob = parse_num(clause, parts[0]);
    std::string ms(util::trim(parts[1]));
    const auto at = ms.find('@');
    if (at != std::string::npos) {
      plan.delay.rank = parse_rank(clause, ms.substr(at + 1));
      ms = std::string(util::trim(ms.substr(0, at)));
    } else {
      plan.delay.rank = -1;
    }
    plan.delay.max_ms = parse_num(clause, ms);
    if (plan.delay.prob < 0.0 || plan.delay.prob > 1.0)
      bad(clause, "probability must be in [0,1]");
    if (plan.delay.max_ms < 0.0) bad(clause, "jitter bound must be >= 0");
  } else if (key == "crash") {
    const auto at = val.find('@');
    if (at == std::string::npos) bad(clause, "expected crash=RANK@(call|event):N");
    CrashPoint pt;
    pt.rank = parse_rank(clause, val.substr(0, at));
    const auto parts = util::split(val.substr(at + 1), ':');
    if (parts.size() != 2) bad(clause, "expected crash=RANK@(call|event):N");
    if (parts[0] == "call")
      pt.at = CrashPoint::At::kCall;
    else if (parts[0] == "event")
      pt.at = CrashPoint::At::kEvent;
    else
      bad(clause, "crash point must be 'call' or 'event'");
    pt.n = parse_u64(clause, parts[1]);
    if (pt.n == 0) bad(clause, "crash ordinal is 1-based");
    for (const auto& other : plan.crashes)
      if (other.rank == pt.rank) bad(clause, "duplicate crash for this rank");
    plan.crashes.push_back(pt);
  } else if (key == "trunc") {
    const auto at = val.find('@');
    if (at == std::string::npos) bad(clause, "expected trunc=RANK@write:N[:KEEP]");
    TruncPoint pt;
    pt.rank = parse_rank(clause, val.substr(0, at));
    const auto parts = util::split(val.substr(at + 1), ':');
    if (parts.size() != 2 && parts.size() != 3)
      bad(clause, "expected trunc=RANK@write:N[:KEEP]");
    if (parts[0] != "write") bad(clause, "trunc point must be 'write'");
    pt.nth_write = parse_u64(clause, parts[1]);
    if (pt.nth_write == 0) bad(clause, "write ordinal is 1-based");
    if (parts.size() == 3)
      pt.keep_bytes = static_cast<std::size_t>(parse_u64(clause, parts[2]));
    for (const auto& other : plan.truncs)
      if (other.rank == pt.rank) bad(clause, "duplicate trunc for this rank");
    plan.truncs.push_back(pt);
  } else {
    bad(clause, "unknown key '" + key + "'");
  }
}

}  // namespace

bool Plan::has_event_crash() const {
  return std::any_of(crashes.begin(), crashes.end(), [](const CrashPoint& c) {
    return c.at == CrashPoint::At::kEvent;
  });
}

std::string Plan::to_text() const {
  std::string out = util::strprintf("seed=%llu\n",
                                    static_cast<unsigned long long>(seed));
  out += util::strprintf("grace=%g\n", grace_seconds);
  if (delay.prob > 0.0) {
    out += util::strprintf("delay=%g:%g", delay.prob, delay.max_ms);
    if (delay.rank >= 0) out += util::strprintf("@%d", delay.rank);
    out += "\n";
  }
  auto crashes_sorted = crashes;
  std::sort(crashes_sorted.begin(), crashes_sorted.end(),
            [](const CrashPoint& a, const CrashPoint& b) { return a.rank < b.rank; });
  for (const auto& c : crashes_sorted)
    out += util::strprintf("crash=%d@%s:%llu\n", c.rank,
                           c.at == CrashPoint::At::kCall ? "call" : "event",
                           static_cast<unsigned long long>(c.n));
  auto truncs_sorted = truncs;
  std::sort(truncs_sorted.begin(), truncs_sorted.end(),
            [](const TruncPoint& a, const TruncPoint& b) { return a.rank < b.rank; });
  for (const auto& t : truncs_sorted)
    out += util::strprintf("trunc=%d@write:%llu:%zu\n", t.rank,
                           static_cast<unsigned long long>(t.nth_write),
                           t.keep_bytes);
  return out;
}

Plan parse_spec(const std::string& spec) {
  const std::string trimmed(util::trim(spec));
  if (trimmed.empty())
    throw util::UsageError("FJ01: fault plan: empty spec (see docs/FAULTS.md)");

  std::vector<std::string> clauses;
  if (trimmed[0] == '@') {
    const std::string path = trimmed.substr(1);
    if (path.empty())
      throw util::UsageError("FJ01: fault plan: '@' without a plan file path");
    const std::string text = util::read_text_file(path);
    for (const auto& raw : util::split(text, '\n')) {
      std::string line(util::trim(raw));
      const auto hash = line.find('#');
      if (hash != std::string::npos) line = std::string(util::trim(line.substr(0, hash)));
      if (!line.empty()) clauses.push_back(line);
    }
    if (clauses.empty())
      throw util::UsageError(util::strprintf(
          "FJ01: fault plan: '%s' holds no clauses", path.c_str()));
  } else {
    // ';' and newline both separate clauses, so to_text() output (one clause
    // per line) parses straight back.
    for (const auto& piece : util::split(trimmed, ';')) {
      for (const auto& raw : util::split(piece, '\n')) {
        const std::string clause(util::trim(raw));
        if (!clause.empty()) clauses.push_back(clause);
      }
    }
    if (clauses.empty())
      throw util::UsageError("FJ01: fault plan: empty spec (see docs/FAULTS.md)");
  }

  Plan plan;
  for (const auto& clause : clauses) parse_clause(plan, clause);
  return plan;
}

}  // namespace fault

// FaultPlan: the parsed form of a `-pifault=SPEC` fault-injection plan.
//
// A spec is a `;`-separated list of clauses, or `@FILE` naming a plan file
// holding one clause per line (blank lines and `#` comments ignored):
//
//   seed=U64              PRNG seed for the delay schedule        (default 1)
//   grace=SECONDS         survivor grace period after a crash     (default 1)
//   delay=PROB:MAX_MS[@RANK]
//                         delay each message with probability PROB by a
//                         deterministic jitter in [0, MAX_MS] milliseconds;
//                         @RANK restricts the delay to one sender (the
//                         targeted form pilot-tracediff localizes)
//   crash=RANK@call:N     kill RANK at its Nth substrate call (1-based)
//   crash=RANK@event:N    kill RANK right after its Nth logged MPE record
//                         (needs -pisvc=j)
//   trunc=RANK@write:N[:KEEP]
//                         truncate RANK's Nth spill write to KEEP bytes
//                         (default 0) and break the stream (needs -pirobust)
//
// Parsing is strict: any malformed clause throws util::UsageError with an
// FJ01 message naming the offending clause. The full grammar and the FJxx
// diagnostic catalogue live in docs/FAULTS.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fault {

struct CrashPoint {
  enum class At { kCall, kEvent };
  int rank = -1;
  At at = At::kCall;
  std::uint64_t n = 0;  // 1-based ordinal of the call / logged record
};

struct TruncPoint {
  int rank = -1;
  std::uint64_t nth_write = 0;  // 1-based ordinal of the spill write
  std::size_t keep_bytes = 0;   // bytes of that write to let through
};

struct DelayModel {
  double prob = 0.0;    // per-message delay probability in [0,1]
  double max_ms = 0.0;  // jitter bound, milliseconds
  int rank = -1;        // only this sender's messages are delayed (-1 = all)
};

struct Plan {
  std::uint64_t seed = 1;
  double grace_seconds = 1.0;
  DelayModel delay;
  std::vector<CrashPoint> crashes;  // at most one per rank (parser-enforced)
  std::vector<TruncPoint> truncs;   // at most one per rank (parser-enforced)

  [[nodiscard]] bool empty() const {
    return delay.prob <= 0.0 && crashes.empty() && truncs.empty();
  }
  [[nodiscard]] bool has_event_crash() const;
  [[nodiscard]] bool has_trunc() const { return !truncs.empty(); }

  /// Canonical one-clause-per-line rendering; parse_spec(to_text()) is the
  /// identity, and the injector's schedule dump embeds it.
  [[nodiscard]] std::string to_text() const;
};

/// Parse a `-pifault=` spec (or `@FILE` plan file). Throws util::UsageError
/// (FJ01) on malformed input, util::IoError if the plan file is unreadable.
Plan parse_spec(const std::string& spec);

}  // namespace fault

#include "jumpshot/render.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "jumpshot/stats.hpp"
#include "util/color.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace jumpshot {

namespace {

// Jumpshot-like dark canvas.
constexpr const char* kCanvasColor = "#101014";
constexpr const char* kAxisColor = "#c8c8c8";
constexpr const char* kGridColor = "#2e2e36";
constexpr int kMarginLeft = 96;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 52;
constexpr int kMarginBottom = 16;
constexpr int kLegendRow = 18;

struct Layout {
  double a = 0.0;
  double b = 1.0;
  int plot_width = 0;
  int nranks = 0;
  int row_height = 0;
  int row_gap = 0;

  [[nodiscard]] double x(double t) const {
    return kMarginLeft + (t - a) / (b - a) * plot_width;
  }
  [[nodiscard]] double row_top(int rank) const {
    return kMarginTop + static_cast<double>(rank) * (row_height + row_gap);
  }
  [[nodiscard]] double row_center(int rank) const {
    return row_top(rank) + row_height / 2.0;
  }
};

const slog2::Category* find_category(const std::vector<slog2::Category>& cats,
                                     std::int32_t id) {
  for (const auto& c : cats)
    if (c.id == id) return &c;
  return nullptr;
}

std::string color_of(const std::vector<slog2::Category>& cats, std::int32_t cat) {
  const auto* c = find_category(cats, cat);
  if (c == nullptr || !util::is_known_color(c->color)) return "#888888";
  return util::color_by_name(c->color).to_hex();
}

std::string name_of(const std::vector<slog2::Category>& cats, std::int32_t cat) {
  const auto* c = find_category(cats, cat);
  return c ? c->name : "?";
}

void tooltip(std::string& svg, const std::string& text) {
  svg += "<title>" + util::xml_escape(text) + "</title>";
}

// Choose ~`target` round tick spacing covering [a, b].
double tick_step(double a, double b, int target) {
  const double raw = (b - a) / std::max(target, 1);
  if (raw <= 0) return 1.0;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  for (double m : {1.0, 2.0, 5.0, 10.0}) {
    if (raw <= m * mag) return m * mag;
  }
  return 10.0 * mag;
}

void draw_axis(std::string& svg, const Layout& lay) {
  const double bottom =
      lay.row_top(lay.nranks) - lay.row_gap + 4.0;
  const double step = tick_step(lay.a, lay.b, 8);
  const double first = std::ceil(lay.a / step) * step;
  for (double t = first; t <= lay.b + step * 1e-9; t += step) {
    const double px = lay.x(t);
    svg += util::strprintf(
        "<line x1='%.1f' y1='%d' x2='%.1f' y2='%.1f' stroke='%s' "
        "stroke-width='1'/>\n",
        px, kMarginTop - 6, px, bottom, kGridColor);
    svg += util::strprintf(
        "<text x='%.1f' y='%d' fill='%s' font-size='11' text-anchor='middle' "
        "font-family='monospace'>%s</text>\n",
        px, kMarginTop - 10, kAxisColor, util::human_seconds(t).c_str());
  }
}

struct RankItems {
  std::vector<const slog2::StateDrawable*> states;
  std::vector<const slog2::EventDrawable*> events;
};

void draw_state_rects(std::string& svg, const std::vector<slog2::Category>& cats,
                      const Layout& lay, int rank,
                      const std::vector<const slog2::StateDrawable*>& states) {
  for (const auto* s : states) {
    const double x0 = std::max(lay.x(s->start_time), static_cast<double>(kMarginLeft));
    const double x1 =
        std::min(lay.x(s->end_time), static_cast<double>(kMarginLeft + lay.plot_width));
    const double w = std::max(x1 - x0, 0.75);
    const int inset = std::min(s->depth * 3, lay.row_height / 2 - 2);
    const double y = lay.row_top(rank) + inset;
    const double h = std::max(lay.row_height - 2.0 * inset, 3.0);
    svg += util::strprintf(
        "<rect x='%.2f' y='%.2f' width='%.2f' height='%.2f' fill='%s' "
        "stroke='black' stroke-width='0.4'>",
        x0, y, w, h, color_of(cats, s->category_id).c_str());
    tooltip(svg, util::strprintf(
                     "%s  rank %d  [%s .. %s]  dur %s%s%s",
                     name_of(cats, s->category_id).c_str(), rank,
                     util::human_seconds(s->start_time).c_str(),
                     util::human_seconds(s->end_time).c_str(),
                     util::human_seconds(s->end_time - s->start_time).c_str(),
                     s->start_text.empty() ? "" : ("  " + s->start_text).c_str(),
                     s->end_text.empty() ? "" : ("  " + s->end_text).c_str()));
    svg += "</rect>\n";
  }
}

// Zoomed-out "outline form": an outlined row subdivided into time buckets;
// within each bucket, stacked stripes sized by each colour's share of busy
// time (how Jumpshot summarizes intervals with too many state changes).
void draw_state_preview(std::string& svg, const std::vector<slog2::Category>& cats,
                        const Layout& lay, int rank,
                        const std::vector<const slog2::StateDrawable*>& states) {
  const int bucket_px = 4;
  const int nbuckets = std::max(lay.plot_width / bucket_px, 1);
  const double bucket_dt = (lay.b - lay.a) / nbuckets;
  // occupancy[bucket][category] = seconds
  std::vector<std::map<std::int32_t, double>> occupancy(
      static_cast<std::size_t>(nbuckets));
  for (const auto* s : states) {
    const double lo = std::max(s->start_time, lay.a);
    const double hi = std::min(s->end_time, lay.b);
    if (hi <= lo) continue;
    int first = std::clamp(static_cast<int>((lo - lay.a) / bucket_dt), 0, nbuckets - 1);
    int last = std::clamp(static_cast<int>((hi - lay.a) / bucket_dt), 0, nbuckets - 1);
    for (int i = first; i <= last; ++i) {
      const double b0 = lay.a + i * bucket_dt;
      const double b1 = b0 + bucket_dt;
      const double overlap = std::min(hi, b1) - std::max(lo, b0);
      if (overlap > 0) occupancy[static_cast<std::size_t>(i)][s->category_id] += overlap;
    }
  }

  const double y = lay.row_top(rank);
  for (int i = 0; i < nbuckets; ++i) {
    const auto& bucket_cats = occupancy[static_cast<std::size_t>(i)];
    if (bucket_cats.empty()) continue;
    double total = 0.0;
    for (const auto& [cat, secs] : bucket_cats) total += secs;
    if (total <= 0.0) continue;
    const double px0 = kMarginLeft + static_cast<double>(i) * bucket_px;
    double yoff = 0.0;
    for (const auto& [cat, secs] : bucket_cats) {
      const double h = secs / total * lay.row_height;
      svg += util::strprintf(
          "<rect x='%.1f' y='%.2f' width='%d' height='%.2f' fill='%s'/>\n", px0,
          y + yoff, bucket_px, std::max(h, 0.5), color_of(cats, cat).c_str());
      yoff += h;
    }
  }
  // Outline marking the summarized interval.
  svg += util::strprintf(
      "<rect x='%d' y='%.2f' width='%d' height='%d' fill='none' stroke='%s' "
      "stroke-width='0.8'/>\n",
      kMarginLeft, y, lay.plot_width, lay.row_height, kAxisColor);
}

using StateCb = std::function<void(const slog2::StateDrawable&)>;
using EventCb = std::function<void(const slog2::EventDrawable&)>;
using ArrowCb = std::function<void(const slog2::ArrowDrawable&)>;

// What the timeline core needs from a trace; satisfied by both the fully
// in-memory slog2::File and the lazily-decoding slog2::Navigator.
struct RenderSource {
  std::int32_t nranks = 0;
  double t_min = 0.0;
  double t_max = 0.0;
  const std::vector<slog2::Category>* categories = nullptr;
  std::function<void(double, double, const StateCb&, const EventCb&,
                     const ArrowCb&)>
      visit;
};

// Appends the legend block; receives the y where the plot area ended.
using LegendFn = std::function<void(std::string&, int)>;

std::string render_timeline(const RenderSource& src, const RenderOptions& opts,
                            const LegendFn& legend_fn) {
  const auto& cats = *src.categories;
  Layout lay;
  lay.a = std::isnan(opts.t0) ? src.t_min : opts.t0;
  lay.b = std::isnan(opts.t1) ? src.t_max : opts.t1;
  if (lay.b <= lay.a) lay.b = lay.a + 1e-9;
  lay.plot_width = std::max(opts.width - kMarginLeft - kMarginRight, 100);
  lay.nranks = std::max(src.nranks, 1);
  lay.row_height = opts.row_height;
  lay.row_gap = opts.row_gap;

  const int legend_lines =
      opts.draw_legend ? static_cast<int>(cats.size()) + 1 : 0;
  const int plot_bottom =
      kMarginTop + lay.nranks * (lay.row_height + lay.row_gap);
  const int height = plot_bottom + legend_lines * kLegendRow + kMarginBottom;

  std::string svg;
  svg += util::strprintf(
      "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d' "
      "viewBox='0 0 %d %d'>\n",
      opts.width, height, opts.width, height);
  svg += util::strprintf("<rect width='%d' height='%d' fill='%s'/>\n", opts.width,
                         height, kCanvasColor);
  svg +=
      "<defs><marker id='arrowhead' markerWidth='7' markerHeight='6' refX='6' "
      "refY='3' orient='auto'><polygon points='0 0, 7 3, 0 6' fill='white'/>"
      "</marker></defs>\n";

  if (!opts.title.empty()) {
    svg += util::strprintf(
        "<text x='%d' y='18' fill='%s' font-size='14' font-family='sans-serif'>"
        "%s</text>\n",
        kMarginLeft, kAxisColor, util::xml_escape(opts.title).c_str());
  }
  draw_axis(svg, lay);

  // Rank labels and row baselines.
  for (int r = 0; r < lay.nranks; ++r) {
    std::string label = r < static_cast<int>(opts.rank_names.size())
                            ? opts.rank_names[static_cast<std::size_t>(r)]
                            : std::to_string(r);
    svg += util::strprintf(
        "<text x='%d' y='%.1f' fill='%s' font-size='12' text-anchor='end' "
        "font-family='monospace'>%s</text>\n",
        kMarginLeft - 8, lay.row_center(r) + 4, kAxisColor,
        util::xml_escape(label).c_str());
    svg += util::strprintf(
        "<line x1='%d' y1='%.1f' x2='%d' y2='%.1f' stroke='%s' "
        "stroke-width='0.5'/>\n",
        kMarginLeft, lay.row_center(r), kMarginLeft + lay.plot_width,
        lay.row_center(r), kGridColor);
  }

  // Gather the window's drawables grouped per rank.
  std::map<int, RankItems> per_rank;
  std::vector<const slog2::ArrowDrawable*> arrows;
  std::vector<slog2::StateDrawable> state_storage;
  std::vector<slog2::EventDrawable> event_storage;
  std::vector<slog2::ArrowDrawable> arrow_storage;
  src.visit(
      lay.a, lay.b,
      [&](const slog2::StateDrawable& s) { state_storage.push_back(s); },
      [&](const slog2::EventDrawable& e) { event_storage.push_back(e); },
      [&](const slog2::ArrowDrawable& ar) { arrow_storage.push_back(ar); });
  for (const auto& s : state_storage) per_rank[s.rank].states.push_back(&s);
  for (const auto& e : event_storage) per_rank[e.rank].events.push_back(&e);
  for (const auto& ar : arrow_storage) arrows.push_back(&ar);

  // States: full rectangles or preview striping per row.
  for (auto& [rank, items] : per_rank) {
    if (rank < 0 || rank >= lay.nranks) continue;
    // Draw outer states first so nested ones paint on top.
    std::sort(items.states.begin(), items.states.end(),
              [](const slog2::StateDrawable* x, const slog2::StateDrawable* y) {
                return x->depth < y->depth;
              });
    if (items.states.size() > opts.preview_threshold) {
      draw_state_preview(svg, cats, lay, rank, items.states);
    } else {
      draw_state_rects(svg, cats, lay, rank, items.states);
    }
  }

  // Arrows between rank timelines.
  if (opts.draw_arrows) {
    for (const auto* ar : arrows) {
      if (ar->src_rank < 0 || ar->src_rank >= lay.nranks || ar->dst_rank < 0 ||
          ar->dst_rank >= lay.nranks)
        continue;
      svg += util::strprintf(
          "<line x1='%.2f' y1='%.2f' x2='%.2f' y2='%.2f' stroke='white' "
          "stroke-width='0.9' marker-end='url(#arrowhead)'>",
          lay.x(ar->start_time), lay.row_center(ar->src_rank), lay.x(ar->end_time),
          lay.row_center(ar->dst_rank));
      tooltip(svg, util::strprintf(
                       "message %d -> %d  tag %d  %u bytes  [%s .. %s]  dur %s",
                       ar->src_rank, ar->dst_rank, ar->tag, ar->size,
                       util::human_seconds(ar->start_time).c_str(),
                       util::human_seconds(ar->end_time).c_str(),
                       util::human_seconds(ar->end_time - ar->start_time).c_str()));
      svg += "</line>\n";
    }
  }

  // Event bubbles on top.
  if (opts.draw_events) {
    for (auto& [rank, items] : per_rank) {
      if (rank < 0 || rank >= lay.nranks) continue;
      for (const auto* e : items.events) {
        svg += util::strprintf(
            "<circle cx='%.2f' cy='%.2f' r='3' fill='%s' stroke='black' "
            "stroke-width='0.4'>",
            lay.x(e->time), lay.row_center(rank), color_of(cats, e->category_id).c_str());
        tooltip(svg,
                util::strprintf("%s  rank %d  t=%s%s",
                                name_of(cats, e->category_id).c_str(), rank,
                                util::human_seconds(e->time).c_str(),
                                e->text.empty() ? "" : ("  " + e->text).c_str()));
        svg += "</circle>\n";
      }
    }
  }

  if (opts.draw_legend && legend_fn) legend_fn(svg, plot_bottom);

  svg += "</svg>\n";
  return svg;
}

// Swatch-only legend (Navigator renders: per-category durations would
// require decoding the whole file, which is the thing we're avoiding).
void swatch_legend(std::string& svg, int plot_bottom,
                   const std::vector<slog2::Category>& cats) {
  int y = plot_bottom + kLegendRow;
  svg += util::strprintf(
      "<text x='%d' y='%d' fill='%s' font-size='12' font-family='monospace'>"
      "legend: name</text>\n",
      kMarginLeft, y, kAxisColor);
  for (const auto& c : cats) {
    y += kLegendRow;
    const std::string color = util::is_known_color(c.color)
                                  ? util::color_by_name(c.color).to_hex()
                                  : "#888888";
    svg += util::strprintf(
        "<rect x='%d' y='%d' width='12' height='12' fill='%s' stroke='%s' "
        "stroke-width='0.5'/>\n",
        kMarginLeft, y - 10, color.c_str(), kAxisColor);
    svg += util::strprintf(
        "<text x='%d' y='%d' fill='%s' font-size='12' font-family='monospace'>"
        "%s</text>\n",
        kMarginLeft + 18, y, kAxisColor, util::xml_escape(c.name).c_str());
  }
}

// Zoomed-out fallback: no frame payload is decoded — the covering frame's
// stored preview histogram is striped across the plot area. The histogram
// aggregates all ranks (previews carry no rank axis), so the band spans
// every timeline row.
std::string render_preview_lod(slog2::Navigator& nav, const RenderOptions& opts) {
  const auto& cats = nav.categories();
  Layout lay;
  lay.a = std::isnan(opts.t0) ? nav.t_min() : opts.t0;
  lay.b = std::isnan(opts.t1) ? nav.t_max() : opts.t1;
  if (lay.b <= lay.a) lay.b = lay.a + 1e-9;
  lay.plot_width = std::max(opts.width - kMarginLeft - kMarginRight, 100);
  lay.nranks = std::max(nav.nranks(), 1);
  lay.row_height = opts.row_height;
  lay.row_gap = opts.row_gap;

  const int legend_lines =
      opts.draw_legend ? static_cast<int>(cats.size()) + 1 : 0;
  const int plot_bottom =
      kMarginTop + lay.nranks * (lay.row_height + lay.row_gap);
  const int height = plot_bottom + legend_lines * kLegendRow + kMarginBottom;

  std::string svg;
  svg += util::strprintf(
      "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d' "
      "viewBox='0 0 %d %d'>\n",
      opts.width, height, opts.width, height);
  svg += "<!-- preview-lod -->\n";
  svg += util::strprintf("<rect width='%d' height='%d' fill='%s'/>\n", opts.width,
                         height, kCanvasColor);
  if (!opts.title.empty()) {
    svg += util::strprintf(
        "<text x='%d' y='18' fill='%s' font-size='14' font-family='sans-serif'>"
        "%s</text>\n",
        kMarginLeft, kAxisColor, util::xml_escape(opts.title).c_str());
  }
  draw_axis(svg, lay);

  const auto pv = nav.preview_covering(lay.a, lay.b);
  const double band_top = lay.row_top(0);
  const double band_h =
      lay.row_top(lay.nranks) - lay.row_gap - band_top;
  if (pv.preview != nullptr && pv.preview->nbuckets > 0 && pv.t1 > pv.t0) {
    const int nb = pv.preview->nbuckets;
    const double bucket_dt = (pv.t1 - pv.t0) / nb;
    for (int i = 0; i < nb; ++i) {
      const double b0 = pv.t0 + i * bucket_dt;
      const double b1 = b0 + bucket_dt;
      if (b1 < lay.a || b0 > lay.b) continue;
      double total = 0.0;
      for (const auto& [cat, buckets] : pv.preview->state_occupancy)
        if (static_cast<std::size_t>(i) < buckets.size())
          total += buckets[static_cast<std::size_t>(i)];
      if (total <= 0.0) continue;
      const double x0 = std::max(lay.x(b0), static_cast<double>(kMarginLeft));
      const double x1 = std::min(lay.x(b1),
                                 static_cast<double>(kMarginLeft + lay.plot_width));
      if (x1 <= x0) continue;
      double yoff = 0.0;
      for (const auto& [cat, buckets] : pv.preview->state_occupancy) {
        if (static_cast<std::size_t>(i) >= buckets.size()) continue;
        const double share = buckets[static_cast<std::size_t>(i)] / total;
        if (share <= 0.0) continue;
        const double h = share * band_h;
        svg += util::strprintf(
            "<rect x='%.2f' y='%.2f' width='%.2f' height='%.2f' fill='%s'/>\n",
            x0, band_top + yoff, x1 - x0, std::max(h, 0.5),
            color_of(cats, cat).c_str());
        yoff += h;
      }
    }
    svg += util::strprintf(
        "<text x='%d' y='%.1f' fill='%s' font-size='11' font-family='monospace'>"
        "outline form: %u arrows in covering frame</text>\n",
        kMarginLeft, band_top - 4, kAxisColor, pv.preview->arrow_count);
  }
  // Outline marking the summarized interval.
  svg += util::strprintf(
      "<rect x='%d' y='%.2f' width='%d' height='%.2f' fill='none' stroke='%s' "
      "stroke-width='0.8'/>\n",
      kMarginLeft, band_top, lay.plot_width, band_h, kAxisColor);

  if (opts.draw_legend) swatch_legend(svg, plot_bottom, cats);
  svg += "</svg>\n";
  return svg;
}

}  // namespace

std::string render_svg(const slog2::File& file, const RenderOptions& opts) {
  RenderSource src;
  src.nranks = file.nranks;
  src.t_min = file.t_min;
  src.t_max = file.t_max;
  src.categories = &file.categories;
  src.visit = [&file](double a, double b, const StateCb& on_state,
                      const EventCb& on_event, const ArrowCb& on_arrow) {
    file.visit_window(a, b, on_state, on_event, on_arrow);
  };
  return render_timeline(src, opts, [&file](std::string& svg, int plot_bottom) {
    const auto entries = legend(file, LegendSort::kByInclusive);
    int y = plot_bottom + kLegendRow;
    svg += util::strprintf(
        "<text x='%d' y='%d' fill='%s' font-size='12' font-family='monospace'>"
        "legend: name  count  incl  excl</text>\n",
        kMarginLeft, y, kAxisColor);
    for (const auto& e : entries) {
      y += kLegendRow;
      const std::string color = util::is_known_color(e.category.color)
                                    ? util::color_by_name(e.category.color).to_hex()
                                    : "#888888";
      svg += util::strprintf(
          "<rect x='%d' y='%d' width='12' height='12' fill='%s' stroke='%s' "
          "stroke-width='0.5'/>\n",
          kMarginLeft, y - 10, color.c_str(), kAxisColor);
      svg += util::strprintf(
          "<text x='%d' y='%d' fill='%s' font-size='12' font-family='monospace'>"
          "%-24s %8llu  %s  %s</text>\n",
          kMarginLeft + 18, y, kAxisColor,
          util::xml_escape(e.category.name).c_str(),
          static_cast<unsigned long long>(e.count),
          util::human_seconds(e.inclusive).c_str(),
          util::human_seconds(e.exclusive).c_str());
    }
  });
}

void render_to_file(const std::filesystem::path& path, const slog2::File& file,
                    const RenderOptions& opts) {
  util::write_file(path, render_svg(file, opts));
}

std::string render_svg(slog2::Navigator& nav, const RenderOptions& opts) {
  const double a = std::isnan(opts.t0) ? nav.t_min() : opts.t0;
  const double b = std::isnan(opts.t1) ? nav.t_max() : opts.t1;
  if (nav.window_payload_bytes(a, b) > opts.lod_payload_budget)
    return render_preview_lod(nav, opts);

  RenderSource src;
  src.nranks = nav.nranks();
  src.t_min = nav.t_min();
  src.t_max = nav.t_max();
  src.categories = &nav.categories();
  src.visit = [&nav, &opts](double wa, double wb, const StateCb& on_state,
                            const EventCb& on_event, const ArrowCb& on_arrow) {
    nav.visit_window(wa, wb, on_state, on_event, on_arrow, opts.threads);
  };
  const auto& cats = nav.categories();
  return render_timeline(src, opts, [&cats](std::string& svg, int plot_bottom) {
    swatch_legend(svg, plot_bottom, cats);
  });
}

void render_to_file(const std::filesystem::path& path, slog2::Navigator& nav,
                    const RenderOptions& opts) {
  util::write_file(path, render_svg(nav, opts));
}

}  // namespace jumpshot

// Headless timeline renderer: draws an SLOG-2 window as SVG with Jumpshot's
// visual vocabulary — timelines per rank on a dark canvas, state rectangles
// (nested states inset), solo-event bubbles, white message arrows, a time
// axis in seconds, and the legend table. Popup contents become SVG <title>
// tooltips, so every figure in the paper can be regenerated and inspected.
//
// When a rank has more states in the window than `preview_threshold`, its
// row is drawn in Jumpshot's zoomed-out "outline form": per time bucket,
// stripes whose sizes give the relative proportion of each colour (how
// Fig. 1 renders the full thumbnail run).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "slog2/slog2.hpp"

namespace jumpshot {

struct RenderOptions {
  /// Window; NaN means "whole file".
  double t0 = std::numeric_limits<double>::quiet_NaN();
  double t1 = std::numeric_limits<double>::quiet_NaN();
  int width = 1200;        ///< total image width in px
  int row_height = 26;     ///< timeline row height
  int row_gap = 8;
  bool draw_arrows = true;
  bool draw_events = true;
  bool draw_legend = true;
  /// States per rank in the window beyond which the row switches to
  /// zoomed-out preview striping.
  std::size_t preview_threshold = 400;
  /// Navigator renders only: frame-payload bytes the window may decode
  /// before the render falls back to the stored preview histograms
  /// (outline form) instead of touching leaf payloads at all.
  std::uint64_t lod_payload_budget = 4 * 1024 * 1024;
  /// Navigator renders only: worker threads for the window's frame decode
  /// (0 = one per hardware thread). The SVG is byte-identical at any value.
  int threads = 1;
  std::string title;
  /// Y-axis labels; defaults to "0".."N-1" (PI_SetName feeds real names).
  std::vector<std::string> rank_names;
};

/// Render to an SVG document string.
std::string render_svg(const slog2::File& file, const RenderOptions& opts = {});

/// Render and write to `path`.
void render_to_file(const std::filesystem::path& path, const slog2::File& file,
                    const RenderOptions& opts = {});

/// Render a window straight from the on-disk frame directory: only frames
/// intersecting [t0, t1] are decoded, so a zoomed-in render of a huge trace
/// costs O(window + log frames), not O(trace). When the window's payload
/// exceeds `lod_payload_budget`, no payload is decoded at all — the stored
/// preview histogram of the covering frame is striped instead (the SVG then
/// carries a "preview-lod" marker comment).
std::string render_svg(slog2::Navigator& nav, const RenderOptions& opts = {});

void render_to_file(const std::filesystem::path& path, slog2::Navigator& nav,
                    const RenderOptions& opts = {});

/// Jumpshot's "statistics picture" for a user-selected duration (the paper
/// highlights it for spotting load imbalance): one horizontal bar per rank,
/// stacked by state category and scaled by busy time within [t0, t1], with
/// the imbalance factor in the header. NaN bounds mean the whole file.
struct StatsRenderOptions {
  double t0 = std::numeric_limits<double>::quiet_NaN();
  double t1 = std::numeric_limits<double>::quiet_NaN();
  int width = 900;
  std::string title;
  std::vector<std::string> rank_names;
};

std::string render_stats_svg(const slog2::File& file,
                             const StatsRenderOptions& opts = {});
void render_stats_to_file(const std::filesystem::path& path, const slog2::File& file,
                          const StatsRenderOptions& opts = {});

}  // namespace jumpshot

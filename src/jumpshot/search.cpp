#include "jumpshot/search.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace jumpshot {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool contains_ci(std::string_view haystack, const std::string& lowered_needle) {
  if (lowered_needle.empty()) return true;
  return lower(haystack).find(lowered_needle) != std::string::npos;
}

}  // namespace

std::vector<SearchHit> search(const slog2::File& file, const SearchQuery& query) {
  const double a = query.t0.value_or(file.t_min);
  const double b = query.t1.value_or(file.t_max);
  const std::string needle = lower(query.needle);

  std::vector<SearchHit> hits;
  auto name_of = [&](std::int32_t cat) -> std::string {
    const auto* c = file.category(cat);
    return c ? c->name : "?";
  };

  file.visit_window(
      a, b,
      [&](const slog2::StateDrawable& s) {
        if (query.rank && *query.rank != s.rank) return;
        const std::string cat = name_of(s.category_id);
        if (!contains_ci(cat, needle) && !contains_ci(s.start_text, needle) &&
            !contains_ci(s.end_text, needle))
          return;
        hits.push_back(SearchHit{SearchHit::Kind::kState, cat, s.rank, s.start_time,
                                 s.end_time,
                                 s.start_text.empty() ? s.end_text : s.start_text});
      },
      [&](const slog2::EventDrawable& e) {
        if (query.rank && *query.rank != e.rank) return;
        const std::string cat = name_of(e.category_id);
        if (!contains_ci(cat, needle) && !contains_ci(e.text, needle)) return;
        hits.push_back(
            SearchHit{SearchHit::Kind::kEvent, cat, e.rank, e.time, e.time, e.text});
      },
      [&](const slog2::ArrowDrawable& ar) {
        if (query.rank && *query.rank != ar.src_rank && *query.rank != ar.dst_rank)
          return;
        const std::string desc = util::strprintf(
            "message %d->%d tag=%d size=%u", ar.src_rank, ar.dst_rank, ar.tag, ar.size);
        if (!contains_ci("message", needle) && !contains_ci(desc, needle)) return;
        hits.push_back(SearchHit{SearchHit::Kind::kArrow, "message", ar.src_rank,
                                 ar.start_time, ar.end_time, desc});
      });

  std::sort(hits.begin(), hits.end(), [](const SearchHit& x, const SearchHit& y) {
    return x.start_time < y.start_time;
  });
  if (hits.size() > query.max_results) hits.resize(query.max_results);
  return hits;
}

}  // namespace jumpshot

// Jumpshot's search-and-scan facility: locate drawables that are hard to
// find visually, by category name or popup text, optionally narrowed to a
// time window and rank.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "slog2/slog2.hpp"

namespace jumpshot {

struct SearchHit {
  enum class Kind { kState, kEvent, kArrow } kind = Kind::kState;
  std::string category_name;
  std::int32_t rank = 0;  ///< src rank for arrows
  double start_time = 0.0;
  double end_time = 0.0;
  std::string text;  ///< popup text that matched (or arrow description)
};

struct SearchQuery {
  /// Case-insensitive substring matched against category names and popup
  /// texts; empty matches everything.
  std::string needle;
  std::optional<double> t0;
  std::optional<double> t1;
  std::optional<std::int32_t> rank;
  std::size_t max_results = 100;
};

/// Hits are returned in increasing start-time order ("scan to the next
/// match" behaviour).
std::vector<SearchHit> search(const slog2::File& file, const SearchQuery& query);

}  // namespace jumpshot

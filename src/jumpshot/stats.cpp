#include "jumpshot/stats.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace jumpshot {

namespace {

/// Exclusive-time computation: per rank, sweep states in start order with a
/// stack; a state's duration is subtracted from its innermost enclosing
/// state. The converter guarantees LIFO nesting within a rank, so "top of
/// stack still covers me" identifies the parent.
struct OpenInterval {
  double end;
  std::int32_t category_id;
};

}  // namespace

std::vector<LegendEntry> legend(const slog2::File& file, LegendSort sort) {
  std::map<std::int32_t, LegendEntry> by_id;
  for (const auto& c : file.categories) {
    LegendEntry e;
    e.category = c;
    by_id[c.id] = e;
  }

  // Group states per rank for the nesting sweep.
  std::map<std::int32_t, std::vector<slog2::StateDrawable>> per_rank;
  file.visit_window(
      file.t_min, file.t_max,
      [&](const slog2::StateDrawable& s) { per_rank[s.rank].push_back(s); },
      [&](const slog2::EventDrawable& e) {
        auto it = by_id.find(e.category_id);
        if (it != by_id.end()) ++it->second.count;
      },
      [&](const slog2::ArrowDrawable&) { ++by_id[slog2::kArrowCategoryId].count; });

  std::map<std::int32_t, double> exclusive;  // category -> seconds
  for (auto& [rank, states] : per_rank) {
    std::sort(states.begin(), states.end(),
              [](const slog2::StateDrawable& a, const slog2::StateDrawable& b) {
                if (a.start_time != b.start_time) return a.start_time < b.start_time;
                return a.end_time > b.end_time;  // outer first on ties
              });
    std::vector<OpenInterval> stack;
    for (const auto& s : states) {
      auto it = by_id.find(s.category_id);
      if (it != by_id.end()) {
        ++it->second.count;
        it->second.inclusive += s.end_time - s.start_time;
      }
      while (!stack.empty() && stack.back().end <= s.start_time) stack.pop_back();
      const double dur = s.end_time - s.start_time;
      exclusive[s.category_id] += dur;
      if (!stack.empty() && stack.back().end >= s.end_time) {
        // Nested: parent loses this much exclusive time.
        exclusive[stack.back().category_id] -= dur;
      }
      stack.push_back(OpenInterval{s.end_time, s.category_id});
    }
  }
  for (auto& [id, entry] : by_id) {
    auto it = exclusive.find(id);
    entry.exclusive = it != exclusive.end() ? it->second : 0.0;
  }

  std::vector<LegendEntry> out;
  out.reserve(by_id.size());
  for (auto& [id, entry] : by_id) out.push_back(std::move(entry));

  switch (sort) {
    case LegendSort::kByName:
      std::sort(out.begin(), out.end(), [](const LegendEntry& a, const LegendEntry& b) {
        return a.category.name < b.category.name;
      });
      break;
    case LegendSort::kByCount:
      std::stable_sort(out.begin(), out.end(),
                       [](const LegendEntry& a, const LegendEntry& b) {
                         return a.count > b.count;
                       });
      break;
    case LegendSort::kByInclusive:
      std::stable_sort(out.begin(), out.end(),
                       [](const LegendEntry& a, const LegendEntry& b) {
                         return a.inclusive > b.inclusive;
                       });
      break;
    case LegendSort::kByExclusive:
      std::stable_sort(out.begin(), out.end(),
                       [](const LegendEntry& a, const LegendEntry& b) {
                         return a.exclusive > b.exclusive;
                       });
      break;
  }
  return out;
}

double RankWindowStats::total_state_time() const {
  double t = 0.0;
  for (const auto& [cat, secs] : state_time) t += secs;
  return t;
}

double WindowStats::imbalance() const {
  double max_busy = 0.0, sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : ranks) {
    const double busy = r.total_state_time();
    max_busy = std::max(max_busy, busy);
    sum += busy;
    ++n;
  }
  if (n == 0 || sum == 0.0) return 1.0;
  return max_busy / (sum / static_cast<double>(n));
}

WindowStats window_stats(const slog2::File& file, double a, double b) {
  if (b < a) std::swap(a, b);
  WindowStats out;
  out.t0 = a;
  out.t1 = b;
  out.ranks.resize(static_cast<std::size_t>(std::max(file.nranks, 0)));
  for (std::int32_t r = 0; r < file.nranks; ++r)
    out.ranks[static_cast<std::size_t>(r)].rank = r;

  auto rank_slot = [&](std::int32_t r) -> RankWindowStats* {
    if (r < 0 || r >= file.nranks) return nullptr;
    return &out.ranks[static_cast<std::size_t>(r)];
  };

  file.visit_window(
      a, b,
      [&](const slog2::StateDrawable& s) {
        if (auto* slot = rank_slot(s.rank)) {
          const double lo = std::max(s.start_time, a);
          const double hi = std::min(s.end_time, b);
          if (hi > lo) slot->state_time[s.category_id] += hi - lo;
          ++slot->state_count[s.category_id];
        }
      },
      [&](const slog2::EventDrawable& e) {
        if (auto* slot = rank_slot(e.rank)) ++slot->event_count[e.category_id];
      },
      [&](const slog2::ArrowDrawable& ar) {
        if (auto* src = rank_slot(ar.src_rank)) ++src->arrows_out;
        if (auto* dst = rank_slot(ar.dst_rank)) ++dst->arrows_in;
      });
  return out;
}

std::string legend_to_text(const std::vector<LegendEntry>& entries) {
  std::string out;
  out += util::strprintf("%-24s %-12s %-7s %10s %14s %14s\n", "name", "color", "kind",
                         "count", "incl (s)", "excl (s)");
  for (const auto& e : entries) {
    const char* kind = e.category.kind == slog2::CategoryKind::kState   ? "state"
                       : e.category.kind == slog2::CategoryKind::kEvent ? "event"
                                                                        : "arrow";
    out += util::strprintf("%-24s %-12s %-7s %10llu %14.6f %14.6f\n",
                           e.category.name.c_str(), e.category.color.c_str(), kind,
                           static_cast<unsigned long long>(e.count), e.inclusive,
                           e.exclusive);
  }
  return out;
}

}  // namespace jumpshot

#include "jumpshot/stats.hpp"

#include <algorithm>

#include "query/slog2_rollup.hpp"
#include "util/strings.hpp"

namespace jumpshot {

std::vector<LegendEntry> legend(const slog2::File& file, LegendSort sort,
                                int threads) {
  // Seed one entry per declared category; the accumulation itself is the
  // shared query::LegendSweep engine (same numbers, pinned by goldens).
  std::map<std::int32_t, LegendEntry> by_id;
  for (const auto& c : file.categories) {
    LegendEntry e;
    e.category = c;
    by_id[c.id] = e;
  }

  query::LegendSweep sweep;
  file.visit_window(
      file.t_min, file.t_max,
      [&](const slog2::StateDrawable& s) { sweep.add_state(s); },
      [&](const slog2::EventDrawable& e) { sweep.add_event(e); },
      [&](const slog2::ArrowDrawable& a) { sweep.add_arrow(a); });

  for (const auto& [id, t] : sweep.totals(threads)) {
    auto it = by_id.find(id);
    if (it == by_id.end()) {
      // Drawables of undeclared categories are dropped from the legend —
      // except arrows, which get a synthetic row even without a category.
      if (id != slog2::kArrowCategoryId) continue;
      it = by_id.emplace(id, LegendEntry{}).first;
    }
    it->second.count = t.count;
    it->second.inclusive = t.inclusive;
    it->second.exclusive = t.exclusive;
  }

  std::vector<LegendEntry> out;
  out.reserve(by_id.size());
  for (auto& [id, entry] : by_id) out.push_back(std::move(entry));

  switch (sort) {
    case LegendSort::kByName:
      std::sort(out.begin(), out.end(), [](const LegendEntry& a, const LegendEntry& b) {
        return a.category.name < b.category.name;
      });
      break;
    case LegendSort::kByCount:
      std::stable_sort(out.begin(), out.end(),
                       [](const LegendEntry& a, const LegendEntry& b) {
                         return a.count > b.count;
                       });
      break;
    case LegendSort::kByInclusive:
      std::stable_sort(out.begin(), out.end(),
                       [](const LegendEntry& a, const LegendEntry& b) {
                         return a.inclusive > b.inclusive;
                       });
      break;
    case LegendSort::kByExclusive:
      std::stable_sort(out.begin(), out.end(),
                       [](const LegendEntry& a, const LegendEntry& b) {
                         return a.exclusive > b.exclusive;
                       });
      break;
  }
  return out;
}

double RankWindowStats::total_state_time() const {
  double t = 0.0;
  for (const auto& [cat, secs] : state_time) t += secs;
  return t;
}

double WindowStats::imbalance() const {
  double max_busy = 0.0, sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : ranks) {
    const double busy = r.total_state_time();
    max_busy = std::max(max_busy, busy);
    sum += busy;
    ++n;
  }
  if (n == 0 || sum == 0.0) return 1.0;
  return max_busy / (sum / static_cast<double>(n));
}

WindowStats window_stats(const slog2::File& file, double a, double b) {
  if (b < a) std::swap(a, b);
  WindowStats out;
  out.t0 = a;
  out.t1 = b;

  query::WindowOccupancy occ(file.nranks, a, b);
  file.visit_window(
      a, b, [&](const slog2::StateDrawable& s) { occ.add_state(s); },
      [&](const slog2::EventDrawable& e) { occ.add_event(e); },
      [&](const slog2::ArrowDrawable& ar) { occ.add_arrow(ar); });

  out.ranks.resize(occ.ranks().size());
  for (std::size_t r = 0; r < occ.ranks().size(); ++r) {
    const query::WindowOccupancy::Rank& src = occ.ranks()[r];
    RankWindowStats& dst = out.ranks[r];
    dst.rank = static_cast<std::int32_t>(r);
    dst.state_time = src.state_time;
    dst.state_count = src.state_count;
    dst.event_count = src.event_count;
    dst.arrows_out = src.arrows_out;
    dst.arrows_in = src.arrows_in;
  }
  return out;
}

std::string legend_to_text(const std::vector<LegendEntry>& entries) {
  std::string out;
  out += util::strprintf("%-24s %-12s %-7s %10s %14s %14s\n", "name", "color", "kind",
                         "count", "incl (s)", "excl (s)");
  for (const auto& e : entries) {
    const char* kind = e.category.kind == slog2::CategoryKind::kState   ? "state"
                       : e.category.kind == slog2::CategoryKind::kEvent ? "event"
                                                                        : "arrow";
    out += util::strprintf("%-24s %-12s %-7s %10llu %14.6f %14.6f\n",
                           e.category.name.c_str(), e.category.color.c_str(), kind,
                           static_cast<unsigned long long>(e.count), e.inclusive,
                           e.exclusive);
  }
  return out;
}

}  // namespace jumpshot

// Legend and window statistics — the numbers Jumpshot's legend table and
// "statistics picture" show.
//
// For each category the legend lists a count of instances, the *inclusive*
// duration (sum of state rectangle widths) and the *exclusive* duration
// (inclusive minus directly nested substates — time spent purely in the
// state, not in its substates). The paper points out these are useful as a
// poor man's profiler; the Fig. 2 discussion ("red and green tiny compared
// to gray") is exactly a legend-statistics claim, and the benches assert it
// numerically.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "slog2/slog2.hpp"

namespace jumpshot {

struct LegendEntry {
  slog2::Category category;
  std::uint64_t count = 0;
  double inclusive = 0.0;  ///< states only; 0 for events/arrows
  double exclusive = 0.0;  ///< inclusive minus directly nested substates
};

enum class LegendSort { kByName, kByCount, kByInclusive, kByExclusive };

/// Legend table over the whole file (every category appears, even unused).
/// `threads` shards the per-rank nesting sweeps (0 = one per hardware
/// thread); the table is byte-identical at any value.
std::vector<LegendEntry> legend(const slog2::File& file,
                                LegendSort sort = LegendSort::kByName,
                                int threads = 1);

/// Per-rank occupancy of one window [a, b]: how the paper's instructor spots
/// load imbalance "at a glance".
struct RankWindowStats {
  std::int32_t rank = 0;
  /// category id -> busy seconds within the window (states clipped to it).
  std::map<std::int32_t, double> state_time;
  /// category id -> instances whose anchor time falls inside the window.
  std::map<std::int32_t, std::uint64_t> state_count;
  std::map<std::int32_t, std::uint64_t> event_count;
  std::uint64_t arrows_out = 0;
  std::uint64_t arrows_in = 0;

  [[nodiscard]] double total_state_time() const;
};

struct WindowStats {
  double t0 = 0.0;
  double t1 = 0.0;
  std::vector<RankWindowStats> ranks;  ///< index == rank

  /// max/mean of per-rank busy time — 1.0 means perfectly balanced.
  [[nodiscard]] double imbalance() const;
};

WindowStats window_stats(const slog2::File& file, double a, double b);

/// Render a legend as fixed-width text (tools and bench output).
std::string legend_to_text(const std::vector<LegendEntry>& entries);

}  // namespace jumpshot

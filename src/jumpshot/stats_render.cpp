// The "statistics picture": per-rank stacked busy-time bars for a selected
// window. A glance shows load imbalance — the use the paper recommends for
// deciding to adjust work granularity or switch to dynamic allocation.
#include <algorithm>
#include <cmath>

#include "jumpshot/render.hpp"
#include "jumpshot/stats.hpp"
#include "util/color.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace jumpshot {

namespace {
constexpr const char* kCanvas = "#101014";
constexpr const char* kText = "#c8c8c8";
constexpr int kMarginLeft = 96;
constexpr int kMarginRight = 110;
constexpr int kRowH = 22;
constexpr int kRowGap = 8;
constexpr int kTop = 56;

std::string color_hex(const slog2::File& file, std::int32_t cat) {
  const auto* c = file.category(cat);
  if (c == nullptr || !util::is_known_color(c->color)) return "#888888";
  return util::color_by_name(c->color).to_hex();
}
}  // namespace

std::string render_stats_svg(const slog2::File& file, const StatsRenderOptions& opts) {
  const double a = std::isnan(opts.t0) ? file.t_min : opts.t0;
  const double b = std::isnan(opts.t1) ? file.t_max : opts.t1;
  const auto ws = window_stats(file, a, b);

  double max_busy = 0.0;
  for (const auto& r : ws.ranks) max_busy = std::max(max_busy, r.total_state_time());
  if (max_busy <= 0.0) max_busy = 1.0;

  const int nranks = static_cast<int>(ws.ranks.size());
  const int legend_lines = static_cast<int>(file.categories.size());
  const int height =
      kTop + std::max(nranks, 1) * (kRowH + kRowGap) + 24 + legend_lines * 16 + 12;
  const int plot_w = opts.width - kMarginLeft - kMarginRight;

  std::string svg;
  svg += util::strprintf(
      "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d'>\n",
      opts.width, height);
  svg += util::strprintf("<rect width='%d' height='%d' fill='%s'/>\n", opts.width,
                         height, kCanvas);
  svg += util::strprintf(
      "<text x='%d' y='20' fill='%s' font-size='14' font-family='sans-serif'>"
      "%s</text>\n",
      kMarginLeft, kText,
      util::xml_escape(opts.title.empty() ? "duration statistics" : opts.title)
          .c_str());
  svg += util::strprintf(
      "<text x='%d' y='40' fill='%s' font-size='12' font-family='monospace'>"
      "window [%s .. %s]   load imbalance (max/mean busy) = %.3f</text>\n",
      kMarginLeft, kText, util::human_seconds(a).c_str(),
      util::human_seconds(b).c_str(), ws.imbalance());

  for (int r = 0; r < nranks; ++r) {
    const auto& rank = ws.ranks[static_cast<std::size_t>(r)];
    const double y = kTop + r * (kRowH + kRowGap);
    std::string label = r < static_cast<int>(opts.rank_names.size())
                            ? opts.rank_names[static_cast<std::size_t>(r)]
                            : std::to_string(r);
    svg += util::strprintf(
        "<text x='%d' y='%.1f' fill='%s' font-size='12' text-anchor='end' "
        "font-family='monospace'>%s</text>\n",
        kMarginLeft - 8, y + kRowH * 0.7, kText, util::xml_escape(label).c_str());

    double x = kMarginLeft;
    for (const auto& [cat, secs] : rank.state_time) {
      const double w = secs / max_busy * plot_w;
      if (w <= 0) continue;
      svg += util::strprintf(
          "<rect x='%.2f' y='%.1f' width='%.2f' height='%d' fill='%s'>",
          x, y, std::max(w, 0.5), kRowH, color_hex(file, cat).c_str());
      const auto* c = file.category(cat);
      svg += "<title>" +
             util::xml_escape(util::strprintf(
                 "%s: %s", c ? c->name.c_str() : "?",
                 util::human_seconds(secs).c_str())) +
             "</title></rect>\n";
      x += w;
    }
    svg += util::strprintf(
        "<text x='%.1f' y='%.1f' fill='%s' font-size='11' "
        "font-family='monospace'>%s</text>\n",
        x + 6, y + kRowH * 0.7, kText,
        util::human_seconds(rank.total_state_time()).c_str());
  }

  // Category legend.
  int ly = kTop + std::max(nranks, 1) * (kRowH + kRowGap) + 18;
  for (const auto& c : file.categories) {
    if (c.kind != slog2::CategoryKind::kState) continue;
    svg += util::strprintf(
        "<rect x='%d' y='%d' width='10' height='10' fill='%s'/>"
        "<text x='%d' y='%d' fill='%s' font-size='11' font-family='monospace'>"
        "%s</text>\n",
        kMarginLeft, ly - 9, color_hex(file, c.id).c_str(), kMarginLeft + 16, ly,
        kText, util::xml_escape(c.name).c_str());
    ly += 16;
  }
  svg += "</svg>\n";
  return svg;
}

void render_stats_to_file(const std::filesystem::path& path, const slog2::File& file,
                          const StatsRenderOptions& opts) {
  util::write_file(path, render_stats_svg(file, opts));
}

}  // namespace jumpshot

#include "mpe/mpe.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/color.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace mpe {

namespace {
// Reserved tag band for MPE's own traffic (above the collectives band).
constexpr int kTagSyncPing = 0x02000001;
constexpr int kTagSyncPong = 0x02000002;
constexpr int kTagCollect = 0x02000003;
}  // namespace

double record_time(const clog2::Record& rec) {
  if (const auto* e = std::get_if<clog2::EventRec>(&rec)) return e->timestamp;
  if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) return m->timestamp;
  return 0.0;
}

std::vector<clog2::Record> merge_timed(std::vector<std::vector<clog2::Record>> streams) {
  std::size_t total = 0;
  for (auto& s : streams) {
    total += s.size();
    // Local repair: a clock fit with non-positive slope (or hand-stamped
    // records) can leave this stream non-monotonic; fix it here so the heap
    // merge below only ever has to compare stream fronts.
    bool sorted = true;
    for (std::size_t i = 1; i < s.size(); ++i)
      if (record_time(s[i]) < record_time(s[i - 1])) {
        sorted = false;
        break;
      }
    if (!sorted)
      std::stable_sort(s.begin(), s.end(), [](const auto& a, const auto& b) {
        return record_time(a) < record_time(b);
      });
  }

  std::vector<clog2::Record> out;
  out.reserve(total);

  // Heap of stream cursors, smallest (time, stream index) on top. The
  // stream-index tie-break plus per-stream FIFO order reproduces the
  // stable-sort-of-concatenation order exactly.
  struct Cursor {
    double t;
    std::size_t stream;
    std::size_t pos;
  };
  auto later = [](const Cursor& a, const Cursor& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.stream > b.stream;
  };
  std::vector<Cursor> heap;
  heap.reserve(streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s)
    if (!streams[s].empty()) heap.push_back(Cursor{record_time(streams[s][0]), s, 0});
  std::make_heap(heap.begin(), heap.end(), later);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Cursor cur = heap.back();
    heap.pop_back();
    auto& stream = streams[cur.stream];
    out.emplace_back(std::move(stream[cur.pos]));
    if (cur.pos + 1 < stream.size()) {
      heap.push_back(Cursor{record_time(stream[cur.pos + 1]), cur.stream, cur.pos + 1});
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  return out;
}

ClockFit fit_clock(const std::vector<clog2::SyncRec>& samples) {
  ClockFit fit;
  if (samples.empty()) return fit;
  if (samples.size() == 1) {
    fit.a = samples[0].ref_time - samples[0].local_time;
    fit.b = 1.0;
    return fit;
  }
  // Least-squares line ref = a + b * local.
  double sl = 0, sr = 0, sll = 0, slr = 0;
  const auto n = static_cast<double>(samples.size());
  for (const auto& s : samples) {
    sl += s.local_time;
    sr += s.ref_time;
    sll += s.local_time * s.local_time;
    slr += s.local_time * s.ref_time;
  }
  const double denom = n * sll - sl * sl;
  if (denom <= 0.0 || !std::isfinite(denom)) {
    // Degenerate (identical local times): fall back to mean offset.
    fit.a = (sr - sl) / n;
    fit.b = 1.0;
    return fit;
  }
  fit.b = (n * slr - sl * sr) / denom;
  fit.a = (sr - fit.b * sl) / n;
  return fit;
}

Logger::Logger(mpisim::World& world, Options opts)
    : world_(world), opts_(std::move(opts)) {
  if (opts_.sync_rounds < 1)
    throw util::UsageError("mpe::Logger needs at least one sync round");
  buffers_.resize(static_cast<std::size_t>(world.nprocs()));
}

int Logger::get_event_number() {
  std::lock_guard lk(defs_mu_);
  return next_event_id_++;
}

void Logger::define_event(int event_id, std::string name, std::string color,
                          std::string format) {
  if (!util::is_known_color(color))
    throw util::UsageError("define_event '" + name + "': unknown colour '" + color + "'");
  std::lock_guard lk(defs_mu_);
  if (event_id <= 0 || event_id >= next_event_id_)
    throw util::UsageError("define_event '" + name + "': event id " +
                           std::to_string(event_id) + " was never allocated");
  if (auto it = known_event_ids_.find(event_id); it != known_event_ids_.end())
    throw util::UsageError("define_event '" + name + "': event id " +
                           std::to_string(event_id) + " already defined by '" +
                           it->second + "'");
  known_event_ids_[event_id] = name;
  event_defs_.push_back(clog2::EventDef{event_id, std::move(name), std::move(color),
                                        std::move(format)});
}

void Logger::define_state(int start_event_id, int end_event_id, std::string name,
                          std::string color, std::string format) {
  if (!util::is_known_color(color))
    throw util::UsageError("define_state '" + name + "': unknown colour '" + color + "'");
  std::lock_guard lk(defs_mu_);
  for (int id : {start_event_id, end_event_id}) {
    if (id <= 0 || id >= next_event_id_)
      throw util::UsageError("define_state '" + name + "': event id " +
                             std::to_string(id) + " was never allocated");
    if (auto it = known_event_ids_.find(id); it != known_event_ids_.end())
      throw util::UsageError("define_state '" + name + "': event id " +
                             std::to_string(id) + " already defined by '" +
                             it->second + "'");
  }
  if (start_event_id == end_event_id)
    throw util::UsageError("define_state '" + name +
                           "': start and end events must differ");
  known_event_ids_[start_event_id] = name;
  known_event_ids_[end_event_id] = name;
  const int state_id = static_cast<int>(state_defs_.size()) + 1;
  state_defs_.push_back(clog2::StateDef{state_id, start_event_id, end_event_id,
                                        std::move(name), std::move(color),
                                        std::move(format)});
}

std::string Logger::clip(std::string_view text) const {
  return util::truncate_bytes(text, opts_.max_text_bytes);
}

namespace {
std::string spill_rank_path(const std::string& base, int rank) {
  return base + ".rank" + std::to_string(rank) + ".spill";
}
std::string spill_defs_path(const std::string& base) { return base + ".defs.spill"; }
}  // namespace

void Logger::spill_record(int rank, const clog2::Record& rec) {
  if (opts_.spill_base.empty()) return;
  auto& buf = buffers_[static_cast<std::size_t>(rank)];
  if (buf.spill_broken) return;
  if (!buf.spill) {
    buf.spill = std::make_unique<std::ofstream>(
        spill_rank_path(opts_.spill_base, rank), std::ios::binary | std::ios::trunc);
    if (!*buf.spill)
      throw util::IoError("cannot open spill file for rank " + std::to_string(rank));
  }
  util::ByteWriter w;
  clog2::append_record(w, rec);
  ++buf.spill_writes;
  std::size_t keep = w.size();
  if (opts_.spill_fault)
    keep = std::min(opts_.spill_fault(rank, buf.spill_writes, w.size()), w.size());
  buf.spill->write(reinterpret_cast<const char*>(w.bytes().data()),
                   static_cast<std::streamsize>(keep));
  // Flush per record: the whole point is surviving a sudden death.
  buf.spill->flush();
  if (keep < w.size() || !*buf.spill) {
    // Injected or real write failure. Keep the damaged prefix on disk (the
    // salvager drops the torn tail) and stop spilling; records still buffer
    // in memory, so a clean finish writes the full trace regardless.
    buf.spill_broken = true;
  }
}

void Logger::write_spill_defs() {
  if (opts_.spill_base.empty()) return;
  util::ByteWriter w;
  {
    std::lock_guard lk(defs_mu_);
    for (const auto& d : event_defs_) clog2::append_record(w, d);
    for (const auto& d : state_defs_) clog2::append_record(w, d);
  }
  util::write_file(spill_defs_path(opts_.spill_base), w.bytes());
}

void Logger::remove_spill_files() {
  if (opts_.spill_base.empty()) return;
  std::error_code ec;
  std::filesystem::remove(spill_defs_path(opts_.spill_base), ec);
  for (std::size_t r = 0; r < buffers_.size(); ++r) {
    if (buffers_[r].spill) buffers_[r].spill.reset();  // close first
    std::filesystem::remove(spill_rank_path(opts_.spill_base, static_cast<int>(r)),
                            ec);
  }
}

void Logger::log_event(mpisim::Comm& comm, int event_id, std::string_view text) {
  log_event_at(comm, comm.wtime(), event_id, text);
}

void Logger::log_event_at(mpisim::Comm& comm, double local_time, int event_id,
                          std::string_view text) {
  {
    std::lock_guard lk(defs_mu_);
    if (known_event_ids_.find(event_id) == known_event_ids_.end())
      throw util::UsageError("log_event: event id " + std::to_string(event_id) +
                             " has no definition");
  }
  auto& buf = buffers_[static_cast<std::size_t>(comm.rank())];
  buf.records.emplace_back(
      clog2::EventRec{local_time, comm.rank(), event_id, clip(text)});
  if (!opts_.spill_base.empty()) spill_record(comm.rank(), buf.records.back());
  record_logged(comm.rank());
}

void Logger::log_send(mpisim::Comm& comm, int dst, int tag, std::size_t bytes) {
  clog2::MsgRec m;
  m.timestamp = comm.wtime();
  m.rank = comm.rank();
  m.kind = clog2::MsgRec::Kind::kSend;
  m.partner = dst;
  m.tag = tag;
  m.size = static_cast<std::uint32_t>(bytes);
  buffers_[static_cast<std::size_t>(comm.rank())].records.emplace_back(m);
  if (!opts_.spill_base.empty()) spill_record(comm.rank(), clog2::Record{m});
  record_logged(comm.rank());
}

void Logger::log_receive(mpisim::Comm& comm, int src, int tag, std::size_t bytes) {
  log_receive_at(comm, comm.wtime(), src, tag, bytes);
}

void Logger::log_receive_at(mpisim::Comm& comm, double local_time, int src, int tag,
                            std::size_t bytes) {
  clog2::MsgRec m;
  m.timestamp = local_time;
  m.rank = comm.rank();
  m.kind = clog2::MsgRec::Kind::kRecv;
  m.partner = src;
  m.tag = tag;
  m.size = static_cast<std::uint32_t>(bytes);
  buffers_[static_cast<std::size_t>(comm.rank())].records.emplace_back(m);
  if (!opts_.spill_base.empty()) spill_record(comm.rank(), clog2::Record{m});
  record_logged(comm.rank());
}

void Logger::record_logged(int rank) {
  auto& buf = buffers_[static_cast<std::size_t>(rank)];
  ++buf.logged;
  // Fault injection: crash=RANK@event:N fires here, after the record was
  // buffered and spilled — the first N records are the salvageable prefix.
  if (opts_.on_record) opts_.on_record(rank, buf.logged);
}

void Logger::log_sync_clocks(mpisim::Comm& comm) {
  const int rank = comm.rank();
  const int n = comm.size();
  auto& buf = buffers_[static_cast<std::size_t>(rank)];

  if (rank == 0) {
    // Reference clock: answer each rank's pings in rank order, and record
    // an identity sample for ourselves.
    const double t = comm.wtime();
    buf.sync_samples.push_back(clog2::SyncRec{0, t, t});
    if (!opts_.spill_base.empty())
      spill_record(0, clog2::Record{buf.sync_samples.back()});
    for (int r = 1; r < n; ++r) {
      for (int round = 0; round < opts_.sync_rounds; ++round) {
        comm.recv(r, kTagSyncPing, nullptr, 0);
        const double ref = comm.wtime();
        comm.send(r, kTagSyncPong, &ref, sizeof ref);
      }
    }
    return;
  }

  // Min-RTT wins: the shortest round trip brackets rank 0's reply most
  // tightly, so its midpoint is the best offset estimate.
  double best_rtt = std::numeric_limits<double>::infinity();
  clog2::SyncRec best{rank, 0.0, 0.0};
  for (int round = 0; round < opts_.sync_rounds; ++round) {
    const double t0 = comm.wtime();
    comm.send(0, kTagSyncPing, nullptr, 0);
    double ref = 0.0;
    comm.recv(0, kTagSyncPong, &ref, sizeof ref);
    const double t1 = comm.wtime();
    const double rtt = t1 - t0;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best.local_time = 0.5 * (t0 + t1);
      best.ref_time = ref;
    }
  }
  buf.sync_samples.push_back(best);
  if (!opts_.spill_base.empty()) spill_record(rank, clog2::Record{best});
}

clog2::File Logger::merge_all(std::vector<RankBuffer> buffers) {
  clog2::File out;
  out.nranks = world_.nprocs();
  out.comment = opts_.comment;

  {
    std::lock_guard lk(defs_mu_);
    for (const auto& d : event_defs_) out.records.emplace_back(d);
    for (const auto& d : state_defs_) out.records.emplace_back(d);
  }
  out.records.emplace_back(clog2::ConstDef{"world_size", world_.nprocs()});
  out.records.emplace_back(clog2::ConstDef{"sync_rounds", opts_.sync_rounds});

  // Per-rank clock corrections from the sync samples.
  std::vector<ClockFit> fits(static_cast<std::size_t>(world_.nprocs()));
  for (std::size_t r = 0; r < buffers.size(); ++r) {
    fits[r] = fit_clock(buffers[r].sync_samples);
    for (const auto& s : buffers[r].sync_samples) out.records.emplace_back(s);
  }

  // Correct timestamps in place, then k-way merge the per-rank streams.
  // Each stream is already time-ordered (monotonic rank clocks, linear
  // correction), so the merge is O(n log k) with no global sort and no
  // intermediate copy of the trace; merge_timed repairs the rare stream a
  // degenerate correction left inverted.
  std::vector<std::vector<clog2::Record>> streams;
  streams.reserve(buffers.size());
  for (std::size_t r = 0; r < buffers.size(); ++r) {
    for (auto& rec : buffers[r].records) {
      if (auto* e = std::get_if<clog2::EventRec>(&rec)) {
        e->timestamp = fits[r].apply(e->timestamp);
      } else if (auto* m = std::get_if<clog2::MsgRec>(&rec)) {
        m->timestamp = fits[r].apply(m->timestamp);
      }
    }
    streams.push_back(std::move(buffers[r].records));
  }
  for (auto& rec : merge_timed(std::move(streams)))
    out.records.emplace_back(std::move(rec));
  return out;
}

double Logger::finish_log(mpisim::Comm& comm, const std::filesystem::path& out) {
  const int rank = comm.rank();
  const int n = comm.size();

  if (rank != 0) {
    // Ship this rank's buffer to rank 0 as an embedded CLOG-2 fragment.
    auto& mine = buffers_[static_cast<std::size_t>(rank)];
    clog2::File fragment;
    fragment.nranks = n;
    fragment.records = std::move(mine.records);
    for (const auto& s : mine.sync_samples) fragment.records.emplace_back(s);
    const auto bytes = clog2::serialize(fragment);
    comm.send(0, kTagCollect, bytes.data(), bytes.size());
    return 0.0;
  }

  const double t_start = comm.wtime();

  std::vector<RankBuffer> buffers(static_cast<std::size_t>(n));
  buffers[0] = std::move(buffers_[0]);
  std::size_t total_records = buffers[0].records.size();
  for (int r = 1; r < n; ++r) {
    auto [st, bytes] = comm.recv_any_size(r, kTagCollect);
    clog2::File fragment = clog2::parse(bytes);
    auto& dst = buffers[static_cast<std::size_t>(r)];
    for (auto& rec : fragment.records) {
      if (auto* s = std::get_if<clog2::SyncRec>(&rec)) {
        dst.sync_samples.push_back(*s);
      } else {
        dst.records.emplace_back(std::move(rec));
      }
    }
    total_records += dst.records.size();
  }

  // Charge the simulated machine for the merge so "wrap-up time" exists in
  // virtual time, like the ~0.8 s the paper measures.
  comm.compute(opts_.merge_base_cost +
               opts_.merge_cost_per_record * static_cast<double>(total_records));

  merged_ = merge_all(std::move(buffers));
  clog2::write_file(out, *merged_);
  // The real log made it to disk: the crash-recovery spills are obsolete.
  remove_spill_files();
  return comm.wtime() - t_start;
}

clog2::File salvage(const std::string& spill_base, const std::string& comment) {
  namespace fs = std::filesystem;

  clog2::File out;
  out.comment = comment;

  // Definitions (written before logging started).
  const fs::path defs_path = spill_base + ".defs.spill";
  std::vector<clog2::EventDef> event_defs;
  std::vector<clog2::StateDef> state_defs;
  bool found_anything = false;
  if (fs::exists(defs_path)) {
    found_anything = true;
    const auto bytes = util::read_file(defs_path);
    util::ByteReader r(bytes);
    try {
      while (!r.at_end()) {
        auto rec = clog2::read_record(r);
        if (auto* e = std::get_if<clog2::EventDef>(&rec)) event_defs.push_back(*e);
        if (auto* s = std::get_if<clog2::StateDef>(&rec)) state_defs.push_back(*s);
      }
    } catch (const util::IoError&) {
      // Truncated defs tail: keep what parsed.
    }
  }

  // Per-rank record streams; a hole in the rank sequence is fine (that
  // rank died before logging anything).
  struct Fragment {
    std::vector<clog2::Record> records;
    std::vector<clog2::SyncRec> syncs;
  };
  std::map<int, Fragment> fragments;
  int max_rank = -1;
  for (int rank = 0;; ++rank) {
    const fs::path path = spill_base + ".rank" + std::to_string(rank) + ".spill";
    if (!fs::exists(path)) {
      // Allow gaps of a few ranks (a rank may never have logged).
      if (rank > max_rank + 8) break;
      continue;
    }
    found_anything = true;
    max_rank = rank;
    auto& frag = fragments[rank];
    const auto bytes = util::read_file(path);
    util::ByteReader r(bytes);
    try {
      while (!r.at_end()) {
        auto rec = clog2::read_record(r);
        if (auto* s = std::get_if<clog2::SyncRec>(&rec)) {
          frag.syncs.push_back(*s);
        } else {
          frag.records.push_back(std::move(rec));
        }
      }
    } catch (const util::IoError&) {
      // The record being written when the program died: drop it.
    }
  }
  if (!found_anything)
    throw util::IoError("salvage: no spill files found at " + spill_base);

  out.nranks = max_rank + 1;
  for (const auto& d : event_defs) out.records.emplace_back(d);
  for (const auto& d : state_defs) out.records.emplace_back(d);
  out.records.emplace_back(clog2::ConstDef{"salvaged", 1});

  std::vector<std::vector<clog2::Record>> streams;
  streams.reserve(fragments.size());
  for (auto& [rank, frag] : fragments) {
    const ClockFit fit = fit_clock(frag.syncs);
    for (const auto& s : frag.syncs) out.records.emplace_back(s);
    for (auto& rec : frag.records) {
      if (auto* e = std::get_if<clog2::EventRec>(&rec)) {
        e->timestamp = fit.apply(e->timestamp);
      } else if (auto* m = std::get_if<clog2::MsgRec>(&rec)) {
        m->timestamp = fit.apply(m->timestamp);
      }
    }
    streams.push_back(std::move(frag.records));
  }
  for (auto& rec : merge_timed(std::move(streams)))
    out.records.emplace_back(std::move(rec));
  return out;
}

std::size_t Logger::buffered(int rank) const {
  return buffers_.at(static_cast<std::size_t>(rank)).records.size();
}

}  // namespace mpe

// MPE-style logging layer (the measurement infrastructure the paper adapts).
//
// Mirrors the real MPE architecture:
//  * event IDs are allocated up front (get_event_number) and given
//    name/colour properties via define_event / define_state;
//  * each rank appends instances to a private in-memory buffer — logging a
//    record costs a few nanoseconds, which is why the paper measures MPE
//    overhead as "extremely slight";
//  * log_send / log_receive record the two halves of a message, later paired
//    into arrows by the CLOG-2 → SLOG-2 converter;
//  * log_sync_clocks estimates each rank's clock offset/skew against rank 0
//    via min-RTT ping-pong (call it at start and end to correct skew too);
//  * finish_log gathers all buffers at rank 0, applies the clock
//    correction, time-merges, and writes a single CLOG-2 file — the paper's
//    measured "wrap-up" cost.
//
// Like real MPE, everything rides on ordinary messages, so if the program
// aborts (MPI_Abort), the log is lost — the paper's Section III-B discusses
// exactly this limitation, and the Pilot integration reproduces it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "clog2/clog2.hpp"
#include "mpisim/world.hpp"

namespace mpe {

/// MPE caps optional event text at 40 bytes (paper, Section III).
inline constexpr std::size_t kMaxTextBytes = 40;

/// Linear clock correction ref(t) = a + b * t fitted from sync samples.
struct ClockFit {
  double a = 0.0;
  double b = 1.0;
  [[nodiscard]] double apply(double local) const { return a + b * local; }
};

/// Fit a correction from (local, ref) samples: identity for none, offset
/// for one, least-squares line for two or more.
ClockFit fit_clock(const std::vector<clog2::SyncRec>& samples);

/// K-way time-merge of per-stream record sequences into one chronological
/// stream. Each input stream is expected to be time-ordered already (a rank
/// logs with a monotonic clock, and a linear clock correction with positive
/// slope preserves that order); the rare post-correction inversion — a
/// degenerate fit with non-positive slope, or an explicitly stamped
/// out-of-order record — is detected and repaired with a local stable sort
/// of that stream only. The merge is a heap over one cursor per stream
/// (O(n log k) comparisons, no global sort, no intermediate copy of the
/// trace) and is tie-broken by stream index, so the output is byte-for-byte
/// what concatenating the streams in order and stable-sorting by timestamp
/// used to produce.
std::vector<clog2::Record> merge_timed(std::vector<std::vector<clog2::Record>> streams);

/// Timestamp of a timed record (EventRec/MsgRec); definition records carry
/// no clock and sort as 0. This is the key merge_timed orders by, exposed so
/// benches and tests can reproduce the seed's sort path exactly.
double record_time(const clog2::Record& rec);

class Logger {
public:
  struct Options {
    std::string comment;
    /// Popup-text cap (MPE hardwires 40; kept configurable for tests).
    std::size_t max_text_bytes = kMaxTextBytes;
    /// Ping-pong rounds per sync point (min-RTT sample wins).
    int sync_rounds = 5;
    /// Virtual-seconds cost model for the finalize gather+merge+write, so
    /// the "wrap-up time" the paper measures (~0.8 s) exists in simulated
    /// time: cost = base + per_record * records.
    double merge_base_cost = 0.05;
    double merge_cost_per_record = 35e-6;

    /// Robust-log spill (the paper's future work: don't lose the log on
    /// abort). When non-empty, every record is also appended — and flushed
    /// — to "<spill_base>.rank<r>.spill" as it is logged, so mpe::salvage
    /// can reconstruct a trace even after MPI_Abort killed the gather.
    /// Costs a buffered write + flush per record instead of MPE's
    /// memory-only append.
    std::string spill_base;

    /// Fault-injection hooks (chaos testing; see src/fault/). `on_record` is
    /// called after a rank buffers (and spills) its nth instance record
    /// (1-based, per rank); it may throw to simulate the rank dying — the
    /// already-spilled prefix is exactly what mpe::salvage recovers.
    std::function<void(int rank, std::uint64_t nth)> on_record;
    /// Spill-write fault: how many of the nth spill write's `nbytes` to
    /// actually write. Returning less truncates the write and permanently
    /// breaks that rank's spill stream; records still buffer in memory, so
    /// a clean finish is unaffected and salvage drops the torn tail.
    std::function<std::size_t(int rank, std::uint64_t nth, std::size_t nbytes)>
        spill_fault;
  };

  Logger(mpisim::World& world, Options opts);

  // --- definition phase (thread-safe; typically before logging starts) ----
  /// Allocate a fresh event ID (MPE_Log_get_event_number).
  int get_event_number();

  /// Define a solo event (drawn as a bubble). Colour names are validated.
  void define_event(int event_id, std::string name, std::string color,
                    std::string format = {});

  /// Define a state (MPE_Describe_state): start/end event pair, drawn as a
  /// rectangle from the start instance to the end instance.
  void define_state(int start_event_id, int end_event_id, std::string name,
                    std::string color, std::string format = {});

  // --- logging (called from rank threads; wait-free per rank) -------------
  /// MPE_Log_event: record an instance of `event_id` now, with optional
  /// popup text (silently truncated to max_text_bytes, like MPE).
  void log_event(mpisim::Comm& comm, int event_id, std::string_view text = {});

  /// Same, but at an explicit rank-local timestamp (used by the Pilot layer
  /// to stamp milestones like per-message arrival instants).
  void log_event_at(mpisim::Comm& comm, double local_time, int event_id,
                    std::string_view text = {});

  /// MPE_Log_send / MPE_Log_receive: the two halves of a message arrow.
  void log_send(mpisim::Comm& comm, int dst, int tag, std::size_t bytes);
  void log_receive(mpisim::Comm& comm, int src, int tag, std::size_t bytes);
  /// Receive half stamped at an explicit time (Pilot logs the arrival
  /// moment it observed rather than "now").
  void log_receive_at(mpisim::Comm& comm, double local_time, int src, int tag,
                      std::size_t bytes);

  /// MPE_Log_sync_clocks: collective; every rank must call it. Estimates
  /// this rank's offset against rank 0 by min-RTT ping-pong and records a
  /// sync sample. Call once near start and once near end to correct skew.
  void log_sync_clocks(mpisim::Comm& comm);

  /// MPE_Finish_log: collective. Gathers all per-rank buffers at rank 0,
  /// applies clock corrections, merges by corrected time and writes `out`.
  /// Returns the wrap-up duration in virtual seconds on rank 0 (0 elsewhere).
  double finish_log(mpisim::Comm& comm, const std::filesystem::path& out);

  /// Records buffered by `rank` so far (tests / diagnostics).
  [[nodiscard]] std::size_t buffered(int rank) const;

  /// Write the definition table to "<spill_base>.defs.spill" (robust mode;
  /// call after all define_* calls, before logging starts).
  void write_spill_defs();

  /// Build the merged file in memory (what finish_log writes); callable
  /// after finish_log has run, or directly in single-threaded tests.
  [[nodiscard]] const std::optional<clog2::File>& merged() const { return merged_; }

private:
  struct RankBuffer {
    std::vector<clog2::Record> records;     // EventRec / MsgRec, local clock
    std::vector<clog2::SyncRec> sync_samples;  // (local, ref) pairs
    std::unique_ptr<std::ofstream> spill;   // robust mode only
    std::uint64_t logged = 0;        // instance records buffered so far
    std::uint64_t spill_writes = 0;  // spill writes attempted so far
    bool spill_broken = false;       // stream hit a (possibly injected) fault
  };

  clog2::File merge_all(std::vector<RankBuffer> buffers);
  [[nodiscard]] std::string clip(std::string_view text) const;
  void spill_record(int rank, const clog2::Record& rec);
  void record_logged(int rank);
  void remove_spill_files();

  mpisim::World& world_;
  Options opts_;

  std::mutex defs_mu_;
  int next_event_id_ = 1;
  std::vector<clog2::EventDef> event_defs_;
  std::vector<clog2::StateDef> state_defs_;
  std::map<int, std::string> known_event_ids_;  // id -> owning def name

  std::vector<RankBuffer> buffers_;  // index = rank; touched only by that rank
  std::optional<clog2::File> merged_;
};

/// Reconstruct a trace from robust-mode spill files (the paper's future
/// work). Reads "<spill_base>.defs.spill" and every
/// "<spill_base>.rank<r>.spill" that exists; a truncated tail (the record
/// being written when the program died) is dropped. Clock corrections use
/// whatever sync samples made it to disk. Throws util::IoError if no spill
/// files exist at all.
clog2::File salvage(const std::string& spill_base,
                    const std::string& comment = "salvaged after abort");

}  // namespace mpe

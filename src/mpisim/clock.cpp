#include "mpisim/clock.hpp"

#include <cmath>

#include "mpisim/sched.hpp"
#include "util/prng.hpp"

namespace mpisim {

VirtualClock::VirtualClock(int nranks, double max_offset, double max_skew,
                           std::uint64_t seed)
    : t0_(std::chrono::steady_clock::now()) {
  util::SplitMix64 rng(seed ^ 0xC10CC10CC10CC10CULL);
  offsets_.reserve(static_cast<std::size_t>(nranks));
  skews_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    // Rank 0 is the reference clock, exactly like MPE treats rank 0.
    if (r == 0 || (max_offset == 0.0 && max_skew == 0.0)) {
      offsets_.push_back(0.0);
      skews_.push_back(0.0);
    } else {
      offsets_.push_back(rng.uniform(-max_offset, max_offset));
      skews_.push_back(rng.uniform(-max_skew, max_skew));
    }
  }
}

void VirtualClock::backdate(double seconds) {
  if (sched_ != nullptr) {
    vt0_ += seconds;
    return;
  }
  t0_ -= std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

double VirtualClock::true_time() const {
  if (sched_ != nullptr) return vt0_ + sched_->now();
  const auto d = std::chrono::steady_clock::now() - t0_;
  return std::chrono::duration<double>(d).count();
}

std::chrono::steady_clock::time_point VirtualClock::steady_of(double true_t) const {
  return t0_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(true_t));
}

double VirtualClock::now(int rank) const { return to_local(rank, true_time()); }

double VirtualClock::to_local(int rank, double true_t) const {
  const auto r = static_cast<std::size_t>(rank);
  double t = true_t * (1.0 + skews_.at(r)) + offsets_.at(r);
  if (quantum_ > 0.0) t = std::floor(t / quantum_) * quantum_;
  return t;
}

}  // namespace mpisim

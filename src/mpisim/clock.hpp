// Per-rank virtual wall clocks.
//
// Real clusters have one clock per node, each with its own offset and skew;
// MPE's Log_sync_clocks exists to undo exactly that. The substrate models a
// rank's clock as
//
//     local(t) = (t - t0) * (1 + skew) + offset
//
// over a shared steady base clock, with offset/skew drawn deterministically
// from a seed. Tests and the clock-sync ablation get ground truth via
// true_time().
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace mpisim {

class VirtualClock {
public:
  /// `max_offset` seconds and `max_skew` (fractional, e.g. 1e-4) bound the
  /// injected per-rank error; both zero gives perfectly synchronized clocks.
  VirtualClock(int nranks, double max_offset, double max_skew, std::uint64_t seed);

  /// Shift the clock origin into the past (time already reads `seconds` at
  /// the call). Pilot uses this so the Configuration Phase — which runs
  /// before the World exists — still has positive timestamps.
  void backdate(double seconds);

  /// Quantize reported times to multiples of `quantum` seconds, emulating a
  /// coarse MPI_Wtime. The paper's "Equal Drawables" problem stems from
  /// exactly this: events inside one quantum get identical timestamps.
  void set_quantum(double quantum) { quantum_ = quantum; }
  [[nodiscard]] double quantum() const { return quantum_; }

  /// The rank-local (possibly drifted) clock — what MPI_Wtime would return.
  [[nodiscard]] double now(int rank) const;

  /// Drift-free global time (ground truth; not observable by ranks on a real
  /// cluster, used here by tests and by the sync-quality ablation).
  [[nodiscard]] double true_time() const;

  /// Convert a ground-truth instant into rank-local clock units.
  [[nodiscard]] double to_local(int rank, double true_t) const;

  [[nodiscard]] double offset(int rank) const { return offsets_.at(static_cast<std::size_t>(rank)); }
  [[nodiscard]] double skew(int rank) const { return skews_.at(static_cast<std::size_t>(rank)); }

private:
  std::chrono::steady_clock::time_point t0_;
  double quantum_ = 0.0;
  std::vector<double> offsets_;
  std::vector<double> skews_;
};

}  // namespace mpisim

// Per-rank virtual wall clocks.
//
// Real clusters have one clock per node, each with its own offset and skew;
// MPE's Log_sync_clocks exists to undo exactly that. The substrate models a
// rank's clock as
//
//     local(t) = (t - t0) * (1 + skew) + offset
//
// over a shared steady base clock, with offset/skew drawn deterministically
// from a seed. Tests and the clock-sync ablation get ground truth via
// true_time().
// Under the task substrate (`-piexec=tasks`) the steady base is replaced by
// the scheduler's simulated clock: true time becomes a deterministic function
// of the dispatch sequence, so charged sleeps and message latencies retire
// without wall-clock waits and timestamps are identical run-to-run.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace mpisim {

class TaskScheduler;

class VirtualClock {
public:
  /// `max_offset` seconds and `max_skew` (fractional, e.g. 1e-4) bound the
  /// injected per-rank error; both zero gives perfectly synchronized clocks.
  VirtualClock(int nranks, double max_offset, double max_skew, std::uint64_t seed);

  /// Switch the time base from the steady clock to `sched`'s virtual clock
  /// (tasks mode). Must happen before any timestamps are taken.
  void bind_scheduler(const TaskScheduler* sched) { sched_ = sched; }
  [[nodiscard]] bool is_virtual() const { return sched_ != nullptr; }

  /// Shift the clock origin into the past (time already reads `seconds` at
  /// the call). Pilot uses this so the Configuration Phase — which runs
  /// before the World exists — still has positive timestamps.
  void backdate(double seconds);

  /// Quantize reported times to multiples of `quantum` seconds, emulating a
  /// coarse MPI_Wtime. The paper's "Equal Drawables" problem stems from
  /// exactly this: events inside one quantum get identical timestamps.
  void set_quantum(double quantum) { quantum_ = quantum; }
  [[nodiscard]] double quantum() const { return quantum_; }

  /// The rank-local (possibly drifted) clock — what MPI_Wtime would return.
  [[nodiscard]] double now(int rank) const;

  /// Drift-free global time (ground truth; not observable by ranks on a real
  /// cluster, used here by tests and by the sync-quality ablation).
  [[nodiscard]] double true_time() const;

  /// Convert a ground-truth instant into rank-local clock units.
  [[nodiscard]] double to_local(int rank, double true_t) const;

  /// Map a true-time instant back onto the steady base clock (threads mode
  /// only — waits use this to turn model deadlines into cv deadlines).
  [[nodiscard]] std::chrono::steady_clock::time_point steady_of(double true_t) const;

  /// Map a true-time instant onto the scheduler's clock (tasks mode only —
  /// blocking calls use this to arm virtual timers).
  [[nodiscard]] double sched_time_of(double true_t) const { return true_t - vt0_; }

  [[nodiscard]] double offset(int rank) const { return offsets_.at(static_cast<std::size_t>(rank)); }
  [[nodiscard]] double skew(int rank) const { return skews_.at(static_cast<std::size_t>(rank)); }

private:
  std::chrono::steady_clock::time_point t0_;
  const TaskScheduler* sched_ = nullptr;
  double vt0_ = 0.0;  // virtual-time origin offset (tasks mode backdating)
  double quantum_ = 0.0;
  std::vector<double> offsets_;
  std::vector<double> skews_;
};

}  // namespace mpisim

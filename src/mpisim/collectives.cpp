// Collectives built on the point-to-point layer with reserved internal tags.
//
// MPI requires every rank to call collectives in the same order; under that
// rule a per-rank call counter yields identical tags on all ranks, and the
// reserved tag space (above kMaxUserTag) keeps collective traffic from ever
// matching user receives.
#include <cstring>
#include <vector>

#include "mpisim/world.hpp"
#include "util/strings.hpp"

namespace mpisim {

namespace {
constexpr int kCollectiveTagBase = kMaxUserTag + 1;  // 0x01000000

int collective_tag(std::uint64_t seq) {
  // Cycle through a window of reserved tags. The window is far larger than
  // the number of collectives that can be simultaneously in flight.
  return kCollectiveTagBase + static_cast<int>(seq % 0x00400000ULL);
}
}  // namespace

void Comm::bcast(int root, void* data, std::size_t n) {
  world_->check_rank(root, "bcast");
  const int tag = collective_tag(collective_seq_++);
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send(r, tag, data, n);
  } else {
    recv(root, tag, data, n);
  }
}

void Comm::gather(int root, const void* sendbuf, std::size_t n_each, void* recvbuf) {
  world_->check_rank(root, "gather");
  const int tag = collective_tag(collective_seq_++);
  if (rank_ == root) {
    auto* out = static_cast<std::uint8_t*>(recvbuf);
    for (int r = 0; r < size(); ++r) {
      if (r == root) {
        if (n_each > 0)
          std::memcpy(out + static_cast<std::size_t>(r) * n_each, sendbuf, n_each);
      } else {
        recv(r, tag, out + static_cast<std::size_t>(r) * n_each, n_each);
      }
    }
  } else {
    send(root, tag, sendbuf, n_each);
  }
}

void Comm::scatter(int root, const void* sendbuf, std::size_t n_each, void* recvbuf) {
  world_->check_rank(root, "scatter");
  const int tag = collective_tag(collective_seq_++);
  if (rank_ == root) {
    const auto* in = static_cast<const std::uint8_t*>(sendbuf);
    for (int r = 0; r < size(); ++r) {
      if (r == root) {
        if (n_each > 0)
          std::memcpy(recvbuf, in + static_cast<std::size_t>(r) * n_each, n_each);
      } else {
        send(r, tag, in + static_cast<std::size_t>(r) * n_each, n_each);
      }
    }
  } else {
    recv(root, tag, recvbuf, n_each);
  }
}

void Comm::reduce(int root, Op op, Datatype dt, const void* sendbuf, void* recvbuf,
                  std::size_t count) {
  world_->check_rank(root, "reduce");
  const int tag = collective_tag(collective_seq_++);
  const std::size_t bytes = count * datatype_size(dt);
  if (rank_ == root) {
    if (bytes > 0) std::memcpy(recvbuf, sendbuf, bytes);
    std::vector<std::uint8_t> tmp(bytes);
    // Deterministic rank order gives reproducible floating-point results.
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv(r, tag, tmp.data(), tmp.size());
      reduce_apply(op, dt, recvbuf, tmp.data(), count);
    }
  } else {
    send(root, tag, sendbuf, bytes);
  }
}

void Comm::allreduce(Op op, Datatype dt, const void* sendbuf, void* recvbuf,
                     std::size_t count) {
  reduce(0, op, dt, sendbuf, recvbuf, count);
  bcast(0, recvbuf, count * datatype_size(dt));
}

}  // namespace mpisim

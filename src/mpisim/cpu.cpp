#include "mpisim/cpu.hpp"

#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace mpisim {

CpuModel::CpuModel(unsigned cores, double time_scale, TaskScheduler* sched)
    : cores_(cores), time_scale_(time_scale), sched_(sched) {
  if (cores_ == 0) throw util::UsageError("CpuModel needs at least one core");
  if (time_scale_ < 0.0) throw util::UsageError("CpuModel time_scale must be >= 0");
}

void CpuModel::execute(double virtual_seconds) {
  if (virtual_seconds < 0.0)
    throw util::UsageError("CpuModel::execute: negative cost");
  if (sched_ != nullptr) {
    execute_tasks(virtual_seconds);
    return;
  }
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return shutdown_ || busy_ < cores_; });
  if (shutdown_) return;
  ++busy_;
  charged_ += virtual_seconds;
  if (virtual_seconds > 0.0 && time_scale_ > 0.0) {
    // Wait, don't sleep_for: shutdown() (i.e. abort) must be able to cut a
    // long charged compute short, or an aborted job blocks until the longest
    // in-flight kernel runs out. The mutex is released while waiting, so
    // other ranks still contend for cores normally.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(virtual_seconds * time_scale_));
    cv_.wait_until(lk, deadline, [&] { return shutdown_; });
  }
  --busy_;
  lk.unlock();
  // notify_all, not notify_one: core-waiters and interruptible sleepers share
  // the condition variable, and a single wake could land on a sleeper that
  // ignores it, stranding a waiter.
  cv_.notify_all();
}

void CpuModel::execute_tasks(double virtual_seconds) {
  // Single carrier thread: no lock needed, and blocking happens through the
  // scheduler so other tasks keep running. Wakeups are spurious (abort wakes
  // everyone), hence the predicate loop.
  while (!shutdown_ && busy_ >= cores_) sched_->block(core_q_);
  if (shutdown_) return;
  ++busy_;
  charged_ += virtual_seconds;
  if (virtual_seconds > 0.0 && time_scale_ > 0.0)
    // The charged sleep is a virtual timer: when every runnable task has
    // yielded, the scheduler jumps its clock here instead of wall-waiting.
    sched_->sleep_until(sched_->now() + virtual_seconds * time_scale_);
  --busy_;
  // Exactly one core slot opened, so hand it to exactly one waiter. Waking
  // the whole queue makes every release cost O(waiters) re-blocks — with
  // thousands of ranks contending that is the difference between a linear
  // and a quadratic sweep.
  sched_->notify_one(core_q_);
}

double CpuModel::total_charged() const {
  if (sched_ != nullptr) return charged_;
  std::lock_guard lk(mu_);
  return charged_;
}

void CpuModel::shutdown() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (sched_ != nullptr) sched_->notify_all(core_q_);
}

}  // namespace mpisim

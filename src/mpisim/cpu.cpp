#include "mpisim/cpu.hpp"

#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace mpisim {

CpuModel::CpuModel(unsigned cores, double time_scale)
    : cores_(cores), time_scale_(time_scale) {
  if (cores_ == 0) throw util::UsageError("CpuModel needs at least one core");
  if (time_scale_ < 0.0) throw util::UsageError("CpuModel time_scale must be >= 0");
}

void CpuModel::execute(double virtual_seconds) {
  if (virtual_seconds < 0.0)
    throw util::UsageError("CpuModel::execute: negative cost");
  {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return shutdown_ || busy_ < cores_; });
    if (shutdown_) return;
    ++busy_;
    charged_ += virtual_seconds;
  }
  if (virtual_seconds > 0.0 && time_scale_ > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(virtual_seconds * time_scale_));
  }
  {
    std::lock_guard lk(mu_);
    --busy_;
  }
  cv_.notify_one();
}

double CpuModel::total_charged() const {
  std::lock_guard lk(mu_);
  return charged_;
}

void CpuModel::shutdown() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

}  // namespace mpisim

// Simulated machine: K virtual cores shared by all ranks.
//
// Compute kernels declare a *cost in virtual seconds*; execute() occupies
// one core token for the scaled wall duration. Because occupancy (not
// instruction mix) is what determines speedup, this reproduces the paper's
// timing shapes — 5→10 worker scaling, and the native-log rank displacing a
// worker — deterministically, even on a 1-core CI host.
//
// `time_scale` maps virtual seconds to wall seconds (e.g. 0.01 runs the
// paper's 31 s experiment in 310 ms).
// Under the task substrate the same model runs in *virtual* time: a charged
// sleep parks the calling task on a scheduler timer instead of a cv wait, so
// the wall cost of simulated compute is a few context switches regardless of
// time_scale.
#pragma once

#include <condition_variable>
#include <mutex>

#include "mpisim/sched.hpp"

namespace mpisim {

class CpuModel {
public:
  /// `cores` virtual cores; `time_scale` wall-seconds per virtual second.
  /// With a scheduler the model blocks via task yields and charged sleeps
  /// retire in virtual time; without one it keeps mutex/cv semantics.
  CpuModel(unsigned cores, double time_scale, TaskScheduler* sched = nullptr);

  /// Occupy one core for `virtual_seconds` of simulated work. Blocks while
  /// all cores are busy (FIFO-ish fairness via condition variable).
  void execute(double virtual_seconds);

  /// Total virtual compute charged so far (sum over all ranks).
  [[nodiscard]] double total_charged() const;

  [[nodiscard]] unsigned cores() const { return cores_; }
  [[nodiscard]] double time_scale() const { return time_scale_; }

  /// Abort hook: wake every waiter; subsequent execute() calls return
  /// immediately without sleeping.
  void shutdown();

private:
  void execute_tasks(double virtual_seconds);

  unsigned cores_;
  double time_scale_;
  TaskScheduler* sched_;
  TaskScheduler::WaitQueue core_q_;  // tasks waiting for a free core
  mutable std::mutex mu_;
  std::condition_variable cv_;
  unsigned busy_ = 0;
  bool shutdown_ = false;
  double charged_ = 0.0;
};

}  // namespace mpisim

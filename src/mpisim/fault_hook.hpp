// Fault-injection hook: the substrate's second extension seam, the chaos
// counterpart of ReplayHook. A World configured with a FaultHook consults it
//
//   * at entry of every blocking substrate call a rank makes (send, receive,
//     probe, barrier, compute) — the hook may throw RankKilledError there to
//     simulate that rank dying mid-run;
//   * when computing a message's delivery time — the hook adds a deterministic
//     extra delay (jitter), which can reorder wildcard matches.
//
// The World gives an injected crash different semantics from any other
// exception: the rank is marked dead instead of poisoning the job with
// first_error_, surviving ranks keep running, and once the hook's grace
// period expires (or every other rank has finished) the job is torn down
// with kPeerDeadAbortCode — the simulated analogue of MPI noticing a dead
// peer. See src/fault/ for the concrete seeded implementation and
// docs/FAULTS.md for the user-facing story.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace mpisim {

/// Thrown by FaultHook::at_call in the victim rank's current execution
/// context (its thread under `-piexec=threads`, its fiber under
/// `-piexec=tasks`). Not derived from AbortedError on purpose: an aborted
/// rank is collateral damage, a killed rank is the cause.
class RankKilledError : public util::Error {
public:
  RankKilledError(int rank, const std::string& what)
      : util::Error(what), rank_(rank) {}
  [[nodiscard]] int rank() const { return rank_; }

private:
  int rank_;
};

class FaultHook {
public:
  virtual ~FaultHook() = default;

  /// Called in the acting rank's current execution context (thread or
  /// fiber, depending on the substrate) at entry of each substrate call
  /// (`what` names it: "send", "receive", ...). Throws RankKilledError when
  /// the schedule kills this rank at this call; otherwise returns. At most
  /// one call per rank is in flight at a time, in that rank's program order.
  virtual void at_call(int rank, const char* what) = 0;

  /// Extra delivery delay in wall seconds (>= 0) for the message identified
  /// by its run-stable identity (src, dst, per-pair sequence number). Must
  /// be a pure function of that identity so the schedule is independent of
  /// thread interleaving.
  virtual double message_delay(int src, int dst, std::uint64_t pair_seq,
                               std::size_t bytes) = 0;

  /// How long surviving ranks may keep running after the first injected
  /// crash before the World aborts the job with kPeerDeadAbortCode.
  [[nodiscard]] virtual double grace_seconds() const = 0;
};

}  // namespace mpisim

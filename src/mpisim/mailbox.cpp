#include "mpisim/mailbox.hpp"

#include <atomic>
#include <limits>

namespace mpisim {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

Status status_of(const Envelope& e) {
  Status st;
  st.source = e.src;
  st.tag = e.tag;
  st.count = e.payload.size();
  st.send_time = e.send_time;
  return st;
}
}  // namespace

void Mailbox::post(Envelope env) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(env));
  }
  cv_.notify_all();
}

std::size_t Mailbox::find_match(int src, int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Envelope& e = queue_[i];
    if ((src == kAnySource || e.src == src) && (tag == kAnyTag || e.tag == tag))
      return i;
  }
  return kNpos;
}

Envelope Mailbox::receive(int src, int tag, const std::atomic<bool>& aborted,
                          int abort_code) {
  std::unique_lock lk(mu_);
  for (;;) {
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "receive interrupted by abort");
    const std::size_t i = find_match(src, tag);
    if (i == kNpos) {
      cv_.wait(lk);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (queue_[i].deliver_at > now) {
      // Matching message in flight: wait out its latency. Other arrivals
      // notify the cv, so an earlier-deliverable match is picked up.
      cv_.wait_until(lk, queue_[i].deliver_at);
      continue;
    }
    Envelope out = std::move(queue_[i]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    return out;
  }
}

Status Mailbox::probe(int src, int tag, const std::atomic<bool>& aborted,
                      int abort_code) {
  std::unique_lock lk(mu_);
  for (;;) {
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "probe interrupted by abort");
    const std::size_t i = find_match(src, tag);
    if (i == kNpos) {
      cv_.wait(lk);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (queue_[i].deliver_at > now) {
      cv_.wait_until(lk, queue_[i].deliver_at);
      continue;
    }
    return status_of(queue_[i]);
  }
}

std::optional<Status> Mailbox::try_probe(int src, int tag) {
  std::lock_guard lk(mu_);
  const std::size_t i = find_match(src, tag);
  if (i == kNpos) return std::nullopt;
  if (queue_[i].deliver_at > std::chrono::steady_clock::now()) return std::nullopt;
  return status_of(queue_[i]);
}

std::size_t Mailbox::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

void Mailbox::interrupt() { cv_.notify_all(); }

}  // namespace mpisim

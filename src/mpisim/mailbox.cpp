#include "mpisim/mailbox.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

namespace mpisim {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

Status status_of(const Envelope& e) {
  Status st;
  st.source = e.src;
  st.tag = e.tag;
  st.count = e.payload.size();
  st.send_time = e.send_time;
  st.pair_seq = e.pair_seq;
  return st;
}
}  // namespace

void Mailbox::post(Envelope env) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(env));
  }
  cv_.notify_all();
}

std::size_t Mailbox::find_match(int src, int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Envelope& e = queue_[i];
    if ((src == kAnySource || e.src == src) && (tag == kAnyTag || e.tag == tag))
      return i;
  }
  return kNpos;
}

Envelope Mailbox::receive(int src, int tag, const std::atomic<bool>& aborted,
                          int abort_code) {
  std::unique_lock lk(mu_);
  for (;;) {
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "receive interrupted by abort");
    const std::size_t i = find_match(src, tag);
    if (i == kNpos) {
      cv_.wait(lk);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (queue_[i].deliver_at > now) {
      // Matching message in flight: wait out its latency. Other arrivals
      // notify the cv, so an earlier-deliverable match is picked up.
      cv_.wait_until(lk, queue_[i].deliver_at);
      continue;
    }
    Envelope out = std::move(queue_[i]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    return out;
  }
}

Status Mailbox::probe(int src, int tag, const std::atomic<bool>& aborted,
                      int abort_code) {
  std::unique_lock lk(mu_);
  for (;;) {
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "probe interrupted by abort");
    const std::size_t i = find_match(src, tag);
    if (i == kNpos) {
      cv_.wait(lk);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (queue_[i].deliver_at > now) {
      cv_.wait_until(lk, queue_[i].deliver_at);
      continue;
    }
    return status_of(queue_[i]);
  }
}

std::size_t Mailbox::find_exact(int src, std::uint64_t pair_seq) const {
  for (std::size_t i = 0; i < queue_.size(); ++i)
    if (queue_[i].src == src && queue_[i].pair_seq == pair_seq) return i;
  return kNpos;
}

std::size_t Mailbox::wait_exact(std::unique_lock<std::mutex>& lk, int src,
                                std::uint64_t pair_seq,
                                std::chrono::steady_clock::time_point deadline,
                                const std::atomic<bool>& aborted, int abort_code) {
  for (;;) {
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "replay receive interrupted by abort");
    const std::size_t i = find_exact(src, pair_seq);
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return i != kNpos && queue_[i].deliver_at <= now ? i : kNpos;
    if (i == kNpos) {
      cv_.wait_until(lk, deadline);
      continue;
    }
    if (queue_[i].deliver_at > now) {
      cv_.wait_until(lk, std::min(queue_[i].deliver_at, deadline));
      continue;
    }
    return i;
  }
}

std::optional<Envelope> Mailbox::receive_exact(
    int src, std::uint64_t pair_seq, std::chrono::steady_clock::time_point deadline,
    const std::atomic<bool>& aborted, int abort_code) {
  std::unique_lock lk(mu_);
  const std::size_t i = wait_exact(lk, src, pair_seq, deadline, aborted, abort_code);
  if (i == kNpos) return std::nullopt;
  Envelope out = std::move(queue_[i]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
  return out;
}

std::optional<Status> Mailbox::probe_exact(
    int src, std::uint64_t pair_seq, std::chrono::steady_clock::time_point deadline,
    const std::atomic<bool>& aborted, int abort_code) {
  std::unique_lock lk(mu_);
  const std::size_t i = wait_exact(lk, src, pair_seq, deadline, aborted, abort_code);
  if (i == kNpos) return std::nullopt;
  return status_of(queue_[i]);
}

std::optional<Status> Mailbox::try_probe(int src, int tag) {
  std::lock_guard lk(mu_);
  const std::size_t i = find_match(src, tag);
  if (i == kNpos) return std::nullopt;
  if (queue_[i].deliver_at > std::chrono::steady_clock::now()) return std::nullopt;
  return status_of(queue_[i]);
}

std::size_t Mailbox::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

void Mailbox::interrupt() { cv_.notify_all(); }

}  // namespace mpisim

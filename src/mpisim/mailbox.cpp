#include "mpisim/mailbox.hpp"

#include <algorithm>
#include <limits>

namespace mpisim {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();

Status status_of(const Envelope& e) {
  Status st;
  st.source = e.src;
  st.tag = e.tag;
  st.count = e.payload.size();
  st.send_time = e.send_time;
  st.pair_seq = e.pair_seq;
  return st;
}

bool matches(const Envelope& e, int src, int tag) {
  return (src == kAnySource || e.src == src) && (tag == kAnyTag || e.tag == tag);
}
}  // namespace

Mailbox::Mailbox(const VirtualClock* clock, TaskScheduler* sched)
    : clock_(clock), sched_(sched) {}

void Mailbox::post(Envelope env) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(env));
    ++post_count_;
  }
  cv_.notify_all();
  if (sched_ != nullptr) sched_->notify_all(wq_);
}

std::size_t Mailbox::find_match(int src, int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i)
    if (matches(queue_[i], src, tag)) return i;
  return kNpos;
}

Envelope Mailbox::receive(int src, int tag, const std::atomic<bool>& aborted,
                          int abort_code) {
  if (sched_ != nullptr) return receive_tasks(src, tag, aborted, abort_code);
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] {
      return aborted.load(std::memory_order_acquire) || find_match(src, tag) != kNpos;
    });
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "receive interrupted by abort");
    const std::size_t i = find_match(src, tag);
    const double now = clock_->true_time();
    if (queue_[i].deliver_at > now) {
      // Matching message in flight: wait out its latency, abort-wakeable.
      // Other arrivals bump post_count_, so an earlier-deliverable match is
      // picked up by the re-scan.
      const std::uint64_t seen = post_count_;
      cv_.wait_until(lk, clock_->steady_of(queue_[i].deliver_at), [&] {
        return aborted.load(std::memory_order_acquire) || post_count_ != seen;
      });
      continue;
    }
    Envelope out = std::move(queue_[i]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    return out;
  }
}

Envelope Mailbox::receive_tasks(int src, int tag, const std::atomic<bool>& aborted,
                                int abort_code) {
  for (;;) {
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "receive interrupted by abort");
    const std::size_t i = find_match(src, tag);
    if (i == kNpos) {
      sched_->block(wq_);
      continue;
    }
    const double now = clock_->true_time();
    if (queue_[i].deliver_at > now) {
      sched_->block_until(wq_, clock_->sched_time_of(queue_[i].deliver_at));
      continue;
    }
    Envelope out = std::move(queue_[i]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    return out;
  }
}

Status Mailbox::probe(int src, int tag, const std::atomic<bool>& aborted,
                      int abort_code) {
  if (sched_ != nullptr) return probe_tasks(src, tag, aborted, abort_code);
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] {
      return aborted.load(std::memory_order_acquire) || find_match(src, tag) != kNpos;
    });
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "probe interrupted by abort");
    const std::size_t i = find_match(src, tag);
    const double now = clock_->true_time();
    if (queue_[i].deliver_at > now) {
      const std::uint64_t seen = post_count_;
      cv_.wait_until(lk, clock_->steady_of(queue_[i].deliver_at), [&] {
        return aborted.load(std::memory_order_acquire) || post_count_ != seen;
      });
      continue;
    }
    return status_of(queue_[i]);
  }
}

Status Mailbox::probe_tasks(int src, int tag, const std::atomic<bool>& aborted,
                            int abort_code) {
  for (;;) {
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "probe interrupted by abort");
    const std::size_t i = find_match(src, tag);
    if (i == kNpos) {
      sched_->block(wq_);
      continue;
    }
    const double now = clock_->true_time();
    if (queue_[i].deliver_at > now) {
      sched_->block_until(wq_, clock_->sched_time_of(queue_[i].deliver_at));
      continue;
    }
    return status_of(queue_[i]);
  }
}

std::size_t Mailbox::find_exact(int src, std::uint64_t pair_seq) const {
  for (std::size_t i = 0; i < queue_.size(); ++i)
    if (queue_[i].src == src && queue_[i].pair_seq == pair_seq) return i;
  return kNpos;
}

std::size_t Mailbox::wait_exact(std::unique_lock<std::mutex>& lk, int src,
                                std::uint64_t pair_seq, double deadline,
                                const std::atomic<bool>& aborted, int abort_code) {
  for (;;) {
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "replay receive interrupted by abort");
    const std::size_t i = find_exact(src, pair_seq);
    const double now = clock_->true_time();
    if (now >= deadline) return i != kNpos && queue_[i].deliver_at <= now ? i : kNpos;
    if (i == kNpos) {
      cv_.wait_until(lk, clock_->steady_of(deadline), [&] {
        return aborted.load(std::memory_order_acquire) ||
               find_exact(src, pair_seq) != kNpos;
      });
      continue;
    }
    if (queue_[i].deliver_at > now) {
      cv_.wait_until(lk, clock_->steady_of(std::min(queue_[i].deliver_at, deadline)),
                     [&] { return aborted.load(std::memory_order_acquire); });
      continue;
    }
    return i;
  }
}

std::size_t Mailbox::wait_exact_tasks(int src, std::uint64_t pair_seq,
                                      double deadline,
                                      const std::atomic<bool>& aborted,
                                      int abort_code) {
  for (;;) {
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "replay receive interrupted by abort");
    const std::size_t i = find_exact(src, pair_seq);
    const double now = clock_->true_time();
    if (now >= deadline) return i != kNpos && queue_[i].deliver_at <= now ? i : kNpos;
    // The deadline is a virtual timer: if the recorded message can never
    // arrive, every task blocks, virtual time jumps straight to the deadline
    // and the divergence is diagnosed without a wall-clock wait.
    const double bound =
        i == kNpos ? deadline : std::min(queue_[i].deliver_at, deadline);
    sched_->block_until(wq_, clock_->sched_time_of(bound));
  }
}

std::optional<Envelope> Mailbox::receive_exact(int src, std::uint64_t pair_seq,
                                               double deadline,
                                               const std::atomic<bool>& aborted,
                                               int abort_code) {
  std::size_t i = kNpos;
  if (sched_ != nullptr) {
    i = wait_exact_tasks(src, pair_seq, deadline, aborted, abort_code);
  } else {
    std::unique_lock lk(mu_);
    i = wait_exact(lk, src, pair_seq, deadline, aborted, abort_code);
    if (i != kNpos) {
      Envelope out = std::move(queue_[i]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      return out;
    }
    return std::nullopt;
  }
  if (i == kNpos) return std::nullopt;
  Envelope out = std::move(queue_[i]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
  return out;
}

std::optional<Status> Mailbox::probe_exact(int src, std::uint64_t pair_seq,
                                           double deadline,
                                           const std::atomic<bool>& aborted,
                                           int abort_code) {
  if (sched_ != nullptr) {
    const std::size_t i = wait_exact_tasks(src, pair_seq, deadline, aborted, abort_code);
    if (i == kNpos) return std::nullopt;
    return status_of(queue_[i]);
  }
  std::unique_lock lk(mu_);
  const std::size_t i = wait_exact(lk, src, pair_seq, deadline, aborted, abort_code);
  if (i == kNpos) return std::nullopt;
  return status_of(queue_[i]);
}

std::optional<std::size_t> Mailbox::scan_any(
    const std::vector<std::pair<int, int>>& wants, double now,
    double* soonest) const {
  *soonest = kInf;
  for (std::size_t k = 0; k < wants.size(); ++k) {
    for (const Envelope& e : queue_) {
      if (!matches(e, wants[k].first, wants[k].second)) continue;
      if (e.deliver_at <= now) return k;
      *soonest = std::min(*soonest, e.deliver_at);
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> Mailbox::probe_any(
    const std::vector<std::pair<int, int>>& wants, double deadline,
    const std::atomic<bool>& aborted, int abort_code) {
  const bool bounded = deadline >= 0.0;
  if (sched_ != nullptr) {
    for (;;) {
      if (aborted.load(std::memory_order_acquire))
        throw AbortedError(abort_code, "select interrupted by abort");
      const double now = clock_->true_time();
      double soonest = kInf;
      if (auto k = scan_any(wants, now, &soonest)) return k;
      if (bounded && now >= deadline) return std::nullopt;
      double bound = soonest;
      if (bounded) bound = std::min(bound, deadline);
      if (bound == kInf)
        sched_->block(wq_);
      else
        sched_->block_until(wq_, clock_->sched_time_of(bound));
    }
  }
  std::unique_lock lk(mu_);
  for (;;) {
    if (aborted.load(std::memory_order_acquire))
      throw AbortedError(abort_code, "select interrupted by abort");
    const double now = clock_->true_time();
    double soonest = kInf;
    if (auto k = scan_any(wants, now, &soonest)) return k;
    if (bounded && now >= deadline) return std::nullopt;
    double bound = soonest;
    if (bounded) bound = std::min(bound, deadline);
    const std::uint64_t seen = post_count_;
    const auto pred = [&] {
      return aborted.load(std::memory_order_acquire) || post_count_ != seen;
    };
    if (bound == kInf)
      cv_.wait(lk, pred);
    else
      cv_.wait_until(lk, clock_->steady_of(bound), pred);
  }
}

std::optional<Status> Mailbox::try_probe(int src, int tag) {
  std::lock_guard lk(mu_);
  const std::size_t i = find_match(src, tag);
  if (i == kNpos) return std::nullopt;
  if (queue_[i].deliver_at > clock_->true_time()) return std::nullopt;
  return status_of(queue_[i]);
}

std::size_t Mailbox::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

void Mailbox::interrupt() {
  cv_.notify_all();
  if (sched_ != nullptr) sched_->notify_all(wq_);
}

}  // namespace mpisim

// Per-rank message queue with MPI matching semantics.
//
// Every rank owns one Mailbox; senders push copied byte payloads, receivers
// scan in arrival order for the first envelope matching (source, tag) with
// wildcards. Scanning in post order preserves MPI's non-overtaking guarantee
// per (source, destination, tag). A message only becomes *deliverable* once
// its latency-model delivery instant has passed, which is how the substrate
// gives message arrows a nonzero duration in the visual log.
//
// The mailbox runs in one of two modes, chosen by the World:
//   * threads (default): waiters block on a condition variable; every wait
//     is predicate-checked and abort-wakeable.
//   * tasks: waiters park on a TaskScheduler WaitQueue; a single carrier
//     thread runs all ranks, so no lock is held across a block and latency
//     deadlines are virtual timers.
// Delivery instants are true-time seconds (VirtualClock::true_time units),
// which both modes can compare and wait against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "mpisim/clock.hpp"
#include "mpisim/sched.hpp"
#include "mpisim/types.hpp"

namespace mpisim {

struct Envelope {
  int src = 0;
  int tag = 0;
  std::vector<std::uint8_t> payload;
  double send_time = 0.0;   ///< sender-local clock at post time
  double deliver_at = 0.0;  ///< true-time instant the message becomes deliverable
  std::uint64_t seq = 0;    ///< global post order, for deterministic debugging
  /// Per-(src, dst) send counter, 0-based. Unlike `seq` this is stable
  /// across runs, so it is the message identity replay logs record.
  std::uint64_t pair_seq = 0;
};

class Mailbox {
public:
  /// `clock` supplies the true-time base for delivery instants; `sched` is
  /// null in threads mode. Both must outlive the Mailbox.
  explicit Mailbox(const VirtualClock* clock, TaskScheduler* sched = nullptr);

  /// Post a message (never blocks; buffered semantics).
  void post(Envelope env);

  /// Block until a matching message is deliverable, then remove and return
  /// it. `aborted` is polled through the predicate; when it flips the call
  /// throws AbortedError. Matching follows post order.
  Envelope receive(int src, int tag, const std::atomic<bool>& aborted, int abort_code);

  /// Blocking probe: like receive but leaves the message queued.
  Status probe(int src, int tag, const std::atomic<bool>& aborted, int abort_code);

  /// Replay enforcement: wait for the *specific* message (src, pair_seq) to
  /// become deliverable, then remove and return it. Returns nullopt if the
  /// true-time `deadline` passes first (the recorded sender never sent it —
  /// a replay divergence, diagnosed by the caller).
  std::optional<Envelope> receive_exact(int src, std::uint64_t pair_seq,
                                        double deadline,
                                        const std::atomic<bool>& aborted,
                                        int abort_code);

  /// receive_exact without consuming the message.
  std::optional<Status> probe_exact(int src, std::uint64_t pair_seq,
                                    double deadline,
                                    const std::atomic<bool>& aborted, int abort_code);

  /// Select support: block until some (src, tag) pair in `wants` has a
  /// deliverable message and return the index of the first ready pair in
  /// argument order (the select family's lowest-branch preference). With
  /// `deadline` >= 0 (true-time seconds) returns nullopt once it passes;
  /// deadline < 0 waits until a match or abort.
  std::optional<std::size_t> probe_any(
      const std::vector<std::pair<int, int>>& wants, double deadline,
      const std::atomic<bool>& aborted, int abort_code);

  /// Non-blocking probe.
  std::optional<Status> try_probe(int src, int tag);

  /// Number of queued messages (deliverable or not), for diagnostics.
  [[nodiscard]] std::size_t pending() const;

  /// Wake all waiters (used on abort).
  void interrupt();

private:
  // Index of first match in post order, or npos. Caller holds mu_ (threads).
  [[nodiscard]] std::size_t find_match(int src, int tag) const;
  // Index of the exact (src, pair_seq) message, or npos.
  [[nodiscard]] std::size_t find_exact(int src, std::uint64_t pair_seq) const;
  // Shared wait loop for receive_exact/probe_exact (threads mode).
  std::size_t wait_exact(std::unique_lock<std::mutex>& lk, int src,
                         std::uint64_t pair_seq, double deadline,
                         const std::atomic<bool>& aborted, int abort_code);
  // Tasks-mode twins of the blocking entry points.
  Envelope receive_tasks(int src, int tag, const std::atomic<bool>& aborted,
                         int abort_code);
  Status probe_tasks(int src, int tag, const std::atomic<bool>& aborted,
                     int abort_code);
  std::size_t wait_exact_tasks(int src, std::uint64_t pair_seq, double deadline,
                               const std::atomic<bool>& aborted, int abort_code);
  // First pair index with a deliverable match; records the earliest pending
  // delivery instant of any (not-yet-deliverable) match in `soonest`.
  [[nodiscard]] std::optional<std::size_t> scan_any(
      const std::vector<std::pair<int, int>>& wants, double now,
      double* soonest) const;

  const VirtualClock* clock_;
  TaskScheduler* sched_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  TaskScheduler::WaitQueue wq_;  // tasks-mode waiters
  std::deque<Envelope> queue_;
  std::uint64_t post_count_ = 0;  // arrivals; lets multi-pair waits re-scan
};

}  // namespace mpisim

// Per-rank message queue with MPI matching semantics.
//
// Every rank owns one Mailbox; senders push copied byte payloads, receivers
// scan in arrival order for the first envelope matching (source, tag) with
// wildcards. Scanning in post order preserves MPI's non-overtaking guarantee
// per (source, destination, tag). A message only becomes *deliverable* once
// its latency-model delivery instant has passed, which is how the substrate
// gives message arrows a nonzero duration in the visual log.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "mpisim/types.hpp"

namespace mpisim {

struct Envelope {
  int src = 0;
  int tag = 0;
  std::vector<std::uint8_t> payload;
  double send_time = 0.0;  ///< sender-local clock at post time
  std::chrono::steady_clock::time_point deliver_at;
  std::uint64_t seq = 0;  ///< global post order, for deterministic debugging
  /// Per-(src, dst) send counter, 0-based. Unlike `seq` this is stable
  /// across runs, so it is the message identity replay logs record.
  std::uint64_t pair_seq = 0;
};

class Mailbox {
public:
  /// Post a message (never blocks; buffered semantics).
  void post(Envelope env);

  /// Block until a matching message is deliverable, then remove and return
  /// it. `aborted` is polled through the predicate; when it flips the call
  /// throws AbortedError. Matching follows post order.
  Envelope receive(int src, int tag, const std::atomic<bool>& aborted, int abort_code);

  /// Blocking probe: like receive but leaves the message queued.
  Status probe(int src, int tag, const std::atomic<bool>& aborted, int abort_code);

  /// Replay enforcement: wait for the *specific* message (src, pair_seq) to
  /// become deliverable, then remove and return it. Returns nullopt if the
  /// deadline passes first (the recorded sender never sent it — a replay
  /// divergence, diagnosed by the caller).
  std::optional<Envelope> receive_exact(int src, std::uint64_t pair_seq,
                                        std::chrono::steady_clock::time_point deadline,
                                        const std::atomic<bool>& aborted,
                                        int abort_code);

  /// receive_exact without consuming the message.
  std::optional<Status> probe_exact(int src, std::uint64_t pair_seq,
                                    std::chrono::steady_clock::time_point deadline,
                                    const std::atomic<bool>& aborted, int abort_code);

  /// Non-blocking probe.
  std::optional<Status> try_probe(int src, int tag);

  /// Number of queued messages (deliverable or not), for diagnostics.
  [[nodiscard]] std::size_t pending() const;

  /// Wake all waiters (used on abort).
  void interrupt();

private:
  // Index of first match in post order, or npos. Caller holds mu_.
  [[nodiscard]] std::size_t find_match(int src, int tag) const;
  // Index of the exact (src, pair_seq) message, or npos. Caller holds mu_.
  [[nodiscard]] std::size_t find_exact(int src, std::uint64_t pair_seq) const;
  // Shared wait loop for receive_exact/probe_exact. Caller holds mu_ via lk.
  std::size_t wait_exact(std::unique_lock<std::mutex>& lk, int src,
                         std::uint64_t pair_seq,
                         std::chrono::steady_clock::time_point deadline,
                         const std::atomic<bool>& aborted, int abort_code);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
};

}  // namespace mpisim

// Record/replay hook interface for the substrate's nondeterministic
// decisions. The simulator calls out here — it never depends on the replay
// engine itself (src/replay/ implements this interface and the Pilot
// runtime wires it into World::Config).
//
// What is nondeterministic at this layer:
//   * which queued envelope a wildcard receive/probe matches (identified by
//     sender rank + the per-(src,dst) sequence number stamped on send),
//   * the order ranks arrive at a barrier.
// Receives with a fully specified (source, tag) are deterministic by the
// non-overtaking rule and are not reported.
//
// Contract: every method is called on the acting rank's current execution
// context — its own thread under `-piexec=threads`, its fiber on the single
// carrier thread under `-piexec=tasks`. In both substrates at most one call
// per rank is in flight at a time and a rank's calls are totally ordered, so
// an implementation may keep per-rank state lock-free (under tasks the whole
// World is single-threaded, so even cross-rank state needs no lock).
// record_barrier / replay_barrier are called with the World's barrier state
// held exclusively (the barrier mutex under threads; non-preemption between
// yield points under tasks) — an implementation must not call back into the
// World, and must not block.
#pragma once

#include <cstdint>

namespace mpisim {

class ReplayHook {
public:
  /// Identity of one matched message: who sent it and which of that
  /// sender's messages *to this receiver* it was (0-based, stamped by the
  /// sender at post time). Stable across runs, unlike arrival order.
  struct Match {
    int src = 0;
    std::uint64_t pair_seq = 0;
  };

  virtual ~ReplayHook() = default;

  /// false = record mode (record_* is called after each decision);
  /// true = replay mode (replay_* is consulted before each decision).
  [[nodiscard]] virtual bool replaying() const = 0;

  // --- record mode ---------------------------------------------------------
  virtual void record_recv(int rank, const Match& m) = 0;
  virtual void record_probe(int rank, const Match& m) = 0;
  virtual void record_barrier(int rank, int position) = 0;

  // --- replay mode ---------------------------------------------------------
  /// Next recorded decision for `rank`; throws the engine's divergence
  /// error when the log is exhausted or the next event is of another kind.
  virtual Match replay_recv(int rank) = 0;
  virtual Match replay_probe(int rank) = 0;
  virtual int replay_barrier(int rank) = 0;

  /// How long replay enforcement may wait for the recorded message/arrival
  /// before declaring divergence.
  [[nodiscard]] virtual double timeout_seconds() const = 0;

  /// The recorded decision did not materialize in time (message never
  /// arrived, barrier slot never reached). `what` is a short operation name
  /// ("receive", "probe", "barrier"). Must throw.
  [[noreturn]] virtual void replay_failed(int rank, const char* what,
                                          const Match& m) = 0;
};

}  // namespace mpisim

#include "mpisim/sched.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/error.hpp"
#include "util/prng.hpp"
#include "util/strings.hpp"

// --- sanitizer fiber support -------------------------------------------------
// ucontext switches move the stack pointer between unrelated memory regions;
// ASan and TSan must be told or they report false positives (or crash).
#if defined(__SANITIZE_ADDRESS__)
#define MPISIM_ASAN_FIBERS 1
#endif
#if defined(__SANITIZE_THREAD__)
#define MPISIM_TSAN_FIBERS 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MPISIM_ASAN_FIBERS 1
#endif
#if __has_feature(thread_sanitizer)
#define MPISIM_TSAN_FIBERS 1
#endif
#endif

#if defined(MPISIM_ASAN_FIBERS)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
}
#endif
#if defined(MPISIM_TSAN_FIBERS)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif
#if defined(MPISIM_ASAN_FIBERS) || defined(MPISIM_TSAN_FIBERS)
#include <pthread.h>
#endif

namespace mpisim {

namespace {

// The trampoline entered by makecontext has no argument channel wide enough
// for a pointer; the carrier thread is unique per scheduler run, so a
// thread-local hand-off is exact.
thread_local TaskScheduler* g_active_sched = nullptr;

constexpr double kTick = 1e-9;  // virtual seconds charged per dispatch
constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TaskScheduler::TaskScheduler(const Config& cfg) : cfg_(cfg), ntasks_(cfg.ntasks) {
  if (ntasks_ < 1) throw util::UsageError("TaskScheduler needs at least one task");
  tasks_.resize(static_cast<std::size_t>(ntasks_));
  if (cfg_.wall_deadline_seconds > 0.0)
    wall_deadline_ns_ =
        steady_now_ns() +
        static_cast<std::int64_t>(cfg_.wall_deadline_seconds * 1e9);
#if defined(MPISIM_TSAN_FIBERS)
  host_tsan_fiber_ = __tsan_get_current_fiber();
  exit_ctx_.tsan_fiber = host_tsan_fiber_;
#endif
#if defined(MPISIM_ASAN_FIBERS) || defined(MPISIM_TSAN_FIBERS)
  // The host thread's stack bounds, for ASan's benefit when switching back
  // to a host-stack context.
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      host_stack_bottom_ = addr;
      host_stack_size_ = size;
    }
    pthread_attr_destroy(&attr);
  }
  exit_ctx_.stack_bottom = host_stack_bottom_;
  exit_ctx_.stack_size = host_stack_size_;
#endif
  g_active_sched = this;
}

TaskScheduler::~TaskScheduler() {
  free_stacks();
  if (g_active_sched == this) g_active_sched = nullptr;
}

void TaskScheduler::free_stacks() {
#if defined(MPISIM_TSAN_FIBERS)
  for (Task& t : tasks_)
    if (t.ctx.tsan_fiber != nullptr && t.ctx.tsan_fiber != host_tsan_fiber_) {
      __tsan_destroy_fiber(t.ctx.tsan_fiber);
      t.ctx.tsan_fiber = nullptr;
    }
  if (loop_ctx_.tsan_fiber != nullptr && loop_ctx_.tsan_fiber != host_tsan_fiber_) {
    __tsan_destroy_fiber(loop_ctx_.tsan_fiber);
    loop_ctx_.tsan_fiber = nullptr;
  }
#endif
  for (Task& t : tasks_)
    if (t.stack_map != nullptr) {
      ::munmap(t.stack_map, t.map_bytes);
      t.stack_map = nullptr;
    }
  if (loop_stack_map_ != nullptr) {
    ::munmap(loop_stack_map_, loop_map_bytes_);
    loop_stack_map_ = nullptr;
  }
}

namespace {
/// Map `usable` bytes of stack plus a low guard page. Returns {map, total}.
std::pair<void*, std::size_t> map_stack(std::size_t usable) {
  const std::size_t ps = page_size();
  usable = (usable + ps - 1) / ps * ps;
  if (usable < 4 * ps) usable = 4 * ps;  // room for signal frames + libc
  const std::size_t total = usable + ps;
  void* map = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (map == MAP_FAILED)
    throw util::Error(util::strprintf(
        "task scheduler: cannot map a %zu-byte fiber stack (out of address "
        "space or vm.max_map_count?)",
        total));
  // Stacks grow down; a PROT_NONE page at the low end turns overflow into a
  // clean fault instead of silent corruption of the neighbouring stack.
  ::mprotect(map, ps, PROT_NONE);
  return {map, total};
}
}  // namespace

void TaskScheduler::spawn(int id, std::function<void()> body) {
  Task& t = tasks_.at(static_cast<std::size_t>(id));
  if (t.state != State::kUnstarted)
    throw util::UsageError("TaskScheduler::spawn: task already exists");
  auto [map, total] = map_stack(cfg_.stack_bytes);
  t.stack_map = map;
  t.map_bytes = total;
  char* usable = static_cast<char*>(map) + page_size();
  const std::size_t usable_size = total - page_size();
  t.body = std::move(body);
  if (getcontext(&t.ctx.uc) != 0)
    throw util::Error("task scheduler: getcontext failed");
  t.ctx.uc.uc_stack.ss_sp = usable;
  t.ctx.uc.uc_stack.ss_size = usable_size;
  t.ctx.uc.uc_link = nullptr;
  makecontext(&t.ctx.uc, &TaskScheduler::trampoline, 0);
  t.ctx.stack_bottom = usable;
  t.ctx.stack_size = usable_size;
#if defined(MPISIM_TSAN_FIBERS)
  t.ctx.tsan_fiber = __tsan_create_fiber(0);
#endif
  t.state = State::kReady;
  ready_.push_back(id);
}

void TaskScheduler::adopt_external(int id) {
  Task& t = tasks_.at(static_cast<std::size_t>(id));
  if (t.state != State::kUnstarted)
    throw util::UsageError("TaskScheduler::adopt_external: task already exists");
  t.external = true;
  t.state = State::kRunning;
  t.ctx.tsan_fiber = host_tsan_fiber_;
  t.ctx.stack_bottom = host_stack_bottom_;
  t.ctx.stack_size = host_stack_size_;
  current_ = id;
}

void TaskScheduler::switch_ctx(Ctx& from, Ctx& to) {
#if defined(MPISIM_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&from.asan_fake_stack, to.stack_bottom,
                                 to.stack_size);
#endif
#if defined(MPISIM_TSAN_FIBERS)
  __tsan_switch_to_fiber(to.tsan_fiber, 0);
#endif
  swapcontext(&from.uc, &to.uc);
  // Execution resumes here when `from` is switched back to, possibly much
  // later and from a different context.
#if defined(MPISIM_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(from.asan_fake_stack, nullptr, nullptr);
#endif
}

void TaskScheduler::trampoline() {
  TaskScheduler* s = g_active_sched;
#if defined(MPISIM_ASAN_FIBERS)
  // First entry into this fiber: complete the switch that got us here.
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  const int id = s->current_;
  Task& t = s->tasks_[static_cast<std::size_t>(id)];
  t.body();
  t.body = nullptr;  // release captured state while the fiber can still run dtors
  t.state = State::kDone;
  ++s->done_count_;
  s->switch_ctx(t.ctx, s->loop_ctx_);
  // A done task is never dispatched again.
  std::fprintf(stderr, "task scheduler: resumed a finished task\n");
  std::abort();
}

void TaskScheduler::ensure_loop_ctx() {
  if (loop_created_) return;
  auto [map, total] = map_stack(cfg_.stack_bytes);
  loop_stack_map_ = map;
  loop_map_bytes_ = total;
  char* usable = static_cast<char*>(map) + page_size();
  if (getcontext(&loop_ctx_.uc) != 0)
    throw util::Error("task scheduler: getcontext failed");
  loop_ctx_.uc.uc_stack.ss_sp = usable;
  loop_ctx_.uc.uc_stack.ss_size = total - page_size();
  loop_ctx_.uc.uc_link = nullptr;
  // The loop runs on its own stack so that *any* context — the host in
  // run_all, or a blocking external task in start mode — can switch into it.
  makecontext(&loop_ctx_.uc, &TaskScheduler::loop_trampoline, 0);
  loop_ctx_.stack_bottom = usable;
  loop_ctx_.stack_size = total - page_size();
#if defined(MPISIM_TSAN_FIBERS)
  loop_ctx_.tsan_fiber = __tsan_create_fiber(0);
#endif
  loop_created_ = true;
}

void TaskScheduler::loop_trampoline() {
  TaskScheduler* s = g_active_sched;
#if defined(MPISIM_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  s->loop();
}

void TaskScheduler::enter_loop_and_wait() {
  ensure_loop_ctx();
  g_active_sched = this;
  switch_ctx(exit_ctx_, loop_ctx_);
  if (stalled_fatal_) {
    std::fprintf(stderr,
                 "task scheduler: stalled with no stall handler installed "
                 "(every live task blocked)\n");
    std::abort();
  }
}

void TaskScheduler::run_all() {
  if (done_count_ >= ntasks_) return;
  enter_loop_and_wait();
}

void TaskScheduler::finish_external(int id) {
  Task& t = tasks_.at(static_cast<std::size_t>(id));
  if (!t.external || t.state == State::kDone)
    throw util::UsageError("TaskScheduler::finish_external: not a live external task");
  t.state = State::kDone;
  ++done_count_;
  current_ = -1;
  if (switch_hook_) switch_hook_(-1);
  if (done_count_ >= ntasks_ && !loop_created_) return;
  enter_loop_and_wait();
}

void TaskScheduler::drain() {
  for (int id = 0; id < ntasks_; ++id) {
    Task& t = tasks_[static_cast<std::size_t>(id)];
    // A slot that was never spawned (mid-spawn failure) can never run;
    // count it retired or the loop would wait for it forever.
    if (t.state == State::kUnstarted) {
      t.state = State::kDone;
      ++done_count_;
      continue;
    }
    if (t.external && t.state != State::kDone) {
      if (t.state == State::kBlocked) unpark(t, id, false);
      if (t.state == State::kReady)
        ready_.erase(std::remove(ready_.begin(), ready_.end(), id), ready_.end());
      t.state = State::kDone;
      ++done_count_;
    }
  }
  current_ = -1;
  wake_all();
  if (done_count_ >= ntasks_) return;
  enter_loop_and_wait();
}

void TaskScheduler::shuffle_ready_once() {
  shuffled_ = true;
  if (ready_.size() < 2) return;
  // Seeded Fisher–Yates over the initial ready order: *the* deterministic-
  // schedule knob. Everything after this is FIFO.
  util::SplitMix64 rng(cfg_.seed ^ 0x5C4ED5C4ED5C4EDULL);
  for (std::size_t i = ready_.size() - 1; i > 0; --i) {
    const std::size_t j = rng.next() % (i + 1);
    std::swap(ready_[i], ready_[j]);
  }
}

void TaskScheduler::loop() {
  for (;;) {
    if (done_count_ >= ntasks_) {
      switch_ctx(loop_ctx_, exit_ctx_);
      continue;  // re-entered for a later finish_external/drain
    }
    if (!shuffled_) shuffle_ready_once();
    if ((++dispatches_ & 0x3FF) == 0) check_wall_deadline();
    fire_due_timers();
    if (ready_.empty()) {
      if (!timers_.empty() && fire_next_timer()) continue;
      // Nothing ready, nothing timed: the job can never progress again.
      if (stall_handler_) {
        stall_handler_(wall_fired_ ? Stall::kWallDeadline : Stall::kDeadlock);
      }
      if (ready_.empty()) {
        // The handler woke nobody (or none is installed) — bail out rather
        // than spin; enter_loop_and_wait turns this into a fatal error.
        stalled_fatal_ = true;
        switch_ctx(loop_ctx_, exit_ctx_);
      }
      continue;
    }
    const int id = ready_.front();
    ready_.pop_front();
    dispatch(id);
  }
}

void TaskScheduler::dispatch(int id) {
  Task& t = tasks_[static_cast<std::size_t>(id)];
  t.state = State::kRunning;
  current_ = id;
  vnow_ += kTick;
  if (switch_hook_) switch_hook_(id);
  switch_ctx(loop_ctx_, t.ctx);
  current_ = -1;
  if (switch_hook_) switch_hook_(-1);
}

void TaskScheduler::suspend_current() {
  Task& t = tasks_[static_cast<std::size_t>(current_)];
  g_active_sched = this;
  ensure_loop_ctx();
  switch_ctx(t.ctx, loop_ctx_);
  // Resumed: the dispatch that woke us already restored current_/hook state.
}

void TaskScheduler::yield() {
  if (current_ < 0) return;
  Task& t = tasks_[static_cast<std::size_t>(current_)];
  t.state = State::kReady;
  ready_.push_back(current_);
  suspend_current();
}

void TaskScheduler::block(WaitQueue& wq) {
  Task& t = tasks_[static_cast<std::size_t>(current_)];
  t.state = State::kBlocked;
  t.wq = &wq;
  t.timer_fired = false;
  t.timer_token = 0;
  wq.waiters_.push_back(current_);
  suspend_current();
}

bool TaskScheduler::block_until(WaitQueue& wq, double deadline) {
  if (deadline == kNoDeadline) {
    block(wq);
    return true;
  }
  if (deadline <= vnow_) {
    yield();  // already expired, but let others run before the caller re-scans
    return false;
  }
  Task& t = tasks_[static_cast<std::size_t>(current_)];
  t.state = State::kBlocked;
  t.wq = &wq;
  t.timer_fired = false;
  t.timer_token = ++timer_tokens_;
  wq.waiters_.push_back(current_);
  timers_.push(Timer{deadline, t.timer_token, current_});
  suspend_current();
  const bool fired = t.timer_fired;
  t.timer_fired = false;
  return !fired;
}

void TaskScheduler::sleep_until(double deadline) {
  if (current_ < 0 || deadline <= vnow_) return;
  block_until(sleep_q_, deadline);
}

void TaskScheduler::unpark(Task& t, int id, bool fired) {
  if (t.wq != nullptr) {
    auto& w = t.wq->waiters_;
    w.erase(std::remove(w.begin(), w.end(), id), w.end());
    t.wq = nullptr;
  }
  t.timer_token = 0;  // any heap entry is now stale
  t.timer_fired = fired;
  make_ready(id);
}

void TaskScheduler::make_ready(int id) {
  tasks_[static_cast<std::size_t>(id)].state = State::kReady;
  ready_.push_back(id);
}

void TaskScheduler::notify_one(WaitQueue& wq) {
  while (!wq.waiters_.empty()) {
    const int id = wq.waiters_.front();
    wq.waiters_.pop_front();
    Task& t = tasks_[static_cast<std::size_t>(id)];
    if (t.state != State::kBlocked) continue;  // stale entry: already woken
    t.wq = nullptr;
    t.timer_token = 0;
    t.timer_fired = false;
    make_ready(id);
    return;
  }
}

void TaskScheduler::notify_all(WaitQueue& wq) {
  while (!wq.waiters_.empty()) {
    const int id = wq.waiters_.front();
    wq.waiters_.pop_front();
    Task& t = tasks_[static_cast<std::size_t>(id)];
    if (t.state != State::kBlocked) continue;
    t.wq = nullptr;
    t.timer_token = 0;
    t.timer_fired = false;
    make_ready(id);
  }
}

void TaskScheduler::wake_all() {
  for (int id = 0; id < ntasks_; ++id) {
    Task& t = tasks_[static_cast<std::size_t>(id)];
    if (t.state == State::kBlocked) unpark(t, id, false);
  }
}

bool TaskScheduler::fire_next_timer() {
  while (!timers_.empty()) {
    const Timer tm = timers_.top();
    timers_.pop();
    Task& t = tasks_[static_cast<std::size_t>(tm.task)];
    if (t.state != State::kBlocked || t.timer_token != tm.token) continue;
    // Every runnable task has yielded the carrier: virtual time jumps to the
    // earliest pending deadline. This is what retires charged sleeps (and
    // replay timeouts) in simulated rather than wall time.
    if (tm.deadline > vnow_) vnow_ = tm.deadline;
    unpark(t, tm.task, true);
    return true;
  }
  return false;
}

void TaskScheduler::fire_due_timers() {
  while (!timers_.empty()) {
    const Timer tm = timers_.top();
    Task& t = tasks_[static_cast<std::size_t>(tm.task)];
    if (t.state != State::kBlocked || t.timer_token != tm.token) {
      timers_.pop();  // stale entry
      continue;
    }
    if (tm.deadline > vnow_) return;
    timers_.pop();
    unpark(t, tm.task, true);
  }
}

void TaskScheduler::check_wall_deadline() {
  if (wall_deadline_ns_ == 0 || wall_fired_) return;
  if (steady_now_ns() < wall_deadline_ns_) return;
  wall_fired_ = true;
  if (stall_handler_) stall_handler_(Stall::kWallDeadline);
}

}  // namespace mpisim

// Cooperative task scheduler: the `-piexec=tasks` substrate.
//
// Thread-per-rank caps World size at OS thread limits and pays a kernel
// context switch per blocking call. Here a rank is instead a *task* — a
// stackful ucontext fiber — and one carrier thread multiplexes all of them.
// Every blocking point in the substrate (mailbox receive/probe, barrier,
// CpuModel core wait and charged sleep) becomes a yield point that parks the
// task on a WaitQueue and hands the carrier to the next ready task.
//
// Time is virtual: `now()` is a simulated clock that advances by one
// nanosecond per dispatch (so timestamps stay strictly monotone) and jumps
// forward to the earliest pending timer whenever every ready task has run
// dry. A charged compute of 2 s therefore costs microseconds of wall time,
// which is what makes 10k-rank runs practical.
//
// Scheduling is deterministic: the initial ready order is a seeded
// permutation of the spawn order, and thereafter the ready queue is FIFO
// with wakeups enqueued in block order. Two runs with the same seed execute
// the exact same interleaving, which the determinism suite asserts at 1000
// ranks.
//
// Deadlock needs no watchdog thread: when every live task is blocked and no
// timer is pending, nothing can ever run again, so the stall handler fires
// immediately (the World maps it to the watchdog/dead-peer abort codes). A
// wall-clock deadline is still polled between dispatches as a backstop
// against non-yielding spin loops.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

namespace mpisim {

class TaskScheduler {
public:
  struct Config {
    int ntasks = 1;
    std::uint64_t seed = 1;
    /// Usable stack per fiber (rounded up to whole pages; a guard page is
    /// mapped below it so overflow faults instead of corrupting a neighbour).
    std::size_t stack_bytes = 256 * 1024;
    /// Wall-clock backstop polled between dispatches (0 = disabled).
    double wall_deadline_seconds = 0.0;
  };

  /// FIFO of blocked task ids. Embed one next to each blocking condition
  /// (a mailbox, the barrier, the core pool) and pair block() with
  /// notify_all() exactly like a condition variable — wakeups are spurious
  /// from the waiter's point of view, so callers re-check their predicate.
  class WaitQueue {
    friend class TaskScheduler;
    std::deque<int> waiters_;
  };

  enum class Stall : std::uint8_t {
    kDeadlock,      ///< every live task blocked, no pending timer
    kWallDeadline,  ///< the wall-clock backstop expired
  };

  explicit TaskScheduler(const Config& cfg);
  ~TaskScheduler();
  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  // --- setup (host thread) --------------------------------------------------
  /// Create task `id` on its own fiber stack. `body` must handle every
  /// exception itself — nothing may propagate out of a fiber. Throws
  /// util::Error when the stack cannot be mapped.
  void spawn(int id, std::function<void()> body);

  /// Bind task `id` to the *calling* host context instead of a fiber
  /// (World::start's rank 0, which keeps running on the caller's stack).
  /// The task counts as running from this point on.
  void adopt_external(int id);

  /// Invoked with the task id every time a task gains the carrier, and with
  /// -1 when the scheduler itself does. The World swaps the thread-local
  /// current-Comm pointer here.
  void set_switch_hook(std::function<void(int)> hook) {
    switch_hook_ = std::move(hook);
  }

  /// Invoked from the scheduler loop when nothing can make progress. The
  /// handler must unblock at least one task (typically: record an abort code
  /// and wake_all()); a handler that wakes nobody is a fatal error.
  void set_stall_handler(std::function<void(Stall)> handler) {
    stall_handler_ = std::move(handler);
  }

  // --- host-side driving ----------------------------------------------------
  /// Run every spawned task to completion (World::run mode — the host is not
  /// a task). Returns once all tasks are done.
  void run_all();

  /// World::start/finish mode: the external task's body is complete; run all
  /// remaining tasks to completion, then return to the caller.
  void finish_external(int id);

  /// Host-side teardown for an abandoned job: mark external tasks done and
  /// run every remaining fiber until it unwinds (stack objects must be
  /// destroyed). Wakes all blocked tasks first; the caller is expected to
  /// have flipped its abort flag so re-checked predicates throw.
  void drain();

  // --- called from inside a running task ------------------------------------
  /// Id of the running task, or -1 when the scheduler/host context is live.
  [[nodiscard]] int current() const { return current_; }

  /// Virtual time in seconds since construction. Strictly monotone across
  /// dispatches; identical run-to-run for a fixed seed.
  [[nodiscard]] double now() const { return vnow_; }

  /// Re-enqueue the running task at the back of the ready queue and run
  /// others (keeps polling loops live under cooperative scheduling).
  void yield();

  /// Park the running task on `wq` until notify_all(wq) (or wake_all).
  void block(WaitQueue& wq);

  /// block() with a virtual-time deadline. Returns false if the deadline
  /// fired first, true when woken by a notify (re-check the predicate).
  bool block_until(WaitQueue& wq, double deadline);

  /// Park until the virtual deadline passes (or wake_all interrupts).
  void sleep_until(double deadline);

  /// Move every waiter on `wq` to the ready queue, in block order.
  void notify_all(WaitQueue& wq);

  /// Wake only the longest-waiting task on `wq`. For resource handoffs
  /// (one core freed = one waiter can proceed); a notify_all there is a
  /// thundering herd that turns N-rank contention into O(N^2) dispatches.
  void notify_one(WaitQueue& wq);

  /// Wake every blocked or sleeping task (abort path), in task-id order.
  void wake_all();

  [[nodiscard]] int live_tasks() const { return ntasks_ - done_count_; }

private:
  enum class State : std::uint8_t { kUnstarted, kReady, kRunning, kBlocked, kDone };

  /// One switchable execution context plus its sanitizer bookkeeping. Used
  /// for fibers, the scheduler loop, and saved host positions alike.
  struct Ctx {
    ucontext_t uc{};
    void* tsan_fiber = nullptr;        // TSan fiber handle (host handle for
                                       // external/exit contexts)
    void* asan_fake_stack = nullptr;   // saved by ASan when this ctx suspends
    const void* stack_bottom = nullptr;
    std::size_t stack_size = 0;
  };

  struct Task {
    Ctx ctx;
    void* stack_map = nullptr;  // mmap base (nullptr for external tasks)
    std::size_t map_bytes = 0;
    std::function<void()> body;
    State state = State::kUnstarted;
    WaitQueue* wq = nullptr;  // queue this task is parked on, if blocked
    bool external = false;
    bool timer_fired = false;
    std::uint64_t timer_token = 0;  // matches live heap entry; 0 = unarmed
  };

  struct Timer {
    double deadline = 0.0;
    std::uint64_t token = 0;  // global arm order; also the deadline tiebreak
    int task = 0;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.deadline != b.deadline ? a.deadline > b.deadline
                                      : a.token > b.token;
    }
  };

  static void trampoline();
  static void loop_trampoline();
  void loop();
  void dispatch(int id);
  void enter_loop_and_wait();
  void ensure_loop_ctx();
  void suspend_current();
  void make_ready(int id);
  void unpark(Task& t, int id, bool fired);
  void fire_due_timers();
  bool fire_next_timer();
  void check_wall_deadline();
  void shuffle_ready_once();
  void switch_ctx(Ctx& from, Ctx& to);
  void free_stacks();

  Config cfg_;
  int ntasks_ = 0;
  std::vector<Task> tasks_;
  std::deque<int> ready_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  WaitQueue sleep_q_;  // anonymous queue for pure sleepers
  std::uint64_t timer_tokens_ = 0;
  double vnow_ = 0.0;
  int current_ = -1;
  int done_count_ = 0;
  bool shuffled_ = false;
  bool loop_created_ = false;
  bool stalled_fatal_ = false;
  bool wall_fired_ = false;
  std::uint64_t dispatches_ = 0;

  Ctx loop_ctx_;
  Ctx exit_ctx_;
  void* loop_stack_map_ = nullptr;
  std::size_t loop_map_bytes_ = 0;
  void* host_tsan_fiber_ = nullptr;
  const void* host_stack_bottom_ = nullptr;
  std::size_t host_stack_size_ = 0;
  std::int64_t wall_deadline_ns_ = 0;  // steady-clock ns; 0 = disabled

  std::function<void(int)> switch_hook_;
  std::function<void(Stall)> stall_handler_;
};

}  // namespace mpisim

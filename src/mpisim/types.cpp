#include "mpisim/types.hpp"

#include <algorithm>
#include <cstring>

namespace mpisim {

std::size_t datatype_size(Datatype dt) {
  switch (dt) {
    case Datatype::kByte: return 1;
    case Datatype::kChar: return sizeof(char);
    case Datatype::kInt: return sizeof(int);
    case Datatype::kUnsigned: return sizeof(unsigned);
    case Datatype::kLong: return sizeof(long);
    case Datatype::kUnsignedLong: return sizeof(unsigned long);
    case Datatype::kLongLong: return sizeof(long long);
    case Datatype::kUnsignedLongLong: return sizeof(unsigned long long);
    case Datatype::kFloat: return sizeof(float);
    case Datatype::kDouble: return sizeof(double);
  }
  throw util::UsageError("datatype_size: bad datatype");
}

std::string datatype_name(Datatype dt) {
  switch (dt) {
    case Datatype::kByte: return "byte";
    case Datatype::kChar: return "char";
    case Datatype::kInt: return "int";
    case Datatype::kUnsigned: return "unsigned";
    case Datatype::kLong: return "long";
    case Datatype::kUnsignedLong: return "unsigned long";
    case Datatype::kLongLong: return "long long";
    case Datatype::kUnsignedLongLong: return "unsigned long long";
    case Datatype::kFloat: return "float";
    case Datatype::kDouble: return "double";
  }
  return "?";
}

std::string op_name(Op op) {
  switch (op) {
    case Op::kSum: return "sum";
    case Op::kProd: return "prod";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kLand: return "land";
    case Op::kLor: return "lor";
    case Op::kBand: return "band";
    case Op::kBor: return "bor";
  }
  return "?";
}

namespace {

template <typename T>
void apply_arith(Op op, T* acc, const T* in, std::size_t count) {
  switch (op) {
    case Op::kSum:
      for (std::size_t i = 0; i < count; ++i) acc[i] = static_cast<T>(acc[i] + in[i]);
      return;
    case Op::kProd:
      for (std::size_t i = 0; i < count; ++i) acc[i] = static_cast<T>(acc[i] * in[i]);
      return;
    case Op::kMin:
      for (std::size_t i = 0; i < count; ++i) acc[i] = std::min(acc[i], in[i]);
      return;
    case Op::kMax:
      for (std::size_t i = 0; i < count; ++i) acc[i] = std::max(acc[i], in[i]);
      return;
    default: break;
  }
  if constexpr (std::is_integral_v<T>) {
    switch (op) {
      case Op::kLand:
        for (std::size_t i = 0; i < count; ++i)
          acc[i] = static_cast<T>((acc[i] != 0) && (in[i] != 0));
        return;
      case Op::kLor:
        for (std::size_t i = 0; i < count; ++i)
          acc[i] = static_cast<T>((acc[i] != 0) || (in[i] != 0));
        return;
      case Op::kBand:
        for (std::size_t i = 0; i < count; ++i) acc[i] = static_cast<T>(acc[i] & in[i]);
        return;
      case Op::kBor:
        for (std::size_t i = 0; i < count; ++i) acc[i] = static_cast<T>(acc[i] | in[i]);
        return;
      default: break;
    }
  }
  throw util::UsageError("reduce_apply: op " + op_name(op) +
                         " not valid for this datatype");
}

}  // namespace

void reduce_apply(Op op, Datatype dt, void* acc, const void* in, std::size_t count) {
  switch (dt) {
    case Datatype::kByte:
    case Datatype::kChar:
      apply_arith(op, static_cast<char*>(acc), static_cast<const char*>(in), count);
      return;
    case Datatype::kInt:
      apply_arith(op, static_cast<int*>(acc), static_cast<const int*>(in), count);
      return;
    case Datatype::kUnsigned:
      apply_arith(op, static_cast<unsigned*>(acc), static_cast<const unsigned*>(in), count);
      return;
    case Datatype::kLong:
      apply_arith(op, static_cast<long*>(acc), static_cast<const long*>(in), count);
      return;
    case Datatype::kUnsignedLong:
      apply_arith(op, static_cast<unsigned long*>(acc),
                  static_cast<const unsigned long*>(in), count);
      return;
    case Datatype::kLongLong:
      apply_arith(op, static_cast<long long*>(acc), static_cast<const long long*>(in),
                  count);
      return;
    case Datatype::kUnsignedLongLong:
      apply_arith(op, static_cast<unsigned long long*>(acc),
                  static_cast<const unsigned long long*>(in), count);
      return;
    case Datatype::kFloat:
      apply_arith(op, static_cast<float*>(acc), static_cast<const float*>(in), count);
      return;
    case Datatype::kDouble:
      apply_arith(op, static_cast<double*>(acc), static_cast<const double*>(in), count);
      return;
  }
  throw util::UsageError("reduce_apply: bad datatype");
}

}  // namespace mpisim

// Basic vocabulary of the MPI substrate: datatypes, reduction ops, receive
// status, wildcards, and the error types blocked operations can raise.
//
// mpisim is a clean-room, in-process subset of MPI sufficient to host the
// Pilot library: point-to-point messages with (source, tag) matching and
// non-overtaking order, probes, collectives, wall clock, and abort. Ranks
// are threads in one address space; messages are copied byte buffers, so the
// semantics match a real distributed run (no accidental sharing).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace mpisim {

/// Matches any sender rank (like MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Matches any tag (like MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// Element types understood by typed collectives (reduce) and by the Pilot
/// format engine. Point-to-point transfers are untyped byte buffers.
enum class Datatype : std::uint8_t {
  kByte,
  kChar,
  kInt,
  kUnsigned,
  kLong,
  kUnsignedLong,
  kLongLong,
  kUnsignedLongLong,
  kFloat,
  kDouble,
};

/// Size in bytes of one element of `dt`.
std::size_t datatype_size(Datatype dt);

/// Human-readable datatype name ("int", "double", ...).
std::string datatype_name(Datatype dt);

/// Reduction operators for Comm::reduce / allreduce.
enum class Op : std::uint8_t { kSum, kProd, kMin, kMax, kLand, kLor, kBand, kBor };

std::string op_name(Op op);

/// Elementwise `acc = acc (op) in` over `count` elements of type `dt`.
/// Bitwise/logical ops are rejected for floating types (UsageError).
void reduce_apply(Op op, Datatype dt, void* acc, const void* in, std::size_t count);

/// Result of a receive or probe.
struct Status {
  int source = kAnySource;   ///< actual sender rank
  int tag = kAnyTag;         ///< actual message tag
  std::size_t count = 0;     ///< payload size in bytes
  double send_time = 0.0;    ///< sender's clock when the message was posted
  /// Index of this message among all the sender posted to this receiver
  /// (0-based). The run-stable identity record/replay logs use.
  std::uint64_t pair_seq = 0;
};

/// Thrown out of any blocked/blocking substrate call once the world has
/// been aborted (Comm::abort or a crashed rank).
class AbortedError : public util::Error {
public:
  AbortedError(int code, const std::string& what)
      : util::Error(what), code_(code) {}
  [[nodiscard]] int code() const { return code_; }

private:
  int code_;
};

/// Thrown by World::run when the watchdog expires (a backstop so a deadlocked
/// test run terminates even when Pilot's own deadlock detector is off).
class TimeoutError : public util::Error {
public:
  explicit TimeoutError(const std::string& what) : util::Error(what) {}
};

/// Thrown by World::run/start when the OS refuses to create a rank's thread
/// (or map a task stack) mid-spawn — typically at large nprocs. The World
/// aborts and joins every already-spawned rank before this propagates, so
/// the job never leaks running threads.
class SpawnError : public util::Error {
public:
  SpawnError(int rank, const std::string& what) : util::Error(what), rank_(rank) {}
  /// The rank whose execution context could not be created.
  [[nodiscard]] int rank() const { return rank_; }

private:
  int rank_;
};

}  // namespace mpisim

#include "mpisim/world.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <system_error>
#include <thread>

#include "util/strings.hpp"

namespace mpisim {

namespace {
// Under threads this is genuinely per-rank; under tasks all ranks share the
// carrier thread and the scheduler's switch hook rewrites it per dispatch.
thread_local Comm* tls_comm = nullptr;

struct TlsCommGuard {
  explicit TlsCommGuard(Comm* c) { tls_comm = c; }
  ~TlsCommGuard() { tls_comm = nullptr; }
};

std::unique_ptr<TaskScheduler> make_sched(const World::Config& cfg) {
  if (cfg.exec != ExecMode::kTasks) return nullptr;
  TaskScheduler::Config sc;
  sc.ntasks = cfg.nprocs;
  sc.seed = cfg.seed;
  sc.stack_bytes = cfg.task_stack_bytes;
  sc.wall_deadline_seconds = cfg.watchdog_seconds;
  return std::make_unique<TaskScheduler>(sc);
}
}  // namespace

Comm* World::current() { return tls_comm; }

World::World(Config cfg)
    : cfg_(cfg),
      sched_(make_sched(cfg)),
      clock_(cfg.nprocs, cfg.clock_max_offset, cfg.clock_max_skew, cfg.seed),
      cpu_(cfg.cpu_cores == 0 ? static_cast<unsigned>(cfg.nprocs) : cfg.cpu_cores,
           cfg.time_scale, sched_.get()) {
  if (cfg_.nprocs < 1) throw util::UsageError("World needs at least one rank");
  clock_.bind_scheduler(sched_.get());
  mailboxes_.reserve(static_cast<std::size_t>(cfg_.nprocs));
  for (int r = 0; r < cfg_.nprocs; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>(&clock_, sched_.get()));
}

World::~World() {
  // Safety net: a World abandoned mid-job (exception between start() and
  // finish()) must not terminate the process via ~thread on a joinable
  // thread — and under tasks, live fibers must unwind so their stack
  // objects are destroyed. Abort the job and wait everyone out.
  if (!threads_.empty()) {
    abort_from(-13);
    for (auto& t : threads_)
      if (t.joinable()) t.join();
    stop_watchdog_.store(true, std::memory_order_release);
  }
  if (sched_ != nullptr && sched_->live_tasks() > 0 &&
      ran_.load(std::memory_order_acquire)) {
    abort_from(-13);
    tls_comm = nullptr;
    sched_->drain();
  }
  if (watchdog_.joinable()) watchdog_.join();
}

void World::check_rank(int rank, const char* what) const {
  if (rank < 0 || rank >= cfg_.nprocs)
    throw util::UsageError(util::strprintf("%s: rank %d out of range [0,%d)", what,
                                           rank, cfg_.nprocs));
}

void World::abort_from(int code) {
  bool expected = false;
  if (aborted_.compare_exchange_strong(expected, true)) {
    abort_code_.store(code);
  }
  for (auto& mb : mailboxes_) mb->interrupt();
  cpu_.shutdown();
  barrier_cv_.notify_all();
  if (sched_ != nullptr) sched_->wake_all();
}

void World::kill_rank(int rank) {
  {
    std::lock_guard lk(crashed_mu_);
    crashed_ranks_.push_back(rank);
    std::sort(crashed_ranks_.begin(), crashed_ranks_.end());
  }
  const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  std::int64_t expected = 0;
  first_crash_ns_.compare_exchange_strong(expected, now_ns);
  // Count released after the timestamp so the grace reaper never observes a
  // crash without its clock.
  crashed_count_.fetch_add(1, std::memory_order_release);
}

std::vector<int> World::crashed_ranks() const {
  std::lock_guard lk(crashed_mu_);
  return crashed_ranks_;
}

void World::spawn_rank(const std::function<int(Comm&)>& fn, int rank) {
  if (cfg_.debug_fail_spawn_at == rank)
    throw std::system_error(
        std::make_error_code(std::errc::resource_unavailable_try_again),
        "debug_fail_spawn_at");
  threads_.emplace_back([this, &fn, rank] {
    Comm comm(this, rank);
    TlsCommGuard guard(&comm);
    try {
      exit_codes_[static_cast<std::size_t>(rank)] = fn(comm);
    } catch (const RankKilledError& e) {
      // Injected crash: mark the rank dead but do not poison the job —
      // survivors keep running until the fault hook's grace period expires.
      kill_rank(e.rank());
    } catch (const AbortedError&) {
      // Expected unwind path once the job is aborted.
    } catch (...) {
      {
        std::lock_guard lk(error_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      abort_from(-1);
    }
    ranks_done_.fetch_add(1, std::memory_order_release);
  });
}

void World::spawn_threads_or_cleanup(const char* who, int first) {
  for (int r = first; r < cfg_.nprocs; ++r) {
    try {
      spawn_rank(rank_fn_, r);
    } catch (const std::system_error& e) {
      // Thread creation failed mid-spawn (EAGAIN at large nprocs, or the
      // debug seam). Already-spawned ranks are running and possibly blocked
      // on peers that will never exist: abort them, join them, and report a
      // named diagnostic instead of leaking joinable threads.
      abort_from(kSpawnFailAbortCode);
      for (auto& t : threads_)
        if (t.joinable()) t.join();
      threads_.clear();
      if (rank0_comm_) {
        tls_comm = nullptr;
        rank0_comm_.reset();
      }
      throw SpawnError(
          r, util::strprintf(
                 "World::%s: could not create a thread for rank %d of %d (%s); "
                 "the %d already-spawned rank(s) were aborted and joined — "
                 "consider -piexec=tasks for worlds this large",
                 who, r, cfg_.nprocs, e.what(), r - first));
    }
  }
}

void World::spawn_watchdog(int expected_done) {
  const bool deadline_enabled = cfg_.watchdog_seconds > 0.0;
  // With a fault hook the watchdog doubles as the dead-peer reaper, so it
  // runs even when the deadline is disabled.
  if (!deadline_enabled && cfg_.fault == nullptr) return;
  watchdog_ = std::thread([this, expected_done, deadline_enabled] {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(cfg_.watchdog_seconds));
    while (!stop_watchdog_.load(std::memory_order_acquire)) {
      const bool done = ranks_done_.load(std::memory_order_acquire) >= expected_done;
      const int crashed = crashed_count_.load(std::memory_order_acquire);
      if (done && crashed == 0) return;
      if (crashed > 0) {
        // A killed rank dooms the job. Survivors get the hook's grace period
        // to flush what they can; once it expires — or once every other rank
        // has already finished — the dead peer is "detected" and the job is
        // torn down. Blocked survivors then unwind with AbortedError carrying
        // kPeerDeadAbortCode, the simulated MPI_Abort-on-dead-peer.
        const auto first = std::chrono::steady_clock::time_point(
            std::chrono::nanoseconds(first_crash_ns_.load(std::memory_order_acquire)));
        const auto grace_end =
            first + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(cfg_.fault->grace_seconds()));
        if (done || std::chrono::steady_clock::now() >= grace_end) {
          abort_from(kPeerDeadAbortCode);
          return;
        }
      }
      if (deadline_enabled && std::chrono::steady_clock::now() >= deadline) {
        timeout_what_ = util::strprintf(
            "watchdog: job did not finish within %.1f s (deadlock?)",
            cfg_.watchdog_seconds);
        timed_out_.store(true);
        abort_from(kWatchdogAbortCode);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
}

// --- tasks substrate ---------------------------------------------------------

void World::task_body(int rank) {
  Comm& comm = *task_comms_[static_cast<std::size_t>(rank)];
  try {
    exit_codes_[static_cast<std::size_t>(rank)] = rank_fn_(comm);
  } catch (const RankKilledError& e) {
    kill_rank(e.rank());
  } catch (const AbortedError&) {
    // Expected unwind path once the job is aborted.
  } catch (...) {
    {
      std::lock_guard lk(error_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    abort_from(-1);
  }
  ranks_done_.fetch_add(1, std::memory_order_release);
}

void World::on_stall(TaskScheduler::Stall kind) {
  // Nothing in the world can make progress. Decide why and abort — the
  // tasks-mode replacement for the watchdog thread, except deadlock is
  // detected instantly instead of after a wall timeout.
  if (!aborted_.load(std::memory_order_acquire)) {
    if (kind == TaskScheduler::Stall::kWallDeadline) {
      timeout_what_ = util::strprintf(
          "watchdog: job did not finish within %.1f s of wall time (deadlock "
          "or runaway loop?)",
          cfg_.watchdog_seconds);
      timed_out_.store(true);
      abort_from(kWatchdogAbortCode);
    } else if (crashed_count_.load(std::memory_order_acquire) > 0) {
      // Survivors of an injected crash are blocked on the dead rank: that is
      // the moment the dead peer is "detected" under tasks.
      abort_from(kPeerDeadAbortCode);
    } else {
      timeout_what_ =
          "task scheduler: every live rank is blocked with no message or "
          "timer that could wake one (deadlock)";
      timed_out_.store(true);
      abort_from(kWatchdogAbortCode);
    }
  }
  // abort_from already woke everyone; make sure of it even on the
  // already-aborted path so the scheduler never sees an unresolvable stall.
  sched_->wake_all();
}

void World::launch_tasks(int first) {
  task_comms_.resize(static_cast<std::size_t>(cfg_.nprocs));
  for (int r = first; r < cfg_.nprocs; ++r)
    task_comms_[static_cast<std::size_t>(r)] =
        std::unique_ptr<Comm>(new Comm(this, r));
  sched_->set_switch_hook([this](int task) {
    if (task < 0) {
      tls_comm = nullptr;
    } else if (task == 0 && rank0_comm_) {
      tls_comm = rank0_comm_.get();
    } else {
      tls_comm = task_comms_[static_cast<std::size_t>(task)].get();
    }
  });
  sched_->set_stall_handler([this](TaskScheduler::Stall k) { on_stall(k); });
  for (int r = first; r < cfg_.nprocs; ++r) {
    try {
      if (cfg_.debug_fail_spawn_at == r)
        throw util::Error("debug_fail_spawn_at");
      sched_->spawn(r, [this, r] { task_body(r); });
    } catch (const util::Error& e) {
      // No fiber has run yet (ranks only execute once the scheduler is
      // driven). Mark the job aborted so ~World's drain unwinds the
      // already-spawned fibers at their first substrate call.
      abort_from(kSpawnFailAbortCode);
      throw SpawnError(
          r, util::strprintf(
                 "World::launch: could not create a task stack for rank %d of "
                 "%d (%s); no rank has run yet",
                 r, cfg_.nprocs, e.what()));
    }
  }
}

World::Result World::conclude() {
  if (sched_ == nullptr) {
    for (auto& t : threads_) t.join();
  }
  // A fault-killed rank always ends the job in an abort, even when every
  // surviving rank finished cleanly before the reaper fired — a chaos run's
  // outcome must not depend on how that race falls.
  if (crashed_count_.load(std::memory_order_acquire) > 0 &&
      !aborted_.load(std::memory_order_acquire))
    abort_from(kPeerDeadAbortCode);
  threads_.clear();
  stop_watchdog_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();

  if (first_error_) std::rethrow_exception(first_error_);
  if (timed_out_.load())
    throw TimeoutError(timeout_what_.empty()
                           ? util::strprintf(
                                 "watchdog: job did not finish within %.1f s "
                                 "(deadlock?)",
                                 cfg_.watchdog_seconds)
                           : timeout_what_);

  Result result;
  result.exit_codes = exit_codes_;
  result.aborted = aborted_.load();
  result.abort_code = abort_code_.load();
  result.timed_out = false;
  result.crashed_ranks = crashed_ranks();
  return result;
}

World::Result World::run(const std::function<int(Comm&)>& fn) {
  bool expected = false;
  if (!ran_.compare_exchange_strong(expected, true))
    throw util::UsageError("World::run may only be called once");

  exit_codes_.assign(static_cast<std::size_t>(cfg_.nprocs), 0);
  rank_fn_ = fn;
  if (sched_ != nullptr) {
    launch_tasks(0);
    sched_->run_all();
    return conclude();
  }
  threads_.reserve(static_cast<std::size_t>(cfg_.nprocs));
  spawn_threads_or_cleanup("run", 0);
  spawn_watchdog(cfg_.nprocs);
  return conclude();
}

Comm& World::start(const std::function<int(Comm&)>& fn) {
  bool expected = false;
  if (!ran_.compare_exchange_strong(expected, true))
    throw util::UsageError("World::start: job already launched");

  exit_codes_.assign(static_cast<std::size_t>(cfg_.nprocs), 0);
  rank_fn_ = fn;
  rank0_comm_.reset(new Comm(this, 0));
  tls_comm = rank0_comm_.get();
  if (sched_ != nullptr) {
    // Rank 0 *is* the calling context: the scheduler adopts it as an
    // external task and ranks 1..n-1 become fibers dispatched whenever
    // rank 0 blocks.
    sched_->adopt_external(0);
    if (cfg_.nprocs > 1) launch_tasks(1);
    return *rank0_comm_;
  }
  threads_.reserve(static_cast<std::size_t>(cfg_.nprocs - 1));
  spawn_threads_or_cleanup("start", 1);
  // Rank 0 is the caller and never bumps ranks_done_; the watchdog only
  // waits for the spawned ranks (a stuck rank 0 still trips the deadline).
  spawn_watchdog(cfg_.nprocs - 1);
  return *rank0_comm_;
}

World::Result World::finish() {
  if (!rank0_comm_)
    throw util::UsageError("World::finish without a matching start()");
  if (sched_ != nullptr) {
    // Rank 0's body is complete; drive every remaining fiber to completion.
    sched_->finish_external(0);
    tls_comm = nullptr;
    rank0_comm_.reset();
    return conclude();
  }
  tls_comm = nullptr;
  rank0_comm_.reset();
  return conclude();
}

// --- Comm -------------------------------------------------------------------

int Comm::size() const { return world_->nprocs(); }

void Comm::fault_check(const char* what) {
  if (FaultHook* f = world_->cfg_.fault) f->at_call(rank_, what);
}

void Comm::send(int dst, int tag, const void* data, std::size_t n) {
  fault_check("send");
  world_->check_rank(dst, "send");
  if (world_->aborted_.load(std::memory_order_acquire))
    throw AbortedError(world_->abort_code_.load(), "send after abort");
  if (n > 0 && data == nullptr) throw util::UsageError("send: null data with n > 0");

  Envelope env;
  env.src = rank_;
  env.tag = tag;
  env.payload.assign(static_cast<const std::uint8_t*>(data),
                     static_cast<const std::uint8_t*>(data) + n);
  env.send_time = wtime();
  env.seq = world_->send_seq_.fetch_add(1, std::memory_order_relaxed);
  env.pair_seq = pair_seq_by_dst_[dst]++;

  double delay = world_->cfg_.msg_latency;
  if (world_->cfg_.msg_bandwidth > 0.0)
    delay += static_cast<double>(n) / world_->cfg_.msg_bandwidth;
  if (FaultHook* f = world_->cfg_.fault)
    delay += f->message_delay(rank_, dst, env.pair_seq, n);
  env.deliver_at = world_->clock_.true_time() + delay;

  world_->mailbox(dst).post(std::move(env));
}

namespace {
double replay_deadline(const VirtualClock& clock, const ReplayHook& hook) {
  return clock.true_time() + hook.timeout_seconds();
}
}  // namespace

Envelope Comm::fetch_envelope(int src, int tag) {
  fault_check("receive");
  ReplayHook* hook = world_->cfg_.replay;
  Mailbox& mb = world_->mailbox(rank_);
  const bool wildcard = src == kAnySource || tag == kAnyTag;
  if (hook != nullptr && wildcard && hook->replaying()) {
    const ReplayHook::Match m = hook->replay_recv(rank_);
    auto env = mb.receive_exact(m.src, m.pair_seq,
                                replay_deadline(world_->clock_, *hook),
                                world_->aborted_, world_->abort_code_.load());
    if (!env) hook->replay_failed(rank_, "receive", m);
    if ((src != kAnySource && env->src != src) || (tag != kAnyTag && env->tag != tag))
      hook->replay_failed(rank_, "receive-filter", m);
    return std::move(*env);
  }
  Envelope env = mb.receive(src, tag, world_->aborted_, world_->abort_code_.load());
  if (hook != nullptr && wildcard) hook->record_recv(rank_, {env.src, env.pair_seq});
  return env;
}

Status Comm::recv(int src, int tag, void* buf, std::size_t cap) {
  if (src != kAnySource) world_->check_rank(src, "recv");
  Envelope env = fetch_envelope(src, tag);
  if (env.payload.size() > cap)
    throw util::UsageError(util::strprintf(
        "recv: message from rank %d tag %d is %zu bytes but buffer holds %zu",
        env.src, env.tag, env.payload.size(), cap));
  if (!env.payload.empty()) std::memcpy(buf, env.payload.data(), env.payload.size());
  world_->delivered_.fetch_add(1, std::memory_order_relaxed);

  Status st;
  st.source = env.src;
  st.tag = env.tag;
  st.count = env.payload.size();
  st.send_time = env.send_time;
  st.pair_seq = env.pair_seq;
  return st;
}

std::pair<Status, std::vector<std::uint8_t>> Comm::recv_any_size(int src, int tag) {
  if (src != kAnySource) world_->check_rank(src, "recv_any_size");
  Envelope env = fetch_envelope(src, tag);
  world_->delivered_.fetch_add(1, std::memory_order_relaxed);
  Status st;
  st.source = env.src;
  st.tag = env.tag;
  st.count = env.payload.size();
  st.send_time = env.send_time;
  st.pair_seq = env.pair_seq;
  return {st, std::move(env.payload)};
}

Status Comm::probe(int src, int tag) {
  fault_check("probe");
  if (src != kAnySource) world_->check_rank(src, "probe");
  ReplayHook* hook = world_->cfg_.replay;
  Mailbox& mb = world_->mailbox(rank_);
  const bool wildcard = src == kAnySource || tag == kAnyTag;
  if (hook != nullptr && wildcard && hook->replaying()) {
    const ReplayHook::Match m = hook->replay_probe(rank_);
    auto st = mb.probe_exact(m.src, m.pair_seq,
                             replay_deadline(world_->clock_, *hook),
                             world_->aborted_, world_->abort_code_.load());
    if (!st) hook->replay_failed(rank_, "probe", m);
    if ((src != kAnySource && st->source != src) || (tag != kAnyTag && st->tag != tag))
      hook->replay_failed(rank_, "probe-filter", m);
    return *st;
  }
  Status st = mb.probe(src, tag, world_->aborted_, world_->abort_code_.load());
  if (hook != nullptr && wildcard) hook->record_probe(rank_, {st.source, st.pair_seq});
  return st;
}

std::optional<Status> Comm::iprobe(int src, int tag) {
  fault_check("iprobe");
  if (src != kAnySource) world_->check_rank(src, "iprobe");
  // Cooperative substrate: a poll is a yield point, or spin loops built on
  // iprobe would starve the very senders they are waiting for.
  if (TaskScheduler* s = world_->sched_.get()) s->yield();
  if (world_->aborted_.load(std::memory_order_acquire))
    throw AbortedError(world_->abort_code_.load(), "iprobe after abort");
  return world_->mailbox(rank_).try_probe(src, tag);
}

std::optional<std::size_t> Comm::probe_any(
    const std::vector<std::pair<int, int>>& wants, double timeout_seconds) {
  fault_check("probe");
  for (const auto& [src, tag] : wants)
    if (src != kAnySource) world_->check_rank(src, "probe_any");
  const double deadline =
      timeout_seconds < 0.0
          ? -1.0
          : world_->clock_.true_time() + timeout_seconds;
  return world_->mailbox(rank_).probe_any(wants, deadline, world_->aborted_,
                                          world_->abort_code_.load());
}

void Comm::barrier() {
  fault_check("barrier");
  World& w = *world_;
  if (w.sched_ != nullptr) {
    barrier_tasks();
    return;
  }
  ReplayHook* hook = w.cfg_.replay;
  std::unique_lock lk(w.barrier_mu_);
  const std::uint64_t my_generation = w.barrier_generation_;
  if (hook != nullptr) {
    if (hook->replaying()) {
      // Wait for this rank's recorded arrival slot. Recorded positions form
      // a permutation of 0..nprocs-1 per barrier instance, so every waiter
      // eventually gets its turn (or the deadline names the divergence).
      const int pos = hook->replay_barrier(rank_);
      const auto deadline =
          w.clock_.steady_of(replay_deadline(w.clock_, *hook));
      w.barrier_cv_.wait_until(lk, deadline, [&] {
        return w.aborted_.load(std::memory_order_acquire) ||
               w.barrier_waiting_ == pos;
      });
      if (w.aborted_.load(std::memory_order_acquire))
        throw AbortedError(w.abort_code_.load(), "barrier interrupted by abort");
      if (w.barrier_waiting_ != pos)
        hook->replay_failed(
            rank_, "barrier",
            {pos, static_cast<std::uint64_t>(w.barrier_waiting_)});
    } else {
      hook->record_barrier(rank_, w.barrier_waiting_);
    }
  }
  if (++w.barrier_waiting_ == w.nprocs()) {
    w.barrier_waiting_ = 0;
    ++w.barrier_generation_;
    lk.unlock();
    w.barrier_cv_.notify_all();
    return;
  }
  // Replaying peers block on the arrival count, not just the generation.
  if (hook != nullptr && hook->replaying()) w.barrier_cv_.notify_all();
  w.barrier_cv_.wait(lk, [&] {
    return w.barrier_generation_ != my_generation ||
           w.aborted_.load(std::memory_order_acquire);
  });
  if (w.barrier_generation_ == my_generation)
    throw AbortedError(w.abort_code_.load(), "barrier interrupted by abort");
}

void Comm::barrier_tasks() {
  // Single carrier: the barrier counters need no mutex, and no lock may be
  // held across a block anyway. Semantics mirror the threads barrier above.
  World& w = *world_;
  TaskScheduler& s = *w.sched_;
  ReplayHook* hook = w.cfg_.replay;
  const std::uint64_t my_generation = w.barrier_generation_;
  const auto is_aborted = [&] {
    return w.aborted_.load(std::memory_order_acquire);
  };
  if (hook != nullptr) {
    if (hook->replaying()) {
      const int pos = hook->replay_barrier(rank_);
      const double deadline =
          w.clock_.sched_time_of(replay_deadline(w.clock_, *hook));
      bool in_time = true;
      while (!is_aborted() && w.barrier_waiting_ != pos &&
             w.barrier_generation_ == my_generation && in_time)
        in_time = s.block_until(w.barrier_wq_, deadline);
      if (is_aborted())
        throw AbortedError(w.abort_code_.load(), "barrier interrupted by abort");
      if (w.barrier_waiting_ != pos)
        hook->replay_failed(
            rank_, "barrier",
            {pos, static_cast<std::uint64_t>(w.barrier_waiting_)});
    } else {
      hook->record_barrier(rank_, w.barrier_waiting_);
    }
  }
  if (++w.barrier_waiting_ == w.nprocs()) {
    w.barrier_waiting_ = 0;
    ++w.barrier_generation_;
    s.notify_all(w.barrier_wq_);
    return;
  }
  // Replaying peers block on the arrival count, not just the generation.
  if (hook != nullptr && hook->replaying()) s.notify_all(w.barrier_wq_);
  while (w.barrier_generation_ == my_generation && !is_aborted())
    s.block(w.barrier_wq_);
  if (w.barrier_generation_ == my_generation)
    throw AbortedError(w.abort_code_.load(), "barrier interrupted by abort");
}

double Comm::wtime() const { return world_->clock_.now(rank_); }
double Comm::true_time() const { return world_->clock_.true_time(); }
void Comm::compute(double virtual_seconds) {
  fault_check("compute");
  world_->cpu_.execute(virtual_seconds);
  if (world_->aborted_.load(std::memory_order_acquire))
    throw AbortedError(world_->abort_code_.load(), "compute interrupted by abort");
}

void Comm::sleep(double seconds) {
  if (seconds > 0.0) {
    if (TaskScheduler* s = world_->sched_.get())
      s->sleep_until(s->now() + seconds);
    else
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  if (world_->aborted_.load(std::memory_order_acquire))
    throw AbortedError(world_->abort_code_.load(), "sleep interrupted by abort");
}

void Comm::abort(int code) {
  world_->abort_from(code);
  throw AbortedError(code, util::strprintf("rank %d called abort(%d)", rank_, code));
}

}  // namespace mpisim

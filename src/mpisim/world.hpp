// World: a simulated MPI job. Each rank receives a Comm handle (the
// substrate's MPI_COMM_WORLD analogue) and runs on one of two substrates:
//
//   * ExecMode::kThreads (default): one OS thread per rank. Faithful
//     preemptive concurrency, but world size is capped by OS thread limits.
//   * ExecMode::kTasks: one stackful fiber per rank, multiplexed by a
//     TaskScheduler on the calling thread. Blocking substrate calls become
//     yield points, time is virtual (charged sleeps retire in simulated
//     time), and scheduling is a seeded deterministic order — which is what
//     makes 1k–10k-rank runs fast and reproducible. See docs/MPISIM.md.
//
// Usage:
//
//   mpisim::World::Config cfg;
//   cfg.nprocs = 4;
//   mpisim::World world(cfg);
//   auto result = world.run([](mpisim::Comm& comm) {
//     if (comm.rank() == 0) { int v = 42; comm.send(1, 7, &v, sizeof v); }
//     if (comm.rank() == 1) { int v; comm.recv(0, 7, &v, sizeof v); }
//     return 0;
//   });
//
// A World runs exactly one job. Abort (Comm::abort or an uncaught exception
// in any rank) interrupts every blocked operation with AbortedError. A
// watchdog aborts deadlocked jobs after Config::watchdog_seconds so tests
// always terminate; under tasks, deadlock is additionally detected the
// moment every live rank is blocked with no pending timer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mpisim/clock.hpp"
#include "mpisim/cpu.hpp"
#include "mpisim/fault_hook.hpp"
#include "mpisim/mailbox.hpp"
#include "mpisim/replay_hook.hpp"
#include "mpisim/sched.hpp"
#include "mpisim/types.hpp"

namespace mpisim {

class World;

/// Which execution substrate carries the ranks (see file comment).
enum class ExecMode : std::uint8_t { kThreads, kTasks };

/// Per-rank communication handle. Valid only inside the rank function and
/// only in its own execution context (thread or fiber).
class Comm {
public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  // --- point-to-point -----------------------------------------------------
  /// Buffered send: copies `n` bytes, never blocks. Tags must be in
  /// [0, kMaxUserTag] for user traffic.
  void send(int dst, int tag, const void* data, std::size_t n);

  /// Blocking receive into a caller buffer of capacity `cap`. Throws
  /// UsageError if the matched message is larger than `cap` (message
  /// truncation is a program bug, as in MPI).
  Status recv(int src, int tag, void* buf, std::size_t cap);

  /// Blocking receive returning the payload (for unknown-length messages).
  std::pair<Status, std::vector<std::uint8_t>> recv_any_size(int src, int tag);

  /// Blocking probe (message stays queued).
  Status probe(int src, int tag);
  /// Non-blocking probe. Under tasks this also yields, so polling loops
  /// keep the cooperative scheduler live.
  std::optional<Status> iprobe(int src, int tag);

  /// Block until one of the (src, tag) pairs in `wants` has a deliverable
  /// message; returns the index of the first ready pair in argument order
  /// (the select family's lowest-branch preference). `timeout_seconds` >= 0
  /// bounds the wait (nullopt on expiry); negative waits until abort.
  std::optional<std::size_t> probe_any(
      const std::vector<std::pair<int, int>>& wants,
      double timeout_seconds = -1.0);

  // --- collectives (all ranks must call in the same order) ----------------
  void barrier();
  void bcast(int root, void* data, std::size_t n);
  void gather(int root, const void* send, std::size_t n_each, void* recvbuf);
  void scatter(int root, const void* sendbuf, std::size_t n_each, void* recvbuf);
  void reduce(int root, Op op, Datatype dt, const void* send, void* recv,
              std::size_t count);
  void allreduce(Op op, Datatype dt, const void* send, void* recv, std::size_t count);

  // --- clock / machine -----------------------------------------------------
  /// Rank-local wall clock (MPI_Wtime analogue; subject to injected drift).
  [[nodiscard]] double wtime() const;
  /// Ground-truth global time (not available on a real cluster).
  [[nodiscard]] double true_time() const;
  /// Charge `virtual_seconds` of compute to the simulated machine.
  void compute(double virtual_seconds);
  /// Sleep this rank for `seconds` of true time without occupying a core
  /// (wall sleep under threads, a virtual timer under tasks). Abort-wakeable.
  void sleep(double seconds);

  /// Abort the whole job (MPI_Abort analogue). Throws AbortedError in this
  /// rank as well — it never returns normally.
  [[noreturn]] void abort(int code);

  [[nodiscard]] World& world() { return *world_; }
  [[nodiscard]] const World& world() const { return *world_; }

private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  /// Shared receive path: consults the replay hook for wildcard matches.
  Envelope fetch_envelope(int src, int tag);

  /// barrier() under the kTasks substrate (single-carrier, no mutex).
  void barrier_tasks();

  /// Entry hook for fault injection: may throw RankKilledError when the
  /// configured schedule kills this rank at this call.
  void fault_check(const char* what);

  World* world_;
  int rank_;
  std::uint64_t collective_seq_ = 0;  // per-rank; identical across ranks by
                                      // the same-order-collectives rule
  /// Per-destination 0-based send counters — the run-stable message identity
  /// replay logs record. Only this rank's context touches it, so it is
  /// lock-free; keyed sparsely so a 10k-rank world does not pay an N² array.
  std::unordered_map<int, std::uint64_t> pair_seq_by_dst_;
};

/// Largest tag available to user traffic; larger tags are reserved for the
/// substrate's internal collectives.
inline constexpr int kMaxUserTag = 0x00FFFFFF;

class World {
public:
  struct Config {
    int nprocs = 1;
    /// Execution substrate (see ExecMode).
    ExecMode exec = ExecMode::kThreads;
    /// Usable stack per rank fiber under kTasks.
    std::size_t task_stack_bytes = 256 * 1024;
    /// Virtual cores of the simulated machine (0 = one per rank).
    unsigned cpu_cores = 0;
    /// Wall seconds per virtual compute second (see CpuModel). Under kTasks
    /// the scaled duration elapses in virtual time instead of wall time.
    double time_scale = 1.0;
    /// Message latency model, in true-time seconds: delivery is delayed by
    /// latency + bytes/bandwidth (bandwidth 0 = infinite).
    double msg_latency = 0.0;
    double msg_bandwidth = 0.0;
    /// Injected per-rank clock error bounds (see VirtualClock).
    double clock_max_offset = 0.0;
    double clock_max_skew = 0.0;
    /// Seeds clock drift and, under kTasks, the deterministic schedule order.
    std::uint64_t seed = 1;
    /// Backstop: abort the job after this much wall time (0 = no watchdog).
    double watchdog_seconds = 60.0;
    /// Record/replay hook for nondeterministic decisions (wildcard receive
    /// matching, barrier arrival order). Not owned; must outlive the World.
    ReplayHook* replay = nullptr;
    /// Fault-injection hook (message jitter, rank kills). Not owned; must
    /// outlive the World. See fault_hook.hpp for the crash semantics.
    FaultHook* fault = nullptr;
    /// Test seam: make spawning this rank fail as if the OS refused, so the
    /// mid-spawn cleanup path is exercisable. -1 = never.
    int debug_fail_spawn_at = -1;
  };

  /// Abort code reported when the watchdog fires (under kTasks also when
  /// the instant deadlock detector trips).
  static constexpr int kWatchdogAbortCode = -86;
  /// Abort code reported when surviving ranks are torn down after a
  /// fault-injected rank crash (the dead-peer-detected diagnostic).
  static constexpr int kPeerDeadAbortCode = -99;
  /// Abort code already-spawned ranks see when a later rank's thread/stack
  /// cannot be created and the job is cleaned up (SpawnError is then thrown).
  static constexpr int kSpawnFailAbortCode = -97;

  explicit World(Config cfg);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  struct Result {
    std::vector<int> exit_codes;  ///< per-rank return values (0 for aborted ranks)
    bool aborted = false;
    int abort_code = 0;
    bool timed_out = false;          ///< aborted by the watchdog
    std::vector<int> crashed_ranks;  ///< ranks killed by fault injection
  };

  /// Run the job: every rank executes `fn`. Rethrows the first non-abort
  /// exception raised by any rank; throws TimeoutError if the watchdog
  /// fired, SpawnError if a rank's execution context could not be created.
  /// Callable exactly once (and exclusive with start()/finish()).
  Result run(const std::function<int(Comm&)>& fn);

  /// Asynchronous launch for host-thread integration (Pilot's PI_StartAll
  /// semantics, where code after the call continues as rank 0): launches
  /// ranks 1..nprocs-1 (threads, or ready fibers under kTasks) and binds the
  /// *calling* context as rank 0. Returns rank 0's Comm, valid until
  /// finish().
  Comm& start(const std::function<int(Comm&)>& fn);

  /// Join a job launched with start(); must be called on the same thread.
  /// Error/timeout semantics match run().
  Result finish();

  [[nodiscard]] int nprocs() const { return cfg_.nprocs; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] VirtualClock& clock() { return clock_; }
  [[nodiscard]] CpuModel& cpu() { return cpu_; }
  /// The task scheduler under kTasks, nullptr under kThreads.
  [[nodiscard]] TaskScheduler* scheduler() { return sched_.get(); }

  /// Total messages successfully delivered (diagnostics / tests).
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool is_aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int abort_code() const { return abort_code_.load(); }

  /// Abort from outside any rank context (host-side teardown). Unlike
  /// Comm::abort this does not throw.
  void force_abort(int code) { abort_from(code); }

  /// Mark `rank` as killed by fault injection. Called internally when a
  /// rank's context dies of RankKilledError; the host thread calls it too
  /// when rank 0 (the start() caller) is the victim. Survivors are torn down
  /// with kPeerDeadAbortCode once the fault hook's grace period expires
  /// (under kTasks: once they finish or the world stalls — grace is
  /// meaningless without wall-clock concurrency).
  void kill_rank(int rank);

  /// Ranks killed by fault injection so far, ascending.
  [[nodiscard]] std::vector<int> crashed_ranks() const;

  /// The Comm of the calling execution context — the rank thread under
  /// kThreads, the running fiber under kTasks — or nullptr outside any.
  /// Lets C-style layers (the PI_* API) find their context implicitly.
  static Comm* current();

private:
  friend class Comm;

  void abort_from(int code);
  Mailbox& mailbox(int rank) { return *mailboxes_.at(static_cast<std::size_t>(rank)); }
  void check_rank(int rank, const char* what) const;
  void spawn_rank(const std::function<int(Comm&)>& fn, int rank);
  void spawn_threads_or_cleanup(const char* who, int first);
  void spawn_watchdog(int expected_done);
  void launch_tasks(int first);
  void task_body(int rank);
  void on_stall(TaskScheduler::Stall kind);
  Result conclude();

  Config cfg_;
  std::unique_ptr<TaskScheduler> sched_;  // kTasks only; before clock_/cpu_
  VirtualClock clock_;
  CpuModel cpu_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
  std::atomic<int> abort_code_{0};
  std::atomic<bool> timed_out_{false};
  std::string timeout_what_;  // set before timed_out_; read after join
  std::atomic<std::uint64_t> send_seq_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<bool> ran_{false};
  std::atomic<int> ranks_done_{0};

  // Fault-injection state: ranks killed by the hook, and when the first one
  // died (steady-clock ns; the grace reaper keys off it).
  mutable std::mutex crashed_mu_;
  std::vector<int> crashed_ranks_;
  std::atomic<int> crashed_count_{0};
  std::atomic<std::int64_t> first_crash_ns_{0};

  // Execution-context management shared by run() and start()/finish().
  std::vector<std::thread> threads_;            // kThreads
  std::vector<std::unique_ptr<Comm>> task_comms_;  // kTasks (slot 0 unused in start mode)
  std::thread watchdog_;
  std::atomic<bool> stop_watchdog_{false};
  std::vector<int> exit_codes_;
  std::exception_ptr first_error_;
  std::mutex error_mu_;
  std::function<int(Comm&)> rank_fn_;  // keeps the callable alive for ranks
  std::unique_ptr<Comm> rank0_comm_;   // start() mode only

  // Barrier state
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  TaskScheduler::WaitQueue barrier_wq_;  // kTasks waiters
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace mpisim

// World: a simulated MPI job. Spawns one thread per rank, each receiving a
// Comm handle (the substrate's MPI_COMM_WORLD analogue).
//
// Usage:
//
//   mpisim::World::Config cfg;
//   cfg.nprocs = 4;
//   mpisim::World world(cfg);
//   auto result = world.run([](mpisim::Comm& comm) {
//     if (comm.rank() == 0) { int v = 42; comm.send(1, 7, &v, sizeof v); }
//     if (comm.rank() == 1) { int v; comm.recv(0, 7, &v, sizeof v); }
//     return 0;
//   });
//
// A World runs exactly one job. Abort (Comm::abort or an uncaught exception
// in any rank) interrupts every blocked operation with AbortedError. A
// watchdog aborts deadlocked jobs after Config::watchdog_seconds so tests
// always terminate.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "mpisim/clock.hpp"
#include "mpisim/cpu.hpp"
#include "mpisim/fault_hook.hpp"
#include "mpisim/mailbox.hpp"
#include "mpisim/replay_hook.hpp"
#include "mpisim/types.hpp"

namespace mpisim {

class World;

/// Per-rank communication handle. Valid only inside the rank function and
/// only on its own thread.
class Comm {
public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  // --- point-to-point -----------------------------------------------------
  /// Buffered send: copies `n` bytes, never blocks. Tags must be in
  /// [0, kMaxUserTag] for user traffic.
  void send(int dst, int tag, const void* data, std::size_t n);

  /// Blocking receive into a caller buffer of capacity `cap`. Throws
  /// UsageError if the matched message is larger than `cap` (message
  /// truncation is a program bug, as in MPI).
  Status recv(int src, int tag, void* buf, std::size_t cap);

  /// Blocking receive returning the payload (for unknown-length messages).
  std::pair<Status, std::vector<std::uint8_t>> recv_any_size(int src, int tag);

  /// Blocking probe (message stays queued).
  Status probe(int src, int tag);
  /// Non-blocking probe.
  std::optional<Status> iprobe(int src, int tag);

  // --- collectives (all ranks must call in the same order) ----------------
  void barrier();
  void bcast(int root, void* data, std::size_t n);
  void gather(int root, const void* send, std::size_t n_each, void* recvbuf);
  void scatter(int root, const void* sendbuf, std::size_t n_each, void* recvbuf);
  void reduce(int root, Op op, Datatype dt, const void* send, void* recv,
              std::size_t count);
  void allreduce(Op op, Datatype dt, const void* send, void* recv, std::size_t count);

  // --- clock / machine -----------------------------------------------------
  /// Rank-local wall clock (MPI_Wtime analogue; subject to injected drift).
  [[nodiscard]] double wtime() const;
  /// Ground-truth global time (not available on a real cluster).
  [[nodiscard]] double true_time() const;
  /// Charge `virtual_seconds` of compute to the simulated machine.
  void compute(double virtual_seconds);

  /// Abort the whole job (MPI_Abort analogue). Throws AbortedError in this
  /// rank as well — it never returns normally.
  [[noreturn]] void abort(int code);

  [[nodiscard]] World& world() { return *world_; }
  [[nodiscard]] const World& world() const { return *world_; }

private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  /// Shared receive path: consults the replay hook for wildcard matches.
  Envelope fetch_envelope(int src, int tag);

  /// Entry hook for fault injection: may throw RankKilledError when the
  /// configured schedule kills this rank at this call.
  void fault_check(const char* what);

  World* world_;
  int rank_;
  std::uint64_t collective_seq_ = 0;  // per-rank; identical across ranks by
                                      // the same-order-collectives rule
};

/// Largest tag available to user traffic; larger tags are reserved for the
/// substrate's internal collectives.
inline constexpr int kMaxUserTag = 0x00FFFFFF;

class World {
public:
  struct Config {
    int nprocs = 1;
    /// Virtual cores of the simulated machine (0 = one per rank).
    unsigned cpu_cores = 0;
    /// Wall seconds per virtual compute second (see CpuModel).
    double time_scale = 1.0;
    /// Message latency model, in *wall* seconds: delivery is delayed by
    /// latency + bytes/bandwidth (bandwidth 0 = infinite).
    double msg_latency = 0.0;
    double msg_bandwidth = 0.0;
    /// Injected per-rank clock error bounds (see VirtualClock).
    double clock_max_offset = 0.0;
    double clock_max_skew = 0.0;
    std::uint64_t seed = 1;
    /// Backstop: abort the job after this much wall time (0 = no watchdog).
    double watchdog_seconds = 60.0;
    /// Record/replay hook for nondeterministic decisions (wildcard receive
    /// matching, barrier arrival order). Not owned; must outlive the World.
    ReplayHook* replay = nullptr;
    /// Fault-injection hook (message jitter, rank kills). Not owned; must
    /// outlive the World. See fault_hook.hpp for the crash semantics.
    FaultHook* fault = nullptr;
  };

  /// Abort code reported when the watchdog fires.
  static constexpr int kWatchdogAbortCode = -86;
  /// Abort code reported when surviving ranks are torn down after a
  /// fault-injected rank crash (the dead-peer-detected diagnostic).
  static constexpr int kPeerDeadAbortCode = -99;

  explicit World(Config cfg);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  struct Result {
    std::vector<int> exit_codes;  ///< per-rank return values (0 for aborted ranks)
    bool aborted = false;
    int abort_code = 0;
    bool timed_out = false;          ///< aborted by the watchdog
    std::vector<int> crashed_ranks;  ///< ranks killed by fault injection
  };

  /// Run the job: every rank executes `fn`. Rethrows the first non-abort
  /// exception raised by any rank; throws TimeoutError if the watchdog
  /// fired. Callable exactly once (and exclusive with start()/finish()).
  Result run(const std::function<int(Comm&)>& fn);

  /// Asynchronous launch for host-thread integration (Pilot's PI_StartAll
  /// semantics, where code after the call continues as rank 0): spawns
  /// ranks 1..nprocs-1 on new threads and binds the *calling* thread as
  /// rank 0. Returns rank 0's Comm, valid until finish().
  Comm& start(const std::function<int(Comm&)>& fn);

  /// Join a job launched with start(); must be called on the same thread.
  /// Error/timeout semantics match run().
  Result finish();

  [[nodiscard]] int nprocs() const { return cfg_.nprocs; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] VirtualClock& clock() { return clock_; }
  [[nodiscard]] CpuModel& cpu() { return cpu_; }

  /// Total messages successfully delivered (diagnostics / tests).
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool is_aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int abort_code() const { return abort_code_.load(); }

  /// Abort from outside any rank thread (host-side teardown). Unlike
  /// Comm::abort this does not throw.
  void force_abort(int code) { abort_from(code); }

  /// Mark `rank` as killed by fault injection. Called internally when a
  /// spawned rank dies of RankKilledError; the host thread calls it too when
  /// rank 0 (the start() caller) is the victim. Survivors are torn down with
  /// kPeerDeadAbortCode once the fault hook's grace period expires.
  void kill_rank(int rank);

  /// Ranks killed by fault injection so far, ascending.
  [[nodiscard]] std::vector<int> crashed_ranks() const;

  /// The Comm of the calling thread, or nullptr outside a rank thread.
  /// Lets C-style layers (the PI_* API) find their context implicitly.
  static Comm* current();

private:
  friend class Comm;

  void abort_from(int code);
  Mailbox& mailbox(int rank) { return *mailboxes_.at(static_cast<std::size_t>(rank)); }
  void check_rank(int rank, const char* what) const;
  void spawn_rank(const std::function<int(Comm&)>& fn, int rank);
  void spawn_watchdog(int expected_done);
  Result join_all();

  Config cfg_;
  VirtualClock clock_;
  CpuModel cpu_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
  std::atomic<int> abort_code_{0};
  std::atomic<bool> timed_out_{false};
  std::atomic<std::uint64_t> send_seq_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> pair_seq_;  // [src * nprocs + dst]
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<bool> ran_{false};
  std::atomic<int> ranks_done_{0};

  // Fault-injection state: ranks killed by the hook, and when the first one
  // died (steady-clock ns; the grace reaper keys off it).
  mutable std::mutex crashed_mu_;
  std::vector<int> crashed_ranks_;
  std::atomic<int> crashed_count_{0};
  std::atomic<std::int64_t> first_crash_ns_{0};

  // Thread management shared by run() and start()/finish().
  std::vector<std::thread> threads_;
  std::thread watchdog_;
  std::atomic<bool> stop_watchdog_{false};
  std::vector<int> exit_codes_;
  std::exception_ptr first_error_;
  std::mutex error_mu_;
  std::function<int(Comm&)> rank_fn_;  // keeps the callable alive for threads
  std::unique_ptr<Comm> rank0_comm_;   // start() mode only

  // Barrier state
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace mpisim

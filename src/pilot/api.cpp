// The C-style PI_* entry points: unpack varargs, capture the call site, and
// delegate to the installed Runtime.
#include <cstdarg>
#include <memory>

#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"

PI_PROCESS* PI_MAIN = nullptr;

namespace {

pilot::CallSite at(const char* file, int line) { return pilot::CallSite{file, line}; }

}  // namespace

int PI_Configure_(const char* file, int line, int* argc, char*** argv) {
  if (argc == nullptr || argv == nullptr)
    throw pilot::PilotError("PI_Configure: argc/argv must not be null");
  // Parse (and strip) Pilot's own options, then install a fresh runtime —
  // the same job MPI_Init + option scanning does in real Pilot.
  pilot::Options opts = pilot::Options::parse(argc, argv);
  auto runtime = std::make_unique<pilot::Runtime>(std::move(opts));
  const int np = runtime->configure(at(file, line));
  pilot::Runtime::install(std::move(runtime));
  PI_MAIN = pilot::Runtime::current()->main_process();
  return np;
}

PI_PROCESS* PI_CreateProcess_(const char* file, int line, int (*work)(int, void*),
                              int index, void* arg2) {
  return pilot::Runtime::require(at(file, line))
      .create_process(at(file, line), work, index, arg2);
}

PI_CHANNEL* PI_CreateChannel_(const char* file, int line, PI_PROCESS* from,
                              PI_PROCESS* to) {
  return pilot::Runtime::require(at(file, line))
      .create_channel(at(file, line), from, to);
}

PI_BUNDLE* PI_CreateBundle_(const char* file, int line, PI_BUNUSE usage,
                            PI_CHANNEL* const channels[], int size) {
  return pilot::Runtime::require(at(file, line))
      .create_bundle(at(file, line), usage, channels, size);
}

PI_CHANNEL** PI_CopyChannels_(const char* file, int line, PI_COPYDIR direction,
                              PI_CHANNEL* const channels[], int size) {
  return pilot::Runtime::require(at(file, line))
      .copy_channels(at(file, line), direction, channels, size);
}

void PI_StartAll_(const char* file, int line) {
  pilot::Runtime::require(at(file, line)).start_all(at(file, line));
}

void PI_StopMain_(const char* file, int line, int status) {
  pilot::Runtime::require(at(file, line)).stop_main(at(file, line), status);
}

void PI_Write_(const char* file, int line, PI_CHANNEL* chan, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  try {
    pilot::Runtime::require(at(file, line)).write(at(file, line), chan, fmt, ap);
  } catch (...) {
    va_end(ap);
    throw;
  }
  va_end(ap);
}

void PI_Read_(const char* file, int line, PI_CHANNEL* chan, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  try {
    pilot::Runtime::require(at(file, line)).read(at(file, line), chan, fmt, ap);
  } catch (...) {
    va_end(ap);
    throw;
  }
  va_end(ap);
}

void PI_Broadcast_(const char* file, int line, PI_BUNDLE* bundle, const char* fmt,
                   ...) {
  std::va_list ap;
  va_start(ap, fmt);
  try {
    pilot::Runtime::require(at(file, line)).broadcast(at(file, line), bundle, fmt, ap);
  } catch (...) {
    va_end(ap);
    throw;
  }
  va_end(ap);
}

void PI_Scatter_(const char* file, int line, PI_BUNDLE* bundle, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  try {
    pilot::Runtime::require(at(file, line)).scatter(at(file, line), bundle, fmt, ap);
  } catch (...) {
    va_end(ap);
    throw;
  }
  va_end(ap);
}

void PI_Gather_(const char* file, int line, PI_BUNDLE* bundle, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  try {
    pilot::Runtime::require(at(file, line)).gather(at(file, line), bundle, fmt, ap);
  } catch (...) {
    va_end(ap);
    throw;
  }
  va_end(ap);
}

void PI_Reduce_(const char* file, int line, PI_BUNDLE* bundle, PI_REDOP op,
                const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  try {
    pilot::Runtime::require(at(file, line))
        .reduce(at(file, line), bundle, op, fmt, ap);
  } catch (...) {
    va_end(ap);
    throw;
  }
  va_end(ap);
}

int PI_Select_(const char* file, int line, PI_BUNDLE* bundle) {
  return pilot::Runtime::require(at(file, line)).select(at(file, line), bundle);
}

int PI_TrySelect_(const char* file, int line, PI_BUNDLE* bundle) {
  return pilot::Runtime::require(at(file, line)).try_select(at(file, line), bundle);
}

int PI_ChannelHasData_(const char* file, int line, PI_CHANNEL* chan) {
  return pilot::Runtime::require(at(file, line))
      .channel_has_data(at(file, line), chan);
}

void PI_SetName_(const char* file, int line, PI_PROCESS* p, const char* name) {
  pilot::Runtime::require(at(file, line)).set_name(at(file, line), p, name);
}
void PI_SetName_(const char* file, int line, PI_CHANNEL* c, const char* name) {
  pilot::Runtime::require(at(file, line)).set_name(at(file, line), c, name);
}
void PI_SetName_(const char* file, int line, PI_BUNDLE* b, const char* name) {
  pilot::Runtime::require(at(file, line)).set_name(at(file, line), b, name);
}

const char* PI_GetName_(const char* file, int line, const PI_PROCESS* p) {
  if (p == nullptr)
    throw pilot::PilotError("PI_GetName: null process");
  (void)file;
  (void)line;
  return p->name.c_str();
}
const char* PI_GetName_(const char* file, int line, const PI_CHANNEL* c) {
  if (c == nullptr)
    throw pilot::PilotError("PI_GetName: null channel");
  (void)file;
  (void)line;
  return c->name.c_str();
}
const char* PI_GetName_(const char* file, int line, const PI_BUNDLE* b) {
  if (b == nullptr)
    throw pilot::PilotError("PI_GetName: null bundle");
  (void)file;
  (void)line;
  return b->name.c_str();
}

PI_CHANNEL* PI_GetBundleChannel_(const char* file, int line, const PI_BUNDLE* b,
                                 int index) {
  if (b == nullptr)
    throw pilot::PilotError("PI_GetBundleChannel: null bundle");
  if (index < 0 || index >= static_cast<int>(b->channels.size()))
    throw pilot::PilotError(
        std::string(file ? file : "?") + ":" + std::to_string(line) +
        ": PI_GetBundleChannel: index " + std::to_string(index) +
        " out of range for bundle of size " + std::to_string(b->channels.size()));
  return b->channels[static_cast<std::size_t>(index)];
}

int PI_GetBundleSize_(const char* file, int line, const PI_BUNDLE* b) {
  if (b == nullptr)
    throw pilot::PilotError("PI_GetBundleSize: null bundle");
  (void)file;
  (void)line;
  return static_cast<int>(b->channels.size());
}

double PI_StartTime_(const char* file, int line) {
  return pilot::Runtime::require(at(file, line)).start_time(at(file, line));
}

double PI_EndTime_(const char* file, int line) {
  return pilot::Runtime::require(at(file, line)).end_time(at(file, line));
}

void PI_Log_(const char* file, int line, const char* text) {
  pilot::Runtime::require(at(file, line)).log(at(file, line), text);
}

int PI_IsLogging_(const char* file, int line) {
  return pilot::Runtime::require(at(file, line)).is_logging() ? 1 : 0;
}

void PI_Abort_(const char* file, int line, int errcode, const char* text) {
  pilot::Runtime::require(at(file, line)).abort(at(file, line), errcode, text);
}

void PI_Compute_(const char* file, int line, double seconds) {
  pilot::Runtime::require(at(file, line)).compute(at(file, line), seconds);
}

int PI_DefineState_(const char* file, int line, const char* name,
                    const char* color) {
  return pilot::Runtime::require(at(file, line))
      .define_user_state(at(file, line), name, color);
}

void PI_StateBegin_(const char* file, int line, int state_handle) {
  pilot::Runtime::require(at(file, line)).state_begin(at(file, line), state_handle);
}

void PI_StateEnd_(const char* file, int line, int state_handle) {
  pilot::Runtime::require(at(file, line)).state_end(at(file, line), state_handle);
}

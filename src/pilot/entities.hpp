// Pilot's three programming abstractions: processes, channels, bundles.
// Created during the configuration phase; immutable afterwards (except
// names, which PI_SetName may assign any time for nicer logs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pilot/pi.hpp"

namespace pilot {

using WorkFunc = int (*)(int, void*);

class Process {
public:
  int rank = 0;       ///< MPI rank (0 = PI_MAIN)
  int index = 0;      ///< first argument passed to the work function
  void* arg2 = nullptr;
  WorkFunc work = nullptr;  ///< null for PI_MAIN
  std::string name;         ///< default "P<rank>"; PI_SetName overrides
  /// PI_CreateProcess call site (null file for PI_MAIN); the analyze
  /// service points its diagnostics here.
  const char* src_file = nullptr;
  int src_line = 0;
};

class Channel {
public:
  int id = 0;  ///< 1-based; also the message tag for this channel
  Process* from = nullptr;
  Process* to = nullptr;
  std::string name;  ///< default "C<id>"
  const char* src_file = nullptr;  ///< PI_CreateChannel call site
  int src_line = 0;

  // Traffic counters for the analyze service ('a'): messages and distinct
  // format signatures per side. The writer thread touches writes/write_sigs
  // and the reader thread reads/read_sigs, so no locking is needed; the
  // world join at PI_StopMain publishes them to the linter.
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::vector<std::string> write_sigs;
  std::vector<std::string> read_sigs;
};

class Bundle {
public:
  int id = 0;
  PI_BUNUSE usage = PI_BROADCAST;
  std::vector<Channel*> channels;
  std::string name;  ///< default "B<id>"
  /// The single process common to all channels (the caller side of the
  /// collective): 'from' for broadcast/scatter, 'to' for gather/reduce/
  /// select.
  Process* common = nullptr;
  const char* src_file = nullptr;  ///< PI_CreateBundle call site
  int src_line = 0;
};

}  // namespace pilot

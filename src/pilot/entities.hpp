// Pilot's three programming abstractions: processes, channels, bundles.
// Created during the configuration phase; immutable afterwards (except
// names, which PI_SetName may assign any time for nicer logs).
#pragma once

#include <string>
#include <vector>

#include "pilot/pi.hpp"

namespace pilot {

using WorkFunc = int (*)(int, void*);

class Process {
public:
  int rank = 0;       ///< MPI rank (0 = PI_MAIN)
  int index = 0;      ///< first argument passed to the work function
  void* arg2 = nullptr;
  WorkFunc work = nullptr;  ///< null for PI_MAIN
  std::string name;         ///< default "P<rank>"; PI_SetName overrides
};

class Channel {
public:
  int id = 0;  ///< 1-based; also the message tag for this channel
  Process* from = nullptr;
  Process* to = nullptr;
  std::string name;  ///< default "C<id>"
};

class Bundle {
public:
  int id = 0;
  PI_BUNUSE usage = PI_BROADCAST;
  std::vector<Channel*> channels;
  std::string name;  ///< default "B<id>"
  /// The single process common to all channels (the caller side of the
  /// collective): 'from' for broadcast/scatter, 'to' for gather/reduce/
  /// select.
  Process* common = nullptr;
};

}  // namespace pilot

// Pilot diagnostics. Every API misuse produces a PilotError whose message
// pinpoints the source line, calling process, and function — the paper's
// "elaborate error-detection for any abuse of the API".
#pragma once

#include <string>

#include "util/error.hpp"

namespace pilot {

class PilotError : public util::UsageError {
public:
  explicit PilotError(const std::string& what) : util::UsageError(what) {}
};

/// Thrown out of user code when the program was halted by PI_Abort (or by
/// Pilot itself, e.g. the deadlock detector). pilot::run converts it into a
/// process exit status.
class PilotAborted : public util::Error {
public:
  PilotAborted(int code, const std::string& what) : util::Error(what), code_(code) {}
  [[nodiscard]] int code() const { return code_; }

private:
  int code_;
};

/// Exit code used when Pilot's integrated detector finds a deadlock.
inline constexpr int kDeadlockAbortCode = 88;

}  // namespace pilot

#include "pilot/format.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace pilot {

std::size_t element_size(ValueType t) {
  switch (t) {
    case ValueType::kChar: return sizeof(char);
    case ValueType::kInt: return sizeof(int);
    case ValueType::kUnsigned: return sizeof(unsigned);
    case ValueType::kLong: return sizeof(long);
    case ValueType::kUnsignedLong: return sizeof(unsigned long);
    case ValueType::kLongLong: return sizeof(long long);
    case ValueType::kUnsignedLongLong: return sizeof(unsigned long long);
    case ValueType::kFloat: return sizeof(float);
    case ValueType::kDouble: return sizeof(double);
    case ValueType::kBytes: return 1;
  }
  throw FormatError("element_size: bad value type");
}

std::string type_name(ValueType t) {
  switch (t) {
    case ValueType::kChar: return "c";
    case ValueType::kInt: return "d";
    case ValueType::kUnsigned: return "u";
    case ValueType::kLong: return "ld";
    case ValueType::kUnsignedLong: return "lu";
    case ValueType::kLongLong: return "lld";
    case ValueType::kUnsignedLongLong: return "llu";
    case ValueType::kFloat: return "f";
    case ValueType::kDouble: return "lf";
    case ValueType::kBytes: return "b";
  }
  return "?";
}

std::size_t FormatSpec::element_size() const { return pilot::element_size(type); }

std::string FormatSpec::signature() const {
  std::string out;
  switch (count) {
    case CountKind::kScalar: break;
    case CountKind::kFixed: out += std::to_string(fixed_count); break;
    case CountKind::kStar: out += '*'; break;
    case CountKind::kCaret: out += '^'; break;
  }
  out += type_name(type);
  return out;
}

namespace {

ValueType parse_type(std::string_view fmt, std::size_t& i) {
  auto peek = [&](std::size_t k) -> char {
    return i + k < fmt.size() ? fmt[i + k] : '\0';
  };
  const char c = peek(0);
  switch (c) {
    case 'c': ++i; return ValueType::kChar;
    case 'd': ++i; return ValueType::kInt;
    case 'u': ++i; return ValueType::kUnsigned;
    case 'f': ++i; return ValueType::kFloat;
    case 'b': ++i; return ValueType::kBytes;
    case 'l':
      if (peek(1) == 'd') { i += 2; return ValueType::kLong; }
      if (peek(1) == 'u') { i += 2; return ValueType::kUnsignedLong; }
      if (peek(1) == 'f') { i += 2; return ValueType::kDouble; }
      if (peek(1) == 'l' && peek(2) == 'd') { i += 3; return ValueType::kLongLong; }
      if (peek(1) == 'l' && peek(2) == 'u') { i += 3; return ValueType::kUnsignedLongLong; }
      break;
    default: break;
  }
  throw FormatError(util::strprintf(
      "bad conversion type at offset %zu in format \"%.*s\"", i,
      static_cast<int>(fmt.size()), fmt.data()));
}

}  // namespace

std::vector<FormatSpec> parse_format(std::string_view fmt) {
  std::vector<FormatSpec> specs;
  std::size_t i = 0;
  while (i < fmt.size()) {
    if (fmt[i] == ' ') {
      ++i;
      continue;
    }
    if (fmt[i] != '%')
      throw FormatError(util::strprintf(
          "unexpected character '%c' at offset %zu in format \"%.*s\" "
          "(Pilot formats contain only %% specifiers and spaces)",
          fmt[i], i, static_cast<int>(fmt.size()), fmt.data()));
    ++i;
    FormatSpec spec;
    if (i < fmt.size() && fmt[i] == '*') {
      spec.count = CountKind::kStar;
      ++i;
    } else if (i < fmt.size() && fmt[i] == '^') {
      spec.count = CountKind::kCaret;
      ++i;
    } else if (i < fmt.size() && std::isdigit(static_cast<unsigned char>(fmt[i]))) {
      spec.count = CountKind::kFixed;
      std::size_t n = 0;
      while (i < fmt.size() && std::isdigit(static_cast<unsigned char>(fmt[i]))) {
        n = n * 10 + static_cast<std::size_t>(fmt[i] - '0');
        if (n > 1'000'000'000)
          throw FormatError("array length out of range in format string");
        ++i;
      }
      if (n == 0) throw FormatError("zero-length array in format string");
      spec.fixed_count = n;
    }
    spec.type = parse_type(fmt, i);
    if (spec.type == ValueType::kBytes && spec.count == CountKind::kScalar)
      throw FormatError("%b requires an array length (e.g. %16b or %*b)");
    specs.push_back(spec);
  }
  if (specs.empty())
    throw FormatError("format string contains no conversion specifiers");
  return specs;
}

bool specs_compatible(const FormatSpec& writer, const FormatSpec& reader) {
  if (writer.type != reader.type) return false;
  const bool writer_array = writer.count != CountKind::kScalar;
  const bool reader_array = reader.count != CountKind::kScalar;
  return writer_array == reader_array;
}

}  // namespace pilot

// Pilot's printf/scanf-style format engine.
//
// Pilot borrows C's format syntax so novices learn nothing new: PI_Write
// (toWorker, "%d %*d", n, count, array) writes an int and an int array.
// Each conversion specifier becomes ONE message on the wire — the paper
// relies on this ("%d %100f" sends two MPI messages, and the visual log
// shows one arrival bubble per message).
//
// Grammar per specifier:   % [ count ] type
//   count:  <none>   scalar
//           digits   fixed-length array, e.g. %100f
//           *        runtime-length array; length passed as an int argument
//           ^        auto-allocating array (V2.1): on write like * ; on
//                    read the length lands in an int* and a malloc'd buffer
//                    pointer in a T** (caller frees)
//   type:   c  char          d  int          u  unsigned
//           ld long          lu unsigned long
//           lld long long    llu unsigned long long
//           f  float         lf double       b  raw bytes (count required)
//
// Level-2 error checking ships the writer's canonical signature with each
// message so the reader can verify both ends agree.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace pilot {

enum class ValueType : std::uint8_t {
  kChar,
  kInt,
  kUnsigned,
  kLong,
  kUnsignedLong,
  kLongLong,
  kUnsignedLongLong,
  kFloat,
  kDouble,
  kBytes,
};

enum class CountKind : std::uint8_t {
  kScalar,  ///< single value
  kFixed,   ///< compile-time length, e.g. %100f
  kStar,    ///< %*type, length is a runtime int argument
  kCaret,   ///< %^type, auto-allocated on the read side
};

struct FormatSpec {
  ValueType type = ValueType::kInt;
  CountKind count = CountKind::kScalar;
  std::size_t fixed_count = 0;  ///< only for kFixed

  [[nodiscard]] std::size_t element_size() const;
  /// Canonical signature of one spec: "d", "100f", "*d", "^lf", ...
  [[nodiscard]] std::string signature() const;
};

/// Thrown on malformed format strings and on reader/writer mismatches; the
/// Pilot API layer wraps it with call-site context.
class FormatError : public util::UsageError {
public:
  explicit FormatError(const std::string& what) : util::UsageError(what) {}
};

/// Parse a whole format string (specifiers separated by arbitrary spaces).
/// Anything except valid specifiers and spaces is an error — Pilot formats
/// carry no literal text.
std::vector<FormatSpec> parse_format(std::string_view fmt);

std::size_t element_size(ValueType t);
std::string type_name(ValueType t);

/// Reader/writer compatibility for one spec pair (level-2 checking): the
/// element type must match exactly and both sides must agree on scalar vs
/// array. Array length kinds may differ (%100d can be read by %*d or %^d);
/// actual lengths are verified against the wire size at read time.
bool specs_compatible(const FormatSpec& writer, const FormatSpec& reader);

}  // namespace pilot

#include "pilot/logviz.hpp"

#include <filesystem>

#include "pilot/pi_colors.hpp"
#include "util/strings.hpp"

namespace pilot {

std::string state_popup(const CallSite& site, const Process& proc,
                        const Bundle* bundle) {
  // Starts with literal text (the paper's Jumpshot workaround) and stays
  // within MPE's 40-byte cap: "L<line> <proc> i<index> [B<bundle>]".
  std::string out = util::strprintf("L%d %s i%d", site.line, proc.name.c_str(),
                                    proc.index);
  if (bundle != nullptr) out += " " + bundle->name;
  return out;
}

LogViz::LogViz(mpisim::World& world, mpe::Logger::Options opts)
    : logger_(world, std::move(opts)) {
  auto define_state = [&](const char* name, const char* color) {
    StateIds ids;
    ids.start = logger_.get_event_number();
    ids.end = logger_.get_event_number();
    logger_.define_state(ids.start, ids.end, name, color);
    return ids;
  };
  read_ = define_state("PI_Read", PI_COLOR_READ);
  write_ = define_state("PI_Write", PI_COLOR_WRITE);
  select_ = define_state("PI_Select", PI_COLOR_SELECT);
  broadcast_ = define_state("PI_Broadcast", PI_COLOR_BROADCAST);
  scatter_ = define_state("PI_Scatter", PI_COLOR_SCATTER);
  gather_ = define_state("PI_Gather", PI_COLOR_GATHER);
  reduce_ = define_state("PI_Reduce", PI_COLOR_REDUCE);
  configure_ = define_state("PI_Configure", PI_COLOR_CONFIGURE);
  compute_ = define_state("Compute", PI_COLOR_COMPUTE);

  ev_msg_arrive_ = logger_.get_event_number();
  logger_.define_event(ev_msg_arrive_, "MsgArrive", PI_COLOR_BUBBLE);
  ev_write_info_ = logger_.get_event_number();
  logger_.define_event(ev_write_info_, "WriteInfo", PI_COLOR_BUBBLE);
  ev_utility_ = logger_.get_event_number();
  logger_.define_event(ev_utility_, "Utility", PI_COLOR_UTILITY);
  ev_user_log_ = logger_.get_event_number();
  logger_.define_event(ev_user_log_, "PI_Log", PI_COLOR_UTILITY);
  ev_wait_ = logger_.get_event_number();
  logger_.define_event(ev_wait_, "Wait", PI_COLOR_UTILITY);
}

int LogViz::define_user_state(const std::string& name, const std::string& color) {
  StateIds ids;
  ids.start = logger_.get_event_number();
  ids.end = logger_.get_event_number();
  logger_.define_state(ids.start, ids.end, name, color);
  user_states_.push_back(ids);
  return static_cast<int>(user_states_.size()) - 1;
}

void LogViz::begin_user_state(mpisim::Comm& comm, int index, const CallSite& site,
                              const Process& proc) {
  logger_.log_event(comm, user_states_.at(static_cast<std::size_t>(index)).start,
                    state_popup(site, proc, nullptr));
}

void LogViz::end_user_state(mpisim::Comm& comm, int index) {
  logger_.log_event(comm, user_states_.at(static_cast<std::size_t>(index)).end);
}

void LogViz::begin_state(mpisim::Comm& comm, const StateIds& ids,
                         const CallSite& site, const Process& proc,
                         const Bundle* bundle) {
  logger_.log_event(comm, ids.start, state_popup(site, proc, bundle));
}

void LogViz::end_state(mpisim::Comm& comm, const StateIds& ids,
                       const std::string& info) {
  logger_.log_event(comm, ids.end, info);
}

void LogViz::msg_arrive(mpisim::Comm& comm, double at_time, const Channel& chan) {
  logger_.log_event_at(comm, at_time, ev_msg_arrive_, "Chan: " + chan.name);
}

void LogViz::write_info(mpisim::Comm& comm, const Channel& chan, std::size_t count,
                        const std::string& first_value) {
  logger_.log_event(comm, ev_write_info_,
                    util::strprintf("Chan: %s n=%zu v0=%s", chan.name.c_str(), count,
                                    first_value.c_str()));
}

void LogViz::utility(mpisim::Comm& comm, const char* func, const CallSite& site,
                     const std::string& result) {
  // Compact: MPE caps popup text at 40 bytes, and function names like
  // PI_ChannelHasData are long already.
  logger_.log_event(comm, ev_utility_,
                    util::strprintf("%s L%d ret=%s", func, site.line, result.c_str()));
}

void LogViz::user_log(mpisim::Comm& comm, const CallSite& site,
                      const std::string& text) {
  logger_.log_event(comm, ev_user_log_,
                    util::strprintf("L%d %s", site.line, text.c_str()));
}

void LogViz::wait_on(mpisim::Comm& comm, const Channel& chan) {
  logger_.log_event(comm, ev_wait_,
                    util::strprintf("C%d<-R%d", chan.id, chan.from->rank));
}

void LogViz::configure_phase(mpisim::Comm& comm, double t_begin, double t_end) {
  logger_.log_event_at(comm, t_begin, configure_.start, "Configuration Phase");
  logger_.log_event_at(comm, t_end, configure_.end, "");
}

void LogViz::begin_compute(mpisim::Comm& comm, const Process& proc) {
  logger_.log_event(comm, compute_.start,
                    util::strprintf("%s i%d", proc.name.c_str(), proc.index));
}

void LogViz::end_compute(mpisim::Comm& comm) {
  logger_.log_event(comm, compute_.end, "");
}

void LogViz::arrow_send(mpisim::Comm& comm, int dst_rank, int tag, std::size_t bytes) {
  logger_.log_send(comm, dst_rank, tag, bytes);
}

void LogViz::arrow_receive(mpisim::Comm& comm, double at_time, int src_rank, int tag,
                           std::size_t bytes) {
  logger_.log_receive_at(comm, at_time, src_rank, tag, bytes);
}

}  // namespace pilot

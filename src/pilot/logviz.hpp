// The paper's contribution: MPE/Jumpshot log integration inside Pilot.
//
// LogViz owns an mpe::Logger and the event/state IDs for every Pilot
// function that the visual design (Section III) displays:
//   * one state per I/O function call (red/green themes, dark shades for
//     collectives — see pi_colors.hpp), popup = source line, process name,
//     work-function index, bundle name for collectives;
//   * milestone bubbles: message arrival inside PI_Read (channel name),
//     write-side info (data length + first element), utility returns
//     (PI_ChannelHasData, PI_TrySelect, PI_Log, PI_StartTime, PI_EndTime);
//   * message arrows via MPE_Log_send / MPE_Log_receive pairs;
//   * the Configuration Phase (bisque) and Compute (gray) administrative
//     states.
//
// Popup texts start with literal text (e.g. "L42" not "%d ...") — the
// workaround the paper discovered for Jumpshot's substitution bug — and are
// capped at MPE's 40 bytes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mpe/mpe.hpp"
#include "pilot/entities.hpp"

namespace pilot {

struct CallSite {
  const char* file = "?";
  int line = 0;
};

class LogViz {
public:
  /// Defines every event/state ID against the logger options (colours from
  /// pi_colors.hpp).
  LogViz(mpisim::World& world, mpe::Logger::Options opts);

  mpe::Logger& logger() { return logger_; }

  struct StateIds {
    int start = 0;
    int end = 0;
  };

  // --- I/O function states ---------------------------------------------------
  /// Begin the state for an I/O function. `popup` example: "L42 P3 i1 B2".
  void begin_state(mpisim::Comm& comm, const StateIds& ids, const CallSite& site,
                   const Process& proc, const Bundle* bundle = nullptr);
  void end_state(mpisim::Comm& comm, const StateIds& ids, const std::string& info = {});

  // --- milestone bubbles -------------------------------------------------------
  /// Message-arrival bubble inside PI_Read (at the observed arrival time).
  void msg_arrive(mpisim::Comm& comm, double at_time, const Channel& chan);
  /// Write-side info bubble: element count and first value rendering.
  void write_info(mpisim::Comm& comm, const Channel& chan, std::size_t count,
                  const std::string& first_value);
  /// Utility-function bubble with its return value.
  void utility(mpisim::Comm& comm, const char* func, const CallSite& site,
               const std::string& result);
  /// PI_Log free-text bubble.
  void user_log(mpisim::Comm& comm, const CallSite& site, const std::string& text);
  /// "Wait" bubble logged at the entry of a blocking read-family call, one
  /// per awaited channel ("C3<-R2" = channel 3, writer rank 2). Only
  /// emitted under the analyze service (-pisvc=a); pilot-tracecheck builds
  /// the post-mortem wait-for graph from these.
  void wait_on(mpisim::Comm& comm, const Channel& chan);

  // --- administrative states ---------------------------------------------------
  /// Configuration Phase rectangle on rank 0 (bisque), logged retroactively
  /// at PI_StartAll with explicit timestamps.
  void configure_phase(mpisim::Comm& comm, double t_begin, double t_end);
  void begin_compute(mpisim::Comm& comm, const Process& proc);
  void end_compute(mpisim::Comm& comm);

  // --- arrows -------------------------------------------------------------------
  void arrow_send(mpisim::Comm& comm, int dst_rank, int tag, std::size_t bytes);
  void arrow_receive(mpisim::Comm& comm, double at_time, int src_rank, int tag,
                     std::size_t bytes);

  // --- custom user states (MPE's customized-logging API) --------------------
  /// Register a user state; returns its index for begin/end_user_state.
  int define_user_state(const std::string& name, const std::string& color);
  void begin_user_state(mpisim::Comm& comm, int index, const CallSite& site,
                        const Process& proc);
  void end_user_state(mpisim::Comm& comm, int index);
  [[nodiscard]] int user_state_count() const {
    return static_cast<int>(user_states_.size());
  }

  // State IDs per function (public so the runtime picks the right one).
  StateIds read_, write_, select_, broadcast_, scatter_, gather_, reduce_;
  StateIds configure_, compute_;
  std::vector<StateIds> user_states_;

private:
  int ev_msg_arrive_ = 0;
  int ev_write_info_ = 0;
  int ev_utility_ = 0;
  int ev_user_log_ = 0;
  int ev_wait_ = 0;
  mpe::Logger logger_;
};

/// "L42 P3 i1" / "L42 Decomp i2 B4" — the popup prefix for state starts.
std::string state_popup(const CallSite& site, const Process& proc,
                        const Bundle* bundle);

}  // namespace pilot

#include "pilot/options.hpp"

#include <cstdlib>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pilot {

namespace {

double parse_double(const std::string& what, const std::string& v) {
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0' || parsed < 0.0)
    throw util::UsageError(what + " expects a non-negative number, got '" + v + "'");
  return parsed;
}

long long parse_int(const std::string& what, const std::string& v) {
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || parsed < 0)
    throw util::UsageError(what + " expects a non-negative integer, got '" + v + "'");
  return parsed;
}

}  // namespace

Options Options::parse(int* argc, char*** argv) {
  Options opts;

  for (const std::string& letters :
       util::strip_args_with_prefix(argc, argv, "-pisvc=")) {
    for (char c : letters) {
      switch (c) {
        case 'a': opts.svc_analyze = true; break;
        case 'c': opts.svc_calls = true; break;
        case 'd': opts.svc_deadlock = true; break;
        case 'j': opts.svc_jumpshot = true; break;
        default:
          throw util::UsageError(util::strprintf(
              "-pisvc: unknown service letter '%c' (valid: a, c, d, j)", c));
      }
    }
  }

  // Record/replay. Validated in the same pass as -pisvc=: empty paths and
  // contradictory modes fail here, not at PI_StartAll.
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pirecord="); !v.empty()) {
    if (v.back().empty()) throw util::UsageError("-pirecord: expects a file path");
    opts.record_path = v.back();
  }
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pireplay-timeout=");
      !v.empty())
    opts.replay_timeout = parse_double("-pireplay-timeout", v.back());
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pireplay="); !v.empty()) {
    if (v.back().empty()) throw util::UsageError("-pireplay: expects a file path");
    opts.replay_path = v.back();
  }
  if (!opts.record_path.empty() && !opts.replay_path.empty())
    throw util::UsageError(
        "-pirecord and -pireplay are mutually exclusive: a run either records "
        "a replay log or is driven by one");

  // Fault injection. The plan is parsed (FJ01) here so a malformed spec
  // fails at PI_Configure; cross-option validation follows below once the
  // -pisvc letters and -pirobust are known.
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pifault="); !v.empty()) {
    if (v.back().empty())
      throw util::UsageError("-pifault: expects a fault plan (see docs/FAULTS.md)");
    opts.fault_plan = fault::parse_spec(v.back());
    opts.fault_enabled = true;
  }

  // Bare flag: "-pirobust". Exact match only — "-pirobustX" must be rejected
  // as a typo below, not silently accepted by the prefix strip.
  for (const std::string& rest :
       util::strip_args_with_prefix(argc, argv, "-pirobust")) {
    if (!rest.empty())
      throw util::UsageError("unrecognized Pilot option: -pirobust" + rest);
    opts.robust_log = true;
  }

  // Bare flag: "-pilint" — topology lint only, then exit (implies 'a').
  for (const std::string& rest :
       util::strip_args_with_prefix(argc, argv, "-pilint")) {
    if (!rest.empty())
      throw util::UsageError("unrecognized Pilot option: -pilint" + rest);
    opts.lint_only = true;
    opts.svc_analyze = true;
  }

  if (auto v = util::strip_args_with_prefix(argc, argv, "-picheck="); !v.empty()) {
    const long long level = parse_int("-picheck", v.back());
    if (level > 3) throw util::UsageError("-picheck: level must be 0..3");
    opts.check_level = static_cast<int>(level);
  }
  if (auto v = util::strip_args_with_prefix(argc, argv, "-piexec="); !v.empty()) {
    const std::string& mode = v.back();
    if (mode == "tasks")
      opts.exec_tasks = true;
    else if (mode != "threads")
      throw util::UsageError(
          "-piexec: expects 'threads' or 'tasks', got '" + mode + "'");
  }
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pinp="); !v.empty())
    opts.np = static_cast<int>(parse_int("-pinp", v.back()));
  if (auto v = util::strip_args_with_prefix(argc, argv, "-piout="); !v.empty())
    opts.out_dir = v.back();
  if (auto v = util::strip_args_with_prefix(argc, argv, "-piname="); !v.empty())
    opts.log_basename = v.back();
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pispread="); !v.empty())
    opts.arrow_spread = parse_double("-pispread", v.back());
  if (auto v = util::strip_args_with_prefix(argc, argv, "-piwatchdog="); !v.empty())
    opts.watchdog = parse_double("-piwatchdog", v.back());

  if (auto v = util::strip_args_with_prefix(argc, argv, "-pisim-cores="); !v.empty())
    opts.sim_cores = static_cast<unsigned>(parse_int("-pisim-cores", v.back()));
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pisim-scale="); !v.empty())
    opts.sim_scale = parse_double("-pisim-scale", v.back());
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pisim-latency="); !v.empty())
    opts.sim_latency = parse_double("-pisim-latency", v.back());
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pisim-bandwidth="); !v.empty())
    opts.sim_bandwidth = parse_double("-pisim-bandwidth", v.back());
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pisim-drift="); !v.empty())
    opts.sim_drift = parse_double("-pisim-drift", v.back());
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pisim-skew="); !v.empty())
    opts.sim_skew = parse_double("-pisim-skew", v.back());
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pisim-clockres="); !v.empty())
    opts.sim_clockres = parse_double("-pisim-clockres", v.back());
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pisim-seed="); !v.empty())
    opts.sim_seed = static_cast<std::uint64_t>(parse_int("-pisim-seed", v.back()));
  if (auto v = util::strip_args_with_prefix(argc, argv, "-pinativecost="); !v.empty())
    opts.native_log_cost = parse_double("-pinativecost", v.back());

  // Fault-plan points that live in the MPE logger need the matching
  // services, or they would silently never fire.
  if (opts.fault_enabled) {
    if (opts.fault_plan.has_event_crash() && !opts.svc_jumpshot)
      throw util::UsageError(
          "FJ02: -pifault: crash=RANK@event:N counts MPE log records and "
          "needs -pisvc=j");
    if (opts.fault_plan.has_trunc() && !(opts.svc_jumpshot && opts.robust_log))
      throw util::UsageError(
          "FJ02: -pifault: trunc=RANK@write:N injects spill-stream faults and "
          "needs -pisvc=j -pirobust");
  }

  // Reject any leftover -pi... argument: a typo should fail loudly, not be
  // silently passed through to the application.
  for (int i = 1; i < *argc; ++i) {
    const std::string a((*argv)[i]);
    if (util::starts_with(a, "-pi"))
      throw util::UsageError("unrecognized Pilot option: " + a);
  }
  return opts;
}

}  // namespace pilot

// Pilot run-time options, parsed (and stripped) from the command line by
// PI_Configure — the same mechanism real Pilot uses, extended with
// simulated-machine knobs (prefix -pisim-) for reproducible experiments.
#pragma once

#include <cstdint>
#include <string>

#include "fault/plan.hpp"

namespace pilot {

struct Options {
  // --- services (-pisvc=LETTERS) -------------------------------------------
  bool svc_calls = false;     ///< 'c': native call log on a dedicated rank
  bool svc_deadlock = false;  ///< 'd': deadlock detector on the same rank
  bool svc_jumpshot = false;  ///< 'j': MPE logging -> CLOG-2 (the paper)
  bool svc_analyze = false;   ///< 'a': topology/usage lint + Wait trace events

  /// -pilint: run the topology lint only (implies 'a') and exit before the
  /// execution phase starts; exit status 1 when there are findings.
  bool lint_only = false;

  /// -pirobust (with 'j'): spill MPE records to per-rank files as they are
  /// logged so the trace survives PI_Abort — the paper's stated future
  /// work, implemented here. Recover with mpe::salvage / pilot-logsalvage.
  bool robust_log = false;

  // --- record/replay (-pirecord= / -pireplay=) ------------------------------
  /// -pirecord=FILE: append every nondeterministic decision (wildcard
  /// matches, select branches, barrier order) to a .prl replay log.
  std::string record_path;
  /// -pireplay=FILE: enforce the decisions recorded in FILE; divergence
  /// raises an RP-series diagnostic. Mutually exclusive with -pirecord.
  std::string replay_path;
  /// -pireplay-timeout=SECONDS: how long replay enforcement waits for a
  /// recorded message/branch before declaring divergence.
  double replay_timeout = 5.0;

  // --- fault injection (-pifault=) ------------------------------------------
  /// -pifault=SPEC (or -pifault=@FILE): seeded deterministic fault plan —
  /// message jitter, rank crashes, spill-write truncation. Parsed and
  /// validated at PI_Configure (FJ01/FJ02 on bad input); see docs/FAULTS.md.
  bool fault_enabled = false;
  fault::Plan fault_plan;

  // --- checking (-picheck=N) ------------------------------------------------
  /// 0 = phase checks only; 1 = full API-abuse checks (default);
  /// 2 = + reader/writer format matching; 3 = + pointer validity.
  int check_level = 1;

  // --- deployment -----------------------------------------------------------
  /// -piexec=threads|tasks: execution substrate for the simulated ranks.
  /// threads (default) = one OS thread per rank; tasks = fiber-per-rank on a
  /// deterministic task scheduler, required for 1k+ rank worlds. See
  /// docs/MPISIM.md.
  bool exec_tasks = false;
  int np = 0;  ///< simulated mpirun -np bound; 0 = as many as created
  std::string out_dir = ".";
  std::string log_basename = "pilot";

  /// Arrow-spread delay in wall seconds between the per-channel sends of a
  /// collective (the paper's 1 ms usleep fix for "Equal Drawables").
  double arrow_spread = 0.0;

  // --- simulated machine (-pisim-*) ----------------------------------------
  unsigned sim_cores = 0;     ///< virtual cores; 0 = one per rank
  double sim_scale = 0.0;     ///< wall seconds per virtual compute second
  double sim_latency = 0.0;   ///< per-message delivery latency (wall s)
  double sim_bandwidth = 0.0; ///< bytes/s (0 = infinite)
  double sim_drift = 0.0;     ///< max per-rank clock offset (s)
  double sim_skew = 0.0;      ///< max per-rank clock skew (fraction)
  double sim_clockres = 0.0;  ///< MPI_Wtime resolution quantum (s)
  std::uint64_t sim_seed = 1;
  double watchdog = 60.0;     ///< whole-job wall deadline (s); 0 = off

  // Cost model for the native-log service rank, in virtual seconds per
  // logged call (formatting + disk write on real Pilot's logging rank).
  double native_log_cost = 200e-6;

  /// Parse and strip every "-pi..." argument. Never touches argv[0].
  /// Throws util::UsageError on malformed values.
  static Options parse(int* argc, char*** argv);

  [[nodiscard]] bool needs_service_rank() const { return svc_calls || svc_deadlock; }
  [[nodiscard]] std::string clog2_path() const {
    return out_dir + "/" + log_basename + ".clog2";
  }
  [[nodiscard]] std::string native_log_path() const {
    return out_dir + "/" + log_basename + ".log";
  }
  [[nodiscard]] std::string spill_base() const {
    return out_dir + "/" + log_basename;
  }
};

}  // namespace pilot

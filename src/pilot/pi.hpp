// Pilot — "A friendly face for MPI".
//
// The public, C-style API of the Pilot library, reproduced from the paper:
// a process/channel programming model in the CSP tradition, layered here on
// the mpisim substrate (thread-per-rank MPI subset) instead of a real MPI.
//
// Life cycle of every Pilot program:
//
//   int worker(int index, void* arg) { ... PI_Read/PI_Write ... }
//
//   int main(int argc, char* argv[]) {
//     PI_Configure(&argc, &argv);              // strips -pisvc=... etc.
//     PI_PROCESS* w = PI_CreateProcess(worker, 0, nullptr);
//     PI_CHANNEL* c = PI_CreateChannel(PI_MAIN, w);
//     PI_StartAll();                           // workers launch; caller
//                                              // continues as PI_MAIN
//     PI_Write(c, "%d", 42);
//     PI_StopMain(0);                          // join + finalize logs
//   }
//
// Command-line services (stripped by PI_Configure):
//   -pisvc=LETTERS   a = analyze service: topology lint at PI_StartAll,
//                        usage lint at PI_StopMain, and (with 'j') "Wait"
//                        trace events for pilot-tracecheck (docs/ANALYZE.md),
//                        c = native call log (uses an extra rank, like the
//                        paper's measurement), d = deadlock detector
//                        (same extra rank), j = MPE/Jumpshot log (the
//                        paper's contribution; writes a CLOG-2 file)
//   -pilint          run the topology lint only and exit before the
//                        execution phase (status 1 when it finds anything)
//   -picheck=N       error-check level 0..3 (2 adds reader/writer format
//                        matching, 3 adds pointer validity checks)
//   -pinp=N          simulated "mpirun -np N" bound on processes
//   -piout=DIR       where log files are written (default ".")
//   -piname=BASE     log file base name (default "pilot")
//   -pispread=SEC    arrow-spread delay between collective sends
//                        (the paper's 1 ms usleep fix; default 0)
//   -pirecord=FILE   record every nondeterministic decision (wildcard
//                        matches, select branches, barrier order) to a
//                        .prl replay log (docs/REPLAY.md)
//   -pireplay=FILE   re-run under the decisions recorded in FILE;
//                        divergence aborts with an RP diagnostic naming
//                        the rank and call site
//   -pireplay-timeout=SEC  how long replay waits for a recorded outcome
//                        before declaring divergence (default 5)
//   -pisim-...       simulated-machine knobs (cores, scale, latency,
//                        bandwidth, drift, skew, clockres, seed)
//
// All API functions are macros capturing __FILE__/__LINE__, so error
// diagnostics and the visual log pinpoint source lines, exactly as the
// paper shows in every popup.
#pragma once

#include <cstddef>

namespace pilot {
class Process;
class Channel;
class Bundle;
}  // namespace pilot

using PI_PROCESS = pilot::Process;
using PI_CHANNEL = pilot::Channel;
using PI_BUNDLE = pilot::Bundle;

/// Bundle usages (PI_CreateBundle).
enum PI_BUNUSE : int {
  PI_BROADCAST = 1,
  PI_SCATTER = 2,
  PI_GATHER = 3,
  PI_REDUCE = 4,
  PI_SELECT_B = 5,  ///< selector bundle for PI_Select / PI_TrySelect
};

/// Reduction operators (PI_Reduce).
enum PI_REDOP : int {
  PI_SUM = 1,
  PI_PROD = 2,
  PI_MIN = 3,
  PI_MAX = 4,
};

/// Channel-copy directions (PI_CopyChannels).
enum PI_COPYDIR : int {
  PI_SAME = 1,     ///< copies keep the original endpoints
  PI_REVERSE = 2,  ///< copies swap writer and reader
};

/// The main process (rank 0). Set by PI_Configure.
extern PI_PROCESS* PI_MAIN;

// --- implementation entry points (call via the PI_* macros below) ----------
int PI_Configure_(const char* file, int line, int* argc, char*** argv);
PI_PROCESS* PI_CreateProcess_(const char* file, int line, int (*work)(int, void*),
                              int index, void* arg2);
PI_CHANNEL* PI_CreateChannel_(const char* file, int line, PI_PROCESS* from,
                              PI_PROCESS* to);
PI_BUNDLE* PI_CreateBundle_(const char* file, int line, PI_BUNUSE usage,
                            PI_CHANNEL* const channels[], int size);
/// Duplicate `size` channels (configuration phase), optionally reversing
/// their direction — the idiomatic way to get an independent channel set
/// for a second bundle. Returns a malloc'd array of size `size`; the caller
/// frees the array (the channels themselves belong to Pilot).
PI_CHANNEL** PI_CopyChannels_(const char* file, int line, PI_COPYDIR direction,
                              PI_CHANNEL* const channels[], int size);
void PI_StartAll_(const char* file, int line);
void PI_StopMain_(const char* file, int line, int status);

void PI_Write_(const char* file, int line, PI_CHANNEL* chan, const char* fmt, ...);
void PI_Read_(const char* file, int line, PI_CHANNEL* chan, const char* fmt, ...);
void PI_Broadcast_(const char* file, int line, PI_BUNDLE* bundle, const char* fmt, ...);
void PI_Scatter_(const char* file, int line, PI_BUNDLE* bundle, const char* fmt, ...);
void PI_Gather_(const char* file, int line, PI_BUNDLE* bundle, const char* fmt, ...);
void PI_Reduce_(const char* file, int line, PI_BUNDLE* bundle, PI_REDOP op,
                const char* fmt, ...);

int PI_Select_(const char* file, int line, PI_BUNDLE* bundle);
int PI_TrySelect_(const char* file, int line, PI_BUNDLE* bundle);
int PI_ChannelHasData_(const char* file, int line, PI_CHANNEL* chan);

void PI_SetName_(const char* file, int line, PI_PROCESS* p, const char* name);
void PI_SetName_(const char* file, int line, PI_CHANNEL* c, const char* name);
void PI_SetName_(const char* file, int line, PI_BUNDLE* b, const char* name);
const char* PI_GetName_(const char* file, int line, const PI_PROCESS* p);
const char* PI_GetName_(const char* file, int line, const PI_CHANNEL* c);
const char* PI_GetName_(const char* file, int line, const PI_BUNDLE* b);

PI_CHANNEL* PI_GetBundleChannel_(const char* file, int line, const PI_BUNDLE* b,
                                 int index);
int PI_GetBundleSize_(const char* file, int line, const PI_BUNDLE* b);

double PI_StartTime_(const char* file, int line);
double PI_EndTime_(const char* file, int line);
void PI_Log_(const char* file, int line, const char* text);
int PI_IsLogging_(const char* file, int line);
[[noreturn]] void PI_Abort_(const char* file, int line, int errcode,
                            const char* text);

/// Simulation extension (not in real Pilot): charge `seconds` of virtual
/// compute to the simulated machine. Workload kernels call this so timing
/// experiments are host-independent; see DESIGN.md.
void PI_Compute_(const char* file, int line, double seconds);

// --- custom logging (MPE's "customized logging via its API", surfaced
// through Pilot as an extension) -----------------------------------------
// Define states during the configuration phase, then bracket interesting
// program phases at run time; they appear as user-coloured rectangles
// nested inside the gray Compute state. All three are no-ops without
// -pisvc=j, so instrumented programs run unchanged when logging is off.
/// Define a custom state (configuration phase only). `color` must be a
/// known X11-style name. Returns a handle for PI_StateBegin/PI_StateEnd.
int PI_DefineState_(const char* file, int line, const char* name,
                    const char* color);
void PI_StateBegin_(const char* file, int line, int state_handle);
void PI_StateEnd_(const char* file, int line, int state_handle);

// --- the user-facing macros --------------------------------------------------
#define PI_Configure(argcp, argvp) PI_Configure_(__FILE__, __LINE__, argcp, argvp)
#define PI_CreateProcess(...) PI_CreateProcess_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_CreateChannel(...) PI_CreateChannel_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_CreateBundle(...) PI_CreateBundle_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_CopyChannels(...) PI_CopyChannels_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_StartAll() PI_StartAll_(__FILE__, __LINE__)
#define PI_StopMain(status) PI_StopMain_(__FILE__, __LINE__, status)
#define PI_Write(...) PI_Write_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_Read(...) PI_Read_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_Broadcast(...) PI_Broadcast_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_Scatter(...) PI_Scatter_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_Gather(...) PI_Gather_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_Reduce(...) PI_Reduce_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_Select(bundle) PI_Select_(__FILE__, __LINE__, bundle)
#define PI_TrySelect(bundle) PI_TrySelect_(__FILE__, __LINE__, bundle)
#define PI_ChannelHasData(chan) PI_ChannelHasData_(__FILE__, __LINE__, chan)
#define PI_SetName(...) PI_SetName_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_GetName(x) PI_GetName_(__FILE__, __LINE__, x)
#define PI_GetBundleChannel(...) PI_GetBundleChannel_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_GetBundleSize(b) PI_GetBundleSize_(__FILE__, __LINE__, b)
#define PI_StartTime() PI_StartTime_(__FILE__, __LINE__)
#define PI_EndTime() PI_EndTime_(__FILE__, __LINE__)
#define PI_Log(text) PI_Log_(__FILE__, __LINE__, text)
#define PI_IsLogging() PI_IsLogging_(__FILE__, __LINE__)
#define PI_Abort(errcode, text) PI_Abort_(__FILE__, __LINE__, errcode, text)
#define PI_Compute(seconds) PI_Compute_(__FILE__, __LINE__, seconds)
#define PI_DefineState(...) PI_DefineState_(__FILE__, __LINE__, __VA_ARGS__)
#define PI_StateBegin(h) PI_StateBegin_(__FILE__, __LINE__, h)
#define PI_StateEnd(h) PI_StateEnd_(__FILE__, __LINE__, h)

// Colour assignments for the visual log (Section III-A of the paper).
//
// The scheme is systematic, not ad hoc:
//   * red theme for input  ("red" ~ "read"; reading always blocks — red
//     means stop),
//   * green theme for output (writing signals a waiting reader — green
//     means go),
//   * within a theme, point-to-point functions use the light shade and
//     collective functions a dark shade,
//   * administrative phases use neutral colours (bisque / gray),
//   * milestone bubbles are yellow, message arrows white.
//
// Users who dislike the defaults edit this header and rebuild Pilot, just
// as the paper describes. Names must exist in util::color_by_name.
#pragma once

// Input category (red theme).
#define PI_COLOR_READ "red"
#define PI_COLOR_GATHER "IndianRed"
#define PI_COLOR_REDUCE "FireBrick"
#define PI_COLOR_SELECT "LightCoral"

// Output category (green theme).
#define PI_COLOR_WRITE "green"
#define PI_COLOR_BROADCAST "ForestGreen"
#define PI_COLOR_SCATTER "SeaGreen"

// Administrative phases.
#define PI_COLOR_CONFIGURE "bisque"
#define PI_COLOR_COMPUTE "gray"

// Milestone bubbles (message arrivals, write info, utility returns).
#define PI_COLOR_BUBBLE "yellow"
#define PI_COLOR_UTILITY "orange"

// Runtime core: lifecycle, entity creation, phase rules, services wiring.
// The message engine (read/write/collectives) lives in runtime_io.cpp.
#include "pilot/runtime.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/color.hpp"
#include "util/strings.hpp"

namespace pilot {

namespace {

std::unique_ptr<Runtime> g_runtime;

// Only meaningful outside the execution phase (the configuring thread is
// PI_MAIN). While ranks run, the acting process is derived from
// mpisim::World::current() instead — see Runtime::acting_process.
thread_local Process* tls_process = nullptr;

std::string site_str(const CallSite& site) {
  const std::filesystem::path p(site.file ? site.file : "?");
  return util::strprintf("%s:%d", p.filename().string().c_str(), site.line);
}

}  // namespace

Runtime* Runtime::current() { return g_runtime.get(); }

void Runtime::install(std::unique_ptr<Runtime> rt) {
  if (g_runtime)
    throw PilotError("a Pilot program is already active in this process");
  g_runtime = std::move(rt);
}

std::unique_ptr<Runtime> Runtime::uninstall() {
  tls_process = nullptr;
  return std::move(g_runtime);
}

Runtime& Runtime::require(const CallSite& site) {
  if (!g_runtime)
    throw PilotError(util::strprintf(
        "%s: Pilot API called before PI_Configure", site_str(site).c_str()));
  return *g_runtime;
}

Runtime::Runtime(Options opts) : opts_(std::move(opts)) {}

Runtime::~Runtime() { teardown(); }

void Runtime::teardown() {
  if (world_ && phase_ == Phase::kRunning) {
    // Unblock and join without running the cooperative finalize path (the
    // MPE gather cannot run once the job aborted — the log is lost, as the
    // paper documents for PI_Abort). A fault-killed rank gets the dead-peer
    // code so the outcome matches the reaper path deterministically.
    if (!world_->is_aborted())
      world_->force_abort(world_->crashed_ranks().empty()
                              ? -13
                              : mpisim::World::kPeerDeadAbortCode);
    try {
      (void)world_->finish();
    } catch (...) {
      // Teardown must not throw; diagnostics were already reported.
    }
    run_info_.aborted = world_->is_aborted();
    run_info_.abort_code = world_->abort_code();
    phase_ = Phase::kDone;
  }
  if (service_) {
    run_info_.deadlock = service_->deadlock_detected();
    if (run_info_.deadlock_report.empty())
      run_info_.deadlock_report = service_->deadlock_report();
  }
  if (replay_) {
    // A partial recording of an aborted run still replays up to the abort;
    // saving is best-effort here (teardown must not throw).
    if (replay_->mode() == replay::Engine::Mode::kRecord) {
      try {
        replay_->save();
      } catch (...) {
      }
    }
    run_info_.replay = replay_->report();
    run_info_.replay_diverged = run_info_.replay_diverged || replay_->diverged();
  }
  harvest_fault();
  tls_process = nullptr;
}

void Runtime::fail(const CallSite& site, const std::string& msg) const {
  throw PilotError(site_str(site) + ": " + msg);
}

void Runtime::require_phase(const CallSite& site, Phase want, const char* what) const {
  if (phase_ == want) return;
  const char* names[] = {"before PI_Configure", "configuration phase",
                         "execution phase", "after PI_StopMain"};
  fail(site, util::strprintf("%s may only be called in the %s (currently %s)", what,
                             names[static_cast<int>(want)],
                             names[static_cast<int>(phase_)]));
}

Process* Runtime::acting_process() const {
  if (phase_ == Phase::kRunning) {
    mpisim::Comm* c = mpisim::World::current();
    if (c == nullptr || c->rank() == service_rank_) return nullptr;
    const auto r = static_cast<std::size_t>(c->rank());
    if (r >= processes_.size()) return nullptr;
    return const_cast<Process*>(&processes_[r]);
  }
  return tls_process;
}

Process* Runtime::current_process(const CallSite& site, const char* what) const {
  Process* p = acting_process();
  if (p == nullptr)
    fail(site, util::strprintf("%s called outside any Pilot process", what));
  return p;
}

mpisim::Comm& Runtime::comm(const CallSite& site, const char* what) const {
  mpisim::Comm* c = mpisim::World::current();
  if (c == nullptr)
    fail(site, util::strprintf("%s called outside the execution phase", what));
  return *c;
}

void Runtime::check_pointer(const CallSite& site, const void* p,
                            const char* what) const {
  if (opts_.check_level >= 3 && p == nullptr)
    fail(site, util::strprintf("%s: pointer argument seems invalid (null)", what));
}

// --- configuration phase -------------------------------------------------------

int Runtime::configure(const CallSite& site) {
  require_phase(site, Phase::kPreConfig, "PI_Configure");
  config_epoch_ = std::chrono::steady_clock::now();
  processes_.push_back(Process{});
  main_ = &processes_.back();
  main_->rank = 0;
  main_->name = "PI_MAIN";
  phase_ = Phase::kConfig;
  // PI_MAIN's thread is this one during the configuration phase.
  tls_process = main_;
  return opts_.np;
}

Process* Runtime::create_process(const CallSite& site, WorkFunc work, int index,
                                 void* arg2) {
  require_phase(site, Phase::kConfig, "PI_CreateProcess");
  if (work == nullptr) fail(site, "PI_CreateProcess: work function is null");
  const int new_rank = static_cast<int>(processes_.size());
  if (opts_.np > 0) {
    const int budget = opts_.np - (opts_.needs_service_rank() ? 1 : 0);
    if (new_rank + 1 > budget)
      fail(site, util::strprintf(
                     "PI_CreateProcess: process budget exhausted (-pinp=%d%s allows "
                     "%d worker process(es))",
                     opts_.np, opts_.needs_service_rank() ? " minus 1 service rank" : "",
                     budget - 1));
  }
  processes_.push_back(Process{});
  Process* p = &processes_.back();
  p->rank = new_rank;
  p->index = index;
  p->arg2 = arg2;
  p->work = work;
  p->name = "P" + std::to_string(new_rank);
  p->src_file = site.file;
  p->src_line = site.line;
  return p;
}

Channel* Runtime::create_channel(const CallSite& site, Process* from, Process* to) {
  require_phase(site, Phase::kConfig, "PI_CreateChannel");
  if (from == nullptr || to == nullptr)
    fail(site, "PI_CreateChannel: endpoint is null");
  // A self-loop channel is always a bug, but at -picheck=0 it is allowed to
  // exist so the topology linter (-pisvc=a / -pilint) can diagnose it
  // instead of the construction call aborting the program.
  if (from == to && opts_.check_level >= 1)
    fail(site, "PI_CreateChannel: a channel needs two distinct processes");
  channels_.push_back(Channel{});
  Channel* c = &channels_.back();
  c->id = static_cast<int>(channels_.size());
  c->from = from;
  c->to = to;
  c->name = "C" + std::to_string(c->id);
  c->src_file = site.file;
  c->src_line = site.line;
  return c;
}

Bundle* Runtime::create_bundle(const CallSite& site, PI_BUNUSE usage,
                               PI_CHANNEL* const channels[], int size) {
  require_phase(site, Phase::kConfig, "PI_CreateBundle");
  if (usage < PI_BROADCAST || usage > PI_SELECT_B)
    fail(site, "PI_CreateBundle: invalid bundle usage");
  if (channels == nullptr || size <= 0)
    fail(site, "PI_CreateBundle: needs a non-empty channel array");

  const bool common_is_from = usage == PI_BROADCAST || usage == PI_SCATTER;
  Process* common = nullptr;
  std::vector<Channel*> members;
  members.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    Channel* c = channels[i];
    if (c == nullptr)
      fail(site, util::strprintf("PI_CreateBundle: channel %d is null", i));
    Process* endpoint = common_is_from ? c->from : c->to;
    if (common == nullptr) {
      common = endpoint;
    } else if (common != endpoint) {
      fail(site, util::strprintf(
                     "PI_CreateBundle: channel %d (%s) does not share the bundle's "
                     "common %s endpoint (%s)",
                     i, c->name.c_str(), common_is_from ? "writer" : "reader",
                     common->name.c_str()));
    }
    for (const Channel* seen : members)
      if (seen == c)
        fail(site, util::strprintf("PI_CreateBundle: channel %s appears twice",
                                   c->name.c_str()));
    members.push_back(c);
  }

  bundles_.push_back(Bundle{});
  Bundle* b = &bundles_.back();
  b->id = static_cast<int>(bundles_.size());
  b->usage = usage;
  b->channels = std::move(members);
  b->common = common;
  b->name = "B" + std::to_string(b->id);
  b->src_file = site.file;
  b->src_line = site.line;
  return b;
}

void Runtime::set_name(const CallSite& site, Process* p, const char* name) {
  if (p == nullptr || name == nullptr) fail(site, "PI_SetName: null argument");
  p->name = name;
}
void Runtime::set_name(const CallSite& site, Channel* c, const char* name) {
  if (c == nullptr || name == nullptr) fail(site, "PI_SetName: null argument");
  c->name = name;
}
void Runtime::set_name(const CallSite& site, Bundle* b, const char* name) {
  if (b == nullptr || name == nullptr) fail(site, "PI_SetName: null argument");
  b->name = name;
}

Channel** Runtime::copy_channels(const CallSite& site, PI_COPYDIR direction,
                                 PI_CHANNEL* const channels[], int size) {
  require_phase(site, Phase::kConfig, "PI_CopyChannels");
  if (direction != PI_SAME && direction != PI_REVERSE)
    fail(site, "PI_CopyChannels: invalid direction");
  if (channels == nullptr || size <= 0)
    fail(site, "PI_CopyChannels: needs a non-empty channel array");

  auto** out = static_cast<Channel**>(
      std::malloc(static_cast<std::size_t>(size) * sizeof(Channel*)));
  if (out == nullptr) fail(site, "PI_CopyChannels: out of memory");
  for (int i = 0; i < size; ++i) {
    const Channel* src = channels[i];
    if (src == nullptr) {
      std::free(out);
      fail(site, util::strprintf("PI_CopyChannels: channel %d is null", i));
    }
    Process* from = direction == PI_SAME ? src->from : src->to;
    Process* to = direction == PI_SAME ? src->to : src->from;
    out[i] = create_channel(site, from, to);
  }
  return out;
}

int Runtime::define_user_state(const CallSite& site, const char* name,
                               const char* color) {
  require_phase(site, Phase::kConfig, "PI_DefineState");
  if (name == nullptr || color == nullptr)
    fail(site, "PI_DefineState: null argument");
  if (!util::is_known_color(color))
    fail(site, util::strprintf("PI_DefineState: unknown colour '%s'", color));
  user_state_defs_.emplace_back(name, color);
  return static_cast<int>(user_state_defs_.size()) - 1;
}

void Runtime::state_begin(const CallSite& site, int handle) {
  require_phase(site, Phase::kRunning, "PI_StateBegin");
  if (handle < 0 || handle >= static_cast<int>(user_state_defs_.size()))
    fail(site, util::strprintf("PI_StateBegin: invalid state handle %d", handle));
  Process* me = current_process(site, "PI_StateBegin");
  mpisim::Comm& c = comm(site, "PI_StateBegin");
  svc_call_line(site, util::strprintf(
                          "PI_StateBegin %s",
                          user_state_defs_[static_cast<std::size_t>(handle)]
                              .first.c_str()));
  if (logviz_) logviz_->begin_user_state(c, handle, site, *me);
}

void Runtime::state_end(const CallSite& site, int handle) {
  require_phase(site, Phase::kRunning, "PI_StateEnd");
  if (handle < 0 || handle >= static_cast<int>(user_state_defs_.size()))
    fail(site, util::strprintf("PI_StateEnd: invalid state handle %d", handle));
  current_process(site, "PI_StateEnd");
  mpisim::Comm& c = comm(site, "PI_StateEnd");
  svc_call_line(site, util::strprintf(
                          "PI_StateEnd %s",
                          user_state_defs_[static_cast<std::size_t>(handle)]
                              .first.c_str()));
  if (logviz_) logviz_->end_user_state(c, handle);
}

analyze::Topology Runtime::build_topology() const {
  analyze::Topology topo;
  for (const auto& p : processes_) {
    analyze::ProcessInfo pi;
    pi.rank = p.rank;
    pi.name = p.name;
    if (p.src_file != nullptr) pi.site = {p.src_file, p.src_line};
    topo.processes.push_back(std::move(pi));
  }
  for (const auto& c : channels_) {
    analyze::ChannelInfo ci;
    ci.id = c.id;
    ci.writer = c.from->rank;
    ci.reader = c.to->rank;
    ci.name = c.name;
    if (c.src_file != nullptr) ci.site = {c.src_file, c.src_line};
    ci.writes = c.writes;
    ci.reads = c.reads;
    ci.write_sigs = c.write_sigs;
    ci.read_sigs = c.read_sigs;
    topo.channels.push_back(std::move(ci));
  }
  for (const auto& b : bundles_) {
    analyze::BundleInfo bi;
    bi.id = b.id;
    bi.name = b.name;
    switch (b.usage) {
      case PI_BROADCAST: bi.usage = analyze::BundleUsage::kBroadcast; break;
      case PI_SCATTER: bi.usage = analyze::BundleUsage::kScatter; break;
      case PI_GATHER: bi.usage = analyze::BundleUsage::kGather; break;
      case PI_REDUCE: bi.usage = analyze::BundleUsage::kReduce; break;
      case PI_SELECT_B: bi.usage = analyze::BundleUsage::kSelect; break;
    }
    for (const Channel* c : b.channels) bi.channel_ids.push_back(c->id);
    if (b.src_file != nullptr) bi.site = {b.src_file, b.src_line};
    topo.bundles.push_back(std::move(bi));
  }
  return topo;
}

std::vector<std::string> Runtime::rank_names() const {
  std::vector<std::string> names;
  names.reserve(processes_.size() + 1);
  for (const auto& p : processes_) names.push_back(p.name);
  if (service_rank_ >= 0) names.emplace_back("(log)");
  return names;
}

// --- execution phase -------------------------------------------------------------

void Runtime::start_all(const CallSite& site) {
  require_phase(site, Phase::kConfig, "PI_StartAll");
  if (tls_process != main_)
    fail(site, "PI_StartAll must be called by the configuring (main) thread");

  if (opts_.svc_analyze) {
    run_info_.lint = analyze::lint_topology(build_topology());
    if (!run_info_.lint.empty())
      std::fprintf(stderr, "pilot-analyze (topology):\n%s",
                   run_info_.lint.to_text().c_str());
    if (opts_.lint_only) {
      const std::size_t findings = run_info_.lint.finding_count();
      std::fprintf(stderr, "pilot-lint: %zu finding(s), exiting before the "
                           "execution phase\n", findings);
      std::exit(findings > 0 ? 1 : 0);
    }
  }

  const int compute_ranks = static_cast<int>(processes_.size());
  const int nranks = compute_ranks + (opts_.needs_service_rank() ? 1 : 0);
  service_rank_ = opts_.needs_service_rank() ? nranks - 1 : -1;

  // Record/replay engine. Both construction (RP07: corrupt log) and
  // begin_run (RP05: rank count changed) fail fast here, before any rank
  // thread exists.
  if (!opts_.record_path.empty())
    replay_ = replay::Engine::make_recorder(opts_.record_path);
  else if (!opts_.replay_path.empty())
    replay_ = replay::Engine::make_replayer(opts_.replay_path, opts_.replay_timeout);
  if (replay_) replay_->begin_run(nranks);

  // Fault injection: the injector validates rank bounds against the final
  // rank count (FJ02) here, before any rank thread exists.
  if (opts_.fault_enabled)
    fault_ = std::make_unique<fault::Injector>(opts_.fault_plan, nranks);

  mpisim::World::Config cfg;
  cfg.nprocs = nranks;
  cfg.cpu_cores =
      opts_.sim_cores != 0 ? opts_.sim_cores : static_cast<unsigned>(compute_ranks);
  cfg.time_scale = opts_.sim_scale;
  cfg.msg_latency = opts_.sim_latency;
  cfg.msg_bandwidth = opts_.sim_bandwidth;
  cfg.clock_max_offset = opts_.sim_drift;
  cfg.clock_max_skew = opts_.sim_skew;
  cfg.seed = opts_.sim_seed;
  cfg.watchdog_seconds = opts_.watchdog;
  cfg.replay = replay_.get();
  cfg.fault = fault_.get();
  cfg.exec = opts_.exec_tasks ? mpisim::ExecMode::kTasks
                              : mpisim::ExecMode::kThreads;

  world_ = std::make_unique<mpisim::World>(cfg);
  if (opts_.exec_tasks) {
    // Virtual time: a wall-measured configuration duration would make two
    // otherwise-identical runs diverge, so charge a canonical 1 ms.
    world_->clock().backdate(0.001);
  } else {
    const double config_duration =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      config_epoch_)
            .count();
    world_->clock().backdate(config_duration);
  }
  world_->clock().set_quantum(opts_.sim_clockres);
  start_times_.assign(static_cast<std::size_t>(nranks), 0.0);

  if (opts_.svc_jumpshot) {
    mpe::Logger::Options mpe_opts;
    mpe_opts.comment = "Pilot MPE log (" + opts_.log_basename + ")";
    if (opts_.robust_log) mpe_opts.spill_base = opts_.spill_base();
    if (fault_) {
      fault::Injector* inj = fault_.get();
      mpe_opts.on_record = [inj](int rank, std::uint64_t nth) {
        inj->on_logged_record(rank, nth);
      };
      mpe_opts.spill_fault = [inj](int rank, std::uint64_t nth, std::size_t nbytes) {
        return inj->spill_write_bytes(rank, nth, nbytes);
      };
    }
    logviz_ = std::make_unique<LogViz>(*world_, mpe_opts);
    for (const auto& [name, color] : user_state_defs_)
      logviz_->define_user_state(name, color);
    if (opts_.robust_log) logviz_->logger().write_spill_defs();
  }
  if (opts_.needs_service_rank()) {
    std::vector<Service::ChannelMeta> metas;
    metas.reserve(channels_.size());
    for (const auto& c : channels_)
      metas.push_back(Service::ChannelMeta{c.from->rank, c.to->rank, c.name});
    service_ = std::make_unique<Service>(opts_, std::move(metas), rank_names());
  }

  phase_ = Phase::kRunning;
  mpisim::Comm& c0 = world_->start([this](mpisim::Comm& c) { return dispatch_rank(c); });

  if (logviz_) {
    logviz_->logger().log_sync_clocks(c0);
    // The Configuration Phase rectangle on rank 0, back-dated to t=0.
    logviz_->configure_phase(c0, 0.0, c0.wtime());
    logviz_->begin_compute(c0, *main_);
  }
  svc_call_line(site, "PI_StartAll");
}

int Runtime::dispatch_rank(mpisim::Comm& c) {
  if (logviz_) logviz_->logger().log_sync_clocks(c);

  if (c.rank() == service_rank_) {
    const int status = service_->run(c);
    if (logviz_) {
      logviz_->logger().log_sync_clocks(c);
      logviz_->logger().finish_log(c, opts_.clog2_path());
    }
    return status;
  }

  Process* proc = &processes_[static_cast<std::size_t>(c.rank())];
  if (logviz_) logviz_->begin_compute(c, *proc);
  const int status = proc->work(proc->index, proc->arg2);
  if (logviz_) logviz_->end_compute(c);
  finalize_rank(c);
  return status;
}

void Runtime::finalize_rank(mpisim::Comm& c) {
  svc_done();
  if (logviz_) {
    logviz_->logger().log_sync_clocks(c);
    const double wrapup = logviz_->logger().finish_log(c, opts_.clog2_path());
    if (c.rank() == 0) run_info_.mpe_wrapup_seconds = wrapup;
  }
}

void Runtime::harvest_fault() {
  if (!fault_) return;
  run_info_.fault_schedule = fault_->schedule_text();
  if (world_) run_info_.crashed_ranks = world_->crashed_ranks();

  analyze::Report rep;
  for (const auto& f : fault_->fired()) {
    const std::string subject = util::strprintf("rank %d", f.rank);
    switch (f.kind) {
      case fault::Injector::Fired::Kind::kCrashCall:
        rep.add("FJ10", analyze::Severity::kError,
                util::strprintf(
                    "fault injection killed rank %d at substrate call #%llu (%s)",
                    f.rank, static_cast<unsigned long long>(f.n), f.detail.c_str()),
                subject);
        break;
      case fault::Injector::Fired::Kind::kCrashEvent:
        rep.add("FJ10", analyze::Severity::kError,
                util::strprintf(
                    "fault injection killed rank %d after logged event #%llu",
                    f.rank, static_cast<unsigned long long>(f.n)),
                subject);
        break;
      case fault::Injector::Fired::Kind::kTrunc:
        rep.add("FJ20", analyze::Severity::kWarning,
                util::strprintf(
                    "fault injection truncated rank %d's spill write #%llu (%s); "
                    "spill stream disabled, salvage keeps the prefix",
                    f.rank, static_cast<unsigned long long>(f.n), f.detail.c_str()),
                subject);
        break;
    }
  }
  if (world_ && world_->abort_code() == mpisim::World::kPeerDeadAbortCode) {
    std::string names;
    for (int r : run_info_.crashed_ranks)
      names += (names.empty() ? "" : ", ") + std::to_string(r);
    rep.add("FJ11", analyze::Severity::kError,
            util::strprintf(
                "surviving ranks aborted after the dead-peer grace period: "
                "crashed rank(s) %s never rejoined",
                names.empty() ? "?" : names.c_str()),
            names.empty() ? "" : ("rank " + names));
  }
  // Print once (stop_main and teardown both harvest), mirroring the replay
  // engine's stderr diagnostics.
  if (!rep.empty() && run_info_.fault.empty())
    std::fprintf(stderr, "pilot-fault:\n%s", rep.to_text().c_str());
  run_info_.fault = rep;
}

void Runtime::stop_main(const CallSite& site, int status) {
  require_phase(site, Phase::kRunning, "PI_StopMain");
  if (acting_process() != main_)
    fail(site, "PI_StopMain must be called by PI_MAIN");
  mpisim::Comm& c = comm(site, "PI_StopMain");

  if (!world_->is_aborted()) {
    svc_call_line(site, util::strprintf("PI_StopMain status=%d", status));
    if (logviz_) logviz_->end_compute(c);
    finalize_rank(c);
  }

  tls_process = nullptr;
  const auto result = world_->finish();
  run_info_.completed = true;
  run_info_.aborted = result.aborted;
  run_info_.abort_code = result.abort_code;
  run_info_.exit_codes = result.exit_codes;
  if (service_) {
    run_info_.deadlock = service_->deadlock_detected();
    run_info_.deadlock_report = service_->deadlock_report();
  }
  if (replay_) {
    if (replay_->mode() == replay::Engine::Mode::kRecord)
      replay_->save();
    else
      replay_->finish();  // RP06 warning when recorded events went unused
    run_info_.replay = replay_->report();
    run_info_.replay_diverged = replay_->diverged();
  }
  harvest_fault();
  if (opts_.svc_analyze) {
    // The world join above published every rank's traffic counters.
    const analyze::Report usage = analyze::lint_usage(build_topology());
    if (!usage.empty())
      std::fprintf(stderr, "pilot-analyze (usage):\n%s", usage.to_text().c_str());
    run_info_.lint.merge(usage);
  }
  phase_ = Phase::kDone;
}

// --- utilities -------------------------------------------------------------------

double Runtime::start_time(const CallSite& site) {
  mpisim::Comm& c = comm(site, "PI_StartTime");
  const double t = c.wtime();
  if (static_cast<std::size_t>(c.rank()) < start_times_.size())
    start_times_[static_cast<std::size_t>(c.rank())] = t;
  if (logviz_) logviz_->utility(c, "PI_StartTime", site, util::strprintf("%.9f", t));
  svc_call_line(site, "PI_StartTime");
  return t;
}

double Runtime::end_time(const CallSite& site) {
  mpisim::Comm& c = comm(site, "PI_EndTime");
  const double started =
      static_cast<std::size_t>(c.rank()) < start_times_.size()
          ? start_times_[static_cast<std::size_t>(c.rank())]
          : 0.0;
  const double dt = c.wtime() - started;
  if (logviz_) logviz_->utility(c, "PI_EndTime", site, util::strprintf("%.9f", dt));
  svc_call_line(site, "PI_EndTime");
  return dt;
}

void Runtime::log(const CallSite& site, const char* text) {
  if (text == nullptr) fail(site, "PI_Log: null text");
  mpisim::Comm& c = comm(site, "PI_Log");
  if (logviz_) logviz_->user_log(c, site, text);
  svc_call_line(site, util::strprintf("PI_Log \"%s\"", text));
}

bool Runtime::is_logging() const {
  return opts_.svc_jumpshot || opts_.svc_calls;
}

void Runtime::abort(const CallSite& site, int errcode, const char* text) {
  const Process* proc = acting_process();
  std::fprintf(stderr, "PI_Abort(%d) by %s at %s: %s\n", errcode,
               proc ? proc->name.c_str() : "?", site_str(site).c_str(),
               text ? text : "");
  mpisim::Comm* c = mpisim::World::current();
  if (phase_ == Phase::kRunning && c != nullptr) {
    // MPI_Abort semantics: tear down all messaging. The MPE log, which
    // needs messages to be gathered at finalize, is unavoidably lost —
    // the limitation the paper documents.
    c->abort(errcode);  // never returns
  }
  throw PilotAborted(errcode, util::strprintf("PI_Abort(%d): %s", errcode,
                                              text ? text : ""));
}

void Runtime::compute(const CallSite& site, double seconds) {
  if (seconds < 0) fail(site, "PI_Compute: negative duration");
  mpisim::Comm& c = comm(site, "PI_Compute");
  c.compute(seconds);
}

// --- service-event helpers ---------------------------------------------------------

void Runtime::svc_call_line(const CallSite& site, const std::string& what) {
  if (!opts_.svc_calls || service_rank_ < 0) return;
  mpisim::Comm* c = mpisim::World::current();
  if (c == nullptr || c->rank() == service_rank_) return;
  const Process* proc = acting_process();
  const auto line = util::strprintf("%s %s %s",
                                    proc ? proc->name.c_str() : "?", what.c_str(),
                                    site_str(site).c_str());
  const auto bytes = Service::encode_call(line);
  c->send(service_rank_, kTagService, bytes.data(), bytes.size());
}

void Runtime::svc_write_event(int channel_id) {
  if (!opts_.svc_deadlock || service_rank_ < 0) return;
  mpisim::Comm* c = mpisim::World::current();
  if (c == nullptr) return;
  const auto bytes = Service::encode_write(channel_id);
  c->send(service_rank_, kTagService, bytes.data(), bytes.size());
}

void Runtime::svc_wait(const std::vector<int>& channel_ids, const CallSite& site) {
  if (!opts_.svc_deadlock || service_rank_ < 0) return;
  mpisim::Comm* c = mpisim::World::current();
  if (c == nullptr) return;
  const Process* proc = acting_process();
  const auto bytes = Service::encode_wait(channel_ids, site_str(site),
                                          proc ? proc->name : "?");
  c->send(service_rank_, kTagService, bytes.data(), bytes.size());
}

void Runtime::svc_consume(int channel_id, std::uint32_t count) {
  if (!opts_.svc_deadlock || service_rank_ < 0) return;
  mpisim::Comm* c = mpisim::World::current();
  if (c == nullptr) return;
  const auto bytes = Service::encode_consume(channel_id, count);
  c->send(service_rank_, kTagService, bytes.data(), bytes.size());
}

void Runtime::svc_resume() {
  if (!opts_.svc_deadlock || service_rank_ < 0) return;
  mpisim::Comm* c = mpisim::World::current();
  if (c == nullptr) return;
  const auto bytes = Service::encode_resume();
  c->send(service_rank_, kTagService, bytes.data(), bytes.size());
}

void Runtime::svc_done() {
  if (service_rank_ < 0) return;
  mpisim::Comm* c = mpisim::World::current();
  if (c == nullptr || c->rank() == service_rank_) return;
  const auto bytes = Service::encode_done();
  c->send(service_rank_, kTagService, bytes.data(), bytes.size());
}

// --- whole-program harness ----------------------------------------------------------

RunResult run(const std::vector<std::string>& args,
              const std::function<int(int, char**)>& program_main) {
  if (Runtime::current())
    throw PilotError("pilot::run: another Pilot program is active");

  std::vector<std::string> storage = args;
  if (storage.empty()) storage.emplace_back("pilot-program");
  std::vector<char*> ptrs;
  ptrs.reserve(storage.size() + 1);
  for (auto& s : storage) ptrs.push_back(s.data());
  ptrs.push_back(nullptr);

  RunResult res;
  try {
    res.status = program_main(static_cast<int>(storage.size()), ptrs.data());
  } catch (const mpisim::AbortedError& e) {
    res.aborted = true;
    res.abort_code = e.code();
    res.status = e.code();
  } catch (const PilotAborted& e) {
    res.aborted = true;
    res.abort_code = e.code();
    res.status = e.code();
  } catch (const replay::DivergenceError& e) {
    // Fail-fast divergence on the main thread (RP05/RP07 at PI_StartAll, or
    // a mid-run divergence in one of PI_MAIN's own operations).
    res.replay_diverged = true;
    res.replay.add(e.diagnostic());
    res.status = 1;
  } catch (const mpisim::RankKilledError& e) {
    // The fault plan's victim was rank 0 (PI_MAIN) itself. Mark it dead so
    // teardown below reports the crash like any other; unlike worker kills
    // there is no grace period — the host thread is gone.
    res.aborted = true;
    res.abort_code = mpisim::World::kPeerDeadAbortCode;
    res.status = mpisim::World::kPeerDeadAbortCode;
    if (Runtime* cur = Runtime::current())
      if (auto* w = cur->world()) w->kill_rank(e.rank());
  } catch (...) {
    // Join the rank threads before moving g_runtime: their reads of the
    // installed pointer must happen-before the uninstall() write.
    if (Runtime* cur = Runtime::current()) cur->teardown();
    Runtime::uninstall();
    throw;
  }

  // Teardown first (joins any still-running world, harvesting abort state):
  // rank threads read g_runtime via Runtime::require(), so they must be
  // joined before uninstall() writes it.
  if (Runtime* cur = Runtime::current()) cur->teardown();
  if (auto rt = Runtime::uninstall()) {
    const auto& info = rt->run_info();
    res.aborted = res.aborted || info.aborted;
    if (res.abort_code == 0) res.abort_code = info.abort_code;
    res.deadlock = info.deadlock;
    res.deadlock_report = info.deadlock_report;
    res.mpe_wrapup_seconds = info.mpe_wrapup_seconds;
    res.exit_codes = info.exit_codes;
    res.lint = info.lint;
    // The engine's own report is authoritative when it exists (it includes
    // every divergence seen on any rank); the catch above only covers the
    // case where the engine never came to life (corrupt .prl).
    if (!info.replay.empty()) res.replay = info.replay;
    res.replay_diverged = res.replay_diverged || info.replay_diverged;
    res.fault = info.fault;
    res.crashed_ranks = info.crashed_ranks;
    res.fault_schedule = info.fault_schedule;
  }
  return res;
}

}  // namespace pilot

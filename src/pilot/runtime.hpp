// The Pilot runtime: entity tables, phase rules, the message engine behind
// PI_Read/PI_Write and the collectives, and the integration points for the
// three services (native log, deadlock detector, MPE/Jumpshot log).
//
// One Runtime exists per Pilot program run (installed globally so the
// C-style PI_* API can find it; pilot::run manages the lifecycle). Pilot
// programs go through three phases:
//
//   Config   — after PI_Configure: create processes/channels/bundles.
//   Running  — after PI_StartAll: work functions execute, I/O allowed.
//   Done     — after PI_StopMain: logs finalized, world joined.
//
// Misuse of any API raises PilotError with source file:line context.
#pragma once

#include <cstdarg>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "analyze/topology.hpp"
#include "fault/injector.hpp"
#include "mpisim/world.hpp"
#include "pilot/entities.hpp"
#include "replay/engine.hpp"
#include "pilot/errors.hpp"
#include "pilot/format.hpp"
#include "pilot/logviz.hpp"
#include "pilot/options.hpp"
#include "pilot/service.hpp"

namespace pilot {

class Runtime {
public:
  explicit Runtime(Options opts);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- global instance management (used by the PI_* layer and pilot::run) --
  static Runtime* current();
  static void install(std::unique_ptr<Runtime> rt);
  static std::unique_ptr<Runtime> uninstall();
  /// current() or a PilotError explaining that PI_Configure must run first.
  static Runtime& require(const CallSite& site);

  // --- configuration phase ---------------------------------------------------
  /// Finish PI_Configure: records the config-phase epoch and creates
  /// PI_MAIN. Returns the process budget (options.np, 0 = unbounded).
  int configure(const CallSite& site);

  Process* create_process(const CallSite& site, WorkFunc work, int index, void* arg2);
  Channel* create_channel(const CallSite& site, Process* from, Process* to);
  Bundle* create_bundle(const CallSite& site, PI_BUNUSE usage,
                        PI_CHANNEL* const channels[], int size);
  Channel** copy_channels(const CallSite& site, PI_COPYDIR direction,
                          PI_CHANNEL* const channels[], int size);

  void set_name(const CallSite& site, Process* p, const char* name);
  void set_name(const CallSite& site, Channel* c, const char* name);
  void set_name(const CallSite& site, Bundle* b, const char* name);

  /// Custom user state (PI_DefineState / PI_StateBegin / PI_StateEnd).
  int define_user_state(const CallSite& site, const char* name, const char* color);
  void state_begin(const CallSite& site, int handle);
  void state_end(const CallSite& site, int handle);

  // --- execution phase ---------------------------------------------------------
  void start_all(const CallSite& site);
  void stop_main(const CallSite& site, int status);

  /// Tear down an abandoned run (abort + join) and harvest abort/deadlock
  /// state into run_info(). Idempotent; called by the destructor and by
  /// pilot::run's exception paths.
  void teardown();

  void write(const CallSite& site, Channel* chan, const char* fmt, std::va_list ap);
  void read(const CallSite& site, Channel* chan, const char* fmt, std::va_list ap);
  void broadcast(const CallSite& site, Bundle* b, const char* fmt, std::va_list ap);
  void scatter(const CallSite& site, Bundle* b, const char* fmt, std::va_list ap);
  void gather(const CallSite& site, Bundle* b, const char* fmt, std::va_list ap);
  void reduce(const CallSite& site, Bundle* b, PI_REDOP op, const char* fmt,
              std::va_list ap);

  int select(const CallSite& site, Bundle* b);
  int try_select(const CallSite& site, Bundle* b);
  int channel_has_data(const CallSite& site, Channel* chan);

  double start_time(const CallSite& site);
  double end_time(const CallSite& site);
  void log(const CallSite& site, const char* text);
  [[nodiscard]] bool is_logging() const;
  [[noreturn]] void abort(const CallSite& site, int errcode, const char* text);
  void compute(const CallSite& site, double seconds);

  // --- results (valid after stop_main; benches and tests read these) -----------
  struct RunInfo {
    bool completed = false;  ///< stop_main ran to the end
    bool aborted = false;
    int abort_code = 0;
    bool deadlock = false;
    std::string deadlock_report;
    double mpe_wrapup_seconds = 0.0;  ///< MPE finish cost (rank-0 clock)
    std::vector<int> exit_codes;
    /// Analyze-service findings (-pisvc=a): topology lint from PI_StartAll
    /// plus usage lint from PI_StopMain. Empty without the service.
    analyze::Report lint;
    /// Replay divergence diagnostics (-pireplay=): RP-series findings, plus
    /// the RP06 unused-events warning. Empty without replay.
    analyze::Report replay;
    bool replay_diverged = false;
    /// Fault-injection outcome (-pifault=): FJ-series diagnostics for every
    /// fault that fired, the ranks killed, and the deterministic schedule
    /// dump chaos tests compare across runs. Empty without the option.
    analyze::Report fault;
    std::vector<int> crashed_ranks;
    std::string fault_schedule;
  };
  [[nodiscard]] const RunInfo& run_info() const { return run_info_; }
  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] Process* main_process() { return main_; }
  [[nodiscard]] mpisim::World* world() { return world_.get(); }

  /// Rank names (for the renderer's Y axis), in rank order.
  [[nodiscard]] std::vector<std::string> rank_names() const;

  /// Snapshot of the entity graph (plus traffic counters once the run is
  /// over) in the analyze library's plain form.
  [[nodiscard]] analyze::Topology build_topology() const;

private:
  enum class Phase { kPreConfig, kConfig, kRunning, kDone };

  // Validation helpers; all throw PilotError with site context.
  [[noreturn]] void fail(const CallSite& site, const std::string& msg) const;
  void require_phase(const CallSite& site, Phase want, const char* what) const;
  Process* current_process(const CallSite& site, const char* what) const;
  /// The Process of the acting execution context, or nullptr (service rank,
  /// outside any rank). During the execution phase this derives from
  /// World::current() — correct on both substrates, where thread-locals
  /// would misattribute fibers sharing the carrier thread.
  Process* acting_process() const;
  mpisim::Comm& comm(const CallSite& site, const char* what) const;
  void check_pointer(const CallSite& site, const void* p, const char* what) const;

  // Wire helpers.
  struct ParsedArg {
    FormatSpec spec;
    std::size_t count = 0;       // resolved element count (writer side)
    const void* data = nullptr;  // writer source
    // reader-side destinations:
    void* dest = nullptr;     // scalar/fixed/star target
    int* len_out = nullptr;   // caret: length destination
    void** buf_out = nullptr; // caret: allocated-buffer destination
    double scalar_store = 0;  // staging for scalar writes
    std::vector<std::uint8_t> staged;  // staging for promoted scalars
  };
  std::vector<ParsedArg> parse_write_args(const CallSite& site, const char* fmt,
                                          std::va_list ap);
  std::vector<ParsedArg> parse_read_args(const CallSite& site, const char* fmt,
                                         std::va_list ap);
  std::vector<std::uint8_t> build_wire(const ParsedArg& arg) const;
  /// Deliver one received message into a reader ParsedArg; returns element
  /// count. Validates sizes and (level>=2) signature compatibility.
  std::size_t deliver_wire(const CallSite& site, const Channel& chan,
                           const ParsedArg& arg,
                           const std::vector<std::uint8_t>& wire);
  std::string first_value_string(const ParsedArg& arg) const;

  // Service-event helpers (no-ops when the service rank is absent).
  void svc_call_line(const CallSite& site, const std::string& what);
  void svc_write_event(int channel_id);
  void svc_wait(const std::vector<int>& channel_ids, const CallSite& site);
  void svc_consume(int channel_id, std::uint32_t count);
  void svc_resume();
  void svc_done();

  /// Per-rank tail work: DONE + MPE sync/finish (the dispatcher and
  /// stop_main share it).
  void finalize_rank(mpisim::Comm& c);

  /// Collect fault-injection outcomes (FJ diagnostics, crashed ranks, the
  /// schedule dump) into run_info(). Idempotent; stop_main and teardown
  /// both call it.
  void harvest_fault();

  /// Replay enforcement: spin until `chan` has data, or raise RP04 via the
  /// engine once its timeout elapses without the recorded outcome.
  void wait_channel_ready(mpisim::Comm& c, const Channel& chan, int subject_id,
                          int branch, const CallSite& site);

  int dispatch_rank(mpisim::Comm& c);

  Options opts_;
  Phase phase_ = Phase::kPreConfig;
  std::chrono::steady_clock::time_point config_epoch_;

  std::deque<Process> processes_;  // [0] = PI_MAIN
  std::deque<Channel> channels_;
  std::deque<Bundle> bundles_;
  Process* main_ = nullptr;
  std::vector<std::pair<std::string, std::string>> user_state_defs_;  // name,color

  std::unique_ptr<mpisim::World> world_;
  std::vector<double> start_times_;  ///< PI_StartTime per rank (TLS would
                                     ///< be shared by fibers under tasks)
  std::unique_ptr<LogViz> logviz_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<replay::Engine> replay_;
  std::unique_ptr<fault::Injector> fault_;
  int service_rank_ = -1;

  RunInfo run_info_;
};

/// Result of running a whole Pilot program via pilot::run.
struct RunResult {
  int status = 0;  ///< program_main's return value (or abort code)
  bool aborted = false;
  int abort_code = 0;
  bool deadlock = false;
  std::string deadlock_report;
  double mpe_wrapup_seconds = 0.0;
  std::vector<int> exit_codes;
  analyze::Report lint;    ///< analyze-service findings (-pisvc=a)
  analyze::Report replay;  ///< replay divergence findings (-pireplay=)
  bool replay_diverged = false;
  analyze::Report fault;           ///< fault-injection findings (-pifault=)
  std::vector<int> crashed_ranks;  ///< ranks killed by fault injection
  std::string fault_schedule;      ///< deterministic fault-schedule dump
};

/// Run a Pilot program (its "main") under a fresh runtime with the given
/// command-line arguments; args[0] should be a program name. Catches aborts
/// and converts them to a RunResult, and guarantees teardown even when the
/// program errors out mid-run.
RunResult run(const std::vector<std::string>& args,
              const std::function<int(int, char**)>& program_main);

}  // namespace pilot

// The Pilot message engine: PI_Read / PI_Write, the collectives, and the
// select family. Wire layout per format specifier (= per message):
//
//   [writer signature : string] [element count : u64] [payload bytes]
//
// The embedded signature is what level-2 checking compares against the
// reader's own format; the element count makes "%^d" (receive an array of
// unknown length in one call, V2.1) possible.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "pilot/runtime.hpp"
#include "util/bytebuf.hpp"
#include "util/strings.hpp"

namespace pilot {

namespace {

FormatSpec parse_signature(const std::string& sig) {
  return parse_format("%" + sig).front();
}

template <typename T>
std::vector<std::uint8_t> stage_scalar(T v) {
  std::vector<std::uint8_t> out(sizeof(T));
  std::memcpy(out.data(), &v, sizeof(T));
  return out;
}

// Analyze-service traffic recording: remember each side's distinct format
// signatures (only one thread ever touches a given side's vector).
void note_sig(std::vector<std::string>& sigs, const std::string& sig) {
  for (const auto& s : sigs)
    if (s == sig) return;
  if (sigs.size() < 8) sigs.push_back(sig);
}

}  // namespace

std::vector<Runtime::ParsedArg> Runtime::parse_write_args(const CallSite& site,
                                                          const char* fmt,
                                                          std::va_list ap) {
  std::vector<FormatSpec> specs;
  try {
    specs = parse_format(fmt ? fmt : "");
  } catch (const FormatError& e) {
    fail(site, e.what());
  }

  std::vector<ParsedArg> args;
  args.reserve(specs.size());
  for (const FormatSpec& spec : specs) {
    ParsedArg a;
    a.spec = spec;
    if (spec.count == CountKind::kScalar) {
      a.count = 1;
      switch (spec.type) {
        case ValueType::kChar:
          a.staged = stage_scalar(static_cast<char>(va_arg(ap, int)));
          break;
        case ValueType::kInt: a.staged = stage_scalar(va_arg(ap, int)); break;
        case ValueType::kUnsigned: a.staged = stage_scalar(va_arg(ap, unsigned)); break;
        case ValueType::kLong: a.staged = stage_scalar(va_arg(ap, long)); break;
        case ValueType::kUnsignedLong:
          a.staged = stage_scalar(va_arg(ap, unsigned long));
          break;
        case ValueType::kLongLong:
          a.staged = stage_scalar(va_arg(ap, long long));
          break;
        case ValueType::kUnsignedLongLong:
          a.staged = stage_scalar(va_arg(ap, unsigned long long));
          break;
        case ValueType::kFloat:
          a.staged = stage_scalar(static_cast<float>(va_arg(ap, double)));
          break;
        case ValueType::kDouble: a.staged = stage_scalar(va_arg(ap, double)); break;
        case ValueType::kBytes:
          fail(site, "%b cannot be scalar");  // parse_format already rejects
      }
      a.data = a.staged.data();
    } else {
      if (spec.count == CountKind::kFixed) {
        a.count = spec.fixed_count;
      } else {  // kStar / kCaret: runtime length argument
        const int n = va_arg(ap, int);
        if (n < 0)
          fail(site, util::strprintf("array length argument is negative (%d)", n));
        a.count = static_cast<std::size_t>(n);
      }
      a.data = va_arg(ap, const void*);
      if (a.count > 0 && a.data == nullptr) {
        if (opts_.check_level >= 3)
          fail(site, "array pointer argument seems invalid (null)");
        fail(site, "array pointer argument is null");
      }
    }
    args.push_back(std::move(a));
  }
  return args;
}

std::vector<Runtime::ParsedArg> Runtime::parse_read_args(const CallSite& site,
                                                         const char* fmt,
                                                         std::va_list ap) {
  std::vector<FormatSpec> specs;
  try {
    specs = parse_format(fmt ? fmt : "");
  } catch (const FormatError& e) {
    fail(site, e.what());
  }

  std::vector<ParsedArg> args;
  args.reserve(specs.size());
  for (const FormatSpec& spec : specs) {
    ParsedArg a;
    a.spec = spec;
    switch (spec.count) {
      case CountKind::kScalar:
        a.count = 1;
        a.dest = va_arg(ap, void*);
        break;
      case CountKind::kFixed:
        a.count = spec.fixed_count;
        a.dest = va_arg(ap, void*);
        break;
      case CountKind::kStar: {
        const int n = va_arg(ap, int);
        if (n < 0)
          fail(site, util::strprintf("array length argument is negative (%d)", n));
        a.count = static_cast<std::size_t>(n);
        a.dest = va_arg(ap, void*);
        break;
      }
      case CountKind::kCaret:
        a.len_out = va_arg(ap, int*);
        a.buf_out = va_arg(ap, void**);
        if (a.len_out == nullptr || a.buf_out == nullptr)
          fail(site, "%^ conversion needs an int* length and a T** buffer argument");
        break;
    }
    if (a.spec.count != CountKind::kCaret && a.count > 0 && a.dest == nullptr)
      fail(site, "destination pointer is null");
    args.push_back(a);
  }
  return args;
}

std::vector<std::uint8_t> Runtime::build_wire(const ParsedArg& arg) const {
  util::ByteWriter w;
  w.str(arg.spec.signature());
  w.u64(arg.count);
  if (arg.count > 0)
    w.raw(arg.data, arg.count * arg.spec.element_size());
  return w.take();
}

std::size_t Runtime::deliver_wire(const CallSite& site, const Channel& chan,
                                  const ParsedArg& arg,
                                  const std::vector<std::uint8_t>& wire) {
  util::ByteReader r(wire);
  std::string writer_sig;
  std::uint64_t count = 0;
  try {
    writer_sig = r.str();
    count = r.u64();
  } catch (const util::IoError&) {
    fail(site, "corrupt message on channel " + chan.name +
                   " (not written by PI_Write?)");
  }

  if (opts_.check_level >= 2) {
    FormatSpec writer;
    try {
      writer = parse_signature(writer_sig);
    } catch (const FormatError&) {
      fail(site, "corrupt writer signature on channel " + chan.name);
    }
    if (!specs_compatible(writer, arg.spec))
      fail(site, util::strprintf(
                     "format mismatch on channel %s: writer sent \"%%%s\" but "
                     "reader asked for \"%%%s\"",
                     chan.name.c_str(), writer_sig.c_str(),
                     arg.spec.signature().c_str()));
  }

  const std::size_t elem = arg.spec.element_size();
  if (r.remaining() != count * elem)
    fail(site, util::strprintf(
                   "message on channel %s is %zu bytes but declares %llu element(s) "
                   "of %zu byte(s)",
                   chan.name.c_str(), r.remaining(),
                   static_cast<unsigned long long>(count), elem));

  switch (arg.spec.count) {
    case CountKind::kScalar:
    case CountKind::kFixed:
    case CountKind::kStar:
      if (count != arg.count)
        fail(site, util::strprintf(
                       "length mismatch on channel %s: writer sent %llu element(s), "
                       "reader expected %zu",
                       chan.name.c_str(), static_cast<unsigned long long>(count),
                       arg.count));
      if (count > 0) std::memcpy(arg.dest, r.take(count * elem), count * elem);
      break;
    case CountKind::kCaret: {
      void* buf = std::malloc(std::max<std::size_t>(count * elem, 1));
      if (buf == nullptr) fail(site, "out of memory in %^ allocation");
      if (count > 0) std::memcpy(buf, r.take(count * elem), count * elem);
      *arg.len_out = static_cast<int>(count);
      *arg.buf_out = buf;
      break;
    }
  }
  return count;
}

std::string Runtime::first_value_string(const ParsedArg& arg) const {
  if (arg.count == 0 || arg.data == nullptr) return "-";
  const void* p = arg.data;
  switch (arg.spec.type) {
    case ValueType::kChar: {
      char v;
      std::memcpy(&v, p, sizeof v);
      return util::strprintf("%d", static_cast<int>(v));
    }
    case ValueType::kInt: {
      int v;
      std::memcpy(&v, p, sizeof v);
      return util::strprintf("%d", v);
    }
    case ValueType::kUnsigned: {
      unsigned v;
      std::memcpy(&v, p, sizeof v);
      return util::strprintf("%u", v);
    }
    case ValueType::kLong: {
      long v;
      std::memcpy(&v, p, sizeof v);
      return util::strprintf("%ld", v);
    }
    case ValueType::kUnsignedLong: {
      unsigned long v;
      std::memcpy(&v, p, sizeof v);
      return util::strprintf("%lu", v);
    }
    case ValueType::kLongLong: {
      long long v;
      std::memcpy(&v, p, sizeof v);
      return util::strprintf("%lld", v);
    }
    case ValueType::kUnsignedLongLong: {
      unsigned long long v;
      std::memcpy(&v, p, sizeof v);
      return util::strprintf("%llu", v);
    }
    case ValueType::kFloat: {
      float v;
      std::memcpy(&v, p, sizeof v);
      return util::strprintf("%.6g", static_cast<double>(v));
    }
    case ValueType::kDouble: {
      double v;
      std::memcpy(&v, p, sizeof v);
      return util::strprintf("%.6g", v);
    }
    case ValueType::kBytes: {
      unsigned char v;
      std::memcpy(&v, p, sizeof v);
      return util::strprintf("0x%02x", v);
    }
  }
  return "?";
}

// --- point-to-point -----------------------------------------------------------------

void Runtime::write(const CallSite& site, Channel* chan, const char* fmt,
                    std::va_list ap) {
  require_phase(site, Phase::kRunning, "PI_Write");
  if (chan == nullptr) fail(site, "PI_Write: channel is null");
  Process* me = current_process(site, "PI_Write");
  if (opts_.check_level >= 1 && chan->from != me)
    fail(site, util::strprintf("PI_Write: %s is not the writer of channel %s "
                               "(writer is %s)",
                               me->name.c_str(), chan->name.c_str(),
                               chan->from->name.c_str()));
  mpisim::Comm& c = comm(site, "PI_Write");

  svc_call_line(site, util::strprintf("PI_Write %s \"%s\"", chan->name.c_str(),
                                      fmt ? fmt : ""));
  if (logviz_) logviz_->begin_state(c, logviz_->write_, site, *me);

  const auto args = parse_write_args(site, fmt, ap);
  for (const auto& arg : args) {
    const auto wire = build_wire(arg);
    if (opts_.svc_analyze) {
      ++chan->writes;
      note_sig(chan->write_sigs, arg.spec.signature());
    }
    if (logviz_) {
      logviz_->write_info(c, *chan, arg.count, first_value_string(arg));
      logviz_->arrow_send(c, chan->to->rank, chan->id, wire.size());
    }
    svc_write_event(chan->id);
    c.send(chan->to->rank, chan->id, wire.data(), wire.size());
  }
  if (logviz_) logviz_->end_state(c, logviz_->write_);
}

void Runtime::read(const CallSite& site, Channel* chan, const char* fmt,
                   std::va_list ap) {
  require_phase(site, Phase::kRunning, "PI_Read");
  if (chan == nullptr) fail(site, "PI_Read: channel is null");
  Process* me = current_process(site, "PI_Read");
  if (opts_.check_level >= 1 && chan->to != me)
    fail(site, util::strprintf("PI_Read: %s is not the reader of channel %s "
                               "(reader is %s)",
                               me->name.c_str(), chan->name.c_str(),
                               chan->to->name.c_str()));
  mpisim::Comm& c = comm(site, "PI_Read");

  svc_call_line(site, util::strprintf("PI_Read %s \"%s\"", chan->name.c_str(),
                                      fmt ? fmt : ""));
  if (logviz_) logviz_->begin_state(c, logviz_->read_, site, *me);

  const auto args = parse_read_args(site, fmt, ap);
  svc_wait({chan->id}, site);
  if (logviz_ && opts_.svc_analyze) logviz_->wait_on(c, *chan);
  std::uint32_t consumed = 0;
  for (const auto& arg : args) {
    if (opts_.svc_analyze) {
      ++chan->reads;
      note_sig(chan->read_sigs, arg.spec.signature());
    }
    auto [st, wire] = c.recv_any_size(chan->from->rank, chan->id);
    const double arrival = c.wtime();
    deliver_wire(site, *chan, arg, wire);
    ++consumed;
    if (logviz_) {
      logviz_->msg_arrive(c, arrival, *chan);
      logviz_->arrow_receive(c, arrival, chan->from->rank, chan->id, wire.size());
    }
  }
  svc_consume(chan->id, consumed);
  svc_resume();
  if (logviz_) logviz_->end_state(c, logviz_->read_);
}

// --- collectives ---------------------------------------------------------------------

namespace {
// Comm::sleep, not std::this_thread: under -piexec=tasks the spread must be
// a virtual-time delay, or it would stall every rank on the carrier thread.
void arrow_spread_sleep(mpisim::Comm& c, double seconds) {
  if (seconds > 0.0) c.sleep(seconds);
}
}  // namespace

void Runtime::broadcast(const CallSite& site, Bundle* b, const char* fmt,
                        std::va_list ap) {
  require_phase(site, Phase::kRunning, "PI_Broadcast");
  if (b == nullptr) fail(site, "PI_Broadcast: bundle is null");
  if (opts_.check_level >= 1 && b->usage != PI_BROADCAST)
    fail(site, "PI_Broadcast: bundle " + b->name + " was not created PI_BROADCAST");
  Process* me = current_process(site, "PI_Broadcast");
  if (opts_.check_level >= 1 && b->common != me)
    fail(site, util::strprintf("PI_Broadcast: %s is not the broadcaster of %s (%s is)",
                               me->name.c_str(), b->name.c_str(),
                               b->common->name.c_str()));
  mpisim::Comm& c = comm(site, "PI_Broadcast");

  svc_call_line(site, util::strprintf("PI_Broadcast %s \"%s\"", b->name.c_str(),
                                      fmt ? fmt : ""));
  if (logviz_) logviz_->begin_state(c, logviz_->broadcast_, site, *me, b);

  const auto args = parse_write_args(site, fmt, ap);
  for (const auto& arg : args) {
    const auto wire = build_wire(arg);
    if (logviz_) logviz_->write_info(c, *b->channels.front(), arg.count,
                                     first_value_string(arg));
    for (std::size_t i = 0; i < b->channels.size(); ++i) {
      if (i > 0) arrow_spread_sleep(c, opts_.arrow_spread);
      Channel* chan = b->channels[i];
      if (opts_.svc_analyze) {
        ++chan->writes;
        note_sig(chan->write_sigs, arg.spec.signature());
      }
      if (logviz_) logviz_->arrow_send(c, chan->to->rank, chan->id, wire.size());
      svc_write_event(chan->id);
      c.send(chan->to->rank, chan->id, wire.data(), wire.size());
    }
  }
  if (logviz_) logviz_->end_state(c, logviz_->broadcast_);
}

void Runtime::scatter(const CallSite& site, Bundle* b, const char* fmt,
                      std::va_list ap) {
  require_phase(site, Phase::kRunning, "PI_Scatter");
  if (b == nullptr) fail(site, "PI_Scatter: bundle is null");
  if (opts_.check_level >= 1 && b->usage != PI_SCATTER)
    fail(site, "PI_Scatter: bundle " + b->name + " was not created PI_SCATTER");
  Process* me = current_process(site, "PI_Scatter");
  if (opts_.check_level >= 1 && b->common != me)
    fail(site, util::strprintf("PI_Scatter: %s is not the scatterer of %s (%s is)",
                               me->name.c_str(), b->name.c_str(),
                               b->common->name.c_str()));
  mpisim::Comm& c = comm(site, "PI_Scatter");

  svc_call_line(site, util::strprintf("PI_Scatter %s \"%s\"", b->name.c_str(),
                                      fmt ? fmt : ""));
  if (logviz_) logviz_->begin_state(c, logviz_->scatter_, site, *me, b);

  // Scatter takes a pointer per specifier: `count` elements PER RECEIVER
  // (scalar = 1), drawn consecutively from an array of count * N elements.
  std::vector<FormatSpec> specs;
  try {
    specs = parse_format(fmt ? fmt : "");
  } catch (const FormatError& e) {
    fail(site, e.what());
  }
  const std::size_t nchan = b->channels.size();
  for (const FormatSpec& spec : specs) {
    std::size_t per_receiver = 1;
    if (spec.count == CountKind::kFixed) {
      per_receiver = spec.fixed_count;
    } else if (spec.count == CountKind::kStar || spec.count == CountKind::kCaret) {
      const int n = va_arg(ap, int);
      if (n < 0) fail(site, "PI_Scatter: negative length argument");
      per_receiver = static_cast<std::size_t>(n);
    }
    const auto* src = static_cast<const std::uint8_t*>(va_arg(ap, const void*));
    if (per_receiver > 0 && src == nullptr)
      fail(site, "PI_Scatter: source pointer is null");
    const std::size_t elem = spec.element_size();

    ParsedArg slice;
    slice.spec = spec;
    slice.count = per_receiver;
    for (std::size_t i = 0; i < nchan; ++i) {
      if (i > 0) arrow_spread_sleep(c, opts_.arrow_spread);
      Channel* chan = b->channels[i];
      slice.data = src + i * per_receiver * elem;
      const auto wire = build_wire(slice);
      if (opts_.svc_analyze) {
        ++chan->writes;
        note_sig(chan->write_sigs, slice.spec.signature());
      }
      if (logviz_) {
        if (i == 0) logviz_->write_info(c, *chan, per_receiver,
                                        first_value_string(slice));
        logviz_->arrow_send(c, chan->to->rank, chan->id, wire.size());
      }
      svc_write_event(chan->id);
      c.send(chan->to->rank, chan->id, wire.data(), wire.size());
    }
  }
  if (logviz_) logviz_->end_state(c, logviz_->scatter_);
}

void Runtime::gather(const CallSite& site, Bundle* b, const char* fmt,
                     std::va_list ap) {
  require_phase(site, Phase::kRunning, "PI_Gather");
  if (b == nullptr) fail(site, "PI_Gather: bundle is null");
  if (opts_.check_level >= 1 && b->usage != PI_GATHER)
    fail(site, "PI_Gather: bundle " + b->name + " was not created PI_GATHER");
  Process* me = current_process(site, "PI_Gather");
  if (opts_.check_level >= 1 && b->common != me)
    fail(site, util::strprintf("PI_Gather: %s is not the gatherer of %s (%s is)",
                               me->name.c_str(), b->name.c_str(),
                               b->common->name.c_str()));
  mpisim::Comm& c = comm(site, "PI_Gather");

  svc_call_line(site, util::strprintf("PI_Gather %s \"%s\"", b->name.c_str(),
                                      fmt ? fmt : ""));
  if (logviz_) logviz_->begin_state(c, logviz_->gather_, site, *me, b);

  // Gather fills a pointer per specifier with `count` elements PER SENDER
  // (scalar = 1), rank-ordered: count * N elements total.
  std::vector<FormatSpec> specs;
  try {
    specs = parse_format(fmt ? fmt : "");
  } catch (const FormatError& e) {
    fail(site, e.what());
  }

  std::vector<int> ids;
  ids.reserve(b->channels.size());
  for (const Channel* chan : b->channels) ids.push_back(chan->id);
  svc_wait(ids, site);
  if (logviz_ && opts_.svc_analyze)
    for (const Channel* chan : b->channels) logviz_->wait_on(c, *chan);

  for (const FormatSpec& spec : specs) {
    if (spec.count == CountKind::kCaret)
      fail(site, "PI_Gather does not support %^ (lengths must be known)");
    std::size_t per_sender = 1;
    if (spec.count == CountKind::kFixed) {
      per_sender = spec.fixed_count;
    } else if (spec.count == CountKind::kStar) {
      const int n = va_arg(ap, int);
      if (n < 0) fail(site, "PI_Gather: negative length argument");
      per_sender = static_cast<std::size_t>(n);
    }
    auto* dst = static_cast<std::uint8_t*>(va_arg(ap, void*));
    if (dst == nullptr) fail(site, "PI_Gather: destination pointer is null");
    const std::size_t elem = spec.element_size();

    ParsedArg slot;
    slot.spec = spec;
    slot.count = per_sender;
    for (std::size_t i = 0; i < b->channels.size(); ++i) {
      Channel* chan = b->channels[i];
      slot.dest = dst + i * per_sender * elem;
      if (opts_.svc_analyze) {
        ++chan->reads;
        note_sig(chan->read_sigs, slot.spec.signature());
      }
      auto [st, wire] = c.recv_any_size(chan->from->rank, chan->id);
      const double arrival = c.wtime();
      deliver_wire(site, *chan, slot, wire);
      svc_consume(chan->id, 1);
      if (logviz_) {
        logviz_->msg_arrive(c, arrival, *chan);
        logviz_->arrow_receive(c, arrival, chan->from->rank, chan->id, wire.size());
      }
    }
  }
  svc_resume();
  if (logviz_) logviz_->end_state(c, logviz_->gather_);
}

void Runtime::reduce(const CallSite& site, Bundle* b, PI_REDOP op, const char* fmt,
                     std::va_list ap) {
  require_phase(site, Phase::kRunning, "PI_Reduce");
  if (b == nullptr) fail(site, "PI_Reduce: bundle is null");
  if (opts_.check_level >= 1 && b->usage != PI_REDUCE)
    fail(site, "PI_Reduce: bundle " + b->name + " was not created PI_REDUCE");
  if (op < PI_SUM || op > PI_MAX) fail(site, "PI_Reduce: invalid operator");
  Process* me = current_process(site, "PI_Reduce");
  if (opts_.check_level >= 1 && b->common != me)
    fail(site, util::strprintf("PI_Reduce: %s is not the reducer of %s (%s is)",
                               me->name.c_str(), b->name.c_str(),
                               b->common->name.c_str()));
  mpisim::Comm& c = comm(site, "PI_Reduce");

  svc_call_line(site, util::strprintf("PI_Reduce %s \"%s\"", b->name.c_str(),
                                      fmt ? fmt : ""));
  if (logviz_) logviz_->begin_state(c, logviz_->reduce_, site, *me, b);

  std::vector<FormatSpec> specs;
  try {
    specs = parse_format(fmt ? fmt : "");
  } catch (const FormatError& e) {
    fail(site, e.what());
  }

  std::vector<int> ids;
  ids.reserve(b->channels.size());
  for (const Channel* chan : b->channels) ids.push_back(chan->id);
  svc_wait(ids, site);
  if (logviz_ && opts_.svc_analyze)
    for (const Channel* chan : b->channels) logviz_->wait_on(c, *chan);

  for (const FormatSpec& spec : specs) {
    if (spec.count == CountKind::kCaret)
      fail(site, "PI_Reduce does not support %^");
    if (spec.type == ValueType::kBytes)
      fail(site, "PI_Reduce does not support %b");
    std::size_t count = 1;
    if (spec.count == CountKind::kFixed) {
      count = spec.fixed_count;
    } else if (spec.count == CountKind::kStar) {
      const int n = va_arg(ap, int);
      if (n < 0) fail(site, "PI_Reduce: negative length argument");
      count = static_cast<std::size_t>(n);
    }
    auto* dst = static_cast<std::uint8_t*>(va_arg(ap, void*));
    if (dst == nullptr) fail(site, "PI_Reduce: destination pointer is null");
    const std::size_t elem = spec.element_size();
    const std::size_t bytes = count * elem;

    const mpisim::Datatype dt = [&] {
      switch (spec.type) {
        case ValueType::kChar: return mpisim::Datatype::kChar;
        case ValueType::kInt: return mpisim::Datatype::kInt;
        case ValueType::kUnsigned: return mpisim::Datatype::kUnsigned;
        case ValueType::kLong: return mpisim::Datatype::kLong;
        case ValueType::kUnsignedLong: return mpisim::Datatype::kUnsignedLong;
        case ValueType::kLongLong: return mpisim::Datatype::kLongLong;
        case ValueType::kUnsignedLongLong:
          return mpisim::Datatype::kUnsignedLongLong;
        case ValueType::kFloat: return mpisim::Datatype::kFloat;
        case ValueType::kDouble: return mpisim::Datatype::kDouble;
        case ValueType::kBytes: return mpisim::Datatype::kByte;
      }
      return mpisim::Datatype::kByte;
    }();
    const mpisim::Op mop = [&] {
      switch (op) {
        case PI_SUM: return mpisim::Op::kSum;
        case PI_PROD: return mpisim::Op::kProd;
        case PI_MIN: return mpisim::Op::kMin;
        case PI_MAX: return mpisim::Op::kMax;
      }
      return mpisim::Op::kSum;
    }();

    ParsedArg slot;
    slot.spec = spec;
    slot.count = count;
    std::vector<std::uint8_t> contribution(bytes);
    slot.dest = contribution.data();
    for (std::size_t i = 0; i < b->channels.size(); ++i) {
      Channel* chan = b->channels[i];
      if (opts_.svc_analyze) {
        ++chan->reads;
        note_sig(chan->read_sigs, slot.spec.signature());
      }
      auto [st, wire] = c.recv_any_size(chan->from->rank, chan->id);
      const double arrival = c.wtime();
      deliver_wire(site, *chan, slot, wire);
      svc_consume(chan->id, 1);
      if (logviz_) {
        logviz_->msg_arrive(c, arrival, *chan);
        logviz_->arrow_receive(c, arrival, chan->from->rank, chan->id, wire.size());
      }
      if (i == 0) {
        std::memcpy(dst, contribution.data(), bytes);
      } else {
        mpisim::reduce_apply(mop, dt, dst, contribution.data(), count);
      }
    }
  }
  svc_resume();
  if (logviz_) logviz_->end_state(c, logviz_->reduce_);
}

// --- select family -----------------------------------------------------------------

void Runtime::wait_channel_ready(mpisim::Comm& c, const Channel& chan,
                                 int subject_id, int branch,
                                 const CallSite& site) {
  // Blocking bounded probe instead of an iprobe spin: a spin would livelock
  // the cooperative substrate (and waste a core on the preemptive one).
  // Under tasks the timeout is a virtual timer, so a branch that can never
  // become ready is diagnosed without a wall-clock wait.
  if (!c.probe_any({{chan.from->rank, chan.id}}, replay_->timeout_seconds()))
    replay_->branch_never_ready(c.rank(), subject_id, branch, site.file,
                                site.line);
}

int Runtime::select(const CallSite& site, Bundle* b) {
  require_phase(site, Phase::kRunning, "PI_Select");
  if (b == nullptr) fail(site, "PI_Select: bundle is null");
  if (opts_.check_level >= 1 && b->usage != PI_SELECT_B)
    fail(site, "PI_Select: bundle " + b->name + " was not created PI_SELECT_B");
  Process* me = current_process(site, "PI_Select");
  if (opts_.check_level >= 1 && b->common != me)
    fail(site, util::strprintf("PI_Select: %s is not the reader of %s (%s is)",
                               me->name.c_str(), b->name.c_str(),
                               b->common->name.c_str()));
  mpisim::Comm& c = comm(site, "PI_Select");

  svc_call_line(site, "PI_Select " + b->name);
  if (logviz_) logviz_->begin_state(c, logviz_->select_, site, *me, b);

  std::vector<int> ids;
  ids.reserve(b->channels.size());
  for (const Channel* chan : b->channels) ids.push_back(chan->id);
  svc_wait(ids, site);
  if (logviz_ && opts_.svc_analyze)
    for (const Channel* chan : b->channels) logviz_->wait_on(c, *chan);

  int ready = -1;
  if (replay_ && replay_->replaying()) {
    // Enforce the recorded branch: wait for exactly that channel, however
    // the probe timing falls this run.
    ready = replay_->replay_select(c.rank(), b->id,
                                   static_cast<int>(b->channels.size()),
                                   site.file, site.line);
    const Channel* chan = b->channels[static_cast<std::size_t>(ready)];
    wait_channel_ready(c, *chan, b->id, ready, site);
  } else {
    // One blocking multi-channel probe; the substrate keeps the select
    // family's lowest-branch preference (first ready pair in argument
    // order) on both substrates.
    std::vector<std::pair<int, int>> wants;
    wants.reserve(b->channels.size());
    for (const Channel* chan : b->channels)
      wants.emplace_back(chan->from->rank, chan->id);
    ready = static_cast<int>(*c.probe_any(wants));
    if (replay_) replay_->record_select(c.rank(), b->id, ready);
  }
  svc_resume();
  // A state like PI_Read, but no arrival bubble: no message is consumed
  // until the subsequent PI_Read (paper, Section III-B). The popup carries
  // the ready channel index instead.
  if (logviz_)
    logviz_->end_state(c, logviz_->select_, util::strprintf("ready=%d", ready));
  return ready;
}

int Runtime::try_select(const CallSite& site, Bundle* b) {
  require_phase(site, Phase::kRunning, "PI_TrySelect");
  if (b == nullptr) fail(site, "PI_TrySelect: bundle is null");
  if (opts_.check_level >= 1 && b->usage != PI_SELECT_B)
    fail(site, "PI_TrySelect: bundle " + b->name + " was not created PI_SELECT_B");
  Process* me = current_process(site, "PI_TrySelect");
  if (opts_.check_level >= 1 && b->common != me)
    fail(site, util::strprintf("PI_TrySelect: %s is not the reader of %s",
                               me->name.c_str(), b->name.c_str()));
  mpisim::Comm& c = comm(site, "PI_TrySelect");

  int ready = -1;
  if (replay_ && replay_->replaying()) {
    ready = replay_->replay_try_select(c.rank(), b->id,
                                       static_cast<int>(b->channels.size()),
                                       site.file, site.line);
    // A recorded hit must be a hit again; a recorded miss is simply a miss
    // (not probing at all keeps the observable outcome identical).
    if (ready >= 0)
      wait_channel_ready(c, *b->channels[static_cast<std::size_t>(ready)],
                         b->id, ready, site);
  } else {
    for (std::size_t i = 0; i < b->channels.size(); ++i) {
      const Channel* chan = b->channels[i];
      if (c.iprobe(chan->from->rank, chan->id)) {
        ready = static_cast<int>(i);
        break;
      }
    }
    if (replay_) replay_->record_try_select(c.rank(), b->id, ready);
  }
  svc_call_line(site, util::strprintf("PI_TrySelect %s -> %d", b->name.c_str(), ready));
  if (logviz_)
    logviz_->utility(c, "PI_TrySelect", site, util::strprintf("%d", ready));
  return ready;
}

int Runtime::channel_has_data(const CallSite& site, Channel* chan) {
  require_phase(site, Phase::kRunning, "PI_ChannelHasData");
  if (chan == nullptr) fail(site, "PI_ChannelHasData: channel is null");
  Process* me = current_process(site, "PI_ChannelHasData");
  if (opts_.check_level >= 1 && chan->to != me)
    fail(site, util::strprintf("PI_ChannelHasData: %s is not the reader of %s",
                               me->name.c_str(), chan->name.c_str()));
  mpisim::Comm& c = comm(site, "PI_ChannelHasData");

  int has = 0;
  if (replay_ && replay_->replaying()) {
    has = replay_->replay_has_data(c.rank(), chan->id, site.file, site.line);
    if (has == 1) wait_channel_ready(c, *chan, chan->id, has, site);
  } else {
    has = c.iprobe(chan->from->rank, chan->id) ? 1 : 0;
    if (replay_) replay_->record_has_data(c.rank(), chan->id, has);
  }
  svc_call_line(site, util::strprintf("PI_ChannelHasData %s -> %d",
                                      chan->name.c_str(), has));
  if (logviz_)
    logviz_->utility(c, "PI_ChannelHasData", site, util::strprintf("%d", has));
  return has;
}

}  // namespace pilot

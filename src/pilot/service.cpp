#include "pilot/service.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "pilot/errors.hpp"
#include "util/bytebuf.hpp"
#include "util/strings.hpp"

namespace pilot {

namespace {

enum class Kind : std::uint8_t {
  kCall = 1,
  kWrite = 2,
  kWait = 3,
  kConsume = 4,
  kResume = 5,
  kDone = 6,
};

}  // namespace

Service::Service(const Options& opts, std::vector<ChannelMeta> channels,
                 std::vector<std::string> rank_names)
    : opts_(opts), channels_(std::move(channels)), rank_names_(std::move(rank_names)) {
  if (opts_.svc_calls) {
    log_.open(opts_.native_log_path(), std::ios::trunc);
    if (!log_)
      throw PilotError("cannot open native log file: " + opts_.native_log_path());
  }
}

std::vector<std::uint8_t> Service::encode_call(const std::string& text) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Kind::kCall));
  w.str(text);
  return w.take();
}

std::vector<std::uint8_t> Service::encode_write(int channel_id) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Kind::kWrite));
  w.i32(channel_id);
  return w.take();
}

std::vector<std::uint8_t> Service::encode_wait(const std::vector<int>& channel_ids,
                                               const std::string& site,
                                               const std::string& proc_name) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Kind::kWait));
  w.u32(static_cast<std::uint32_t>(channel_ids.size()));
  for (int id : channel_ids) w.i32(id);
  w.str(site);
  w.str(proc_name);
  return w.take();
}

std::vector<std::uint8_t> Service::encode_consume(int channel_id,
                                                  std::uint32_t count) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Kind::kConsume));
  w.i32(channel_id);
  w.u32(count);
  return w.take();
}

std::vector<std::uint8_t> Service::encode_resume() {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Kind::kResume));
  return w.take();
}

std::vector<std::uint8_t> Service::encode_done() {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Kind::kDone));
  return w.take();
}

bool Service::check_deadlock() {
  if (waiting_.empty()) return false;

  auto writer_of = [&](int channel_id) -> int {
    const std::size_t idx = static_cast<std::size_t>(channel_id) - 1;
    return idx < channels_.size() ? channels_[idx].writer_rank : -1;
  };
  auto has_pending = [&](int channel_id) {
    auto it = pending_writes_.find(channel_id);
    return it != pending_writes_.end() && it->second > 0;
  };

  // Candidate set: blocked ranks with nothing already pending.
  std::set<int> d;
  for (const auto& [rank, info] : waiting_) {
    bool satisfiable = false;
    for (int c : info.channel_ids)
      if (has_pending(c)) satisfiable = true;
    if (!satisfiable) d.insert(rank);
  }

  // Remove any rank that some still-live outsider could wake; iterate to a
  // fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = d.begin(); it != d.end();) {
      bool escapable = false;
      for (int c : waiting_.at(*it).channel_ids) {
        const int w = writer_of(c);
        if (w < 0) continue;
        const bool writer_stuck = d.count(w) != 0;
        const bool writer_done = done_.count(w) != 0;
        if (!writer_stuck && !writer_done) {
          escapable = true;  // writer is alive and running: could still write
          break;
        }
      }
      if (escapable) {
        it = d.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
  if (d.empty()) return false;

  std::string report = "Pilot deadlock detected:\n";
  for (int rank : d) {
    const auto& info = waiting_.at(rank);
    std::string chans;
    for (std::size_t i = 0; i < info.channel_ids.size(); ++i) {
      const std::size_t idx = static_cast<std::size_t>(info.channel_ids[i]) - 1;
      if (i) chans += ", ";
      chans += idx < channels_.size() ? channels_[idx].name
                                      : std::to_string(info.channel_ids[i]);
    }
    report += util::strprintf("  %s blocked reading {%s} at %s\n",
                              info.proc_name.c_str(), chans.c_str(),
                              info.site.c_str());
  }
  report_ = report;
  return true;
}

int Service::run(mpisim::Comm& comm) {
  const int peers = comm.size() - 1;
  while (static_cast<int>(done_.size()) < peers) {
    auto [st, bytes] = comm.recv_any_size(mpisim::kAnySource, kTagService);
    util::ByteReader r(bytes);
    const auto kind = static_cast<Kind>(r.u8());
    switch (kind) {
      case Kind::kCall: {
        const std::string text = r.str();
        ++calls_logged_;
        if (log_.is_open()) {
          // Stamped with the *service's* arrival clock — the timestamp
          // inaccuracy the paper's Section I criticizes in the native log.
          log_ << util::strprintf("%.9f %s\n", comm.wtime(), text.c_str());
          log_.flush();
        }
        // The disk write and formatting occupy this rank's core.
        comm.compute(opts_.native_log_cost);
        break;
      }
      case Kind::kWrite: {
        const int channel = r.i32();
        ++pending_writes_[channel];
        break;
      }
      case Kind::kWait: {
        WaitInfo info;
        const std::uint32_t n = r.u32();
        info.channel_ids.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) info.channel_ids.push_back(r.i32());
        info.site = r.str();
        info.proc_name = r.str();
        waiting_[st.source] = std::move(info);
        if (check_deadlock()) {
          std::fputs(report_.c_str(), stderr);
          if (log_.is_open()) {
            log_ << report_;
            log_.flush();
          }
          comm.abort(kDeadlockAbortCode);  // never returns
        }
        break;
      }
      case Kind::kConsume: {
        const int channel = r.i32();
        const std::uint32_t count = r.u32();
        auto it = pending_writes_.find(channel);
        if (it != pending_writes_.end())
          it->second -= std::min<std::uint64_t>(it->second, count);
        break;
      }
      case Kind::kResume: {
        waiting_.erase(st.source);
        break;
      }
      case Kind::kDone: {
        done_.insert(st.source);
        waiting_.erase(st.source);
        // A rank exiting can strand blocked readers: re-check.
        if (opts_.svc_deadlock && check_deadlock()) {
          std::fputs(report_.c_str(), stderr);
          if (log_.is_open()) {
            log_ << report_;
            log_.flush();
          }
          comm.abort(kDeadlockAbortCode);
        }
        break;
      }
      default:
        throw PilotError("service: corrupt event message");
    }
  }
  return 0;
}

}  // namespace pilot

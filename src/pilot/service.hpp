// Pilot's dedicated service rank: native call logging and the integrated
// deadlock detector (the pre-existing facilities the paper contrasts its
// visualization against).
//
// With -pisvc=c and/or -pisvc=d, Pilot claims one extra rank (displacing a
// worker on a fully subscribed machine — the overhead the paper measures).
// Every other rank streams events to it:
//   * CALL  — a formatted line for the native text log. The service stamps
//     it with its own arrival time, faithfully reproducing the timestamp
//     inaccuracy the paper complains about in Section I.
//   * WRITE / WAIT / RESUME — deadlock bookkeeping: writers announce
//     messages, readers announce what they block on and what they consumed.
//   * DONE — rank finished; the service exits once everyone is done.
//
// Deadlock rule: a set D of blocked ranks is deadlocked iff no member can
// be satisfied by a pending write or by a rank outside D that is still
// running. PI_Select contributes all its channels (it wakes if ANY gets
// data), which the fixpoint below handles naturally.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mpisim/world.hpp"
#include "pilot/options.hpp"

namespace pilot {

/// Reserved tag for service traffic (above MPE's band).
inline constexpr int kTagService = 0x03000001;

class Service {
public:
  struct ChannelMeta {
    int writer_rank = -1;
    int reader_rank = -1;
    std::string name;
  };

  Service(const Options& opts, std::vector<ChannelMeta> channels,
          std::vector<std::string> rank_names);

  /// The service rank's main loop. Returns when all peer ranks sent DONE,
  /// or aborts the world with kDeadlockAbortCode on deadlock.
  int run(mpisim::Comm& comm);

  // --- encoding helpers used by the other ranks -----------------------------
  static std::vector<std::uint8_t> encode_call(const std::string& text);
  static std::vector<std::uint8_t> encode_write(int channel_id);
  static std::vector<std::uint8_t> encode_wait(const std::vector<int>& channel_ids,
                                               const std::string& site,
                                               const std::string& proc_name);
  /// Messages consumed from a channel (decrements its pending count).
  static std::vector<std::uint8_t> encode_consume(int channel_id,
                                                  std::uint32_t count);
  /// The sender is no longer blocked.
  static std::vector<std::uint8_t> encode_resume();
  static std::vector<std::uint8_t> encode_done();

  /// Valid after run(): human-readable deadlock diagnosis, empty if none.
  [[nodiscard]] const std::string& deadlock_report() const { return report_; }
  [[nodiscard]] bool deadlock_detected() const { return !report_.empty(); }
  [[nodiscard]] std::uint64_t calls_logged() const { return calls_logged_; }

private:
  struct WaitInfo {
    std::vector<int> channel_ids;
    std::string site;
    std::string proc_name;
  };

  /// Fixpoint deadlock check; fills report_ and returns true on deadlock.
  bool check_deadlock();

  Options opts_;
  std::vector<ChannelMeta> channels_;  // index = channel id - 1
  std::vector<std::string> rank_names_;

  std::map<int, std::uint64_t> pending_writes_;  // channel id -> unconsumed count
  std::map<int, WaitInfo> waiting_;              // rank -> what it blocks on
  std::set<int> done_;
  std::string report_;
  std::uint64_t calls_logged_ = 0;

  // Opened in the constructor — on the main thread, before the rank threads
  // exist — so the native log file is on disk no matter how early an abort
  // kills the service rank. The log's "survives PI_Abort" guarantee would
  // otherwise race the service thread's startup.
  std::ofstream log_;
};

}  // namespace pilot

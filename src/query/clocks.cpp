#include "query/clocks.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <variant>

#include "util/parallel.hpp"

namespace query {

namespace {

/// Parallel stamping pays off only with real replay work and enough ranks
/// to shard.
constexpr std::size_t kParallelClockOps = 10000;
constexpr int kMinParallelRanks = 4;
/// Consecutive no-progress sweeps (with the global counter frozen) before a
/// worker declares the frontier cyclic and aborts to the serial path.
constexpr int kStallSweeps = 10000;

void reset_stamps(MsgGraph& graph) {
  for (MatchedMsg& m : graph.msgs) {
    m.stamped = false;
    m.send_stamp.clear();
    m.recv_stamp.clear();
  }
}

}  // namespace

bool clock_leq(const Clock& a, const Clock& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] > b[i]) return false;
  return true;
}

bool clock_concurrent(const Clock& a, const Clock& b) {
  return !clock_leq(a, b) && !clock_leq(b, a);
}

MsgGraph match_messages(const clog2::File& file, int nranks_floor) {
  MsgGraph g;
  int max_rank = std::max(file.nranks, nranks_floor) - 1;
  for (const auto& rec : file.records) {
    if (const auto* ev = std::get_if<clog2::EventRec>(&rec))
      max_rank = std::max(max_rank, ev->rank);
    else if (const auto* m = std::get_if<clog2::MsgRec>(&rec))
      max_rank = std::max(max_rank, m->rank);
  }
  g.nranks = max_rank + 1;
  if (g.nranks <= 0) return g;
  g.ops.resize(static_cast<std::size_t>(g.nranks));

  // Pass A: register every send, in per-key FIFO order. Pairing works off
  // these per-key lists rather than the merged interleaving: per-rank clock
  // correction can skew a receive's timestamp a hair *before* its send in
  // the merged file, and a one-pass matcher would then drop the receive and
  // shift every later pair on that edge by one.
  struct KeyState {
    std::vector<std::size_t> sends;  ///< msg indices, per-key FIFO order
    std::size_t sends_seen = 0;      ///< pass-B cursor over `sends`
    std::size_t recvs_seen = 0;      ///< receives consumed so far
  };
  std::map<TagKey, KeyState> keys;
  for (const auto& rec : file.records) {
    const auto* m = std::get_if<clog2::MsgRec>(&rec);
    if (m == nullptr || m->kind != clog2::MsgRec::Kind::kSend) continue;
    MatchedMsg msg;
    msg.send_time = m->timestamp;
    msg.sender = m->rank;
    msg.receiver = m->partner;
    msg.tag = m->tag;
    msg.size = m->size;
    g.msgs.push_back(msg);
    keys[{m->rank, m->partner, m->tag}].sends.push_back(g.msgs.size() - 1);
  }

  // Pass B: walk the stream again, consuming each key's i-th send for its
  // i-th receive and emitting per-rank ops in stream order.
  for (const auto& rec : file.records) {
    const auto* m = std::get_if<clog2::MsgRec>(&rec);
    if (m == nullptr) continue;
    if (m->kind == clog2::MsgRec::Kind::kSend) {
      KeyState& ks = keys[{m->rank, m->partner, m->tag}];
      const std::size_t idx = ks.sends[ks.sends_seen++];
      g.ops[static_cast<std::size_t>(m->rank)].push_back(
          {MsgOp::Kind::kSend, idx});
    } else {
      const TagKey key{m->partner, m->rank, m->tag};
      const auto it = keys.find(key);
      if (it == keys.end() || it->second.recvs_seen >= it->second.sends.size()) {
        ++g.unmatched_recvs[key];
        if (it != keys.end()) ++it->second.recvs_seen;
        continue;
      }
      const std::size_t idx = it->second.sends[it->second.recvs_seen++];
      g.msgs[idx].matched = true;
      g.msgs[idx].recv_time = m->timestamp;
      g.ops[static_cast<std::size_t>(m->rank)].push_back({MsgOp::Kind::kRecv, idx});
    }
  }

  // Sends still in flight: each key's unconsumed FIFO suffix. Keys whose
  // FIFO drained stay present — the pinned diagnostic order.
  for (const auto& [key, ks] : keys) {
    auto& fifo = g.unreceived[key];
    const std::size_t taken = std::min(ks.sends.size(), ks.recvs_seen);
    fifo.assign(ks.sends.begin() + static_cast<std::ptrdiff_t>(taken),
                ks.sends.end());
  }
  return g;
}

bool stamp_clocks(MsgGraph& graph) {
  if (graph.nranks <= 0) return false;
  std::vector<std::size_t> idx(static_cast<std::size_t>(graph.nranks), 0);
  std::vector<Clock> vc(static_cast<std::size_t>(graph.nranks),
                        Clock(static_cast<std::size_t>(graph.nranks), 0));
  std::size_t remaining = 0;
  for (const auto& v : graph.ops) remaining += v.size();
  bool causal_cycle = false;
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t r = 0; r < graph.ops.size(); ++r) {
      while (idx[r] < graph.ops[r].size()) {
        const MsgOp& op = graph.ops[r][idx[r]];
        MatchedMsg& m = graph.msgs[op.msg];
        if (op.kind == MsgOp::Kind::kSend) {
          ++vc[r][r];
          m.send_stamp = vc[r];
          m.stamped = true;
        } else {
          if (!m.stamped && !causal_cycle) break;
          ++vc[r][r];
          if (m.stamped)
            for (std::size_t k = 0; k < vc[r].size(); ++k)
              vc[r][k] = std::max(vc[r][k], m.send_stamp[k]);
          m.recv_stamp = vc[r];
        }
        ++idx[r];
        --remaining;
        progressed = true;
      }
    }
    if (!progressed && !causal_cycle) {
      // Only possible when matched messages form a cycle (corrupt trace):
      // flag once, then force the recvs through without joining.
      causal_cycle = true;
    }
  }
  return causal_cycle;
}

bool stamp_clocks(MsgGraph& graph, int threads) {
  const int requested = util::resolve_threads(threads);
  std::size_t total = 0;
  for (const auto& v : graph.ops) total += v.size();
  if (requested <= 1 || graph.nranks < kMinParallelRanks ||
      total < kParallelClockOps)
    return stamp_clocks(graph);

  const auto nranks = static_cast<std::size_t>(graph.nranks);
  const std::size_t nworkers =
      std::min(static_cast<std::size_t>(requested), nranks);

  // Workers own static contiguous rank blocks, so vc[r] is touched by
  // exactly one thread; cross-block edges synchronize through a per-message
  // publish flag (release on send, acquire before the receive's join). A
  // receive whose send is unpublished parks its rank and the worker sweeps
  // on — for an acyclic matched graph some rank frontier is always enabled,
  // so the replay completes and reproduces the serial stamps exactly.
  std::vector<Clock> vc(nranks, Clock(nranks, 0));
  std::vector<std::atomic<std::uint8_t>> published(graph.msgs.size());
  for (auto& f : published) f.store(0, std::memory_order_relaxed);
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> aborted{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto work = [&](std::size_t w) {
    const std::size_t lo = w * nranks / nworkers;
    const std::size_t hi = (w + 1) * nranks / nworkers;
    std::vector<std::size_t> idx(hi - lo, 0);
    std::size_t mine = 0;
    for (std::size_t r = lo; r < hi; ++r) mine += graph.ops[r].size();
    std::size_t done = 0;
    int stalled_sweeps = 0;
    std::size_t stall_mark = 0;
    while (done < mine) {
      if (aborted.load(std::memory_order_relaxed)) return;
      std::size_t sweep_done = 0;
      for (std::size_t r = lo; r < hi; ++r) {
        std::size_t& i = idx[r - lo];
        while (i < graph.ops[r].size()) {
          const MsgOp& op = graph.ops[r][i];
          MatchedMsg& m = graph.msgs[op.msg];
          if (op.kind == MsgOp::Kind::kSend) {
            ++vc[r][r];
            m.send_stamp = vc[r];
            m.stamped = true;
            published[op.msg].store(1, std::memory_order_release);
          } else {
            if (published[op.msg].load(std::memory_order_acquire) == 0) break;
            ++vc[r][r];
            for (std::size_t k = 0; k < nranks; ++k)
              vc[r][k] = std::max(vc[r][k], m.send_stamp[k]);
            m.recv_stamp = vc[r];
          }
          ++i;
          ++sweep_done;
        }
      }
      done += sweep_done;
      if (sweep_done > 0) {
        completed.fetch_add(sweep_done, std::memory_order_relaxed);
        stalled_sweeps = 0;
        continue;
      }
      // No local progress: watch the global counter. If nobody moves for a
      // long stretch the frontier receives form a cycle (or the scheduler
      // starved a peer); either way, bail out to the serial path.
      const std::size_t now = completed.load(std::memory_order_relaxed);
      if (stalled_sweeps == 0 || now != stall_mark) {
        stall_mark = now;
        stalled_sweeps = 1;
      } else if (++stalled_sweeps > kStallSweeps) {
        aborted.store(true, std::memory_order_relaxed);
        return;
      }
      std::this_thread::yield();
    }
  };
  const auto guarded = [&](std::size_t w) {
    try {
      work(w);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lk(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      aborted.store(true, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(nworkers - 1);
  for (std::size_t w = 1; w < nworkers; ++w) pool.emplace_back(guarded, w);
  guarded(0);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  if (!aborted.load(std::memory_order_relaxed)) return false;

  // Cycle (or stall): wipe the partial stamps and let the serial replay —
  // which owns the forced-stamp semantics — redo the pass from scratch.
  reset_stamps(graph);
  return stamp_clocks(graph);
}

}  // namespace query

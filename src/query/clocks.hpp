// Message matching and vector clocks, lifted out of pilot-tracecheck so the
// differ (and any future analysis) shares the exact same causal engine.
//
// match_messages pairs the i-th send half with the i-th receive half per
// (sender, receiver, tag) — the wildcard-free FIFO matching a correct Pilot
// run guarantees. Pairing is per key, not per merged-stream position, so a
// receive whose corrected timestamp sorts a hair before its send still
// matches. stamp_clocks then replays the
// per-rank message-op sequences round-robin, assigning each op a vector
// stamp; a receive waits for its send's stamp unless the matched messages
// form a causal cycle (corrupt trace), in which case stamping degrades to
// unjoined ticks and the caller is told.
//
// The algorithms are byte-for-byte the ones tracecheck always used; its
// verdict on every existing fixture is pinned by golden tests.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "clog2/clog2.hpp"

namespace query {

using Clock = std::vector<std::uint64_t>;

/// Component-wise a <= b (a happened-before-or-equals b).
bool clock_leq(const Clock& a, const Clock& b);
bool clock_concurrent(const Clock& a, const Clock& b);

struct MatchedMsg {
  double send_time = 0.0;
  double recv_time = 0.0;
  int sender = 0;
  int receiver = 0;
  int tag = 0;
  std::uint32_t size = 0;  ///< payload bytes (from the send half)
  bool matched = false;
  bool stamped = false;
  Clock send_stamp;
  Clock recv_stamp;  ///< receiver's clock just after consuming the message
};

struct MsgOp {
  enum class Kind { kSend, kRecv } kind = Kind::kSend;
  std::size_t msg = 0;  ///< index into MsgGraph::msgs
};

/// (sender, receiver, tag) — the FIFO matching key.
using TagKey = std::tuple<int, int, int>;

struct MsgGraph {
  int nranks = 0;
  std::vector<MatchedMsg> msgs;
  /// Per-rank message ops in stream order (receives only when matched).
  std::vector<std::vector<MsgOp>> ops;
  /// Sends still in flight at end of trace (unreceived), FIFO per key.
  /// Keys whose FIFO drained to empty remain present — iteration order over
  /// all keys ever seen is part of the pinned diagnostic order.
  std::map<TagKey, std::vector<std::size_t>> unreceived;
  /// Receives that never found a send, counted per key.
  std::map<TagKey, std::size_t> unmatched_recvs;
};

/// Pass 1: match sends with receives (FIFO per sender/receiver/tag) over the
/// merged record stream. `nranks_floor` widens the rank vector (a trace
/// header may promise more ranks than logged any messages).
MsgGraph match_messages(const clog2::File& file, int nranks_floor = 0);

/// Pass 2: stamp vector clocks over the matched order. Returns true when the
/// matched messages formed a causal cycle and stamping was forced through
/// (stamps are approximate from the first forced receive on).
bool stamp_clocks(MsgGraph& graph);

/// Same stamping with the per-rank replay sharded across `threads` workers
/// (0 = hardware): workers own static contiguous rank blocks, and a receive
/// spins (bounded) on its send's publish flag. Each op's stamp is a pure
/// function of the matched DAG, so a completed parallel replay matches the
/// serial stamps bit for bit. If the replay cannot complete — a causal
/// cycle, whose forced-stamp semantics are schedule-dependent — the partial
/// stamps are wiped and the serial algorithm reruns from scratch, returning
/// its exact result.
bool stamp_clocks(MsgGraph& graph, int threads);

}  // namespace query

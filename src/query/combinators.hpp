// Query combinators: small composable pipelines over a Trace's steps.
//
// A Selection is an ordered list of step indices into one Trace. Combinators
// return new Selections (filter, window, ranks) or fold the selection down
// to values (count, group_by, aggregate). Order is always preserved —
// stream order is program order per rank, and several analyses (first
// divergence, serialized fan-in) depend on it.
//
// The deliberate non-goal is lazy iterator fusion: traces that fit in memory
// are the repo's working regime (the windowed SLOG-2 path covers the rest),
// and materialized index vectors keep the combinators debuggable and the
// copies cheap (4 bytes per step).
// The fold/filter combinators also come in `threads` overloads: predicates
// and key extractors run across fixed-size index chunks (boundaries depend
// on the data, never on the worker count) and the per-chunk results commit
// in chunk order, so every parallel overload returns exactly what its
// serial twin returns. Callables handed to the parallel overloads must be
// safe to invoke concurrently — pure functions of the Step are.
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "query/trace.hpp"
#include "util/parallel.hpp"

namespace query {

class Selection {
 public:
  /// Every step of the trace, in merged stream order.
  static Selection all(const Trace& trace) {
    Selection s(trace);
    s.idx_.resize(trace.steps().size());
    for (std::size_t i = 0; i < s.idx_.size(); ++i) s.idx_[i] = i;
    return s;
  }

  /// One rank's steps, in program order.
  static Selection rank(const Trace& trace, int r) {
    Selection s(trace);
    if (r >= 0 && r < trace.nranks())
      s.idx_ = trace.by_rank()[static_cast<std::size_t>(r)];
    return s;
  }

  [[nodiscard]] const Trace& trace() const { return *trace_; }
  [[nodiscard]] const std::vector<std::size_t>& indices() const { return idx_; }
  [[nodiscard]] std::size_t size() const { return idx_.size(); }
  [[nodiscard]] bool empty() const { return idx_.empty(); }
  [[nodiscard]] const Step& operator[](std::size_t i) const {
    return trace_->steps()[idx_[i]];
  }

  /// Steps satisfying `pred(const Step&)`.
  template <typename Pred>
  [[nodiscard]] Selection filter(Pred pred) const {
    Selection out(*trace_);
    for (std::size_t i : idx_)
      if (pred(trace_->steps()[i])) out.idx_.push_back(i);
    return out;
  }

  /// filter with the predicate applied across `threads` workers; chunk
  /// outputs concatenate in chunk order, so the selection is identical to
  /// the serial filter's.
  template <typename Pred>
  [[nodiscard]] Selection filter(Pred pred, int threads) const {
    const int nworkers = util::resolve_threads(threads);
    if (nworkers <= 1 || idx_.size() < 2 * kParallelChunk)
      return filter(std::move(pred));
    const std::size_t nchunks = chunk_count();
    std::vector<std::vector<std::size_t>> part(nchunks);
    util::parallel_for(nchunks, nworkers, [&](std::size_t c) {
      const std::size_t hi = std::min(idx_.size(), (c + 1) * kParallelChunk);
      std::vector<std::size_t>& keep = part[c];
      for (std::size_t i = c * kParallelChunk; i < hi; ++i)
        if (pred(trace_->steps()[idx_[i]])) keep.push_back(idx_[i]);
    });
    Selection out(*trace_);
    std::size_t total = 0;
    for (const auto& p : part) total += p.size();
    out.idx_.reserve(total);
    for (const auto& p : part)
      out.idx_.insert(out.idx_.end(), p.begin(), p.end());
    return out;
  }

  /// Steps with `a <= time <= b` (the jumpshot window convention).
  [[nodiscard]] Selection window(double a, double b) const {
    return window(a, b, 1);
  }

  [[nodiscard]] Selection window(double a, double b, int threads) const {
    if (b < a) std::swap(a, b);
    return filter([a, b](const Step& s) { return s.time >= a && s.time <= b; },
                  threads);
  }

  [[nodiscard]] Selection kind(StepKind k) const { return kind(k, 1); }

  [[nodiscard]] Selection kind(StepKind k, int threads) const {
    return filter([k](const Step& s) { return s.kind == k; }, threads);
  }

  [[nodiscard]] Selection messages() const { return messages(1); }

  [[nodiscard]] Selection messages(int threads) const {
    return filter([](const Step& s) { return s.is_msg(); }, threads);
  }

  /// Partition by an arbitrary key; groups keep stream order internally and
  /// the map keeps keys ordered (deterministic iteration for reports).
  template <typename KeyFn>
  [[nodiscard]] auto group_by(KeyFn key) const
      -> std::map<decltype(key(std::declval<const Step&>())), Selection> {
    std::map<decltype(key(std::declval<const Step&>())), Selection> out;
    for (std::size_t i : idx_) {
      const Step& s = trace_->steps()[i];
      auto k = key(s);
      auto it = out.find(k);
      if (it == out.end())
        it = out.emplace(std::move(k), Selection(*trace_)).first;
      it->second.idx_.push_back(i);
    }
    return out;
  }

  /// group_by with the key extraction sharded across `threads` workers; the
  /// grouping itself stays serial over the precomputed keys, so insertion
  /// order — and the result — is exactly the serial one. Keys must be
  /// default-constructible.
  template <typename KeyFn>
  [[nodiscard]] auto group_by(KeyFn key, int threads) const
      -> std::map<decltype(key(std::declval<const Step&>())), Selection> {
    using K = decltype(key(std::declval<const Step&>()));
    const int nworkers = util::resolve_threads(threads);
    if (nworkers <= 1 || idx_.size() < 2 * kParallelChunk)
      return group_by(std::move(key));
    std::vector<K> keys(idx_.size());
    util::parallel_for(chunk_count(), nworkers, [&](std::size_t c) {
      const std::size_t hi = std::min(idx_.size(), (c + 1) * kParallelChunk);
      for (std::size_t i = c * kParallelChunk; i < hi; ++i)
        keys[i] = key(trace_->steps()[idx_[i]]);
    });
    std::map<K, Selection> out;
    for (std::size_t i = 0; i < idx_.size(); ++i) {
      auto it = out.find(keys[i]);
      if (it == out.end())
        it = out.emplace(std::move(keys[i]), Selection(*trace_)).first;
      it->second.idx_.push_back(idx_[i]);
    }
    return out;
  }

  /// Left fold: `f(acc, const Step&)` over the selection in order.
  template <typename Acc, typename Fn>
  [[nodiscard]] Acc aggregate(Acc acc, Fn f) const {
    for (std::size_t i : idx_) acc = f(std::move(acc), trace_->steps()[i]);
    return acc;
  }

  /// Parallel fold: each fixed chunk folds from a default-constructed Acc,
  /// then the partials merge left-to-right in chunk order via
  /// `merge(acc, partial)`. Identical to the serial fold whenever
  /// merge(a, fold(Acc{}, chunk)) == fold(a, chunk) — true for counters and
  /// other exactly-associative accumulators. Floating-point sums are not
  /// exactly associative; keep those on the serial overload when the byte
  /// contract matters.
  template <typename Acc, typename Fn, typename Merge>
  [[nodiscard]] Acc aggregate(Acc acc, Fn f, Merge merge, int threads) const {
    const int nworkers = util::resolve_threads(threads);
    if (nworkers <= 1 || idx_.size() < 2 * kParallelChunk)
      return aggregate(std::move(acc), std::move(f));
    const std::size_t nchunks = chunk_count();
    std::vector<Acc> part(nchunks);
    util::parallel_for(nchunks, nworkers, [&](std::size_t c) {
      const std::size_t hi = std::min(idx_.size(), (c + 1) * kParallelChunk);
      Acc a{};
      for (std::size_t i = c * kParallelChunk; i < hi; ++i)
        a = f(std::move(a), trace_->steps()[idx_[i]]);
      part[c] = std::move(a);
    });
    for (Acc& p : part) acc = merge(std::move(acc), std::move(p));
    return acc;
  }

  template <typename Fn>
  void for_each(Fn f) const {
    for (std::size_t i : idx_) f(trace_->steps()[i]);
  }

  template <typename Pred>
  [[nodiscard]] std::size_t count_if(Pred pred) const {
    std::size_t n = 0;
    for (std::size_t i : idx_)
      if (pred(trace_->steps()[i])) ++n;
    return n;
  }

  template <typename Pred>
  [[nodiscard]] std::size_t count_if(Pred pred, int threads) const {
    const int nworkers = util::resolve_threads(threads);
    if (nworkers <= 1 || idx_.size() < 2 * kParallelChunk)
      return count_if(std::move(pred));
    const std::size_t nchunks = chunk_count();
    std::vector<std::size_t> part(nchunks, 0);
    util::parallel_for(nchunks, nworkers, [&](std::size_t c) {
      const std::size_t hi = std::min(idx_.size(), (c + 1) * kParallelChunk);
      for (std::size_t i = c * kParallelChunk; i < hi; ++i)
        if (pred(trace_->steps()[idx_[i]])) ++part[c];
    });
    std::size_t n = 0;
    for (std::size_t p : part) n += p;
    return n;
  }

 private:
  explicit Selection(const Trace& trace) : trace_(&trace) {}

  // Shard size for the parallel overloads: fixed, data-position chunks so
  // the shard boundaries never depend on the worker count.
  static constexpr std::size_t kParallelChunk = std::size_t{1} << 16;

  [[nodiscard]] std::size_t chunk_count() const {
    return (idx_.size() + kParallelChunk - 1) / kParallelChunk;
  }

  const Trace* trace_;
  std::vector<std::size_t> idx_;
};

}  // namespace query

// Query combinators: small composable pipelines over a Trace's steps.
//
// A Selection is an ordered list of step indices into one Trace. Combinators
// return new Selections (filter, window, ranks) or fold the selection down
// to values (count, group_by, aggregate). Order is always preserved —
// stream order is program order per rank, and several analyses (first
// divergence, serialized fan-in) depend on it.
//
// The deliberate non-goal is lazy iterator fusion: traces that fit in memory
// are the repo's working regime (the windowed SLOG-2 path covers the rest),
// and materialized index vectors keep the combinators debuggable and the
// copies cheap (4 bytes per step).
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "query/trace.hpp"

namespace query {

class Selection {
 public:
  /// Every step of the trace, in merged stream order.
  static Selection all(const Trace& trace) {
    Selection s(trace);
    s.idx_.resize(trace.steps().size());
    for (std::size_t i = 0; i < s.idx_.size(); ++i) s.idx_[i] = i;
    return s;
  }

  /// One rank's steps, in program order.
  static Selection rank(const Trace& trace, int r) {
    Selection s(trace);
    if (r >= 0 && r < trace.nranks())
      s.idx_ = trace.by_rank()[static_cast<std::size_t>(r)];
    return s;
  }

  [[nodiscard]] const Trace& trace() const { return *trace_; }
  [[nodiscard]] const std::vector<std::size_t>& indices() const { return idx_; }
  [[nodiscard]] std::size_t size() const { return idx_.size(); }
  [[nodiscard]] bool empty() const { return idx_.empty(); }
  [[nodiscard]] const Step& operator[](std::size_t i) const {
    return trace_->steps()[idx_[i]];
  }

  /// Steps satisfying `pred(const Step&)`.
  template <typename Pred>
  [[nodiscard]] Selection filter(Pred pred) const {
    Selection out(*trace_);
    for (std::size_t i : idx_)
      if (pred(trace_->steps()[i])) out.idx_.push_back(i);
    return out;
  }

  /// Steps with `a <= time <= b` (the jumpshot window convention).
  [[nodiscard]] Selection window(double a, double b) const {
    if (b < a) std::swap(a, b);
    return filter([a, b](const Step& s) { return s.time >= a && s.time <= b; });
  }

  [[nodiscard]] Selection kind(StepKind k) const {
    return filter([k](const Step& s) { return s.kind == k; });
  }

  [[nodiscard]] Selection messages() const {
    return filter([](const Step& s) { return s.is_msg(); });
  }

  /// Partition by an arbitrary key; groups keep stream order internally and
  /// the map keeps keys ordered (deterministic iteration for reports).
  template <typename KeyFn>
  [[nodiscard]] auto group_by(KeyFn key) const
      -> std::map<decltype(key(std::declval<const Step&>())), Selection> {
    std::map<decltype(key(std::declval<const Step&>())), Selection> out;
    for (std::size_t i : idx_) {
      const Step& s = trace_->steps()[i];
      auto k = key(s);
      auto it = out.find(k);
      if (it == out.end())
        it = out.emplace(std::move(k), Selection(*trace_)).first;
      it->second.idx_.push_back(i);
    }
    return out;
  }

  /// Left fold: `f(acc, const Step&)` over the selection in order.
  template <typename Acc, typename Fn>
  [[nodiscard]] Acc aggregate(Acc acc, Fn f) const {
    for (std::size_t i : idx_) acc = f(std::move(acc), trace_->steps()[i]);
    return acc;
  }

  template <typename Fn>
  void for_each(Fn f) const {
    for (std::size_t i : idx_) f(trace_->steps()[i]);
  }

  template <typename Pred>
  [[nodiscard]] std::size_t count_if(Pred pred) const {
    std::size_t n = 0;
    for (std::size_t i : idx_)
      if (pred(trace_->steps()[i])) ++n;
    return n;
  }

 private:
  explicit Selection(const Trace& trace) : trace_(&trace) {}

  const Trace* trace_;
  std::vector<std::size_t> idx_;
};

}  // namespace query

#include "query/parallel_sweep.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "util/parallel.hpp"

namespace query {

LegendSweep legend_window(slog2::Navigator& nav, double a, double b,
                          int threads) {
  const int nworkers = util::resolve_threads(threads);
  const std::vector<std::uint32_t> frames = nav.window_frames(a, b);
  // One shard per frame; the window filters below mirror visit_window's
  // exactly (states clipped by overlap, events by containment, arrows by
  // their time-ordered span).
  std::vector<LegendSweep> shard(frames.size());
  util::parallel_for(frames.size(), nworkers, [&](std::size_t k) {
    const std::shared_ptr<const slog2::Frame> fp = nav.frame_ptr(frames[k]);
    LegendSweep& sweep = shard[k];
    for (const auto& s : fp->states)
      if (s.end_time >= a && s.start_time <= b) sweep.add_state(s);
    for (const auto& ev : fp->events)
      if (ev.time >= a && ev.time <= b) sweep.add_event(ev);
    for (const auto& ar : fp->arrows) {
      const double lo = std::min(ar.start_time, ar.end_time);
      const double hi = std::max(ar.start_time, ar.end_time);
      if (hi >= a && lo <= b) sweep.add_arrow(ar);
    }
  });
  LegendSweep out;
  for (LegendSweep& s : shard) out.absorb(std::move(s));
  return out;
}

WindowOccupancy occupancy_window(slog2::Navigator& nav, std::int32_t nranks,
                                 double a, double b, int threads) {
  WindowOccupancy occ(nranks, a, b);
  nav.visit_window(
      a, b, [&](const slog2::StateDrawable& s) { occ.add_state(s); },
      [&](const slog2::EventDrawable& e) { occ.add_event(e); },
      [&](const slog2::ArrowDrawable& ar) { occ.add_arrow(ar); }, threads);
  return occ;
}

}  // namespace query

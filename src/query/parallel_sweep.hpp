// Window-scoped SLOG-2 sweeps over a Navigator, sharded per frame.
//
// legend_window builds one LegendSweep shard per directory frame the window
// touches — decode (through the shared frame cache), window filtering, and
// buffering all run in parallel — then absorbs the shards in traversal
// order, the same drawable feed order Navigator::visit_window produces. The
// result is therefore byte-identical to a serial visit_window + LegendSweep
// at any thread count.
//
// occupancy_window accumulates into per-rank slots as drawables arrive, an
// order-sensitive double fold, so it rides visit_window's parallel frame
// decode and keeps the fold itself serial.
#pragma once

#include <cstdint>

#include "query/slog2_rollup.hpp"
#include "slog2/slog2.hpp"

namespace query {

/// Legend sweep of `nav`'s window [a, b]; `threads` = 0 means hardware.
LegendSweep legend_window(slog2::Navigator& nav, double a, double b,
                          int threads = 0);

/// Occupancy of `nav`'s window [a, b] over `nranks` ranks.
WindowOccupancy occupancy_window(slog2::Navigator& nav, std::int32_t nranks,
                                 double a, double b, int threads = 0);

}  // namespace query

#include "query/rollup.hpp"

#include <algorithm>
#include <cmath>

namespace query {

std::size_t duration_bucket(double seconds) {
  if (seconds < 1e-6) return 0;
  const double l = std::log10(seconds);  // [-6, ...) here
  const auto i = static_cast<long>(std::floor(l)) + 7;
  if (i < 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(i),
                               kDurationBuckets - 1);
}

const StateStats* StateDurations::find(int rank, std::int32_t state_id) const {
  const auto it = by_rank_state.find({rank, state_id});
  return it != by_rank_state.end() ? &it->second : nullptr;
}

double StateDurations::rank_total(int rank) const {
  double t = 0.0;
  for (const auto& [key, stats] : by_rank_state)
    if (key.first == rank) t += stats.total_seconds;
  return t;
}

StateDurations state_durations(const Trace& trace) {
  StateDurations out;
  // Start-time stacks per (rank, state id) — the checker's sweep.
  std::map<std::pair<int, std::int32_t>, std::vector<double>> open;
  for (const Step& s : trace.steps()) {
    if (s.kind != StepKind::kEvent) continue;
    const StateEvent* se = trace.state_event(s.event_id);
    if (se == nullptr) continue;  // solo bubble
    const std::pair<int, std::int32_t> key{s.rank, se->state_id};
    auto& stack = open[key];
    if (se->is_start) {
      stack.push_back(s.time);
      continue;
    }
    if (stack.empty()) continue;  // orphan end — the checker's business
    const double t0 = stack.back();
    stack.pop_back();
    const double dur = std::max(0.0, s.time - t0);
    StateStats& stats = out.by_rank_state[key];
    ++stats.count;
    stats.total_seconds += dur;
    ++stats.histogram[duration_bucket(dur)];
  }
  return out;
}

MessageEdges message_edges(const MsgGraph& graph) {
  MessageEdges out;
  for (const MatchedMsg& m : graph.msgs) {
    EdgeStats& e = out.edges[{m.sender, m.receiver, m.tag}];
    ++e.sent;
    e.bytes += m.size;
    if (m.matched) {
      ++e.matched;
      e.total_latency += m.recv_time - m.send_time;
    }
  }
  return out;
}

std::vector<Interval> merge_intervals(std::vector<Interval> v) {
  std::sort(v.begin(), v.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  std::vector<Interval> out;
  for (const Interval& iv : v) {
    if (!out.empty() && iv.begin <= out.back().end)
      out.back().end = std::max(out.back().end, iv.end);
    else
      out.push_back(iv);
  }
  return out;
}

}  // namespace query

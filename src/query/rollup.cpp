#include "query/rollup.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"

namespace query {

namespace {

// Below this many steps/messages the thread-spawn cost outweighs the sweep.
constexpr std::size_t kParallelGrain = std::size_t{64} * 1024;

/// One step of the state-duration sweep — shared verbatim by the serial
/// path, the per-rank shards, and the out-of-range leftover pass.
void sweep_state_step(
    const Trace& trace, const Step& s,
    std::map<std::pair<int, std::int32_t>, std::vector<double>>& open,
    StateDurations& out) {
  if (s.kind != StepKind::kEvent) return;
  const StateEvent* se = trace.state_event(s.event_id);
  if (se == nullptr) return;  // solo bubble
  const std::pair<int, std::int32_t> key{s.rank, se->state_id};
  auto& stack = open[key];
  if (se->is_start) {
    stack.push_back(s.time);
    return;
  }
  if (stack.empty()) return;  // orphan end — the checker's business
  const double t0 = stack.back();
  stack.pop_back();
  const double dur = std::max(0.0, s.time - t0);
  StateStats& stats = out.by_rank_state[key];
  ++stats.count;
  stats.total_seconds += dur;
  ++stats.histogram[duration_bucket(dur)];
}

}  // namespace

std::size_t duration_bucket(double seconds) {
  if (seconds < 1e-6) return 0;
  const double l = std::log10(seconds);  // [-6, ...) here
  const auto i = static_cast<long>(std::floor(l)) + 7;
  if (i < 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(i),
                               kDurationBuckets - 1);
}

const StateStats* StateDurations::find(int rank, std::int32_t state_id) const {
  const auto it = by_rank_state.find({rank, state_id});
  return it != by_rank_state.end() ? &it->second : nullptr;
}

double StateDurations::rank_total(int rank) const {
  double t = 0.0;
  for (const auto& [key, stats] : by_rank_state)
    if (key.first == rank) t += stats.total_seconds;
  return t;
}

StateDurations state_durations(const Trace& trace) {
  StateDurations out;
  // Start-time stacks per (rank, state id) — the checker's sweep.
  std::map<std::pair<int, std::int32_t>, std::vector<double>> open;
  for (const Step& s : trace.steps()) sweep_state_step(trace, s, open, out);
  return out;
}

StateDurations state_durations(const Trace& trace, int threads) {
  const int nworkers = util::resolve_threads(threads);
  if (nworkers <= 1 || trace.steps().size() < kParallelGrain ||
      trace.nranks() <= 1)
    return state_durations(trace);

  const auto& by_rank = trace.by_rank();
  std::vector<StateDurations> shard(by_rank.size());
  util::parallel_for(by_rank.size(), nworkers, [&](std::size_t r) {
    std::map<std::pair<int, std::int32_t>, std::vector<double>> open;
    for (std::size_t i : by_rank[r])
      sweep_state_step(trace, trace.steps()[i], open, shard[r]);
  });

  StateDurations out;
  // Steps whose rank sits outside [0, nranks) are absent from by_rank();
  // sweep them serially so the merged result is exactly the serial one.
  std::size_t covered = 0;
  for (const auto& v : by_rank) covered += v.size();
  if (covered != trace.steps().size()) {
    std::map<std::pair<int, std::int32_t>, std::vector<double>> open;
    for (const Step& s : trace.steps())
      if (s.rank < 0 || s.rank >= trace.nranks())
        sweep_state_step(trace, s, open, out);
  }
  for (auto& sd : shard)
    out.by_rank_state.insert(sd.by_rank_state.begin(), sd.by_rank_state.end());
  return out;
}

MessageEdges message_edges(const MsgGraph& graph) {
  MessageEdges out;
  for (const MatchedMsg& m : graph.msgs) {
    EdgeStats& e = out.edges[{m.sender, m.receiver, m.tag}];
    ++e.sent;
    e.bytes += m.size;
    if (m.matched) {
      ++e.matched;
      e.total_latency += m.recv_time - m.send_time;
    }
  }
  return out;
}

MessageEdges message_edges(const MsgGraph& graph, int threads) {
  const int nworkers = util::resolve_threads(threads);
  if (nworkers <= 1 || graph.msgs.size() < kParallelGrain)
    return message_edges(graph);

  // Bucket message indices by sender (serial, preserving graph order within
  // each bucket), fold the buckets in parallel, and merge in ascending
  // sender order — every (sender, receiver, tag) key lives in exactly one
  // bucket, so this is the serial fold re-ordered only across disjoint keys.
  std::map<int, std::vector<std::size_t>> by_sender;
  for (std::size_t i = 0; i < graph.msgs.size(); ++i)
    by_sender[graph.msgs[i].sender].push_back(i);
  std::vector<const std::vector<std::size_t>*> buckets;
  buckets.reserve(by_sender.size());
  for (const auto& [sender, v] : by_sender) buckets.push_back(&v);

  std::vector<MessageEdges> shard(buckets.size());
  util::parallel_for(buckets.size(), nworkers, [&](std::size_t b) {
    for (std::size_t i : *buckets[b]) {
      const MatchedMsg& m = graph.msgs[i];
      EdgeStats& e = shard[b].edges[{m.sender, m.receiver, m.tag}];
      ++e.sent;
      e.bytes += m.size;
      if (m.matched) {
        ++e.matched;
        e.total_latency += m.recv_time - m.send_time;
      }
    }
  });
  MessageEdges out;
  for (auto& sd : shard) out.edges.insert(sd.edges.begin(), sd.edges.end());
  return out;
}

std::vector<Interval> merge_intervals(std::vector<Interval> v) {
  std::sort(v.begin(), v.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  std::vector<Interval> out;
  for (const Interval& iv : v) {
    if (!out.empty() && iv.begin <= out.back().end)
      out.back().end = std::max(out.back().end, iv.end);
    else
      out.push_back(iv);
  }
  return out;
}

}  // namespace query

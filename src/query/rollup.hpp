// Per-rank rollups over a Trace: the aggregate shapes every analysis keeps
// reinventing — state-duration totals and histograms (per rank, per state),
// message-edge statistics (count, bytes, latency per sender/receiver/tag),
// and disjoint-interval unions for occupancy math.
//
// Rollups are plain data; the differ compares two of them, tracecheck's
// stall accounting consumes the intervals, and tools print them.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "query/clocks.hpp"
#include "query/trace.hpp"

namespace query {

/// Log-scale duration histogram: bucket i holds durations in
/// [10^(i-7), 10^(i-6)) seconds, i.e. from <1us up to >=10s.
inline constexpr std::size_t kDurationBuckets = 8;
std::size_t duration_bucket(double seconds);

struct StateStats {
  std::uint64_t count = 0;       ///< completed instances
  double total_seconds = 0.0;    ///< sum of instance durations
  std::array<std::uint32_t, kDurationBuckets> histogram{};
};

/// Completed state instances per (rank, state id), via the same per-rank
/// LIFO stack sweep the checker and the converter use. Orphan ends and
/// still-open starts are ignored here — the checker diagnoses those.
struct StateDurations {
  std::map<std::pair<int, std::int32_t>, StateStats> by_rank_state;

  [[nodiscard]] const StateStats* find(int rank, std::int32_t state_id) const;
  /// Sum of total_seconds over every state of one rank.
  [[nodiscard]] double rank_total(int rank) const;
};

StateDurations state_durations(const Trace& trace);

/// Same rollup, sharded per rank across `threads` workers (0 = hardware).
/// Keys are (rank, state), so shards own disjoint key sets and within one
/// rank the sweep replays the exact serial step order — the merged result
/// is byte-identical to the serial rollup at any worker count. Steps whose
/// rank falls outside [0, nranks) are swept serially on the side.
StateDurations state_durations(const Trace& trace, int threads);

struct EdgeStats {
  std::uint64_t sent = 0;
  std::uint64_t matched = 0;
  std::uint64_t bytes = 0;
  double total_latency = 0.0;  ///< sum of recv_time - send_time over matched

  [[nodiscard]] double mean_latency() const {
    return matched > 0 ? total_latency / static_cast<double>(matched) : 0.0;
  }
};

/// Message-edge rollup keyed (sender, receiver, tag), from a matched graph.
struct MessageEdges {
  std::map<TagKey, EdgeStats> edges;
};

MessageEdges message_edges(const MsgGraph& graph);

/// Same rollup, sharded per sender across `threads` workers (0 = hardware).
/// TagKey sorts sender-first, so shards own disjoint key ranges; within a
/// sender the messages fold in graph order, making the merged result
/// byte-identical to the serial rollup at any worker count.
MessageEdges message_edges(const MsgGraph& graph, int threads);

// --- interval algebra --------------------------------------------------------

struct Interval {
  double begin = 0.0;
  double end = 0.0;
};

/// Merge intervals into a disjoint, sorted union.
std::vector<Interval> merge_intervals(std::vector<Interval> v);

}  // namespace query

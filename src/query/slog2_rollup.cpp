#include "query/slog2_rollup.hpp"

#include <algorithm>

namespace query {

namespace {

struct OpenInterval {
  double end;
  std::int32_t category_id;
};

}  // namespace

void LegendSweep::add_state(const slog2::StateDrawable& s) {
  per_rank_[s.rank].push_back(s);
}

void LegendSweep::add_event(const slog2::EventDrawable& e) {
  ++event_counts_[e.category_id];
}

void LegendSweep::add_arrow(const slog2::ArrowDrawable&) {
  ++event_counts_[slog2::kArrowCategoryId];
}

std::map<std::int32_t, LegendTotals> LegendSweep::totals() const {
  std::map<std::int32_t, LegendTotals> out;
  for (const auto& [id, n] : event_counts_) out[id].count += n;

  std::map<std::int32_t, double> exclusive;  // category -> seconds
  for (const auto& [rank, unsorted] : per_rank_) {
    auto states = unsorted;
    std::sort(states.begin(), states.end(),
              [](const slog2::StateDrawable& a, const slog2::StateDrawable& b) {
                if (a.start_time != b.start_time) return a.start_time < b.start_time;
                return a.end_time > b.end_time;  // outer first on ties
              });
    std::vector<OpenInterval> stack;
    for (const auto& s : states) {
      LegendTotals& t = out[s.category_id];
      ++t.count;
      t.inclusive += s.end_time - s.start_time;
      while (!stack.empty() && stack.back().end <= s.start_time) stack.pop_back();
      const double dur = s.end_time - s.start_time;
      exclusive[s.category_id] += dur;
      if (!stack.empty() && stack.back().end >= s.end_time) {
        // Nested: parent loses this much exclusive time.
        exclusive[stack.back().category_id] -= dur;
      }
      stack.push_back(OpenInterval{s.end_time, s.category_id});
    }
  }
  for (auto& [id, t] : out) {
    const auto it = exclusive.find(id);
    t.exclusive = it != exclusive.end() ? it->second : 0.0;
  }
  return out;
}

WindowOccupancy::WindowOccupancy(std::int32_t nranks, double a, double b)
    : a_(a), b_(b) {
  ranks_.resize(static_cast<std::size_t>(std::max(nranks, 0)));
}

WindowOccupancy::Rank* WindowOccupancy::slot(std::int32_t rank) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= ranks_.size()) return nullptr;
  return &ranks_[static_cast<std::size_t>(rank)];
}

void WindowOccupancy::add_state(const slog2::StateDrawable& s) {
  if (Rank* r = slot(s.rank)) {
    const double lo = std::max(s.start_time, a_);
    const double hi = std::min(s.end_time, b_);
    if (hi > lo) r->state_time[s.category_id] += hi - lo;
    ++r->state_count[s.category_id];
  }
}

void WindowOccupancy::add_event(const slog2::EventDrawable& e) {
  if (Rank* r = slot(e.rank)) ++r->event_count[e.category_id];
}

void WindowOccupancy::add_arrow(const slog2::ArrowDrawable& a) {
  if (Rank* src = slot(a.src_rank)) ++src->arrows_out;
  if (Rank* dst = slot(a.dst_rank)) ++dst->arrows_in;
}

}  // namespace query

#include "query/slog2_rollup.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/parallel.hpp"

namespace query {

namespace {

struct OpenInterval {
  double end;
  std::int32_t category_id;
};

// Below this many buffered states the sort is cheaper than a thread spawn.
constexpr std::size_t kParallelStates = std::size_t{64} * 1024;

/// What one state adds to the totals, with the nesting resolved: replaying
/// these in rank order performs the exact additions — same values, same
/// order — the serial sweep performs.
struct Contribution {
  std::int32_t category_id = 0;
  std::int32_t parent_id = 0;  ///< valid only when nested
  bool nested = false;
  double dur = 0.0;
};

}  // namespace

void LegendSweep::add_state(const slog2::StateDrawable& s) {
  per_rank_[s.rank].push_back(s);
}

void LegendSweep::add_event(const slog2::EventDrawable& e) {
  ++event_counts_[e.category_id];
}

void LegendSweep::add_arrow(const slog2::ArrowDrawable&) {
  ++event_counts_[slog2::kArrowCategoryId];
}

std::map<std::int32_t, LegendTotals> LegendSweep::totals() const {
  return totals(1);
}

std::map<std::int32_t, LegendTotals> LegendSweep::totals(int threads) const {
  std::map<std::int32_t, LegendTotals> out;
  for (const auto& [id, n] : event_counts_) out[id].count += n;

  std::size_t nstates = 0;
  for (const auto& [rank, v] : per_rank_) nstates += v.size();
  const int nworkers =
      nstates < kParallelStates ? 1 : util::resolve_threads(threads);

  // Shard the per-rank sort + nesting sweeps. Workers write only their
  // rank's contribution slot; the accumulators are fed below, serially.
  std::vector<const std::vector<slog2::StateDrawable>*> ranks;
  ranks.reserve(per_rank_.size());
  for (const auto& [rank, v] : per_rank_) ranks.push_back(&v);
  std::vector<std::vector<Contribution>> per_rank_ops(ranks.size());
  util::parallel_for(ranks.size(), nworkers, [&](std::size_t ri) {
    auto states = *ranks[ri];
    std::sort(states.begin(), states.end(),
              [](const slog2::StateDrawable& a, const slog2::StateDrawable& b) {
                if (a.start_time != b.start_time) return a.start_time < b.start_time;
                return a.end_time > b.end_time;  // outer first on ties
              });
    std::vector<OpenInterval> stack;
    std::vector<Contribution>& ops = per_rank_ops[ri];
    ops.reserve(states.size());
    for (const auto& s : states) {
      Contribution c;
      c.category_id = s.category_id;
      c.dur = s.end_time - s.start_time;
      while (!stack.empty() && stack.back().end <= s.start_time) stack.pop_back();
      if (!stack.empty() && stack.back().end >= s.end_time) {
        // Nested: parent loses this much exclusive time.
        c.nested = true;
        c.parent_id = stack.back().category_id;
      }
      stack.push_back(OpenInterval{s.end_time, s.category_id});
      ops.push_back(c);
    }
  });

  // Replay in rank order — the serial accumulation sequence, bit for bit.
  std::map<std::int32_t, double> exclusive;  // category -> seconds
  for (const auto& ops : per_rank_ops) {
    for (const Contribution& c : ops) {
      LegendTotals& t = out[c.category_id];
      ++t.count;
      t.inclusive += c.dur;
      exclusive[c.category_id] += c.dur;
      if (c.nested) exclusive[c.parent_id] -= c.dur;
    }
  }
  for (auto& [id, t] : out) {
    const auto it = exclusive.find(id);
    t.exclusive = it != exclusive.end() ? it->second : 0.0;
  }
  return out;
}

void LegendSweep::absorb(LegendSweep&& other) {
  for (auto& [rank, v] : other.per_rank_) {
    auto& dst = per_rank_[rank];
    if (dst.empty())
      dst = std::move(v);
    else
      dst.insert(dst.end(), v.begin(), v.end());
  }
  for (const auto& [id, n] : other.event_counts_) event_counts_[id] += n;
  other.per_rank_.clear();
  other.event_counts_.clear();
}

WindowOccupancy::WindowOccupancy(std::int32_t nranks, double a, double b)
    : a_(a), b_(b) {
  ranks_.resize(static_cast<std::size_t>(std::max(nranks, 0)));
}

WindowOccupancy::Rank* WindowOccupancy::slot(std::int32_t rank) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= ranks_.size()) return nullptr;
  return &ranks_[static_cast<std::size_t>(rank)];
}

void WindowOccupancy::add_state(const slog2::StateDrawable& s) {
  if (Rank* r = slot(s.rank)) {
    const double lo = std::max(s.start_time, a_);
    const double hi = std::min(s.end_time, b_);
    if (hi > lo) r->state_time[s.category_id] += hi - lo;
    ++r->state_count[s.category_id];
  }
}

void WindowOccupancy::add_event(const slog2::EventDrawable& e) {
  if (Rank* r = slot(e.rank)) ++r->event_count[e.category_id];
}

void WindowOccupancy::add_arrow(const slog2::ArrowDrawable& a) {
  if (Rank* src = slot(a.src_rank)) ++src->arrows_out;
  if (Rank* dst = slot(a.dst_rank)) ++dst->arrows_in;
}

}  // namespace query

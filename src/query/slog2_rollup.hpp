// SLOG-2 drawable rollups: the accumulation engines behind Jumpshot's
// legend table and window-statistics picture, lifted out of the jumpshot
// module so any analysis can fold drawables into the same numbers.
//
// Both sweeps are feed-forward: the caller streams drawables in (usually
// from slog2::File::visit_window, preserving its frame-preorder iteration
// order — double accumulation order is part of the pinned output), then
// reads the totals. LegendSweep buffers states per rank for the nesting
// sort; WindowOccupancy accumulates immediately.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "slog2/slog2.hpp"

namespace query {

/// Per-category totals of one legend sweep.
struct LegendTotals {
  std::uint64_t count = 0;
  double inclusive = 0.0;  ///< states only; 0 for events/arrows
  double exclusive = 0.0;  ///< inclusive minus directly nested substates
};

/// Count + inclusive/exclusive time per category. Exclusive time uses a
/// per-rank stack sweep in start order (outer-first on ties): a state's
/// duration is subtracted from its innermost enclosing state — the
/// converter guarantees LIFO nesting within a rank.
class LegendSweep {
 public:
  void add_state(const slog2::StateDrawable& s);
  void add_event(const slog2::EventDrawable& e);
  void add_arrow(const slog2::ArrowDrawable& a);

  /// Totals per category id; call once after the last add_*.
  [[nodiscard]] std::map<std::int32_t, LegendTotals> totals() const;

  /// Same totals with the per-rank sort + nesting sweeps sharded across
  /// `threads` workers (0 = hardware). Each shard emits its rank's
  /// contribution list instead of touching shared accumulators; the lists
  /// replay serially in rank order, so the floating-point accumulation
  /// order — and every downstream byte — matches the serial path at any
  /// worker count.
  [[nodiscard]] std::map<std::int32_t, LegendTotals> totals(int threads) const;

  /// Steal `other`'s buffered drawables onto the back of this sweep's
  /// buffers. Absorbing per-frame sweeps in frame order is equivalent to
  /// feeding those frames' drawables into one sweep directly.
  void absorb(LegendSweep&& other);

 private:
  std::map<std::int32_t, std::vector<slog2::StateDrawable>> per_rank_;
  std::map<std::int32_t, std::uint64_t> event_counts_;  // category -> count
};

/// Per-rank occupancy of one window [a, b]: state time clipped to the
/// window, instance counts anchored in it, arrow endpoints.
class WindowOccupancy {
 public:
  WindowOccupancy(std::int32_t nranks, double a, double b);

  void add_state(const slog2::StateDrawable& s);
  void add_event(const slog2::EventDrawable& e);
  void add_arrow(const slog2::ArrowDrawable& a);

  struct Rank {
    std::map<std::int32_t, double> state_time;
    std::map<std::int32_t, std::uint64_t> state_count;
    std::map<std::int32_t, std::uint64_t> event_count;
    std::uint64_t arrows_out = 0;
    std::uint64_t arrows_in = 0;
  };
  [[nodiscard]] const std::vector<Rank>& ranks() const { return ranks_; }

 private:
  [[nodiscard]] Rank* slot(std::int32_t rank);

  double a_;
  double b_;
  std::vector<Rank> ranks_;
};

}  // namespace query

#include "query/trace.hpp"

#include <algorithm>
#include <variant>

#include "util/parallel.hpp"

namespace query {

namespace {

// Shard size for the parallel build: fixed record chunks, so the shard
// boundaries are a function of the data alone and the merged output is
// byte-identical at any worker count.
constexpr std::size_t kRecordChunk = std::size_t{64} * 1024;

/// Flattens one timestamped record into `*out` (which must be
/// default-initialized); returns false for definition records, which carry
/// no step. `max_rank` ratchets up for events and message halves — exactly
/// the serial scan's rule (sync ranks deliberately do not widen the trace).
bool flatten_step(const clog2::Record& rec, Step* out, int* max_rank) {
  if (const auto* ev = std::get_if<clog2::EventRec>(&rec)) {
    out->time = ev->timestamp;
    out->rank = ev->rank;
    out->kind = StepKind::kEvent;
    out->event_id = ev->event_id;
    out->text = &ev->text;
    *max_rank = std::max(*max_rank, ev->rank);
    return true;
  }
  if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) {
    out->time = m->timestamp;
    out->rank = m->rank;
    out->kind = m->kind == clog2::MsgRec::Kind::kSend ? StepKind::kSend
                                                      : StepKind::kRecv;
    out->partner = m->partner;
    out->tag = m->tag;
    out->size = m->size;
    *max_rank = std::max(*max_rank, m->rank);
    return true;
  }
  if (const auto* sy = std::get_if<clog2::SyncRec>(&rec)) {
    out->time = sy->local_time;
    out->rank = sy->rank;
    out->kind = StepKind::kSync;
    return true;
  }
  return false;
}

}  // namespace

Trace::Trace(const clog2::File& file) : Trace(file, 1) {}

Trace::Trace(const clog2::File& file, int threads) : file_(&file) {
  const int nworkers = util::resolve_threads(threads);
  const std::size_t nrec = file.records.size();
  int max_rank = file.nranks - 1;

  const auto apply_def = [&](const clog2::Record& rec) -> bool {
    if (const auto* sd = std::get_if<clog2::StateDef>(&rec)) {
      state_events_[sd->start_event_id] = {sd->state_id, sd->name, true};
      state_events_[sd->end_event_id] = {sd->state_id, sd->name, false};
      state_names_[sd->state_id] = sd->name;
      return true;
    }
    if (const auto* ed = std::get_if<clog2::EventDef>(&rec)) {
      solo_event_ids_[ed->name] = ed->event_id;
      return true;
    }
    return false;
  };

  if (nworkers <= 1 || nrec < 2 * kRecordChunk) {
    steps_.reserve(nrec);
    for (const auto& rec : file.records) {
      if (apply_def(rec)) continue;
      Step s;
      if (flatten_step(rec, &s, &max_rank)) steps_.push_back(s);
    }
  } else {
    // Pass 1: per-chunk step counts, rank ratchets, and definition record
    // pointers. Pass 2 commits each chunk's steps into its prefix-summed
    // slot range; definitions then apply serially in chunk (= record)
    // order, preserving the serial maps' last-wins insertion order.
    struct ChunkScan {
      std::size_t nsteps = 0;
      int max_rank = -1;
      std::vector<const clog2::Record*> defs;
    };
    const std::size_t nchunks = (nrec + kRecordChunk - 1) / kRecordChunk;
    std::vector<ChunkScan> scans(nchunks);
    util::parallel_for(nchunks, nworkers, [&](std::size_t c) {
      const std::size_t lo = c * kRecordChunk;
      const std::size_t hi = std::min(nrec, lo + kRecordChunk);
      ChunkScan& sc = scans[c];
      for (std::size_t i = lo; i < hi; ++i) {
        const clog2::Record& rec = file.records[i];
        if (const auto* ev = std::get_if<clog2::EventRec>(&rec)) {
          sc.max_rank = std::max(sc.max_rank, ev->rank);
          ++sc.nsteps;
        } else if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) {
          sc.max_rank = std::max(sc.max_rank, m->rank);
          ++sc.nsteps;
        } else if (std::holds_alternative<clog2::SyncRec>(rec)) {
          ++sc.nsteps;
        } else if (std::holds_alternative<clog2::StateDef>(rec) ||
                   std::holds_alternative<clog2::EventDef>(rec)) {
          sc.defs.push_back(&rec);
        }
      }
    });
    std::vector<std::size_t> offset(nchunks + 1, 0);
    for (std::size_t c = 0; c < nchunks; ++c) {
      offset[c + 1] = offset[c] + scans[c].nsteps;
      max_rank = std::max(max_rank, scans[c].max_rank);
    }
    steps_.resize(offset[nchunks]);
    util::parallel_for(nchunks, nworkers, [&](std::size_t c) {
      const std::size_t lo = c * kRecordChunk;
      const std::size_t hi = std::min(nrec, lo + kRecordChunk);
      std::size_t at = offset[c];
      int scratch_rank = -1;  // already merged from the scan pass
      for (std::size_t i = lo; i < hi; ++i)
        if (flatten_step(file.records[i], &steps_[at], &scratch_rank)) ++at;
    });
    for (const ChunkScan& sc : scans)
      for (const clog2::Record* rec : sc.defs) apply_def(*rec);
  }
  nranks_ = max_rank + 1;

  // The span deliberately covers events and message halves only — sync
  // records are bookkeeping, and the stall accounting (TC203) measures the
  // program's own activity window. The fold stays serial: min/max over
  // doubles is order-sensitive in the corners (NaN), and this pass is a
  // fraction of the build cost.
  for (const Step& s : steps_) {
    if (s.kind == StepKind::kSync) continue;
    if (!have_span_) {
      t_min_ = t_max_ = s.time;
      have_span_ = true;
    } else {
      t_min_ = std::min(t_min_, s.time);
      t_max_ = std::max(t_max_, s.time);
    }
  }

  if (nranks_ > 0) by_rank_.resize(static_cast<std::size_t>(nranks_));
  if (nworkers <= 1 || steps_.size() < 2 * kRecordChunk || nranks_ <= 0) {
    for (std::size_t i = 0; i < steps_.size(); ++i) {
      const std::int32_t r = steps_[i].rank;
      if (r >= 0 && r < nranks_)
        by_rank_[static_cast<std::size_t>(r)].push_back(i);
    }
  } else {
    // Counting sort in parallel: per-(chunk, rank) counts, a per-rank prefix
    // sum across chunks (turning each count row into that chunk's write
    // cursors), then a parallel scatter into the exact serial positions.
    const std::size_t nchunks = (steps_.size() + kRecordChunk - 1) / kRecordChunk;
    std::vector<std::vector<std::size_t>> counts(
        nchunks, std::vector<std::size_t>(static_cast<std::size_t>(nranks_), 0));
    util::parallel_for(nchunks, nworkers, [&](std::size_t c) {
      const std::size_t lo = c * kRecordChunk;
      const std::size_t hi = std::min(steps_.size(), lo + kRecordChunk);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::int32_t r = steps_[i].rank;
        if (r >= 0 && r < nranks_) ++counts[c][static_cast<std::size_t>(r)];
      }
    });
    for (std::size_t r = 0; r < static_cast<std::size_t>(nranks_); ++r) {
      std::size_t running = 0;
      for (std::size_t c = 0; c < nchunks; ++c) {
        const std::size_t n = counts[c][r];
        counts[c][r] = running;
        running += n;
      }
      by_rank_[r].resize(running);
    }
    util::parallel_for(nchunks, nworkers, [&](std::size_t c) {
      const std::size_t lo = c * kRecordChunk;
      const std::size_t hi = std::min(steps_.size(), lo + kRecordChunk);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::int32_t r = steps_[i].rank;
        if (r >= 0 && r < nranks_)
          by_rank_[static_cast<std::size_t>(r)]
                  [counts[c][static_cast<std::size_t>(r)]++] = i;
      }
    });
  }
}

const StateEvent* Trace::state_event(std::int32_t event_id) const {
  const auto it = state_events_.find(event_id);
  return it != state_events_.end() ? &it->second : nullptr;
}

const std::string* Trace::state_name(std::int32_t state_id) const {
  const auto it = state_names_.find(state_id);
  return it != state_names_.end() ? &it->second : nullptr;
}

std::optional<std::int32_t> Trace::event_id_of(const std::string& name) const {
  const auto it = solo_event_ids_.find(name);
  if (it == solo_event_ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace query

#include "query/trace.hpp"

#include <algorithm>
#include <variant>

namespace query {

Trace::Trace(const clog2::File& file) : file_(&file) {
  int max_rank = file.nranks - 1;
  steps_.reserve(file.records.size());

  for (const auto& rec : file.records) {
    if (const auto* sd = std::get_if<clog2::StateDef>(&rec)) {
      state_events_[sd->start_event_id] = {sd->state_id, sd->name, true};
      state_events_[sd->end_event_id] = {sd->state_id, sd->name, false};
      state_names_[sd->state_id] = sd->name;
    } else if (const auto* ed = std::get_if<clog2::EventDef>(&rec)) {
      solo_event_ids_[ed->name] = ed->event_id;
    } else if (const auto* ev = std::get_if<clog2::EventRec>(&rec)) {
      Step s;
      s.time = ev->timestamp;
      s.rank = ev->rank;
      s.kind = StepKind::kEvent;
      s.event_id = ev->event_id;
      s.text = &ev->text;
      steps_.push_back(s);
      max_rank = std::max(max_rank, ev->rank);
    } else if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) {
      Step s;
      s.time = m->timestamp;
      s.rank = m->rank;
      s.kind = m->kind == clog2::MsgRec::Kind::kSend ? StepKind::kSend
                                                     : StepKind::kRecv;
      s.partner = m->partner;
      s.tag = m->tag;
      s.size = m->size;
      steps_.push_back(s);
      max_rank = std::max(max_rank, m->rank);
    } else if (const auto* sy = std::get_if<clog2::SyncRec>(&rec)) {
      Step s;
      s.time = sy->local_time;
      s.rank = sy->rank;
      s.kind = StepKind::kSync;
      steps_.push_back(s);
    }
  }
  nranks_ = max_rank + 1;

  // The span deliberately covers events and message halves only — sync
  // records are bookkeeping, and the stall accounting (TC203) measures the
  // program's own activity window.
  for (const Step& s : steps_) {
    if (s.kind == StepKind::kSync) continue;
    if (!have_span_) {
      t_min_ = t_max_ = s.time;
      have_span_ = true;
    } else {
      t_min_ = std::min(t_min_, s.time);
      t_max_ = std::max(t_max_, s.time);
    }
  }

  if (nranks_ > 0) by_rank_.resize(static_cast<std::size_t>(nranks_));
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const std::int32_t r = steps_[i].rank;
    if (r >= 0 && r < nranks_) by_rank_[static_cast<std::size_t>(r)].push_back(i);
  }
}

const StateEvent* Trace::state_event(std::int32_t event_id) const {
  const auto it = state_events_.find(event_id);
  return it != state_events_.end() ? &it->second : nullptr;
}

const std::string* Trace::state_name(std::int32_t state_id) const {
  const auto it = state_names_.find(state_id);
  return it != state_names_.end() ? &it->second : nullptr;
}

std::optional<std::int32_t> Trace::event_id_of(const std::string& name) const {
  const auto it = solo_event_ids_.find(name);
  if (it == solo_event_ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace query

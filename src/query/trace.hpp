// pilot-query: a reusable trace-analysis core shared by pilot-tracecheck,
// pilot-tracediff, and the jumpshot statistics pass — one event-iteration
// engine instead of three ad-hoc loops (the Pipit argument: analyses
// should sit on a scripted query layer over events, not re-walk raw
// records).
//
// Trace is a typed, indexed view over a parsed CLOG-2 file: the definition
// tables are resolved up front (event id -> state kind, state id -> name,
// the -pisvc=a "Wait" event), the timestamped records are flattened into a
// uniform Step vector in merged-stream order, and per-rank step index lists
// are prebuilt. Everything holds pointers into the source clog2::File, so a
// Trace is cheap and the File must outlive it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "clog2/clog2.hpp"

namespace query {

enum class StepKind : std::uint8_t { kEvent, kSend, kRecv, kSync };

/// One timestamped record in the merged stream, with the variant flattened.
struct Step {
  double time = 0.0;
  std::int32_t rank = 0;
  StepKind kind = StepKind::kEvent;
  // Event fields (kEvent).
  std::int32_t event_id = 0;
  const std::string* text = nullptr;  ///< popup payload; never null for events
  // Message fields (kSend / kRecv).
  std::int32_t partner = 0;
  std::int32_t tag = 0;
  std::uint32_t size = 0;

  [[nodiscard]] bool is_msg() const {
    return kind == StepKind::kSend || kind == StepKind::kRecv;
  }
};

/// What an event id means when it belongs to a StateDef.
struct StateEvent {
  std::int32_t state_id = 0;
  std::string name;
  bool is_start = false;
};

class Trace {
 public:
  /// Indexes `file`; the file must outlive the Trace.
  explicit Trace(const clog2::File& file);

  /// Same index, built with the record flatten, the per-rank index fill, and
  /// the rank scan sharded across `threads` workers (0 = one per hardware
  /// thread). Shards are fixed-size record chunks — boundaries depend on the
  /// data, never on the worker count — and commit into preallocated slots,
  /// so the resulting Trace is identical to the serial build bit for bit.
  Trace(const clog2::File& file, int threads);

  [[nodiscard]] const clog2::File& file() const { return *file_; }
  /// Rank count actually observed (max of the header and the records).
  [[nodiscard]] int nranks() const { return nranks_; }

  /// All timestamped records (events, message halves, syncs) in merged
  /// stream order; definitions are excluded.
  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  /// Per-rank step indices, in stream order (== per-rank program order).
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& by_rank() const {
    return by_rank_;
  }

  // --- definition lookups ---------------------------------------------------
  /// Non-null when `event_id` is the start or end event of a StateDef.
  [[nodiscard]] const StateEvent* state_event(std::int32_t event_id) const;
  [[nodiscard]] const std::string* state_name(std::int32_t state_id) const;
  [[nodiscard]] const std::map<std::int32_t, StateEvent>& state_events() const {
    return state_events_;
  }
  [[nodiscard]] const std::map<std::int32_t, std::string>& state_names() const {
    return state_names_;
  }
  /// Id of the solo EventDef with this name ("Wait", "Arrival", ...).
  [[nodiscard]] std::optional<std::int32_t> event_id_of(
      const std::string& name) const;

  // --- time span ------------------------------------------------------------
  [[nodiscard]] bool has_span() const { return have_span_; }
  [[nodiscard]] double t_min() const { return t_min_; }
  [[nodiscard]] double t_max() const { return t_max_; }

 private:
  const clog2::File* file_;
  int nranks_ = 0;
  std::vector<Step> steps_;
  std::vector<std::vector<std::size_t>> by_rank_;
  std::map<std::int32_t, StateEvent> state_events_;
  std::map<std::int32_t, std::string> state_names_;
  std::map<std::string, std::int32_t> solo_event_ids_;
  bool have_span_ = false;
  double t_min_ = 0.0;
  double t_max_ = 0.0;
};

}  // namespace query

#include "replay/crosscheck.hpp"

#include <cstdio>
#include <map>
#include <vector>

#include "util/strings.hpp"

namespace replay {

std::string trace_fingerprint(const clog2::File& file) {
  // Definitions carry no rank and are written in a fixed order; per-rank
  // record order survives the time merge (it is a stable sort), so the
  // projection below is run-stable whenever every nondeterministic decision
  // was the same.
  std::string defs;
  std::map<int, std::string> per_rank;
  for (const auto& rec : file.records) {
    if (const auto* e = std::get_if<clog2::EventDef>(&rec)) {
      defs += util::strprintf("eventdef %d %s %s %s\n", e->event_id,
                              e->name.c_str(), e->color.c_str(), e->format.c_str());
    } else if (const auto* s = std::get_if<clog2::StateDef>(&rec)) {
      defs += util::strprintf("statedef %d %d %d %s %s %s\n", s->state_id,
                              s->start_event_id, s->end_event_id, s->name.c_str(),
                              s->color.c_str(), s->format.c_str());
    } else if (const auto* c = std::get_if<clog2::ConstDef>(&rec)) {
      defs += util::strprintf("constdef %s %lld\n", c->name.c_str(),
                              static_cast<long long>(c->value));
    } else if (const auto* ev = std::get_if<clog2::EventRec>(&rec)) {
      per_rank[ev->rank] += util::strprintf(
          "event %d %s\n", ev->event_id, util::mask_floats(ev->text).c_str());
    } else if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) {
      per_rank[m->rank] += util::strprintf(
          "msg %s partner=%d tag=%d size=%u\n",
          m->kind == clog2::MsgRec::Kind::kSend ? "send" : "recv", m->partner,
          m->tag, m->size);
    } else if (const auto* sy = std::get_if<clog2::SyncRec>(&rec)) {
      per_rank[sy->rank] += "sync\n";
    }
  }

  // The comment embeds the log basename (run metadata, not event order), so
  // it stays out of the fingerprint.
  std::string out = util::strprintf("nranks %d\n# defs\n%s", file.nranks,
                                    defs.c_str());
  for (const auto& [rank, body] : per_rank)
    out += util::strprintf("# rank %d\n%s", rank, body.c_str());
  return out;
}

analyze::Report cross_check(const clog2::File& trace, const Log& log) {
  analyze::Report rep;
  if (trace.nranks != log.nranks()) {
    rep.add("RP20", analyze::Severity::kError,
            util::strprintf("trace has %d rank(s) but the replay log has %d — "
                            "they are not from the same run",
                            trace.nranks, log.nranks()));
    return rep;
  }

  // The PI_Select end event carries the chosen branch as "ready=N".
  std::int32_t select_end_id = 0;
  bool have_select_def = false;
  for (const auto& rec : trace.records) {
    if (const auto* s = std::get_if<clog2::StateDef>(&rec)) {
      if (s->name == "PI_Select") {
        select_end_id = s->end_event_id;
        have_select_def = true;
        break;
      }
    }
  }

  std::vector<std::vector<int>> trace_selects(
      static_cast<std::size_t>(trace.nranks < 0 ? 0 : trace.nranks));
  if (have_select_def) {
    for (const auto& rec : trace.records) {
      const auto* ev = std::get_if<clog2::EventRec>(&rec);
      if (ev == nullptr || ev->event_id != select_end_id) continue;
      if (ev->rank < 0 || ev->rank >= trace.nranks) continue;
      int branch = -1;
      if (std::sscanf(ev->text.c_str(), "ready=%d", &branch) == 1)
        trace_selects[static_cast<std::size_t>(ev->rank)].push_back(branch);
    }
  }

  for (int rank = 0; rank < log.nranks(); ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    std::vector<int> logged;
    for (const Event& e : log.per_rank[r])
      if (e.kind == EventKind::kSelect) logged.push_back(e.b);
    const auto& traced = trace_selects[r];
    if (logged.size() != traced.size()) {
      rep.add("RP21", analyze::Severity::kError,
              util::strprintf("rank %d performed %zu PI_Select(s) in the trace "
                              "but the replay log recorded %zu",
                              rank, traced.size(), logged.size()),
              util::strprintf("rank %d", rank));
      continue;
    }
    for (std::size_t i = 0; i < logged.size(); ++i) {
      if (logged[i] != traced[i]) {
        rep.add("RP22", analyze::Severity::kError,
                util::strprintf("rank %d select #%zu chose branch %d in the "
                                "trace but branch %d was recorded",
                                rank, i, traced[i], logged[i]),
                util::strprintf("rank %d", rank));
        break;
      }
    }
  }
  return rep;
}

}  // namespace replay

// Replay-aware trace utilities:
//
//   * trace_fingerprint — a determinism fingerprint of a CLOG-2 trace: the
//     per-rank projection of its records with timestamps (and any embedded
//     floating-point text, e.g. PI_StartTime popups) masked out. Two runs
//     with identical nondeterministic decisions produce identical
//     fingerprints even though wall-clock timestamps differ; the replay
//     determinism tests and pilot-tracecheck --replay both build on it.
//
//   * cross_check — check a CLOG-2 trace against the .prl log of the same
//     run (pilot-tracecheck --replay=FILE): the trace's per-rank PI_Select
//     outcomes (the "ready=N" end-state popups) must agree with the log's
//     recorded select branches. RP2x diagnostics:
//       RP20  trace and log disagree on the rank count
//       RP21  a rank's select count differs between trace and log
//       RP22  a rank's i-th select chose a different branch than recorded
#pragma once

#include <string>

#include "analyze/diagnostics.hpp"
#include "clog2/clog2.hpp"
#include "replay/prl.hpp"

namespace replay {

std::string trace_fingerprint(const clog2::File& file);

analyze::Report cross_check(const clog2::File& trace, const Log& log);

}  // namespace replay

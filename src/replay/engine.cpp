#include "replay/engine.hpp"

#include <cstdio>
#include <filesystem>

#include "util/strings.hpp"

namespace replay {

namespace {

std::string site_suffix(const char* file, int line) {
  if (file == nullptr) return "";
  const std::filesystem::path p(file);
  return util::strprintf(" at %s:%d", p.filename().string().c_str(), line);
}

}  // namespace

Engine::Engine(Mode mode, std::string path, double timeout_seconds)
    : mode_(mode), path_(std::move(path)), timeout_seconds_(timeout_seconds) {}

std::unique_ptr<Engine> Engine::make_recorder(std::string path) {
  return std::unique_ptr<Engine>(new Engine(Mode::kRecord, std::move(path), 0.0));
}

std::unique_ptr<Engine> Engine::make_replayer(std::string path,
                                              double timeout_seconds) {
  auto engine = std::unique_ptr<Engine>(
      new Engine(Mode::kReplay, std::move(path), timeout_seconds));
  try {
    engine->log_ = read_file(engine->path_);
  } catch (const util::IoError& e) {
    throw DivergenceError(analyze::Diagnostic{
        "RP07", analyze::Severity::kError,
        util::strprintf("replay log %s is unreadable: %s", engine->path_.c_str(),
                        e.what()),
        {}, {}, 0});
  }
  return engine;
}

void Engine::begin_run(int nranks) {
  if (mode_ == Mode::kRecord) {
    log_.per_rank.assign(static_cast<std::size_t>(nranks), {});
    return;
  }
  cursor_.assign(static_cast<std::size_t>(nranks), 0);
  if (log_.nranks() != nranks)
    diverge({"RP05", analyze::Severity::kError,
             util::strprintf("replay log %s was recorded with %d rank(s) but this "
                             "run has %d — the program topology changed",
                             path_.c_str(), log_.nranks(), nranks),
             "topology", {}, 0});
}

analyze::Report Engine::report() const {
  std::lock_guard lk(report_mu_);
  return report_;
}

void Engine::save() const {
  if (mode_ != Mode::kRecord) return;
  write_file(path_, log_);
}

std::size_t Engine::finish() {
  if (mode_ != Mode::kReplay) return 0;
  std::size_t leftover = 0;
  for (std::size_t r = 0; r < log_.per_rank.size(); ++r)
    if (r < cursor_.size()) leftover += log_.per_rank[r].size() - cursor_[r];
  if (leftover > 0 && !diverged()) {
    analyze::Diagnostic d{
        "RP06", analyze::Severity::kWarning,
        util::strprintf("replay finished with %zu recorded event(s) unused — the "
                        "program performed fewer nondeterministic operations "
                        "than the log %s holds",
                        leftover, path_.c_str()),
        {}, {}, 0};
    std::fprintf(stderr, "pilot-replay: warning %s: %s\n", d.id.c_str(),
                 d.message.c_str());
    std::lock_guard lk(report_mu_);
    report_.add(std::move(d));
  }
  return leftover;
}

std::string Engine::rank_pos(int rank) const {
  const auto r = static_cast<std::size_t>(rank);
  const std::size_t at = r < cursor_.size() ? cursor_[r] : 0;
  const std::size_t total =
      r < log_.per_rank.size() ? log_.per_rank[r].size() : 0;
  return util::strprintf("rank %d, log position %zu/%zu", rank, at, total);
}

void Engine::diverge(analyze::Diagnostic d) {
  diverged_.store(true, std::memory_order_release);
  std::fprintf(stderr, "pilot-replay divergence %s [%s%s%s]: %s\n", d.id.c_str(),
               d.subject.c_str(), d.file.empty() ? "" : " at ",
               d.file.empty()
                   ? ""
                   : util::strprintf("%s:%d", d.file.c_str(), d.line).c_str(),
               d.message.c_str());
  {
    std::lock_guard lk(report_mu_);
    report_.add(d);
  }
  throw DivergenceError(std::move(d));
}

// --- record mode ---------------------------------------------------------------

void Engine::record(int rank, Event e) {
  const auto r = static_cast<std::size_t>(rank);
  if (r >= log_.per_rank.size())
    throw util::Error(util::strprintf(
        "replay engine: record for rank %d before begin_run sized the log", rank));
  log_.per_rank[r].push_back(e);
}

void Engine::record_recv(int rank, const Match& m) {
  record(rank, Event{EventKind::kRecvMatch, m.src, 0, m.pair_seq});
}

void Engine::record_probe(int rank, const Match& m) {
  record(rank, Event{EventKind::kProbeMatch, m.src, 0, m.pair_seq});
}

void Engine::record_barrier(int rank, int position) {
  record(rank, Event{EventKind::kBarrier, position, 0, 0});
}

void Engine::record_select(int rank, int bundle_id, int branch) {
  record(rank, Event{EventKind::kSelect, bundle_id, branch, 0});
}

void Engine::record_try_select(int rank, int bundle_id, int branch) {
  record(rank, Event{EventKind::kTrySelect, bundle_id, branch, 0});
}

void Engine::record_has_data(int rank, int channel_id, int outcome) {
  record(rank, Event{EventKind::kHasData, channel_id, outcome, 0});
}

// --- replay mode ---------------------------------------------------------------

Event Engine::next(int rank, EventKind kind, int expected_a, const char* file,
                   int line) {
  const auto r = static_cast<std::size_t>(rank);
  const auto& events = log_.per_rank[r];
  if (cursor_[r] >= events.size())
    diverge({"RP01", analyze::Severity::kError,
             util::strprintf("replay log exhausted: the program performs a %s%s "
                             "but no recorded events remain (%s)",
                             kind_name(kind), site_suffix(file, line).c_str(),
                             rank_pos(rank).c_str()),
             util::strprintf("rank %d", rank), file ? file : "", line});
  const Event e = events[cursor_[r]];
  if (e.kind != kind || (expected_a >= 0 && e.a != expected_a))
    diverge({"RP02", analyze::Severity::kError,
             util::strprintf("recorded/actual operation mismatch: log holds %s "
                             "(a=%d) but the program performs %s (a=%d)%s (%s)",
                             kind_name(e.kind), e.a, kind_name(kind), expected_a,
                             site_suffix(file, line).c_str(),
                             rank_pos(rank).c_str()),
             util::strprintf("rank %d", rank), file ? file : "", line});
  ++cursor_[r];
  return e;
}

mpisim::ReplayHook::Match Engine::replay_recv(int rank) {
  const Event e = next(rank, EventKind::kRecvMatch, -1, nullptr, 0);
  return {e.a, e.seq};
}

mpisim::ReplayHook::Match Engine::replay_probe(int rank) {
  const Event e = next(rank, EventKind::kProbeMatch, -1, nullptr, 0);
  return {e.a, e.seq};
}

int Engine::replay_barrier(int rank) {
  const Event e = next(rank, EventKind::kBarrier, -1, nullptr, 0);
  if (e.a < 0 || e.a >= log_.nranks())
    diverge({"RP05", analyze::Severity::kError,
             util::strprintf("recorded barrier arrival position %d is outside "
                             "[0,%d) — the log does not fit this topology (%s)",
                             e.a, log_.nranks(), rank_pos(rank).c_str()),
             util::strprintf("rank %d", rank), {}, 0});
  return e.a;
}

void Engine::replay_failed(int rank, const char* what, const Match& m) {
  const std::string subject = util::strprintf("rank %d", rank);
  const std::string w(what);
  if (w == "receive-filter" || w == "probe-filter")
    diverge({"RP02", analyze::Severity::kError,
             util::strprintf("recorded message (from rank %d, pair seq %llu) does "
                             "not match the source/tag filter of this %s (%s)",
                             m.src, static_cast<unsigned long long>(m.pair_seq),
                             w == "receive-filter" ? "receive" : "probe",
                             rank_pos(rank).c_str()),
             subject, {}, 0});
  if (w == "barrier")
    diverge({"RP03", analyze::Severity::kError,
             util::strprintf("recorded barrier arrival position %d was never "
                             "reached within %.1f s (stuck at %llu waiter(s); %s)",
                             m.src, timeout_seconds_,
                             static_cast<unsigned long long>(m.pair_seq),
                             rank_pos(rank).c_str()),
             subject, {}, 0});
  diverge({"RP03", analyze::Severity::kError,
           util::strprintf("recorded message for this %s (from rank %d, pair seq "
                           "%llu) never arrived within %.1f s — the recorded "
                           "sender diverged or never sent it (%s)",
                           what, m.src,
                           static_cast<unsigned long long>(m.pair_seq),
                           timeout_seconds_, rank_pos(rank).c_str()),
           subject, {}, 0});
}

int Engine::replay_select(int rank, int bundle_id, int nbranches, const char* file,
                          int line) {
  const Event e = next(rank, EventKind::kSelect, bundle_id, file, line);
  if (e.b < 0 || e.b >= nbranches)
    diverge({"RP05", analyze::Severity::kError,
             util::strprintf("recorded PI_Select branch %d is outside [0,%d) of "
                             "bundle B%d — the bundle changed since recording (%s)",
                             e.b, nbranches, bundle_id, rank_pos(rank).c_str()),
             util::strprintf("rank %d", rank), file ? file : "", line});
  return e.b;
}

int Engine::replay_try_select(int rank, int bundle_id, int nbranches,
                              const char* file, int line) {
  const Event e = next(rank, EventKind::kTrySelect, bundle_id, file, line);
  if (e.b < -1 || e.b >= nbranches)
    diverge({"RP05", analyze::Severity::kError,
             util::strprintf("recorded PI_TrySelect branch %d is outside [-1,%d) "
                             "of bundle B%d — the bundle changed since recording "
                             "(%s)",
                             e.b, nbranches, bundle_id, rank_pos(rank).c_str()),
             util::strprintf("rank %d", rank), file ? file : "", line});
  return e.b;
}

int Engine::replay_has_data(int rank, int channel_id, const char* file, int line) {
  const Event e = next(rank, EventKind::kHasData, channel_id, file, line);
  return e.b;
}

void Engine::branch_never_ready(int rank, int bundle_id, int branch,
                                const char* file, int line) {
  diverge({"RP04", analyze::Severity::kError,
           util::strprintf("recorded branch %d of bundle B%d never became ready "
                           "within %.1f s — the recorded writer diverged or "
                           "never wrote (%s)",
                           branch, bundle_id, timeout_seconds_,
                           rank_pos(rank).c_str()),
           util::strprintf("rank %d", rank), file ? file : "", line});
}

}  // namespace replay

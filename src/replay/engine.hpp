// The record/replay engine. One Engine exists per recorded or replayed run;
// the Pilot runtime owns it, hands it to mpisim via World::Config::replay
// (wildcard receives, probes, barriers) and calls the select-family methods
// itself from the PI_Select/PI_TrySelect/PI_ChannelHasData paths, where the
// source file:line is known.
//
// Record mode appends each rank's decisions to a per-rank stream (each rank
// only ever touches its own stream, so recording is lock-free) and save()
// writes the .prl file. Replay mode loads a .prl and hands decisions back
// in order; any mismatch between the log and reality raises a
// DivergenceError carrying an RP-series analyze::Diagnostic:
//
//   RP01  replay log exhausted (the program performs more nondeterministic
//         operations than were recorded)
//   RP02  recorded/actual operation kind or subject mismatch (the program
//         reached a different operation than the log expects)
//   RP03  the recorded message never arrived within the replay timeout
//         (recorded sender never sent / barrier slot never reached)
//   RP04  the recorded select branch / probe outcome never became ready
//   RP05  the log does not fit the program's topology (rank count, branch
//         out of range) — detected fail-fast at PI_StartAll where possible
//   RP06  trailing unused events at the end of a completed replay (warning:
//         the program performed fewer operations than were recorded)
//   RP07  corrupt or truncated .prl file
//
// All divergence diagnostics are also collected in report() so the Pilot
// runtime can surface them through RunInfo even when the thrown error is
// swallowed by the abort path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analyze/diagnostics.hpp"
#include "mpisim/replay_hook.hpp"
#include "replay/prl.hpp"
#include "util/error.hpp"

namespace replay {

class DivergenceError : public util::Error {
public:
  explicit DivergenceError(analyze::Diagnostic d)
      : util::Error(d.id + ": " + d.message), diagnostic_(std::move(d)) {}
  [[nodiscard]] const analyze::Diagnostic& diagnostic() const { return diagnostic_; }

private:
  analyze::Diagnostic diagnostic_;
};

class Engine : public mpisim::ReplayHook {
public:
  enum class Mode { kRecord, kReplay };

  /// Record mode: decisions accumulate until save().
  static std::unique_ptr<Engine> make_recorder(std::string path);
  /// Replay mode: loads `path` now; corrupt/truncated logs raise a
  /// DivergenceError with an RP07 diagnostic.
  static std::unique_ptr<Engine> make_replayer(std::string path,
                                               double timeout_seconds);

  /// Called once the rank count of the run is known, before the world
  /// starts. Record mode sizes the per-rank streams; replay mode verifies
  /// the log matches (RP05 otherwise).
  void begin_run(int nranks);

  /// Replay only: true once any rank diverged.
  [[nodiscard]] bool diverged() const {
    return diverged_.load(std::memory_order_acquire);
  }
  /// Divergence diagnostics (and the RP06 completion warning) so far.
  [[nodiscard]] analyze::Report report() const;

  /// Record mode: write the .prl (throws util::IoError on I/O failure).
  void save() const;
  /// Replay mode, call after a *completed* run: adds an RP06 warning when
  /// recorded events were left unused. Returns the number left.
  std::size_t finish();

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const Log& log() const { return log_; }

  // --- mpisim::ReplayHook --------------------------------------------------
  [[nodiscard]] bool replaying() const override { return mode_ == Mode::kReplay; }
  void record_recv(int rank, const Match& m) override;
  void record_probe(int rank, const Match& m) override;
  void record_barrier(int rank, int position) override;
  Match replay_recv(int rank) override;
  Match replay_probe(int rank) override;
  int replay_barrier(int rank) override;
  [[nodiscard]] double timeout_seconds() const override { return timeout_seconds_; }
  [[noreturn]] void replay_failed(int rank, const char* what,
                                  const Match& m) override;

  // --- Pilot select family (called from the runtime with the call site) ----
  void record_select(int rank, int bundle_id, int branch);
  void record_try_select(int rank, int bundle_id, int branch);
  void record_has_data(int rank, int channel_id, int outcome);
  /// Recorded branch for this PI_Select; RP01/RP02 on log mismatch, RP05
  /// when the branch is outside [0, nbranches).
  int replay_select(int rank, int bundle_id, int nbranches, const char* file,
                    int line);
  int replay_try_select(int rank, int bundle_id, int nbranches, const char* file,
                        int line);
  int replay_has_data(int rank, int channel_id, const char* file, int line);
  /// The recorded branch never became ready within the timeout (RP04).
  [[noreturn]] void branch_never_ready(int rank, int bundle_id, int branch,
                                       const char* file, int line);

private:
  Engine(Mode mode, std::string path, double timeout_seconds);

  void record(int rank, Event e);
  /// Next event for `rank`, which must be of `kind` with subject `a`
  /// (RP01/RP02 otherwise). Advances the cursor.
  Event next(int rank, EventKind kind, int expected_a, const char* file, int line);
  [[noreturn]] void diverge(analyze::Diagnostic d);
  [[nodiscard]] std::string rank_pos(int rank) const;

  Mode mode_;
  std::string path_;
  double timeout_seconds_;
  Log log_;
  std::vector<std::size_t> cursor_;  // replay: next event index per rank
  std::atomic<bool> diverged_{false};
  mutable std::mutex report_mu_;
  analyze::Report report_;
};

}  // namespace replay

#include "replay/prl.hpp"

#include <cstring>
#include <fstream>

#include "util/bytebuf.hpp"
#include "util/strings.hpp"

namespace replay {

namespace {

constexpr char kMagic[4] = {'P', 'R', 'L', '1'};

bool valid_kind(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(EventKind::kRecvMatch) &&
         k <= static_cast<std::uint8_t>(EventKind::kBarrier);
}

}  // namespace

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRecvMatch: return "recv";
    case EventKind::kProbeMatch: return "probe";
    case EventKind::kSelect: return "select";
    case EventKind::kTrySelect: return "tryselect";
    case EventKind::kHasData: return "hasdata";
    case EventKind::kBarrier: return "barrier";
  }
  return "?";
}

std::size_t Log::total_events() const {
  std::size_t n = 0;
  for (const auto& v : per_rank) n += v.size();
  return n;
}

std::vector<std::uint8_t> serialize(const Log& log) {
  util::ByteWriter w;
  w.raw(kMagic, sizeof kMagic);
  w.u32(log.version);
  w.u32(static_cast<std::uint32_t>(log.per_rank.size()));
  for (const auto& events : log.per_rank) {
    w.u64(events.size());
    for (const Event& e : events) {
      w.u8(static_cast<std::uint8_t>(e.kind));
      w.i32(e.a);
      w.i32(e.b);
      w.u64(e.seq);
    }
  }
  return w.take();
}

Log parse(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  const std::uint8_t* magic = r.take(sizeof kMagic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw util::IoError("not a .prl replay log (bad magic)");
  Log log;
  log.version = r.u32();
  if (log.version != kFormatVersion)
    throw util::IoError(util::strprintf(".prl version %u unsupported (expected %u)",
                                        log.version, kFormatVersion));
  // Counts come from untrusted bytes: bound them by the remaining input
  // (each rank needs its 8-byte event count; each event at least its kind
  // byte) so corruption fails as IoError, not as a huge allocation.
  const std::uint32_t nranks =
      static_cast<std::uint32_t>(r.checked_count(r.u32(), 8));
  log.per_rank.resize(nranks);
  for (std::uint32_t rank = 0; rank < nranks; ++rank) {
    const std::size_t count = r.checked_count(r.u64(), 1);
    auto& events = log.per_rank[rank];
    events.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      Event e;
      const std::uint8_t k = r.u8();
      if (!valid_kind(k))
        throw util::IoError(util::strprintf(
            ".prl: unknown event kind %u (rank %u, event %llu)", k, rank,
            static_cast<unsigned long long>(i)));
      e.kind = static_cast<EventKind>(k);
      e.a = r.i32();
      e.b = r.i32();
      e.seq = r.u64();
      events.push_back(e);
    }
  }
  if (!r.at_end())
    throw util::IoError(util::strprintf(".prl: %zu trailing byte(s) after the last "
                                        "rank section", r.remaining()));
  return log;
}

void write_file(const std::filesystem::path& path, const Log& log) {
  const auto bytes = serialize(log);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::IoError("cannot open for writing: " + path.string());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw util::IoError("write failed: " + path.string());
}

Log read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open: " + path.string());
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return parse(bytes);
}

std::string to_text(const Log& log) {
  std::string out = util::strprintf(".prl version %u, %d rank(s), %zu event(s)\n",
                                    log.version, log.nranks(), log.total_events());
  for (int rank = 0; rank < log.nranks(); ++rank) {
    const auto& events = log.per_rank[static_cast<std::size_t>(rank)];
    out += util::strprintf("rank %d: %zu event(s)\n", rank, events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      switch (e.kind) {
        case EventKind::kRecvMatch:
        case EventKind::kProbeMatch:
          out += util::strprintf("  [%zu] %s from rank %d (pair seq %llu)\n", i,
                                 kind_name(e.kind), e.a,
                                 static_cast<unsigned long long>(e.seq));
          break;
        case EventKind::kSelect:
        case EventKind::kTrySelect:
          out += util::strprintf("  [%zu] %s bundle B%d -> branch %d\n", i,
                                 kind_name(e.kind), e.a, e.b);
          break;
        case EventKind::kHasData:
          out += util::strprintf("  [%zu] %s channel C%d -> %d\n", i,
                                 kind_name(e.kind), e.a, e.b);
          break;
        case EventKind::kBarrier:
          out += util::strprintf("  [%zu] %s arrival position %d\n", i,
                                 kind_name(e.kind), e.a);
          break;
      }
    }
  }
  return out;
}

}  // namespace replay

// The .prl replay-log format: the compact binary record of every
// nondeterministic decision a Pilot/mpisim run made, written by
// -pirecord=<file> and consumed by -pireplay=<file> (see docs/REPLAY.md).
//
// A log is a per-rank stream of events in program order:
//   kRecvMatch / kProbeMatch  which envelope a wildcard receive/probe
//                             matched: sender rank + per-(src,dst) sequence
//   kSelect / kTrySelect      which branch the PI_Select family returned
//   kHasData                  a PI_ChannelHasData outcome
//   kBarrier                  this rank's arrival position at a barrier
//
// Layout (all little-endian, via util::ByteWriter):
//   magic   "PRL1"
//   u32     version (kFormatVersion)
//   u32     nranks
//   per rank: u64 count, then count * { u8 kind, i32 a, i32 b, u64 seq }
// Trailing bytes after the last rank section are an error, as is any
// truncation (util::IoError), matching the CLOG-2 reader's strictness.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace replay {

inline constexpr std::uint32_t kFormatVersion = 1;

enum class EventKind : std::uint8_t {
  kRecvMatch = 1,   ///< a=src, seq=pair_seq
  kProbeMatch = 2,  ///< a=src, seq=pair_seq
  kSelect = 3,      ///< a=bundle id, b=branch index
  kTrySelect = 4,   ///< a=bundle id, b=branch index (-1 = nothing ready)
  kHasData = 5,     ///< a=channel id, b=outcome (0/1)
  kBarrier = 6,     ///< a=arrival position (0-based)
};

/// Human-readable kind name ("recv", "select", ...).
const char* kind_name(EventKind kind);

struct Event {
  EventKind kind = EventKind::kRecvMatch;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::uint64_t seq = 0;

  bool operator==(const Event&) const = default;
};

struct Log {
  std::uint32_t version = kFormatVersion;
  /// per_rank[r] = rank r's decisions in program order.
  std::vector<std::vector<Event>> per_rank;

  [[nodiscard]] int nranks() const { return static_cast<int>(per_rank.size()); }
  [[nodiscard]] std::size_t total_events() const;

  bool operator==(const Log&) const = default;
};

std::vector<std::uint8_t> serialize(const Log& log);
/// Throws util::IoError on bad magic, truncation, or trailing garbage.
Log parse(const std::vector<std::uint8_t>& bytes);

void write_file(const std::filesystem::path& path, const Log& log);
Log read_file(const std::filesystem::path& path);

/// Human-readable dump (the pilot-replayprint tool).
std::string to_text(const Log& log);

}  // namespace replay

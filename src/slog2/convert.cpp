// CLOG-2 → SLOG-2 conversion: pairing, matching, superposition detection,
// and frame-tree construction. See slog2.hpp for the format overview.
//
// The conversion is parallel and deterministic. Work fans out across a
// small worker pool (ConvertOptions::threads) along the axes that are
// naturally independent:
//   * per-timeline state pairing and solo-event collection (one task per
//     rank),
//   * per-(src,dst,tag) message matching (one task per key),
//   * per-node preview fills over the finished frame tree (one task per
//     frame).
// Every task writes only its own pre-allocated slot; results are then
// committed in a fixed order keyed by each drawable's position in the
// global chronological instance order. The emitted file is byte-identical
// at any thread count — and byte-identical to what the original
// single-threaded scan produced.
//
// The pairing/matching machinery and the assemble() tail live partly in
// convert_internal.hpp so the streaming OnlineConverter (src/traced/) can
// reproduce this output incrementally, byte for byte.
#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <set>
#include <tuple>

#include "slog2/convert_internal.hpp"
#include "slog2/slog2.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace slog2 {

namespace detail {

void warn(std::vector<std::string>* warnings, const std::string& msg) {
  if (warnings && warnings->size() < kMaxWarningMessages) warnings->push_back(msg);
}

std::size_t state_bytes(const StateDrawable& s) {
  return 2 * sizeof(double) + 3 * sizeof(std::int32_t) + s.start_text.size() +
         s.end_text.size();
}
std::size_t event_bytes(const EventDrawable& e) {
  return sizeof(double) + 2 * sizeof(std::int32_t) + e.text.size();
}

// Recursive bounded-frame builder: drawables that fit entirely inside a
// child half-interval sink down until the payload fits the frame-size bound.
std::unique_ptr<Frame> build_frame(Collected items, double a, double b, int depth,
                                   const ConvertOptions& opts, ConvertStats& stats) {
  auto frame = std::make_unique<Frame>();
  frame->t0 = a;
  frame->t1 = b;
  frame->depth = depth;

  std::size_t bytes = 0;
  for (const auto& s : items.states) bytes += state_bytes(s);
  for (const auto& e : items.events) bytes += event_bytes(e);
  bytes += items.arrows.size() * kArrowBytes;

  const bool can_split = depth < opts.max_depth && b > a &&
                         (b - a) / 2.0 > 0.0 && bytes > opts.frame_size;
  if (!can_split) {
    frame->states = std::move(items.states);
    frame->events = std::move(items.events);
    frame->arrows = std::move(items.arrows);
    ++stats.frames;
    ++stats.leaf_frames;
    stats.tree_depth = std::max(stats.tree_depth, depth);
    return frame;
  }

  const double mid = 0.5 * (a + b);
  Collected left, right, here;
  auto place = [&](auto member, auto&& drawable, double s, double e) {
    if (e <= mid) {
      (left.*member).push_back(std::move(drawable));
    } else if (s >= mid) {
      (right.*member).push_back(std::move(drawable));
    } else {
      (here.*member).push_back(std::move(drawable));
    }
  };
  for (auto& s : items.states) {
    const double st = s.start_time;
    const double en = s.end_time;
    place(&Collected::states, std::move(s), st, en);
  }
  for (auto& e : items.events) {
    const double t = e.time;
    place(&Collected::events, std::move(e), t, t);
  }
  for (auto& ar : items.arrows) {
    const double lo = std::min(ar.start_time, ar.end_time);
    const double hi = std::max(ar.start_time, ar.end_time);
    place(&Collected::arrows, std::move(ar), lo, hi);
  }
  frame->states = std::move(here.states);
  frame->events = std::move(here.events);
  frame->arrows = std::move(here.arrows);

  ++stats.frames;
  if (!left.states.empty() || !left.events.empty() || !left.arrows.empty())
    frame->left = build_frame(std::move(left), a, mid, depth + 1, opts, stats);
  if (!right.states.empty() || !right.events.empty() || !right.arrows.empty())
    frame->right = build_frame(std::move(right), mid, b, depth + 1, opts, stats);
  stats.tree_depth = std::max(stats.tree_depth, depth);
  return frame;
}

}  // namespace detail

namespace {

using detail::Collected;
using detail::EventIdIndex;
using detail::InstKey;
using detail::kMaxWarningMessages;
using detail::OpenState;
using detail::warn;

void add_occupancy(Preview& pv, double node_t0, double node_t1, std::int32_t cat,
                   double s, double e) {
  if (pv.nbuckets <= 0 || node_t1 <= node_t0) return;
  auto& buckets = pv.state_occupancy[cat];
  if (buckets.empty()) buckets.assign(static_cast<std::size_t>(pv.nbuckets), 0.0F);
  const double width = (node_t1 - node_t0) / pv.nbuckets;
  const double lo = std::max(s, node_t0);
  const double hi = std::min(e, node_t1);
  if (hi <= lo) return;
  auto first = static_cast<int>((lo - node_t0) / width);
  auto last = static_cast<int>((hi - node_t0) / width);
  first = std::clamp(first, 0, pv.nbuckets - 1);
  last = std::clamp(last, 0, pv.nbuckets - 1);
  for (int i = first; i <= last; ++i) {
    const double b0 = node_t0 + i * width;
    const double b1 = b0 + width;
    const double overlap = std::min(hi, b1) - std::max(lo, b0);
    if (overlap > 0)
      buckets[static_cast<std::size_t>(i)] += static_cast<float>(overlap);
  }
}

void add_event_count(Preview& pv, double node_t0, double node_t1, std::int32_t cat,
                     double t) {
  if (pv.nbuckets <= 0) return;
  auto& buckets = pv.event_counts[cat];
  if (buckets.empty()) buckets.assign(static_cast<std::size_t>(pv.nbuckets), 0);
  int idx = 0;
  if (node_t1 > node_t0)
    idx = std::clamp(static_cast<int>((t - node_t0) / (node_t1 - node_t0) *
                                      pv.nbuckets),
                     0, pv.nbuckets - 1);
  buckets[static_cast<std::size_t>(idx)]++;
}

// Every drawable contributes to the preview of its own frame and of every
// ancestor, so any node's preview summarizes its whole subtree. Instead of
// pushing contributions up an ancestor path (which serializes on the shared
// ancestors), each node *pulls* from its subtree — node previews are
// independent, so they fan out across the worker pool. The subtree is
// walked in preorder, the same order the ancestor-path formulation added
// contributions in, so the float sums are bit-identical to the sequential
// result.
void fill_preview_from_subtree(Frame& node, int nbuckets) {
  node.preview.nbuckets = nbuckets;
  std::vector<const Frame*> stack = {&node};
  while (!stack.empty()) {
    const Frame* f = stack.back();
    stack.pop_back();
    for (const auto& s : f->states)
      add_occupancy(node.preview, node.t0, node.t1, s.category_id, s.start_time,
                    s.end_time);
    for (const auto& e : f->events)
      add_event_count(node.preview, node.t0, node.t1, e.category_id, e.time);
    node.preview.arrow_count += static_cast<std::uint32_t>(f->arrows.size());
    if (f->right) stack.push_back(f->right.get());
    if (f->left) stack.push_back(f->left.get());
  }
}

void collect_frames(Frame& f, std::vector<Frame*>& out) {
  out.push_back(&f);
  if (f.left) collect_frames(*f.left, out);
  if (f.right) collect_frames(*f.right, out);
}

struct EvInst {
  InstKey key;
  const clog2::EventRec* rec = nullptr;
};
struct MsgInst {
  InstKey key;
  const clog2::MsgRec* rec = nullptr;
};

// Per-timeline task output (one per rank present in the trace).
struct TimelineOut {
  std::vector<EvInst> instances;  // input: this rank's event instances
  std::vector<StateDrawable> states;
  std::vector<InstKey> state_keys;  // commit key = the closing instance
  std::vector<EventDrawable> events;
  std::vector<InstKey> event_keys;
  std::vector<OpenState> open_tail;  // never-closed states, stack order
  struct Warn {
    InstKey key;
    std::string msg;
  };
  std::vector<Warn> warns;
  std::uint64_t unmatched_state_ends = 0;
  std::uint64_t unknown_event_ids = 0;
};

// Per-message-key task output.
struct MsgOut {
  std::vector<MsgInst> sends;  // input halves, file order
  std::vector<MsgInst> recvs;
  std::vector<ArrowDrawable> arrows;
  std::vector<InstKey> arrow_keys;  // commit key = the later (matching) half
  std::size_t unmatched_sends = 0;
  std::size_t unmatched_recvs = 0;
};

void pair_timeline(std::int32_t rank, TimelineOut& tl, const EventIdIndex& index) {
  std::sort(tl.instances.begin(), tl.instances.end(),
            [](const EvInst& a, const EvInst& b) { return a.key < b.key; });
  std::vector<OpenState> stack;
  for (const EvInst& inst : tl.instances) {
    const auto& e = *inst.rec;
    const EventIdIndex::Entry* entry = index.find(e.event_id);
    if (entry != nullptr && entry->state_cat >= 0) {
      if (entry->is_start) {
        stack.push_back(OpenState{entry->state_cat, e.timestamp, e.text,
                                  static_cast<std::int32_t>(stack.size())});
      } else if (!stack.empty() && stack.back().category_id == entry->state_cat) {
        StateDrawable s;
        s.category_id = stack.back().category_id;
        s.rank = rank;
        s.start_time = stack.back().start_time;
        s.end_time = e.timestamp;
        s.depth = stack.back().depth;
        s.start_text = std::move(stack.back().start_text);
        s.end_text = e.text;
        stack.pop_back();
        tl.states.push_back(std::move(s));
        tl.state_keys.push_back(inst.key);
      } else {
        ++tl.unmatched_state_ends;
        if (tl.warns.size() < kMaxWarningMessages)
          tl.warns.push_back(TimelineOut::Warn{
              inst.key,
              util::strprintf("rank %d: end event id %d at t=%.9f has no matching "
                              "open state",
                              rank, e.event_id, e.timestamp)});
      }
    } else if (entry != nullptr && entry->solo_cat >= 0) {
      tl.events.push_back(EventDrawable{entry->solo_cat, rank, e.timestamp, e.text});
      tl.event_keys.push_back(inst.key);
    } else {
      ++tl.unknown_event_ids;
      if (tl.warns.size() < kMaxWarningMessages)
        tl.warns.push_back(TimelineOut::Warn{
            inst.key, util::strprintf("rank %d: event id %d has no definition",
                                      rank, e.event_id)});
    }
  }
  tl.open_tail = std::move(stack);
  tl.instances.clear();
  tl.instances.shrink_to_fit();
}

void pair_messages(MsgOut& mo) {
  auto by_key = [](const MsgInst& a, const MsgInst& b) { return a.key < b.key; };
  std::sort(mo.sends.begin(), mo.sends.end(), by_key);
  std::sort(mo.recvs.begin(), mo.recvs.end(), by_key);
  // FIFO matching of two chronological streams pairs the i-th send with the
  // i-th receive of the key; the arrow "commits" when its later half is
  // scanned, exactly as in the sequential pass.
  const std::size_t npairs = std::min(mo.sends.size(), mo.recvs.size());
  mo.arrows.reserve(npairs);
  mo.arrow_keys.reserve(npairs);
  for (std::size_t i = 0; i < npairs; ++i) {
    const clog2::MsgRec& send = *mo.sends[i].rec;
    const clog2::MsgRec& recv = *mo.recvs[i].rec;
    ArrowDrawable a;
    a.src_rank = send.rank;
    a.dst_rank = recv.rank;
    a.start_time = send.timestamp;
    a.end_time = recv.timestamp;
    a.tag = send.tag;
    a.size = send.size;
    mo.arrows.push_back(a);
    mo.arrow_keys.push_back(std::max(mo.sends[i].key, mo.recvs[i].key,
                                     [](const InstKey& x, const InstKey& y) {
                                       return x < y;
                                     }));
  }
  mo.unmatched_sends = mo.sends.size() - npairs;
  mo.unmatched_recvs = mo.recvs.size() - npairs;
  mo.sends.clear();
  mo.sends.shrink_to_fit();
  mo.recvs.clear();
  mo.recvs.shrink_to_fit();
}

// Move drawables out of per-task slots into one vector ordered by commit
// key. The key sort is what pins the output order regardless of how tasks
// were scheduled.
template <typename Drawable>
void commit_ordered(std::vector<std::pair<InstKey, Drawable*>>& keyed,
                    std::vector<Drawable>& out) {
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.reserve(out.size() + keyed.size());
  for (auto& [key, ptr] : keyed) out.push_back(std::move(*ptr));
}

}  // namespace

std::size_t Frame::payload_bytes() const {
  std::size_t bytes = 0;
  for (const auto& s : states) bytes += detail::state_bytes(s);
  for (const auto& e : events) bytes += detail::event_bytes(e);
  bytes += arrows.size() * detail::kArrowBytes;
  return bytes;
}

namespace detail {

void assemble(File& out, Collected items, bool any_instance,
              const ConvertOptions& opts, int nthreads,
              std::vector<std::string>* warnings) {
  // --- "Equal Drawables" detection -------------------------------------------
  // The three drawable kinds are independent scans; fan them out, then emit
  // their warnings in the fixed kind order (arrows, states, events).
  {
    std::array<std::vector<std::string>, 3> kind_warns;
    std::array<std::uint64_t, 3> kind_counts{};
    util::parallel_for(std::size_t{3}, nthreads, [&](std::size_t kind) {
      auto note = [&](const std::string& msg) {
        if (kind_warns[kind].size() < kMaxWarningMessages)
          kind_warns[kind].push_back(msg);
      };
      if (kind == 0) {
        std::set<std::tuple<std::int32_t, std::int32_t, double, double>> seen;
        for (const auto& a : items.arrows)
          if (!seen.insert({a.src_rank, a.dst_rank, a.start_time, a.end_time})
                   .second) {
            ++kind_counts[kind];
            note(util::strprintf(
                "Equal Drawables: arrows %d->%d share start=%.9f end=%.9f",
                a.src_rank, a.dst_rank, a.start_time, a.end_time));
          }
      } else if (kind == 1) {
        std::set<std::tuple<std::int32_t, std::int32_t, double, double>> seen;
        for (const auto& s : items.states)
          if (!seen.insert({s.category_id, s.rank, s.start_time, s.end_time})
                   .second) {
            ++kind_counts[kind];
            note(util::strprintf(
                "Equal Drawables: states cat=%d rank=%d share start=%.9f "
                "end=%.9f",
                s.category_id, s.rank, s.start_time, s.end_time));
          }
      } else {
        std::set<std::tuple<std::int32_t, std::int32_t, double>> seen;
        for (const auto& e : items.events)
          if (!seen.insert({e.category_id, e.rank, e.time}).second) {
            ++kind_counts[kind];
            note(util::strprintf(
                "Equal Drawables: events cat=%d rank=%d share t=%.9f",
                e.category_id, e.rank, e.time));
          }
      }
    });
    for (std::size_t kind = 0; kind < 3; ++kind) {
      out.stats.equal_drawables += kind_counts[kind];
      for (const auto& msg : kind_warns[kind]) warn(warnings, msg);
    }
  }

  out.stats.total_states = items.states.size();
  out.stats.total_events = items.events.size();
  out.stats.total_arrows = items.arrows.size();

  // --- time span -------------------------------------------------------------
  if (any_instance) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    auto widen = [&](double s, double e) {
      lo = std::min(lo, s);
      hi = std::max(hi, e);
    };
    for (const auto& s : items.states) widen(s.start_time, s.end_time);
    for (const auto& e : items.events) widen(e.time, e.time);
    for (const auto& a : items.arrows)
      widen(std::min(a.start_time, a.end_time), std::max(a.start_time, a.end_time));
    if (lo <= hi) {
      out.t_min = lo;
      out.t_max = hi;
    }
  }

  // --- frame tree + previews --------------------------------------------------
  out.root = build_frame(std::move(items), out.t_min, out.t_max, 0, opts, out.stats);
  std::vector<Frame*> nodes;
  nodes.reserve(static_cast<std::size_t>(out.stats.frames));
  collect_frames(*out.root, nodes);
  util::parallel_for(nodes.size(), nthreads, [&](std::size_t i) {
    fill_preview_from_subtree(*nodes[i], opts.preview_buckets);
  });
}

}  // namespace detail

File convert(const clog2::File& in, const ConvertOptions& opts,
             std::vector<std::string>* warnings) {
  if (opts.frame_size == 0)
    throw util::UsageError("slog2::convert: frame_size must be positive");
  if (opts.max_depth < 0 || opts.max_depth > 48)
    throw util::UsageError("slog2::convert: max_depth out of range");
  const int nthreads = util::resolve_threads(opts.threads);

  File out;
  out.nranks = in.nranks;
  out.frame_size = opts.frame_size;
  out.encoding = opts.encoding;

  // --- category table -------------------------------------------------------
  out.categories.push_back(
      Category{kArrowCategoryId, CategoryKind::kArrow, "message", "white", ""});
  EventIdIndex index;
  for (const auto& rec : in.records) {
    if (const auto* d = std::get_if<clog2::StateDef>(&rec)) {
      index.note_id(d->start_event_id);
      index.note_id(d->end_event_id);
    } else if (const auto* e = std::get_if<clog2::EventDef>(&rec)) {
      index.note_id(e->event_id);
    }
  }
  index.finalize();
  std::int32_t next_cat = 1;
  for (const auto& rec : in.records) {
    if (const auto* d = std::get_if<clog2::StateDef>(&rec)) {
      const std::int32_t cat = next_cat++;
      out.categories.push_back(
          Category{cat, CategoryKind::kState, d->name, d->color, d->format});
      index.at(d->start_event_id) = EventIdIndex::Entry{cat, true, -1};
      index.at(d->end_event_id) = EventIdIndex::Entry{cat, false, -1};
    } else if (const auto* e = std::get_if<clog2::EventDef>(&rec)) {
      const std::int32_t cat = next_cat++;
      out.categories.push_back(
          Category{cat, CategoryKind::kEvent, e->name, e->color, e->format});
      index.at(e->event_id) = EventIdIndex::Entry{-1, false, cat};
    }
  }

  // --- bucket instances by timeline / message key ---------------------------
  // One cheap sequential pass assigns every instance its global (time, file
  // position) key and routes it to the task that will process it.
  using MsgKey = std::tuple<std::int32_t, std::int32_t, std::int32_t>;
  std::map<std::int32_t, TimelineOut> timelines;
  std::map<MsgKey, MsgOut> messages;
  double last_time_seen = 0.0;
  bool any_instance = false;
  std::uint64_t inst_idx = 0;
  for (const auto& rec : in.records) {
    if (const auto* e = std::get_if<clog2::EventRec>(&rec)) {
      any_instance = true;
      last_time_seen = std::max(last_time_seen, e->timestamp);
      timelines[e->rank].instances.push_back(
          EvInst{InstKey{e->timestamp, inst_idx++}, e});
    } else if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) {
      any_instance = true;
      last_time_seen = std::max(last_time_seen, m->timestamp);
      const bool is_send = m->kind == clog2::MsgRec::Kind::kSend;
      const MsgKey key = is_send ? MsgKey{m->rank, m->partner, m->tag}
                                 : MsgKey{m->partner, m->rank, m->tag};
      auto& mo = messages[key];
      (is_send ? mo.sends : mo.recvs)
          .push_back(MsgInst{InstKey{m->timestamp, inst_idx++}, m});
    }
  }

  // --- fan out: per-timeline pairing, per-key matching ----------------------
  std::vector<std::pair<std::int32_t, TimelineOut*>> timeline_tasks;
  timeline_tasks.reserve(timelines.size());
  for (auto& [rank, tl] : timelines) timeline_tasks.emplace_back(rank, &tl);
  std::vector<MsgOut*> message_tasks;
  message_tasks.reserve(messages.size());
  for (auto& [key, mo] : messages) message_tasks.push_back(&mo);

  util::parallel_for(timeline_tasks.size() + message_tasks.size(), nthreads,
                     [&](std::size_t i) {
                       if (i < timeline_tasks.size()) {
                         pair_timeline(timeline_tasks[i].first,
                                       *timeline_tasks[i].second, index);
                       } else {
                         pair_messages(*message_tasks[i - timeline_tasks.size()]);
                       }
                     });

  // --- commit in instance order ---------------------------------------------
  Collected items;
  {
    std::size_t nstates = 0, nevents = 0, narrows = 0, nwarns = 0;
    for (const auto& [rank, tl] : timeline_tasks) {
      nstates += tl->states.size() + tl->open_tail.size();
      nevents += tl->events.size();
      nwarns += tl->warns.size();
    }
    for (const MsgOut* mo : message_tasks) narrows += mo->arrows.size();

    std::vector<std::pair<InstKey, StateDrawable*>> keyed_states;
    keyed_states.reserve(nstates);
    std::vector<std::pair<InstKey, EventDrawable*>> keyed_events;
    keyed_events.reserve(nevents);
    std::vector<std::pair<InstKey, ArrowDrawable*>> keyed_arrows;
    keyed_arrows.reserve(narrows);
    std::vector<std::pair<InstKey, const std::string*>> keyed_warns;
    keyed_warns.reserve(nwarns);

    for (auto& [rank, tl] : timeline_tasks) {
      for (std::size_t i = 0; i < tl->states.size(); ++i)
        keyed_states.emplace_back(tl->state_keys[i], &tl->states[i]);
      for (std::size_t i = 0; i < tl->events.size(); ++i)
        keyed_events.emplace_back(tl->event_keys[i], &tl->events[i]);
      for (auto& w : tl->warns) keyed_warns.emplace_back(w.key, &w.msg);
      out.stats.unmatched_state_ends += tl->unmatched_state_ends;
      out.stats.unknown_event_ids += tl->unknown_event_ids;
    }
    for (MsgOut* mo : message_tasks)
      for (std::size_t i = 0; i < mo->arrows.size(); ++i)
        keyed_arrows.emplace_back(mo->arrow_keys[i], &mo->arrows[i]);

    items.states.reserve(nstates);
    commit_ordered(keyed_states, items.states);
    items.events.reserve(nevents);
    commit_ordered(keyed_events, items.events);
    items.arrows.reserve(narrows);
    commit_ordered(keyed_arrows, items.arrows);

    // Scan-phase warnings, replayed in global chronological order.
    std::sort(keyed_warns.begin(), keyed_warns.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key, msg] : keyed_warns) warn(warnings, *msg);
  }

  for (const auto& [key, mo] : messages) {
    out.stats.unmatched_sends += mo.unmatched_sends;
    if (mo.unmatched_sends > 0)
      warn(warnings, util::strprintf("%zu send(s) from rank %d to rank %d tag %d "
                                     "were never received",
                                     mo.unmatched_sends, std::get<0>(key),
                                     std::get<1>(key), std::get<2>(key)));
  }
  for (const auto& [key, mo] : messages) {
    out.stats.unmatched_recvs += mo.unmatched_recvs;
    if (mo.unmatched_recvs > 0)
      warn(warnings, util::strprintf("%zu receive(s) at rank %d from rank %d tag %d "
                                     "have no logged send",
                                     mo.unmatched_recvs, std::get<1>(key),
                                     std::get<0>(key), std::get<2>(key)));
  }

  // Close dangling states at the last timestamp so they stay visible.
  for (auto& [rank, tl] : timeline_tasks) {
    while (!tl->open_tail.empty()) {
      ++out.stats.unclosed_states;
      auto& open = tl->open_tail.back();
      StateDrawable s;
      s.category_id = open.category_id;
      s.rank = rank;
      s.start_time = open.start_time;
      s.end_time = last_time_seen;
      s.depth = open.depth;
      s.start_text = std::move(open.start_text);
      warn(warnings,
           util::strprintf("rank %d: state category %d opened at t=%.9f never closed",
                           rank, s.category_id, s.start_time));
      tl->open_tail.pop_back();
      items.states.push_back(std::move(s));
    }
  }

  detail::assemble(out, std::move(items), any_instance, opts, nthreads, warnings);
  return out;
}

const Category* File::category(std::int32_t id) const {
  for (const auto& c : categories)
    if (c.id == id) return &c;
  return nullptr;
}

void File::visit_window(
    double a, double b, const std::function<void(const StateDrawable&)>& on_state,
    const std::function<void(const EventDrawable&)>& on_event,
    const std::function<void(const ArrowDrawable&)>& on_arrow) const {
  if (!root) return;
  // Iterative preorder descent; subtrees outside [a, b] are pruned without
  // being touched, so a zoomed window costs O(overlap + depth), not
  // O(total frames).
  std::vector<const Frame*> stack = {root.get()};
  while (!stack.empty()) {
    const Frame* f = stack.back();
    stack.pop_back();
    if (f->t1 < a || f->t0 > b) {
      // Frames never contain drawables outside [t0, t1]... except the root,
      // whose interval equals the global span, so pruning here is safe.
      continue;
    }
    if (on_state)
      for (const auto& s : f->states)
        if (s.end_time >= a && s.start_time <= b) on_state(s);
    if (on_event)
      for (const auto& e : f->events)
        if (e.time >= a && e.time <= b) on_event(e);
    if (on_arrow)
      for (const auto& ar : f->arrows) {
        const double lo = std::min(ar.start_time, ar.end_time);
        const double hi = std::max(ar.start_time, ar.end_time);
        if (hi >= a && lo <= b) on_arrow(ar);
      }
    if (f->right) stack.push_back(f->right.get());
    if (f->left) stack.push_back(f->left.get());
  }
}

void File::visit_frames(const std::function<void(const Frame&)>& fn) const {
  if (!root) return;
  std::function<void(const Frame&)> go = [&](const Frame& f) {
    fn(f);
    if (f.left) go(*f.left);
    if (f.right) go(*f.right);
  };
  go(*root);
}

std::string to_text(const File& file, bool dump_drawables) {
  std::string out;
  out += util::strprintf(
      "SLOG-2  ranks=%d  span=[%.9f, %.9f]  frame_size=%llu\n", file.nranks,
      file.t_min, file.t_max, static_cast<unsigned long long>(file.frame_size));
  out += util::strprintf(
      "  drawables: states=%llu events=%llu arrows=%llu\n",
      static_cast<unsigned long long>(file.stats.total_states),
      static_cast<unsigned long long>(file.stats.total_events),
      static_cast<unsigned long long>(file.stats.total_arrows));
  out += util::strprintf(
      "  frames=%llu leaves=%llu depth=%d\n",
      static_cast<unsigned long long>(file.stats.frames),
      static_cast<unsigned long long>(file.stats.leaf_frames), file.stats.tree_depth);
  out += util::strprintf(
      "  warnings: unmatched_sends=%llu unmatched_recvs=%llu "
      "unmatched_state_ends=%llu unclosed_states=%llu equal_drawables=%llu "
      "unknown_event_ids=%llu\n",
      static_cast<unsigned long long>(file.stats.unmatched_sends),
      static_cast<unsigned long long>(file.stats.unmatched_recvs),
      static_cast<unsigned long long>(file.stats.unmatched_state_ends),
      static_cast<unsigned long long>(file.stats.unclosed_states),
      static_cast<unsigned long long>(file.stats.equal_drawables),
      static_cast<unsigned long long>(file.stats.unknown_event_ids));
  out += "  categories:\n";
  for (const auto& c : file.categories) {
    const char* kind = c.kind == CategoryKind::kState   ? "state"
                       : c.kind == CategoryKind::kEvent ? "event"
                                                        : "arrow";
    out += util::strprintf("    [%d] %-6s %-24s %s\n", c.id, kind, c.name.c_str(),
                           c.color.c_str());
  }
  if (dump_drawables) {
    file.visit_window(
        file.t_min, file.t_max,
        [&](const StateDrawable& s) {
          out += util::strprintf(
              "  state cat=%d rank=%d [%.9f, %.9f] depth=%d \"%s\"\n", s.category_id,
              s.rank, s.start_time, s.end_time, s.depth, s.start_text.c_str());
        },
        [&](const EventDrawable& e) {
          out += util::strprintf("  event cat=%d rank=%d t=%.9f \"%s\"\n",
                                 e.category_id, e.rank, e.time, e.text.c_str());
        },
        [&](const ArrowDrawable& a) {
          out += util::strprintf("  arrow %d->%d [%.9f, %.9f] tag=%d size=%u\n",
                                 a.src_rank, a.dst_rank, a.start_time, a.end_time,
                                 a.tag, a.size);
        });
  }
  return out;
}

}  // namespace slog2

// CLOG-2 → SLOG-2 conversion: pairing, matching, superposition detection,
// and frame-tree construction. See slog2.hpp for the format overview.
#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <tuple>

#include "slog2/slog2.hpp"
#include "util/strings.hpp"

namespace slog2 {

namespace {

constexpr std::size_t kMaxWarningMessages = 50;

void warn(std::vector<std::string>* warnings, const std::string& msg) {
  if (warnings && warnings->size() < kMaxWarningMessages) warnings->push_back(msg);
}

struct StateInfo {
  std::int32_t category_id = 0;
  bool is_start = false;  // else end
};

struct OpenState {
  std::int32_t category_id = 0;
  double start_time = 0.0;
  std::string start_text;
  std::int32_t depth = 0;
};

struct Collected {
  std::vector<StateDrawable> states;
  std::vector<EventDrawable> events;
  std::vector<ArrowDrawable> arrows;
};

std::size_t state_bytes(const StateDrawable& s) {
  return 2 * sizeof(double) + 3 * sizeof(std::int32_t) + s.start_text.size() +
         s.end_text.size();
}
std::size_t event_bytes(const EventDrawable& e) {
  return sizeof(double) + 2 * sizeof(std::int32_t) + e.text.size();
}
constexpr std::size_t kArrowBytes = 2 * sizeof(double) + 3 * sizeof(std::int32_t) + 4;

// Recursive bounded-frame builder: drawables that fit entirely inside a
// child half-interval sink down until the payload fits the frame-size bound.
std::unique_ptr<Frame> build_frame(Collected items, double a, double b, int depth,
                                   const ConvertOptions& opts, ConvertStats& stats) {
  auto frame = std::make_unique<Frame>();
  frame->t0 = a;
  frame->t1 = b;
  frame->depth = depth;

  std::size_t bytes = 0;
  for (const auto& s : items.states) bytes += state_bytes(s);
  for (const auto& e : items.events) bytes += event_bytes(e);
  bytes += items.arrows.size() * kArrowBytes;

  const bool can_split = depth < opts.max_depth && b > a &&
                         (b - a) / 2.0 > 0.0 && bytes > opts.frame_size;
  if (!can_split) {
    frame->states = std::move(items.states);
    frame->events = std::move(items.events);
    frame->arrows = std::move(items.arrows);
    ++stats.frames;
    ++stats.leaf_frames;
    stats.tree_depth = std::max(stats.tree_depth, depth);
    return frame;
  }

  const double mid = 0.5 * (a + b);
  Collected left, right, here;
  auto place = [&](auto member, auto&& drawable, double s, double e) {
    if (e <= mid) {
      (left.*member).push_back(std::move(drawable));
    } else if (s >= mid) {
      (right.*member).push_back(std::move(drawable));
    } else {
      (here.*member).push_back(std::move(drawable));
    }
  };
  for (auto& s : items.states) {
    const double st = s.start_time;
    const double en = s.end_time;
    place(&Collected::states, std::move(s), st, en);
  }
  for (auto& e : items.events) {
    const double t = e.time;
    place(&Collected::events, std::move(e), t, t);
  }
  for (auto& ar : items.arrows) {
    const double lo = std::min(ar.start_time, ar.end_time);
    const double hi = std::max(ar.start_time, ar.end_time);
    place(&Collected::arrows, std::move(ar), lo, hi);
  }
  frame->states = std::move(here.states);
  frame->events = std::move(here.events);
  frame->arrows = std::move(here.arrows);

  ++stats.frames;
  if (!left.states.empty() || !left.events.empty() || !left.arrows.empty())
    frame->left = build_frame(std::move(left), a, mid, depth + 1, opts, stats);
  if (!right.states.empty() || !right.events.empty() || !right.arrows.empty())
    frame->right = build_frame(std::move(right), mid, b, depth + 1, opts, stats);
  stats.tree_depth = std::max(stats.tree_depth, depth);
  return frame;
}

void add_occupancy(Preview& pv, double node_t0, double node_t1, std::int32_t cat,
                   double s, double e) {
  if (pv.nbuckets <= 0 || node_t1 <= node_t0) return;
  auto& buckets = pv.state_occupancy[cat];
  if (buckets.empty()) buckets.assign(static_cast<std::size_t>(pv.nbuckets), 0.0F);
  const double width = (node_t1 - node_t0) / pv.nbuckets;
  const double lo = std::max(s, node_t0);
  const double hi = std::min(e, node_t1);
  if (hi <= lo) return;
  auto first = static_cast<int>((lo - node_t0) / width);
  auto last = static_cast<int>((hi - node_t0) / width);
  first = std::clamp(first, 0, pv.nbuckets - 1);
  last = std::clamp(last, 0, pv.nbuckets - 1);
  for (int i = first; i <= last; ++i) {
    const double b0 = node_t0 + i * width;
    const double b1 = b0 + width;
    const double overlap = std::min(hi, b1) - std::max(lo, b0);
    if (overlap > 0)
      buckets[static_cast<std::size_t>(i)] += static_cast<float>(overlap);
  }
}

void add_event_count(Preview& pv, double node_t0, double node_t1, std::int32_t cat,
                     double t) {
  if (pv.nbuckets <= 0) return;
  auto& buckets = pv.event_counts[cat];
  if (buckets.empty()) buckets.assign(static_cast<std::size_t>(pv.nbuckets), 0);
  int idx = 0;
  if (node_t1 > node_t0)
    idx = std::clamp(static_cast<int>((t - node_t0) / (node_t1 - node_t0) *
                                      pv.nbuckets),
                     0, pv.nbuckets - 1);
  buckets[static_cast<std::size_t>(idx)]++;
}

// Every drawable contributes to the preview of its own frame and of every
// ancestor, so any node's preview summarizes its whole subtree.
void fill_previews(Frame& frame, std::vector<Frame*>& path, int nbuckets) {
  frame.preview.nbuckets = nbuckets;
  path.push_back(&frame);
  for (Frame* node : path) {
    for (const auto& s : frame.states)
      add_occupancy(node->preview, node->t0, node->t1, s.category_id, s.start_time,
                    s.end_time);
    for (const auto& e : frame.events)
      add_event_count(node->preview, node->t0, node->t1, e.category_id, e.time);
    node->preview.arrow_count += static_cast<std::uint32_t>(frame.arrows.size());
  }
  if (frame.left) fill_previews(*frame.left, path, nbuckets);
  if (frame.right) fill_previews(*frame.right, path, nbuckets);
  path.pop_back();
}

}  // namespace

std::size_t Frame::payload_bytes() const {
  std::size_t bytes = 0;
  for (const auto& s : states) bytes += state_bytes(s);
  for (const auto& e : events) bytes += event_bytes(e);
  bytes += arrows.size() * kArrowBytes;
  return bytes;
}

File convert(const clog2::File& in, const ConvertOptions& opts,
             std::vector<std::string>* warnings) {
  if (opts.frame_size == 0)
    throw util::UsageError("slog2::convert: frame_size must be positive");
  if (opts.max_depth < 0 || opts.max_depth > 48)
    throw util::UsageError("slog2::convert: max_depth out of range");

  File out;
  out.nranks = in.nranks;
  out.frame_size = opts.frame_size;

  // --- category table -------------------------------------------------------
  out.categories.push_back(
      Category{kArrowCategoryId, CategoryKind::kArrow, "message", "white", ""});
  std::map<std::int32_t, StateInfo> state_events;  // event id -> role
  std::map<std::int32_t, std::int32_t> solo_events;  // event id -> category
  std::int32_t next_cat = 1;
  for (const auto& rec : in.records) {
    if (const auto* d = std::get_if<clog2::StateDef>(&rec)) {
      const std::int32_t cat = next_cat++;
      out.categories.push_back(
          Category{cat, CategoryKind::kState, d->name, d->color, d->format});
      state_events[d->start_event_id] = StateInfo{cat, true};
      state_events[d->end_event_id] = StateInfo{cat, false};
    } else if (const auto* e = std::get_if<clog2::EventDef>(&rec)) {
      const std::int32_t cat = next_cat++;
      out.categories.push_back(
          Category{cat, CategoryKind::kEvent, e->name, e->color, e->format});
      solo_events[e->event_id] = cat;
    }
  }

  // --- gather instances in chronological order ------------------------------
  struct Instance {
    double t;
    const clog2::EventRec* event = nullptr;
    const clog2::MsgRec* msg = nullptr;
  };
  std::vector<Instance> instances;
  for (const auto& rec : in.records) {
    if (const auto* e = std::get_if<clog2::EventRec>(&rec)) {
      instances.push_back(Instance{e->timestamp, e, nullptr});
    } else if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) {
      instances.push_back(Instance{m->timestamp, nullptr, m});
    }
  }
  std::stable_sort(instances.begin(), instances.end(),
                   [](const Instance& a, const Instance& b) { return a.t < b.t; });

  // --- pair states, collect events, match arrows ----------------------------
  Collected items;
  std::map<std::int32_t, std::vector<OpenState>> open;  // rank -> stack
  double last_time_seen = 0.0;
  bool any_instance = false;

  // (src, dst, tag) -> pending unmatched halves, FIFO per key.
  using MsgKey = std::tuple<std::int32_t, std::int32_t, std::int32_t>;
  std::map<MsgKey, std::deque<const clog2::MsgRec*>> pending_sends;
  std::map<MsgKey, std::deque<const clog2::MsgRec*>> pending_recvs;

  for (const auto& inst : instances) {
    any_instance = true;
    last_time_seen = std::max(last_time_seen, inst.t);
    if (inst.event != nullptr) {
      const auto& e = *inst.event;
      if (auto it = state_events.find(e.event_id); it != state_events.end()) {
        auto& stack = open[e.rank];
        if (it->second.is_start) {
          stack.push_back(OpenState{it->second.category_id, e.timestamp, e.text,
                                    static_cast<std::int32_t>(stack.size())});
        } else if (!stack.empty() &&
                   stack.back().category_id == it->second.category_id) {
          StateDrawable s;
          s.category_id = stack.back().category_id;
          s.rank = e.rank;
          s.start_time = stack.back().start_time;
          s.end_time = e.timestamp;
          s.depth = stack.back().depth;
          s.start_text = stack.back().start_text;
          s.end_text = e.text;
          stack.pop_back();
          items.states.push_back(std::move(s));
        } else {
          ++out.stats.unmatched_state_ends;
          warn(warnings, util::strprintf(
                             "rank %d: end event id %d at t=%.9f has no matching "
                             "open state",
                             e.rank, e.event_id, e.timestamp));
        }
      } else if (auto sit = solo_events.find(e.event_id); sit != solo_events.end()) {
        items.events.push_back(EventDrawable{sit->second, e.rank, e.timestamp, e.text});
      } else {
        ++out.stats.unknown_event_ids;
        warn(warnings, util::strprintf("rank %d: event id %d has no definition",
                                       e.rank, e.event_id));
      }
    } else {
      const auto& m = *inst.msg;
      const bool is_send = m.kind == clog2::MsgRec::Kind::kSend;
      const MsgKey key = is_send ? MsgKey{m.rank, m.partner, m.tag}
                                 : MsgKey{m.partner, m.rank, m.tag};
      auto& opposite = is_send ? pending_recvs[key] : pending_sends[key];
      if (!opposite.empty()) {
        const clog2::MsgRec* other = opposite.front();
        opposite.pop_front();
        const clog2::MsgRec& send = is_send ? m : *other;
        const clog2::MsgRec& recv = is_send ? *other : m;
        ArrowDrawable a;
        a.src_rank = send.rank;
        a.dst_rank = recv.rank;
        a.start_time = send.timestamp;
        a.end_time = recv.timestamp;
        a.tag = send.tag;
        a.size = send.size;
        items.arrows.push_back(a);
      } else {
        (is_send ? pending_sends[key] : pending_recvs[key]).push_back(&m);
      }
    }
  }

  for (const auto& [key, q] : pending_sends) {
    out.stats.unmatched_sends += q.size();
    if (!q.empty())
      warn(warnings, util::strprintf("%zu send(s) from rank %d to rank %d tag %d "
                                     "were never received",
                                     q.size(), std::get<0>(key), std::get<1>(key),
                                     std::get<2>(key)));
  }
  for (const auto& [key, q] : pending_recvs) {
    out.stats.unmatched_recvs += q.size();
    if (!q.empty())
      warn(warnings, util::strprintf("%zu receive(s) at rank %d from rank %d tag %d "
                                     "have no logged send",
                                     q.size(), std::get<1>(key), std::get<0>(key),
                                     std::get<2>(key)));
  }

  // Close dangling states at the last timestamp so they stay visible.
  for (auto& [rank, stack] : open) {
    while (!stack.empty()) {
      ++out.stats.unclosed_states;
      StateDrawable s;
      s.category_id = stack.back().category_id;
      s.rank = rank;
      s.start_time = stack.back().start_time;
      s.end_time = last_time_seen;
      s.depth = stack.back().depth;
      s.start_text = stack.back().start_text;
      warn(warnings,
           util::strprintf("rank %d: state category %d opened at t=%.9f never closed",
                           rank, s.category_id, s.start_time));
      stack.pop_back();
      items.states.push_back(std::move(s));
    }
  }

  // --- "Equal Drawables" detection -------------------------------------------
  {
    std::set<std::tuple<std::int32_t, std::int32_t, double, double>> arrow_seen;
    for (const auto& a : items.arrows)
      if (!arrow_seen.insert({a.src_rank, a.dst_rank, a.start_time, a.end_time}).second) {
        ++out.stats.equal_drawables;
        warn(warnings, util::strprintf(
                           "Equal Drawables: arrows %d->%d share start=%.9f end=%.9f",
                           a.src_rank, a.dst_rank, a.start_time, a.end_time));
      }
    std::set<std::tuple<std::int32_t, std::int32_t, double, double>> state_seen;
    for (const auto& s : items.states)
      if (!state_seen.insert({s.category_id, s.rank, s.start_time, s.end_time}).second) {
        ++out.stats.equal_drawables;
        warn(warnings, util::strprintf(
                           "Equal Drawables: states cat=%d rank=%d share start=%.9f "
                           "end=%.9f",
                           s.category_id, s.rank, s.start_time, s.end_time));
      }
    std::set<std::tuple<std::int32_t, std::int32_t, double>> event_seen;
    for (const auto& e : items.events)
      if (!event_seen.insert({e.category_id, e.rank, e.time}).second) {
        ++out.stats.equal_drawables;
        warn(warnings,
             util::strprintf("Equal Drawables: events cat=%d rank=%d share t=%.9f",
                             e.category_id, e.rank, e.time));
      }
  }

  out.stats.total_states = items.states.size();
  out.stats.total_events = items.events.size();
  out.stats.total_arrows = items.arrows.size();

  // --- time span -------------------------------------------------------------
  if (any_instance) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    auto widen = [&](double s, double e) {
      lo = std::min(lo, s);
      hi = std::max(hi, e);
    };
    for (const auto& s : items.states) widen(s.start_time, s.end_time);
    for (const auto& e : items.events) widen(e.time, e.time);
    for (const auto& a : items.arrows)
      widen(std::min(a.start_time, a.end_time), std::max(a.start_time, a.end_time));
    if (lo <= hi) {
      out.t_min = lo;
      out.t_max = hi;
    }
  }

  // --- frame tree + previews --------------------------------------------------
  out.root = build_frame(std::move(items), out.t_min, out.t_max, 0, opts, out.stats);
  std::vector<Frame*> path;
  fill_previews(*out.root, path, opts.preview_buckets);
  return out;
}

const Category* File::category(std::int32_t id) const {
  for (const auto& c : categories)
    if (c.id == id) return &c;
  return nullptr;
}

void File::visit_window(
    double a, double b, const std::function<void(const StateDrawable&)>& on_state,
    const std::function<void(const EventDrawable&)>& on_event,
    const std::function<void(const ArrowDrawable&)>& on_arrow) const {
  if (!root) return;
  std::function<void(const Frame&)> go = [&](const Frame& f) {
    if (f.t1 < a || f.t0 > b) {
      // Frames never contain drawables outside [t0, t1]... except the root,
      // whose interval equals the global span, so pruning here is safe.
      return;
    }
    if (on_state)
      for (const auto& s : f.states)
        if (s.end_time >= a && s.start_time <= b) on_state(s);
    if (on_event)
      for (const auto& e : f.events)
        if (e.time >= a && e.time <= b) on_event(e);
    if (on_arrow)
      for (const auto& ar : f.arrows) {
        const double lo = std::min(ar.start_time, ar.end_time);
        const double hi = std::max(ar.start_time, ar.end_time);
        if (hi >= a && lo <= b) on_arrow(ar);
      }
    if (f.left) go(*f.left);
    if (f.right) go(*f.right);
  };
  go(*root);
}

void File::visit_frames(const std::function<void(const Frame&)>& fn) const {
  if (!root) return;
  std::function<void(const Frame&)> go = [&](const Frame& f) {
    fn(f);
    if (f.left) go(*f.left);
    if (f.right) go(*f.right);
  };
  go(*root);
}

std::string to_text(const File& file, bool dump_drawables) {
  std::string out;
  out += util::strprintf(
      "SLOG-2  ranks=%d  span=[%.9f, %.9f]  frame_size=%llu\n", file.nranks,
      file.t_min, file.t_max, static_cast<unsigned long long>(file.frame_size));
  out += util::strprintf(
      "  drawables: states=%llu events=%llu arrows=%llu\n",
      static_cast<unsigned long long>(file.stats.total_states),
      static_cast<unsigned long long>(file.stats.total_events),
      static_cast<unsigned long long>(file.stats.total_arrows));
  out += util::strprintf(
      "  frames=%llu leaves=%llu depth=%d\n",
      static_cast<unsigned long long>(file.stats.frames),
      static_cast<unsigned long long>(file.stats.leaf_frames), file.stats.tree_depth);
  out += util::strprintf(
      "  warnings: unmatched_sends=%llu unmatched_recvs=%llu "
      "unmatched_state_ends=%llu unclosed_states=%llu equal_drawables=%llu "
      "unknown_event_ids=%llu\n",
      static_cast<unsigned long long>(file.stats.unmatched_sends),
      static_cast<unsigned long long>(file.stats.unmatched_recvs),
      static_cast<unsigned long long>(file.stats.unmatched_state_ends),
      static_cast<unsigned long long>(file.stats.unclosed_states),
      static_cast<unsigned long long>(file.stats.equal_drawables),
      static_cast<unsigned long long>(file.stats.unknown_event_ids));
  out += "  categories:\n";
  for (const auto& c : file.categories) {
    const char* kind = c.kind == CategoryKind::kState   ? "state"
                       : c.kind == CategoryKind::kEvent ? "event"
                                                        : "arrow";
    out += util::strprintf("    [%d] %-6s %-24s %s\n", c.id, kind, c.name.c_str(),
                           c.color.c_str());
  }
  if (dump_drawables) {
    file.visit_window(
        file.t_min, file.t_max,
        [&](const StateDrawable& s) {
          out += util::strprintf(
              "  state cat=%d rank=%d [%.9f, %.9f] depth=%d \"%s\"\n", s.category_id,
              s.rank, s.start_time, s.end_time, s.depth, s.start_text.c_str());
        },
        [&](const EventDrawable& e) {
          out += util::strprintf("  event cat=%d rank=%d t=%.9f \"%s\"\n",
                                 e.category_id, e.rank, e.time, e.text.c_str());
        },
        [&](const ArrowDrawable& a) {
          out += util::strprintf("  arrow %d->%d [%.9f, %.9f] tag=%d size=%u\n",
                                 a.src_rank, a.dst_rank, a.start_time, a.end_time,
                                 a.tag, a.size);
        });
  }
  return out;
}

}  // namespace slog2

// Internal pieces of the CLOG-2 → SLOG-2 conversion shared by the offline
// converter (convert.cpp) and the streaming OnlineConverter in src/traced/.
// Both producers feed the same commit-ordered drawable lists into the same
// assemble() tail, which is what makes the online finalize() output
// byte-identical to the offline converter on the same records.
//
// Everything here is an implementation detail: the stable surface is
// slog2.hpp. Do not include this header outside src/slog2 and src/traced.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "slog2/slog2.hpp"

namespace slog2::detail {

/// Warning cap shared by every conversion stage (pathological traces must
/// not flood the caller).
inline constexpr std::size_t kMaxWarningMessages = 50;

void warn(std::vector<std::string>* warnings, const std::string& msg);

/// The converter's working set: every drawable of one conversion, per kind,
/// in global commit order (the chronological order of each drawable's
/// closing instance, with never-closed states appended last).
struct Collected {
  std::vector<StateDrawable> states;
  std::vector<EventDrawable> events;
  std::vector<ArrowDrawable> arrows;
};

/// One entry of a rank's open-state stack during pairing.
struct OpenState {
  std::int32_t category_id = 0;
  double start_time = 0.0;
  std::string start_text;
  std::int32_t depth = 0;
};

/// Global chronological position of an instance record: primary key its
/// timestamp, tie-broken by its position in the file/stream. Processing
/// instances in InstKey order is exactly the stable-sort-by-time order the
/// original sequential converter used.
struct InstKey {
  double t = 0.0;
  std::uint64_t idx = 0;
  bool operator<(const InstKey& o) const {
    if (t != o.t) return t < o.t;
    return idx < o.idx;
  }
};

// Event-id → category lookup. Ids are allocated contiguously from 1 by the
// MPE layer, so the hot path is a dense vector indexed by id; files with
// absurd ids (hostile or handcrafted) overflow into a map instead of
// forcing a giant allocation. The streaming converter skips note_id()
// entirely (ids are not known up front), which routes everything through
// the overflow map — same mapping, different speed.
class EventIdIndex {
public:
  struct Entry {
    std::int32_t state_cat = -1;  // category id, -1 = not a state event
    bool is_start = false;
    std::int32_t solo_cat = -1;  // category id, -1 = not a solo event
    [[nodiscard]] bool used() const { return state_cat >= 0 || solo_cat >= 0; }
  };

  void note_id(std::int32_t id) {
    if (id >= 0 && id < kDenseLimit)
      max_dense_ = std::max(max_dense_, static_cast<std::size_t>(id) + 1);
  }
  void finalize() { dense_.resize(max_dense_); }

  Entry& at(std::int32_t id) {
    if (id >= 0 && static_cast<std::size_t>(id) < dense_.size())
      return dense_[static_cast<std::size_t>(id)];
    return overflow_[id];
  }
  [[nodiscard]] const Entry* find(std::int32_t id) const {
    if (id >= 0 && static_cast<std::size_t>(id) < dense_.size()) {
      const Entry& e = dense_[static_cast<std::size_t>(id)];
      return e.used() ? &e : nullptr;
    }
    const auto it = overflow_.find(id);
    return it == overflow_.end() ? nullptr : &it->second;
  }

private:
  static constexpr std::int32_t kDenseLimit = 1 << 20;
  std::size_t max_dense_ = 0;
  std::vector<Entry> dense_;
  std::map<std::int32_t, Entry> overflow_;
};

/// Payload accounting shared with Frame::payload_bytes().
std::size_t state_bytes(const StateDrawable& s);
std::size_t event_bytes(const EventDrawable& e);
inline constexpr std::size_t kArrowBytes =
    2 * sizeof(double) + 3 * sizeof(std::int32_t) + 4;

/// Recursive bounded-frame builder: drawables that fit entirely inside a
/// child half-interval sink down until the payload fits the frame-size
/// bound.
std::unique_ptr<Frame> build_frame(Collected items, double a, double b, int depth,
                                   const ConvertOptions& opts, ConvertStats& stats);

/// The conversion tail shared by convert() and OnlineConverter::finalize():
/// Equal-Drawables detection, drawable totals, the global time span, and
/// the frame tree with its previews. `items` must already be in global
/// commit order per kind (see Collected); `out` must already carry nranks,
/// frame_size, the category table, and the pairing-stage stats
/// (unmatched/unclosed/unknown counters).
void assemble(File& out, Collected items, bool any_instance,
              const ConvertOptions& opts, int nthreads,
              std::vector<std::string>* warnings);

}  // namespace slog2::detail

#include "slog2/frame_cache.hpp"

#include <atomic>
#include <map>
#include <string>
#include <system_error>

namespace slog2 {

std::shared_ptr<const Frame> FrameCache::get(
    Owner owner, std::uint64_t index, std::size_t weight,
    const std::function<std::shared_ptr<const Frame>()>& decode) {
  const Key key{owner, index};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->frame;
    }
    ++misses_;
  }
  std::shared_ptr<const Frame> frame = decode();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Another session decoded the same frame while we did; keep the
      // canonical copy so all holders share one allocation.
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->frame;
    }
    lru_.push_front(Entry{key, frame, weight});
    index_[key] = lru_.begin();
    bytes_ += weight;
    evict_locked();
  }
  return frame;
}

void FrameCache::evict_locked() {
  // Evict from the cold end; never the entry just inserted (a single frame
  // larger than the whole capacity still has to be usable).
  while (bytes_ > capacity_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.weight;
    ++evictions_;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

void FrameCache::erase_owner(Owner owner) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.owner == owner) {
      bytes_ -= it->weight;
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void FrameCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

FrameCache::Stats FrameCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.bytes = bytes_;
  s.entries = lru_.size();
  return s;
}

void FrameCache::set_capacity(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = bytes;
  evict_locked();
}

std::size_t FrameCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

FrameCache& FrameCache::global() {
  static FrameCache cache;
  return cache;
}

FrameCache::Owner FrameCache::fresh_owner() {
  static std::atomic<Owner> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

FrameCache::Owner FrameCache::owner_for_path(const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::path canon = std::filesystem::weakly_canonical(path, ec);
  if (ec) canon = path;
  std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) size = 0;
  long long mtime = 0;
  const auto t = std::filesystem::last_write_time(path, ec);
  if (!ec) mtime = static_cast<long long>(t.time_since_epoch().count());
  const std::string key = canon.string() + '|' + std::to_string(size) + '|' +
                          std::to_string(mtime);
  // A registry (not a hash) so two files can never collide into one owner.
  static std::mutex reg_mu;
  static std::map<std::string, Owner>* registry = new std::map<std::string, Owner>();
  std::lock_guard<std::mutex> lock(reg_mu);
  auto [it, inserted] = registry->try_emplace(key, 0);
  if (inserted) it->second = fresh_owner();
  return it->second;
}

}  // namespace slog2

// One process-wide decode cache for SLOG-2 frames.
//
// Every consumer that lazily decodes frame payloads — the jumpshot
// Navigator, the parallel query sweeps, and all concurrent pilot-traced
// sessions — shares this one sized, thread-safe LRU instead of each keeping
// a private unbounded (or tiny per-session) cache. Concurrent live queries
// over the same hot window therefore decode each frame once, and total
// decoded-frame memory is bounded by the cache capacity no matter how many
// navigators are alive.
//
// Entries are shared_ptr<const Frame>: eviction never invalidates a frame a
// query is still iterating, it only drops the cache's own reference.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "slog2/slog2.hpp"

namespace slog2 {

class FrameCache {
public:
  /// Default capacity: enough for the hot window of several concurrent
  /// sessions at the 10^6-event scale without approaching full-trace RSS.
  static constexpr std::size_t kDefaultCapacity = 256 * 1024 * 1024;

  /// Namespace tag separating frames of distinct files / byte buffers.
  using Owner = std::uint64_t;

  explicit FrameCache(std::size_t capacity_bytes = kDefaultCapacity)
      : capacity_(capacity_bytes) {}

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };

  /// Return the cached frame for (owner, index), decoding it via `decode`
  /// on a miss. `decode` runs outside the cache lock (slow decodes never
  /// serialize other sessions); on a lost insert race the winner's frame is
  /// returned and the duplicate dropped. `weight` is the charged size in
  /// bytes (callers pass the encoded payload length).
  std::shared_ptr<const Frame> get(
      Owner owner, std::uint64_t index, std::size_t weight,
      const std::function<std::shared_ptr<const Frame>()>& decode);

  /// Drop every entry belonging to `owner` (a destroyed in-memory
  /// navigator's frames can never be requested again).
  void erase_owner(Owner owner);

  /// Drop everything (tests).
  void clear();

  [[nodiscard]] Stats stats() const;
  void set_capacity(std::size_t bytes);
  [[nodiscard]] std::size_t capacity() const;

  /// The process-wide shared instance.
  static FrameCache& global();

  /// A fresh private owner id (in-memory navigators, online converters).
  static Owner fresh_owner();

  /// Stable owner id for an on-disk file, keyed by canonical path + size +
  /// mtime: concurrent sessions over the same file share decoded frames,
  /// and a rewritten file gets a new id instead of stale frames.
  static Owner owner_for_path(const std::filesystem::path& path);

private:
  struct Key {
    Owner owner;
    std::uint64_t index;
    bool operator==(const Key& o) const {
      return owner == o.owner && index == o.index;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix-style scramble; owner and index are both small integers.
      std::uint64_t x = k.owner * 0x9E3779B97F4A7C15ULL + k.index;
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x * 0x94D049BB133111EBULL);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const Frame> frame;
    std::size_t weight = 0;
  };

  void evict_locked();

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
};

}  // namespace slog2

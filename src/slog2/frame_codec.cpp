#include "slog2/frame_codec.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>

#include "util/error.hpp"
#include "util/varint.hpp"

namespace slog2::detail {

namespace {

// Cheapest possible per-element sizes, used to bound the untrusted counts
// before reserving: every column contributes at least one byte per element.
constexpr std::size_t kMinStateBytes = 7;  // cat rank depth start end slen elen
constexpr std::size_t kMinEventBytes = 4;  // cat rank time tlen
constexpr std::size_t kMinArrowBytes = 6;  // src dst tag size start end

// --- time columns -----------------------------------------------------------
// Trace timestamps overwhelmingly sit on a clock grid: every finite value in
// a column is k * 2^e for one column-wide tick exponent e and a per-value
// integer k, because timers tick at a fixed resolution. The column codec
// sniffs that grid and stores integer tick deltas (kTimeGrid) — one or two
// bytes per timestamp on dense traces instead of the ~six a raw mantissa
// delta costs. Columns that are not grid-exact (NaN, infinities, negative
// zero, or full-entropy mantissas whose tick integers would overflow int64)
// fall back to the lossless bit-pattern delta chain (kTimeRaw). The mode and
// the exponent are pure functions of the column values — e is the smallest
// set-bit exponent across the column — so decode followed by re-encode is
// byte-identical.
constexpr std::uint8_t kTimeRaw = 0;
constexpr std::uint8_t kTimeGrid = 1;

constexpr std::uint64_t kFracMask = (std::uint64_t{1} << 52) - 1;

/// Exponent of the lowest set bit of `t` (i.e. the largest e with t an odd
/// multiple of 2^e), or no value when `t` cannot live on any binary grid
/// (non-finite, or -0.0 which would decode as +0.0). Exact zero reports no
/// constraint: it sits on every grid.
std::optional<int> grid_exponent(double t) {
  const auto bits = std::bit_cast<std::uint64_t>(t);
  const auto raw_exp = static_cast<int>((bits >> 52) & 0x7FF);
  const std::uint64_t frac = bits & kFracMask;
  if (raw_exp == 0x7FF) return std::nullopt;  // inf / NaN
  if ((bits << 1) == 0) {
    if (bits != 0) return std::nullopt;  // -0.0 is not k * 2^e for integer k
    return std::numeric_limits<int>::max();
  }
  const std::uint64_t mant = raw_exp == 0 ? frac : frac | (std::uint64_t{1} << 52);
  const int base = (raw_exp == 0 ? 1 : raw_exp) - 1075;
  return base + std::countr_zero(mant);
}

template <typename GetTime>
void encode_time_column(util::ByteWriter& w, std::size_t n, GetTime get) {
  if (n == 0) return;
  bool grid = true;
  int e = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < n && grid; ++i) {
    const std::optional<int> ge = grid_exponent(get(i));
    if (!ge) grid = false;
    else if (*ge < e) e = *ge;
  }
  if (e == std::numeric_limits<int>::max()) e = 0;  // all-zero column
  // Every tick integer must fit int64 exactly; a column mixing tiny ticks
  // with large magnitudes cannot, and takes the raw chain instead.
  for (std::size_t i = 0; i < n && grid; ++i) {
    if (!(std::abs(std::ldexp(get(i), -e)) < 9223372036854775808.0))
      grid = false;
  }
  if (grid) {
    w.u8(kTimeGrid);
    util::put_svarint(w, e);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto k = static_cast<std::uint64_t>(
          std::llrint(std::ldexp(get(i), -e)));
      util::put_svarint(w, static_cast<std::int64_t>(k - prev));
      prev = k;
    }
  } else {
    w.u8(kTimeRaw);
    util::F64DeltaEncoder enc;
    for (std::size_t i = 0; i < n; ++i) enc.put(w, get(i));
  }
}

template <typename SetTime>
void decode_time_column(util::ByteReader& r, std::size_t n, SetTime set) {
  if (n == 0) return;
  const std::uint8_t mode = r.u8();
  if (mode == kTimeGrid) {
    const int e = util::get_svarint32(r);
    std::uint64_t k = 0;
    util::get_svarint_batch(r, n, [&](std::size_t i, std::int64_t d) {
      k += static_cast<std::uint64_t>(d);
      set(i, std::ldexp(static_cast<double>(static_cast<std::int64_t>(k)), e));
    });
  } else if (mode == kTimeRaw) {
    std::uint64_t prev = 0;
    util::get_varint_batch(r, n, [&](std::size_t i, std::uint64_t raw) {
      prev += util::unzigzag(raw);
      double v;
      std::memcpy(&v, &prev, sizeof v);
      set(i, v);
    });
  } else {
    throw util::IoError(
        "slog2: v2 frame time column carries unknown mode byte");
  }
}

/// Read a column of `n` text lengths, then hand out the concatenated bytes
/// one string at a time. Lengths are validated against the remaining input
/// as they are consumed (take() throws on overrun), so a hostile length
/// column cannot force a giant allocation.
std::vector<std::uint32_t> read_lengths(util::ByteReader& r, std::size_t n) {
  std::vector<std::uint32_t> lens(n);
  util::get_varint32_batch(
      r, n, [&](std::size_t i, std::uint32_t v) { lens[i] = v; });
  return lens;
}

std::string read_text(util::ByteReader& r, std::uint32_t len) {
  const std::uint8_t* p = r.take(len);
  return std::string(reinterpret_cast<const char*>(p), len);
}

}  // namespace

void encode_drawables_v2(util::ByteWriter& w,
                         const std::vector<StateDrawable>& states,
                         const std::vector<EventDrawable>& events,
                         const std::vector<ArrowDrawable>& arrows) {
  util::put_varint(w, states.size());
  util::put_varint(w, events.size());
  util::put_varint(w, arrows.size());

  // States: one column per field. The delta chains restart per column (and
  // per payload), so every payload decodes independently.
  for (const auto& s : states) util::put_svarint(w, s.category_id);
  for (const auto& s : states) util::put_svarint(w, s.rank);
  for (const auto& s : states) util::put_svarint(w, s.depth);
  encode_time_column(w, states.size(),
                     [&](std::size_t i) { return states[i].start_time; });
  encode_time_column(w, states.size(),
                     [&](std::size_t i) { return states[i].end_time; });
  for (const auto& s : states) util::put_varint(w, s.start_text.size());
  for (const auto& s : states) util::put_varint(w, s.end_text.size());
  for (const auto& s : states) w.raw(s.start_text.data(), s.start_text.size());
  for (const auto& s : states) w.raw(s.end_text.data(), s.end_text.size());

  // Events.
  for (const auto& e : events) util::put_svarint(w, e.category_id);
  for (const auto& e : events) util::put_svarint(w, e.rank);
  encode_time_column(w, events.size(),
                     [&](std::size_t i) { return events[i].time; });
  for (const auto& e : events) util::put_varint(w, e.text.size());
  for (const auto& e : events) w.raw(e.text.data(), e.text.size());

  // Arrows.
  for (const auto& a : arrows) util::put_svarint(w, a.src_rank);
  for (const auto& a : arrows) util::put_svarint(w, a.dst_rank);
  for (const auto& a : arrows) util::put_svarint(w, a.tag);
  for (const auto& a : arrows) util::put_varint(w, a.size);
  encode_time_column(w, arrows.size(),
                     [&](std::size_t i) { return arrows[i].start_time; });
  encode_time_column(w, arrows.size(),
                     [&](std::size_t i) { return arrows[i].end_time; });
}

void decode_drawables_v2(util::ByteReader& r,
                         std::vector<StateDrawable>* states,
                         std::vector<EventDrawable>* events,
                         std::vector<ArrowDrawable>* arrows) {
  const std::size_t ns = r.checked_count(util::get_varint(r), kMinStateBytes);
  const std::size_t ne = r.checked_count(util::get_varint(r), kMinEventBytes);
  const std::size_t na = r.checked_count(util::get_varint(r), kMinArrowBytes);

  // Each column decodes in one tight batched loop over the raw cursor
  // (bounds-checked per column, not per value) straight into the rows.
  const std::size_t s0 = states->size();
  states->resize(s0 + ns);
  StateDrawable* const sp = states->data() + s0;
  util::get_svarint32_batch(
      r, ns, [sp](std::size_t i, std::int32_t v) { sp[i].category_id = v; });
  util::get_svarint32_batch(
      r, ns, [sp](std::size_t i, std::int32_t v) { sp[i].rank = v; });
  util::get_svarint32_batch(
      r, ns, [sp](std::size_t i, std::int32_t v) { sp[i].depth = v; });
  decode_time_column(r, ns,
                     [sp](std::size_t i, double t) { sp[i].start_time = t; });
  decode_time_column(r, ns,
                     [sp](std::size_t i, double t) { sp[i].end_time = t; });
  const std::vector<std::uint32_t> slens = read_lengths(r, ns);
  const std::vector<std::uint32_t> elens = read_lengths(r, ns);
  for (std::size_t i = 0; i < ns; ++i) sp[i].start_text = read_text(r, slens[i]);
  for (std::size_t i = 0; i < ns; ++i) sp[i].end_text = read_text(r, elens[i]);

  const std::size_t e0 = events->size();
  events->resize(e0 + ne);
  EventDrawable* const ep = events->data() + e0;
  util::get_svarint32_batch(
      r, ne, [ep](std::size_t i, std::int32_t v) { ep[i].category_id = v; });
  util::get_svarint32_batch(
      r, ne, [ep](std::size_t i, std::int32_t v) { ep[i].rank = v; });
  decode_time_column(r, ne, [ep](std::size_t i, double t) { ep[i].time = t; });
  const std::vector<std::uint32_t> tlens = read_lengths(r, ne);
  for (std::size_t i = 0; i < ne; ++i) ep[i].text = read_text(r, tlens[i]);

  const std::size_t a0 = arrows->size();
  arrows->resize(a0 + na);
  ArrowDrawable* const ap = arrows->data() + a0;
  util::get_svarint32_batch(
      r, na, [ap](std::size_t i, std::int32_t v) { ap[i].src_rank = v; });
  util::get_svarint32_batch(
      r, na, [ap](std::size_t i, std::int32_t v) { ap[i].dst_rank = v; });
  util::get_svarint32_batch(
      r, na, [ap](std::size_t i, std::int32_t v) { ap[i].tag = v; });
  util::get_varint32_batch(
      r, na, [ap](std::size_t i, std::uint32_t v) { ap[i].size = v; });
  decode_time_column(r, na,
                     [ap](std::size_t i, double t) { ap[i].start_time = t; });
  decode_time_column(r, na,
                     [ap](std::size_t i, double t) { ap[i].end_time = t; });
}

}  // namespace slog2::detail

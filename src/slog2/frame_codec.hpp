// The v2 (columnar delta-varint) drawable codec shared by the SLOG-2
// serializer (frame payloads) and the traced OnlineConverter (sealed
// chunks). Layout, varint rules, and the loud-failure contract are
// documented in docs/FORMATS.md ("v2 frame payloads").
//
// Internal like the rest of slog2::detail: the stable surface is slog2.hpp
// (ConvertOptions::encoding / ReadOptions). Do not include this header
// outside src/slog2 and src/traced.
#pragma once

#include <vector>

#include "slog2/slog2.hpp"
#include "util/bytebuf.hpp"

namespace slog2::detail {

/// Append the v2 encoding of the three drawable lists to `w`:
/// varint counts, then per-kind columns (small ints as zigzag varints,
/// times as per-column f64 bit-deltas, texts as a length column plus the
/// concatenated bytes).
void encode_drawables_v2(util::ByteWriter& w,
                         const std::vector<StateDrawable>& states,
                         const std::vector<EventDrawable>& events,
                         const std::vector<ArrowDrawable>& arrows);

/// Decode one v2 payload, appending to the output vectors. Strict: hostile
/// counts, overlong or >64-bit varints, out-of-range 32-bit fields, and
/// truncation all throw util::IoError. Consumes exactly the payload (the
/// caller checks at_end() where trailing bytes are illegal).
void decode_drawables_v2(util::ByteReader& r,
                         std::vector<StateDrawable>* states,
                         std::vector<EventDrawable>* events,
                         std::vector<ArrowDrawable>* arrows);

}  // namespace slog2::detail

// SLOG-2 binary serialization: header, category table, stats, frame
// directory (intervals, tree links, payload extents, previews), then a blob
// of independently decodable frame payloads. The directory enables the
// Navigator's partial loading.
//
// Two file versions share that skeleton byte for byte; only the version
// field and the payload bytes differ:
//   version 3 — v1 payloads (fixed-width rows, the original format),
//   version 4 — one frame-encoding byte (must be 2) follows the version,
//               and payloads use the columnar delta-varint v2 codec
//               (frame_codec.hpp, documented in docs/FORMATS.md).
// A v1-only reader sees version 4 and fails loudly ("unsupported version");
// this reader accepts both unless ReadOptions::require_encoding pins one.
#include <array>
#include <fstream>

#include "slog2/frame_cache.hpp"
#include "slog2/frame_codec.hpp"
#include "slog2/slog2.hpp"
#include "util/fs.hpp"
#include "util/mmapio.hpp"
#include "util/parallel.hpp"
#include "util/streamio.hpp"
#include "util/strings.hpp"

namespace slog2 {

namespace {

constexpr std::array<char, 8> kMagic = {'P', 'S', 'L', 'O', 'G', '2', '\0', '\0'};
constexpr std::uint32_t kVersionV1 = 3;
constexpr std::uint32_t kVersionV2 = 4;

void write_preview(util::ByteWriter& w, const Preview& pv) {
  w.i32(pv.nbuckets);
  w.u32(pv.arrow_count);
  w.u32(static_cast<std::uint32_t>(pv.state_occupancy.size()));
  for (const auto& [cat, buckets] : pv.state_occupancy) {
    w.i32(cat);
    w.u32(static_cast<std::uint32_t>(buckets.size()));
    for (float v : buckets) w.f64(static_cast<double>(v));
  }
  w.u32(static_cast<std::uint32_t>(pv.event_counts.size()));
  for (const auto& [cat, buckets] : pv.event_counts) {
    w.i32(cat);
    w.u32(static_cast<std::uint32_t>(buckets.size()));
    for (std::uint32_t v : buckets) w.u32(v);
  }
}

template <typename Reader>
Preview read_preview(Reader& r) {
  Preview pv;
  pv.nbuckets = r.i32();
  pv.arrow_count = r.u32();
  // Bucket/entry counts are untrusted: bound them by the remaining bytes
  // (smallest per-entry encoding) so corruption is IoError, not bad_alloc.
  const std::uint32_t nstate =
      static_cast<std::uint32_t>(r.checked_count(r.u32(), 8));
  for (std::uint32_t i = 0; i < nstate; ++i) {
    const std::int32_t cat = r.i32();
    const std::size_t n = r.checked_count(r.u32(), 8);
    auto& buckets = pv.state_occupancy[cat];
    buckets.reserve(n);
    for (std::size_t j = 0; j < n; ++j)
      buckets.push_back(static_cast<float>(r.f64()));
  }
  const std::uint32_t nevent =
      static_cast<std::uint32_t>(r.checked_count(r.u32(), 8));
  for (std::uint32_t i = 0; i < nevent; ++i) {
    const std::int32_t cat = r.i32();
    const std::size_t n = r.checked_count(r.u32(), 4);
    auto& buckets = pv.event_counts[cat];
    buckets.reserve(n);
    for (std::size_t j = 0; j < n; ++j) buckets.push_back(r.u32());
  }
  return pv;
}

// A frame payload: the drawables only (interval/depth/preview/links live in
// the directory), independently decodable.
void write_payload_v1(util::ByteWriter& w, const Frame& f) {
  w.u32(static_cast<std::uint32_t>(f.states.size()));
  for (const auto& s : f.states) {
    w.i32(s.category_id);
    w.i32(s.rank);
    w.f64(s.start_time);
    w.f64(s.end_time);
    w.i32(s.depth);
    w.str(s.start_text);
    w.str(s.end_text);
  }
  w.u32(static_cast<std::uint32_t>(f.events.size()));
  for (const auto& e : f.events) {
    w.i32(e.category_id);
    w.i32(e.rank);
    w.f64(e.time);
    w.str(e.text);
  }
  w.u32(static_cast<std::uint32_t>(f.arrows.size()));
  for (const auto& a : f.arrows) {
    w.i32(a.src_rank);
    w.i32(a.dst_rank);
    w.f64(a.start_time);
    w.f64(a.end_time);
    w.i32(a.tag);
    w.u32(a.size);
  }
}

void write_payload(util::ByteWriter& w, const Frame& f, FrameEncoding enc) {
  if (enc == FrameEncoding::kV2)
    detail::encode_drawables_v2(w, f.states, f.events, f.arrows);
  else
    write_payload_v1(w, f);
}

template <typename Reader>
void read_payload_v1(Reader& r, Frame* f) {
  // Drawable counts are untrusted; bound each by the remaining bytes at the
  // smallest conceivable per-entry size before reserving.
  const std::size_t nstates = r.checked_count(r.u32(), 4);
  f->states.reserve(nstates);
  for (std::size_t i = 0; i < nstates; ++i) {
    StateDrawable s;
    s.category_id = r.i32();
    s.rank = r.i32();
    s.start_time = r.f64();
    s.end_time = r.f64();
    s.depth = r.i32();
    s.start_text = r.str();
    s.end_text = r.str();
    f->states.push_back(std::move(s));
  }
  const std::size_t nevents = r.checked_count(r.u32(), 4);
  f->events.reserve(nevents);
  for (std::size_t i = 0; i < nevents; ++i) {
    EventDrawable e;
    e.category_id = r.i32();
    e.rank = r.i32();
    e.time = r.f64();
    e.text = r.str();
    f->events.push_back(std::move(e));
  }
  const std::size_t narrows = r.checked_count(r.u32(), 4);
  f->arrows.reserve(narrows);
  for (std::size_t i = 0; i < narrows; ++i) {
    ArrowDrawable a;
    a.src_rank = r.i32();
    a.dst_rank = r.i32();
    a.start_time = r.f64();
    a.end_time = r.f64();
    a.tag = r.i32();
    a.size = r.u32();
    f->arrows.push_back(a);
  }
}

// Payloads are always decoded from contiguous bytes (parse()'s blob, the
// Navigator's mapped buffer, stream_text's per-frame read), so the dispatch
// takes a ByteReader, not the Reader template the header paths use.
void read_payload(util::ByteReader& r, Frame* f, FrameEncoding enc) {
  if (enc == FrameEncoding::kV2)
    detail::decode_drawables_v2(r, &f->states, &f->events, &f->arrows);
  else
    read_payload_v1(r, f);
}

void write_stats(util::ByteWriter& w, const ConvertStats& st) {
  w.u64(st.total_states);
  w.u64(st.total_events);
  w.u64(st.total_arrows);
  w.u64(st.unmatched_sends);
  w.u64(st.unmatched_recvs);
  w.u64(st.unmatched_state_ends);
  w.u64(st.unclosed_states);
  w.u64(st.equal_drawables);
  w.u64(st.unknown_event_ids);
  w.u64(st.frames);
  w.u64(st.leaf_frames);
  w.i32(st.tree_depth);
}

template <typename Reader>
ConvertStats read_stats(Reader& r) {
  ConvertStats st;
  st.total_states = r.u64();
  st.total_events = r.u64();
  st.total_arrows = r.u64();
  st.unmatched_sends = r.u64();
  st.unmatched_recvs = r.u64();
  st.unmatched_state_ends = r.u64();
  st.unclosed_states = r.u64();
  st.equal_drawables = r.u64();
  st.unknown_event_ids = r.u64();
  st.frames = r.u64();
  st.leaf_frames = r.u64();
  st.tree_depth = r.i32();
  return st;
}

struct FlatNode {
  const Frame* frame;
  std::int32_t left = -1;
  std::int32_t right = -1;
};

// Preorder flattening with child indices.
std::int32_t flatten(const Frame& f, std::vector<FlatNode>& out) {
  const auto index = static_cast<std::int32_t>(out.size());
  out.push_back(FlatNode{&f});
  if (f.left) out[static_cast<std::size_t>(index)].left = flatten(*f.left, out);
  if (f.right) out[static_cast<std::size_t>(index)].right = flatten(*f.right, out);
  return index;
}

void write_header(util::ByteWriter& w, const File& file) {
  w.raw(kMagic.data(), kMagic.size());
  if (file.encoding == FrameEncoding::kV2) {
    w.u32(kVersionV2);
    w.u8(static_cast<std::uint8_t>(FrameEncoding::kV2));
  } else {
    // v1 files stay byte-identical to what version 3 always wrote.
    w.u32(kVersionV1);
  }
  w.i32(file.nranks);
  w.f64(file.t_min);
  w.f64(file.t_max);
  w.u64(file.frame_size);
  w.u32(static_cast<std::uint32_t>(file.categories.size()));
  for (const auto& c : file.categories) {
    w.i32(c.id);
    w.u8(static_cast<std::uint8_t>(c.kind));
    w.str(c.name);
    w.str(c.color);
    w.str(c.format);
  }
  write_stats(w, file.stats);
}

struct Header {
  FrameEncoding encoding = FrameEncoding::kV1;
  std::int32_t nranks = 0;
  double t_min = 0.0, t_max = 0.0;
  std::uint64_t frame_size = 0;
  std::vector<Category> categories;
  ConvertStats stats;
};

template <typename Reader>
Header read_header(Reader& r, const ReadOptions& ro) {
  const std::uint8_t* magic = r.take(kMagic.size());
  for (std::size_t i = 0; i < kMagic.size(); ++i)
    if (magic[i] != static_cast<std::uint8_t>(kMagic[i]))
      throw util::IoError("slog2: bad magic (not an SLOG-2 file)");
  const std::uint32_t version = r.u32();
  Header h;
  if (version == kVersionV1) {
    h.encoding = FrameEncoding::kV1;
  } else if (version == kVersionV2) {
    const std::uint8_t enc = r.u8();
    if (enc != static_cast<std::uint8_t>(FrameEncoding::kV2))
      throw util::IoError(util::strprintf(
          "slog2: version 4 header carries unknown frame encoding %u", enc));
    h.encoding = FrameEncoding::kV2;
  } else {
    throw util::IoError(util::strprintf("slog2: unsupported version %u", version));
  }
  if (ro.require_encoding && *ro.require_encoding != h.encoding)
    throw util::IoError(util::strprintf(
        "slog2: frame-encoding mismatch: file uses %s frame payloads but the "
        "reader was forced to %s",
        to_string(h.encoding), to_string(*ro.require_encoding)));
  h.nranks = r.i32();
  h.t_min = r.f64();
  h.t_max = r.f64();
  h.frame_size = r.u64();
  // A category is at least id + kind + three length prefixes = 17 bytes, so
  // a hostile count fails as a parse error before the reserve below.
  const std::uint32_t ncats =
      static_cast<std::uint32_t>(r.checked_count(r.u32(), 17));
  h.categories.reserve(ncats);
  for (std::uint32_t i = 0; i < ncats; ++i) {
    Category c;
    c.id = r.i32();
    const std::uint8_t kind = r.u8();
    if (kind > 2) throw util::IoError("slog2: bad category kind");
    c.kind = static_cast<CategoryKind>(kind);
    c.name = r.str();
    c.color = r.str();
    c.format = r.str();
    h.categories.push_back(std::move(c));
  }
  h.stats = read_stats(r);
  return h;
}

}  // namespace

const char* to_string(FrameEncoding e) {
  return e == FrameEncoding::kV2 ? "v2" : "v1";
}

FrameEncoding parse_frame_encoding(std::string_view name) {
  if (name == "v1") return FrameEncoding::kV1;
  if (name == "v2") return FrameEncoding::kV2;
  throw util::UsageError("unknown frame encoding '" + std::string(name) +
                         "' (expected v1 or v2)");
}

std::vector<std::uint8_t> serialize(const File& file) {
  util::ByteWriter w;
  write_header(w, file);

  if (!file.root) {
    w.u32(0);  // empty directory
    w.u64(0);  // empty blob
    return w.take();
  }

  std::vector<FlatNode> nodes;
  flatten(*file.root, nodes);

  // Payload blob first (to know extents), directory second — but the
  // directory precedes the blob on disk, so build both, then emit.
  util::ByteWriter blob;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
  extents.reserve(nodes.size());
  for (const FlatNode& n : nodes) {
    const std::uint64_t begin = blob.size();
    write_payload(blob, *n.frame, file.encoding);
    extents.emplace_back(begin, blob.size() - begin);
  }

  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Frame& f = *nodes[i].frame;
    w.f64(f.t0);
    w.f64(f.t1);
    w.i32(f.depth);
    w.i32(nodes[i].left);
    w.i32(nodes[i].right);
    w.u64(extents[i].first);
    w.u64(extents[i].second);
    write_preview(w, f.preview);
  }
  w.u64(blob.size());
  w.raw(blob.bytes().data(), blob.size());
  return w.take();
}

File parse(const std::vector<std::uint8_t>& bytes, const ReadOptions& ro) {
  return parse(bytes.data(), bytes.size(), ro);
}

File parse(const std::uint8_t* data, std::size_t n, const ReadOptions& ro) {
  util::ByteReader r(data, n);
  const Header h = read_header(r, ro);

  File file;
  file.encoding = h.encoding;
  file.nranks = h.nranks;
  file.t_min = h.t_min;
  file.t_max = h.t_max;
  file.frame_size = h.frame_size;
  file.categories = h.categories;
  file.stats = h.stats;

  // A directory entry is at least 44 bytes of fixed fields plus a minimal
  // preview; checking the count keeps the two reserves below honest.
  const std::uint32_t node_count =
      static_cast<std::uint32_t>(r.checked_count(r.u32(), 44));
  struct NodeMeta {
    double t0, t1;
    std::int32_t depth, left, right;
    std::uint64_t offset, length;
    Preview preview;
  };
  std::vector<NodeMeta> metas;
  metas.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    NodeMeta m{};
    m.t0 = r.f64();
    m.t1 = r.f64();
    m.depth = r.i32();
    m.left = r.i32();
    m.right = r.i32();
    if ((m.left != -1 && (m.left <= static_cast<std::int32_t>(i) ||
                          m.left >= static_cast<std::int32_t>(node_count))) ||
        (m.right != -1 && (m.right <= static_cast<std::int32_t>(i) ||
                           m.right >= static_cast<std::int32_t>(node_count))))
      throw util::IoError("slog2: corrupt frame directory links");
    m.offset = r.u64();
    m.length = r.u64();
    m.preview = read_preview(r);
    metas.push_back(std::move(m));
  }
  const std::uint64_t blob_len = r.u64();
  const std::uint8_t* blob = r.take(blob_len);
  if (!r.at_end()) throw util::IoError("slog2: trailing bytes after payload blob");

  // Rebuild the tree from the preorder directory.
  std::vector<std::unique_ptr<Frame>> frames;
  frames.reserve(node_count);
  for (const NodeMeta& m : metas) {
    auto f = std::make_unique<Frame>();
    f->t0 = m.t0;
    f->t1 = m.t1;
    f->depth = m.depth;
    f->preview = m.preview;
    // Two comparisons, not `offset + length > blob_len`: hostile u64s can
    // wrap the sum back under the limit.
    if (m.length > blob_len || m.offset > blob_len - m.length)
      throw util::IoError("slog2: frame payload extent out of range");
    util::ByteReader pr(blob + m.offset, m.length);
    read_payload(pr, f.get(), h.encoding);
    if (!pr.at_end()) throw util::IoError("slog2: frame payload has trailing bytes");
    frames.push_back(std::move(f));
  }
  // Link children (indices always point forward; validated above).
  for (std::size_t i = node_count; i-- > 0;) {
    const NodeMeta& m = metas[i];
    if (m.left != -1) frames[i]->left = std::move(frames[static_cast<std::size_t>(m.left)]);
    if (m.right != -1)
      frames[i]->right = std::move(frames[static_cast<std::size_t>(m.right)]);
  }
  if (node_count > 0) file.root = std::move(frames[0]);
  return file;
}

void write_file(const std::filesystem::path& path, const File& file) {
  util::write_file(path, serialize(file));
}

File read_file(const std::filesystem::path& path, const ReadOptions& ro) {
  // mmap: the header/directory/payload slices below read straight from the
  // page cache; only the decoded drawables are materialized.
  const util::MappedFile map(path);
  return parse(map.data(), map.size(), ro);
}

// --- Navigator ---------------------------------------------------------------

Navigator::Navigator(const std::filesystem::path& path, const ReadOptions& ro)
    : map_(path) {
  load(map_.data(), map_.size(), ro);
  // File-identity owner: every navigator (and pilot-traced session) over
  // the same on-disk bytes shares one decode of each frame.
  owner_ = FrameCache::owner_for_path(path);
}

Navigator::Navigator(std::vector<std::uint8_t> bytes, const ReadOptions& ro)
    : bytes_(std::move(bytes)) {
  load(bytes_.data(), bytes_.size(), ro);
  owner_ = FrameCache::fresh_owner();
  private_owner_ = true;
}

Navigator::~Navigator() {
  // A private (in-memory) owner's frames can never be requested again;
  // file-keyed frames stay for the next session over the same file.
  if (cache_ != nullptr && private_owner_) cache_->erase_owner(owner_);
}

void Navigator::load(const std::uint8_t* data, std::size_t n, const ReadOptions& ro) {
  data_ = data;
  size_ = n;
  cache_ = &FrameCache::global();
  util::ByteReader r(data_, size_);
  const Header h = read_header(r, ro);
  encoding_ = h.encoding;
  nranks_ = h.nranks;
  t_min_ = h.t_min;
  t_max_ = h.t_max;
  frame_size_ = h.frame_size;
  categories_ = h.categories;
  stats_ = h.stats;

  const std::uint32_t node_count =
      static_cast<std::uint32_t>(r.checked_count(r.u32(), 44));
  directory_.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    DirEntry e;
    e.t0 = r.f64();
    e.t1 = r.f64();
    e.depth = r.i32();
    e.left = r.i32();
    e.right = r.i32();
    e.offset = r.u64();
    e.length = r.u64();
    e.preview = read_preview(r);
    directory_.push_back(std::move(e));
  }
  const std::uint64_t blob_len = r.u64();
  blob_base_ = r.pos();
  r.skip(blob_len);
  if (!r.at_end()) throw util::IoError("slog2: trailing bytes after payload blob");
  for (const auto& e : directory_)
    if (e.length > blob_len || e.offset > blob_len - e.length)
      throw util::IoError("slog2: frame payload extent out of range");
  touched_ = std::make_unique<std::atomic<char>[]>(directory_.size());
  for (std::size_t i = 0; i < directory_.size(); ++i) touched_[i] = 0;
}

const Category* Navigator::category(std::int32_t id) const {
  for (const auto& c : categories_)
    if (c.id == id) return &c;
  return nullptr;
}

std::size_t Navigator::frames_decoded() const {
  return touched_count_.load(std::memory_order_relaxed);
}

std::shared_ptr<const Frame> Navigator::frame_ptr(std::size_t index) {
  const DirEntry& e = directory_.at(index);
  auto frame = cache_->get(
      owner_, index, static_cast<std::size_t>(e.length) + sizeof(Frame),
      [&]() -> std::shared_ptr<const Frame> {
        auto f = std::make_shared<Frame>();
        f->t0 = e.t0;
        f->t1 = e.t1;
        f->depth = e.depth;
        util::ByteReader pr(data_ + blob_base_ + e.offset,
                            static_cast<std::size_t>(e.length));
        read_payload(pr, f.get(), encoding_);
        return f;
      });
  if (touched_[index].exchange(1, std::memory_order_relaxed) == 0)
    touched_count_.fetch_add(1, std::memory_order_relaxed);
  return frame;
}

std::vector<std::uint32_t> Navigator::window_frames(double a, double b) const {
  std::vector<std::uint32_t> out;
  if (directory_.empty()) return out;
  std::vector<std::int32_t> stack = {0};
  while (!stack.empty()) {
    const auto i = static_cast<std::size_t>(stack.back());
    stack.pop_back();
    const DirEntry& e = directory_[i];
    if (e.t1 < a || e.t0 > b) continue;
    out.push_back(static_cast<std::uint32_t>(i));
    if (e.left != -1) stack.push_back(e.left);
    if (e.right != -1) stack.push_back(e.right);
  }
  return out;
}

void Navigator::visit_window(
    double a, double b, const std::function<void(const StateDrawable&)>& on_state,
    const std::function<void(const EventDrawable&)>& on_event,
    const std::function<void(const ArrowDrawable&)>& on_arrow) {
  visit_window(a, b, on_state, on_event, on_arrow, 1);
}

void Navigator::visit_window(
    double a, double b, const std::function<void(const StateDrawable&)>& on_state,
    const std::function<void(const EventDrawable&)>& on_event,
    const std::function<void(const ArrowDrawable&)>& on_arrow, int threads) {
  const std::vector<std::uint32_t> frames = window_frames(a, b);
  // Decode (or fetch from the shared cache) every touched frame up front —
  // in parallel when asked — then run the callbacks serially in traversal
  // order. Pinning the shared_ptrs here means eviction under memory
  // pressure cannot invalidate a frame mid-visit.
  std::vector<std::shared_ptr<const Frame>> pinned(frames.size());
  util::parallel_for(frames.size(), util::resolve_threads(threads),
                     [&](std::size_t k) { pinned[k] = frame_ptr(frames[k]); });
  for (const auto& fp : pinned) {
    const Frame& f = *fp;
    if (on_state)
      for (const auto& s : f.states)
        if (s.end_time >= a && s.start_time <= b) on_state(s);
    if (on_event)
      for (const auto& ev : f.events)
        if (ev.time >= a && ev.time <= b) on_event(ev);
    if (on_arrow)
      for (const auto& ar : f.arrows) {
        const double lo = std::min(ar.start_time, ar.end_time);
        const double hi = std::max(ar.start_time, ar.end_time);
        if (hi >= a && lo <= b) on_arrow(ar);
      }
  }
}

std::uint64_t Navigator::window_payload_bytes(double a, double b) const {
  if (directory_.empty()) return 0;
  std::uint64_t total = 0;
  std::vector<std::int32_t> stack = {0};
  while (!stack.empty()) {
    const auto i = static_cast<std::size_t>(stack.back());
    stack.pop_back();
    const DirEntry& e = directory_[i];
    if (e.t1 < a || e.t0 > b) continue;
    total += e.length;
    if (e.left != -1) stack.push_back(e.left);
    if (e.right != -1) stack.push_back(e.right);
  }
  return total;
}

namespace {

struct StreamMeta {
  double t0 = 0.0, t1 = 0.0;
  std::int32_t left = -1, right = -1;
  std::uint64_t offset = 0, length = 0;
};

// Validation pass — field for field the checks parse() performs, with
// payloads left for the caller to decode one frame at a time. Templated
// over the reader so the mmap and streaming backends share one set of
// verdicts (the fuzz suite pins them against each other).
template <typename Reader>
void collect_stream_meta(Reader& r, const ReadOptions& ro, Header* h,
                         std::vector<StreamMeta>* metas,
                         std::uint64_t* blob_len, std::size_t* blob_base) {
  *h = read_header(r, ro);
  const std::uint32_t node_count =
      static_cast<std::uint32_t>(r.checked_count(r.u32(), 44));
  metas->reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    StreamMeta m;
    m.t0 = r.f64();
    m.t1 = r.f64();
    (void)r.i32();  // depth: directory metadata, not printed
    m.left = r.i32();
    m.right = r.i32();
    if ((m.left != -1 && (m.left <= static_cast<std::int32_t>(i) ||
                          m.left >= static_cast<std::int32_t>(node_count))) ||
        (m.right != -1 && (m.right <= static_cast<std::int32_t>(i) ||
                           m.right >= static_cast<std::int32_t>(node_count))))
      throw util::IoError("slog2: corrupt frame directory links");
    m.offset = r.u64();
    m.length = r.u64();
    (void)read_preview(r);
    metas->push_back(m);
  }
  *blob_len = r.u64();
  *blob_base = r.pos();
  r.skip(*blob_len);
  if (!r.at_end())
    throw util::IoError("slog2: trailing bytes after payload blob");
}

void print_stream_text(
    const Header& h, const std::vector<StreamMeta>& metas, bool dump_drawables,
    const std::function<void(const std::string&)>& sink,
    const std::function<Frame(const StreamMeta&)>& decode_frame);

}  // namespace

void stream_text(const std::filesystem::path& path, bool dump_drawables,
                 const std::function<void(const std::string&)>& sink,
                 const ReadOptions& ro) {
  std::vector<StreamMeta> metas;
  Header h;
  std::size_t blob_base = 0;
  std::uint64_t blob_len = 0;

  if (auto mapped = util::MappedFile::try_map(path)) {
    // mmap backend: the directory pass and every frame decode read page-
    // cache slices of the mapping; nothing is copied but the drawables.
    util::MmapByteReader r(std::move(*mapped));
    collect_stream_meta(r, ro, &h, &metas, &blob_len, &blob_base);
    const std::uint8_t* blob = r.mapping().data() + blob_base;
    auto decode_frame = [&, blob](const StreamMeta& m) {
      if (m.length > blob_len || m.offset > blob_len - m.length)
        throw util::IoError("slog2: frame payload extent out of range");
      Frame f;
      util::ByteReader pr(blob + m.offset, static_cast<std::size_t>(m.length));
      read_payload(pr, &f, h.encoding);
      if (!pr.at_end())
        throw util::IoError("slog2: frame payload has trailing bytes");
      return f;
    };
    for (const StreamMeta& m : metas) (void)decode_frame(m);
    print_stream_text(h, metas, dump_drawables, sink, decode_frame);
    return;
  }

  // Streaming backend (mmap unavailable): fixed-size read window plus one
  // frame payload at a time — RSS stays O(window + directory + frame).
  {
    util::FileByteReader r(path);
    collect_stream_meta(r, ro, &h, &metas, &blob_len, &blob_base);
  }
  std::ifstream blob_in(path, std::ios::binary);
  if (!blob_in) throw util::IoError("cannot open " + path.string());
  auto decode_frame = [&](const StreamMeta& m) {
    if (m.length > blob_len || m.offset > blob_len - m.length)
      throw util::IoError("slog2: frame payload extent out of range");
    const auto bytes = util::read_at(blob_in, blob_base + m.offset,
                                     static_cast<std::size_t>(m.length),
                                     "slog2: frame payload");
    Frame f;
    util::ByteReader pr(bytes);
    read_payload(pr, &f, h.encoding);
    if (!pr.at_end())
      throw util::IoError("slog2: frame payload has trailing bytes");
    return f;
  };
  for (const StreamMeta& m : metas) (void)decode_frame(m);
  print_stream_text(h, metas, dump_drawables, sink, decode_frame);
}

void validate_file(const std::filesystem::path& path, const ReadOptions& ro,
                   ReadBackend backend) {
  std::vector<StreamMeta> metas;
  Header h;
  std::size_t blob_base = 0;
  std::uint64_t blob_len = 0;

  if (backend == ReadBackend::kMmap) {
    util::MmapByteReader r(path);
    collect_stream_meta(r, ro, &h, &metas, &blob_len, &blob_base);
    const std::uint8_t* blob = r.mapping().data() + blob_base;
    for (const StreamMeta& m : metas) {
      if (m.length > blob_len || m.offset > blob_len - m.length)
        throw util::IoError("slog2: frame payload extent out of range");
      Frame f;
      util::ByteReader pr(blob + m.offset, static_cast<std::size_t>(m.length));
      read_payload(pr, &f, h.encoding);
      if (!pr.at_end())
        throw util::IoError("slog2: frame payload has trailing bytes");
    }
    return;
  }

  util::FileByteReader r(path);
  collect_stream_meta(r, ro, &h, &metas, &blob_len, &blob_base);
  std::ifstream blob_in(path, std::ios::binary);
  if (!blob_in) throw util::IoError("cannot open " + path.string());
  for (const StreamMeta& m : metas) {
    if (m.length > blob_len || m.offset > blob_len - m.length)
      throw util::IoError("slog2: frame payload extent out of range");
    const auto bytes = util::read_at(blob_in, blob_base + m.offset,
                                     static_cast<std::size_t>(m.length),
                                     "slog2: frame payload");
    Frame f;
    util::ByteReader pr(bytes);
    read_payload(pr, &f, h.encoding);
    if (!pr.at_end())
      throw util::IoError("slog2: frame payload has trailing bytes");
  }
}

namespace {

void print_stream_text(
    const Header& h, const std::vector<StreamMeta>& metas, bool dump_drawables,
    const std::function<void(const std::string&)>& sink,
    const std::function<Frame(const StreamMeta&)>& decode_frame) {
  // Printing pass: mirrors to_text() line for line.
  sink(util::strprintf(
      "SLOG-2  ranks=%d  span=[%.9f, %.9f]  frame_size=%llu\n", h.nranks, h.t_min,
      h.t_max, static_cast<unsigned long long>(h.frame_size)));
  sink(util::strprintf(
      "  drawables: states=%llu events=%llu arrows=%llu\n",
      static_cast<unsigned long long>(h.stats.total_states),
      static_cast<unsigned long long>(h.stats.total_events),
      static_cast<unsigned long long>(h.stats.total_arrows)));
  sink(util::strprintf(
      "  frames=%llu leaves=%llu depth=%d\n",
      static_cast<unsigned long long>(h.stats.frames),
      static_cast<unsigned long long>(h.stats.leaf_frames), h.stats.tree_depth));
  sink(util::strprintf(
      "  warnings: unmatched_sends=%llu unmatched_recvs=%llu "
      "unmatched_state_ends=%llu unclosed_states=%llu equal_drawables=%llu "
      "unknown_event_ids=%llu\n",
      static_cast<unsigned long long>(h.stats.unmatched_sends),
      static_cast<unsigned long long>(h.stats.unmatched_recvs),
      static_cast<unsigned long long>(h.stats.unmatched_state_ends),
      static_cast<unsigned long long>(h.stats.unclosed_states),
      static_cast<unsigned long long>(h.stats.equal_drawables),
      static_cast<unsigned long long>(h.stats.unknown_event_ids)));
  sink("  categories:\n");
  for (const auto& c : h.categories) {
    const char* kind = c.kind == CategoryKind::kState   ? "state"
                       : c.kind == CategoryKind::kEvent ? "event"
                                                        : "arrow";
    sink(util::strprintf("    [%d] %-6s %-24s %s\n", c.id, kind, c.name.c_str(),
                         c.color.c_str()));
  }
  if (dump_drawables && !metas.empty()) {
    // Preorder left-first walk from the root — the traversal order of
    // File::visit_window over the reconstructed tree.
    const double a = h.t_min;
    const double b = h.t_max;
    std::vector<std::int32_t> stack = {0};
    while (!stack.empty()) {
      const auto i = static_cast<std::size_t>(stack.back());
      stack.pop_back();
      const StreamMeta& m = metas[i];
      if (m.t1 < a || m.t0 > b) continue;
      const Frame f = decode_frame(m);
      for (const auto& s : f.states)
        if (s.end_time >= a && s.start_time <= b)
          sink(util::strprintf(
              "  state cat=%d rank=%d [%.9f, %.9f] depth=%d \"%s\"\n",
              s.category_id, s.rank, s.start_time, s.end_time, s.depth,
              s.start_text.c_str()));
      for (const auto& e : f.events)
        if (e.time >= a && e.time <= b)
          sink(util::strprintf("  event cat=%d rank=%d t=%.9f \"%s\"\n",
                               e.category_id, e.rank, e.time, e.text.c_str()));
      for (const auto& ar : f.arrows) {
        const double lo = std::min(ar.start_time, ar.end_time);
        const double hi = std::max(ar.start_time, ar.end_time);
        if (hi >= a && lo <= b)
          sink(util::strprintf("  arrow %d->%d [%.9f, %.9f] tag=%d size=%u\n",
                               ar.src_rank, ar.dst_rank, ar.start_time,
                               ar.end_time, ar.tag, ar.size));
      }
      if (m.right != -1) stack.push_back(m.right);
      if (m.left != -1) stack.push_back(m.left);
    }
  }
}

}  // namespace

Navigator::PreviewView Navigator::preview_covering(double a, double b) {
  PreviewView out;
  if (directory_.empty()) return out;
  // Descend while a single child still covers the window.
  std::size_t i = 0;
  for (;;) {
    const DirEntry& e = directory_[i];
    std::int32_t next = -1;
    if (e.left != -1) {
      const DirEntry& l = directory_[static_cast<std::size_t>(e.left)];
      if (l.t0 <= a && b <= l.t1) next = e.left;
    }
    if (next == -1 && e.right != -1) {
      const DirEntry& rr = directory_[static_cast<std::size_t>(e.right)];
      if (rr.t0 <= a && b <= rr.t1) next = e.right;
    }
    if (next == -1) break;
    i = static_cast<std::size_t>(next);
  }
  const DirEntry& e = directory_[i];
  out.t0 = e.t0;
  out.t1 = e.t1;
  out.preview = &e.preview;
  return out;
}

}  // namespace slog2

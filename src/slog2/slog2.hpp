// SLOG-2: the visualization-ready trace format Jumpshot reads.
//
// The CLOG-2 → SLOG-2 conversion performs all the analysis CLOG-2 defers:
//  * pairs state start/end event instances (LIFO per rank) into state
//    rectangles with nesting depth,
//  * pairs MPE send/receive halves (FIFO per (src,dst,tag)) into message
//    arrows,
//  * keeps solo events as bubbles,
//  * detects "Equal Drawables" — distinct drawables with identical
//    coordinates, the warning the paper hits when collective fan-out stamps
//    many arrows within the clock resolution (Section III-C),
//  * packs everything into a binary interval tree of bounded-size frames
//    (the "frame size" knob the paper mentions as a conversion parameter),
//    with per-node preview histograms that let a viewer draw zoomed-out
//    striped rectangles without touching leaf data (Fig. 1's outline view).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "clog2/clog2.hpp"
#include "util/mmapio.hpp"

namespace slog2 {

class FrameCache;

enum class CategoryKind : std::uint8_t { kState = 0, kEvent = 1, kArrow = 2 };

/// Frame payload encodings. kV1 is the original fixed-width row format
/// (file version 3, unchanged byte for byte). kV2 stores each payload as
/// per-field columns with delta-varint timestamps and varint small ints
/// (file version 4 + an encoding byte). Readers decode both transparently;
/// a v1-only reader sees version 4 and fails with a named diagnostic.
enum class FrameEncoding : std::uint8_t { kV1 = 1, kV2 = 2 };

/// "v1" / "v2".
const char* to_string(FrameEncoding e);
/// Parse "v1"/"v2" (throws util::UsageError on anything else).
FrameEncoding parse_frame_encoding(std::string_view name);

/// Reader-side constraints, threaded through parse()/read_file()/Navigator/
/// stream_text().
struct ReadOptions {
  /// When set, a file whose frame encoding differs is rejected with a named
  /// util::IoError instead of being decoded — this is how
  /// `pilot-slog2print --frame-encoding=v1` models a v1-only reader.
  std::optional<FrameEncoding> require_encoding;
};

/// Drawable category: what the Jumpshot legend lists (icon colour, name,
/// per-kind statistics).
struct Category {
  std::int32_t id = 0;
  CategoryKind kind = CategoryKind::kState;
  std::string name;
  std::string color;   ///< X11-style name
  std::string format;  ///< popup template
};

/// Reserved category for message arrows (drawn white in Jumpshot).
inline constexpr std::int32_t kArrowCategoryId = 0;

struct StateDrawable {
  std::int32_t category_id = 0;
  std::int32_t rank = 0;
  double start_time = 0.0;
  double end_time = 0.0;
  std::int32_t depth = 0;  ///< nesting level (0 = outermost)
  std::string start_text;  ///< popup text logged with the start event
  std::string end_text;    ///< popup text logged with the end event
};

struct EventDrawable {
  std::int32_t category_id = 0;
  std::int32_t rank = 0;
  double time = 0.0;
  std::string text;
};

struct ArrowDrawable {
  std::int32_t src_rank = 0;
  std::int32_t dst_rank = 0;
  double start_time = 0.0;  ///< send instant (sender clock, corrected)
  double end_time = 0.0;    ///< receive instant (receiver clock, corrected)
  std::int32_t tag = 0;
  std::uint32_t size = 0;  ///< message bytes
};

/// Zoomed-out summary stored at every frame: per state category, the busy
/// time per bucket (for colour-proportional striping); per event category,
/// instance counts; plus arrow counts.
struct Preview {
  int nbuckets = 0;
  std::map<std::int32_t, std::vector<float>> state_occupancy;
  std::map<std::int32_t, std::vector<std::uint32_t>> event_counts;
  std::uint32_t arrow_count = 0;
};

/// One node of the binary interval tree. A drawable lives in the lowest
/// node whose interval fully contains it; leaves are split until their
/// payload fits `frame_size` bytes (or max depth is reached).
struct Frame {
  double t0 = 0.0;
  double t1 = 0.0;
  std::int32_t depth = 0;
  std::vector<StateDrawable> states;
  std::vector<EventDrawable> events;
  std::vector<ArrowDrawable> arrows;
  Preview preview;  ///< summary of this node *and everything below it*
  std::unique_ptr<Frame> left;
  std::unique_ptr<Frame> right;

  [[nodiscard]] std::size_t payload_bytes() const;
  [[nodiscard]] std::size_t drawable_count() const {
    return states.size() + events.size() + arrows.size();
  }
};

/// Conversion statistics and warnings (clog2TOslog2's diagnostics).
struct ConvertStats {
  std::uint64_t total_states = 0;
  std::uint64_t total_events = 0;
  std::uint64_t total_arrows = 0;
  std::uint64_t unmatched_sends = 0;      ///< send half with no receive
  std::uint64_t unmatched_recvs = 0;      ///< receive half with no send
  std::uint64_t unmatched_state_ends = 0; ///< end event with no open start
  std::uint64_t unclosed_states = 0;      ///< start event never closed
  std::uint64_t equal_drawables = 0;      ///< the paper's superposition warning
  std::uint64_t unknown_event_ids = 0;    ///< instances with no definition
  std::uint64_t frames = 0;
  std::uint64_t leaf_frames = 0;
  std::int32_t tree_depth = 0;

  [[nodiscard]] bool clean() const {
    return unmatched_sends == 0 && unmatched_recvs == 0 &&
           unmatched_state_ends == 0 && unclosed_states == 0 &&
           equal_drawables == 0;
  }
};

struct File {
  std::int32_t nranks = 0;
  double t_min = 0.0;
  double t_max = 0.0;
  std::uint64_t frame_size = 0;  ///< conversion parameter used
  /// Frame payload encoding used by serialize() (and reported by parse()).
  /// Drawables in memory are identical either way; only the bytes differ.
  FrameEncoding encoding = FrameEncoding::kV1;
  std::vector<Category> categories;
  ConvertStats stats;
  std::unique_ptr<Frame> root;

  [[nodiscard]] const Category* category(std::int32_t id) const;

  /// Visit every drawable whose time range intersects [a, b]. Callbacks may
  /// be empty. Traversal prunes whole subtrees outside the window.
  void visit_window(double a, double b,
                    const std::function<void(const StateDrawable&)>& on_state,
                    const std::function<void(const EventDrawable&)>& on_event,
                    const std::function<void(const ArrowDrawable&)>& on_arrow) const;

  /// Visit every frame (pre-order). Used by tests to check tree invariants
  /// and by the renderer's preview path.
  void visit_frames(const std::function<void(const Frame&)>& fn) const;
};

struct ConvertOptions {
  /// Leaf payload bound in bytes — the "frame size" conversion parameter
  /// (the paper notes it governs how much data the viewer loads at once).
  std::uint64_t frame_size = 64 * 1024;
  int max_depth = 24;
  int preview_buckets = 32;
  /// Worker threads for the parallel stages (per-timeline pairing, per-key
  /// message matching, per-frame preview fills). 0 = hardware concurrency.
  /// Output is byte-identical at any value.
  int threads = 0;
  /// Frame payload encoding for the serialized output. Does not affect the
  /// in-memory File beyond File::encoding: the frame tree, previews, and
  /// drawables are identical for both (frame_size counts logical v1 bytes).
  FrameEncoding encoding = FrameEncoding::kV1;
};

/// Convert a CLOG-2 trace. Conversion never fails on a "non well-behaved"
/// program; problems are reported in File::stats and `warnings` (capped to
/// keep pathological traces from flooding the caller).
File convert(const clog2::File& in, const ConvertOptions& opts = {},
             std::vector<std::string>* warnings = nullptr);

// On-disk layout (version 3 = v1 payloads, version 4 = v2 payloads; see
// docs/FORMATS.md): header + category table + stats + a frame DIRECTORY
// (per-node interval, tree links, and byte extents) + a payload blob. The
// directory is what lets a viewer load only the frames its zoom window
// needs — the defining property of real SLOG-2.
std::vector<std::uint8_t> serialize(const File& file);
File parse(const std::vector<std::uint8_t>& bytes, const ReadOptions& ro = {});
File parse(const std::uint8_t* data, std::size_t n, const ReadOptions& ro = {});
void write_file(const std::filesystem::path& path, const File& file);
/// Reads through an mmap of the file (page-cache slices, no whole-file
/// copy) with a transparent buffered fallback; verdicts are identical.
File read_file(const std::filesystem::path& path, const ReadOptions& ro = {});

/// Reader backend selector for validate_file — the format-fuzz suite runs
/// every corrupted fixture through both and pins that the verdicts match.
enum class ReadBackend { kMmap, kStream };

/// Validate an on-disk SLOG-2 file end to end (header, directory, every
/// frame payload) with exactly parse()'s accept/reject behaviour, through
/// the chosen reader backend. Throws util::IoError on the first defect.
void validate_file(const std::filesystem::path& path, const ReadOptions& ro = {},
                   ReadBackend backend = ReadBackend::kMmap);

/// Lazy reader: parses the header and frame directory eagerly but decodes
/// frame payloads only when a query touches them. This is how Jumpshot
/// scrolls seamlessly through logs far larger than memory-comfortable: a
/// zoomed-in window touches O(depth) frames, not all of them.
///
/// The path constructor mmaps the file (with a read-into-buffer fallback),
/// so frame payloads are decoded straight out of the page cache — the file
/// bytes are never copied wholesale. Decoded frames live in the process-wide
/// FrameCache, keyed by file identity: every Navigator (and every
/// pilot-traced session) over the same file shares one decode of each frame.
class Navigator {
public:
  explicit Navigator(const std::filesystem::path& path, const ReadOptions& ro = {});
  explicit Navigator(std::vector<std::uint8_t> bytes, const ReadOptions& ro = {});
  ~Navigator();
  Navigator(const Navigator&) = delete;
  Navigator& operator=(const Navigator&) = delete;

  [[nodiscard]] FrameEncoding encoding() const { return encoding_; }
  [[nodiscard]] std::int32_t nranks() const { return nranks_; }
  [[nodiscard]] double t_min() const { return t_min_; }
  [[nodiscard]] double t_max() const { return t_max_; }
  [[nodiscard]] const std::vector<Category>& categories() const { return categories_; }
  [[nodiscard]] const ConvertStats& stats() const { return stats_; }
  [[nodiscard]] const Category* category(std::int32_t id) const;

  /// Visit drawables intersecting [a, b], decoding only the frames whose
  /// interval intersects the window.
  void visit_window(double a, double b,
                    const std::function<void(const StateDrawable&)>& on_state,
                    const std::function<void(const EventDrawable&)>& on_event,
                    const std::function<void(const ArrowDrawable&)>& on_arrow);

  /// Same visit, but the touched frames are decoded in parallel on
  /// `threads` workers (0 = hardware) before the serial in-order callback
  /// pass — output is byte-identical to the serial overload at any thread
  /// count, because the callbacks always run in traversal order.
  void visit_window(double a, double b,
                    const std::function<void(const StateDrawable&)>& on_state,
                    const std::function<void(const EventDrawable&)>& on_event,
                    const std::function<void(const ArrowDrawable&)>& on_arrow,
                    int threads);

  /// Directory indices of every frame intersecting [a, b], in exactly the
  /// order visit_window touches them. The unit of sharding for the
  /// parallel query sweeps.
  [[nodiscard]] std::vector<std::uint32_t> window_frames(double a, double b) const;

  /// Decode frame `index` through the shared cache. The returned pointer
  /// stays valid for as long as the caller holds it, even across eviction.
  [[nodiscard]] std::shared_ptr<const Frame> frame_ptr(std::size_t index);

  /// Preview of the smallest single frame covering [a, b] (zoomed-out
  /// rendering without touching leaf payloads), with its interval.
  struct PreviewView {
    double t0 = 0.0;
    double t1 = 0.0;
    const Preview* preview = nullptr;  // borrowed; valid while Navigator lives
  };
  [[nodiscard]] PreviewView preview_covering(double a, double b);

  [[nodiscard]] std::size_t total_frames() const { return directory_.size(); }
  /// Frames decoded so far (tests assert laziness with this).
  [[nodiscard]] std::size_t frames_decoded() const;

  /// Payload bytes of every frame intersecting [a, b] — what a detailed
  /// visit of that window would decode. Answered from the directory alone
  /// (no payload is touched), so a renderer can decide between detailed
  /// drawing and the preview fallback before paying for either.
  [[nodiscard]] std::uint64_t window_payload_bytes(double a, double b) const;

private:
  struct DirEntry {
    double t0 = 0.0;
    double t1 = 0.0;
    std::int32_t depth = 0;
    std::int32_t left = -1;   // directory index or -1
    std::int32_t right = -1;
    std::uint64_t offset = 0;  // into the payload blob
    std::uint64_t length = 0;
    Preview preview;  // small; kept eagerly for zoomed-out rendering
  };

  void load(const std::uint8_t* data, std::size_t n, const ReadOptions& ro);

  util::MappedFile map_;              // path ctor: zero-copy view of the file
  std::vector<std::uint8_t> bytes_;   // bytes ctor: owned buffer
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t blob_base_ = 0;
  FrameEncoding encoding_ = FrameEncoding::kV1;
  std::int32_t nranks_ = 0;
  double t_min_ = 0.0;
  double t_max_ = 0.0;
  std::uint64_t frame_size_ = 0;
  std::vector<Category> categories_;
  ConvertStats stats_;
  std::vector<DirEntry> directory_;  // preorder; [0] is the root (if any)
  FrameCache* cache_ = nullptr;      // shared decode cache (never null after load)
  std::uint64_t owner_ = 0;          // our namespace within the cache
  bool private_owner_ = false;       // bytes ctor: evict our frames on dtor
  std::unique_ptr<std::atomic<char>[]> touched_;  // frames ever requested here
  std::atomic<std::size_t> touched_count_{0};
};

/// Human-readable structural summary (the slog2print tool).
std::string to_text(const File& file, bool dump_drawables = false);

/// Stream the to_text() dump of an on-disk SLOG-2 file through `sink`,
/// reading through an mmap of the file when available (page-cache slices,
/// one frame decoded at a time) and falling back to a fixed-size read
/// window otherwise — either way RSS stays O(window + directory + largest
/// frame) instead of O(trace). A full validation pass runs first with
/// exactly the accept/reject verdict of parse() (every payload is decoded
/// and bounds-checked), so a corrupt file throws util::IoError before any
/// output is emitted. Output is byte-identical to
/// to_text(read_file(path), dump_drawables).
void stream_text(const std::filesystem::path& path, bool dump_drawables,
                 const std::function<void(const std::string&)>& sink,
                 const ReadOptions& ro = {});

}  // namespace slog2

#include "traced/online_convert.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <limits>

#include "slog2/frame_cache.hpp"
#include "slog2/frame_codec.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace traced {

namespace detail2 = slog2::detail;

namespace {

std::uint64_t state_live_bytes(const slog2::StateDrawable& s) {
  return sizeof(s) + s.start_text.size() + s.end_text.size();
}

}  // namespace

OnlineConverter::OnlineConverter(const OnlineOptions& opts) : opts_(opts) {
  if (opts_.convert.frame_size == 0)
    throw util::UsageError("traced::OnlineConverter: frame_size must be positive");
  if (opts_.convert.max_depth < 0 || opts_.convert.max_depth > 48)
    throw util::UsageError("traced::OnlineConverter: max_depth out of range");
  if (opts_.max_disorder < 0.0)
    throw util::UsageError("traced::OnlineConverter: max_disorder must be >= 0");
  cache_owner_ = slog2::FrameCache::fresh_owner();
}

OnlineConverter::~OnlineConverter() {
  // Sealed chunks can never be requested again under this owner id.
  slog2::FrameCache::global().erase_owner(cache_owner_);
}

void OnlineConverter::begin(std::int32_t nranks) {
  if (begun_) throw util::UsageError("OnlineConverter::begin called twice");
  begun_ = true;
  nranks_ = nranks;
  categories_.push_back(slog2::Category{slog2::kArrowCategoryId,
                                        slog2::CategoryKind::kArrow, "message",
                                        "white", ""});
  if (!opts_.spill_dir.empty()) {
    std::filesystem::create_directories(opts_.spill_dir);
    spill_file_ =
        opts_.spill_dir / util::strprintf("traced-%p.chunks",
                                          static_cast<const void*>(this));
    std::ofstream f(spill_file_, std::ios::binary | std::ios::trunc);
    if (!f) throw util::IoError("cannot create spill file " + spill_file_.string());
  }
}

double OnlineConverter::admitted_frontier() const {
  return watermark_ - opts_.max_disorder;
}

void OnlineConverter::push(const clog2::Record& rec) {
  if (!begun_) throw util::UsageError("OnlineConverter::push before begin()");
  if (finalized_) throw util::UsageError("OnlineConverter::push after finalize()");

  if (const auto* d = std::get_if<clog2::StateDef>(&rec)) {
    if (any_instance_)
      throw util::IoError(
          "online conversion requires definition records before instance "
          "records (StateDef arrived late)");
    const std::int32_t cat = next_cat_++;
    categories_.push_back(slog2::Category{cat, slog2::CategoryKind::kState, d->name,
                                          d->color, d->format});
    index_.at(d->start_event_id) = detail2::EventIdIndex::Entry{cat, true, -1};
    index_.at(d->end_event_id) = detail2::EventIdIndex::Entry{cat, false, -1};
    return;
  }
  if (const auto* e = std::get_if<clog2::EventDef>(&rec)) {
    if (any_instance_)
      throw util::IoError(
          "online conversion requires definition records before instance "
          "records (EventDef arrived late)");
    const std::int32_t cat = next_cat_++;
    categories_.push_back(slog2::Category{cat, slog2::CategoryKind::kEvent, e->name,
                                          e->color, e->format});
    index_.at(e->event_id) = detail2::EventIdIndex::Entry{-1, false, cat};
    return;
  }
  if (std::holds_alternative<clog2::ConstDef>(rec) ||
      std::holds_alternative<clog2::SyncRec>(rec))
    return;  // no drawables; the offline converter ignores these too

  // Instance record (EventRec or MsgRec).
  double t = 0.0;
  if (const auto* e = std::get_if<clog2::EventRec>(&rec))
    t = e->timestamp;
  else
    t = std::get<clog2::MsgRec>(rec).timestamp;

  if (any_instance_ && t < watermark_ - opts_.max_disorder)
    throw util::IoError(util::strprintf(
        "stream disorder exceeds the %.6fs bound: record at t=%.9f arrived "
        "after the watermark reached %.9f",
        opts_.max_disorder, t, watermark_));

  any_instance_ = true;
  last_time_seen_ = std::max(last_time_seen_, t);
  PendingInst inst{detail2::InstKey{t, inst_idx_++}, rec};
  heap_bytes_ += sizeof(PendingInst) + 64;  // rough per-record footprint
  heap_.push(std::move(inst));
  ++usage_.records;
  watermark_ = std::max(watermark_, t);

  // Admit everything that can no longer be displaced by a late arrival:
  // a new record may still carry any t' >= watermark - max_disorder, and
  // ties on t are broken by arrival index, so only keys strictly below the
  // frontier are final.
  drain_heap_until(watermark_ - opts_.max_disorder);
  maybe_seal();
  account();
}

void OnlineConverter::drain_heap_until(double limit) {
  while (!heap_.empty() && heap_.top().key.t < limit) {
    const PendingInst& top = heap_.top();
    admit(top);
    heap_bytes_ -= sizeof(PendingInst) + 64;
    heap_.pop();
  }
}

void OnlineConverter::admit(const PendingInst& inst) {
  last_admitted_t_ = inst.key.t;
  if (const auto* e = std::get_if<clog2::EventRec>(&inst.rec))
    admit_event(*e);
  else
    admit_msg(std::get<clog2::MsgRec>(inst.rec));
}

void OnlineConverter::scan_warn(std::int32_t rank, const std::string& msg) {
  // Mirror the offline cap structure: at most kMaxWarningMessages per rank
  // (TimelineOut::warns) — the global cap is applied when the warnings are
  // replayed through detail::warn at finalize.
  auto& rs = ranks_[rank];
  if (rs.scan_warns < detail2::kMaxWarningMessages &&
      scan_warnings_.size() < detail2::kMaxWarningMessages) {
    ++rs.scan_warns;
    scan_warnings_.push_back(msg);
  }
}

void OnlineConverter::admit_event(const clog2::EventRec& e) {
  auto& rs = ranks_[e.rank];
  const detail2::EventIdIndex::Entry* entry = index_.find(e.event_id);
  if (entry != nullptr && entry->state_cat >= 0) {
    if (entry->is_start) {
      rs.stack.push_back(detail2::OpenState{
          entry->state_cat, e.timestamp, e.text,
          static_cast<std::int32_t>(rs.stack.size())});
      open_bytes_ += sizeof(detail2::OpenState) + e.text.size();
    } else if (!rs.stack.empty() && rs.stack.back().category_id == entry->state_cat) {
      slog2::StateDrawable s;
      s.category_id = rs.stack.back().category_id;
      s.rank = e.rank;
      s.start_time = rs.stack.back().start_time;
      s.end_time = e.timestamp;
      s.depth = rs.stack.back().depth;
      s.start_text = std::move(rs.stack.back().start_text);
      s.end_text = e.text;
      open_bytes_ -= sizeof(detail2::OpenState) + s.start_text.size();
      rs.stack.pop_back();
      note_tail(s.start_time, s.end_time, state_live_bytes(s));
      tail_states_.push_back(std::move(s));
    } else {
      ++unmatched_state_ends_;
      scan_warn(e.rank,
                util::strprintf("rank %d: end event id %d at t=%.9f has no "
                                "matching open state",
                                e.rank, e.event_id, e.timestamp));
    }
  } else if (entry != nullptr && entry->solo_cat >= 0) {
    note_tail(e.timestamp, e.timestamp, sizeof(slog2::EventDrawable) + e.text.size());
    tail_events_.push_back(
        slog2::EventDrawable{entry->solo_cat, e.rank, e.timestamp, e.text});
  } else {
    ++unknown_event_ids_;
    scan_warn(e.rank, util::strprintf("rank %d: event id %d has no definition",
                                      e.rank, e.event_id));
  }
}

void OnlineConverter::admit_msg(const clog2::MsgRec& m) {
  const bool is_send = m.kind == clog2::MsgRec::Kind::kSend;
  const MsgKey mkey = is_send ? MsgKey{m.rank, m.partner, m.tag}
                              : MsgKey{m.partner, m.rank, m.tag};
  auto& q = msgs_[mkey];
  // Both queues fill in admitted (= globally sorted) order, so head-of-line
  // matching pairs the i-th send of the key with its i-th receive — the
  // offline pairing — and the arrow commits at the later half's key, which
  // is exactly the key being admitted now.
  auto* mine = is_send ? &q.sends : &q.recvs;
  auto* theirs = is_send ? &q.recvs : &q.sends;
  if (!theirs->empty()) {
    const clog2::MsgRec& send = is_send ? m : theirs->front();
    const clog2::MsgRec& recv = is_send ? theirs->front() : m;
    slog2::ArrowDrawable a;
    a.src_rank = send.rank;
    a.dst_rank = recv.rank;
    a.start_time = send.timestamp;
    a.end_time = recv.timestamp;
    a.tag = send.tag;
    a.size = send.size;
    open_bytes_ -= sizeof(clog2::MsgRec);
    theirs->pop_front();
    note_tail(std::min(a.start_time, a.end_time), std::max(a.start_time, a.end_time),
              detail2::kArrowBytes + 16);
    tail_arrows_.push_back(a);
  } else {
    mine->push_back(m);
    open_bytes_ += sizeof(clog2::MsgRec);
  }
}

void OnlineConverter::note_tail(double lo, double hi, std::uint64_t bytes) {
  if (!tail_any_) {
    tail_lo_ = lo;
    tail_hi_ = hi;
    tail_any_ = true;
  } else {
    tail_lo_ = std::min(tail_lo_, lo);
    tail_hi_ = std::max(tail_hi_, hi);
  }
  tail_bytes_ += bytes;
}

void OnlineConverter::maybe_seal() {
  if (tail_bytes_ >= opts_.seal_bytes) seal_tail();
}

std::vector<std::uint8_t> OnlineConverter::encode_tail() const {
  // Sealed chunks use the session's frame encoding: the v2 codec is
  // lossless, so finalize() stays byte-identical to the offline converter
  // regardless of how many chunks the stream sealed.
  if (opts_.convert.encoding == slog2::FrameEncoding::kV2) {
    util::ByteWriter w;
    detail2::encode_drawables_v2(w, tail_states_, tail_events_, tail_arrows_);
    return w.take();
  }
  util::ByteWriter w;
  w.u64(tail_states_.size());
  w.u64(tail_events_.size());
  w.u64(tail_arrows_.size());
  for (const auto& s : tail_states_) {
    w.i32(s.category_id);
    w.i32(s.rank);
    w.f64(s.start_time);
    w.f64(s.end_time);
    w.i32(s.depth);
    w.str(s.start_text);
    w.str(s.end_text);
  }
  for (const auto& e : tail_events_) {
    w.i32(e.category_id);
    w.i32(e.rank);
    w.f64(e.time);
    w.str(e.text);
  }
  for (const auto& a : tail_arrows_) {
    w.i32(a.src_rank);
    w.i32(a.dst_rank);
    w.f64(a.start_time);
    w.f64(a.end_time);
    w.i32(a.tag);
    w.u32(a.size);
  }
  return w.take();
}

void OnlineConverter::seal_tail() {
  if (tail_states_.empty() && tail_events_.empty() && tail_arrows_.empty()) return;
  std::vector<std::uint8_t> bytes = encode_tail();
  Chunk c;
  c.length = bytes.size();
  c.nstates = tail_states_.size();
  c.nevents = tail_events_.size();
  c.narrows = tail_arrows_.size();
  c.t_lo = tail_lo_;
  c.t_hi = tail_hi_;
  if (!spill_file_.empty()) {
    std::ofstream f(spill_file_, std::ios::binary | std::ios::app);
    if (!f) throw util::IoError("cannot append to spill file " + spill_file_.string());
    c.offset = static_cast<std::uint64_t>(f.tellp());
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f) throw util::IoError("short write to spill file " + spill_file_.string());
  } else {
    c.bytes = std::move(bytes);
  }
  usage_.sealed_bytes += c.length;
  ++usage_.sealed_chunks;
  chunks_.push_back(std::move(c));
  tail_states_.clear();
  tail_events_.clear();
  tail_arrows_.clear();
  tail_bytes_ = 0;
  tail_any_ = false;
}

void OnlineConverter::account() {
  usage_.live_bytes = tail_bytes_ + heap_bytes_ + open_bytes_;
  usage_.peak_live_bytes = std::max(usage_.peak_live_bytes, usage_.live_bytes);
}

slog2::detail::Collected OnlineConverter::decode_chunk(std::size_t index) {
  const Chunk& c = chunks_[index];
  std::vector<std::uint8_t> bytes;
  const std::vector<std::uint8_t>* src = &c.bytes;
  if (!spill_file_.empty()) {
    std::ifstream f(spill_file_, std::ios::binary);
    if (!f) throw util::IoError("cannot reopen spill file " + spill_file_.string());
    f.seekg(static_cast<std::streamoff>(c.offset));
    bytes.resize(c.length);
    f.read(reinterpret_cast<char*>(bytes.data()),
           static_cast<std::streamsize>(c.length));
    if (f.gcount() != static_cast<std::streamsize>(c.length))
      throw util::IoError("short read from spill file " + spill_file_.string());
    src = &bytes;
  }
  util::ByteReader r(*src);
  detail2::Collected out;
  if (opts_.convert.encoding == slog2::FrameEncoding::kV2) {
    detail2::decode_drawables_v2(r, &out.states, &out.events, &out.arrows);
    return out;
  }
  const std::size_t ns = r.checked_count(r.u64(), 1);
  const std::size_t ne = r.checked_count(r.u64(), 1);
  const std::size_t na = r.checked_count(r.u64(), 1);
  out.states.reserve(ns);
  out.events.reserve(ne);
  out.arrows.reserve(na);
  for (std::size_t i = 0; i < ns; ++i) {
    slog2::StateDrawable s;
    s.category_id = r.i32();
    s.rank = r.i32();
    s.start_time = r.f64();
    s.end_time = r.f64();
    s.depth = r.i32();
    s.start_text = r.str();
    s.end_text = r.str();
    out.states.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < ne; ++i) {
    slog2::EventDrawable e;
    e.category_id = r.i32();
    e.rank = r.i32();
    e.time = r.f64();
    e.text = r.str();
    out.events.push_back(std::move(e));
  }
  for (std::size_t i = 0; i < na; ++i) {
    slog2::ArrowDrawable a;
    a.src_rank = r.i32();
    a.dst_rank = r.i32();
    a.start_time = r.f64();
    a.end_time = r.f64();
    a.tag = r.i32();
    a.size = r.u32();
    out.arrows.push_back(a);
  }
  return out;
}

std::shared_ptr<const slog2::Frame> OnlineConverter::cached_chunk(
    std::size_t index) {
  const Chunk& c = chunks_[index];
  return slog2::FrameCache::global().get(
      cache_owner_, index, static_cast<std::size_t>(c.length) + sizeof(slog2::Frame),
      [&]() -> std::shared_ptr<const slog2::Frame> {
        auto f = std::make_shared<slog2::Frame>();
        detail2::Collected got = decode_chunk(index);
        f->t0 = c.t_lo;
        f->t1 = c.t_hi;
        f->states = std::move(got.states);
        f->events = std::move(got.events);
        f->arrows = std::move(got.arrows);
        return f;
      });
}

void OnlineConverter::visit_window(
    double a, double b,
    const std::function<void(const slog2::StateDrawable&)>& on_state,
    const std::function<void(const slog2::EventDrawable&)>& on_event,
    const std::function<void(const slog2::ArrowDrawable&)>& on_arrow) {
  // Generic over slog2::Frame (shared cache) and Collected (resident tail).
  auto scan = [&](const auto& c) {
    if (on_state)
      for (const auto& s : c.states)
        if (s.end_time >= a && s.start_time <= b) on_state(s);
    if (on_event)
      for (const auto& e : c.events)
        if (e.time >= a && e.time <= b) on_event(e);
    if (on_arrow)
      for (const auto& ar : c.arrows) {
        const double lo = std::min(ar.start_time, ar.end_time);
        const double hi = std::max(ar.start_time, ar.end_time);
        if (hi >= a && lo <= b) on_arrow(ar);
      }
  };
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    if (chunks_[i].t_hi < a || chunks_[i].t_lo > b) continue;
    scan(*cached_chunk(i));
  }
  detail2::Collected tail;
  tail.states = tail_states_;
  tail.events = tail_events_;
  tail.arrows = tail_arrows_;
  scan(tail);
}

slog2::detail::Collected OnlineConverter::collect_all() {
  detail2::Collected all;
  std::uint64_t ns = tail_states_.size(), ne = tail_events_.size(),
                na = tail_arrows_.size();
  for (const Chunk& c : chunks_) {
    ns += c.nstates;
    ne += c.nevents;
    na += c.narrows;
  }
  all.states.reserve(ns);
  all.events.reserve(ne);
  all.arrows.reserve(na);
  // Chunks are sealed in commit order and each is internally commit-ordered
  // per kind, so per-kind concatenation reconstructs the global commit
  // order the offline converter produces.
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    detail2::Collected c = decode_chunk(i);
    std::move(c.states.begin(), c.states.end(), std::back_inserter(all.states));
    std::move(c.events.begin(), c.events.end(), std::back_inserter(all.events));
    std::move(c.arrows.begin(), c.arrows.end(), std::back_inserter(all.arrows));
  }
  all.states.insert(all.states.end(), tail_states_.begin(), tail_states_.end());
  all.events.insert(all.events.end(), tail_events_.begin(), tail_events_.end());
  all.arrows.insert(all.arrows.end(), tail_arrows_.begin(), tail_arrows_.end());
  return all;
}

void OnlineConverter::fill_pairing_stats(slog2::ConvertStats& stats) const {
  stats.unmatched_state_ends = unmatched_state_ends_;
  stats.unknown_event_ids = unknown_event_ids_;
  for (const auto& [key, q] : msgs_) {
    stats.unmatched_sends += q.sends.size();
    stats.unmatched_recvs += q.recvs.size();
  }
}

slog2::File OnlineConverter::snapshot() {
  if (!begun_) throw util::UsageError("OnlineConverter::snapshot before begin()");
  slog2::File out;
  out.nranks = nranks_;
  out.frame_size = opts_.convert.frame_size;
  out.encoding = opts_.convert.encoding;
  out.categories = categories_;
  fill_pairing_stats(out.stats);
  detail2::Collected items = collect_all();
  const bool any = !items.states.empty() || !items.events.empty() ||
                   !items.arrows.empty();
  detail2::assemble(out, std::move(items), any, opts_.convert,
                    util::resolve_threads(opts_.convert.threads), nullptr);
  return out;
}

slog2::File OnlineConverter::finalize(std::vector<std::string>* warnings) {
  if (!begun_) throw util::UsageError("OnlineConverter::finalize before begin()");
  if (finalized_) throw util::UsageError("OnlineConverter::finalize called twice");
  finalized_ = true;

  // Flush the reorder heap: the stream is over, every pending instance is
  // final, and the heap pops them in (t, idx) order — the offline sort.
  drain_heap_until(std::numeric_limits<double>::infinity());

  slog2::File out;
  out.nranks = nranks_;
  out.frame_size = opts_.convert.frame_size;
  out.encoding = opts_.convert.encoding;
  out.categories = categories_;
  fill_pairing_stats(out.stats);

  detail2::Collected items = collect_all();

  // Replay warnings in the offline order: chronological scan warnings,
  // unmatched sends per key, unmatched receives per key, unclosed states
  // per rank.
  for (const auto& msg : scan_warnings_) detail2::warn(warnings, msg);
  for (const auto& [key, q] : msgs_)
    if (!q.sends.empty())
      detail2::warn(warnings,
                    util::strprintf("%zu send(s) from rank %d to rank %d tag %d "
                                    "were never received",
                                    q.sends.size(), std::get<0>(key),
                                    std::get<1>(key), std::get<2>(key)));
  for (const auto& [key, q] : msgs_)
    if (!q.recvs.empty())
      detail2::warn(warnings,
                    util::strprintf("%zu receive(s) at rank %d from rank %d tag %d "
                                    "have no logged send",
                                    q.recvs.size(), std::get<1>(key),
                                    std::get<0>(key), std::get<2>(key)));

  // Close dangling states at the last timestamp so they stay visible.
  for (auto& [rank, rs] : ranks_) {
    while (!rs.stack.empty()) {
      ++out.stats.unclosed_states;
      auto& open = rs.stack.back();
      slog2::StateDrawable s;
      s.category_id = open.category_id;
      s.rank = rank;
      s.start_time = open.start_time;
      s.end_time = last_time_seen_;
      s.depth = open.depth;
      s.start_text = std::move(open.start_text);
      detail2::warn(warnings,
                    util::strprintf(
                        "rank %d: state category %d opened at t=%.9f never closed",
                        rank, s.category_id, s.start_time));
      rs.stack.pop_back();
      items.states.push_back(std::move(s));
    }
  }

  detail2::assemble(out, std::move(items), any_instance_, opts_.convert,
                    util::resolve_threads(opts_.convert.threads), warnings);

  // Release working state; the spill file is no longer needed.
  chunks_.clear();
  slog2::FrameCache::global().erase_owner(cache_owner_);
  tail_states_.clear();
  tail_events_.clear();
  tail_arrows_.clear();
  msgs_.clear();
  ranks_.clear();
  if (!spill_file_.empty()) {
    std::error_code ec;
    std::filesystem::remove(spill_file_, ec);
  }
  usage_.live_bytes = 0;
  return out;
}

}  // namespace traced

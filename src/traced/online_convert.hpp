// Online CLOG-2 → SLOG-2 conversion: the incremental core of pilot-traced.
//
// OnlineConverter consumes CLOG-2 records one at a time, as they arrive
// from a live stream, and maintains exactly the intermediate state the
// offline converter (slog2::convert) would have accumulated over the same
// prefix — so finalize() hands the shared assemble() tail the same
// commit-ordered drawable lists and produces a byte-identical SLOG-2 file
// (pinned by traced_test.cpp across chunk sizes and fixtures).
//
// Memory is bounded by the *disorder* of the stream, not its length:
//   * raw bytes are decoded and dropped immediately (clog2::StreamReader),
//   * instances sit in a small reorder heap only until the watermark
//     passes them (see OnlineOptions::max_disorder),
//   * committed drawables accumulate in a bounded tail; once the tail
//     exceeds seal_bytes it is encoded into an immutable sealed chunk and
//     (when a spill path is configured) written to disk,
//   * what remains resident is the tail, the reorder heap, per-rank open
//     state stacks, unmatched message halves, and the chunk directory.
// finalize() streams the sealed chunks back in commit order, so the full
// trace is materialized only at the moment the offline converter would
// have materialized it anyway.
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <tuple>
#include <vector>

#include "clog2/clog2.hpp"
#include "slog2/convert_internal.hpp"
#include "slog2/frame_cache.hpp"
#include "slog2/slog2.hpp"

namespace traced {

struct OnlineOptions {
  /// Options handed to the shared conversion tail at finalize(); identical
  /// options must be used for the offline run when comparing outputs.
  slog2::ConvertOptions convert;

  /// Maximum timestamp disorder the stream may exhibit, in seconds. An
  /// instance is admitted to pairing once the watermark (max timestamp
  /// seen) has advanced more than this far past it; a record arriving more
  /// than this far *behind* the watermark is a hard error. The CLOG-2
  /// merge step emits nearly sorted streams, so the reorder window — and
  /// with it the heap — stays small.
  double max_disorder = 0.05;

  /// Seal the committed-drawable tail into an immutable chunk once its
  /// payload accounting reaches this many bytes.
  std::uint64_t seal_bytes = 256 * 1024;

  /// Directory for sealed-chunk spill files. Empty = keep sealed chunks in
  /// memory in their compact encoded form (tests); pilot-traced always
  /// configures a spill directory so per-session RSS stays bounded.
  std::filesystem::path spill_dir;

  /// Superseded: sealed-chunk decodes now go through the process-wide
  /// slog2::FrameCache (sized in bytes, shared by every session), so the
  /// per-session entry count no longer bounds anything. Kept so existing
  /// configs keep parsing; the value is ignored.
  std::size_t chunk_cache = 4;
};

/// Resource accounting for one converter (the bounded-memory guarantee in
/// docs/TRACED.md is asserted against these numbers in tests and benches).
struct OnlineUsage {
  std::uint64_t records = 0;          ///< instance records admitted or pending
  std::uint64_t live_bytes = 0;       ///< tail + heap + open/unmatched state
  std::uint64_t peak_live_bytes = 0;  ///< high-water mark of live_bytes
  std::uint64_t sealed_chunks = 0;
  std::uint64_t sealed_bytes = 0;  ///< encoded size of all sealed chunks
};

/// Incremental converter for one session. Not thread-safe; the session
/// manager serializes access per session.
class OnlineConverter {
public:
  explicit OnlineConverter(const OnlineOptions& opts = {});
  ~OnlineConverter();
  OnlineConverter(const OnlineConverter&) = delete;
  OnlineConverter& operator=(const OnlineConverter&) = delete;

  /// Start a conversion for a trace with `nranks` ranks (from the CLOG-2
  /// stream header).
  void begin(std::int32_t nranks);

  /// Consume one record. Definition records must precede all instance
  /// records (the offline converter scans definitions up front; a live
  /// stream cannot). Throws util::IoError on a definition after an
  /// instance or on an instance more than max_disorder behind the
  /// watermark.
  void push(const clog2::Record& rec);

  /// Highest instance timestamp seen so far.
  [[nodiscard]] double watermark() const { return watermark_; }
  /// Timestamps at or below this are final: every drawable that can ever
  /// be committed at or before this instant already has been.
  [[nodiscard]] double admitted_frontier() const;

  [[nodiscard]] const OnlineUsage& usage() const { return usage_; }
  [[nodiscard]] std::int32_t nranks() const { return nranks_; }
  [[nodiscard]] const std::vector<slog2::Category>& categories() const {
    return categories_;
  }

  /// Visit committed drawables intersecting [a, b] (same intersection
  /// rules as slog2::File::visit_window). Sealed chunks whose time range
  /// misses the window are not decoded. Const-correct in spirit only: a
  /// decode may populate the chunk cache.
  void visit_window(double a, double b,
                    const std::function<void(const slog2::StateDrawable&)>& on_state,
                    const std::function<void(const slog2::EventDrawable&)>& on_event,
                    const std::function<void(const slog2::ArrowDrawable&)>& on_arrow);

  /// Build a renderable SLOG-2 file from every *committed* drawable — the
  /// live prefix of the trace. Still-open states and unmatched message
  /// halves are not included (they have no end yet). The converter keeps
  /// running; snapshot() can be called any number of times mid-stream.
  [[nodiscard]] slog2::File snapshot();

  /// Flush the reorder heap, close dangling states, and run the shared
  /// conversion tail. The result is byte-identical (after slog2::serialize)
  /// to slog2::convert() over the same records with `opts.convert`. The
  /// converter is spent afterwards; push() throws.
  [[nodiscard]] slog2::File finalize(std::vector<std::string>* warnings = nullptr);

private:
  struct PendingInst {
    slog2::detail::InstKey key;
    clog2::Record rec;  // EventRec or MsgRec only
    bool operator>(const PendingInst& o) const { return o.key < key; }
  };

  struct RankState {
    std::vector<slog2::detail::OpenState> stack;
    std::uint64_t scan_warns = 0;  // per-rank cap, mirrors TimelineOut
  };

  using MsgKey = std::tuple<std::int32_t, std::int32_t, std::int32_t>;
  struct MsgQueues {
    std::deque<clog2::MsgRec> sends;  // unmatched halves, admitted order
    std::deque<clog2::MsgRec> recvs;
  };

  struct Chunk {
    std::uint64_t offset = 0;  // into the spill file (spill mode)
    std::uint64_t length = 0;  // encoded bytes
    std::uint64_t nstates = 0, nevents = 0, narrows = 0;
    double t_lo = 0.0, t_hi = 0.0;  // drawable time range, for query pruning
    std::vector<std::uint8_t> bytes;  // encoded payload (in-memory mode)
  };

  void admit(const PendingInst& inst);
  void admit_event(const clog2::EventRec& e);
  void admit_msg(const clog2::MsgRec& m);
  void note_tail(double lo, double hi, std::uint64_t bytes);
  void maybe_seal();
  void seal_tail();
  void drain_heap_until(double limit);
  void account();
  [[nodiscard]] std::vector<std::uint8_t> encode_tail() const;
  [[nodiscard]] slog2::detail::Collected decode_chunk(std::size_t index);
  [[nodiscard]] std::shared_ptr<const slog2::Frame> cached_chunk(std::size_t index);
  void scan_warn(std::int32_t rank, const std::string& msg);
  [[nodiscard]] slog2::detail::Collected collect_all();
  void fill_pairing_stats(slog2::ConvertStats& stats) const;

  OnlineOptions opts_;
  bool begun_ = false;
  bool finalized_ = false;
  std::int32_t nranks_ = 0;

  // Category table + event-id index, grown from definition records.
  std::vector<slog2::Category> categories_;
  slog2::detail::EventIdIndex index_;
  std::int32_t next_cat_ = 1;
  bool any_instance_ = false;

  // Reorder stage.
  std::priority_queue<PendingInst, std::vector<PendingInst>, std::greater<>> heap_;
  std::uint64_t heap_bytes_ = 0;
  double watermark_ = 0.0;
  double last_admitted_t_ = 0.0;
  std::uint64_t inst_idx_ = 0;
  double last_time_seen_ = 0.0;

  // Pairing stage (mirrors the offline per-rank / per-key task state).
  std::map<std::int32_t, RankState> ranks_;
  std::map<MsgKey, MsgQueues> msgs_;
  std::uint64_t open_bytes_ = 0;   // open stacks + unmatched halves

  // Committed tail, in commit order per kind.
  std::vector<slog2::StateDrawable> tail_states_;
  std::vector<slog2::EventDrawable> tail_events_;
  std::vector<slog2::ArrowDrawable> tail_arrows_;
  std::uint64_t tail_bytes_ = 0;
  double tail_lo_ = 0.0, tail_hi_ = 0.0;
  bool tail_any_ = false;

  // Sealed chunks + spill file (append-only). Decoded chunks live in the
  // process-wide slog2::FrameCache under this converter's private owner id,
  // so N concurrent sessions share one byte-sized budget.
  std::vector<Chunk> chunks_;
  std::filesystem::path spill_file_;
  slog2::FrameCache::Owner cache_owner_ = 0;

  // Warnings and counters, replayed at finalize in the offline order.
  std::vector<std::string> scan_warnings_;
  std::uint64_t unmatched_state_ends_ = 0;
  std::uint64_t unknown_event_ids_ = 0;

  OnlineUsage usage_;
};

}  // namespace traced

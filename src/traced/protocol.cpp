#include "traced/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace traced {

namespace {

struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  [[nodiscard]] bool done() const { return i >= s.size(); }
  [[nodiscard]] char peek() const {
    if (done()) throw util::IoError("json: unexpected end of line");
    return s[i];
  }
  char take() {
    const char c = peek();
    ++i;
    return c;
  }
  void skip_ws() {
    while (!done() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) ++i;
  }
  void expect(char c) {
    if (take() != c)
      throw util::IoError(util::strprintf("json: expected '%c' at offset %zu", c,
                                          i - 1));
  }
};

std::string parse_string(Cursor& c) {
  c.expect('"');
  std::string out;
  for (;;) {
    const char ch = c.take();
    if (ch == '"') return out;
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    const char esc = c.take();
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        // Only the escapes json_escape emits (\u00XX for control bytes).
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = c.take();
          code <<= 4;
          if (h >= '0' && h <= '9')
            code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F')
            code |= static_cast<unsigned>(h - 'A' + 10);
          else
            throw util::IoError("json: bad \\u escape");
        }
        if (code > 0xFF)
          throw util::IoError("json: \\u escape beyond latin-1 unsupported");
        out.push_back(static_cast<char>(code));
        break;
      }
      default:
        throw util::IoError(util::strprintf("json: bad escape '\\%c'", esc));
    }
  }
}

}  // namespace

JsonObject JsonObject::parse(const std::string& line) {
  Cursor c{line};
  JsonObject obj;
  c.skip_ws();
  c.expect('{');
  c.skip_ws();
  if (!c.done() && c.peek() == '}') {
    c.take();
    return obj;
  }
  for (;;) {
    c.skip_ws();
    std::string key = parse_string(c);
    c.skip_ws();
    c.expect(':');
    c.skip_ws();
    Value v;
    const char ch = c.peek();
    if (ch == '"') {
      v.kind = Kind::kString;
      v.text = parse_string(c);
    } else if (ch == 't') {
      for (const char* p = "true"; *p; ++p) c.expect(*p);
      v.kind = Kind::kBool;
      v.text = "true";
    } else if (ch == 'f') {
      for (const char* p = "false"; *p; ++p) c.expect(*p);
      v.kind = Kind::kBool;
      v.text = "false";
    } else if (ch == 'n') {
      for (const char* p = "null"; *p; ++p) c.expect(*p);
      v.kind = Kind::kNull;
    } else if (ch == '-' || (ch >= '0' && ch <= '9')) {
      v.kind = Kind::kNumber;
      const std::size_t start = c.i;
      if (ch == '-') c.take();
      while (!c.done() && (std::isdigit(static_cast<unsigned char>(c.peek())) != 0 ||
                           c.peek() == '.' || c.peek() == 'e' || c.peek() == 'E' ||
                           c.peek() == '+' || c.peek() == '-'))
        c.take();
      v.text = line.substr(start, c.i - start);
      if (v.text.empty() || v.text == "-")
        throw util::IoError("json: malformed number");
    } else if (ch == '{' || ch == '[') {
      throw util::IoError("json: nested values are not part of this protocol");
    } else {
      throw util::IoError(util::strprintf("json: unexpected '%c'", ch));
    }
    if (!obj.fields_.emplace(std::move(key), std::move(v)).second)
      throw util::IoError("json: duplicate key");
    c.skip_ws();
    const char nxt = c.take();
    if (nxt == '}') break;
    if (nxt != ',') throw util::IoError("json: expected ',' or '}'");
  }
  c.skip_ws();
  if (!c.done()) throw util::IoError("json: trailing bytes after object");
  return obj;
}

std::string JsonObject::str(const std::string& key) const {
  const auto it = fields_.find(key);
  if (it == fields_.end() || it->second.kind != Kind::kString)
    throw util::IoError("json: missing string field \"" + key + "\"");
  return it->second.text;
}

std::int64_t JsonObject::num(const std::string& key) const {
  const auto it = fields_.find(key);
  if (it == fields_.end() || it->second.kind != Kind::kNumber)
    throw util::IoError("json: missing numeric field \"" + key + "\"");
  return std::strtoll(it->second.text.c_str(), nullptr, 10);
}

double JsonObject::fnum(const std::string& key) const {
  const auto it = fields_.find(key);
  if (it == fields_.end() || it->second.kind != Kind::kNumber)
    throw util::IoError("json: missing numeric field \"" + key + "\"");
  return std::strtod(it->second.text.c_str(), nullptr);
}

bool JsonObject::boolean(const std::string& key) const {
  const auto it = fields_.find(key);
  if (it == fields_.end() || it->second.kind != Kind::kBool)
    throw util::IoError("json: missing boolean field \"" + key + "\"");
  return it->second.text == "true";
}

std::string JsonObject::str_or(const std::string& key,
                               const std::string& fallback) const {
  const auto it = fields_.find(key);
  return (it != fields_.end() && it->second.kind == Kind::kString) ? it->second.text
                                                                   : fallback;
}

std::int64_t JsonObject::num_or(const std::string& key, std::int64_t fallback) const {
  const auto it = fields_.find(key);
  return (it != fields_.end() && it->second.kind == Kind::kNumber)
             ? std::strtoll(it->second.text.c_str(), nullptr, 10)
             : fallback;
}

double JsonObject::fnum_or(const std::string& key, double fallback) const {
  const auto it = fields_.find(key);
  return (it != fields_.end() && it->second.kind == Kind::kNumber)
             ? std::strtod(it->second.text.c_str(), nullptr)
             : fallback;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20)
          out += util::strprintf("\\u%04x", c);
        else
          out.push_back(raw);
    }
  }
  return out;
}

void JsonWriter::sep() {
  if (!first_) out_.push_back(',');
  first_ = false;
}

JsonWriter& JsonWriter::field(const std::string& key, const std::string& value) {
  sep();
  out_ += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const char* value) {
  return field(key, std::string(value));
}

JsonWriter& JsonWriter::field(const std::string& key, std::int64_t value) {
  sep();
  out_ += "\"" + json_escape(key) + "\":" + std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, std::uint64_t value) {
  sep();
  out_ += "\"" + json_escape(key) + "\":" + std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, double value) {
  sep();
  out_ += "\"" + json_escape(key) + "\":" + util::strprintf("%.17g", value);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, bool value) {
  sep();
  out_ += "\"" + json_escape(key) + "\":" + (value ? "true" : "false");
  return *this;
}

std::string JsonWriter::done() {
  out_.push_back('}');
  return std::move(out_);
}

}  // namespace traced

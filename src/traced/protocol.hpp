// Wire protocol helpers for pilot-traced: newline-delimited JSON.
//
// Every request and response is one flat JSON object on one line — string,
// number, and boolean values only, no nesting. That deliberately small
// shape keeps the parser a page long and the protocol driveable from a
// shell script or test without a JSON library on the client side. The one
// non-JSON element is the `feed` op, whose line is followed by exactly
// `bytes` raw bytes of CLOG-2 stream data (framing documented in
// docs/TRACED.md).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace traced {

/// A parsed flat JSON object. Values keep their JSON flavour so numbers
/// round-trip exactly and `"8"` is distinguishable from `8`.
class JsonObject {
public:
  /// Parse one flat object. Throws util::IoError on malformed input,
  /// nesting, or duplicate keys.
  static JsonObject parse(const std::string& line);

  [[nodiscard]] bool has(const std::string& key) const {
    return fields_.count(key) != 0;
  }
  /// Required accessors throw util::IoError when missing or mistyped —
  /// the service turns that into an error response for the client.
  [[nodiscard]] std::string str(const std::string& key) const;
  [[nodiscard]] std::int64_t num(const std::string& key) const;
  [[nodiscard]] double fnum(const std::string& key) const;
  [[nodiscard]] bool boolean(const std::string& key) const;
  /// Optional accessors.
  [[nodiscard]] std::string str_or(const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] std::int64_t num_or(const std::string& key,
                                    std::int64_t fallback) const;
  [[nodiscard]] double fnum_or(const std::string& key, double fallback) const;

private:
  enum class Kind : std::uint8_t { kString, kNumber, kBool, kNull };
  struct Value {
    Kind kind = Kind::kNull;
    std::string text;  // raw for numbers, decoded for strings
  };
  std::map<std::string, Value> fields_;
};

/// Incremental writer for one flat JSON object line.
class JsonWriter {
public:
  JsonWriter() : out_("{") {}
  JsonWriter& field(const std::string& key, const std::string& value);
  JsonWriter& field(const std::string& key, const char* value);
  JsonWriter& field(const std::string& key, std::int64_t value);
  JsonWriter& field(const std::string& key, std::uint64_t value);
  JsonWriter& field(const std::string& key, double value);
  JsonWriter& field(const std::string& key, bool value);
  /// Finish and return the line (no trailing newline).
  [[nodiscard]] std::string done();

private:
  void sep();
  std::string out_;
  bool first_ = true;
};

/// JSON string escaping (control chars, quote, backslash).
std::string json_escape(const std::string& s);

}  // namespace traced

#include "traced/service.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <mutex>
#include <thread>

#include "jumpshot/render.hpp"
#include "query/slog2_rollup.hpp"
#include "traced/protocol.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace traced {

namespace {

/// One feed payload may not exceed this (a hostile length would otherwise
/// force a giant allocation before any session check runs).
constexpr std::int64_t kMaxFeedBytes = 64 * 1024 * 1024;

const char* phase_name(SessionPhase p) {
  switch (p) {
    case SessionPhase::kOpen: return "open";
    case SessionPhase::kComplete: return "complete";
    case SessionPhase::kFinalized: return "finalized";
    case SessionPhase::kFailed: return "failed";
  }
  return "?";
}

std::string error_line(const std::string& msg) {
  return JsonWriter().field("ok", false).field("error", msg).done();
}

}  // namespace

Service::Service(const ServiceOptions& opts)
    : opts_(opts),
      sessions_(opts.max_sessions),
      pool_(opts.workers) {}

double Service::now() const {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

std::shared_ptr<Session> Service::open_session(const std::string& name) {
  auto s = sessions_.open(name, opts_.online);
  s->touch(now());
  return s;
}

void Service::ingest_bytes(const std::shared_ptr<Session>& s,
                           std::vector<std::uint8_t> bytes) {
  s->touch(now());
  pool_.submit(s, std::move(bytes));
}

void Service::ingest_eof(const std::shared_ptr<Session>& s) {
  s->touch(now());
  pool_.submit_eof(s);
}

std::string Service::handle(
    const std::string& line,
    const std::function<bool(void*, std::size_t)>& read_payload) {
  try {
    return dispatch(line, read_payload);
  } catch (const util::Error& e) {
    return error_line(e.what());
  }
}

std::string Service::dispatch(
    const std::string& line,
    const std::function<bool(void*, std::size_t)>& read_payload) {
  const JsonObject req = JsonObject::parse(line);
  const std::string op = req.str("op");

  auto need_session = [&]() -> std::shared_ptr<Session> {
    const std::string name = req.str("session");
    auto s = sessions_.find(name);
    if (!s) throw util::UsageError("no such session: " + name);
    s->touch(req.fnum_or("now", now()));
    return s;
  };

  if (op == "ping") return JsonWriter().field("ok", true).field("op", "ping").done();

  if (op == "open") {
    const std::string name = req.str("session");
    OnlineOptions o = opts_.online;
    o.convert.frame_size =
        static_cast<std::uint64_t>(req.num_or("framesize",
            static_cast<std::int64_t>(o.convert.frame_size)));
    o.convert.max_depth = static_cast<int>(req.num_or("maxdepth", o.convert.max_depth));
    o.convert.threads = static_cast<int>(req.num_or("threads", o.convert.threads));
    o.seal_bytes = static_cast<std::uint64_t>(
        req.num_or("seal", static_cast<std::int64_t>(o.seal_bytes)));
    o.max_disorder = req.fnum_or("disorder", o.max_disorder);
    o.convert.encoding = slog2::parse_frame_encoding(
        req.str_or("encoding", slog2::to_string(o.convert.encoding)));
    auto s = sessions_.open(name, o);
    s->touch(req.fnum_or("now", now()));
    return JsonWriter().field("ok", true).field("session", name).done();
  }

  if (op == "feed") {
    const std::string name = req.str("session");
    const std::int64_t n = req.num("bytes");
    if (n < 0 || n > kMaxFeedBytes)
      throw util::IoError("feed: invalid byte count " + std::to_string(n));
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(n));
    // Always consume the payload, even for an unknown session — otherwise
    // the connection desynchronizes and every later line is garbage.
    if (n > 0 && !read_payload(bytes.data(), bytes.size()))
      throw util::IoError("feed: connection closed before payload");
    auto s = sessions_.find(name);
    if (!s) throw util::UsageError("no such session: " + name);
    s->touch(req.fnum_or("now", now()));
    pool_.submit(s, std::move(bytes));
    return JsonWriter().field("ok", true).field("queued", n).done();
  }

  if (op == "end") {
    auto s = need_session();
    pool_.submit_eof(s);
    return JsonWriter().field("ok", true).done();
  }

  if (op == "status") {
    auto s = need_session();
    if (req.has("sync") && req.boolean("sync")) pool_.drain();
    const Session::Status st = s->status();
    JsonWriter w;
    w.field("ok", true)
        .field("session", s->name())
        .field("phase", phase_name(st.phase))
        .field("nranks", static_cast<std::int64_t>(st.nranks))
        .field("records", st.records)
        .field("bytes", st.bytes)
        .field("watermark", st.watermark)
        .field("frontier", st.frontier)
        .field("live_bytes", st.usage.live_bytes)
        .field("peak_live_bytes", st.usage.peak_live_bytes)
        .field("sealed_chunks", st.usage.sealed_chunks)
        .field("sealed_bytes", st.usage.sealed_bytes);
    if (!st.error.empty()) w.field("error", st.error);
    return w.done();
  }

  if (op == "sessions") {
    const std::vector<std::string> names = sessions_.names();
    std::string joined;
    for (const auto& n : names) {
      if (!joined.empty()) joined.push_back(',');
      joined += n;
    }
    return JsonWriter()
        .field("ok", true)
        .field("count", static_cast<std::uint64_t>(names.size()))
        .field("names", joined)
        .done();
  }

  if (op == "query") {
    auto s = need_session();
    if (req.has("sync") && req.boolean("sync")) pool_.drain();
    const std::string kind = req.str("kind");
    std::string result;
    s->with_converter([&](OnlineConverter& conv) {
      const double a = req.fnum_or("t0", -std::numeric_limits<double>::infinity());
      const double b = req.fnum_or("t1", std::numeric_limits<double>::infinity());
      if (kind == "legend") {
        query::LegendSweep sweep;
        conv.visit_window(
            a, b, [&](const slog2::StateDrawable& st) { sweep.add_state(st); },
            [&](const slog2::EventDrawable& e) { sweep.add_event(e); },
            [&](const slog2::ArrowDrawable& ar) { sweep.add_arrow(ar); });
        for (const auto& [cat, tot] : sweep.totals()) {
          if (!result.empty()) result.push_back(';');
          result += util::strprintf("%d:%llu:%.9f:%.9f", cat,
                                    static_cast<unsigned long long>(tot.count),
                                    tot.inclusive, tot.exclusive);
        }
      } else if (kind == "occupancy") {
        query::WindowOccupancy occ(conv.nranks(), a, b);
        conv.visit_window(
            a, b, [&](const slog2::StateDrawable& st) { occ.add_state(st); },
            [&](const slog2::EventDrawable& e) { occ.add_event(e); },
            [&](const slog2::ArrowDrawable& ar) { occ.add_arrow(ar); });
        std::int32_t rank = 0;
        for (const auto& r : occ.ranks()) {
          if (!result.empty()) result.push_back(';');
          double busy = 0.0;
          std::uint64_t nstates = 0;
          for (const auto& kv : r.state_time) busy += kv.second;
          for (const auto& kv : r.state_count) nstates += kv.second;
          result += util::strprintf(
              "%d:%.9f:%llu:%llu:%llu", rank++, busy,
              static_cast<unsigned long long>(nstates),
              static_cast<unsigned long long>(r.arrows_out),
              static_cast<unsigned long long>(r.arrows_in));
        }
      } else if (kind == "edges") {
        std::map<std::pair<std::int32_t, std::int32_t>,
                 std::pair<std::uint64_t, std::uint64_t>>
            edges;  // (src,dst) -> (count, bytes)
        conv.visit_window(a, b, nullptr, nullptr,
                          [&](const slog2::ArrowDrawable& ar) {
                            auto& e = edges[{ar.src_rank, ar.dst_rank}];
                            ++e.first;
                            e.second += ar.size;
                          });
        for (const auto& [key, val] : edges) {
          if (!result.empty()) result.push_back(';');
          result += util::strprintf("%d>%d:%llu:%llu", key.first, key.second,
                                    static_cast<unsigned long long>(val.first),
                                    static_cast<unsigned long long>(val.second));
        }
      } else {
        throw util::UsageError("unknown query kind: " + kind);
      }
    });
    return JsonWriter()
        .field("ok", true)
        .field("kind", kind)
        .field("result", result)
        .done();
  }

  if (op == "render") {
    auto s = need_session();
    if (req.has("sync") && req.boolean("sync")) pool_.drain();
    std::string svg;
    s->with_converter([&](OnlineConverter& conv) {
      slog2::File snap = conv.snapshot();
      slog2::Navigator nav(slog2::serialize(snap));
      jumpshot::RenderOptions ro;
      if (req.has("t0")) ro.t0 = req.fnum("t0");
      if (req.has("t1")) ro.t1 = req.fnum("t1");
      ro.width = static_cast<int>(req.num_or("width", ro.width));
      ro.title = req.str_or("title", "live: " + s->name());
      svg = jumpshot::render_svg(nav, ro);
    });
    return JsonWriter()
        .field("ok", true)
        .field("bytes", static_cast<std::uint64_t>(svg.size()))
        .field("svg", svg)
        .done();
  }

  if (op == "finalize") {
    auto s = need_session();
    pool_.drain();  // every queued chunk must be applied before finalizing
    // Zero sealed chunks on a non-empty stream means the whole trace sat in
    // the in-memory tail: almost always a --seal / --disorder setting that
    // never triggered for this trace's time scale (e.g. a millisecond-long
    // tracegen stream against the 0.05 s default disorder window). Surface
    // it as a hint, not a converter warning — the warnings vector must stay
    // identical to the offline converter's.
    const Session::Status pre = s->status();
    const bool zero_seal = pre.usage.sealed_chunks == 0 && pre.records > 0;
    const std::string out_path = req.str_or("out", "");
    std::vector<std::string> warnings;
    JsonWriter w;
    s->finalize(&warnings, [&](slog2::File& file) {
      const std::vector<std::uint8_t> bytes = slog2::serialize(file);
      if (!out_path.empty())
        util::write_file(std::filesystem::path(out_path), bytes);
      w.field("ok", true)
          .field("session", s->name())
          .field("slog2_bytes", static_cast<std::uint64_t>(bytes.size()))
          .field("states", file.stats.total_states)
          .field("events", file.stats.total_events)
          .field("arrows", file.stats.total_arrows)
          .field("frames", file.stats.frames)
          .field("clean", file.stats.clean())
          .field("warnings", static_cast<std::uint64_t>(warnings.size()));
      if (zero_seal)
        w.field("hint",
                std::string("finalize sealed 0 chunks; the entire stream was "
                            "buffered in memory (consider a smaller --seal or "
                            "--disorder for this trace's time scale)"));
      if (!out_path.empty()) w.field("out", out_path);
    });
    if (zero_seal)
      log("finalize " + s->name() +
          ": sealed 0 chunks; entire stream was buffered in memory "
          "(consider a smaller --seal or --disorder for this trace's "
          "time scale)");
    return w.done();
  }

  if (op == "sweep") {
    const double t = req.fnum_or("now", now());
    const double ttl = req.fnum_or("ttl", opts_.ttl);
    const std::vector<std::string> evicted = sessions_.evict_idle(t, ttl);
    std::string joined;
    for (const auto& n : evicted) {
      if (!joined.empty()) joined.push_back(',');
      joined += n;
    }
    return JsonWriter()
        .field("ok", true)
        .field("evicted", static_cast<std::uint64_t>(evicted.size()))
        .field("names", joined)
        .done();
  }

  if (op == "close") {
    const std::string name = req.str("session");
    if (!sessions_.erase(name))
      throw util::UsageError("no such session: " + name);
    return JsonWriter().field("ok", true).done();
  }

  if (op == "shutdown") {
    shutdown_.store(true);
    return JsonWriter().field("ok", true).field("op", "shutdown").done();
  }

  throw util::UsageError("unknown op: " + op);
}

// --- serve ------------------------------------------------------------------

namespace {

void log_event(const std::function<void(const std::string&)>& on_event,
               const std::string& msg) {
  if (on_event) on_event(msg);
}

/// Reads one FIFO (or pipe/file) into one session until EOF. Non-blocking
/// open so a missing writer never wedges the thread; "no writer yet" and
/// "writer closed" are distinguished by whether any writer was ever seen.
void run_fifo_ingest(Service& service, const FifoIngest& fi,
                     const std::function<void(const std::string&)>& on_event) {
  std::shared_ptr<Session> session;
  try {
    session = service.open_session(fi.session);
  } catch (const util::Error& e) {
    log_event(on_event, "ingest " + fi.session + ": " + e.what());
    return;
  }
  const int fd = ::open(fi.path.c_str(), O_RDONLY | O_NONBLOCK | O_CLOEXEC);
  if (fd < 0) {
    log_event(on_event, "ingest " + fi.session + ": cannot open " +
                            fi.path.string() + ": " + std::strerror(errno));
    return;
  }
  log_event(on_event, "ingest " + fi.session + ": reading " + fi.path.string());
  bool saw_writer = false;
  std::vector<std::uint8_t> buf(64 * 1024);
  for (;;) {
    if (service.shutdown_requested()) break;
    const ssize_t r = ::read(fd, buf.data(), buf.size());
    if (r > 0) {
      saw_writer = true;
      service.ingest_bytes(session,
                           std::vector<std::uint8_t>(buf.begin(), buf.begin() + r));
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      saw_writer = true;  // a writer holds the pipe open but has no data yet
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r == 0 && !saw_writer) {
      // FIFO with no writer yet; wait for one.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    break;  // EOF after a writer, or a hard error
  }
  ::close(fd);
  service.ingest_eof(session);
  log_event(on_event, "ingest " + fi.session + ": stream ended");
}

}  // namespace

void serve(Service& service, util::UnixListener& listener,
           const std::vector<FifoIngest>& fifos,
           const std::function<void(const std::string&)>& on_event) {
  std::vector<std::thread> fifo_threads;
  fifo_threads.reserve(fifos.size());
  for (const FifoIngest& fi : fifos)
    fifo_threads.emplace_back(
        [&service, fi, on_event] { run_fifo_ingest(service, fi, on_event); });

  std::mutex conn_mu;
  std::vector<int> live_fds;
  std::vector<std::thread> conn_threads;

  while (!service.shutdown_requested()) {
    util::UnixConn conn = listener.accept_for(200);
    if (!conn.valid()) continue;
    {
      std::lock_guard<std::mutex> lock(conn_mu);
      live_fds.push_back(conn.fd());
    }
    conn_threads.emplace_back([&service, &conn_mu, &live_fds,
                               c = std::move(conn)]() mutable {
      const int my_fd = c.fd();
      try {
        std::string line;
        while (c.read_line(&line)) {
          if (line.empty()) continue;
          const std::string resp = service.handle(
              line, [&c](void* buf, std::size_t n) { return c.read_payload(buf, n); });
          c.write_line(resp);
          if (service.shutdown_requested()) break;
        }
      } catch (const util::Error&) {
        // Connection-fatal (payload desync, peer vanished): drop the client.
      }
      std::lock_guard<std::mutex> lock(conn_mu);
      live_fds.erase(std::remove(live_fds.begin(), live_fds.end(), my_fd),
                     live_fds.end());
    });
  }

  // Kick every blocked reader so its thread can observe shutdown and exit.
  {
    std::lock_guard<std::mutex> lock(conn_mu);
    for (const int fd : live_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : conn_threads) t.join();
  for (auto& t : fifo_threads) t.join();
  service.pool().drain();
  log_event(on_event, "shutdown complete");
}

}  // namespace traced

// Request handling + the serve loop of pilot-traced.
//
// Service is transport-agnostic: handle() maps one request line (plus a
// callback for reading the feed op's binary payload) to one response line,
// so tests can drive the full protocol in-process with no socket at all.
// serve() adapts it to a UnixListener (one thread per connection) and an
// optional set of named FIFO ingest files (one reader thread each), which
// is how the daemon accepts `pilot-tracegen --stream > fifo` sources
// without the client speaking any protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "traced/session.hpp"
#include "util/net.hpp"

namespace traced {

struct ServiceOptions {
  OnlineOptions online;          ///< per-session converter defaults
  std::size_t workers = 4;       ///< ingest pool size
  std::size_t max_sessions = 64;
  double ttl = 300.0;            ///< idle-session eviction, seconds
};

class Service {
public:
  explicit Service(const ServiceOptions& opts);

  /// Handle one protocol line. `read_payload` must read exactly n bytes of
  /// the connection's binary payload (only invoked for the feed op); it
  /// returns false on EOF. Never throws: protocol and session errors come
  /// back as {"ok":false,...} responses.
  std::string handle(const std::string& line,
                     const std::function<bool(void*, std::size_t)>& read_payload);

  /// Ingest entry points used by the FIFO reader threads.
  std::shared_ptr<Session> open_session(const std::string& name);
  void ingest_bytes(const std::shared_ptr<Session>& s,
                    std::vector<std::uint8_t> bytes);
  void ingest_eof(const std::shared_ptr<Session>& s);

  /// Monotonic seconds for the idle clock (tests inject "now" via the
  /// sweep op instead).
  [[nodiscard]] double now() const;

  [[nodiscard]] bool shutdown_requested() const { return shutdown_.load(); }
  [[nodiscard]] SessionManager& sessions() { return sessions_; }
  [[nodiscard]] IngestPool& pool() { return pool_; }
  [[nodiscard]] const ServiceOptions& options() const { return opts_; }

  /// Receives one line per operational warning (currently: a finalize that
  /// sealed zero chunks). pilot-traced points this at its event log; tests
  /// capture it. Call before serving — not synchronized against handle().
  void set_logger(std::function<void(const std::string&)> logger) {
    logger_ = std::move(logger);
  }

private:
  std::string dispatch(const std::string& line,
                       const std::function<bool(void*, std::size_t)>& read_payload);
  void log(const std::string& msg) const {
    if (logger_) logger_(msg);
  }

  ServiceOptions opts_;
  SessionManager sessions_;
  IngestPool pool_;
  std::function<void(const std::string&)> logger_;
  std::atomic<bool> shutdown_{false};
};

/// One named FIFO (or regular file / pipe) to ingest as a session.
struct FifoIngest {
  std::string session;
  std::filesystem::path path;
};

/// Accept loop: connection threads for the socket, reader threads for the
/// FIFOs. Returns when a shutdown request arrives (and all connection
/// threads have been joined). `on_event` (optional) receives one line per
/// notable event for logging.
void serve(Service& service, util::UnixListener& listener,
           const std::vector<FifoIngest>& fifos,
           const std::function<void(const std::string&)>& on_event = {});

}  // namespace traced

#include "traced/session.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace traced {

// --- Session ----------------------------------------------------------------

void Session::fail(const std::string& why) {
  phase_ = SessionPhase::kFailed;
  if (error_.empty()) error_ = why;
}

void Session::feed(const std::uint8_t* data, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_ == SessionPhase::kFailed) return;  // sticky; drop the rest
  if (phase_ != SessionPhase::kOpen) {
    fail("bytes arrived after the stream completed");
    return;
  }
  try {
    reader_.feed(data, n);
    bytes_ += n;
    clog2::Record rec;
    for (;;) {
      const clog2::StreamReader::Status st = reader_.next(&rec);
      if (reader_.header_done() && !begun_) {
        conv_.begin(reader_.nranks());
        begun_ = true;
      }
      if (st == clog2::StreamReader::Status::kNeedMoreData) break;
      if (st == clog2::StreamReader::Status::kEnd) {
        phase_ = SessionPhase::kComplete;
        break;
      }
      conv_.push(rec);
    }
  } catch (const util::Error& e) {
    fail(e.what());
  }
}

void Session::end_of_stream() {
  std::lock_guard<std::mutex> lock(mu_);
  if (eof_) return;
  eof_ = true;
  if (phase_ == SessionPhase::kOpen)
    fail("stream ended before the CLOG-2 end-of-log marker");
}

Session::Status Session::status() {
  std::lock_guard<std::mutex> lock(mu_);
  Status st;
  st.phase = phase_;
  st.error = error_;
  st.nranks = begun_ ? conv_.nranks() : 0;
  st.records = reader_.records_read();
  st.bytes = bytes_;
  if (begun_) {
    st.watermark = conv_.watermark();
    st.frontier = conv_.admitted_frontier();
    st.usage = conv_.usage();
  }
  return st;
}

void Session::with_converter(const std::function<void(OnlineConverter&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_ == SessionPhase::kFailed)
    throw util::UsageError("session " + name_ + " failed: " + error_);
  if (!begun_)
    throw util::UsageError("session " + name_ + " has no stream header yet");
  fn(conv_);
}

void Session::finalize(std::vector<std::string>* warnings,
                       const std::function<void(slog2::File&)>& consume) {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_ == SessionPhase::kFailed)
    throw util::UsageError("session " + name_ + " failed: " + error_);
  if (phase_ == SessionPhase::kFinalized)
    throw util::UsageError("session " + name_ + " already finalized");
  if (phase_ != SessionPhase::kComplete)
    throw util::UsageError("session " + name_ +
                           " is still streaming (no end-of-log marker yet)");
  slog2::File out = conv_.finalize(warnings);
  phase_ = SessionPhase::kFinalized;
  consume(out);
}

void Session::touch(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  last_active_ = std::max(last_active_, now);
}

double Session::last_active() {
  std::lock_guard<std::mutex> lock(mu_);
  return last_active_;
}

// --- SessionManager ---------------------------------------------------------

std::shared_ptr<Session> SessionManager::open(const std::string& name,
                                              const OnlineOptions& opts) {
  if (name.empty()) throw util::UsageError("session name must not be empty");
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.count(name) != 0)
    throw util::UsageError("session " + name + " already exists");
  if (sessions_.size() >= max_sessions_)
    throw util::UsageError("session cap reached (" +
                           std::to_string(max_sessions_) + ")");
  auto s = std::make_shared<Session>(name, opts);
  sessions_.emplace(name, s);
  return s;
}

std::shared_ptr<Session> SessionManager::find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionManager::erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.erase(name) != 0;
}

std::vector<std::string> SessionManager::names() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [name, s] : sessions_) out.push_back(name);
  return out;
}

std::vector<std::string> SessionManager::evict_idle(double now, double ttl) {
  // Collect candidates under the registry lock, but read each session's
  // clock outside it (last_active takes the session lock).
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.reserve(sessions_.size());
    for (const auto& [name, s] : sessions_) all.push_back(s);
  }
  std::vector<std::string> evicted;
  for (const auto& s : all)
    if (s->last_active() + ttl < now) evicted.push_back(s->name());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& name : evicted) sessions_.erase(name);
  }
  return evicted;
}

// --- IngestPool -------------------------------------------------------------

IngestPool::IngestPool(std::size_t workers, std::size_t max_queued_bytes)
    : queues_(std::max<std::size_t>(1, workers)),
      max_queued_bytes_(std::max<std::size_t>(1, max_queued_bytes)) {
  threads_.reserve(queues_.size());
  for (std::size_t i = 0; i < queues_.size(); ++i)
    threads_.emplace_back([this, i] { run_worker(i); });
}

IngestPool::~IngestPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void IngestPool::enqueue(const std::shared_ptr<Session>& s, Job job) {
  const std::size_t shard =
      std::hash<std::string>{}(s->name()) % queues_.size();
  const std::size_t cost = job.bytes.size();
  std::unique_lock<std::mutex> lock(mu_);
  cv_space_.wait(lock, [&] {
    return stopping_ || queued_bytes_ + cost <= max_queued_bytes_ ||
           queued_bytes_ == 0;
  });
  if (stopping_) return;
  queued_bytes_ += cost;
  queues_[shard].jobs.push_back(std::move(job));
  lock.unlock();
  cv_work_.notify_all();
}

void IngestPool::submit(const std::shared_ptr<Session>& s,
                        std::vector<std::uint8_t> bytes) {
  Job job;
  job.session = s;
  job.bytes = std::move(bytes);
  enqueue(s, std::move(job));
}

void IngestPool::submit_eof(const std::shared_ptr<Session>& s) {
  Job job;
  job.session = s;
  job.eof = true;
  enqueue(s, std::move(job));
}

void IngestPool::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_space_.wait(lock, [&] {
    if (queued_bytes_ != 0) return false;
    for (const Queue& q : queues_)
      if (!q.jobs.empty() || q.busy) return false;
    return true;
  });
}

void IngestPool::run_worker(std::size_t idx) {
  Queue& q = queues_[idx];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stopping_ || !q.jobs.empty(); });
      if (q.jobs.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(q.jobs.front());
      q.jobs.pop_front();
      q.busy = true;
    }
    if (job.eof)
      job.session->end_of_stream();
    else if (!job.bytes.empty())
      job.session->feed(job.bytes.data(), job.bytes.size());
    {
      std::lock_guard<std::mutex> lock(mu_);
      q.busy = false;
      queued_bytes_ -= job.bytes.size();
    }
    cv_space_.notify_all();
  }
}

}  // namespace traced

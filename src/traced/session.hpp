// Session layer of pilot-traced: one Session per ingest stream, a
// SessionManager owning them, and an IngestPool sharding decode+convert
// work across a fixed set of worker threads.
//
// Concurrency model: a Session's reader/converter state is guarded by a
// per-session mutex, and the IngestPool routes every chunk of one session
// to the same worker (by name hash), so feeds of one session are applied
// in arrival order while different sessions proceed in parallel. Query
// threads take the same mutex, so a query observes a record-aligned prefix
// of the stream, never a half-applied record. Byte-capped backpressure in
// submit() bounds the bytes in flight; the converter bounds everything
// else (docs/TRACED.md).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "clog2/clog2.hpp"
#include "traced/online_convert.hpp"

namespace traced {

/// Lifecycle of one ingest session.
enum class SessionPhase : std::uint8_t {
  kOpen = 0,       ///< accepting bytes
  kComplete = 1,   ///< end-of-log marker seen; awaiting finalize
  kFinalized = 2,  ///< finalize() ran; trace written/retrievable
  kFailed = 3,     ///< stream error; error() says why
};

class Session {
public:
  Session(std::string name, const OnlineOptions& opts)
      : name_(std::move(name)), conv_(opts) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Apply a chunk of raw stream bytes: decode every record that completes
  /// and push it through the converter. A stream error moves the session
  /// to kFailed (sticky) instead of throwing — ingest is asynchronous, so
  /// errors surface through status().
  void feed(const std::uint8_t* data, std::size_t n);
  /// The writer closed its stream. Valid only once; a stream that ends
  /// before the end-of-log marker fails the session.
  void end_of_stream();

  struct Status {
    SessionPhase phase = SessionPhase::kOpen;
    std::string error;
    std::int32_t nranks = 0;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    double watermark = 0.0;
    double frontier = 0.0;
    OnlineUsage usage;
  };
  [[nodiscard]] Status status();

  /// Run `fn` with the converter under the session lock (queries,
  /// snapshots). Throws util::UsageError if the stream never produced a
  /// header or the session failed.
  void with_converter(const std::function<void(OnlineConverter&)>& fn);

  /// Finalize the conversion (stream must be kComplete) and hand the file
  /// to `consume` under the lock. Moves the session to kFinalized.
  void finalize(std::vector<std::string>* warnings,
                const std::function<void(slog2::File&)>& consume);

  /// Idle-eviction clock, in caller-defined seconds (the daemon passes a
  /// monotonic clock; tests pass a fake one).
  void touch(double now);
  [[nodiscard]] double last_active();

private:
  void fail(const std::string& why);

  std::string name_;
  std::mutex mu_;
  clog2::StreamReader reader_;
  OnlineConverter conv_;
  bool begun_ = false;
  bool eof_ = false;
  SessionPhase phase_ = SessionPhase::kOpen;
  std::string error_;
  std::uint64_t bytes_ = 0;
  double last_active_ = 0.0;
};

/// Name → session registry. All operations are safe to call from any
/// thread; sessions are handed out as shared_ptr so eviction never races
/// an in-flight feed or query.
class SessionManager {
public:
  explicit SessionManager(std::size_t max_sessions = 64)
      : max_sessions_(max_sessions) {}

  /// Create a session. Throws util::UsageError on duplicate name or at the
  /// session cap.
  std::shared_ptr<Session> open(const std::string& name, const OnlineOptions& opts);
  /// nullptr if absent.
  std::shared_ptr<Session> find(const std::string& name);
  bool erase(const std::string& name);
  [[nodiscard]] std::vector<std::string> names();

  /// Drop every session idle since before `now - ttl`. Returns the evicted
  /// names (the daemon logs them).
  std::vector<std::string> evict_idle(double now, double ttl);

private:
  std::mutex mu_;
  std::size_t max_sessions_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
};

/// Fixed worker pool applying ingest chunks. Chunks of one session always
/// land on the same worker (name-hash sharding), which serializes that
/// session's stream while letting distinct sessions run concurrently.
class IngestPool {
public:
  /// `max_queued_bytes` caps bytes buffered across all workers; submit()
  /// blocks (backpressure onto the ingest socket/FIFO) when full.
  explicit IngestPool(std::size_t workers = 4,
                      std::size_t max_queued_bytes = 64 * 1024 * 1024);
  ~IngestPool();
  IngestPool(const IngestPool&) = delete;
  IngestPool& operator=(const IngestPool&) = delete;

  void submit(const std::shared_ptr<Session>& s, std::vector<std::uint8_t> bytes);
  void submit_eof(const std::shared_ptr<Session>& s);
  /// Block until every queued chunk has been applied.
  void drain();

  [[nodiscard]] std::size_t workers() const { return queues_.size(); }

private:
  struct Job {
    std::shared_ptr<Session> session;
    std::vector<std::uint8_t> bytes;
    bool eof = false;
  };
  struct Queue {
    std::deque<Job> jobs;
    bool busy = false;
  };

  void run_worker(std::size_t idx);
  void enqueue(const std::shared_ptr<Session>& s, Job job);

  std::mutex mu_;
  std::condition_variable cv_work_;   // workers wait for jobs
  std::condition_variable cv_space_;  // submitters wait for backpressure/drain
  std::vector<Queue> queues_;
  std::vector<std::thread> threads_;
  std::size_t queued_bytes_ = 0;
  std::size_t max_queued_bytes_;
  bool stopping_ = false;
};

}  // namespace traced

#include "tracegen/tracegen.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/prng.hpp"
#include "util/strings.hpp"

namespace tracegen {

namespace {

constexpr const char* kColors[] = {"red",    "green",  "blue",   "yellow",
                                   "cyan",   "magenta", "orange", "gray",
                                   "purple", "pink"};
constexpr std::size_t kNColors = sizeof(kColors) / sizeof(kColors[0]);

// Real clocks tick. Every clock value is rounded to a 2^-24 s grid (~60 ns,
// the resolution class of the timers finish_log records); a binary tick keeps
// each timestamp exactly representable as a double, so the emitted stream is
// what a finite-resolution timer would have produced rather than a sequence
// of full-entropy mantissas.
constexpr int kClockTickBits = 24;

double quantize(double t) {
  return std::ldexp(std::round(std::ldexp(t, kClockTickBits)), -kClockTickBits);
}

struct PendingMsg {
  double arrival = 0.0;
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint32_t size = 0;
  bool operator>(const PendingMsg& o) const { return arrival > o.arrival; }
};

struct RankState {
  double clock = 0.0;
  std::vector<int> open;  // stack of open state category indices
  std::priority_queue<PendingMsg, std::vector<PendingMsg>, std::greater<>> inbox;
};

}  // namespace

clog2::File generate(const Options& opts) {
  if (opts.nranks < 1) throw util::UsageError("tracegen: nranks must be >= 1");
  if (opts.nranks > kMaxRanks)
    throw util::UsageError(util::strprintf(
        "tracegen: nranks must be <= %d (got %d)", kMaxRanks, opts.nranks));
  if (opts.state_categories < 1)
    throw util::UsageError("tracegen: need at least one state category");
  if (opts.max_depth < 1) throw util::UsageError("tracegen: max_depth must be >= 1");
  if (!(opts.mean_step > 0))
    throw util::UsageError("tracegen: mean_step must be positive");

  clog2::File out;
  out.nranks = opts.nranks;
  out.comment = opts.comment;
  // Rough upper bound: every instance plus a close/drain tail bounded by
  // nranks * max_depth plus in-flight messages.
  out.records.reserve(opts.events + static_cast<std::uint64_t>(opts.nranks) *
                                        static_cast<std::uint64_t>(opts.max_depth) +
                      64);

  // --- definitions -----------------------------------------------------------
  auto start_id = [](int cat) { return 1 + 2 * cat; };
  auto end_id = [](int cat) { return 2 + 2 * cat; };
  const int solo_base = 1 + 2 * opts.state_categories;
  for (int c = 0; c < opts.state_categories; ++c) {
    clog2::StateDef d;
    d.state_id = c + 1;
    d.start_event_id = start_id(c);
    d.end_event_id = end_id(c);
    d.name = util::strprintf("work_%d", c);
    d.color = kColors[static_cast<std::size_t>(c) % kNColors];
    out.records.emplace_back(std::move(d));
  }
  for (int c = 0; c < opts.solo_categories; ++c) {
    clog2::EventDef d;
    d.event_id = solo_base + c;
    d.name = util::strprintf("mark_%d", c);
    d.color = kColors[(static_cast<std::size_t>(opts.state_categories + c)) % kNColors];
    out.records.emplace_back(std::move(d));
  }
  out.records.emplace_back(clog2::ConstDef{"tracegen.seed",
                                           static_cast<std::int64_t>(opts.seed)});
  out.records.emplace_back(
      clog2::ConstDef{"tracegen.events", static_cast<std::int64_t>(opts.events)});

  // --- discrete-event generation --------------------------------------------
  // One PRNG per rank keeps a rank's decision stream independent of how the
  // other ranks interleave, and the next-to-act heap always pops the
  // globally smallest clock, so the emitted stream is time-sorted by
  // construction — the same invariant finish_log's merge guarantees.
  util::SplitMix64 seeder(opts.seed);
  std::vector<util::SplitMix64> rng;
  rng.reserve(static_cast<std::size_t>(opts.nranks));
  for (std::int32_t r = 0; r < opts.nranks; ++r) rng.emplace_back(seeder.next());

  std::vector<RankState> ranks(static_cast<std::size_t>(opts.nranks));
  using HeapItem = std::pair<double, std::int32_t>;  // (clock, rank)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> ready;
  for (std::int32_t r = 0; r < opts.nranks; ++r) {
    ranks[static_cast<std::size_t>(r)].clock =
        quantize(rng[static_cast<std::size_t>(r)].uniform() * opts.mean_step);
    ready.emplace(ranks[static_cast<std::size_t>(r)].clock, r);
  }

  std::uint64_t emitted = 0;
  auto advance = [&](std::int32_t r) {
    auto& st = ranks[static_cast<std::size_t>(r)];
    const double next = quantize(
        st.clock + rng[static_cast<std::size_t>(r)].uniform(0.5, 1.5) * opts.mean_step);
    // A mean_step below the tick can round the increment away; force strict
    // progress (off-grid, but the generator must terminate for any options).
    st.clock = next > st.clock
                   ? next
                   : std::nextafter(st.clock, std::numeric_limits<double>::infinity());
    ready.emplace(st.clock, r);
  };

  while (!ready.empty()) {
    const auto [t, r] = ready.top();
    ready.pop();
    auto& st = ranks[static_cast<std::size_t>(r)];
    if (st.clock != t) continue;  // stale heap entry
    auto& rnd = rng[static_cast<std::size_t>(r)];
    const bool draining = emitted >= opts.events;

    if (!st.inbox.empty() && st.inbox.top().arrival <= t) {
      const PendingMsg m = st.inbox.top();
      st.inbox.pop();
      clog2::MsgRec rec;
      rec.timestamp = t;
      rec.rank = r;
      rec.kind = clog2::MsgRec::Kind::kRecv;
      rec.partner = m.src;
      rec.tag = m.tag;
      rec.size = m.size;
      out.records.emplace_back(rec);
      ++emitted;
      advance(r);
      continue;
    }
    if (draining) {
      if (!st.inbox.empty()) {
        // Wait for the in-flight message to arrive.
        st.clock = st.inbox.top().arrival;
        ready.emplace(st.clock, r);
        continue;
      }
      if (!st.open.empty()) {
        const int cat = st.open.back();
        st.open.pop_back();
        out.records.emplace_back(clog2::EventRec{t, r, end_id(cat), ""});
        ++emitted;
        advance(r);
      }
      // Neither inbox nor open states: this rank is done (not re-queued).
      continue;
    }

    if (opts.nranks > 1 && rnd.chance(opts.arrow_fraction)) {
      const auto dst = static_cast<std::int32_t>(
          (r + 1 + static_cast<std::int32_t>(rnd.below(
                       static_cast<std::uint64_t>(opts.nranks - 1)))) %
          opts.nranks);
      clog2::MsgRec rec;
      rec.timestamp = t;
      rec.rank = r;
      rec.kind = clog2::MsgRec::Kind::kSend;
      rec.partner = dst;
      rec.tag = static_cast<std::int32_t>(rnd.below(4));
      rec.size = static_cast<std::uint32_t>(64 + rnd.below(4096));
      out.records.emplace_back(rec);
      ++emitted;
      ranks[static_cast<std::size_t>(dst)].inbox.push(
          PendingMsg{quantize(t + rnd.uniform(0.2, 5.0) * opts.mean_step), r,
                     rec.tag, rec.size});
    } else if (opts.solo_categories > 0 && rnd.chance(opts.solo_fraction)) {
      const int cat = static_cast<int>(
          rnd.below(static_cast<std::uint64_t>(opts.solo_categories)));
      out.records.emplace_back(clog2::EventRec{t, r, solo_base + cat, ""});
      ++emitted;
    } else {
      const bool push = st.open.empty() ||
                        (static_cast<int>(st.open.size()) < opts.max_depth &&
                         rnd.chance(0.5));
      if (push) {
        const int cat = static_cast<int>(
            rnd.below(static_cast<std::uint64_t>(opts.state_categories)));
        st.open.push_back(cat);
        out.records.emplace_back(clog2::EventRec{t, r, start_id(cat), ""});
      } else {
        const int cat = st.open.back();
        st.open.pop_back();
        out.records.emplace_back(clog2::EventRec{t, r, end_id(cat), ""});
      }
      ++emitted;
    }
    advance(r);
  }

  return out;
}

}  // namespace tracegen

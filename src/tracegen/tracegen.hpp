// Seeded synthetic CLOG-2 workload generator.
//
// Produces traces with the same shape finish_log emits — a definition
// block followed by a time-merged stream of state start/end instances,
// solo-event bubbles, and paired send/receive halves — at sizes the real
// mpisim workloads cannot reach in test time (10^5..10^7 instances). The
// pipeline benches sweep these through conversion and rendering, and the
// determinism tests hash multi-threaded conversions of them.
//
// Generation is a small discrete-event simulation driven by util::SplitMix64,
// so a (seed, options) pair yields a bit-identical file on every platform.
#pragma once

#include <cstdint>
#include <string>

#include "clog2/clog2.hpp"

namespace tracegen {

/// Largest world the generator accepts. Per-rank state is a few hundred
/// bytes (RNG stream, open-state stack, pending-message heap), so 16384
/// ranks stay within a few MB while comfortably covering the 10k-rank
/// task-substrate sweeps; a larger request is almost always a typo'd
/// --ranks and would silently eat memory in the per-rank tables instead.
inline constexpr std::int32_t kMaxRanks = 16384;

struct Options {
  std::uint64_t seed = 1;
  std::int32_t nranks = 8;
  /// Instance records (event + message halves) to emit — a floor: the
  /// generator then closes still-open states and delivers in-flight
  /// messages, so every send has a receive and every state an end.
  std::uint64_t events = 100000;
  /// Probability a step emits a message send instead of a state/solo event.
  /// Each send later yields a matching receive, so the arrow density of the
  /// converted file is roughly arrow_fraction * events / 2.
  double arrow_fraction = 0.2;
  /// Probability a non-message step is a solo event rather than a state
  /// transition.
  double solo_fraction = 0.1;
  int state_categories = 4;
  int solo_categories = 2;
  /// Maximum state nesting depth per rank.
  int max_depth = 3;
  /// Mean spacing between consecutive instances on one rank, seconds.
  double mean_step = 1e-5;
  std::string comment = "tracegen synthetic workload";
};

/// Generate the trace in memory (records globally time-ordered, like a
/// finish_log merge).
clog2::File generate(const Options& opts);

}  // namespace tracegen

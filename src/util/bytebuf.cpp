#include "util/bytebuf.hpp"

// Header-only in practice; this TU anchors the library and catches ODR
// problems early.
namespace util {}

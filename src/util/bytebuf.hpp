// Endian-stable binary serialization used by the CLOG-2 and SLOG-2 formats.
//
// All multi-byte values are encoded little-endian regardless of host, so a
// trace written on one machine reads identically on another (the real CLOG-2
// pipeline has the same property via explicit byte order).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace util {

/// Append-only binary encoder.
class ByteWriter {
public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  /// Length-prefixed (u32) byte string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Overwrite a previously written u32 at byte offset `at` (for patching
  /// lengths after the payload is known).
  void patch_u32(std::size_t at, std::uint32_t v) {
    if (at + 4 > buf_.size()) throw UsageError("ByteWriter::patch_u32 out of range");
    for (int i = 0; i < 4; ++i)
      buf_[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }

  std::vector<std::uint8_t> buf_;
};

/// Sequential binary decoder over a borrowed byte range. Throws IoError on
/// overrun so truncated traces fail loudly instead of yielding garbage.
class ByteReader {
public:
  ByteReader(const void* data, std::size_t n)
      : p_(static_cast<const std::uint8_t*>(data)), n_(n) {}
  explicit ByteReader(const std::vector<std::uint8_t>& v)
      : ByteReader(v.data(), v.size()) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    std::uint32_t len = u32();
    const std::uint8_t* p = take(len);
    return std::string(reinterpret_cast<const char*>(p), len);
  }

  /// Borrow `n` raw bytes, advancing the cursor. The bound check compares
  /// against the bytes left (never `pos_ + n`, which a hostile length field
  /// can wrap past the end of size_t).
  const std::uint8_t* take(std::size_t n) {
    if (n > n_ - pos_)
      throw IoError("ByteReader: truncated input (want " + std::to_string(n) +
                    " bytes at offset " + std::to_string(pos_) + ", have " +
                    std::to_string(n_ - pos_) + ")");
    const std::uint8_t* p = p_ + pos_;
    pos_ += n;
    return p;
  }

  /// Validate an element count read from untrusted input: each element
  /// still needs at least `min_bytes` of input, so a hostile count fails
  /// here as a parse error instead of as a giant allocation downstream.
  [[nodiscard]] std::size_t checked_count(std::uint64_t n,
                                          std::size_t min_bytes = 1) const {
    const std::size_t floor = min_bytes == 0 ? 1 : min_bytes;
    if (n > remaining() / floor)
      throw IoError("ByteReader: element count " + std::to_string(n) +
                    " exceeds the " + std::to_string(remaining()) +
                    " bytes of remaining input");
    return static_cast<std::size_t>(n);
  }

  void skip(std::size_t n) { take(n); }
  /// Raw pointer at the cursor without consuming anything. Paired with
  /// remaining()/seek() by the batch varint decoders, which bounds-check a
  /// whole column at once instead of per byte.
  [[nodiscard]] const std::uint8_t* cursor() const { return p_ + pos_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return n_ - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == n_; }
  void seek(std::size_t pos) {
    if (pos > n_) throw IoError("ByteReader::seek out of range");
    pos_ = pos;
  }

private:
  template <typename T>
  T get_le() {
    const std::uint8_t* p = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(p[i]) << (8 * i)));
    return v;
  }

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

}  // namespace util

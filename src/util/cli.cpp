#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) args.emplace_back(argv[i]);
  ingest(args);
}

ArgParser::ArgParser(const std::vector<std::string>& args) { ingest(args); }

void ArgParser::ingest(const std::vector<std::string>& args) {
  if (!args.empty()) program_ = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (starts_with(a, "--")) {
      const auto eq = a.find('=');
      if (eq == std::string::npos) {
        kv_[a.substr(2)] = "true";
      } else {
        kv_[a.substr(2, eq - 2)] = a.substr(eq + 1);
      }
    } else {
      positional_.push_back(a);
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  used_[key] = true;
  return kv_.count(key) != 0;
}

std::optional<std::string> ArgParser::get(const std::string& key) const {
  used_[key] = true;
  auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(const std::string& key, const std::string& fallback) const {
  auto v = get(key);
  return v ? *v : fallback;
}

std::int64_t ArgParser::get_int_or(const std::string& key, std::int64_t fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0')
    throw UsageError("--" + key + " expects an integer, got '" + *v + "'");
  return parsed;
}

double ArgParser::get_double_or(const std::string& key, double fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0')
    throw UsageError("--" + key + " expects a number, got '" + *v + "'");
  return parsed;
}

std::vector<std::string> ArgParser::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : kv_)
    if (!used_.count(k)) out.push_back(k);
  return out;
}

int parse_threads(const ArgParser& args, int fallback) {
  const std::int64_t n = args.get_int_or("threads", fallback);
  if (n < 0 || n > 1024)
    throw UsageError("--threads expects 0 (hardware) .. 1024, got " +
                     std::to_string(n));
  return static_cast<int>(n);
}

std::vector<std::string> strip_args_with_prefix(int* argc, char*** argv,
                                                const std::string& prefix) {
  std::vector<std::string> taken;
  if (argc == nullptr || argv == nullptr || *argv == nullptr) return taken;
  int out = 0;
  for (int i = 0; i < *argc; ++i) {
    std::string a((*argv)[i]);
    if (i > 0 && starts_with(a, prefix)) {
      taken.push_back(a.substr(prefix.size()));
    } else {
      (*argv)[out++] = (*argv)[i];
    }
  }
  for (int i = out; i < *argc; ++i) (*argv)[i] = nullptr;
  *argc = out;
  return taken;
}

}  // namespace util

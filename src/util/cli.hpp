// Command-line helpers.
//
// Two consumers:
//  * tools/examples use ArgParser for ordinary --key=value options;
//  * the Pilot library itself strips its "-pisvc=..." / "-picheck=N" style
//    options out of the user's argc/argv inside PI_Configure, exactly like
//    the real library does (user code never sees Pilot's options).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace util {

/// Minimal --key=value / --flag / positional parser for the CLI tools.
class ArgParser {
public:
  ArgParser(int argc, const char* const* argv);
  explicit ArgParser(const std::vector<std::string>& args);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double_or(const std::string& key, double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Keys that were provided but never queried; lets tools reject typos.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

private:
  void ingest(const std::vector<std::string>& args);

  std::string program_;
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

/// Parse the unified `--threads=N` option shared by every parallel tool
/// (pilot-clog2toslog2, pilot-tracecheck, pilot-tracediff, pilot-tracedigest,
/// pilot-jumpshot): N = 0 means one worker per hardware thread, N >= 1 pins
/// the worker count. Values outside [0, 1024] are a UsageError.
int parse_threads(const ArgParser& args, int fallback = 0);

/// Remove argv entries for which `matches(arg)` returned an engaged value,
/// collecting those values. Used by PI_Configure to strip "-pisvc=..."-style
/// options in place, updating argc/argv like the real Pilot does.
std::vector<std::string> strip_args_with_prefix(int* argc, char*** argv,
                                                const std::string& prefix);

}  // namespace util

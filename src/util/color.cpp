#include "util/color.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace util {

namespace {

struct NamedColor {
  std::string_view name;
  Color color;
};

// The subset of X11 colours referenced by Pilot's colour scheme plus common
// neighbours so users altering pi_colors.hpp have room to move.
constexpr std::array<NamedColor, 38> kColors{{
    {"red", {255, 0, 0}},
    {"green", {0, 255, 0}},
    {"blue", {0, 0, 255}},
    {"white", {255, 255, 255}},
    {"black", {0, 0, 0}},
    {"yellow", {255, 255, 0}},
    {"gray", {128, 128, 128}},
    {"grey", {128, 128, 128}},
    {"lightgray", {211, 211, 211}},
    {"darkgray", {169, 169, 169}},
    {"dimgray", {105, 105, 105}},
    {"silver", {192, 192, 192}},
    {"bisque", {255, 228, 196}},
    {"forestgreen", {34, 139, 34}},
    {"darkgreen", {0, 100, 0}},
    {"seagreen", {46, 139, 87}},
    {"mediumseagreen", {60, 179, 113}},
    {"limegreen", {50, 205, 50}},
    {"palegreen", {152, 251, 152}},
    {"indianred", {205, 92, 92}},
    {"darkred", {139, 0, 0}},
    {"firebrick", {178, 34, 34}},
    {"crimson", {220, 20, 60}},
    {"salmon", {250, 128, 114}},
    {"lightcoral", {240, 128, 128}},
    {"orange", {255, 165, 0}},
    {"darkorange", {255, 140, 0}},
    {"gold", {255, 215, 0}},
    {"khaki", {240, 230, 140}},
    {"purple", {128, 0, 128}},
    {"violet", {238, 130, 238}},
    {"orchid", {218, 112, 214}},
    {"cyan", {0, 255, 255}},
    {"teal", {0, 128, 128}},
    {"navy", {0, 0, 128}},
    {"skyblue", {135, 206, 235}},
    {"steelblue", {70, 130, 180}},
    {"brown", {165, 42, 42}},
}};

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw UsageError(std::string("bad hex digit '") + c + "' in colour");
}

}  // namespace

std::string Color::to_hex() const { return strprintf("#%02x%02x%02x", r, g, b); }

Color color_by_name(std::string_view name) {
  const std::string key = lower(name);
  for (const auto& nc : kColors)
    if (nc.name == key) return nc.color;
  throw UsageError("unknown colour name: " + std::string(name));
}

bool is_known_color(std::string_view name) {
  const std::string key = lower(name);
  for (const auto& nc : kColors)
    if (nc.name == key) return true;
  return false;
}

Color color_from_hex(std::string_view hex) {
  if (hex.size() != 7 || hex[0] != '#')
    throw UsageError("colour hex must look like #rrggbb, got: " + std::string(hex));
  auto byte = [&](std::size_t i) {
    return static_cast<std::uint8_t>(hex_digit(hex[i]) * 16 + hex_digit(hex[i + 1]));
  };
  return Color{byte(1), byte(3), byte(5)};
}

double luminance(const Color& c) {
  return 0.2126 * c.r + 0.7152 * c.g + 0.0722 * c.b;
}

}  // namespace util

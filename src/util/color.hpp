// Named colours in the X11 palette subset that the paper's visual design
// uses (red/green themes, ForestGreen, IndianRed, bisque, gray, yellow,
// white, ...). Jumpshot identifies state/event categories by colour, so the
// colour is part of the trace, not just of the renderer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace util {

struct Color {
  std::uint8_t r = 0, g = 0, b = 0;

  [[nodiscard]] std::string to_hex() const;  ///< "#rrggbb"
  bool operator==(const Color&) const = default;
};

/// Look up an X11-style colour name (case-insensitive). Throws UsageError
/// for unknown names so colour-scheme typos fail at definition time.
Color color_by_name(std::string_view name);

/// True if `name` is a known colour name.
bool is_known_color(std::string_view name);

/// Parse "#rrggbb".
Color color_from_hex(std::string_view hex);

/// Perceived luminance in [0,255]; the renderer uses it to pick black or
/// white label text over a state rectangle.
double luminance(const Color& c);

}  // namespace util

// Common exception hierarchy for the pilot-logviz stack.
//
// All modules throw subclasses of util::Error so callers can catch the whole
// family at one place (tools do; the Pilot API layer converts them into its
// own diagnostics).
#pragma once

#include <stdexcept>
#include <string>

namespace util {

/// Root of the project's exception hierarchy.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on malformed or truncated binary input (CLOG-2 / SLOG-2 readers,
/// ByteReader overruns).
class IoError : public Error {
public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Raised when an API is used against its documented contract.
class UsageError : public Error {
public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

}  // namespace util

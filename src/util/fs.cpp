#include "util/fs.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace util {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for read: " + path.string());
  std::vector<std::uint8_t> out;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) throw IoError("cannot size: " + path.string());
  out.resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  if (size > 0 && !in.read(reinterpret_cast<char*>(out.data()), size))
    throw IoError("short read: " + path.string());
  return out;
}

void write_file(const fs::path& path, const void* data, std::size_t n) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open for write: " + tmp.string());
    if (n > 0) out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    if (!out) throw IoError("short write: " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) throw IoError("rename " + tmp.string() + " -> " + path.string() + ": " + ec.message());
}

void write_file(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  write_file(path, bytes.data(), bytes.size());
}

void write_file(const fs::path& path, const std::string& text) {
  write_file(path, text.data(), text.size());
}

std::string read_text_file(const fs::path& path) {
  auto bytes = read_file(path);
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<unsigned> counter{0};
  const fs::path base = fs::temp_directory_path();
  for (int attempt = 0; attempt < 100; ++attempt) {
    fs::path candidate =
        base / (prefix + "-" + std::to_string(counter.fetch_add(1)) + "-" +
                std::to_string(attempt));
    std::error_code ec;
    if (fs::create_directory(candidate, ec)) {
      path_ = candidate;
      return;
    }
  }
  throw IoError("could not create temporary directory under " + base.string());
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort; never throw from a destructor
}

}  // namespace util

// Filesystem helpers: whole-file IO for traces and an RAII temporary
// directory for tests/benches.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace util {

/// Read a whole file as bytes. Throws IoError on failure.
std::vector<std::uint8_t> read_file(const std::filesystem::path& path);

/// Write bytes to a file atomically-ish (write then rename within the same
/// directory). Throws IoError on failure.
void write_file(const std::filesystem::path& path, const void* data, std::size_t n);
void write_file(const std::filesystem::path& path, const std::vector<std::uint8_t>& bytes);
void write_file(const std::filesystem::path& path, const std::string& text);

std::string read_text_file(const std::filesystem::path& path);

/// RAII temporary directory; removed recursively on destruction.
class TempDir {
public:
  explicit TempDir(const std::string& prefix = "pilot");
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

private:
  std::filesystem::path path_;
};

}  // namespace util

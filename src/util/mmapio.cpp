#include "util/mmapio.hpp"

#include <utility>

#include "util/fs.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PILOT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PILOT_HAVE_MMAP 0
#endif

namespace util {

std::optional<MappedFile> MappedFile::try_map(
    const std::filesystem::path& path) {
#if PILOT_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return std::nullopt;
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  if (len == 0) {
    // mmap(0) is EINVAL; an empty regular file is simply an empty view.
    ::close(fd);
    return MappedFile{};
  }
  void* p = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) return std::nullopt;
#if defined(MADV_WILLNEED)
  ::madvise(p, len, MADV_WILLNEED);
#endif
  MappedFile m;
  m.map_ = p;
  m.map_len_ = len;
  m.data_ = static_cast<const std::uint8_t*>(p);
  m.size_ = len;
  return m;
#else
  (void)path;
  return std::nullopt;
#endif
}

MappedFile::MappedFile(const std::filesystem::path& path) {
  if (auto m = try_map(path)) {
    *this = std::move(*m);
    return;
  }
  // Portable fallback (also taken for FIFOs/devices): one read into an
  // owned buffer. Same bytes, same lifetime guarantees, no zero-copy.
  fallback_ = util::read_file(path);
  data_ = fallback_.data();
  size_ = fallback_.size();
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() noexcept {
#if PILOT_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
  map_ = nullptr;
  map_len_ = 0;
  data_ = nullptr;
  size_ = 0;
  fallback_.clear();
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      map_(other.map_),
      map_len_(other.map_len_),
      fallback_(std::move(other.fallback_)) {
  if (map_ == nullptr && size_ != 0) data_ = fallback_.data();
  other.map_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_len_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  reset();
  data_ = other.data_;
  size_ = other.size_;
  map_ = other.map_;
  map_len_ = other.map_len_;
  fallback_ = std::move(other.fallback_);
  if (map_ == nullptr && size_ != 0) data_ = fallback_.data();
  other.map_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_len_ = 0;
  return *this;
}

}  // namespace util

// Memory-mapped binary file reading: the same decoding API as
// util::ByteReader / util::FileByteReader, but backed by an mmap(2) of the
// whole file, so payload slices are borrowed views into the page cache
// instead of copies. On platforms (or filesystems) where mmap fails the
// reader silently falls back to one read into an owned buffer — callers see
// the identical API and identical error verdicts either way.
//
// Error behaviour matches ByteReader exactly, modulo the reader name in the
// message: any read past the end of the mapping throws IoError at the same
// offset and with the same want/have figures a whole-file parse would
// produce. The format-fuzz suite pins this reader-for-reader.
#pragma once

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace util {

/// RAII whole-file mapping (read-only). Falls back to an owned buffer when
/// mmap is unavailable; data()/size() behave identically in both modes.
class MappedFile {
public:
  MappedFile() = default;
  explicit MappedFile(const std::filesystem::path& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// True when the bytes live in an actual mmap (false: fallback buffer).
  [[nodiscard]] bool is_mapped() const { return map_ != nullptr; }

  /// Attempt a real mapping only: disengaged when mmap is unavailable for
  /// this platform or file, without reading anything. Lets callers that
  /// guarantee O(window) RSS keep a streaming fallback instead of this
  /// class's read-the-file fallback. (An empty regular file maps as an
  /// engaged empty view.)
  static std::optional<MappedFile> try_map(const std::filesystem::path& path);

private:
  void reset() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_ = nullptr;  // munmap() target when mapped
  std::size_t map_len_ = 0;
  std::vector<std::uint8_t> fallback_;
};

/// Sequential decoder over a MappedFile, mirroring FileByteReader's API so
/// the templated record readers work unchanged over either. A truncated or
/// shrunk file fails with the same named IoError (same offsets, same
/// want/have) the streaming reader produces.
class MmapByteReader {
public:
  explicit MmapByteReader(const std::filesystem::path& path)
      : map_(path) {}
  /// Adopt an existing mapping (e.g. from MappedFile::try_map).
  explicit MmapByteReader(MappedFile&& map) : map_(std::move(map)) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    std::uint32_t len = u32();
    const std::uint8_t* p = take(len);
    return std::string(reinterpret_cast<const char*>(p), len);
  }

  /// Borrow `n` contiguous bytes from the mapping, advancing the cursor.
  /// Unlike FileByteReader::take the pointer stays valid for the lifetime
  /// of the reader (the mapping never moves).
  const std::uint8_t* take(std::size_t n) {
    if (n > map_.size() - pos_)
      throw IoError("MmapByteReader: truncated input (want " +
                    std::to_string(n) + " bytes at offset " +
                    std::to_string(pos_) + ", have " +
                    std::to_string(map_.size() - pos_) + ")");
    const std::uint8_t* p = map_.data() + pos_;
    pos_ += n;
    return p;
  }

  void skip(std::size_t n) { take(n); }

  /// Validate an untrusted element count against the bytes left in the
  /// mapping, mirroring ByteReader::checked_count.
  [[nodiscard]] std::size_t checked_count(std::uint64_t n,
                                          std::size_t min_bytes = 1) const {
    const std::size_t floor = min_bytes == 0 ? 1 : min_bytes;
    if (n > remaining() / floor)
      throw IoError("MmapByteReader: element count " + std::to_string(n) +
                    " exceeds the " + std::to_string(remaining()) +
                    " bytes of remaining input");
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t file_size() const { return map_.size(); }
  [[nodiscard]] std::size_t remaining() const { return map_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == map_.size(); }

  [[nodiscard]] const MappedFile& mapping() const { return map_; }

private:
  template <typename T>
  T get_le() {
    const std::uint8_t* p = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(p[i]) << (8 * i)));
    return v;
  }

  MappedFile map_;
  std::size_t pos_ = 0;
};

}  // namespace util

#include "util/net.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string s = path.string();
  if (s.size() >= sizeof(addr.sun_path))
    throw IoError("socket path too long for AF_UNIX (" + std::to_string(s.size()) +
                  " bytes): " + s);
  std::memcpy(addr.sun_path, s.c_str(), s.size() + 1);
  return addr;
}

}  // namespace

// --- UnixConn ---------------------------------------------------------------

UnixConn::~UnixConn() { close(); }

UnixConn::UnixConn(UnixConn&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)), rbuf_(std::move(o.rbuf_)) {}

UnixConn& UnixConn::operator=(UnixConn&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    rbuf_ = std::move(o.rbuf_);
  }
  return *this;
}

void UnixConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

UnixConn UnixConn::connect_to(const std::filesystem::path& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0)
      return UnixConn(fd);
    if (errno == EINTR) continue;
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + path.string() + ")");
  }
}

std::size_t UnixConn::read_some(void* buf, std::size_t n) {
  if (fd_ < 0) throw IoError("read on closed connection");
  if (!rbuf_.empty()) {
    const std::size_t take = std::min(n, rbuf_.size());
    std::memcpy(buf, rbuf_.data(), take);
    rbuf_.erase(0, take);
    return take;
  }
  for (;;) {
    const ssize_t r = ::recv(fd_, buf, n, 0);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

bool UnixConn::read_exact(void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const std::size_t r = read_some(p + got, n - got);
    if (r == 0) {
      if (got == 0) return false;
      throw IoError("connection closed mid-frame (" + std::to_string(got) + " of " +
                    std::to_string(n) + " bytes)");
    }
    got += r;
  }
  return true;
}

bool UnixConn::read_payload(void* buf, std::size_t n) { return read_exact(buf, n); }

void UnixConn::write_all(const void* buf, std::size_t n) {
  if (fd_ < 0) throw IoError("write on closed connection");
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("send");
  }
}

bool UnixConn::read_line(std::string* line) {
  line->clear();
  for (;;) {
    const std::size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(rbuf_, 0, nl);
      rbuf_.erase(0, nl + 1);
      return true;
    }
    char tmp[4096];
    if (fd_ < 0) throw IoError("read on closed connection");
    ssize_t r;
    for (;;) {
      r = ::recv(fd_, tmp, sizeof(tmp), 0);
      if (r >= 0 || errno != EINTR) break;
    }
    if (r < 0) throw_errno("recv");
    if (r == 0) {
      if (rbuf_.empty()) return false;
      // Peer closed after a final unterminated line; hand it over.
      line->swap(rbuf_);
      return true;
    }
    rbuf_.append(tmp, static_cast<std::size_t>(r));
  }
}

void UnixConn::write_line(const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  write_all(out.data(), out.size());
}

// --- UnixListener -----------------------------------------------------------

UnixListener::UnixListener(const std::filesystem::path& path) : path_(path) {
  const sockaddr_un addr = make_addr(path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket(AF_UNIX)");
  // A stale socket file from a dead daemon would make bind fail; remove it
  // (connect() to a dead path fails, so this cannot steal a live listener
  // in any single-daemon setup we support).
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind(" + path.string() + ")");
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    close();
    errno = saved;
    throw_errno("listen(" + path.string() + ")");
  }
}

UnixListener::~UnixListener() { close(); }

UnixListener::UnixListener(UnixListener&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)), path_(std::move(o.path_)) {
  o.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    path_ = std::move(o.path_);
    o.path_.clear();
  }
  return *this;
}

void UnixListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    path_.clear();
  }
}

UnixConn UnixListener::accept_conn() {
  if (fd_ < 0) throw IoError("accept on closed listener");
  for (;;) {
    const int c = ::accept(fd_, nullptr, nullptr);
    if (c >= 0) return UnixConn(c);
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

UnixConn UnixListener::accept_for(int timeout_ms) {
  if (fd_ < 0) throw IoError("accept on closed listener");
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (r == 0) return UnixConn();  // timeout
    return accept_conn();
  }
}

}  // namespace util

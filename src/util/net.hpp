// Minimal AF_UNIX stream transport for pilot-traced and its tests.
//
// Everything here is blocking and local-host only: the service listens on
// a filesystem socket path, clients connect to it, and the wire protocol
// on top (src/traced/protocol.hpp) is newline-delimited JSON with optional
// length-prefixed binary payloads. No network byte order games — both ends
// are the same machine by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>

namespace util {

/// One connected AF_UNIX stream endpoint (RAII over the fd). Movable, not
/// copyable. All reads/writes retry on EINTR and throw IoError on hard
/// failure; reads return false/empty on orderly peer shutdown.
class UnixConn {
public:
  UnixConn() = default;
  explicit UnixConn(int fd) : fd_(fd) {}
  ~UnixConn();
  UnixConn(UnixConn&& o) noexcept;
  UnixConn& operator=(UnixConn&& o) noexcept;
  UnixConn(const UnixConn&) = delete;
  UnixConn& operator=(const UnixConn&) = delete;

  /// Connect to a listening socket at `path`. Throws IoError on failure.
  static UnixConn connect_to(const std::filesystem::path& path);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Read up to `n` bytes; returns the count read, 0 on EOF.
  std::size_t read_some(void* buf, std::size_t n);
  /// Read exactly `n` bytes; returns false if EOF hit before any byte,
  /// throws IoError if EOF hits mid-read (truncated frame).
  bool read_exact(void* buf, std::size_t n);
  /// Write all `n` bytes (SIGPIPE suppressed; a closed peer is IoError).
  void write_all(const void* buf, std::size_t n);

  /// Read one '\n'-terminated line (newline stripped). Returns false on
  /// clean EOF before any byte of a line. Bytes past the newline stay
  /// buffered for the next call — callers interleaving read_line with
  /// read_exact must go through this object only.
  bool read_line(std::string* line);
  /// Binary payload read that honours the read_line buffer.
  bool read_payload(void* buf, std::size_t n);
  void write_line(const std::string& line);

private:
  int fd_ = -1;
  std::string rbuf_;  // bytes read past the last returned line
};

/// Listening AF_UNIX socket bound to a filesystem path. Unlinks the path
/// on close. The path must fit sockaddr_un (~107 bytes) — short /tmp paths
/// only, which is why tests use TempDir.
class UnixListener {
public:
  UnixListener() = default;
  explicit UnixListener(const std::filesystem::path& path);
  ~UnixListener();
  UnixListener(UnixListener&& o) noexcept;
  UnixListener& operator=(UnixListener&& o) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Block until a client connects. Throws IoError on failure (including a
  /// concurrently closed listener — the shutdown path in pilot-traced).
  UnixConn accept_conn();
  /// Accept with a timeout; returns an invalid conn if none arrived.
  UnixConn accept_for(int timeout_ms);

  void close();

private:
  int fd_ = -1;
  std::filesystem::path path_;
};

}  // namespace util

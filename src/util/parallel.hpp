// Deterministic fork-join helper for the offline trace pipeline.
//
// parallel_for runs `fn(i)` for every i in [0, n) across a small pool of
// std::threads. Tasks are claimed from a shared atomic counter, so the
// *schedule* is nondeterministic — callers must make every task write only
// to its own pre-allocated slot and commit results in a fixed order
// afterwards. Used that way, output is byte-identical at any thread count,
// which is the contract the CLOG-2 → SLOG-2 converter advertises.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace util {

/// Resolve a thread-count request: values >= 1 pass through; 0 (or negative)
/// means "hardware concurrency", with a floor of 1 for exotic platforms
/// where std::thread::hardware_concurrency() reports 0.
inline int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Run fn(0..n-1) on up to `threads` workers. threads <= 1 (or n <= 1)
/// degrades to a plain loop on the calling thread — the serial and parallel
/// paths execute the same per-index code. The first exception thrown by any
/// task is rethrown on the caller after all workers join.
template <typename Fn>
void parallel_for(std::size_t n, int threads, Fn&& fn) {
  if (n == 0) return;
  const auto nworkers =
      static_cast<std::size_t>(threads < 1 ? 1 : threads) < n
          ? static_cast<std::size_t>(threads < 1 ? 1 : threads)
          : n;
  if (nworkers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lk(error_mu);
        if (!first_error) first_error = std::current_exception();
        // Keep draining indices so siblings are not starved of the exit
        // condition; remaining tasks still run (they must be independent).
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(nworkers - 1);
  for (std::size_t w = 1; w < nworkers; ++w) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace util

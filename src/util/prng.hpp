// Deterministic PRNG for workload generation (synthetic images, collision
// CSV rows, property-test inputs). SplitMix64: tiny, fast, well distributed,
// and — unlike std::mt19937 seeded ad hoc — identical across libstdc++
// versions, so generated workloads are bit-stable.
#pragma once

#include <cstdint>

namespace util {

class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  bool chance(double p) { return uniform() < p; }

private:
  std::uint64_t state_;
};

}  // namespace util

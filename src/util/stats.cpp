#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace util {

double median(std::vector<double> xs) {
  if (xs.empty()) throw UsageError("median of empty sample");
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw UsageError("mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw UsageError("percentile of empty sample");
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

}  // namespace util

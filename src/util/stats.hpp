// Small statistics helpers used by the benchmark harness (the paper reports
// "median execution time [variance shown in brackets]" over 10 runs).
#pragma once

#include <cstddef>
#include <vector>

namespace util {

/// Median of a sample (average of the two middle elements for even sizes).
/// Throws UsageError on an empty sample.
double median(std::vector<double> xs);

double mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for samples of size < 2.
double variance(const std::vector<double>& xs);

double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0,100].
double percentile(std::vector<double> xs, double p);

/// Streaming mean/variance (Welford). Useful for long event streams where
/// the sample should not be materialized.
class RunningStats {
public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace util

#include "util/streamio.hpp"

#include <cstring>
#include <filesystem>

namespace util {

FileByteReader::FileByteReader(const std::filesystem::path& path,
                               std::size_t window_bytes)
    : in_(path, std::ios::binary), window_(window_bytes == 0 ? 1 : window_bytes) {
  if (!in_) throw IoError("cannot open " + path.string());
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw IoError("cannot stat " + path.string() + ": " + ec.message());
  file_size_ = static_cast<std::size_t>(size);
  buf_.reserve(window_);
}

double FileByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string FileByteReader::str() {
  const std::uint32_t len = u32();
  const std::uint8_t* p = take(len);
  return std::string(reinterpret_cast<const char*>(p), len);
}

void FileByteReader::refill(std::size_t need) {
  // Compact the unconsumed tail to the front, then read enough to satisfy
  // `need` bytes (or at least one full window) — never past end of file.
  if (start_ > 0) {
    std::memmove(buf_.data(), buf_.data() + start_, buffered());
    end_ -= start_;
    start_ = 0;
  }
  const std::size_t file_left = file_size_ - (pos_ + buffered());
  std::size_t want = window_ > need ? window_ : need;
  if (want > buffered() + file_left) want = buffered() + file_left;
  if (buf_.size() < want) buf_.resize(want);
  while (buffered() < want) {
    in_.read(reinterpret_cast<char*>(buf_.data() + end_),
             static_cast<std::streamsize>(want - buffered()));
    const auto got = static_cast<std::size_t>(in_.gcount());
    if (got == 0)
      throw IoError("FileByteReader: short read (file changed underneath?)");
    end_ += got;
  }
}

const std::uint8_t* FileByteReader::take(std::size_t n) {
  if (n > file_size_ - pos_)
    throw IoError("FileByteReader: truncated input (want " + std::to_string(n) +
                  " bytes at offset " + std::to_string(pos_) + ", have " +
                  std::to_string(file_size_ - pos_) + ")");
  if (buffered() < n) refill(n);
  const std::uint8_t* p = buf_.data() + start_;
  start_ += n;
  pos_ += n;
  return p;
}

void FileByteReader::skip(std::size_t n) {
  if (n > file_size_ - pos_)
    throw IoError("FileByteReader: truncated input (want " + std::to_string(n) +
                  " bytes at offset " + std::to_string(pos_) + ", have " +
                  std::to_string(file_size_ - pos_) + ")");
  const std::size_t from_buffer = n < buffered() ? n : buffered();
  start_ += from_buffer;
  if (n > from_buffer)
    in_.seekg(static_cast<std::streamoff>(n - from_buffer), std::ios::cur);
  pos_ += n;
}

std::vector<std::uint8_t> read_at(std::ifstream& in, std::size_t offset,
                                  std::size_t length, const std::string& what) {
  in.clear();
  in.seekg(static_cast<std::streamoff>(offset));
  std::vector<std::uint8_t> out(length);
  if (length > 0) {
    in.read(reinterpret_cast<char*>(out.data()),
            static_cast<std::streamsize>(length));
    if (static_cast<std::size_t>(in.gcount()) != length)
      throw IoError(what + ": short read of " + std::to_string(length) +
                    " bytes at offset " + std::to_string(offset));
  }
  return out;
}

}  // namespace util

// Chunked binary file reading for the print tools: the same decoding API as
// util::ByteReader, but backed by a fixed-size read window over an open
// file instead of a whole-file byte vector. Printing a 10^7-event trace
// peaks at the window size (plus one record), not at full-trace RSS.
//
// Error behaviour matches ByteReader exactly: any read past the end of the
// *file* throws IoError, so a truncated trace is rejected at the same point
// a whole-file parse would reject it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace util {

class FileByteReader {
public:
  /// Default read window; a window refill reads up to this many bytes.
  static constexpr std::size_t kDefaultWindow = 256 * 1024;

  explicit FileByteReader(const std::filesystem::path& path,
                          std::size_t window_bytes = kDefaultWindow);

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  /// Borrow `n` contiguous bytes, advancing the cursor. The pointer is valid
  /// until the next read call. Throws IoError when fewer than `n` bytes
  /// remain in the file — the same verdict ByteReader gives on a truncated
  /// in-memory buffer. A single item larger than the window grows the
  /// buffer for that item only (bounded by the file size).
  const std::uint8_t* take(std::size_t n);

  void skip(std::size_t n);

  /// Validate an untrusted element count against the bytes left in the
  /// file, mirroring ByteReader::checked_count.
  [[nodiscard]] std::size_t checked_count(std::uint64_t n,
                                          std::size_t min_bytes = 1) const {
    const std::size_t floor = min_bytes == 0 ? 1 : min_bytes;
    if (n > remaining() / floor)
      throw IoError("FileByteReader: element count " + std::to_string(n) +
                    " exceeds the " + std::to_string(remaining()) +
                    " bytes of remaining input");
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t file_size() const { return file_size_; }
  [[nodiscard]] std::size_t remaining() const { return file_size_ - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == file_size_; }

private:
  template <typename T>
  T get_le() {
    const std::uint8_t* p = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(p[i]) << (8 * i)));
    return v;
  }

  [[nodiscard]] std::size_t buffered() const { return end_ - start_; }
  void refill(std::size_t need);

  std::ifstream in_;
  std::size_t file_size_ = 0;
  std::size_t pos_ = 0;        // logical cursor in the file
  std::vector<std::uint8_t> buf_;
  std::size_t start_ = 0;      // window of unconsumed bytes in buf_
  std::size_t end_ = 0;
  std::size_t window_ = kDefaultWindow;
};

/// Read `length` bytes at absolute `offset` from an already-open stream.
/// Throws IoError on seek/read failure. Used for random access into the
/// SLOG-2 payload blob (per-frame decode without slurping the blob).
std::vector<std::uint8_t> read_at(std::ifstream& in, std::size_t offset,
                                  std::size_t length,
                                  const std::string& what = "read_at");

}  // namespace util

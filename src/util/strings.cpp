#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string strprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string truncate_bytes(std::string_view s, std::size_t max_bytes) {
  if (s.size() <= max_bytes) return std::string(s);
  return std::string(s.substr(0, max_bytes));
}

std::string human_seconds(double seconds) {
  const double a = seconds < 0 ? -seconds : seconds;
  if (a >= 1.0) return strprintf("%.3f s", seconds);
  if (a >= 1e-3) return strprintf("%.3f ms", seconds * 1e3);
  if (a >= 1e-6) return strprintf("%.3f us", seconds * 1e6);
  return strprintf("%.1f ns", seconds * 1e9);
}

std::string mask_floats(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    const bool digit = std::isdigit(static_cast<unsigned char>(text[i])) != 0;
    if (!digit) {
      out.push_back(text[i++]);
      continue;
    }
    std::size_t j = i;
    while (j < text.size() && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
    bool is_float = false;
    if (j < text.size() && text[j] == '.') {
      std::size_t k = j + 1;
      while (k < text.size() && std::isdigit(static_cast<unsigned char>(text[k])))
        ++k;
      if (k > j + 1) {
        is_float = true;
        j = k;
        if (j < text.size() && (text[j] == 'e' || text[j] == 'E')) {
          std::size_t m = j + 1;
          if (m < text.size() && (text[m] == '+' || text[m] == '-')) ++m;
          std::size_t d = m;
          while (d < text.size() && std::isdigit(static_cast<unsigned char>(text[d])))
            ++d;
          if (d > m) j = d;
        }
      }
    }
    if (is_float) {
      out.push_back('#');
    } else {
      out.append(text, i, j - i);
    }
    i = j;
  }
  return out;
}

}  // namespace util


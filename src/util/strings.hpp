// String helpers shared across the stack.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace util {

/// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Escape the five XML special characters; used by the SVG renderer for
/// popup/tooltip text.
std::string xml_escape(std::string_view s);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Truncate a UTF-8-agnostic byte string to at most `max_bytes` bytes (the
/// MPE popup-text limit the paper mentions is 40 bytes).
std::string truncate_bytes(std::string_view s, std::size_t max_bytes);

/// Render seconds with a unit that keeps 3-4 significant digits
/// (e.g. "1.23 ms", "45.6 us", "3.21 s").
std::string human_seconds(double seconds);

/// Replace every floating-point literal ("3.14", "1.2e-05") with '#' so
/// time-derived texts compare equal across runs. Integers survive
/// ("ready=2" is a recorded decision, not a time). Shared by the replay
/// fingerprint and the trace differ's timestamp-free projections.
std::string mask_floats(const std::string& text);

}  // namespace util

// Canonical LEB128 varints, zigzag mapping, and the f64 bit-delta codec the
// SLOG-2 v2 columnar frame encoding is built from.
//
// Decoding is strict: an encoding is accepted only if it is the one the
// encoder here would produce. Concretely a varint
//   * may span at most 10 bytes (64 payload bits),
//   * must not carry value bits above bit 63 (the 10th byte is <= 0x01),
//   * must be minimal — a multi-byte encoding whose final byte is zero is
//     an overlong spelling of a shorter one and is rejected.
// Hostile inputs therefore fail as util::IoError, and decode(encode(x))
// followed by re-encode is byte-identical — the property the v2 round-trip
// and fuzz suites pin.
#pragma once

#include <cstdint>
#include <cstring>

#include "util/bytebuf.hpp"
#include "util/error.hpp"

namespace util {

inline void put_varint(ByteWriter& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.u8(static_cast<std::uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  w.u8(static_cast<std::uint8_t>(v));
}

inline std::uint64_t get_varint(ByteReader& r) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t b = r.u8();
    if (shift == 63 && (b & 0x7E) != 0)
      throw IoError("varint: value exceeds 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      if (b == 0 && shift != 0)
        throw IoError("varint: overlong (non-canonical) encoding");
      return v;
    }
  }
  throw IoError("varint: continuation past 10 bytes");
}

/// Zigzag on the raw two's-complement bit pattern: small magnitudes of
/// either sign encode short. Works on u64 so wrapped deltas are fine.
constexpr std::uint64_t zigzag(std::uint64_t v) {
  return (v << 1) ^ (0ULL - (v >> 63));
}
constexpr std::uint64_t unzigzag(std::uint64_t v) {
  return (v >> 1) ^ (0ULL - (v & 1));
}

inline void put_svarint(ByteWriter& w, std::int64_t v) {
  put_varint(w, zigzag(static_cast<std::uint64_t>(v)));
}

inline std::int64_t get_svarint(ByteReader& r) {
  return static_cast<std::int64_t>(unzigzag(get_varint(r)));
}

/// Signed field that must fit an int32 (category ids, ranks, depths, tags).
/// Out-of-range values are a format error, not a silent truncation.
inline std::int32_t get_svarint32(ByteReader& r) {
  const std::int64_t v = get_svarint(r);
  if (v < INT32_MIN || v > INT32_MAX)
    throw IoError("varint: signed 32-bit field out of range");
  return static_cast<std::int32_t>(v);
}

/// Unsigned field that must fit a uint32 (message sizes, text lengths).
inline std::uint32_t get_varint32(ByteReader& r) {
  const std::uint64_t v = get_varint(r);
  if (v > UINT32_MAX)
    throw IoError("varint: unsigned 32-bit field out of range");
  return static_cast<std::uint32_t>(v);
}

/// Delta codec for a column of doubles: each value is encoded as the zigzag
/// varint of the wrapping difference between its IEEE-754 bit pattern and
/// the previous one. Lossless for every double (including NaNs and signed
/// zeros), and near-sorted timestamp columns yield tiny deltas. One encoder
/// or decoder instance per column; chains never cross columns or frames.
struct F64DeltaEncoder {
  std::uint64_t prev = 0;
  void put(ByteWriter& w, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_varint(w, zigzag(bits - prev));
    prev = bits;
  }
};

struct F64DeltaDecoder {
  std::uint64_t prev = 0;
  double get(ByteReader& r) {
    prev += unzigzag(get_varint(r));
    double v;
    std::memcpy(&v, &prev, sizeof v);
    return v;
  }
};

}  // namespace util

// Canonical LEB128 varints, zigzag mapping, and the f64 bit-delta codec the
// SLOG-2 v2 columnar frame encoding is built from.
//
// Decoding is strict: an encoding is accepted only if it is the one the
// encoder here would produce. Concretely a varint
//   * may span at most 10 bytes (64 payload bits),
//   * must not carry value bits above bit 63 (the 10th byte is <= 0x01),
//   * must be minimal — a multi-byte encoding whose final byte is zero is
//     an overlong spelling of a shorter one and is rejected.
// Hostile inputs therefore fail as util::IoError, and decode(encode(x))
// followed by re-encode is byte-identical — the property the v2 round-trip
// and fuzz suites pin.
#pragma once

#include <cstdint>
#include <cstring>

#include "util/bytebuf.hpp"
#include "util/error.hpp"

namespace util {

inline void put_varint(ByteWriter& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.u8(static_cast<std::uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  w.u8(static_cast<std::uint8_t>(v));
}

inline std::uint64_t get_varint(ByteReader& r) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t b = r.u8();
    if (shift == 63 && (b & 0x7E) != 0)
      throw IoError("varint: value exceeds 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      if (b == 0 && shift != 0)
        throw IoError("varint: overlong (non-canonical) encoding");
      return v;
    }
  }
  throw IoError("varint: continuation past 10 bytes");
}

/// Zigzag on the raw two's-complement bit pattern: small magnitudes of
/// either sign encode short. Works on u64 so wrapped deltas are fine.
constexpr std::uint64_t zigzag(std::uint64_t v) {
  return (v << 1) ^ (0ULL - (v >> 63));
}
constexpr std::uint64_t unzigzag(std::uint64_t v) {
  return (v >> 1) ^ (0ULL - (v & 1));
}

inline void put_svarint(ByteWriter& w, std::int64_t v) {
  put_varint(w, zigzag(static_cast<std::uint64_t>(v)));
}

inline std::int64_t get_svarint(ByteReader& r) {
  return static_cast<std::int64_t>(unzigzag(get_varint(r)));
}

/// Signed field that must fit an int32 (category ids, ranks, depths, tags).
/// Out-of-range values are a format error, not a silent truncation.
inline std::int32_t get_svarint32(ByteReader& r) {
  const std::int64_t v = get_svarint(r);
  if (v < INT32_MIN || v > INT32_MAX)
    throw IoError("varint: signed 32-bit field out of range");
  return static_cast<std::int32_t>(v);
}

/// Unsigned field that must fit a uint32 (message sizes, text lengths).
inline std::uint32_t get_varint32(ByteReader& r) {
  const std::uint64_t v = get_varint(r);
  if (v > UINT32_MAX)
    throw IoError("varint: unsigned 32-bit field out of range");
  return static_cast<std::uint32_t>(v);
}

// --- batch decode -----------------------------------------------------------
// Column decoders for the v2 frame codec: decode `n` consecutive varints in
// one tight loop over the raw cursor, hoisting the ByteReader bookkeeping
// (per-byte virtual cursor updates and bound checks) out of the hot path.
// Error behaviour is byte-for-byte the serial loop's: the same IoError
// messages are thrown at the same input offsets, so the fuzz and round-trip
// suites cannot tell the two decoders apart.

/// Decode `n` unsigned varints, calling `emit(i, value)` for each. Advances
/// `r` past the column. Errors match get_varint()/ByteReader::take exactly.
template <typename Emit>
inline void get_varint_batch(ByteReader& r, std::size_t n, Emit&& emit) {
  const std::uint8_t* const base = r.cursor();
  const std::uint8_t* const end = base + r.remaining();
  const std::size_t base_pos = r.pos();
  const std::uint8_t* q = base;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    int shift = 0;
    std::uint8_t b;
    do {
      if (q == end)
        throw IoError("ByteReader: truncated input (want 1 bytes at offset " +
                      std::to_string(base_pos +
                                     static_cast<std::size_t>(q - base)) +
                      ", have 0)");
      b = *q++;
      if (shift == 63 && (b & 0x7E) != 0)
        throw IoError("varint: value exceeds 64 bits");
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      shift += 7;
    } while ((b & 0x80) != 0 && shift < 70);
    if ((b & 0x80) != 0) throw IoError("varint: continuation past 10 bytes");
    if (b == 0 && shift != 7)
      throw IoError("varint: overlong (non-canonical) encoding");
    emit(i, v);
  }
  r.seek(base_pos + static_cast<std::size_t>(q - base));
}

/// Column of signed int32 fields (category ids, ranks, depths, tags).
template <typename Emit>
inline void get_svarint32_batch(ByteReader& r, std::size_t n, Emit&& emit) {
  get_varint_batch(r, n, [&](std::size_t i, std::uint64_t raw) {
    const auto v = static_cast<std::int64_t>(unzigzag(raw));
    if (v < INT32_MIN || v > INT32_MAX)
      throw IoError("varint: signed 32-bit field out of range");
    emit(i, static_cast<std::int32_t>(v));
  });
}

/// Column of unsigned uint32 fields (message sizes, text lengths).
template <typename Emit>
inline void get_varint32_batch(ByteReader& r, std::size_t n, Emit&& emit) {
  get_varint_batch(r, n, [&](std::size_t i, std::uint64_t v) {
    if (v > UINT32_MAX)
      throw IoError("varint: unsigned 32-bit field out of range");
    emit(i, static_cast<std::uint32_t>(v));
  });
}

/// Column of signed int64 deltas (grid time columns).
template <typename Emit>
inline void get_svarint_batch(ByteReader& r, std::size_t n, Emit&& emit) {
  get_varint_batch(r, n, [&](std::size_t i, std::uint64_t raw) {
    emit(i, static_cast<std::int64_t>(unzigzag(raw)));
  });
}

/// Delta codec for a column of doubles: each value is encoded as the zigzag
/// varint of the wrapping difference between its IEEE-754 bit pattern and
/// the previous one. Lossless for every double (including NaNs and signed
/// zeros), and near-sorted timestamp columns yield tiny deltas. One encoder
/// or decoder instance per column; chains never cross columns or frames.
struct F64DeltaEncoder {
  std::uint64_t prev = 0;
  void put(ByteWriter& w, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_varint(w, zigzag(bits - prev));
    prev = bits;
  }
};

struct F64DeltaDecoder {
  std::uint64_t prev = 0;
  double get(ByteReader& r) {
    prev += unzigzag(get_varint(r));
    double v;
    std::memcpy(&v, &prev, sizeof v);
    return v;
  }
};

}  // namespace util
